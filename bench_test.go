package kwo_test

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§7) plus the headline claims and ablations. Each figure
// benchmark runs the corresponding experiment end to end and reports
// the headline measurement as custom metrics, so
//
//	go test -bench=Fig -benchmem
//
// regenerates the paper's evaluation and
//
//	go test -bench=. -benchmem
//
// additionally exercises the substrate's hot paths.

import (
	"math/rand"
	"testing"
	"time"

	"kwo"
	"kwo/internal/cdw"
	"kwo/internal/costmodel"
	"kwo/internal/experiments"
	"kwo/internal/ml"
	"kwo/internal/rl"
	"kwo/internal/simclock"
	"kwo/internal/telemetry"
	"kwo/internal/workload"
)

// ---------------------------------------------------------------------
// Figure benchmarks: regenerate each evaluation artifact.

// BenchmarkFig4a regenerates Figure 4a (savings on an unpredictable
// workload; paper: 10.4 → 4.2 credits/day, −59.7%).
func BenchmarkFig4a(b *testing.B) {
	var last experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig4a(int64(i + 1))
	}
	b.ReportMetric(last.ReductionPct, "savings_%")
	b.ReportMetric(last.PreAvgDaily, "pre_credits/day")
	b.ReportMetric(last.KwoAvgDaily, "kwo_credits/day")
}

// BenchmarkFig4b regenerates Figure 4b (savings on a predictable ETL
// workload; paper: 26.9 → 23.4 credits/day, −13.2%, p99 slightly lower).
func BenchmarkFig4b(b *testing.B) {
	var last experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig4b(int64(i + 1))
	}
	b.ReportMetric(last.ReductionPct, "savings_%")
	b.ReportMetric(last.KwoP99Secs/last.PreP99Secs, "p99_ratio")
}

// BenchmarkFig5 regenerates Figure 5 (cost-model accuracy; paper
// relative errors: 0.67%, 4.09%, 20.9%, 3.12%).
func BenchmarkFig5(b *testing.B) {
	var last experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig5(int64(i + 1))
	}
	for j, row := range last.Rows {
		b.ReportMetric(row.RelErrPct, "relerr"+string(rune('1'+j))+"_%")
	}
}

// BenchmarkFig6 regenerates Figure 6 (hourly actual vs overhead vs
// savings; paper: overhead negligible, actual+savings flat).
func BenchmarkFig6(b *testing.B) {
	var last experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig6(int64(i + 1))
	}
	b.ReportMetric(last.OverheadPctOfActual, "overhead_%of_actual")
	b.ReportMetric(last.TotalSavings/last.TotalOverhead, "savings/overhead")
	b.ReportMetric(last.WithoutKeeboCV, "without_keebo_cv")
}

// BenchmarkFig7 regenerates Figure 7 (slider Pareto frontier; paper:
// monotone cost/latency trade-off, 1.42s avg latency at slider 3).
func BenchmarkFig7(b *testing.B) {
	var last experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig7(int64(i + 1))
	}
	b.ReportMetric(last.Rows[0].Credits, "best_perf_credits/day")
	b.ReportMetric(last.Rows[4].Credits, "lowest_cost_credits/day")
	b.ReportMetric(last.Rows[2].AvgLatency, "balanced_avg_latency_s")
}

// BenchmarkOnboarding regenerates the onboarding ramp (paper: 50%/70%/
// 95% of eventual savings after 20/43/83 hours).
func BenchmarkOnboarding(b *testing.B) {
	var last experiments.OnboardingResult
	for i := 0; i < b.N; i++ {
		last = experiments.Onboarding(int64(i + 1))
	}
	b.ReportMetric(float64(last.HoursTo50), "hours_to_50%")
	b.ReportMetric(float64(last.HoursTo70), "hours_to_70%")
	b.ReportMetric(float64(last.HoursTo95), "hours_to_95%")
	b.ReportMetric(last.EventualPct, "eventual_savings_%")
}

// BenchmarkSavingsBand regenerates the 20–70% savings-band claim across
// workload archetypes.
func BenchmarkSavingsBand(b *testing.B) {
	var last experiments.SavingsBandResult
	for i := 0; i < b.N; i++ {
		last = experiments.SavingsBand(int64(i + 1))
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.SavingsPct, row.Archetype+"_%")
	}
}

// BenchmarkAblationCostModel quantifies §5.2's parameter-estimation
// claim (trained replay beats uncalibrated replay).
func BenchmarkAblationCostModel(b *testing.B) {
	var last experiments.AblationCostModelResult
	for i := 0; i < b.N; i++ {
		last = experiments.AblationCostModel(int64(i + 1))
	}
	b.ReportMetric(last.TrainedErrPct, "trained_err_%")
	b.ReportMetric(last.DefaultErrPct, "default_err_%")
}

// BenchmarkAblationBackoff measures the self-correction loop under an
// injected spike.
func BenchmarkAblationBackoff(b *testing.B) {
	var last experiments.AblationBackoffResult
	for i := 0; i < b.N; i++ {
		last = experiments.AblationBackoff(int64(i + 1))
	}
	b.ReportMetric(float64(last.WithReverts), "reverts")
	b.ReportMetric(last.P99With, "p99_with_s")
	b.ReportMetric(last.P99Without, "p99_without_s")
}

// BenchmarkValueOfLearning compares KWO to static / rule-of-thumb /
// reactive baselines.
func BenchmarkValueOfLearning(b *testing.B) {
	var last experiments.ValueOfLearningResult
	for i := 0; i < b.N; i++ {
		last = experiments.ValueOfLearning(int64(i + 1))
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.SavingsPct, row.Controller+"_savings_%")
	}
}

// ---------------------------------------------------------------------
// Substrate micro-benchmarks.

// BenchmarkSimulatorDay measures simulating one day of BI traffic on a
// multi-cluster warehouse (queries/op reported via custom metric).
func BenchmarkSimulatorDay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := kwo.NewSimulation(int64(i))
		sim.CreateWarehouse(kwo.WarehouseConfig{
			Name: "W", Size: kwo.SizeSmall, MinClusters: 1, MaxClusters: 3,
			AutoSuspend: 5 * time.Minute, AutoResume: true,
		})
		n := sim.AddWorkload("W", kwo.BIDashboards(200), 24*time.Hour)
		sim.RunFor(25 * time.Hour)
		b.ReportMetric(float64(n), "queries/op")
	}
}

// BenchmarkCostModelReplay measures one what-if replay over a day of
// telemetry.
func BenchmarkCostModelReplay(b *testing.B) {
	sched := simclock.NewScheduler(1)
	acct := cdw.NewAccount(sched, cdw.DefaultSimParams())
	store := telemetry.NewStore()
	acct.Subscribe(store)
	cfg := cdw.Config{Name: "W", Size: cdw.SizeSmall, MinClusters: 1, MaxClusters: 2,
		AutoSuspend: 5 * time.Minute, AutoResume: true}
	acct.CreateWarehouse(cfg)
	pool, _, _ := workload.StandardPools()
	gen := workload.BI{Pool: pool, PeakQPH: 200}
	end := simclock.Epoch.Add(24 * time.Hour)
	workload.Drive(sched, acct, "W", gen.Generate(simclock.Epoch, end, sched.Rand("wl")))
	sched.RunUntil(end.Add(time.Hour))
	log := store.Log("W")
	model := costmodel.Train(log, cfg, simclock.Epoch, end, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := model.Replay(log, simclock.Epoch, end)
		if res.Credits <= 0 {
			b.Fatal("empty replay")
		}
	}
}

// BenchmarkCostModelTrain measures fitting all parameter estimators on
// a day of telemetry.
func BenchmarkCostModelTrain(b *testing.B) {
	sched := simclock.NewScheduler(1)
	acct := cdw.NewAccount(sched, cdw.DefaultSimParams())
	store := telemetry.NewStore()
	acct.Subscribe(store)
	cfg := cdw.Config{Name: "W", Size: cdw.SizeSmall, MinClusters: 1, MaxClusters: 2,
		AutoSuspend: 5 * time.Minute, AutoResume: true}
	acct.CreateWarehouse(cfg)
	pool, _, _ := workload.StandardPools()
	gen := workload.BI{Pool: pool, PeakQPH: 200}
	end := simclock.Epoch.Add(24 * time.Hour)
	workload.Drive(sched, acct, "W", gen.Generate(simclock.Epoch, end, sched.Rand("wl")))
	sched.RunUntil(end.Add(time.Hour))
	log := store.Log("W")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		costmodel.Train(log, cfg, simclock.Epoch, end, 8)
	}
}

// BenchmarkDQNStep measures one online DQN observation+update.
func BenchmarkDQNStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	agent := rl.NewAgent(rng, rl.DefaultConfig())
	state := make([]float64, rl.StateDim)
	for i := range state {
		state[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Observe(ml.Transition{State: state, Action: i % 7, Reward: 1, NextState: state})
	}
}

// BenchmarkDQNRank measures ranking the action space for one state.
func BenchmarkDQNRank(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	agent := rl.NewAgent(rng, rl.DefaultConfig())
	state := make([]float64, rl.StateDim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Rank(state)
	}
}

// BenchmarkWorkloadGeneration measures generating a week of BI arrivals.
func BenchmarkWorkloadGeneration(b *testing.B) {
	pool, _, _ := workload.StandardPools()
	gen := workload.BI{Pool: pool, PeakQPH: 200}
	end := simclock.Epoch.Add(7 * 24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arr := gen.Generate(simclock.Epoch, end, rand.New(rand.NewSource(int64(i))))
		if len(arr) == 0 {
			b.Fatal("no arrivals")
		}
	}
}

// BenchmarkMeterHourly measures hourly billing aggregation over a month
// of segments.
func BenchmarkMeterHourly(b *testing.B) {
	m := cdw.NewMeter("W")
	t := simclock.Epoch
	for i := 0; i < 2000; i++ {
		m.StartCluster(i, cdw.SizeSmall, t, true)
		m.StopCluster(i, t.Add(5*time.Minute))
		t = t.Add(20 * time.Minute)
	}
	from := simclock.Epoch
	to := t
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := m.Hourly(from, to, to)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}
