package kwo_test

import (
	"bytes"
	"flag"
	"os"
	"testing"
	"time"

	"kwo"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata golden files")

// quickstartSnapshot reproduces the examples/quickstart scenario — an
// oversized BI warehouse with unoptimized history, then optimized under
// the Balanced slider — compressed to two days of history plus three
// optimized days so the golden file stays small and the test fast.
func quickstartSnapshot(t *testing.T) []byte {
	t.Helper()
	sim := kwo.NewSimulation(42)
	if _, err := sim.CreateWarehouse(kwo.WarehouseConfig{
		Name:        "BI_WH",
		Size:        kwo.SizeLarge,
		MinClusters: 1,
		MaxClusters: 2,
		Policy:      kwo.ScaleStandard,
		AutoSuspend: 10 * time.Minute,
		AutoResume:  true,
	}); err != nil {
		t.Fatal(err)
	}
	sim.AddWorkload("BI_WH", kwo.BIDashboards(30), 5*24*time.Hour)
	sim.RunFor(2 * 24 * time.Hour)

	opt := sim.NewOptimizer(kwo.DefaultOptions())
	if err := opt.Attach("BI_WH", kwo.Settings{Slider: kwo.Balanced}); err != nil {
		t.Fatal(err)
	}
	opt.Start()
	sim.RunFor(3 * 24 * time.Hour)
	opt.Stop()

	var buf bytes.Buffer
	if err := sim.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// multiWarehouseSnapshot reproduces the examples/multi-warehouse
// scenario — three very different warehouses (dashboards, pipelines,
// ad-hoc analysis) under one optimizer, each with its own slider —
// compressed to one day of history plus two optimized days.
func multiWarehouseSnapshot(t *testing.T) []byte {
	t.Helper()
	sim := kwo.NewSimulation(21)
	type spec struct {
		cfg    kwo.WarehouseConfig
		gen    kwo.Generator
		slider kwo.Slider
	}
	specs := []spec{
		{
			cfg: kwo.WarehouseConfig{Name: "BI_WH", Size: kwo.SizeLarge,
				MinClusters: 1, MaxClusters: 3,
				AutoSuspend: 10 * time.Minute, AutoResume: true},
			gen:    kwo.BIDashboards(30),
			slider: kwo.GoodPerformance,
		},
		{
			cfg: kwo.WarehouseConfig{Name: "ETL_WH", Size: kwo.SizeMedium,
				MinClusters: 1, MaxClusters: 1,
				AutoSuspend: 10 * time.Minute, AutoResume: true},
			gen:    kwo.ETLPipeline(time.Hour, 4),
			slider: kwo.LowCost,
		},
		{
			cfg: kwo.WarehouseConfig{Name: "ADHOC_WH", Size: kwo.SizeMedium,
				MinClusters: 1, MaxClusters: 2,
				AutoSuspend: 15 * time.Minute, AutoResume: true},
			gen:    kwo.AdHocAnalytics(6),
			slider: kwo.Balanced,
		},
	}
	for _, s := range specs {
		if _, err := sim.CreateWarehouse(s.cfg); err != nil {
			t.Fatal(err)
		}
		sim.AddWorkload(s.cfg.Name, s.gen, 3*24*time.Hour)
	}
	sim.RunFor(24 * time.Hour)

	opt := sim.NewOptimizer(kwo.DefaultOptions())
	for _, s := range specs {
		if err := opt.Attach(s.cfg.Name, kwo.Settings{Slider: s.slider}); err != nil {
			t.Fatal(err)
		}
	}
	opt.Start()
	sim.RunFor(2 * 24 * time.Hour)
	opt.Stop()

	var buf bytes.Buffer
	if err := sim.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// checkGolden asserts two same-seed runs agree and match the committed
// golden file; -update regenerates it.
func checkGolden(t *testing.T, goldenPath string, snapshot func(*testing.T) []byte) {
	t.Helper()
	first := snapshot(t)
	second := snapshot(t)
	if !bytes.Equal(first, second) {
		t.Fatalf("same seed produced different snapshots: %d vs %d bytes",
			len(first), len(second))
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, first, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(first))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(first, want) {
		t.Fatalf("snapshot diverged from %s: got %d bytes, want %d; "+
			"if the simulator or engine changed intentionally, rerun with -update",
			goldenPath, len(first), len(want))
	}
}

// TestGoldenTrace runs the quickstart scenario twice with the same seed
// and asserts both runs produce byte-identical telemetry, which also
// matches the committed golden file. Regenerate with:
//
//	go test . -run TestGoldenTrace -update
func TestGoldenTrace(t *testing.T) {
	checkGolden(t, "testdata/quickstart.golden.jsonl", quickstartSnapshot)
}

// TestGoldenTraceMultiWarehouse pins the multi-warehouse scenario the
// same way: one optimizer over three heterogeneous warehouses must
// replay byte-identically. Regenerate with:
//
//	go test . -run TestGoldenTraceMultiWarehouse -update
func TestGoldenTraceMultiWarehouse(t *testing.T) {
	checkGolden(t, "testdata/multiwarehouse.golden.jsonl", multiWarehouseSnapshot)
}
