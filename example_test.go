package kwo_test

import (
	"fmt"
	"time"

	"kwo"
)

// ExampleParseSize shows the T-shirt sizing model: credits per hour
// double with each size step.
func ExampleParseSize() {
	for _, name := range []string{"X-Small", "Medium", "X-Large"} {
		s, err := kwo.ParseSize(name)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%s: %.0f credits/hour\n", s, s.CreditsPerHour())
	}
	// Output:
	// X-Small: 1 credits/hour
	// Medium: 4 credits/hour
	// X-Large: 16 credits/hour
}

// ExampleRule shows a time-windowed constraint: downsizing is forbidden
// Monday mornings 9:00–10:00.
func ExampleRule() {
	rule := kwo.Rule{
		Name:        "protect Monday mornings",
		Days:        []time.Weekday{time.Monday},
		StartMinute: 9 * 60,
		EndMinute:   10 * 60,
		NoDownsize:  true,
	}
	monday930 := time.Date(2023, 1, 2, 9, 30, 0, 0, time.UTC)
	tuesday930 := monday930.Add(24 * time.Hour)
	fmt.Println(rule.ActiveAt(monday930), rule.ActiveAt(tuesday930))
	// Output: true false
}

// ExampleSlider shows the five customer-facing positions.
func ExampleSlider() {
	for s := kwo.BestPerformance; s <= kwo.LowestCost; s++ {
		fmt.Println(int(s), s)
	}
	// Output:
	// 1 Best Performance
	// 2 Good Performance
	// 3 Balanced
	// 4 Low Cost
	// 5 Lowest Cost
}

// ExampleSimulation shows the minimal end-to-end flow: one warehouse,
// one query, deterministic billing on the virtual clock.
func ExampleSimulation() {
	sim := kwo.NewSimulation(1)
	sim.CreateWarehouse(kwo.WarehouseConfig{
		Name: "W", Size: kwo.SizeXSmall, MinClusters: 1, MaxClusters: 1,
		AutoSuspend: time.Minute, AutoResume: true,
	})
	// A query that takes 60 seconds on a warm X-Small cluster.
	sim.Submit("W", kwo.Query{Work: 60, ScaleExp: 1})
	sim.RunFor(time.Hour)
	stats := sim.Stats("W", sim.Start(), sim.Now())
	fmt.Printf("queries completed: %d\n", stats.Queries)
	fmt.Printf("billed something: %v\n", sim.TotalCredits() > 0)
	// Output:
	// queries completed: 1
	// billed something: true
}
