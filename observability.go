package kwo

import (
	"net/http"

	"kwo/internal/actuator"
	"kwo/internal/obs"
)

// Observability re-exports. The hub bundles the metrics registry and the
// structured event bus; one hub is shared by the simulation, the
// optimizer engine, and every instrumented subsystem underneath them.
type (
	// Obs is the observability hub: metrics registry + event bus.
	Obs = obs.Hub
	// ObsEvent is one structured trace event.
	ObsEvent = obs.Event
	// ObsEventKind names a trace-event type (obs.EventActionApplied, ...).
	ObsEventKind = obs.EventKind
	// ObsAttr is one key/value attribute on an event.
	ObsAttr = obs.Attr
	// ObsSink receives every emitted event (obs.MemorySink, obs.JSONLSink).
	ObsSink = obs.Sink
	// ObsMetricSpec describes one cataloged metric family.
	ObsMetricSpec = obs.MetricSpec
)

// ObsCatalog returns the full metric catalog every hub registers at
// creation — the contract the CI scrape check enforces.
func ObsCatalog() []ObsMetricSpec { return obs.Catalog() }

// Obs returns the simulation's observability hub. Warehouse- and
// telemetry-level instrumentation (injected faults, audit writes, query
// latency histograms) lands here even before any optimizer exists;
// optimizers created by NewOptimizer join the same hub.
func (s *Simulation) Obs() *Obs { return s.hub }

// ObsHandler returns the ops HTTP handler for the simulation's hub:
// /metrics (Prometheus text), /events (JSONL tail), /healthz, and
// /debug/pprof. Serve it on a side port next to the Portal.
func (s *Simulation) ObsHandler() http.Handler { return obs.Handler(s.hub) }

// Obs returns the optimizer's observability hub (never nil). Unless
// Options.Obs overrode it, this is the owning simulation's hub.
func (o *Optimizer) Obs() *Obs { return o.engine.Obs() }

// ObsHandler returns the ops HTTP handler for the optimizer's hub.
func (o *Optimizer) ObsHandler() http.Handler { return obs.Handler(o.engine.Obs()) }

// ReliabilitySummary reconciles the actuator's failure log into
// operation-level outcomes. The raw failure log records every failed
// ATTEMPT, so an ALTER that fails twice and then lands contributes two
// rows while the operation itself succeeded; summing rows as "failures"
// double-counts recovered operations. This summary keeps the two axes
// separate: attempt-level noise vs. operation-level outcomes.
type ReliabilitySummary struct {
	// FailedAttempts counts transient attempt failures, including
	// attempts of operations that later succeeded.
	FailedAttempts int
	// OpsRecovered counts operations that failed at least once and were
	// eventually applied by a retry.
	OpsRecovered int
	// OpsAbandoned counts operations given up for good: retries
	// exhausted or a permanent (non-retryable) error.
	OpsAbandoned int
	// RetriesAborted counts scheduled retries cancelled because policy
	// no longer allowed the alteration.
	RetriesAborted int
	// Superseded counts pending operations replaced by a newer decision.
	Superseded int
	// Rejected counts operations refused up front (breaker open, or an
	// earlier operation still pending).
	Rejected int
	// BreakerOpens counts circuit-breaker trips.
	BreakerOpens int
	// IngestFailures counts telemetry-ingestion errors reported to the
	// actuator's failure log.
	IngestFailures int
	// ActionsApplied counts log entries that actually changed a
	// warehouse (the authoritative success count).
	ActionsApplied int
}

// ReliabilitySummary classifies the actuation failure log by operation
// outcome. kwo-sim prints it, and TestReliabilitySummaryMatchesObs pins
// it to the obs registry's counters.
func (o *Optimizer) ReliabilitySummary() ReliabilitySummary {
	act := o.engine.Actuator()
	var s ReliabilitySummary
	s.ActionsApplied = act.AppliedCount()

	// Operations that eventually landed: OpID of every applied log row.
	applied := make(map[uint64]bool)
	for _, r := range act.Log() {
		if r.Applied {
			applied[r.OpID] = true
		}
	}
	recovered := make(map[uint64]bool)
	for _, f := range act.Failures() {
		switch f.Kind {
		case actuator.FailTransient:
			s.FailedAttempts++
			if applied[f.OpID] {
				recovered[f.OpID] = true
			}
		case actuator.FailExhausted, actuator.FailPermanent:
			s.OpsAbandoned++
		case actuator.FailRetryAborted:
			s.RetriesAborted++
		case actuator.FailSuperseded:
			s.Superseded++
		case actuator.FailRejectedBreaker, actuator.FailRejectedPending:
			s.Rejected++
		case actuator.FailBreakerOpened:
			s.BreakerOpens++
		case actuator.FailIngest:
			s.IngestFailures++
		}
	}
	s.OpsRecovered = len(recovered)
	return s
}
