// Package kwo is an open reproduction of "Making Data Clouds Smarter at
// Keebo: Automated Warehouse Optimization using Data Learning"
// (SIGMOD-Companion 2023): a fully-automated optimizer for cloud data
// warehouses that learns from telemetry metadata, makes real-time
// resize / multi-cluster / auto-suspend decisions under customer
// constraints and a single cost-performance slider, self-corrects from
// live feedback, and prices itself as a share of the savings its
// warehouse cost model attributes to its own actions.
//
// Because the paper's substrate is a commercial cloud warehouse, the
// library ships a faithful discrete-event simulator of a Snowflake-like
// warehouse (T-shirt sizes, per-second credit metering with a
// 60-second resume minimum, auto-suspend/resume with cold caches,
// multi-cluster scale-out with Standard/Economy policies). The
// optimizer is written against the same narrow surface the real system
// uses — ALTER-style alterations and telemetry reads — so it cannot
// tell the simulator from the real API.
//
// # Quickstart
//
//	sim := kwo.NewSimulation(42)
//	wh, _ := sim.CreateWarehouse(kwo.WarehouseConfig{
//		Name: "BI_WH", Size: kwo.SizeLarge,
//		MinClusters: 1, MaxClusters: 2,
//		AutoSuspend: 10 * time.Minute, AutoResume: true,
//	})
//	sim.AddWorkload("BI_WH", kwo.BIDashboards(60))
//
//	opt := sim.NewOptimizer(kwo.DefaultOptions())
//	sim.RunFor(3 * 24 * time.Hour) // let telemetry accumulate
//	opt.Attach("BI_WH", kwo.Settings{Slider: kwo.Balanced})
//	opt.Start()
//	sim.RunFor(7 * 24 * time.Hour)
//
//	rep, _ := opt.Report("BI_WH", sim.Start().Add(3*24*time.Hour), sim.Now())
//	fmt.Println(rep)
//	_ = wh
//
// See the examples directory for complete programs, and internal/
// experiments for the harnesses that regenerate every figure of the
// paper's evaluation.
package kwo
