package kwo_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"kwo"
)

// These tests exercise the library exactly as a downstream user would:
// only the public kwo package.

func newBIScenario(t *testing.T, seed int64) (*kwo.Simulation, *kwo.Warehouse) {
	t.Helper()
	sim := kwo.NewSimulation(seed)
	wh, err := sim.CreateWarehouse(kwo.WarehouseConfig{
		Name: "BI_WH", Size: kwo.SizeLarge, MinClusters: 1, MaxClusters: 2,
		Policy: kwo.ScaleStandard, AutoSuspend: 10 * time.Minute, AutoResume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.AddWorkload("BI_WH", kwo.BIDashboards(60), 14*24*time.Hour)
	return sim, wh
}

func TestPublicAPIEndToEnd(t *testing.T) {
	sim, wh := newBIScenario(t, 1)

	// Three days of history before onboarding.
	sim.RunFor(3 * 24 * time.Hour)
	preDaily := wh.CreditsBetween(sim.Start(), sim.Now()) / 3
	if preDaily <= 0 {
		t.Fatal("no pre-KWO spend")
	}

	opt := sim.NewOptimizer(kwo.DefaultOptions())
	if err := opt.Attach("BI_WH", kwo.Settings{Slider: kwo.Balanced}); err != nil {
		t.Fatal(err)
	}
	opt.Start()
	attach := sim.Now()
	sim.RunFor(5 * 24 * time.Hour)

	steadyFrom := attach.Add(2 * 24 * time.Hour)
	kwoDaily := wh.CreditsBetween(steadyFrom, sim.Now()) / 3
	if kwoDaily >= preDaily {
		t.Fatalf("no savings through public API: pre %.1f vs with %.1f", preDaily, kwoDaily)
	}

	rep, err := opt.Report("BI_WH", attach, sim.Now())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries == 0 || rep.ActualCredits <= 0 || rep.WithoutKeebo <= 0 {
		t.Fatalf("report incomplete: %+v", rep)
	}
	if rep.Savings <= 0 {
		t.Fatal("report shows no savings")
	}
	days, err := opt.DailySeries("BI_WH", sim.Start(), 8)
	if err != nil || len(days) != 8 {
		t.Fatalf("daily series: %v, %d rows", err, len(days))
	}
	if len(opt.Invoices()) == 0 || opt.TotalSavings() <= 0 {
		t.Fatal("no invoices through public API")
	}
}

func TestPublicAPISliderAndConstraints(t *testing.T) {
	sim, _ := newBIScenario(t, 2)
	sim.RunFor(24 * time.Hour)
	opt := sim.NewOptimizer(kwo.DefaultOptions())
	minSize := kwo.SizeMedium
	settings := kwo.Settings{
		Slider:      kwo.LowCost,
		Constraints: kwo.Constraints{{Name: "floor", MinSize: &minSize}},
	}
	if err := opt.Attach("BI_WH", settings); err != nil {
		t.Fatal(err)
	}
	opt.Start()
	sim.RunFor(3 * 24 * time.Hour)
	wh, _ := sim.Warehouse("BI_WH")
	if wh.Config().Size < kwo.SizeMedium {
		t.Fatalf("constraint violated via public API: size %v", wh.Config().Size)
	}
	if err := opt.SetSlider("BI_WH", kwo.BestPerformance); err != nil {
		t.Fatal(err)
	}
	if err := opt.SetSlider("BI_WH", kwo.Slider(9)); err == nil {
		t.Fatal("invalid slider accepted")
	}
	if err := opt.SetConstraints("BI_WH", kwo.Constraints{{Name: "bad", StartMinute: -1}}); err == nil {
		t.Fatal("invalid constraints accepted")
	}
	if err := opt.SetConstraints("BI_WH", nil); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIExternalChange(t *testing.T) {
	sim, _ := newBIScenario(t, 3)
	sim.RunFor(24 * time.Hour)
	opt := sim.NewOptimizer(kwo.DefaultOptions())
	opt.Attach("BI_WH", kwo.Settings{Slider: kwo.Balanced})
	opt.Start()
	sim.RunFor(24 * time.Hour)

	// A DBA intervenes.
	size := kwo.Size2XLarge
	if err := sim.Alter("BI_WH", kwo.Alteration{Size: &size}, "dba-jane"); err != nil {
		t.Fatal(err)
	}
	sim.RunFor(2 * time.Hour)
	paused, err := opt.Paused("BI_WH")
	if err != nil {
		t.Fatal(err)
	}
	if !paused {
		t.Fatal("external change did not pause optimization")
	}
	if err := opt.ResumeOptimization("BI_WH"); err != nil {
		t.Fatal(err)
	}
	paused, _ = opt.Paused("BI_WH")
	if paused {
		t.Fatal("resume did not clear pause")
	}
}

func TestPublicAPIWarehouseHandles(t *testing.T) {
	sim := kwo.NewSimulation(4)
	if _, err := sim.Warehouse("NOPE"); err == nil {
		t.Fatal("missing warehouse returned")
	}
	wh, err := sim.CreateWarehouse(kwo.WarehouseConfig{
		Name: "W", Size: kwo.SizeXSmall, MinClusters: 1, MaxClusters: 1,
		AutoSuspend: time.Minute, AutoResume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if wh.Name() != "W" || !wh.Running() || wh.ActiveClusters() != 1 {
		t.Fatal("fresh warehouse state wrong")
	}
	if err := sim.Submit("W", kwo.Query{Work: 30, ScaleExp: 1}); err != nil {
		t.Fatal(err)
	}
	sim.RunFor(10 * time.Minute)
	if wh.Running() {
		t.Fatal("warehouse did not auto-suspend")
	}
	if wh.TotalCredits() <= 0 {
		t.Fatal("no credits billed")
	}
	hourly := wh.Hourly(sim.Start(), sim.Start().Add(time.Hour))
	if len(hourly) != 1 || hourly[0].Credits <= 0 {
		t.Fatalf("hourly rows = %+v", hourly)
	}
	daily := wh.DailyCredits(sim.Start(), 1)
	if len(daily) != 1 || daily[0] <= 0 {
		t.Fatalf("daily rows = %v", daily)
	}
	stats := sim.Stats("W", sim.Start(), sim.Now())
	if stats.Queries != 1 {
		t.Fatalf("stats queries = %d", stats.Queries)
	}
	if sim.TotalCredits() != wh.TotalCredits() {
		t.Fatal("account/warehouse credit mismatch")
	}
}

func TestPublicAPICustomPoolAndWorkloads(t *testing.T) {
	pool := kwo.NewPool([]kwo.Template{
		{Name: "rpt", WorkMean: 3, WorkSigma: 0.2, ScaleExp: 0.8, ColdFactor: 2, BytesMean: 1 << 20},
	}, 0)
	sim := kwo.NewSimulation(5)
	sim.CreateWarehouse(kwo.WarehouseConfig{
		Name: "W", Size: kwo.SizeSmall, MinClusters: 1, MaxClusters: 1,
		AutoSuspend: 5 * time.Minute, AutoResume: true,
	})
	n := sim.AddWorkload("W", kwo.CustomBI(pool, 50, 0.2), 24*time.Hour)
	if n == 0 {
		t.Fatal("custom BI scheduled nothing")
	}
	n = sim.AddWorkload("W", kwo.CustomETL(pool, time.Hour, 2, time.Minute), 24*time.Hour)
	if n != 48 {
		t.Fatalf("custom ETL scheduled %d, want 48", n)
	}
	n = sim.AddWorkload("W", kwo.LoadSpike(sim.Now().Add(time.Hour), 25, time.Minute), 24*time.Hour)
	if n != 25 {
		t.Fatalf("spike scheduled %d, want 25", n)
	}
	n = sim.AddWorkload("W", kwo.MixedWorkload(kwo.AdHocAnalytics(5), kwo.ETLPipeline(2*time.Hour, 2)), 24*time.Hour)
	if n == 0 {
		t.Fatal("mixed workload scheduled nothing")
	}
	sim.RunFor(26 * time.Hour)
	if sim.TotalCredits() <= 0 {
		t.Fatal("nothing billed")
	}
}

func TestPublicAPIAnalyses(t *testing.T) {
	sim := kwo.NewSimulation(8)
	for _, name := range []string{"A", "B"} {
		if _, err := sim.CreateWarehouse(kwo.WarehouseConfig{
			Name: name, Size: kwo.SizeSmall, MinClusters: 1, MaxClusters: 2,
			AutoSuspend: 10 * time.Minute, AutoResume: true,
		}); err != nil {
			t.Fatal(err)
		}
		sim.AddWorkload(name, kwo.BIDashboards(8), 2*24*time.Hour)
	}
	sim.RunFor(2 * 24 * time.Hour)

	rec, err := sim.AnalyzeConsolidation([]string{"A", "B"}, sim.Start(), sim.Now())
	if err != nil {
		t.Fatal(err)
	}
	if rec.CurrentCredits <= 0 {
		t.Fatalf("consolidation analysis empty: %+v", rec)
	}
	if len(rec.Warehouses) != 2 {
		t.Fatalf("warehouses = %v", rec.Warehouses)
	}

	bal, err := sim.AnalyzeLoadBalance([]string{"A", "B"}, sim.Start(), sim.Now())
	if err != nil {
		t.Fatal(err)
	}
	if !bal.Balanced() {
		t.Fatalf("quiet pair unbalanced: %+v", bal.Moves)
	}
	if _, err := sim.AnalyzeConsolidation([]string{"A", "NOPE"}, sim.Start(), sim.Now()); err == nil {
		t.Fatal("unknown warehouse accepted")
	}
	if _, err := sim.AnalyzeLoadBalance([]string{"A"}, sim.Start(), sim.Now()); err == nil {
		t.Fatal("single-warehouse balance accepted")
	}
}

func TestPublicAPITraces(t *testing.T) {
	var buf bytes.Buffer
	from := kwo.NewSimulation(1).Start()
	n, err := kwo.GenerateTrace(&buf, kwo.BIDashboards(40), from, from.Add(24*time.Hour), 3)
	if err != nil || n == 0 {
		t.Fatalf("generate: n=%d err=%v", n, err)
	}
	arr, err := kwo.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil || len(arr) != n {
		t.Fatalf("read: %d/%d err=%v", len(arr), n, err)
	}
	sim := kwo.NewSimulation(2)
	sim.CreateWarehouse(kwo.WarehouseConfig{Name: "W", Size: kwo.SizeSmall,
		MinClusters: 1, MaxClusters: 1, AutoSuspend: 5 * time.Minute, AutoResume: true})
	got, err := sim.AddTraceWorkload("W", bytes.NewReader(buf.Bytes()))
	if err != nil || got != n {
		t.Fatalf("replay: %d/%d err=%v", got, n, err)
	}
	sim.RunFor(26 * time.Hour)
	if stats := sim.Stats("W", sim.Start(), sim.Now()); stats.Queries != n {
		t.Fatalf("completed %d of %d", stats.Queries, n)
	}
}

func TestPublicAPIPortal(t *testing.T) {
	sim := kwo.NewSimulation(6)
	sim.CreateWarehouse(kwo.WarehouseConfig{Name: "W", Size: kwo.SizeSmall,
		MinClusters: 1, MaxClusters: 1, AutoSuspend: 5 * time.Minute, AutoResume: true})
	sim.AddWorkload("W", kwo.BIDashboards(20), 24*time.Hour)
	sim.RunFor(24 * time.Hour)
	opt := sim.NewOptimizer(kwo.DefaultOptions())
	opt.Attach("W", kwo.Settings{Slider: kwo.Balanced})

	srv := httptest.NewServer(opt.Portal())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/v1/warehouses/W")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("portal status %d", resp.StatusCode)
	}
	var info map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info["name"] != "W" || info["optimization_attached"] != true {
		t.Fatalf("portal info = %v", info)
	}

	advanced := false
	srv2 := httptest.NewServer(opt.PortalWithAdvance(func() { advanced = true }))
	defer srv2.Close()
	http.Get(srv2.URL + "/api/v1/status")
	if !advanced {
		t.Fatal("advance hook not called")
	}
}
