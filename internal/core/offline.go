package core

import (
	"time"

	"kwo/internal/action"
	"kwo/internal/cdw"
	"kwo/internal/costmodel"
	"kwo/internal/ml"
	"kwo/internal/monitor"
	"kwo/internal/policy"
	"kwo/internal/rl"
	"kwo/internal/telemetry"
)

// OfflineTransitions builds a model-based offline RL dataset from
// historical telemetry: for each historical decision window it
// fabricates one transition per candidate action, with the reward
// predicted by the warehouse cost model. This is how KWO's DRL "learns
// from a diverse range of past experiences without the need for
// constant [online] updates" (§8) — the cost model acts as the learned
// environment model.
func OfflineTransitions(log *telemetry.WarehouseLog, cost *costmodel.Model,
	orig cdw.Config, from, to time.Time, window time.Duration, tuning policy.Tuning) []ml.Transition {

	if cost == nil || log == nil {
		return nil
	}
	var out []ml.Transition
	windowHours := window.Hours()
	cfg := orig
	for t := from; t.Before(to); t = t.Add(window) {
		ws := log.Stats(t, t.Add(window))
		if ws.Queries == 0 {
			continue
		}
		cfg = log.ConfigAt(t, orig)
		snap := monitor.Snapshot{At: t.Add(window), Stats: ws}
		state := rl.Featurize(snap, cfg)
		for _, kind := range action.All() {
			a := action.Action{Kind: kind, Warehouse: cfg.Name}
			imp := cost.PredictImpact(ws, cfg, a)
			// Predicted spend over the window under the candidate
			// config, plus the performance penalty. Degradation within
			// the slider's budget is free to the agent — that is what
			// the slider *means*; only beyond-budget degradation is
			// punished, weighted by λ.
			spend := imp.CreditsPerHour * windowHours
			perf := offlinePerfPenalty(imp, ws.AvgExec.Seconds(), tuning)
			r := rl.Reward(spend, perf, tuning.PerfPenalty)
			next := a.Target(cfg)
			nextSnap := monitor.Snapshot{At: t.Add(2 * window), Stats: ws}
			out = append(out, ml.Transition{
				State:     state,
				Action:    int(kind),
				Reward:    r,
				NextState: rl.Featurize(nextSnap, next),
			})
		}
	}
	return out
}

// offlinePerfPenalty scores predicted degradation against the slider's
// budgets: free within budget, increasingly expensive beyond it.
func offlinePerfPenalty(imp costmodel.Impact, avgExecSecs float64, tuning policy.Tuning) float64 {
	var perf float64
	addedSecs := (imp.LatencyFactor - 1) * avgExecSecs
	if addedSecs > tuning.MaxAddedLatency && imp.LatencyFactor > tuning.MaxLatencyFactor {
		perf += (addedSecs - tuning.MaxAddedLatency) / 10
		perf += imp.LatencyFactor - tuning.MaxLatencyFactor
	}
	if imp.QueueRisk > tuning.MaxQueueRisk {
		perf += (imp.QueueRisk - tuning.MaxQueueRisk) * 5
	}
	return perf
}
