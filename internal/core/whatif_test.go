package core

import (
	"testing"
	"time"

	"kwo/internal/policy"
)

func TestWhatIfProjectsAlternativeSlider(t *testing.T) {
	cfg, gen := biWorkload()
	sc := runScenario(t, 41, cfg, gen, 2, 4, WarehouseSettings{Slider: policy.BestPerformance}, testOptions())

	from := sc.attach.Add(24 * time.Hour)
	to := sc.end
	res, err := sc.engine.WhatIf("BI_WH", WarehouseSettings{Slider: policy.LowestCost}, from, to)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("what-if: %s", res)
	if res.Queries == 0 || res.LiveCredits <= 0 || res.SandboxCredits <= 0 {
		t.Fatalf("incomplete projection: %+v", res)
	}
	// Lowest Cost in the sandbox must project well below the live
	// Best Performance run.
	if res.SandboxCredits >= 0.7*res.LiveCredits {
		t.Fatalf("sandbox at LowestCost (%.1f) not clearly below live BestPerformance (%.1f)",
			res.SandboxCredits, res.LiveCredits)
	}
	if res.SandboxP99 <= 0 || res.LiveP99 <= 0 {
		t.Fatal("missing latency projections")
	}
}

func TestWhatIfErrors(t *testing.T) {
	cfg, gen := biWorkload()
	sc := runScenario(t, 42, cfg, gen, 1, 1, DefaultSettings(), testOptions())
	if _, err := sc.engine.WhatIf("NOPE", DefaultSettings(), sc.attach, sc.end); err == nil {
		t.Fatal("unknown warehouse accepted")
	}
	bad := DefaultSettings()
	bad.Slider = policy.Slider(0)
	if _, err := sc.engine.WhatIf("BI_WH", bad, sc.attach, sc.end); err == nil {
		t.Fatal("invalid slider accepted")
	}
	// Empty window.
	if _, err := sc.engine.WhatIf("BI_WH", DefaultSettings(),
		sc.end.Add(24*time.Hour), sc.end.Add(48*time.Hour)); err == nil {
		t.Fatal("empty window accepted")
	}
}
