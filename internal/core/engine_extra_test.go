package core

import (
	"testing"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/policy"
	"kwo/internal/simclock"
	"kwo/internal/workload"
)

// TestSliderRecalibratesWithoutRetrain moves the slider mid-run (the
// §4.3 "no need for retraining" path) and checks the engine actually
// becomes more aggressive afterward.
func TestSliderRecalibratesWithoutRetrain(t *testing.T) {
	cfg, gen := biWorkload()
	sched := simclock.NewScheduler(31)
	acct := cdw.NewAccount(sched, cdw.DefaultSimParams())
	engine := NewEngine(acct, testOptions())
	acct.CreateWarehouse(cfg)
	end := t0.Add(9 * 24 * time.Hour)
	arr := gen.Generate(t0, end, sched.Rand("workload"))
	workload.Drive(sched, acct, cfg.Name, arr)

	sched.RunUntil(t0.Add(2 * 24 * time.Hour))
	sm, err := engine.Attach(cfg.Name, WarehouseSettings{Slider: policy.BestPerformance})
	if err != nil {
		t.Fatal(err)
	}
	engine.Start()
	sched.RunUntil(t0.Add(5 * 24 * time.Hour))
	wh, _ := acct.Warehouse(cfg.Name)
	conservative := wh.Meter().CreditsBetween(t0.Add(4*24*time.Hour), t0.Add(5*24*time.Hour), sched.Now())

	// Customer slides to Lowest Cost; no retraining call happens here.
	sm.SetSlider(policy.LowestCost)
	sched.RunUntil(end)
	aggressive := wh.Meter().CreditsBetween(t0.Add(8*24*time.Hour), end, sched.Now())

	t.Logf("daily credits: BestPerformance %.1f → LowestCost %.1f", conservative, aggressive)
	if aggressive >= conservative*0.8 {
		t.Fatalf("slider move had no effect: %.1f → %.1f", conservative, aggressive)
	}
	if sm.Settings().Slider != policy.LowestCost {
		t.Fatal("slider not stored")
	}
}

// TestMultiWarehouseIndependentModels attaches two very different
// warehouses and verifies each gets its own trained model and actions.
func TestMultiWarehouseIndependentModels(t *testing.T) {
	sched := simclock.NewScheduler(32)
	acct := cdw.NewAccount(sched, cdw.DefaultSimParams())
	engine := NewEngine(acct, testOptions())
	biPool, etlPool, _ := workload.StandardPools()

	biCfg := cdw.Config{Name: "BI", Size: cdw.SizeLarge, MinClusters: 1, MaxClusters: 2,
		AutoSuspend: 10 * time.Minute, AutoResume: true}
	etlCfg := cdw.Config{Name: "ETL", Size: cdw.SizeSmall, MinClusters: 1, MaxClusters: 1,
		AutoSuspend: 10 * time.Minute, AutoResume: true}
	acct.CreateWarehouse(biCfg)
	acct.CreateWarehouse(etlCfg)
	end := t0.Add(5 * 24 * time.Hour)
	workload.Drive(sched, acct, "BI",
		workload.BI{Pool: biPool, PeakQPH: 60, WeekendFactor: 0.3}.Generate(t0, end, sched.Rand("bi")))
	workload.Drive(sched, acct, "ETL",
		workload.ETL{Pool: etlPool, Period: time.Hour, JobsPerBatch: 4}.Generate(t0, end, sched.Rand("etl")))

	sched.RunUntil(t0.Add(24 * time.Hour))
	smBI, err := engine.Attach("BI", DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	smETL, err := engine.Attach("ETL", DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	engine.Start()
	sched.RunUntil(end)

	if smBI.CostModel() == nil || smETL.CostModel() == nil {
		t.Fatal("cost models not trained for both warehouses")
	}
	if smBI.CostModel() == smETL.CostModel() {
		t.Fatal("warehouses share a cost model (must be per-warehouse, C5)")
	}
	// Each model's baseline reflects its own warehouse.
	if smBI.Orig().Size != cdw.SizeLarge || smETL.Orig().Size != cdw.SizeSmall {
		t.Fatal("per-warehouse baselines wrong")
	}
	// Actions were taken independently; audit rows exist for both.
	byWH := map[string]int{}
	for _, ch := range acct.Changes() {
		if ch.Actor == "kwo" {
			byWH[ch.Warehouse]++
		}
	}
	if byWH["BI"] == 0 {
		t.Fatal("no actions on the oversized BI warehouse")
	}
	if got := engine.Warehouses(); len(got) != 2 {
		t.Fatalf("warehouses = %v", got)
	}
}

// TestBillingPeriodsCoverTimeline verifies consecutive invoices tile
// the with-KWO period without gaps or overlap.
func TestBillingPeriodsCoverTimeline(t *testing.T) {
	cfg, gen := biWorkload()
	sc := runScenario(t, 33, cfg, gen, 2, 3, DefaultSettings(), testOptions())
	invs := sc.engine.Ledger().Invoices()
	if len(invs) < 2 {
		t.Fatalf("invoices = %d", len(invs))
	}
	for i := 1; i < len(invs); i++ {
		if !invs[i].From.Equal(invs[i-1].To) {
			t.Fatalf("invoice %d starts %v, previous ended %v", i, invs[i].From, invs[i-1].To)
		}
	}
}

// TestBillingHistoryIngested verifies the engine pulls billing history
// into the telemetry store and that it matches the meter exactly for
// completed hours — the §6.1 "billing history" training feed.
func TestBillingHistoryIngested(t *testing.T) {
	cfg, gen := biWorkload()
	sc := runScenario(t, 34, cfg, gen, 2, 2, DefaultSettings(), testOptions())
	log := sc.engine.Store().Log(cfg.Name)
	if len(log.Billing) == 0 {
		t.Fatal("no billing rows ingested")
	}
	last := log.LastBilledHour()
	if last.IsZero() {
		t.Fatal("no last billed hour")
	}
	from := sc.attach.Truncate(time.Hour).Add(time.Hour)
	to := last // completed hours only
	wh, _ := sc.acct.Warehouse(cfg.Name)
	want := wh.Meter().CreditsBetween(from, to, sc.sched.Now())
	got := log.BillingBetween(from, to)
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("ingested billing %.4f != metered %.4f", got, want)
	}
	// Pre-attach history was back-filled too.
	if log.BillingBetween(t0, sc.attach) <= 0 {
		t.Fatal("pre-attach billing history not back-filled")
	}
}
