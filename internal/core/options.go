// Package core is KWO's engine: it wires telemetry, the warehouse cost
// model, the DRL smart models, customer constraints and the slider,
// real-time monitoring, and the actuator into the control loop of the
// paper's Algorithm 1 — train every T hours, decide and act every
// T_realtime minutes, self-correct from feedback, and continuously
// estimate savings.
package core

import (
	"time"

	"kwo/internal/actuator"
	"kwo/internal/obs"
	"kwo/internal/policy"
	"kwo/internal/rl"
)

// Options configures the engine.
type Options struct {
	// TrainEvery is T in Algorithm 1: how often smart models are
	// retrained from accumulated telemetry.
	TrainEvery time.Duration
	// DecideEvery is T_realtime: how often each smart model observes
	// real-time state and takes an action.
	DecideEvery time.Duration
	// HistoryWindow bounds how much telemetry feeds training
	// (Algorithm 1 initializes from the last 90 days).
	HistoryWindow time.Duration
	// BillEvery is how often savings are estimated and invoiced.
	BillEvery time.Duration
	// OverheadPerOp is the credit cost of each KWO operation
	// (telemetry pull, ALTER statement); Figure 6's red series.
	OverheadPerOp float64
	// SavingsShare is the value-based pricing rate.
	SavingsShare float64
	// RL tunes the DQN agents.
	RL rl.Config
	// PretrainSteps is how many gradient steps each retraining pass
	// runs over the offline dataset.
	PretrainSteps int
	// WarmupWindows is how many decision windows a fresh smart model
	// observes before it starts acting — it must see a baseline before
	// it can protect it.
	WarmupWindows int
	// MaxActionsPerHour rate-limits configuration churn.
	MaxActionsPerHour int
	// DisableSelfCorrection turns off the backoff/revert behaviour of
	// §4.3-§4.4. Only for ablation experiments — never in production.
	DisableSelfCorrection bool
	// RampStepHours is the confidence ramp: the smart model may move
	// the configuration at most 1 + elapsed/RampStepHours steps away
	// from the customer's original configuration. This produces the
	// gradual savings ramp the paper reports (50%/70%/95% of eventual
	// savings after 20/43/83 hours) instead of an immediate jump.
	// 0 disables the ramp.
	RampStepHours float64
	// Retry overrides the actuator's retry/backoff and circuit-breaker
	// policy. Leave MaxAttempts at zero to keep the actuator's default
	// policy (see actuator.DefaultRetryPolicy).
	Retry actuator.RetryPolicy
	// Obs is the observability hub the engine instruments itself
	// through; nil makes the engine create a private one. Sharing one
	// hub between the engine and the simulated account (as
	// kwo.NewSimulation does) puts warehouse-side fault and telemetry
	// metrics on the same registry as the optimizer's.
	Obs *obs.Hub
}

// DefaultOptions returns production-plausible defaults.
func DefaultOptions() Options {
	return Options{
		TrainEvery:        4 * time.Hour,
		DecideEvery:       10 * time.Minute,
		HistoryWindow:     90 * 24 * time.Hour,
		BillEvery:         24 * time.Hour,
		OverheadPerOp:     0.0005,
		SavingsShare:      0.20,
		RL:                rl.DefaultConfig(),
		PretrainSteps:     1500,
		WarmupWindows:     6,
		MaxActionsPerHour: 6,
		RampStepHours:     18,
	}
}

// WarehouseSettings is the per-warehouse customer configuration: the
// slider position and the hard constraint rules.
type WarehouseSettings struct {
	Slider      policy.Slider
	Constraints policy.Constraints
}

// DefaultSettings is a Balanced slider with no constraints.
func DefaultSettings() WarehouseSettings {
	return WarehouseSettings{Slider: policy.Balanced}
}
