package core

import (
	"time"

	"kwo/internal/monitor"
	"kwo/internal/telemetry"
)

// monitorSnapshot fabricates a snapshot for PerfPenalty tests.
func monitorSnapshot(p99, base, queue time.Duration, queries int) monitor.Snapshot {
	return monitor.Snapshot{
		Stats: telemetry.WindowStats{
			Queries:    queries,
			P99Latency: p99,
			P99Queue:   queue,
		},
		BaselineP99: base,
	}
}
