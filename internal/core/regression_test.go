package core

import (
	"testing"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/monitor"
	"kwo/internal/policy"
	"kwo/internal/simclock"
	"kwo/internal/workload"
)

// TestRestoreRespectsProhibition is a regression test: when an
// enforcement window closes while a NoDownsize prohibition is active,
// the engine must not restore (downsize) the enforced upsize until the
// prohibition lifts.
func TestRestoreRespectsProhibition(t *testing.T) {
	cfg, gen := biWorkload()
	xl := cdw.SizeXLarge
	settings := DefaultSettings()
	settings.Constraints = policy.Constraints{
		{Name: "morning rush", StartMinute: 9 * 60, EndMinute: 9*60 + 30, EnforceSize: &xl},
		{Name: "business hours", StartMinute: 9*60 + 30, EndMinute: 16 * 60, NoDownsize: true},
	}
	sc := runScenario(t, 3, cfg, gen, 1, 2, settings, testOptions())
	if sc.sm.Constrained == 0 {
		t.Fatal("enforcement window never fired")
	}
	for _, ch := range sc.acct.Changes() {
		if ch.Actor != "kwo" || ch.After.Size >= ch.Before.Size {
			continue
		}
		min := ch.Time.Hour()*60 + ch.Time.Minute()
		if min >= 9*60+30 && min < 16*60 {
			t.Fatalf("KWO downsized %v -> %v at %v inside the no-downsize window",
				ch.Before.Size, ch.After.Size, ch.Time)
		}
	}
}

// TestSnapshotDoesNotFoldWindow is a regression test: Engine.Snapshot
// promises a side-effect-free read, but it used to fold a monitor
// window on every call, corrupting baselines for callers that poll.
func TestSnapshotDoesNotFoldWindow(t *testing.T) {
	cfg, gen := biWorkload()
	opts := testOptions()
	sched := simclock.NewScheduler(5)
	acct := cdw.NewAccount(sched, cdw.DefaultSimParams())
	engine := NewEngine(acct, opts)
	if _, err := acct.CreateWarehouse(cfg); err != nil {
		t.Fatal(err)
	}
	end := t0.Add(2 * 24 * time.Hour)
	arr := gen.Generate(t0, end, sched.Rand("workload"))
	workload.Drive(sched, acct, cfg.Name, arr)
	sched.RunUntil(t0.Add(24 * time.Hour))
	sm, err := engine.Attach(cfg.Name, DefaultSettings())
	if err != nil {
		t.Fatal(err)
	}
	engine.Start()

	// Poll mid-run, during business-hour traffic, so the observation
	// window is non-empty — the case where a fold would advance state.
	polled := false
	sched.Schedule(t0.Add(36*time.Hour), "poll", func() {
		before := sm.Monitor().Windows()
		var last monitor.Snapshot
		for i := 0; i < 5; i++ {
			s, err := engine.Snapshot(cfg.Name)
			if err != nil {
				t.Error(err)
				return
			}
			last = s
		}
		if last.Stats.Queries == 0 {
			t.Error("precondition: observation window empty at poll time")
		}
		if after := sm.Monitor().Windows(); after != before {
			t.Errorf("Snapshot folded monitor windows: %d -> %d", before, after)
		}
		polled = true
	})
	sched.RunUntil(end)
	if !polled {
		t.Fatal("poll event never ran")
	}
}

// TestAllowsAlterationFiltersProhibited pins the policy-level oracle
// the restore path uses: a combined alteration is rejected when any
// field violates an active rule.
func TestAllowsAlterationFiltersProhibited(t *testing.T) {
	small := cdw.SizeSmall
	cs := policy.Constraints{{Name: "steady", NoDownsize: true, MaxSize: &small}}
	cur := cdw.Config{Name: "W", Size: cdw.SizeSmall, MinClusters: 1, MaxClusters: 2,
		AutoSuspend: 5 * time.Minute, AutoResume: true}
	at := t0.Add(12 * time.Hour)

	if cs.AllowsAlteration(at, cur, cdw.Alteration{Size: cdw.SizeP(cdw.SizeXSmall)}) {
		t.Fatal("downsize allowed during NoDownsize")
	}
	if cs.AllowsAlteration(at, cur, cdw.Alteration{Size: cdw.SizeP(cdw.SizeMedium)}) {
		t.Fatal("upsize past MaxSize allowed")
	}
	if !cs.AllowsAlteration(at, cur, cdw.Alteration{AutoSuspend: cdw.DurationP(time.Minute)}) {
		t.Fatal("unrelated auto-suspend change rejected")
	}
	if !cs.AllowsAlteration(at, cur, cdw.Alteration{}) {
		t.Fatal("zero alteration rejected")
	}
}
