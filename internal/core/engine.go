package core

import (
	"fmt"
	"time"

	"kwo/internal/action"
	"kwo/internal/actuator"
	"kwo/internal/cdw"
	"kwo/internal/costmodel"
	"kwo/internal/monitor"
	"kwo/internal/obs"
	"kwo/internal/pricing"
	"kwo/internal/simclock"
	"kwo/internal/telemetry"
)

// replayLag is how far the rolling replay cursor trails the clock.
// Telemetry only learns a query's submission once the query completes,
// so advancing the cursor right up to now would make every long query a
// straggler that forces a rebuild; trailing by an hour keeps rebuilds
// to queries that run longer than that. Correctness never depends on
// the lag — the cursor detects stragglers and rebuilds itself.
const replayLag = time.Hour

// ingestFailThreshold is how many consecutive billing-history pull
// failures put a warehouse into degraded mode: a blind optimizer must
// stop optimizing.
const ingestFailThreshold = 3

// Engine runs Algorithm 1 for every attached warehouse of one account.
type Engine struct {
	acct   *cdw.Account
	sched  *simclock.Scheduler
	store  *telemetry.Store
	act    *actuator.Actuator
	ledger *pricing.Ledger
	opts   Options
	hub    *obs.Hub
	// optsErr records an invalid Options field detected at construction
	// (e.g. an out-of-range SavingsShare). The constructors keep their
	// no-error signatures for composability; the error surfaces at
	// Attach, before the engine can bill anything at the wrong rate.
	optsErr error

	models map[string]*smState
	names  []string

	started time.Time
	running bool
	gen     uint64 // invalidates scheduled events after Stop
}

// smState couples a smart model with engine-side bookkeeping.
type smState struct {
	sm *SmartModel
	// lastChangeIdx is how many audit-log rows were already examined
	// for external changes.
	lastChangeIdx int
	// billStart is the beginning of the current billing period.
	billStart time.Time
	attachAt  time.Time
	// lastBillingPull is the last completed metering bucket (hourly on
	// Snowflake) whose billing history was ingested into the telemetry
	// store.
	lastBillingPull time.Time
	// cursor incrementally replays the current billing period so the
	// period-closing estimate in bill() is O(new records) instead of a
	// from-scratch pass over the whole period. It is discarded whenever
	// the model it was built on is retrained or the period rolls over.
	cursor *costmodel.ReplayCursor

	// Fault-tolerance bookkeeping (see Health).
	ingestFails   int // consecutive failed billing-history pulls
	degraded      bool
	degradedSince time.Time
	degradedTicks int
	recoveries    int

	// Cached per-warehouse obs instruments for the hot tick path — one
	// label resolution at attach instead of one per tick.
	obsTicks         *obs.Counter
	obsDegradedTicks *obs.Counter
	obsTrainings     *obs.Counter
}

// Health reports the engine's fault-handling state for one warehouse.
type Health struct {
	// Degraded reports safe mode: the circuit breaker is open or
	// ingestion keeps failing, so the engine holds constraint
	// enforcement as the only permitted action class.
	Degraded      bool
	DegradedSince time.Time
	// Pending reports an actuation still retrying in the background.
	Pending     bool
	BreakerOpen bool
	// IngestFailures is the current consecutive billing-pull failure
	// count (resets on the first successful pull).
	IngestFailures int
	// DegradedTicks counts decision ticks spent in degraded mode;
	// Recoveries counts degraded→normal transitions.
	DegradedTicks int
	Recoveries    int
}

// NewEngine creates an engine over the account. It subscribes its own
// telemetry store to the account; create the engine before driving
// workload, or use NewEngineWithStore with a store that has been
// subscribed all along, if training should see the full history.
func NewEngine(acct *cdw.Account, opts Options) *Engine {
	store := telemetry.NewStore()
	acct.Subscribe(store)
	return NewEngineWithStore(acct, store, opts)
}

// NewEngineWithStore creates an engine that reads telemetry from an
// existing store (already subscribed to the account by the caller).
func NewEngineWithStore(acct *cdw.Account, store *telemetry.Store, opts Options) *Engine {
	hub := opts.Obs
	if hub == nil {
		hub = obs.NewHub(acct.Scheduler().Now)
	}
	ledger, ledgerErr := pricing.NewLedger(opts.SavingsShare)
	if ledgerErr != nil {
		// Keep the engine constructible (accessors stay non-nil) but
		// refuse to attach warehouses: nothing may ever be invoiced at a
		// silently-substituted rate.
		ledger, _ = pricing.NewLedger(0)
	}
	e := &Engine{
		acct:    acct,
		sched:   acct.Scheduler(),
		store:   store,
		act:     actuator.New(acct, opts.OverheadPerOp),
		ledger:  ledger,
		opts:    opts,
		hub:     hub,
		optsErr: ledgerErr,
		models:  make(map[string]*smState),
	}
	e.act.SetObs(hub)
	if opts.Retry.MaxAttempts > 0 {
		e.act.SetRetryPolicy(opts.Retry)
	}
	// Operations that land on an asynchronous retry bypass tick's
	// bookkeeping; the callback keeps the smart model's expected config
	// in sync so a late success is not mistaken for anything else.
	e.act.SetOnApplied(func(warehouse, reason string, act action.Action, after cdw.Config) {
		st, ok := e.models[warehouse]
		if !ok {
			return
		}
		if act.Kind != action.NoOp {
			st.sm.markApplied(act, after)
			return
		}
		st.sm.expected = after
	})
	// A retried alteration was legal when decided, but the world moves
	// while it waits out its backoff: a constraint window may open, or an
	// external change may pause optimization. Discretionary retries are
	// revalidated against the rules in force at retry time; enforcement
	// ("constraint") always proceeds — it is what the rules demand.
	e.act.SetRetryGate(func(warehouse, reason string, alt cdw.Alteration) bool {
		if reason == "constraint" {
			return true
		}
		st, ok := e.models[warehouse]
		if !ok {
			return true
		}
		if st.sm.paused {
			return false
		}
		wh, err := e.acct.Warehouse(warehouse)
		if err != nil {
			return false
		}
		return st.sm.settings.Constraints.AllowsAlteration(e.sched.Now(), wh.Config(), alt)
	})
	return e
}

// Health reports the fault-handling state for a warehouse.
func (e *Engine) Health(warehouse string) (Health, error) {
	st, ok := e.models[warehouse]
	if !ok {
		return Health{}, fmt.Errorf("core: warehouse %s not attached", warehouse)
	}
	return Health{
		Degraded:       st.degraded,
		DegradedSince:  st.degradedSince,
		Pending:        e.act.Pending(warehouse),
		BreakerOpen:    e.act.BreakerOpen(warehouse),
		IngestFailures: st.ingestFails,
		DegradedTicks:  st.degradedTicks,
		Recoveries:     st.recoveries,
	}, nil
}

// Store exposes the engine's telemetry store (e.g. for dashboards).
func (e *Engine) Store() *telemetry.Store { return e.store }

// Ledger exposes the value-based pricing ledger.
func (e *Engine) Ledger() *pricing.Ledger { return e.ledger }

// Actuator exposes the action log.
func (e *Engine) Actuator() *actuator.Actuator { return e.act }

// Obs exposes the engine's observability hub (metrics registry and
// event bus). Never nil.
func (e *Engine) Obs() *obs.Hub { return e.hub }

// Attach registers a warehouse for optimization. The warehouse's
// current configuration becomes the without-Keebo baseline, and an
// initial training pass runs over whatever telemetry already exists
// (Algorithm 1 line 8: read the last 90 days).
func (e *Engine) Attach(warehouse string, settings WarehouseSettings) (*SmartModel, error) {
	if e.optsErr != nil {
		return nil, fmt.Errorf("core: engine misconfigured: %w", e.optsErr)
	}
	if _, ok := e.models[warehouse]; ok {
		return nil, fmt.Errorf("core: warehouse %s already attached", warehouse)
	}
	if err := settings.Constraints.Validate(); err != nil {
		return nil, err
	}
	if !settings.Slider.Valid() {
		return nil, fmt.Errorf("core: invalid slider position %d", int(settings.Slider))
	}
	wh, err := e.acct.Warehouse(warehouse)
	if err != nil {
		return nil, err
	}
	now := e.sched.Now()
	orig := wh.Config()
	rng := e.sched.Rand("smartmodel:" + warehouse)
	sm := newSmartModel(warehouse, orig, settings, e.store, rng, e.opts)
	sm.attachedAt = now
	sm.setBackend(e.acct.Backend())
	st := &smState{sm: sm, billStart: now, attachAt: now,
		lastChangeIdx:    len(e.acct.Changes()),
		obsTicks:         e.hub.DecisionTicks.With(warehouse),
		obsDegradedTicks: e.hub.DegradedTicks.With(warehouse),
		obsTrainings:     e.hub.Trainings.With(warehouse),
	}
	e.models[warehouse] = st
	e.names = append(e.names, warehouse)

	// Export the monitor's verdicts as it folds each window; the
	// callback is a pure observer of snapshots Observe computes anyway.
	sm.mon.SetObserver(func(snap monitor.Snapshot) {
		e.hub.BaselineP99.With(warehouse).Set(snap.BaselineP99.Seconds())
		e.hub.BaselineQPH.With(warehouse).Set(snap.BaselineQPH)
		if snap.LatencySpike {
			e.hub.MonitorSpikes.With(warehouse, "latency").Inc()
		}
		if snap.QueueSpike {
			e.hub.MonitorSpikes.With(warehouse, "queue").Inc()
		}
		if snap.LoadSpike {
			e.hub.MonitorSpikes.With(warehouse, "load").Inc()
		}
		if snap.NewPattern {
			e.hub.MonitorSpikes.With(warehouse, "new-pattern").Inc()
		}
	})

	// Initial training from existing history.
	log := e.store.Log(warehouse)
	if log != nil && len(log.Queries) > 0 {
		from := now.Add(-e.opts.HistoryWindow)
		sm.retrain(log, from, now, e.acct.Params().MaxConcurrency, e.opts)
		st.obsTrainings.Inc()
	}
	if e.running {
		e.scheduleLoops(st)
	}
	return sm, nil
}

// Model returns the smart model for a warehouse.
func (e *Engine) Model(warehouse string) (*SmartModel, error) {
	st, ok := e.models[warehouse]
	if !ok {
		return nil, fmt.Errorf("core: warehouse %s not attached", warehouse)
	}
	return st.sm, nil
}

// Warehouses lists attached warehouses in attach order.
func (e *Engine) Warehouses() []string {
	out := make([]string, len(e.names))
	copy(out, e.names)
	return out
}

// Start begins the optimization loops for every attached warehouse.
func (e *Engine) Start() {
	if e.running {
		return
	}
	e.running = true
	e.started = e.sched.Now()
	for _, name := range e.names {
		e.scheduleLoops(e.models[name])
	}
}

// Stop halts all loops (pending events become no-ops).
func (e *Engine) Stop() {
	e.running = false
	e.gen++
}

// Started returns the engine start time.
func (e *Engine) Started() time.Time { return e.started }

// Options returns the engine's configuration.
func (e *Engine) Options() Options { return e.opts }

// BillingPeriodStart returns the start of the warehouse's current
// (not yet invoiced) billing period — harnesses use it to assert that
// invoices tile the time axis with no gaps or overlaps.
func (e *Engine) BillingPeriodStart(warehouse string) (time.Time, error) {
	st, ok := e.models[warehouse]
	if !ok {
		return time.Time{}, fmt.Errorf("core: warehouse %s not attached", warehouse)
	}
	return st.billStart, nil
}

// BillingWatermark returns the last completed metering bucket whose
// billing history was ingested for the warehouse — the engine's ingest
// cursor. The fleet's crash-recovery checkpoints record it so a resumed
// run can prove its billing continuity matches the interrupted one.
func (e *Engine) BillingWatermark(warehouse string) (time.Time, error) {
	st, ok := e.models[warehouse]
	if !ok {
		return time.Time{}, fmt.Errorf("core: warehouse %s not attached", warehouse)
	}
	return st.lastBillingPull, nil
}

// AttachedAt returns when the warehouse was attached.
func (e *Engine) AttachedAt(warehouse string) (time.Time, error) {
	st, ok := e.models[warehouse]
	if !ok {
		return time.Time{}, fmt.Errorf("core: warehouse %s not attached", warehouse)
	}
	return st.attachAt, nil
}

func (e *Engine) scheduleLoops(st *smState) {
	gen := e.gen
	var decideLoop, trainLoop, billLoop func()
	decideLoop = func() {
		if gen != e.gen {
			return
		}
		e.tick(st)
		e.sched.After(e.opts.DecideEvery, "kwo-decide:"+st.sm.Warehouse, decideLoop)
	}
	trainLoop = func() {
		if gen != e.gen {
			return
		}
		e.retrain(st)
		e.sched.After(e.opts.TrainEvery, "kwo-train:"+st.sm.Warehouse, trainLoop)
	}
	billLoop = func() {
		if gen != e.gen {
			return
		}
		e.bill(st)
		e.sched.After(e.opts.BillEvery, "kwo-bill:"+st.sm.Warehouse, billLoop)
	}
	e.sched.After(e.opts.DecideEvery, "kwo-decide:"+st.sm.Warehouse, decideLoop)
	e.sched.After(e.opts.TrainEvery, "kwo-train:"+st.sm.Warehouse, trainLoop)
	e.sched.After(e.opts.BillEvery, "kwo-bill:"+st.sm.Warehouse, billLoop)
}

// tick is one Algorithm 1 real-time decision pass for one warehouse.
func (e *Engine) tick(st *smState) {
	sm := st.sm
	now := e.sched.Now()
	wh, err := e.acct.Warehouse(sm.Warehouse)
	if err != nil {
		return
	}
	st.obsTicks.Inc()
	// Telemetry collection overhead (Figure 6's red series).
	e.act.MeterTelemetryPull()

	// Ingest billing history since the last pull (§6.1: training data
	// is query history + billing history). Completed metering buckets
	// only — the bucket width comes from the backend (hourly on
	// Snowflake) — and the current partial bucket is re-pulled next
	// time. The pull goes through the account's fault-aware history API,
	// and the cursor advances only to the returned watermark — a lagging
	// metering view shortens this pull instead of silently losing the
	// delayed buckets.
	gran := e.acct.Backend().MeteringGranularity()
	bucketNow := now.Truncate(gran)
	if bucketNow.After(st.lastBillingPull) {
		from := st.lastBillingPull
		if from.IsZero() {
			from = st.attachAt.Add(-e.opts.HistoryWindow).Truncate(gran)
		}
		rows, watermark, err := e.acct.BillingHistory(sm.Warehouse, from, bucketNow)
		if err != nil {
			st.ingestFails++
			e.act.NoteIngestFailure(sm.Warehouse, err)
		} else {
			st.ingestFails = 0
			if len(rows) > 0 {
				e.store.AddBilling(sm.Warehouse, rows)
			}
			st.lastBillingPull = watermark
		}
	}

	// Advance the rolling replay cursor a safe distance behind now so
	// the billing-period estimate amortizes over ticks instead of
	// re-replaying the whole period when the invoice closes.
	if log := e.store.Log(sm.Warehouse); log != nil && sm.cost != nil {
		if st.cursor == nil || st.cursor.Model() != sm.cost {
			st.cursor = costmodel.NewReplayCursor(sm.cost, log, st.billStart)
			st.cursor.SetOnRebuild(e.hub.CursorRebuilds.With(sm.Warehouse).Inc)
		}
		if w := now.Add(-replayLag); w.After(st.billStart) {
			st.cursor.Advance(w)
		}
	}

	current := wh.Config()
	snap := sm.mon.Observe(now)
	sm.noteSnapshot(snap)

	// External-change scan over the audit rows since the last tick.
	changes := e.acct.Changes()
	var external bool
	for _, c := range changes[st.lastChangeIdx:] {
		if c.Warehouse == sm.Warehouse && c.Actor != actuator.Actor {
			external = true
		}
	}
	st.lastChangeIdx = len(changes)

	credits := wh.Meter().TotalCredits(now)

	// Degraded/safe-mode bookkeeping: a blind or write-broken optimizer
	// must stop optimizing. Enforcement stays allowed — it is the one
	// action class the customer's rules demand regardless.
	pending := e.act.Pending(sm.Warehouse)
	wasDegraded := st.degraded
	breakerOpen := e.act.BreakerOpen(sm.Warehouse)
	st.degraded = breakerOpen || st.ingestFails >= ingestFailThreshold
	if st.degraded {
		if !wasDegraded {
			st.degradedSince = now
			sm.enterDegraded()
			cause := "ingest-failures"
			if breakerOpen {
				cause = "breaker-open"
			}
			e.hub.Degraded.With(sm.Warehouse).Set(1)
			e.hub.DegradedTransitions.With(sm.Warehouse, "enter").Inc()
			e.hub.Emit(obs.EventDegradedEnter, sm.Warehouse, obs.A("cause", cause))
		}
		st.degradedTicks++
		st.obsDegradedTicks.Inc()
	} else if wasDegraded {
		st.recoveries++
		e.hub.Degraded.With(sm.Warehouse).Set(0)
		e.hub.DegradedTransitions.With(sm.Warehouse, "exit").Inc()
		e.hub.Emit(obs.EventDegradedExit, sm.Warehouse,
			obs.AInt("degraded_ticks", st.degradedTicks))
	}

	// Reconcile expected-vs-actual. With no retry in flight and no
	// external audit rows to explain a mismatch, the divergence is our
	// own doing — an acknowledged-lost write that landed, or an abandoned
	// retry that did not. Adopt reality instead of letting a stale
	// expectation misclassify our own failed writes later.
	if !external && !sm.paused && !pending && sm.expected != current {
		sm.expected = current
	}

	if st.degraded || pending {
		if enforce := sm.decideDegraded(now, current, snap, external, credits); !enforce.IsZero() {
			reason := "constraint"
			if sm.settings.Constraints.Required(now, current).IsZero() {
				reason = "constraint-restore"
			}
			e.hub.Emit(obs.EventDecision, sm.Warehouse,
				obs.A("kind", "enforce"), obs.A("reason", reason),
				obs.A("mode", "degraded"), obs.A("statement", enforce.String()))
			if err := e.act.ApplyAlteration(sm.Warehouse, enforce, reason); err == nil {
				sm.expected = wh.Config()
			}
		}
		return
	}

	act, enforce := sm.decide(now, current, snap, external, credits, e.opts)

	if !enforce.IsZero() {
		// Enforcement proper (a window demands compliance now) and the
		// post-window restore are logged under distinct reasons so audits
		// can hold each to its own invariant. On failure the error is
		// already in the actuator's failure log and retries continue in
		// the background; the window is still active next tick, so
		// enforcement re-fires until the config complies — expected is
		// only advanced on a synchronous success (the OnApplied callback
		// covers asynchronous ones).
		reason := "constraint"
		if sm.settings.Constraints.Required(now, current).IsZero() {
			reason = "constraint-restore"
		}
		e.hub.Emit(obs.EventDecision, sm.Warehouse,
			obs.A("kind", "enforce"), obs.A("reason", reason),
			obs.A("statement", enforce.String()))
		if err := e.act.ApplyAlteration(sm.Warehouse, enforce, reason); err == nil {
			sm.expected = wh.Config()
		}
		return
	}
	if act.Kind == action.NoOp {
		return
	}
	reason := "smart-model"
	if act.Reverts {
		reason = "revert"
		// The self-correction monitor vetoed a live regression; this is
		// the §4.4 backoff firing, traced so operators can correlate it
		// with the spike that triggered it.
		e.hub.MonitorReverts.With(sm.Warehouse).Inc()
		e.hub.Emit(obs.EventMonitorBackoff, sm.Warehouse,
			obs.A("action", act.Kind.String()))
	}
	e.hub.Emit(obs.EventDecision, sm.Warehouse,
		obs.A("kind", act.Kind.String()), obs.A("reason", reason))
	if applied, err := e.act.Apply(act, reason); err == nil && applied {
		sm.markApplied(act, wh.Config())
	}
}

// retrain refreshes one warehouse's cost model and agent.
func (e *Engine) retrain(st *smState) {
	now := e.sched.Now()
	log := e.store.Log(st.sm.Warehouse)
	if log == nil || len(log.Queries) == 0 {
		return
	}
	from := now.Add(-e.opts.HistoryWindow)
	st.sm.retrain(log, from, now, e.acct.Params().MaxConcurrency, e.opts)
	st.obsTrainings.Inc()
}

// bill closes the current billing period with a what-if savings
// estimate and an invoice.
func (e *Engine) bill(st *smState) {
	sm := st.sm
	now := e.sched.Now()
	wh, err := e.acct.Warehouse(sm.Warehouse)
	if err != nil {
		return
	}
	if sm.cost == nil {
		// No trained cost model yet, so no counterfactual — but the
		// period must still close with an invoice, because harnesses are
		// promised (see BillingPeriodStart) that invoices tile the time
		// axis with no gaps. Claim zero savings: without = actual.
		if now.After(st.billStart) {
			actual := wh.Meter().CreditsBetween(st.billStart, now, now)
			inv := e.ledger.Add(sm.Warehouse, st.billStart, now, actual, actual)
			e.noteInvoice(inv)
		}
		st.billStart = now
		st.cursor = nil
		return
	}
	log := e.store.Log(sm.Warehouse)
	actual := wh.Meter().CreditsBetween(st.billStart, now, now)
	var without float64
	if st.cursor != nil && st.cursor.Model() == sm.cost && st.cursor.From().Equal(st.billStart) {
		// The cursor has consumed most of the period during ticks; this
		// final advance only replays the lagged tail. Its result is
		// exactly what the from-scratch replay below would compute.
		without = st.cursor.Advance(now).Credits
		e.hub.Replays.With(sm.Warehouse, "incremental").Inc()
	} else {
		without = sm.cost.Replay(log, st.billStart, now).Credits
		e.hub.Replays.With(sm.Warehouse, "scratch").Inc()
	}
	inv := e.ledger.Add(sm.Warehouse, st.billStart, now, actual, without)
	e.noteInvoice(inv)
	st.billStart = now
	st.cursor = nil
}

// noteInvoice mirrors a freshly cut invoice into the obs registry and
// event bus.
func (e *Engine) noteInvoice(inv pricing.Invoice) {
	e.hub.Invoices.With(inv.Warehouse).Inc()
	e.hub.InvoiceActual.With(inv.Warehouse).Add(inv.ActualCredits)
	e.hub.InvoiceSavings.With(inv.Warehouse).Add(inv.Savings)
	e.hub.InvoiceCharge.With(inv.Warehouse).Add(inv.Charge)
	e.hub.Emit(obs.EventInvoice, inv.Warehouse,
		obs.A("from", inv.From.Format(time.RFC3339)),
		obs.A("to", inv.To.Format(time.RFC3339)),
		obs.AFloat("actual_credits", inv.ActualCredits),
		obs.AFloat("savings_credits", inv.Savings),
		obs.AFloat("charge_credits", inv.Charge))
}

// EstimateSavings runs an on-demand what-if estimate for a warehouse
// over [from, to) using its current cost model.
func (e *Engine) EstimateSavings(warehouse string, from, to time.Time) (actual, without float64, err error) {
	st, ok := e.models[warehouse]
	if !ok {
		return 0, 0, fmt.Errorf("core: warehouse %s not attached", warehouse)
	}
	if st.sm.cost == nil {
		return 0, 0, fmt.Errorf("core: warehouse %s has no trained cost model yet", warehouse)
	}
	wh, err := e.acct.Warehouse(warehouse)
	if err != nil {
		return 0, 0, err
	}
	now := e.sched.Now()
	actual = wh.Meter().CreditsBetween(from, to, now)
	without = st.sm.cost.Replay(e.store.Log(warehouse), from, to).Credits
	return actual, without, nil
}

// Snapshot returns the monitor's latest view without folding a new
// window (for dashboards/tests).
func (e *Engine) Snapshot(warehouse string) (monitor.Snapshot, error) {
	st, ok := e.models[warehouse]
	if !ok {
		return monitor.Snapshot{}, fmt.Errorf("core: warehouse %s not attached", warehouse)
	}
	return st.sm.mon.Peek(e.sched.Now()), nil
}
