package core

import (
	"math"
	"testing"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/policy"
	"kwo/internal/simclock"
	"kwo/internal/workload"
)

var t0 = simclock.Epoch

// testOptions returns engine options downsized for fast tests.
func testOptions() Options {
	opts := DefaultOptions()
	opts.PretrainSteps = 150
	opts.TrainEvery = 6 * time.Hour
	return opts
}

// scenario runs preDays of workload without KWO, attaches the engine
// with the given settings, and runs kwoDays more.
type scenario struct {
	sched  *simclock.Scheduler
	acct   *cdw.Account
	engine *Engine
	sm     *SmartModel
	attach time.Time
	end    time.Time
}

func runScenario(t *testing.T, seed int64, orig cdw.Config, gen workload.Generator,
	preDays, kwoDays int, settings WarehouseSettings, opts Options) *scenario {
	t.Helper()
	sched := simclock.NewScheduler(seed)
	acct := cdw.NewAccount(sched, cdw.DefaultSimParams())
	engine := NewEngine(acct, opts)
	if _, err := acct.CreateWarehouse(orig); err != nil {
		t.Fatal(err)
	}
	end := t0.Add(time.Duration(preDays+kwoDays) * 24 * time.Hour)
	arr := gen.Generate(t0, end, sched.Rand("workload"))
	workload.Drive(sched, acct, orig.Name, arr)

	attach := t0.Add(time.Duration(preDays) * 24 * time.Hour)
	sched.RunUntil(attach)
	sm, err := engine.Attach(orig.Name, settings)
	if err != nil {
		t.Fatal(err)
	}
	engine.Start()
	sched.RunUntil(end.Add(time.Hour))
	return &scenario{sched: sched, acct: acct, engine: engine, sm: sm,
		attach: attach, end: end}
}

func biWorkload() (cdw.Config, workload.Generator) {
	biPool, _, _ := workload.StandardPools()
	cfg := cdw.Config{
		Name: "BI_WH", Size: cdw.SizeLarge, MinClusters: 1, MaxClusters: 1,
		Policy: cdw.ScaleStandard, AutoSuspend: 10 * time.Minute, AutoResume: true,
	}
	return cfg, workload.BI{Pool: biPool, PeakQPH: 60, WeekendFactor: 0.3}
}

func TestEngineSavesOnOversizedWarehouse(t *testing.T) {
	cfg, gen := biWorkload()
	sc := runScenario(t, 1, cfg, gen, 3, 5, DefaultSettings(), testOptions())

	wh, _ := sc.acct.Warehouse("BI_WH")
	now := sc.sched.Now()
	preDaily := wh.Meter().CreditsBetween(t0, sc.attach, now) / 3
	// Skip the first with-KWO day (ramp-up) when judging steady state.
	steadyFrom := sc.attach.Add(24 * time.Hour)
	kwoDaily := wh.Meter().CreditsBetween(steadyFrom, sc.end, now) / 4

	if preDaily <= 0 {
		t.Fatal("no pre-KWO spend")
	}
	reduction := 1 - kwoDaily/preDaily
	t.Logf("daily credits: pre=%.1f with=%.1f (reduction %.0f%%), actions=%d reverts=%d",
		preDaily, kwoDaily, reduction*100, sc.sm.Applied, sc.sm.Reverts)
	if reduction < 0.20 {
		t.Fatalf("savings %.1f%% below the paper's 20%% floor", reduction*100)
	}
	if sc.sm.Applied == 0 {
		t.Fatal("engine never acted")
	}

	// Performance guardrail: p99 must not explode.
	log := sc.engine.Store().Log("BI_WH")
	preP99 := log.Stats(t0, sc.attach).P99Latency
	kwoP99 := log.Stats(steadyFrom, sc.end).P99Latency
	t.Logf("p99: pre=%v with=%v", preP99, kwoP99)
	if kwoP99 > 6*preP99 {
		t.Fatalf("p99 exploded: %v → %v", preP99, kwoP99)
	}
}

func TestEngineDeterministic(t *testing.T) {
	cfg, gen := biWorkload()
	run := func() (float64, int) {
		sc := runScenario(t, 7, cfg, gen, 2, 2, DefaultSettings(), testOptions())
		wh, _ := sc.acct.Warehouse("BI_WH")
		return wh.Meter().TotalCredits(sc.sched.Now()), sc.sm.Applied
	}
	c1, a1 := run()
	c2, a2 := run()
	if c1 != c2 || a1 != a2 {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", c1, a1, c2, a2)
	}
}

func TestConstraintsNeverViolated(t *testing.T) {
	cfg, gen := biWorkload()
	minSize := cdw.SizeMedium
	settings := WarehouseSettings{
		Slider: policy.LowestCost, // maximum pressure on the constraint
		Constraints: policy.Constraints{
			{Name: "size floor", MinSize: &minSize},
			{Name: "protect mornings", Days: []time.Weekday{time.Monday, time.Tuesday,
				time.Wednesday, time.Thursday, time.Friday},
				StartMinute: 9 * 60, EndMinute: 10 * 60, NoDownsize: true},
		},
	}
	sc := runScenario(t, 2, cfg, gen, 2, 5, settings, testOptions())

	// Audit every change KWO made.
	for _, ch := range sc.acct.Changes() {
		if ch.Actor != "kwo" {
			continue
		}
		if ch.After.Size < minSize {
			t.Fatalf("constraint violated: size %v set at %v", ch.After.Size, ch.Time)
		}
		if ch.After.Size < ch.Before.Size {
			min := ch.Time.Hour()*60 + ch.Time.Minute()
			wd := ch.Time.Weekday()
			weekday := wd != time.Saturday && wd != time.Sunday
			if weekday && min >= 9*60 && min < 10*60 {
				t.Fatalf("downsize during protected window at %v", ch.Time)
			}
		}
	}
	if sc.sm.Applied == 0 {
		t.Fatal("engine never acted under constraints")
	}
}

func TestConstraintEnforcementWindow(t *testing.T) {
	cfg, gen := biWorkload()
	xl := cdw.SizeXLarge
	three := 3
	cfg.MaxClusters = 4
	settings := DefaultSettings()
	settings.Constraints = policy.Constraints{{
		Name: "morning rush", StartMinute: 9 * 60, EndMinute: 9*60 + 30,
		EnforceSize: &xl, MinClusters: &three,
	}}
	sc := runScenario(t, 3, cfg, gen, 1, 2, settings, testOptions())
	if sc.sm.Constrained == 0 {
		t.Fatal("enforcement window never fired")
	}
	// Find an enforcement change in the audit log inside the window.
	found := false
	for _, ch := range sc.acct.Changes() {
		min := ch.Time.Hour()*60 + ch.Time.Minute()
		if ch.Actor == "kwo" && min >= 9*60 && min < 9*60+30 &&
			ch.After.Size == cdw.SizeXLarge && ch.After.MinClusters >= 3 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no compliant enforcement change found in audit log")
	}
}

func TestExternalChangePausesOptimization(t *testing.T) {
	cfg, gen := biWorkload()
	opts := testOptions()
	sc := func() *scenario {
		sched := simclock.NewScheduler(4)
		acct := cdw.NewAccount(sched, cdw.DefaultSimParams())
		engine := NewEngine(acct, opts)
		acct.CreateWarehouse(cfg)
		end := t0.Add(5 * 24 * time.Hour)
		arr := gen.Generate(t0, end, sched.Rand("workload"))
		workload.Drive(sched, acct, cfg.Name, arr)
		sched.RunUntil(t0.Add(24 * time.Hour))
		sm, _ := engine.Attach(cfg.Name, DefaultSettings())
		engine.Start()
		// External admin resizes at day 2.5.
		sched.Schedule(t0.Add(60*time.Hour), "external", func() {
			acct.Alter(cfg.Name, cdw.Alteration{Size: cdw.SizeP(cdw.Size2XLarge)}, "dba-jane")
		})
		sched.RunUntil(end)
		return &scenario{sched: sched, acct: acct, engine: engine, sm: sm, end: end}
	}()

	if !sc.sm.Paused() {
		t.Fatal("external change did not pause optimization")
	}
	if sc.sm.Pauses == 0 {
		t.Fatal("pause counter zero")
	}
	// No KWO-actor changes after the external change.
	extAt := t0.Add(60 * time.Hour)
	for _, ch := range sc.acct.Changes() {
		if ch.Actor == "kwo" && ch.Time.After(extAt.Add(time.Minute)) {
			t.Fatalf("KWO acted while paused: %+v", ch)
		}
	}
	// Admin explicitly resumes.
	wh, _ := sc.acct.Warehouse(cfg.Name)
	sc.sm.ResumeOptimization(wh.Config())
	if sc.sm.Paused() {
		t.Fatal("resume ignored")
	}
}

func TestOverheadNegligible(t *testing.T) {
	cfg, gen := biWorkload()
	sc := runScenario(t, 5, cfg, gen, 2, 3, DefaultSettings(), testOptions())
	wh, _ := sc.acct.Warehouse("BI_WH")
	now := sc.sched.Now()
	actual := wh.Meter().CreditsBetween(sc.attach, sc.end, now)
	overhead := sc.acct.OverheadBetween(sc.attach, sc.end)
	if overhead <= 0 {
		t.Fatal("no overhead metered")
	}
	if overhead > 0.02*actual {
		t.Fatalf("overhead %.3f is %.1f%% of spend %.1f — not negligible",
			overhead, 100*overhead/actual, actual)
	}
}

func TestBillingInvoices(t *testing.T) {
	cfg, gen := biWorkload()
	sc := runScenario(t, 6, cfg, gen, 2, 3, DefaultSettings(), testOptions())
	invs := sc.engine.Ledger().Invoices()
	if len(invs) < 2 {
		t.Fatalf("invoices = %d, want >= 2 (daily billing over 3 days)", len(invs))
	}
	for _, inv := range invs {
		if inv.Charge < 0 || inv.Charge > inv.Savings*inv.Rate+1e-9 {
			t.Fatalf("bad invoice: %+v", inv)
		}
	}
	if sc.engine.Ledger().TotalSavings() <= 0 {
		t.Fatal("no savings invoiced on an oversized warehouse")
	}
}

func TestReportFields(t *testing.T) {
	cfg, gen := biWorkload()
	sc := runScenario(t, 8, cfg, gen, 2, 3, DefaultSettings(), testOptions())
	rep, err := sc.engine.Report("BI_WH", sc.attach, sc.end)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries == 0 || rep.ActualCredits <= 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	if rep.WithoutKeebo <= 0 {
		t.Fatal("no counterfactual estimate")
	}
	if rep.Savings != rep.WithoutKeebo-rep.ActualCredits && rep.Savings != 0 {
		t.Fatal("savings arithmetic wrong")
	}
	if math.Abs(rep.CostPerQuery-rep.ActualCredits/float64(rep.Queries)) > 1e-9 {
		t.Fatal("cost per query wrong")
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
	if _, err := sc.engine.Report("NOPE", sc.attach, sc.end); err == nil {
		t.Fatal("report for unattached warehouse succeeded")
	}
}

func TestDailyAndHourlySeries(t *testing.T) {
	cfg, gen := biWorkload()
	sc := runScenario(t, 9, cfg, gen, 2, 2, DefaultSettings(), testOptions())
	days, err := sc.engine.DailySeries("BI_WH", t0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 4 {
		t.Fatalf("daily rows = %d", len(days))
	}
	var total float64
	for _, d := range days {
		total += d.Credits
	}
	wh, _ := sc.acct.Warehouse("BI_WH")
	if math.Abs(total-wh.Meter().CreditsBetween(t0, t0.Add(4*24*time.Hour), sc.sched.Now())) > 1e-6 {
		t.Fatal("daily series does not sum to total")
	}
	hours, err := sc.engine.HourlySeries("BI_WH", sc.attach, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(hours) != 24 {
		t.Fatalf("hourly rows = %d", len(hours))
	}
	anyOverhead := false
	for _, h := range hours {
		if h.OverheadCredits > 0 {
			anyOverhead = true
		}
	}
	if !anyOverhead {
		t.Fatal("hourly series shows no overhead")
	}
}

func TestOfflineTransitionsBuilt(t *testing.T) {
	cfg, gen := biWorkload()
	sc := runScenario(t, 10, cfg, gen, 2, 1, DefaultSettings(), testOptions())
	log := sc.engine.Store().Log("BI_WH")
	cm := sc.sm.CostModel()
	if cm == nil {
		t.Fatal("cost model not trained")
	}
	ts := OfflineTransitions(log, cm, cfg, t0, sc.end, 10*time.Minute, policy.Balanced.Tuning())
	if len(ts) == 0 {
		t.Fatal("no offline transitions")
	}
	for _, tr := range ts[:min(len(ts), 100)] {
		if len(tr.State) == 0 || math.IsNaN(tr.Reward) || math.IsInf(tr.Reward, 0) {
			t.Fatalf("bad transition: %+v", tr)
		}
	}
	// Empty inputs are safe.
	if got := OfflineTransitions(nil, cm, cfg, t0, sc.end, 10*time.Minute, policy.Balanced.Tuning()); got != nil {
		t.Fatal("nil log produced transitions")
	}
}

func TestAttachErrors(t *testing.T) {
	sched := simclock.NewScheduler(1)
	acct := cdw.NewAccount(sched, cdw.DefaultSimParams())
	engine := NewEngine(acct, testOptions())
	cfg, _ := biWorkload()
	acct.CreateWarehouse(cfg)
	if _, err := engine.Attach("NOPE", DefaultSettings()); err == nil {
		t.Fatal("attached unknown warehouse")
	}
	bad := DefaultSettings()
	bad.Slider = policy.Slider(0)
	if _, err := engine.Attach("BI_WH", bad); err == nil {
		t.Fatal("attached with invalid slider")
	}
	badC := DefaultSettings()
	badC.Constraints = policy.Constraints{{Name: "x", StartMinute: -5}}
	if _, err := engine.Attach("BI_WH", badC); err == nil {
		t.Fatal("attached with invalid constraints")
	}
	if _, err := engine.Attach("BI_WH", DefaultSettings()); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Attach("BI_WH", DefaultSettings()); err == nil {
		t.Fatal("double attach succeeded")
	}
	if got := engine.Warehouses(); len(got) != 1 || got[0] != "BI_WH" {
		t.Fatalf("warehouses = %v", got)
	}
}

func TestStopHaltsActions(t *testing.T) {
	cfg, gen := biWorkload()
	sched := simclock.NewScheduler(11)
	acct := cdw.NewAccount(sched, cdw.DefaultSimParams())
	engine := NewEngine(acct, testOptions())
	acct.CreateWarehouse(cfg)
	end := t0.Add(4 * 24 * time.Hour)
	arr := gen.Generate(t0, end, sched.Rand("workload"))
	workload.Drive(sched, acct, cfg.Name, arr)
	sched.RunUntil(t0.Add(24 * time.Hour))
	engine.Attach(cfg.Name, DefaultSettings())
	engine.Start()
	sched.RunUntil(t0.Add(2 * 24 * time.Hour))
	engine.Stop()
	mark := len(acct.Changes())
	sched.RunUntil(end)
	for _, ch := range acct.Changes()[mark:] {
		if ch.Actor == "kwo" {
			t.Fatalf("KWO acted after Stop: %+v", ch)
		}
	}
}

func TestPerfPenalty(t *testing.T) {
	var snap = func(p99, base, queue time.Duration, n int) float64 {
		s := monitorSnapshot(p99, base, queue, n)
		return PerfPenalty(s)
	}
	if got := snap(2*time.Second, 2*time.Second, 0, 10); got != 0 {
		t.Fatalf("no-degradation penalty = %v", got)
	}
	if got := snap(4*time.Second, 2*time.Second, 0, 10); math.Abs(got-1) > 1e-9 {
		t.Fatalf("2x p99 penalty = %v, want 1", got)
	}
	if got := snap(2*time.Second, 2*time.Second, 30*time.Second, 10); math.Abs(got-1) > 1e-9 {
		t.Fatalf("queue penalty = %v, want 1", got)
	}
	// Faster than baseline: no negative penalty.
	if got := snap(1*time.Second, 2*time.Second, 0, 10); got != 0 {
		t.Fatalf("speedup penalized: %v", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
