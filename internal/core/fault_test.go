package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"kwo/internal/actuator"
	"kwo/internal/cdw"
	"kwo/internal/policy"
	"kwo/internal/simclock"
	"kwo/internal/workload"
)

// faultEngine builds an idle single-warehouse engine (no workload) so
// fault-path behaviour can be observed without smart-model noise.
func faultEngine(t *testing.T, opts Options, settings WarehouseSettings) (*simclock.Scheduler, *cdw.Account, *Engine, *SmartModel) {
	t.Helper()
	sched := simclock.NewScheduler(3)
	acct := cdw.NewAccount(sched, cdw.DefaultSimParams())
	engine := NewEngine(acct, opts)
	if _, err := acct.CreateWarehouse(cdw.Config{
		Name: "W", Size: cdw.SizeMedium, MinClusters: 1, MaxClusters: 2,
		Policy: cdw.ScaleStandard, AutoSuspend: 5 * time.Minute, AutoResume: true,
	}); err != nil {
		t.Fatal(err)
	}
	sm, err := engine.Attach("W", settings)
	if err != nil {
		t.Fatal(err)
	}
	engine.Start()
	return sched, acct, engine, sm
}

// TestUntrainedBillZeroSavingsInvoice covers the billing gap: a period
// closing before the cost model has trained must still produce an
// invoice (zero savings), so invoices tile the time axis from attach.
func TestUntrainedBillZeroSavingsInvoice(t *testing.T) {
	opts := testOptions()
	opts.BillEvery = 6 * time.Hour
	sched, _, engine, sm := faultEngine(t, opts, DefaultSettings())
	sched.RunUntil(t0.Add(25 * time.Hour))

	if sm.CostModel() != nil {
		t.Fatal("cost model trained with no queries; test premise broken")
	}
	invs := engine.Ledger().Invoices()
	if len(invs) != 4 {
		t.Fatalf("invoices = %d, want 4 (every 6h over 25h)", len(invs))
	}
	if !invs[0].From.Equal(t0) {
		t.Fatalf("first invoice starts %v, want attach time %v", invs[0].From, t0)
	}
	for i, inv := range invs {
		if inv.EstimatedWithoutKeebo != inv.ActualCredits {
			t.Fatalf("invoice %d: without=%v actual=%v, want equal (no counterfactual)",
				i, inv.EstimatedWithoutKeebo, inv.ActualCredits)
		}
		if inv.Savings != 0 || inv.Charge != 0 {
			t.Fatalf("invoice %d claims savings %v charge %v with no trained model",
				i, inv.Savings, inv.Charge)
		}
		if i > 0 && !inv.From.Equal(invs[i-1].To) {
			t.Fatalf("invoice gap: %v ends %v, next starts %v", i-1, invs[i-1].To, inv.From)
		}
	}
}

// TestEnforcementFailureSurfacesAndRetries covers the enforcement-path
// fix: a failed constraint enforcement lands in the structured failure
// log, and the engine re-issues the enforcement on following ticks until
// the warehouse complies.
func TestEnforcementFailureSurfacesAndRetries(t *testing.T) {
	settings := DefaultSettings()
	settings.Constraints = policy.Constraints{
		{Name: "pin-large", EnforceSize: cdw.SizeP(cdw.SizeLarge)},
	}
	opts := testOptions() // DecideEvery 10m
	sched, acct, engine, sm := faultEngine(t, opts, settings)
	// Every ALTER fails for the first 25 minutes: the first two
	// enforcement ticks (at +10m and +20m) fail and retry.
	acct.SetFaults(cdw.FaultPlan{
		AlterOutages: []cdw.FaultWindow{{From: t0, To: t0.Add(25 * time.Minute)}},
	})
	sched.RunUntil(t0.Add(45 * time.Minute))

	wh, _ := acct.Warehouse("W")
	if wh.Config().Size != cdw.SizeLarge {
		t.Fatalf("size = %v, want enforcement to land once the outage ends", wh.Config().Size)
	}
	if got := sm.Expected().Size; got != cdw.SizeLarge {
		t.Fatalf("expected config size = %v, want reconciled to Large", got)
	}
	// The failures are visible, attributed to enforcement, and spread
	// over more than one operation (re-issued on a later tick rather
	// than silently dropped).
	ops := map[uint64]bool{}
	transient := 0
	for _, f := range engine.Actuator().Failures() {
		if f.Kind == actuator.FailTransient && f.Reason == "constraint" {
			transient++
			ops[f.OpID] = true
		}
	}
	if transient == 0 {
		t.Fatal("failed enforcement left no transient rows in the failure log")
	}
	if len(ops) < 2 {
		t.Fatalf("enforcement ops with failures = %d, want ≥2 (re-issued next tick)", len(ops))
	}
}

// TestDegradedModeEntryAndRecovery drives the engine blind with a
// billing outage: after three consecutive failed pulls it must enter
// degraded mode, and recover once the metering view returns.
func TestDegradedModeEntryAndRecovery(t *testing.T) {
	opts := testOptions() // DecideEvery 10m
	sched, acct, engine, _ := faultEngine(t, opts, DefaultSettings())
	acct.SetFaults(cdw.FaultPlan{
		BillingOutages: []cdw.FaultWindow{{From: t0, To: t0.Add(2 * time.Hour)}},
	})

	sched.RunUntil(t0.Add(90 * time.Minute))
	h, err := engine.Health("W")
	if err != nil {
		t.Fatal(err)
	}
	if !h.Degraded {
		t.Fatalf("engine not degraded after %d failed pulls", h.IngestFailures)
	}
	if h.IngestFailures < 3 || h.DegradedTicks < 1 {
		t.Fatalf("health = %+v, want ≥3 ingest failures and ≥1 degraded tick", h)
	}
	ingestRows := 0
	for _, f := range engine.Actuator().Failures() {
		if f.Kind == actuator.FailIngest {
			ingestRows++
		}
	}
	if ingestRows < 3 {
		t.Fatalf("ingest failures in the failure log = %d, want ≥3", ingestRows)
	}

	sched.RunUntil(t0.Add(3 * time.Hour))
	h, _ = engine.Health("W")
	if h.Degraded {
		t.Fatal("engine still degraded an hour after the outage ended")
	}
	if h.Recoveries != 1 || h.IngestFailures != 0 {
		t.Fatalf("health after recovery = %+v, want 1 recovery and 0 ingest failures", h)
	}
}

// TestFaultRunDeterminism is the satellite determinism check at the
// engine level: the same seed, workload, and fault plan must reproduce
// the telemetry snapshot, action/failure logs, invoices, and fault
// counts byte for byte.
func TestFaultRunDeterminism(t *testing.T) {
	run := func() string {
		sched := simclock.NewScheduler(11)
		acct := cdw.NewAccount(sched, cdw.DefaultSimParams())
		engine := NewEngine(acct, testOptions())
		cfg, gen := biWorkload()
		if _, err := acct.CreateWarehouse(cfg); err != nil {
			t.Fatal(err)
		}
		end := t0.Add(4 * 24 * time.Hour)
		arr := gen.Generate(t0, end, sched.Rand("workload"))
		workload.Drive(sched, acct, cfg.Name, arr)
		attach := t0.Add(24 * time.Hour)
		acct.SetFaults(cdw.FaultPlan{
			AlterFailRate:    0.3,
			AlterTimeoutRate: 0.2,
			BillingLag:       time.Hour,
			BillingOutages: []cdw.FaultWindow{
				{From: attach.Add(6 * time.Hour), To: attach.Add(8 * time.Hour)},
			},
			Until: end.Add(-2 * time.Hour),
		})
		sched.RunUntil(attach)
		if _, err := engine.Attach(cfg.Name, DefaultSettings()); err != nil {
			t.Fatal(err)
		}
		engine.Start()
		sched.RunUntil(end)

		var b strings.Builder
		snap, err := engine.Store().SnapshotBytes()
		if err != nil {
			t.Fatal(err)
		}
		b.Write(snap)
		for _, r := range engine.Actuator().Log() {
			fmt.Fprintf(&b, "%s op=%d/%d applied=%v %q %s %s\n",
				r.Time.Format(time.RFC3339), r.OpID, r.Attempt, r.Applied,
				r.Statement, r.Reason, r.Err)
		}
		for _, f := range engine.Actuator().Failures() {
			b.WriteString(f.String() + "\n")
		}
		for _, inv := range engine.Ledger().Invoices() {
			fmt.Fprintf(&b, "%+v\n", inv)
		}
		wh, _ := acct.Warehouse(cfg.Name)
		fmt.Fprintf(&b, "final=%+v faults=%+v", wh.Config(), acct.FaultCounts())
		return b.String()
	}
	a, b := run(), run()
	if a == "" {
		t.Fatal("empty fingerprint")
	}
	if a != b {
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				lo := i - 80
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("same seed diverged at byte %d:\n--- first\n…%s\n--- second\n…%s",
					i, a[lo:i+80], b[lo:i+80])
			}
		}
		t.Fatalf("same seed diverged in length: %d vs %d bytes", len(a), len(b))
	}
}
