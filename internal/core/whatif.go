package core

import (
	"fmt"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/simclock"
	"kwo/internal/workload"
)

// WhatIfResult compares a sandboxed alternative setting against the
// live run over the same recorded workload.
type WhatIfResult struct {
	Warehouse string
	From, To  time.Time
	// LiveCredits is what the live warehouse actually billed.
	LiveCredits float64
	// SandboxCredits is the projected bill under the alternative
	// settings.
	SandboxCredits float64
	// LiveP99/SandboxP99 are the respective p99 latencies (seconds).
	LiveP99    float64
	SandboxP99 float64
	// Queries is the number of replayed queries.
	Queries int
}

// String renders the projection.
func (w WhatIfResult) String() string {
	return fmt.Sprintf(
		"what-if %s over %v: credits %.2f → %.2f (%.1f%%), p99 %.1fs → %.1fs (%d queries)",
		w.Warehouse, w.To.Sub(w.From).Round(time.Hour),
		w.LiveCredits, w.SandboxCredits,
		100*(w.SandboxCredits/maxf(w.LiveCredits, 1e-9)-1),
		w.LiveP99, w.SandboxP99, w.Queries)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// WhatIf forks a sandbox simulation from the warehouse's recorded
// telemetry and re-runs the recorded window under different settings —
// "what would last week have looked like at Lowest Cost?" — without
// touching the live warehouse. The sandboxed workload is reconstructed
// from telemetry only (hashes, sizes, durations), honouring the C6
// constraint that KWO never sees query text.
//
// The reconstruction scales each recorded execution back to an X-Small
// work figure using the warehouse's trained latency model, so the
// sandbox warehouse responds realistically to the alternative policy's
// sizing decisions.
func (e *Engine) WhatIf(warehouse string, settings WarehouseSettings,
	from, to time.Time) (WhatIfResult, error) {

	st, ok := e.models[warehouse]
	if !ok {
		return WhatIfResult{}, fmt.Errorf("core: warehouse %s not attached", warehouse)
	}
	sm := st.sm
	if sm.cost == nil {
		return WhatIfResult{}, fmt.Errorf("core: warehouse %s has no trained cost model yet", warehouse)
	}
	if err := settings.Constraints.Validate(); err != nil {
		return WhatIfResult{}, err
	}
	if !settings.Slider.Valid() {
		return WhatIfResult{}, fmt.Errorf("core: invalid slider position %d", int(settings.Slider))
	}
	log := e.store.Log(warehouse)
	recs := log.SubmittedBetween(from, to)
	if len(recs) == 0 {
		return WhatIfResult{}, fmt.Errorf("core: no telemetry for %s in the requested window", warehouse)
	}

	res := WhatIfResult{Warehouse: warehouse, From: from, To: to, Queries: len(recs)}
	wh, err := e.acct.Warehouse(warehouse)
	if err != nil {
		return WhatIfResult{}, err
	}
	res.LiveCredits = wh.Meter().CreditsBetween(from, to, e.sched.Now())
	res.LiveP99 = log.Stats(from, to).P99Latency.Seconds()

	// Build the sandbox: same physical constants, the customer's
	// original configuration, and arrivals reconstructed from
	// telemetry.
	sbSched := simclock.NewSchedulerAt(from.Add(-time.Hour), 1)
	sbAcct := cdw.NewAccountWithBackend(sbSched, e.acct.Params(), e.acct.Backend())
	orig := sm.orig
	if _, err := sbAcct.CreateWarehouse(orig); err != nil {
		return WhatIfResult{}, err
	}
	lm := sm.cost.Latency
	coldRatio := lm.ColdRatio()
	arrivals := make([]workload.Arrival, 0, len(recs))
	for _, r := range recs {
		exec := r.ExecDuration.Seconds()
		if r.ColdRead && coldRatio > 1 {
			exec /= coldRatio // reconstruct the warm-cache execution time
		}
		work := lm.ScaleExec(r.TemplateHash, exec, r.Size, cdw.SizeXSmall)
		arrivals = append(arrivals, workload.Arrival{
			At: r.SubmitTime,
			Query: cdw.Query{
				TextHash:     r.TextHash,
				TemplateHash: r.TemplateHash,
				UserHash:     r.UserHash,
				Work:         work,
				ScaleExp:     -lm.LogStep(), // fitted slope as the scaling exponent
				ColdFactor:   coldRatio - 1,
				BytesScanned: r.BytesScanned,
			},
		})
	}
	workload.Drive(sbSched, sbAcct, warehouse, arrivals)

	// A sandbox engine with the alternative settings, warmed with the
	// live model's cost model so it can act from the first tick.
	sbOpts := e.opts
	sbOpts.WarmupWindows = 0
	sbOpts.RampStepHours = 0 // the live model already earned its confidence
	sbEngine := NewEngine(sbAcct, sbOpts)
	sbSched.RunUntil(from)
	sbSM, err := sbEngine.Attach(warehouse, settings)
	if err != nil {
		return WhatIfResult{}, err
	}
	sbSM.cost = sm.cost // transplant the trained cost model
	sbEngine.Start()
	sbSched.RunUntil(to.Add(time.Hour))

	sbWh, _ := sbAcct.Warehouse(warehouse)
	res.SandboxCredits = sbWh.Meter().CreditsBetween(from, to, sbSched.Now())
	res.SandboxP99 = sbEngine.Store().Log(warehouse).Stats(from, to).P99Latency.Seconds()
	return res, nil
}
