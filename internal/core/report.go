package core

import (
	"fmt"
	"strings"
	"time"

	"kwo/internal/pricing"
)

// DayKPI is one row of the daily dashboard: credits spent and latency
// percentiles, the two series Figure 4 plots.
type DayKPI struct {
	Day        time.Time
	Credits    float64
	Queries    int
	AvgLatency time.Duration
	P99Latency time.Duration
	P99Queue   time.Duration
}

// HourKPI is one row of the hourly overhead dashboard (Figure 6):
// actual usage, KWO's own overhead, and estimated savings.
type HourKPI struct {
	Hour             time.Time
	ActualCredits    float64
	OverheadCredits  float64
	EstimatedSavings float64
}

// Report is the KPI summary for one warehouse over a period — what the
// web portal's dashboards show (§4.1).
type Report struct {
	Warehouse string
	From, To  time.Time

	ActualCredits    float64
	WithoutKeebo     float64
	Savings          float64
	SavingsPercent   float64
	OverheadCredits  float64
	CostPerQuery     float64
	Queries          int
	AvgLatency       time.Duration
	P99Latency       time.Duration
	AvgQueue         time.Duration
	P99Queue         time.Duration
	ActionsApplied   int
	Reverts          int
	ConstraintEvents int
	Invoices         []pricing.Invoice
}

// String renders the report as the text dashboard used by cmd/kwo-dashboard.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Warehouse %s  %s → %s\n", r.Warehouse,
		r.From.Format("2006-01-02 15:04"), r.To.Format("2006-01-02 15:04"))
	fmt.Fprintf(&b, "  spend:    %8.2f credits (without Keebo: %.2f)\n", r.ActualCredits, r.WithoutKeebo)
	fmt.Fprintf(&b, "  savings:  %8.2f credits (%.1f%%)\n", r.Savings, r.SavingsPercent)
	fmt.Fprintf(&b, "  overhead: %8.4f credits\n", r.OverheadCredits)
	fmt.Fprintf(&b, "  queries:  %8d (cost/query %.4f)\n", r.Queries, r.CostPerQuery)
	fmt.Fprintf(&b, "  latency:  avg %v  p99 %v  queue p99 %v\n", r.AvgLatency, r.P99Latency, r.P99Queue)
	fmt.Fprintf(&b, "  actions:  %d applied, %d reverts, %d constraint enforcements\n",
		r.ActionsApplied, r.Reverts, r.ConstraintEvents)
	return b.String()
}

// Report summarizes one warehouse over [from, to).
func (e *Engine) Report(warehouse string, from, to time.Time) (Report, error) {
	st, ok := e.models[warehouse]
	if !ok {
		return Report{}, fmt.Errorf("core: warehouse %s not attached", warehouse)
	}
	sm := st.sm
	now := e.sched.Now()
	wh, err := e.acct.Warehouse(warehouse)
	if err != nil {
		return Report{}, err
	}
	log := e.store.Log(warehouse)
	ws := log.Stats(from, to)
	rep := Report{
		Warehouse:        warehouse,
		From:             from,
		To:               to,
		ActualCredits:    wh.Meter().CreditsBetween(from, to, now),
		OverheadCredits:  e.acct.OverheadBetween(from, to),
		Queries:          ws.Queries,
		AvgLatency:       ws.AvgLatency,
		P99Latency:       ws.P99Latency,
		AvgQueue:         ws.AvgQueue,
		P99Queue:         ws.P99Queue,
		ActionsApplied:   sm.Applied,
		Reverts:          sm.Reverts,
		ConstraintEvents: sm.Constrained,
		Invoices:         e.ledger.Invoices(),
	}
	if ws.Queries > 0 {
		rep.CostPerQuery = rep.ActualCredits / float64(ws.Queries)
	}
	if sm.cost != nil {
		rep.WithoutKeebo = sm.cost.Replay(log, from, to).Credits
		rep.Savings = rep.WithoutKeebo - rep.ActualCredits
		if rep.Savings < 0 {
			rep.Savings = 0
		}
		if rep.WithoutKeebo > 0 {
			rep.SavingsPercent = 100 * rep.Savings / rep.WithoutKeebo
		}
	}
	return rep, nil
}

// DailySeries returns per-day KPIs for [from, from+days·24h) — the
// Figure 4 series.
func (e *Engine) DailySeries(warehouse string, from time.Time, days int) ([]DayKPI, error) {
	wh, err := e.acct.Warehouse(warehouse)
	if err != nil {
		return nil, err
	}
	log := e.store.Log(warehouse)
	now := e.sched.Now()
	out := make([]DayKPI, 0, days)
	for d := 0; d < days; d++ {
		s := from.Add(time.Duration(d) * 24 * time.Hour)
		t := s.Add(24 * time.Hour)
		ws := log.Stats(s, t)
		out = append(out, DayKPI{
			Day:        s,
			Credits:    wh.Meter().CreditsBetween(s, t, now),
			Queries:    ws.Queries,
			AvgLatency: ws.AvgLatency,
			P99Latency: ws.P99Latency,
			P99Queue:   ws.P99Queue,
		})
	}
	return out, nil
}

// HourlySeries returns per-hour actual usage, KWO overhead and
// estimated savings for [from, from+hours·1h) — the Figure 6 series.
func (e *Engine) HourlySeries(warehouse string, from time.Time, hours int) ([]HourKPI, error) {
	st, ok := e.models[warehouse]
	if !ok {
		return nil, fmt.Errorf("core: warehouse %s not attached", warehouse)
	}
	wh, err := e.acct.Warehouse(warehouse)
	if err != nil {
		return nil, err
	}
	log := e.store.Log(warehouse)
	now := e.sched.Now()
	out := make([]HourKPI, 0, hours)
	for h := 0; h < hours; h++ {
		s := from.Add(time.Duration(h) * time.Hour)
		t := s.Add(time.Hour)
		kpi := HourKPI{
			Hour:            s,
			ActualCredits:   wh.Meter().CreditsBetween(s, t, now),
			OverheadCredits: e.acct.OverheadBetween(s, t),
		}
		if st.sm.cost != nil {
			without := st.sm.cost.Replay(log, s, t).Credits
			if d := without - kpi.ActualCredits; d > 0 {
				kpi.EstimatedSavings = d
			}
		}
		out = append(out, kpi)
	}
	return out, nil
}
