package core

import (
	"math/rand"
	"time"

	"kwo/internal/action"
	"kwo/internal/cdw"
	"kwo/internal/cdw/backend"
	"kwo/internal/costmodel"
	"kwo/internal/ml"
	"kwo/internal/monitor"
	"kwo/internal/policy"
	"kwo/internal/rl"
	"kwo/internal/telemetry"
)

// SmartModel is the per-warehouse decision maker of §4.3. It owns a DQN
// agent trained on this warehouse's telemetry, and at every decision
// tick combines four inputs: the agent's learned ranking, the cost
// model's impact predictions, the customer's constraints and slider,
// and the monitor's real-time feedback.
type SmartModel struct {
	Warehouse string
	settings  WarehouseSettings

	agent   *rl.Agent
	cost    *costmodel.Model
	mon     *monitor.Monitor
	backoff *policy.Backoff
	rng     *rand.Rand

	// billing is the backend's billing quantization, threaded into the
	// cost model at training time so counterfactual replays bill the way
	// the live meter does; caps is the backend's capability set, used to
	// skip action kinds the backend cannot execute (proposing them would
	// only burn actuator attempts on permanent CapabilityErrors).
	billing backend.BillingRule
	caps    backend.Capability

	// orig is the customer's configuration at attach time: the
	// without-Keebo counterfactual baseline.
	orig cdw.Config
	// expected is the configuration KWO believes is in effect; a
	// mismatch in the change log means an external actor intervened.
	expected cdw.Config
	// paused is set when an external change is detected; optimization
	// resumes only when the change is undone or the admin intervenes.
	paused bool
	// preExternal remembers the config before the external change so
	// un-doing can be detected.
	preExternal cdw.Config
	// enforceRestore remembers the configuration that was in effect
	// before a constraint enforcement window changed it, so the window
	// ending restores it.
	enforceRestore *cdw.Config

	// Online-RL bookkeeping.
	lastState   []float64
	lastAction  action.Kind
	haveLast    bool
	lastCredits float64 // cumulative credits at the previous tick

	windows     int // decision ticks observed
	actionsTakn int
	attachedAt  time.Time
	// pressureStreak counts consecutive ticks with live performance
	// pressure; queueStreak counts consecutive ticks with objective
	// queueing. Provisioning beyond the original configuration requires
	// sustained queueing — latency variance alone only justifies
	// restoring the original.
	pressureStreak int
	queueStreak    int
	// execEWMA tracks the workload's typical average execution time
	// across busy windows, so latency budgets are judged against the
	// real workload rather than a quiet night window.
	execEWMA    ml.EWMA
	hourStart   time.Time
	actionsHour int

	// Counters for reports and tests.
	Applied     int
	Reverts     int
	Constrained int // constraint enforcements applied
	Pauses      int

	// Observation trail for harnesses: the latest monitor snapshot the
	// engine handed to this model, and how many of those snapshots were
	// degraded. Updated once per decision tick.
	lastSnap      monitor.Snapshot
	haveSnap      bool
	degradedTicks int
}

func newSmartModel(warehouse string, orig cdw.Config, settings WarehouseSettings,
	store *telemetry.Store, rng *rand.Rand, opts Options) *SmartModel {

	tuning := settings.Slider.Tuning()
	th := monitor.DefaultThresholds()
	// The slider scales spike sensitivity: conservative positions trip
	// the detectors earlier.
	th.LatencySpikeFactor = 1 + (th.LatencySpikeFactor-1)*tuning.SpikeSensitivity
	th.QueueSpikeFactor = 1 + (th.QueueSpikeFactor-1)*tuning.SpikeSensitivity
	th.LoadSpikeFactor = 1 + (th.LoadSpikeFactor-1)*tuning.SpikeSensitivity

	rlCfg := opts.RL
	rlCfg.EpsilonMin = tuning.Explore

	sm := &SmartModel{
		Warehouse: warehouse,
		settings:  settings,
		agent:     rl.NewAgent(rng, rlCfg),
		mon:       monitor.New(store, warehouse, opts.DecideEvery, th),
		backoff:   policy.NewBackoff(2, tuning.CooldownTicks),
		rng:       rng,
		orig:      orig,
		expected:  orig,
	}
	sm.setBackend(cdw.DefaultBackend())
	return sm
}

// setBackend adopts a backend's billing rule and capability set. The
// engine calls it at attach time; newSmartModel defaults to Snowflake
// so models built outside an engine keep historical behaviour.
func (sm *SmartModel) setBackend(b backend.Backend) {
	sm.billing = b.Billing()
	sm.caps = backend.CapabilitiesOf(b)
}

// kindSupported reports whether the backend can execute the action
// kind at all. Unsupported kinds are filtered before ranking ever
// proposes them: on a backend without auto-suspend, SuspendShorter
// would not merely fail — clamping 0 to the 30s floor would turn
// auto-suspend ON, a semantic change the backend has no concept of.
func (sm *SmartModel) kindSupported(kind action.Kind) bool {
	switch kind {
	case action.ClustersUp, action.ClustersDown, action.PolicyEconomy, action.PolicyStandard:
		return sm.caps&backend.CapMultiCluster != 0
	case action.SuspendShorter, action.SuspendLonger:
		return sm.caps&backend.CapAutoSuspend != 0
	case action.SizeUp, action.SizeDown:
		return sm.caps&backend.CapResize != 0
	}
	return true
}

// Settings returns the current customer settings.
func (sm *SmartModel) Settings() WarehouseSettings { return sm.settings }

// SetSlider re-calibrates the model for a new slider position without
// retraining (§4.3: "there is no need for retraining the smart model
// from scratch").
func (sm *SmartModel) SetSlider(s policy.Slider) {
	sm.settings.Slider = s
	sm.agent.SetEpsilonFloor(s.Tuning().Explore)
	sm.backoff = policy.NewBackoff(2, s.Tuning().CooldownTicks)
}

// SetConstraints replaces the constraint rules.
func (sm *SmartModel) SetConstraints(cs policy.Constraints) { sm.settings.Constraints = cs }

// Orig returns the without-Keebo baseline configuration.
func (sm *SmartModel) Orig() cdw.Config { return sm.orig }

// Paused reports whether optimization is paused due to an external
// change.
func (sm *SmartModel) Paused() bool { return sm.paused }

// ResumeOptimization clears the external-change pause (the admin
// explicitly asked optimizations to continue, §4.4).
func (sm *SmartModel) ResumeOptimization(current cdw.Config) {
	sm.paused = false
	sm.expected = current
}

// CostModel returns the trained warehouse cost model (nil before the
// first training pass).
func (sm *SmartModel) CostModel() *costmodel.Model { return sm.cost }

// Monitor returns the model's real-time monitor. Callers must not
// invoke Observe on it (that would fold extra windows into the
// baselines); use Peek and the read-only accessors instead.
func (sm *SmartModel) Monitor() *monitor.Monitor { return sm.mon }

// LastSnapshot returns the most recent monitor snapshot the engine
// handed to this model; ok is false before the first decision tick.
func (sm *SmartModel) LastSnapshot() (snap monitor.Snapshot, ok bool) {
	return sm.lastSnap, sm.haveSnap
}

// DegradedTicks returns how many decision ticks observed a degraded
// snapshot — harnesses use it to assert the monitor's detection SLA.
func (sm *SmartModel) DegradedTicks() int { return sm.degradedTicks }

// DecisionWindows returns how many decision ticks the model has seen.
func (sm *SmartModel) DecisionWindows() int { return sm.windows }

// noteSnapshot records the snapshot the engine observed this tick.
func (sm *SmartModel) noteSnapshot(snap monitor.Snapshot) {
	sm.lastSnap = snap
	sm.haveSnap = true
	if snap.Degraded {
		sm.degradedTicks++
	}
}

// retrain refreshes the cost model and runs an offline training pass
// over historical windows (Algorithm 1 lines 14–16).
func (sm *SmartModel) retrain(log *telemetry.WarehouseLog, from, to time.Time, slots int, opts Options) {
	sm.cost = costmodel.TrainWithBilling(log, sm.orig, from, to, slots, sm.billing)
	ts := OfflineTransitions(log, sm.cost, sm.orig, from, to, opts.DecideEvery,
		sm.settings.Slider.Tuning())
	if len(ts) > 0 {
		sm.agent.Pretrain(ts, opts.PretrainSteps)
	}
}

// PerfPenalty turns a monitor snapshot into the scalar performance
// penalty used by the reward: relative p99 degradation against the
// learned baseline plus a queueing term.
func PerfPenalty(snap monitor.Snapshot) float64 {
	var p float64
	if snap.BaselineP99 > 0 && snap.Stats.Queries > 0 {
		rel := snap.Stats.P99Latency.Seconds()/snap.BaselineP99.Seconds() - 1
		if rel > 0 {
			p += rel
		}
	}
	p += snap.Stats.P99Queue.Seconds() / 30
	return p
}

// Expected returns the configuration KWO currently believes is in
// effect — after recovery from faults, harnesses assert it reconverges
// with the warehouse's actual configuration.
func (sm *SmartModel) Expected() cdw.Config { return sm.expected }

// enterDegraded drops the pending RL transition on entry to degraded
// mode: the reward that would span the outage would attribute
// fault-window spend and latency to the last normal-mode action.
func (sm *SmartModel) enterDegraded() { sm.haveLast = false }

// decideDegraded is the safe-mode decision tick, used while actuation
// or ingestion keeps failing (and while a previous actuation is still
// retrying): no smart-model actions, no self-correction reverts, no
// agent updates — constraint enforcement is the only permitted action
// class, because the customer's hard rules hold no matter how unwell
// the API surface is. External-change pause bookkeeping still runs so
// foreign alterations observed during an outage are not forgotten.
func (sm *SmartModel) decideDegraded(now time.Time, current cdw.Config, snap monitor.Snapshot,
	externalChange bool, creditsNow float64) cdw.Alteration {

	sm.windows++
	if externalChange && !sm.paused {
		sm.paused = true
		sm.preExternal = sm.expected
		sm.Pauses++
	}
	if sm.paused {
		if current != sm.preExternal {
			return cdw.Alteration{}
		}
		sm.paused = false
		sm.expected = current
	}
	if req := sm.settings.Constraints.Required(now, current); !req.IsZero() {
		if sm.enforceRestore == nil {
			prev := current
			sm.enforceRestore = &prev
		}
		sm.Constrained++
		return req
	}
	return cdw.Alteration{}
}

// decide runs one Algorithm 1 decision tick. It returns the chosen
// action (NoOp when nothing should be done) and, when a constraint
// window demands it, the raw alteration that must be applied to bring
// the warehouse into compliance. creditsNow is the warehouse's
// cumulative billed credits, used to compute the reward for the
// previous action.
func (sm *SmartModel) decide(now time.Time, current cdw.Config, snap monitor.Snapshot,
	externalChange bool, creditsNow float64, opts Options) (action.Action, cdw.Alteration) {

	sm.windows++
	noop := action.Action{Kind: action.NoOp, Warehouse: sm.Warehouse}
	tuning := sm.settings.Slider.Tuning()

	// --- External interference handling (§4.4). ---
	if externalChange && !sm.paused {
		sm.paused = true
		sm.preExternal = sm.expected
		sm.Pauses++
	}
	if sm.paused {
		// Resume automatically if the external change was undone.
		if current == sm.preExternal {
			sm.paused = false
			sm.expected = current
		} else {
			sm.recordReward(snap, creditsNow, current)
			return noop, cdw.Alteration{}
		}
	}

	// --- Online reward for the previous action. ---
	sm.recordReward(snap, creditsNow, current)

	// --- Self-correction from real-time feedback. ---
	bd := sm.backoff.Tick(snap)
	if opts.DisableSelfCorrection {
		bd = policy.Decision{}
	}
	if bd.Revert != nil && bd.Revert.Effective(current) &&
		sm.settings.Constraints.Allows(now, current, *bd.Revert) {
		sm.Reverts++
		sm.noteAction(now)
		sm.rememberNext(snap, current, bd.Revert.Kind)
		return *bd.Revert, cdw.Alteration{}
	}

	// --- Constraint enforcement windows. ---
	if req := sm.settings.Constraints.Required(now, current); !req.IsZero() {
		if sm.enforceRestore == nil {
			snap := current
			sm.enforceRestore = &snap
		}
		sm.Constrained++
		return noop, req
	}
	// When every enforcement window has closed, restore the sizing
	// fields the enforcement changed — otherwise a "9:00–9:30 must be
	// X-Large with 3 clusters" rule would leave the warehouse huge all
	// day.
	if sm.enforceRestore != nil && !sm.settings.Constraints.EnforcementActive(now) {
		prev := *sm.enforceRestore
		sm.enforceRestore = nil
		var alt cdw.Alteration
		if current.Size != prev.Size {
			alt.Size = cdw.SizeP(prev.Size)
		}
		if current.MinClusters != prev.MinClusters {
			alt.MinClusters = cdw.IntP(prev.MinClusters)
		}
		if current.MaxClusters != prev.MaxClusters {
			alt.MaxClusters = cdw.IntP(prev.MaxClusters)
		}
		// The restore is itself a configuration change and must honor
		// whatever prohibition rules are active right now — an enforcement
		// window ending inside a "no downsizing" window must not shrink
		// the warehouse. Drop the fields a rule forbids; the smart model
		// will walk the rest back once the prohibition lifts.
		if !sm.settings.Constraints.AllowsAlteration(now, current, alt) {
			if alt.Size != nil && !sm.settings.Constraints.AllowsAlteration(
				now, current, cdw.Alteration{Size: alt.Size}) {
				alt.Size = nil
			}
			if alt.MinClusters != nil || alt.MaxClusters != nil {
				clusters := cdw.Alteration{MinClusters: alt.MinClusters, MaxClusters: alt.MaxClusters}
				if !sm.settings.Constraints.AllowsAlteration(now, current, clusters) {
					alt.MinClusters, alt.MaxClusters = nil, nil
				}
			}
			if !sm.settings.Constraints.AllowsAlteration(now, current, alt) {
				alt = cdw.Alteration{}
			}
		}
		if !alt.IsZero() {
			sm.Constrained++
			return noop, alt
		}
	}

	// Warm-up: observe before acting.
	if sm.windows <= opts.WarmupWindows || sm.cost == nil {
		return noop, cdw.Alteration{}
	}

	// Rate limit.
	if now.Sub(sm.hourStart) >= time.Hour {
		sm.hourStart = now
		sm.actionsHour = 0
	}
	if sm.actionsHour >= opts.MaxActionsPerHour {
		return noop, cdw.Alteration{}
	}

	// --- Rank candidate actions. ---
	state := rl.Featurize(snap, current)
	ranked := sm.agent.Rank(state)
	// ε-exploration: occasionally promote a random candidate; it still
	// passes every safety filter below.
	if sm.rng.Float64() < sm.agent.Epsilon() {
		i := sm.rng.Intn(len(ranked))
		ranked[0], ranked[i] = ranked[i], ranked[0]
	}

	perfPressure := snap.Stats.P99Queue > 2*time.Second ||
		(snap.BaselineP99 > 0 && snap.Stats.P99Latency > 2*snap.BaselineP99)
	if perfPressure {
		sm.pressureStreak++
	} else {
		sm.pressureStreak = 0
	}
	if snap.Stats.P99Queue > 2*time.Second {
		sm.queueStreak++
	} else {
		sm.queueStreak = 0
	}

	// Confidence ramp: how many configuration steps away from the
	// customer's original configuration the model may currently sit.
	allowedSteps := 1 << 20
	if opts.RampStepHours > 0 && !sm.attachedAt.IsZero() {
		allowedSteps = 1 + int(now.Sub(sm.attachedAt).Hours()/opts.RampStepHours)
	}

	ws := snap.Stats
	for _, kind := range ranked {
		if kind == action.NoOp {
			return noop, cdw.Alteration{}
		}
		if !sm.kindSupported(kind) {
			continue
		}
		cand := action.Action{Kind: kind, Warehouse: sm.Warehouse}
		if !cand.Effective(current) {
			continue
		}
		if !sm.settings.Constraints.Allows(now, current, cand) {
			continue
		}
		imp := sm.cost.PredictImpact(ws, current, cand)
		improves := imp.LatencyFactor < 1 || (imp.QueueRisk == 0 && imp.LatencyFactor == 1 &&
			(kind == action.ClustersUp || kind == action.SuspendLonger || kind == action.SizeUp))
		// Provisioning is bounded by the customer's own sizing plus one
		// step of headroom: performance restoration means getting back
		// to (or slightly above) the original, not unbounded growth.
		if kind == action.SizeUp && cand.Target(current).Size > sm.orig.Size.Up() {
			continue
		}
		if kind == action.ClustersUp && cand.Target(current).MaxClusters > sm.orig.MaxClusters+1 {
			continue
		}
		if kind == action.SuspendLonger && sm.orig.AutoSuspend > 0 &&
			cand.Target(current).AutoSuspend > 2*sm.orig.AutoSuspend {
			continue
		}
		saves := -imp.DeltaCreditsPerHour >= tuning.MinSavingsToAct
		// The latency budget is CUMULATIVE against the customer's
		// original configuration (C4: never degrade performance beyond
		// what the slider allows, no matter how many small steps got
		// there), and it is relative OR absolute: a 1.7x factor on a
		// 0.5s dashboard query is fine under the absolute budget, while
		// the same factor on a 10-minute ETL job is not.
		next := cand.Target(current)
		cumFactor := sm.cost.LatencyFactorVsBaseline(next, sm.orig)
		// Judge the absolute budget against the workload's typical
		// execution time, not just the current (possibly quiet) window
		// — otherwise a night of trivial queries would justify sizes
		// the daytime workload cannot live with.
		baseExec := ws.AvgExec.Seconds()
		if sm.execEWMA.Value() > baseExec {
			baseExec = sm.execEWMA.Value()
		}
		execAtOrig := sm.cost.Latency.ScaleExec(0, baseExec, current.Size, sm.orig.Size)
		addedSecs := (cumFactor - 1) * execAtOrig
		latencyOK := cumFactor <= tuning.MaxLatencyFactor ||
			(addedSecs >= 0 && addedSecs <= tuning.MaxAddedLatency)
		withinBudget := latencyOK && imp.QueueRisk <= tuning.MaxQueueRisk
		// C4: performance-restoring actions are acceptable under live
		// performance pressure, regardless of cost — but provisioning
		// BEYOND the customer's original configuration requires
		// sustained, objective queueing. Latency variance alone never
		// ratchets spend past what the customer had (C1: nothing to
		// lose).
		if improves && perfPressure {
			// One noisy window is not pressure: restoring capacity costs
			// real money, so it takes two consecutive pressured ticks.
			if sm.pressureStreak < 2 {
				continue
			}
			if aboveOriginal(next, sm.orig) && sm.queueStreak < 2 {
				continue
			}
			sm.noteAction(now)
			sm.rememberNext(snap, current, kind)
			return cand, cdw.Alteration{}
		}
		if bd.Conservative || snap.Degraded {
			continue
		}
		if saves && withinBudget {
			// Confidence ramp: early in the deployment only small
			// deviations from the original configuration are allowed.
			if configDistance(next, sm.orig) > allowedSteps {
				continue
			}
			sm.noteAction(now)
			sm.rememberNext(snap, current, kind)
			return cand, cdw.Alteration{}
		}
	}
	return noop, cdw.Alteration{}
}

// aboveOriginal reports whether cfg provisions more than the original
// in any dimension.
func aboveOriginal(cfg, orig cdw.Config) bool {
	return cfg.Size > orig.Size || cfg.MaxClusters > orig.MaxClusters ||
		cfg.AutoSuspend > orig.AutoSuspend
}

// configDistance counts configuration steps between two configs: size
// steps, max-cluster steps, and auto-suspend halvings/doublings.
func configDistance(a, b cdw.Config) int {
	d := 0
	if a.Size > b.Size {
		d += int(a.Size - b.Size)
	} else {
		d += int(b.Size - a.Size)
	}
	if a.MaxClusters > b.MaxClusters {
		d += a.MaxClusters - b.MaxClusters
	} else {
		d += b.MaxClusters - a.MaxClusters
	}
	lo, hi := a.AutoSuspend, b.AutoSuspend
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo > 0 {
		for lo < hi {
			lo *= 2
			d++
		}
	}
	if a.Policy != b.Policy {
		d++
	}
	return d
}

// recordReward feeds the previous transition into the agent.
func (sm *SmartModel) recordReward(snap monitor.Snapshot, creditsNow float64, current cdw.Config) {
	state := rl.Featurize(snap, current)
	if snap.Stats.Queries >= 5 {
		sm.execEWMA.Alpha = 0.05
		sm.execEWMA.Add(snap.Stats.AvgExec.Seconds())
	}
	if sm.haveLast {
		spent := creditsNow - sm.lastCredits
		if spent < 0 {
			spent = 0
		}
		lambda := sm.settings.Slider.Tuning().PerfPenalty
		r := rl.Reward(spent, PerfPenalty(snap), lambda)
		sm.agent.Observe(ml.Transition{
			State:     sm.lastState,
			Action:    int(sm.lastAction),
			Reward:    r,
			NextState: state,
		})
	}
	sm.lastState = state
	sm.lastAction = action.NoOp
	sm.haveLast = true
	sm.lastCredits = creditsNow
}

// rememberNext records which action the model just chose so the next
// tick's reward is attributed to it.
func (sm *SmartModel) rememberNext(snap monitor.Snapshot, current cdw.Config, kind action.Kind) {
	sm.lastAction = kind
}

func (sm *SmartModel) noteAction(now time.Time) {
	if sm.hourStart.IsZero() {
		sm.hourStart = now
	}
	sm.actionsHour++
	sm.actionsTakn++
}

// markApplied lets the engine confirm an action reached the warehouse,
// updating the expected config and the backoff guard.
func (sm *SmartModel) markApplied(a action.Action, newCfg cdw.Config) {
	sm.expected = newCfg
	sm.Applied++
	sm.backoff.Record(a)
}
