package workload

import (
	"math/rand"
	"time"
)

// Cursor generates an arrival stream incrementally. Successive Next
// calls with strictly increasing upTo values partition the stream the
// owning Generator would have produced in one whole-horizon Generate
// call: Next(upTo) returns (sorted) exactly the arrivals with At in
// [prevUpTo, upTo), and the final call — any upTo at or past the
// cursor's horizon end — also flushes arrivals a generator emitted past
// the horizon (ETL jitter can push a job past `to`; whole-horizon
// Generate includes it, so the cursor must too). Concatenating every
// chunk reproduces the Generate output element for element, on the
// identical random stream — the property test in stream_test.go pins
// this for every generator.
//
// The point is memory: a fleet tenant holds O(one epoch) of pending
// arrivals instead of materializing (and scheduling) a whole month up
// front.
type Cursor interface {
	Next(upTo time.Time) []Arrival
}

// Streamer is implemented by generators that can produce their stream
// chunk-by-chunk without materializing the whole horizon. Stream takes
// the same (from, to, rng) a Generate call would; the returned cursor
// owns rng from then on.
type Streamer interface {
	Stream(from, to time.Time, rng *rand.Rand) Cursor
}

// NewCursor returns a chunked cursor over g's arrival stream for
// [from, to). Generators implementing Streamer stream lazily in O(chunk)
// memory; anything else falls back to one eager Generate call sliced
// lazily — same output, no memory win.
func NewCursor(g Generator, from, to time.Time, rng *rand.Rand) Cursor {
	if s, ok := g.(Streamer); ok {
		return s.Stream(from, to, rng)
	}
	return &sliceCursor{arr: g.Generate(from, to, rng), to: to}
}

// sliceCursor is the eager fallback: a pre-generated sorted slice,
// handed out in chunks.
type sliceCursor struct {
	arr []Arrival
	to  time.Time
	i   int
}

func (c *sliceCursor) Next(upTo time.Time) []Arrival {
	if !upTo.Before(c.to) { // final chunk: flush everything left
		out := c.arr[c.i:]
		c.i = len(c.arr)
		return out
	}
	start := c.i
	for c.i < len(c.arr) && c.arr[c.i].At.Before(upTo) {
		c.i++
	}
	return c.arr[start:c.i]
}

// ---------------------------------------------------------------------
// ETL

// Stream implements Streamer. The cursor walks the same period grid in
// the same order as Generate, drawing from rng identically; jobs whose
// jitter lands past the chunk boundary wait in a small pending buffer
// until the chunk containing their arrival time.
func (e ETL) Stream(from, to time.Time, rng *rand.Rand) Cursor {
	period := e.Period
	if period <= 0 {
		period = time.Hour
	}
	users := e.Users
	if len(users) == 0 {
		users = []string{"etl-service"}
	}
	return &etlCursor{e: e, from: from, to: to, rng: rng,
		period: period, users: users, batch: from.Truncate(period)}
}

type etlCursor struct {
	e        ETL
	from, to time.Time
	rng      *rand.Rand
	period   time.Duration
	users    []string

	batch   time.Time // next grid point to consider
	seq     uint64
	pending []Arrival // generated, but At beyond the last chunk boundary
}

func (c *etlCursor) Next(upTo time.Time) []Arrival {
	final := !upTo.Before(c.to)
	var out []Arrival
	if len(c.pending) > 0 {
		rest := c.pending[:0]
		for _, a := range c.pending {
			if final || a.At.Before(upTo) {
				out = append(out, a)
			} else {
				rest = append(rest, a)
			}
		}
		c.pending = rest
	}
	for ; c.batch.Before(c.to); c.batch = c.batch.Add(c.period) {
		at := c.batch.Add(c.e.Offset)
		if at.Before(c.from) || !at.Before(c.to) {
			continue // outside the horizon: Generate draws nothing here
		}
		if !at.Before(upTo) {
			break // future chunk; its draws happen on a later Next
		}
		for j := 0; j < c.e.JobsPerBatch; j++ {
			tpl := c.e.Pool.Templates[j%c.e.Pool.Len()]
			c.seq++
			q := tpl.Instantiate(c.rng, c.seq, UserHash(c.users[j%len(c.users)]))
			jitter := time.Duration(0)
			if c.e.Jitter > 0 {
				jitter = time.Duration(c.rng.Int63n(int64(c.e.Jitter)))
			}
			a := Arrival{At: at.Add(jitter), Query: q}
			if final || a.At.Before(upTo) {
				out = append(out, a)
			} else {
				c.pending = append(c.pending, a)
			}
		}
	}
	sortArrivals(out)
	return out
}

// Name/Generate equivalence note: the batch inclusion test above uses
// the pre-jitter time `at`, exactly as Generate does, so the set of
// batches (and therefore the rng draw sequence) is identical.

// ---------------------------------------------------------------------
// BI

// Stream implements Streamer: the thinned Poisson loop of Generate,
// paused at chunk boundaries with (rng, t, seq) carried across calls.
func (b BI) Stream(from, to time.Time, rng *rand.Rand) Cursor {
	c := &biCursor{b: b, to: to, rng: rng, t: from, maxRate: b.PeakQPH * 1.8}
	if c.maxRate <= 0 {
		c.done = true
	}
	c.users = b.Users
	if len(c.users) == 0 {
		c.users = []string{"analyst-1", "analyst-2", "analyst-3"}
	}
	return c
}

type biCursor struct {
	b       BI
	to      time.Time
	rng     *rand.Rand
	users   []string
	maxRate float64

	t    time.Time
	seq  uint64
	pend Arrival
	have bool
	done bool
}

func (c *biCursor) Next(upTo time.Time) []Arrival {
	final := !upTo.Before(c.to)
	var out []Arrival
	if c.have {
		if !final && !c.pend.At.Before(upTo) {
			return nil // chunk ends before the buffered arrival
		}
		out = append(out, c.pend)
		c.have = false
	}
	for !c.done {
		if !final && !c.t.Before(upTo) {
			break // stream has reached this chunk's end
		}
		gapHours := c.rng.ExpFloat64() / c.maxRate
		c.t = c.t.Add(time.Duration(gapHours * float64(time.Hour)))
		if !c.t.Before(c.to) {
			c.done = true
			break
		}
		if c.rng.Float64()*c.maxRate > c.b.rate(c.t) {
			continue // thinned
		}
		tpl := c.b.Pool.Draw(c.rng)
		c.seq++
		q := tpl.Instantiate(c.rng, c.seq, UserHash(c.users[c.rng.Intn(len(c.users))]))
		a := Arrival{At: c.t, Query: q}
		if final || a.At.Before(upTo) {
			out = append(out, a)
		} else {
			c.pend, c.have = a, true
			break
		}
	}
	sortArrivals(out)
	return out
}

// ---------------------------------------------------------------------
// AdHoc

// Stream implements Streamer. The per-day multipliers and burst windows
// are pre-drawn at cursor creation in exactly Generate's order (they
// are O(days) scalars, not arrivals — the memory the cursor avoids is
// the arrival slice); the thinning loop then streams chunk by chunk.
func (a AdHoc) Stream(from, to time.Time, rng *rand.Rand) Cursor {
	users := a.Users
	if len(users) == 0 {
		users = []string{"scientist-1", "scientist-2"}
	}
	days := int(to.Sub(from).Hours()/24) + 2
	dayMult := make([]float64, days)
	var bursts []burst
	for d := 0; d < days; d++ {
		dayMult[d] = 1.0
		if a.DayVariance > 0 {
			dayMult[d] = lognormal(rng, 1.0, a.DayVariance)
		}
		dayStart := from.Add(time.Duration(d) * 24 * time.Hour)
		nBursts := poisson(rng, a.BurstsPerDay)
		for i := 0; i < nBursts; i++ {
			bs := dayStart.Add(time.Duration(rng.Int63n(int64(24 * time.Hour))))
			blen := a.BurstLen
			if blen <= 0 {
				blen = 15 * time.Minute
			}
			blen = time.Duration(float64(blen) * (0.5 + rng.Float64()))
			bursts = append(bursts, burst{start: bs, end: bs.Add(blen)})
		}
	}
	maxRate := a.BaseQPH*8 + a.BurstQPH*3
	if a.MonthEndFactor > 1 {
		maxRate *= a.MonthEndFactor
	}
	return &adhocCursor{a: a, from: from, to: to, rng: rng, users: users,
		days: days, dayMult: dayMult, bursts: bursts, maxRate: maxRate, t: from}
}

type adhocCursor struct {
	a        AdHoc
	from, to time.Time
	rng      *rand.Rand
	users    []string

	days    int
	dayMult []float64
	bursts  []burst
	maxRate float64

	t    time.Time
	seq  uint64
	pend Arrival
	have bool
	done bool
}

// rate mirrors the rate closure inside AdHoc.Generate.
func (c *adhocCursor) rate(t time.Time) float64 {
	d := int(t.Sub(c.from).Hours() / 24)
	if d < 0 || d >= c.days {
		return 0
	}
	r := c.a.BaseQPH * c.dayMult[d]
	if t.Hour() < 7 {
		r *= 0.1
	}
	for _, b := range c.bursts {
		if !t.Before(b.start) && t.Before(b.end) {
			r += c.a.BurstQPH
		}
	}
	if c.a.MonthEndFactor > 1 {
		y, m, _ := t.Date()
		lastDay := time.Date(y, m+1, 1, 0, 0, 0, 0, t.Location()).Add(-24 * time.Hour).Day()
		if t.Day() >= lastDay-1 {
			r *= c.a.MonthEndFactor
		}
	}
	return r
}

func (c *adhocCursor) Next(upTo time.Time) []Arrival {
	final := !upTo.Before(c.to)
	var out []Arrival
	if c.have {
		if !final && !c.pend.At.Before(upTo) {
			return nil
		}
		out = append(out, c.pend)
		c.have = false
	}
	if c.maxRate <= 0 {
		c.done = true
	}
	for !c.done {
		if !final && !c.t.Before(upTo) {
			break
		}
		gapHours := c.rng.ExpFloat64() / c.maxRate
		c.t = c.t.Add(time.Duration(gapHours * float64(time.Hour)))
		if !c.t.Before(c.to) {
			c.done = true
			break
		}
		r := c.rate(c.t)
		if r > c.maxRate {
			r = c.maxRate
		}
		if c.rng.Float64()*c.maxRate > r {
			continue
		}
		tpl := c.a.Pool.Draw(c.rng)
		c.seq++
		q := tpl.Instantiate(c.rng, c.seq, UserHash(c.users[c.rng.Intn(len(c.users))]))
		a := Arrival{At: c.t, Query: q}
		if final || a.At.Before(upTo) {
			out = append(out, a)
		} else {
			c.pend, c.have = a, true
			break
		}
	}
	sortArrivals(out)
	return out
}

// ---------------------------------------------------------------------
// Mixed

// Stream implements Streamer: each part gets its derived sub-stream in
// the same order Generate derives them, then the parts are merged chunk
// by chunk.
func (m Mixed) Stream(from, to time.Time, rng *rand.Rand) Cursor {
	parts := make([]Cursor, len(m.Parts))
	for i, g := range m.Parts {
		sub := rand.New(rand.NewSource(rng.Int63() + int64(i)))
		parts[i] = NewCursor(g, from, to, sub)
	}
	return &mixedCursor{parts: parts}
}

type mixedCursor struct {
	parts []Cursor
}

func (c *mixedCursor) Next(upTo time.Time) []Arrival {
	var out []Arrival
	for _, p := range c.parts {
		out = append(out, p.Next(upTo)...)
	}
	sortArrivals(out)
	return out
}
