package workload

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"kwo/internal/simclock"
)

// streamGenerators returns the generator shapes the fleet provisions
// (plus the non-Streamer fallbacks), parameterized like fleet tenants.
func streamGenerators() map[string]Generator {
	bi, etl, adhoc := StandardPools()
	return map[string]Generator{
		"etl": ETL{Pool: etl, Period: time.Hour, Offset: 5 * time.Minute,
			JobsPerBatch: 3, Jitter: 2 * time.Minute},
		"etl-jitter-overflow": ETL{Pool: etl, Period: 30 * time.Minute, Offset: 25 * time.Minute,
			JobsPerBatch: 2, Jitter: 20 * time.Minute}, // jitter crosses chunk and horizon ends
		"bi": BI{Pool: bi, PeakQPH: 18, WeekendFactor: 0.2},
		"adhoc": AdHoc{Pool: adhoc, BaseQPH: 9, DayVariance: 0.7,
			BurstsPerDay: 2, BurstQPH: 90, BurstLen: 15 * time.Minute, MonthEndFactor: 2},
		"mixed": Mixed{Parts: []Generator{
			BI{Pool: bi, PeakQPH: 12, WeekendFactor: 0.2},
			ETL{Pool: etl, Period: 2 * time.Hour, Offset: 5 * time.Minute,
				JobsPerBatch: 2, Jitter: 2 * time.Minute},
		}},
		"spike-fallback": Spike{Pool: bi, At: simclock.Epoch.Add(26 * time.Hour),
			Count: 40, Over: 3 * time.Minute},
	}
}

// TestCursorMatchesGenerate is the lazy-provisioning contract: pulling
// a generator's stream chunk by chunk — epoch-aligned or ragged —
// yields element-for-element the same arrivals as one whole-horizon
// Generate call on the same seed. The fleet's unchanged fingerprints
// rest on this property.
func TestCursorMatchesGenerate(t *testing.T) {
	from := simclock.Epoch
	horizons := []time.Duration{36 * time.Hour, 72 * time.Hour}
	chunkPlans := map[string]func(rng *rand.Rand, to time.Time) []time.Time{
		"hourly-epochs": func(_ *rand.Rand, to time.Time) []time.Time {
			var cuts []time.Time
			for c := from.Add(time.Hour); c.Before(to) || c.Equal(to); c = c.Add(time.Hour) {
				cuts = append(cuts, c)
			}
			return cuts
		},
		"ragged": func(rng *rand.Rand, to time.Time) []time.Time {
			var cuts []time.Time
			c := from
			for {
				c = c.Add(time.Duration(rng.Int63n(int64(7 * time.Hour))))
				if !c.Before(to) {
					break
				}
				cuts = append(cuts, c)
			}
			return append(cuts, to.Add(time.Hour)) // final call past the horizon
		},
	}
	for name, gen := range streamGenerators() {
		for _, horizon := range horizons {
			to := from.Add(horizon)
			for planName, plan := range chunkPlans {
				for seed := int64(1); seed <= 5; seed++ {
					whole := gen.Generate(from, to, rand.New(rand.NewSource(seed)))
					cur := NewCursor(gen, from, to, rand.New(rand.NewSource(seed)))
					cuts := plan(rand.New(rand.NewSource(seed*31)), to)
					if len(cuts) == 0 || cuts[len(cuts)-1].Before(to) {
						cuts = append(cuts, to)
					}
					var chunked []Arrival
					prev := from
					for _, c := range cuts {
						chunk := cur.Next(c)
						for _, a := range chunk {
							if a.At.Before(prev) {
								t.Errorf("%s/%s seed %d: chunk [%v,%v) emitted arrival at %v before chunk start",
									name, planName, seed, prev, c, a.At)
							}
							if !c.Before(to) {
								continue // final chunk may flush past-horizon jitter overflow
							}
							if !a.At.Before(c) {
								t.Errorf("%s/%s seed %d: chunk ending %v emitted arrival at %v",
									name, planName, seed, c, a.At)
							}
						}
						chunked = append(chunked, chunk...)
						prev = c
					}
					if len(chunked) != len(whole) {
						t.Fatalf("%s/%s horizon %v seed %d: chunked %d arrivals, whole %d",
							name, planName, horizon, seed, len(chunked), len(whole))
					}
					for i := range whole {
						if !reflect.DeepEqual(chunked[i], whole[i]) {
							t.Fatalf("%s/%s horizon %v seed %d: arrival %d differs:\nchunked: %+v\nwhole:   %+v",
								name, planName, horizon, seed, i, chunked[i], whole[i])
						}
					}
				}
			}
		}
	}
}

// TestCursorJitterOverflowFlushed pins the horizon-end contract: an ETL
// batch whose pre-jitter time is inside the horizon but whose jitter
// lands past it appears in whole-horizon Generate output, so the final
// Next call must flush it rather than drop it.
func TestCursorJitterOverflowFlushed(t *testing.T) {
	_, etl, _ := StandardPools()
	gen := ETL{Pool: etl, Period: time.Hour, Offset: 55 * time.Minute,
		JobsPerBatch: 4, Jitter: 30 * time.Minute}
	from := simclock.Epoch
	to := from.Add(24 * time.Hour)
	var overflow bool
	for seed := int64(1); seed <= 20 && !overflow; seed++ {
		whole := gen.Generate(from, to, rand.New(rand.NewSource(seed)))
		for _, a := range whole {
			if !a.At.Before(to) {
				overflow = true
			}
		}
		cur := NewCursor(gen, from, to, rand.New(rand.NewSource(seed)))
		var chunked []Arrival
		for c := from.Add(6 * time.Hour); ; c = c.Add(6 * time.Hour) {
			chunked = append(chunked, cur.Next(c)...)
			if !c.Before(to) {
				break
			}
		}
		if !reflect.DeepEqual(chunked, whole) {
			t.Fatalf("seed %d: chunked (%d) != whole (%d) with overflow jitter", seed, len(chunked), len(whole))
		}
	}
	if !overflow {
		t.Fatal("test shape never produced a past-horizon arrival; tighten parameters")
	}
}

// TestCursorEmptyChunks: a cursor asked for many boundaries inside a
// silent stretch returns empty chunks without disturbing the stream.
func TestCursorEmptyChunks(t *testing.T) {
	bi, _, _ := StandardPools()
	gen := BI{Pool: bi, PeakQPH: 10, WeekendFactor: 0} // weekends silent
	from := simclock.Epoch.Add(4 * 24 * time.Hour)     // Friday
	to := from.Add(4 * 24 * time.Hour)                 // spans the silent weekend
	whole := gen.Generate(from, to, rand.New(rand.NewSource(9)))
	cur := NewCursor(gen, from, to, rand.New(rand.NewSource(9)))
	var chunked []Arrival
	for c := from.Add(10 * time.Minute); c.Before(to); c = c.Add(10 * time.Minute) {
		chunked = append(chunked, cur.Next(c)...)
	}
	chunked = append(chunked, cur.Next(to)...)
	if !reflect.DeepEqual(chunked, whole) {
		t.Fatalf("10-minute chunking diverged: %d vs %d arrivals", len(chunked), len(whole))
	}
}
