package workload

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

// FuzzReadTrace exercises the trace parser on arbitrary bytes: it must
// never panic, and any trace it accepts must round-trip cleanly.
func FuzzReadTrace(f *testing.F) {
	// Seed corpus: a real trace, an empty input, truncated JSON, and
	// junk.
	pool, _, _ := StandardPools()
	gen := BI{Pool: pool, PeakQPH: 30}
	arr := gen.Generate(start, start.Add(2*time.Hour), rand.New(rand.NewSource(1)))
	var buf bytes.Buffer
	WriteTrace(&buf, arr)
	f.Add(buf.Bytes())
	f.Add([]byte(""))
	f.Add([]byte(`{"at":123,"work":1`))
	f.Add([]byte(`{"at":"not a number"}`))
	f.Add([]byte("\x00\x01\x02"))
	f.Add([]byte(`{"at":1672617600000,"text":1,"tmpl":2,"user":3,"work":5,"exp":0.9,"cold":1,"bytes":100}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return // rejected is fine; panicking is not
		}
		// Accepted traces must re-serialize and re-parse to the same
		// length.
		var out bytes.Buffer
		if err := WriteTrace(&out, got); err != nil {
			t.Fatalf("re-serialize accepted trace: %v", err)
		}
		again, err := ReadTrace(&out)
		if err != nil {
			t.Fatalf("re-parse own output: %v", err)
		}
		if len(again) != len(got) {
			t.Fatalf("round trip changed length %d → %d", len(got), len(again))
		}
	})
}
