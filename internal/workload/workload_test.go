package workload

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/simclock"
)

var start = simclock.Epoch // Monday 00:00 UTC

func testPool() *Pool {
	return NewPool([]Template{
		{Name: "a", WorkMean: 5, WorkSigma: 0.2, ScaleExp: 0.9, ColdFactor: 1, BytesMean: 1 << 20},
		{Name: "b", WorkMean: 10, WorkSigma: 0.2, ScaleExp: 1.0, ColdFactor: 2, BytesMean: 1 << 22},
		{Name: "c", WorkMean: 20, WorkSigma: 0.2, ScaleExp: 0.7, ColdFactor: 0.5, BytesMean: 1 << 24},
	}, 1.0)
}

func TestTemplateHashStable(t *testing.T) {
	a := Template{Name: "x"}
	b := Template{Name: "x", WorkMean: 99}
	if a.Hash() != b.Hash() {
		t.Fatal("hash should depend on name only")
	}
	if a.Hash() == (Template{Name: "y"}).Hash() {
		t.Fatal("different names collided")
	}
}

func TestInstantiateCarriesProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tpl := testPool().Templates[1]
	q := tpl.Instantiate(rng, 7, UserHash("u"))
	if q.TemplateHash != tpl.Hash() {
		t.Fatal("template hash not carried")
	}
	if q.ScaleExp != tpl.ScaleExp || q.ColdFactor != tpl.ColdFactor {
		t.Fatal("scaling profile not carried")
	}
	if q.Work <= 0 {
		t.Fatal("non-positive work")
	}
	q2 := tpl.Instantiate(rng, 8, UserHash("u"))
	if q.TextHash == q2.TextHash {
		t.Fatal("distinct executions share a text hash")
	}
}

func TestLognormalMean(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += lognormal(rng, 10, 0.5)
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.5 {
		t.Fatalf("lognormal mean = %v, want ~10", mean)
	}
}

func TestPoolSkewedDraws(t *testing.T) {
	p := testPool()
	rng := rand.New(rand.NewSource(7))
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[p.Draw(rng).Name]++
	}
	if !(counts["a"] > counts["b"] && counts["b"] > counts["c"]) {
		t.Fatalf("skew=1 draw counts not decreasing: %v", counts)
	}
}

func TestPoolUniform(t *testing.T) {
	p := NewPool(testPool().Templates, 0)
	rng := rand.New(rand.NewSource(7))
	counts := map[string]int{}
	for i := 0; i < 9000; i++ {
		counts[p.Draw(rng).Name]++
	}
	for name, c := range counts {
		if c < 2600 || c > 3400 {
			t.Fatalf("uniform draw of %s = %d, want ~3000", name, c)
		}
	}
}

func TestETLRecurrence(t *testing.T) {
	_, etlPool, _ := StandardPools()
	g := ETL{Pool: etlPool, Period: time.Hour, Offset: 5 * time.Minute, JobsPerBatch: 4}
	rng := rand.New(rand.NewSource(1))
	arr := g.Generate(start, start.Add(24*time.Hour), rng)
	if len(arr) != 24*4 {
		t.Fatalf("arrivals = %d, want %d", len(arr), 24*4)
	}
	// Every batch reuses the same first-4 templates: few distinct hashes.
	distinct := map[uint64]bool{}
	for _, a := range arr {
		distinct[a.Query.TemplateHash] = true
	}
	if len(distinct) != 4 {
		t.Fatalf("distinct templates = %d, want 4 (recurring)", len(distinct))
	}
	for _, a := range arr {
		if a.At.Before(start) || !a.At.Before(start.Add(24*time.Hour)) {
			t.Fatal("arrival outside range")
		}
	}
}

func TestBIBusinessHours(t *testing.T) {
	biPool, _, _ := StandardPools()
	g := BI{Pool: biPool, PeakQPH: 120, WeekendFactor: 0.1}
	rng := rand.New(rand.NewSource(2))
	arr := g.Generate(start, start.Add(24*time.Hour), rng) // Monday
	if len(arr) < 100 {
		t.Fatalf("weekday BI arrivals = %d, want substantial traffic", len(arr))
	}
	night, day := 0, 0
	for _, a := range arr {
		h := a.At.Hour()
		if h < 7 || h > 20 {
			night++
		} else {
			day++
		}
	}
	if night > day/10 {
		t.Fatalf("night=%d day=%d: BI traffic not concentrated in business hours", night, day)
	}
	// Saturday traffic should be a small fraction of Monday's.
	sat := g.Generate(start.Add(5*24*time.Hour), start.Add(6*24*time.Hour), rand.New(rand.NewSource(2)))
	if len(sat) > len(arr)/4 {
		t.Fatalf("weekend arrivals %d vs weekday %d: weekend factor not applied", len(sat), len(arr))
	}
}

func TestAdHocDayVariance(t *testing.T) {
	_, _, pool := StandardPools()
	g := AdHoc{Pool: pool, BaseQPH: 30, DayVariance: 0.9, BurstsPerDay: 1, BurstQPH: 200, BurstLen: 10 * time.Minute}
	rng := rand.New(rand.NewSource(3))
	arr := g.Generate(start, start.Add(14*24*time.Hour), rng)
	if len(arr) == 0 {
		t.Fatal("no arrivals")
	}
	perDay := make([]float64, 14)
	for _, a := range arr {
		d := int(a.At.Sub(start).Hours() / 24)
		if d >= 0 && d < 14 {
			perDay[d]++
		}
	}
	// Coefficient of variation across days should be substantial.
	var sum, sumSq float64
	for _, c := range perDay {
		sum += c
		sumSq += c * c
	}
	mean := sum / 14
	cv := math.Sqrt(sumSq/14-mean*mean) / mean
	if cv < 0.25 {
		t.Fatalf("day-to-day CV = %v, want > 0.25 for unpredictable workload", cv)
	}
}

func TestMonthEndSurge(t *testing.T) {
	_, _, pool := StandardPools()
	// January 2023: month ends Tuesday the 31st.
	from := time.Date(2023, 1, 25, 0, 0, 0, 0, time.UTC)
	to := time.Date(2023, 2, 1, 0, 0, 0, 0, time.UTC)
	g := AdHoc{Pool: pool, BaseQPH: 30, MonthEndFactor: 4}
	arr := g.Generate(from, to, rand.New(rand.NewSource(4)))
	early, late := 0, 0
	for _, a := range arr {
		if a.At.Day() >= 30 {
			late++
		} else {
			early++
		}
	}
	// 2 surge days vs 5 normal days: with 4x factor, expect late > early/2.
	if late <= early/2 {
		t.Fatalf("month-end: late=%d early=%d, surge missing", late, early)
	}
}

func TestMixedMergesSorted(t *testing.T) {
	biPool, etlPool, _ := StandardPools()
	g := Mixed{Parts: []Generator{
		ETL{Pool: etlPool, Period: time.Hour, JobsPerBatch: 2},
		BI{Pool: biPool, PeakQPH: 50},
	}}
	arr := g.Generate(start, start.Add(12*time.Hour), rand.New(rand.NewSource(5)))
	for i := 1; i < len(arr); i++ {
		if arr[i].At.Before(arr[i-1].At) {
			t.Fatal("mixed arrivals not sorted")
		}
	}
	if g.Name() != "mixed" {
		t.Fatal("default name wrong")
	}
}

func TestSpike(t *testing.T) {
	pool, _, _ := StandardPools()
	at := start.Add(time.Hour)
	g := Spike{Pool: pool, At: at, Count: 50, Over: time.Minute}
	arr := g.Generate(start, start.Add(2*time.Hour), rand.New(rand.NewSource(6)))
	if len(arr) != 50 {
		t.Fatalf("spike arrivals = %d, want 50", len(arr))
	}
	for _, a := range arr {
		if a.At.Before(at) || a.At.After(at.Add(time.Minute)) {
			t.Fatal("spike arrival outside window")
		}
	}
	// Spike outside range generates nothing.
	if got := g.Generate(start.Add(3*time.Hour), start.Add(4*time.Hour), rand.New(rand.NewSource(6))); len(got) != 0 {
		t.Fatal("out-of-range spike generated arrivals")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	biPool, _, _ := StandardPools()
	g := BI{Pool: biPool, PeakQPH: 80}
	a1 := g.Generate(start, start.Add(24*time.Hour), rand.New(rand.NewSource(9)))
	a2 := g.Generate(start, start.Add(24*time.Hour), rand.New(rand.NewSource(9)))
	if len(a1) != len(a2) {
		t.Fatalf("lengths differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if !a1[i].At.Equal(a2[i].At) || a1[i].Query.TextHash != a2[i].Query.TextHash {
			t.Fatal("same seed produced different stream")
		}
	}
}

func TestDrive(t *testing.T) {
	sched := simclock.NewScheduler(1)
	acct := cdw.NewAccount(sched, cdw.DefaultSimParams())
	_, err := acct.CreateWarehouse(cdw.Config{
		Name: "W", Size: cdw.SizeSmall, MinClusters: 1, MaxClusters: 2,
		AutoSuspend: 5 * time.Minute, AutoResume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	biPool, _, _ := StandardPools()
	g := BI{Pool: biPool, PeakQPH: 60}
	arr := g.Generate(start, start.Add(6*time.Hour), rand.New(rand.NewSource(10)))
	scheduled, dropped := Drive(sched, acct, "W", arr)
	if dropped != 0 || scheduled != len(arr) {
		t.Fatalf("scheduled=%d dropped=%d of %d", scheduled, dropped, len(arr))
	}
	sched.RunFor(8 * time.Hour)
	wh, _ := acct.Warehouse("W")
	_, _, _, completed := wh.Stats()
	if completed != len(arr) {
		t.Fatalf("completed %d of %d queries", completed, len(arr))
	}
	if acct.TotalCredits() <= 0 {
		t.Fatal("no credits billed")
	}
}

func TestDriveDropsPastArrivals(t *testing.T) {
	sched := simclock.NewScheduler(1)
	sched.RunFor(2 * time.Hour)
	acct := cdw.NewAccount(sched, cdw.DefaultSimParams())
	acct.CreateWarehouse(cdw.Config{Name: "W", Size: cdw.SizeXSmall, MinClusters: 1,
		MaxClusters: 1, AutoResume: true})
	arr := []Arrival{
		{At: start.Add(time.Hour), Query: cdw.Query{Work: 1, ScaleExp: 1}},
		{At: start.Add(3 * time.Hour), Query: cdw.Query{Work: 1, ScaleExp: 1}},
	}
	scheduled, dropped := Drive(sched, acct, "W", arr)
	if scheduled != 1 || dropped != 1 {
		t.Fatalf("scheduled=%d dropped=%d, want 1/1", scheduled, dropped)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	biPool, _, _ := StandardPools()
	g := BI{Pool: biPool, PeakQPH: 40}
	arr := g.Generate(start, start.Add(4*time.Hour), rand.New(rand.NewSource(11)))
	var buf bytes.Buffer
	if err := WriteTrace(&buf, arr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(arr) {
		t.Fatalf("round trip %d of %d arrivals", len(got), len(arr))
	}
	for i := range got {
		if got[i].Query.TextHash != arr[i].Query.TextHash ||
			!got[i].At.Equal(arr[i].At.Truncate(time.Millisecond)) {
			t.Fatalf("arrival %d corrupted in round trip", i)
		}
	}
}

// Property: arrivals from any generator are sorted and in range.
func TestPropertyArrivalsSortedInRange(t *testing.T) {
	biPool, etlPool, adhocPool := StandardPools()
	f := func(seed int64, hours uint8) bool {
		h := int(hours%72) + 1
		to := start.Add(time.Duration(h) * time.Hour)
		gens := []Generator{
			BI{Pool: biPool, PeakQPH: 50},
			ETL{Pool: etlPool, Period: time.Hour, JobsPerBatch: 3},
			AdHoc{Pool: adhocPool, BaseQPH: 20, DayVariance: 0.5},
		}
		for _, g := range gens {
			arr := g.Generate(start, to, rand.New(rand.NewSource(seed)))
			for i, a := range arr {
				if a.At.Before(start) || !a.At.Before(to) {
					return false
				}
				if i > 0 && a.At.Before(arr[i-1].At) {
					return false
				}
				if a.Query.Work <= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var sum int
	const n = 5000
	for i := 0; i < n; i++ {
		sum += poisson(rng, 3.0)
	}
	mean := float64(sum) / n
	if math.Abs(mean-3.0) > 0.15 {
		t.Fatalf("poisson mean = %v, want ~3", mean)
	}
	if poisson(rng, 0) != 0 {
		t.Fatal("poisson(0) != 0")
	}
}
