// Package workload generates synthetic query workloads with the shapes
// the paper's evaluation relies on: highly recurring ETL schedules,
// cache-sensitive business-hours BI traffic, and unpredictable ad-hoc
// analytics with bursts and month-end spikes.
//
// Generators are pure: given a time range and a seeded random source
// they return a deterministic list of arrivals. A Driver schedules the
// arrivals onto a simulated account. Traces can be serialized and
// replayed, which keeps experiments reproducible and lets the cost model
// be evaluated on frozen workloads.
package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"kwo/internal/cdw"
)

// Template describes one recurring query class: its resource profile
// and how individual executions vary around it.
type Template struct {
	// Name identifies the template; only its hash ever reaches
	// telemetry (security criterion C6).
	Name string

	// WorkMean is the mean warm X-Small execution time in seconds.
	// Individual executions draw from a lognormal around this mean
	// with WorkSigma as the log-space standard deviation.
	WorkMean  float64
	WorkSigma float64

	// ScaleExp is the size-scaling exponent (see cdw.Query.ScaleExp).
	ScaleExp float64

	// ColdFactor is the relative cold-cache slowdown.
	ColdFactor float64

	// BytesMean is the mean bytes scanned per execution.
	BytesMean int64
}

// Hash returns the template's stable identity hash, a stand-in for
// hashing the normalized query text.
func (t Template) Hash() uint64 { return hash64("template:" + t.Name) }

// Instantiate draws one concrete query from the template. seqno
// distinguishes the query text hash of repeated executions with
// different literal constants.
func (t Template) Instantiate(rng *rand.Rand, seqno uint64, userHash uint64) cdw.Query {
	work := t.WorkMean
	if t.WorkSigma > 0 {
		work = lognormal(rng, t.WorkMean, t.WorkSigma)
	}
	bytes := t.BytesMean
	if bytes > 0 {
		bytes = int64(float64(bytes) * (0.5 + rng.Float64()))
	}
	return cdw.Query{
		TextHash:     hash64(fmt.Sprintf("text:%s:%d", t.Name, seqno)),
		TemplateHash: t.Hash(),
		UserHash:     userHash,
		Work:         work,
		ScaleExp:     t.ScaleExp,
		ColdFactor:   t.ColdFactor,
		BytesScanned: bytes,
	}
}

// lognormal draws a lognormal variate whose mean is mean and whose
// log-space standard deviation is sigma.
func lognormal(rng *rand.Rand, mean, sigma float64) float64 {
	// If X ~ LogNormal(mu, sigma) then E[X] = exp(mu + sigma^2/2).
	mu := math.Log(mean) - sigma*sigma/2
	return math.Exp(mu + sigma*rng.NormFloat64())
}

// hash64 hashes a string to a uint64 via SHA-256, mirroring the paper's
// "securely hashed" query texts and usernames.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// UserHash returns the hash for a synthetic user name.
func UserHash(name string) uint64 { return hash64("user:" + name) }

// Pool is a weighted set of templates; generators draw from it with a
// Zipf-like skew so some templates recur much more than others, the way
// dashboard queries dominate BI warehouses.
type Pool struct {
	Templates []Template
	weights   []float64
	total     float64
}

// NewPool builds a pool where template i has weight 1/(i+1)^skew.
// skew = 0 gives uniform draws; skew around 1 gives the heavy reuse
// typical of dashboards.
func NewPool(templates []Template, skew float64) *Pool {
	p := &Pool{Templates: templates}
	for i := range templates {
		w := 1.0 / math.Pow(float64(i+1), skew)
		p.weights = append(p.weights, w)
		p.total += w
	}
	return p
}

// Draw picks a template according to the pool weights.
func (p *Pool) Draw(rng *rand.Rand) Template {
	x := rng.Float64() * p.total
	for i, w := range p.weights {
		x -= w
		if x <= 0 {
			return p.Templates[i]
		}
	}
	return p.Templates[len(p.Templates)-1]
}

// Len returns the number of templates in the pool.
func (p *Pool) Len() int { return len(p.Templates) }
