package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/simclock"
)

// Drive schedules every arrival onto the account's scheduler, submitting
// to the named warehouse. Arrivals before the scheduler's current time
// are dropped (with a count returned) rather than panicking, so traces
// can be replayed from any point.
func Drive(sched *simclock.Scheduler, acct *cdw.Account, warehouse string, arrivals []Arrival) (scheduled, dropped int) {
	now := sched.Now()
	for _, a := range arrivals {
		if a.At.Before(now) {
			dropped++
			continue
		}
		q := a.Query
		sched.Schedule(a.At, "workload:"+warehouse, func() {
			// A rejected query (suspended + no auto-resume) is simply
			// lost, as it would be on the real warehouse.
			_ = acct.Submit(warehouse, q)
		})
		scheduled++
	}
	return scheduled, dropped
}

// StandardPools returns the template pools used across examples,
// experiments and benchmarks: BI dashboards (small, cache-hungry),
// ETL jobs (large scans, cache-indifferent), and ad-hoc exploration
// (heavy-tailed).
func StandardPools() (bi, etl, adhoc *Pool) {
	biTemplates := make([]Template, 0, 12)
	for i := 0; i < 12; i++ {
		biTemplates = append(biTemplates, Template{
			Name:       fmt.Sprintf("dashboard-%d", i),
			WorkMean:   2 + float64(i%4)*2, // 2–8s on XS warm
			WorkSigma:  0.3,
			ScaleExp:   0.8,
			ColdFactor: 2.5, // dashboards rescan the same partitions
			BytesMean:  256 << 20,
		})
	}
	etlTemplates := make([]Template, 0, 8)
	for i := 0; i < 8; i++ {
		etlTemplates = append(etlTemplates, Template{
			Name:       fmt.Sprintf("pipeline-%d", i),
			WorkMean:   60 + float64(i)*30, // 1–5 min on XS warm
			WorkSigma:  0.15,
			ScaleExp:   1.0, // scan-heavy, parallelizes well
			ColdFactor: 0.3,
			BytesMean:  8 << 30,
		})
	}
	adhocTemplates := make([]Template, 0, 40)
	for i := 0; i < 40; i++ {
		adhocTemplates = append(adhocTemplates, Template{
			Name:       fmt.Sprintf("explore-%d", i),
			WorkMean:   5 + float64(i%10)*8, // 5–77s
			WorkSigma:  0.8,                 // heavy-tailed
			ScaleExp:   0.9,
			ColdFactor: 1.0,
			BytesMean:  1 << 30,
		})
	}
	return NewPool(biTemplates, 1.1), NewPool(etlTemplates, 0), NewPool(adhocTemplates, 0.7)
}

// ---------------------------------------------------------------------
// Trace serialization: record a generated workload and replay it later.

// traceArrival is the JSON wire form of an Arrival.
type traceArrival struct {
	AtUnixMS     int64   `json:"at"`
	TextHash     uint64  `json:"text"`
	TemplateHash uint64  `json:"tmpl"`
	UserHash     uint64  `json:"user"`
	Work         float64 `json:"work"`
	ScaleExp     float64 `json:"exp"`
	ColdFactor   float64 `json:"cold"`
	Bytes        int64   `json:"bytes"`
}

// WriteTrace serializes arrivals as JSON lines.
func WriteTrace(w io.Writer, arrivals []Arrival) error {
	enc := json.NewEncoder(w)
	for _, a := range arrivals {
		ta := traceArrival{
			AtUnixMS:     a.At.UnixMilli(),
			TextHash:     a.Query.TextHash,
			TemplateHash: a.Query.TemplateHash,
			UserHash:     a.Query.UserHash,
			Work:         a.Query.Work,
			ScaleExp:     a.Query.ScaleExp,
			ColdFactor:   a.Query.ColdFactor,
			Bytes:        a.Query.BytesScanned,
		}
		if err := enc.Encode(ta); err != nil {
			return fmt.Errorf("workload: write trace: %w", err)
		}
	}
	return nil
}

// ReadTrace parses a JSON-lines trace.
func ReadTrace(r io.Reader) ([]Arrival, error) {
	dec := json.NewDecoder(r)
	var out []Arrival
	for dec.More() {
		var ta traceArrival
		if err := dec.Decode(&ta); err != nil {
			return nil, fmt.Errorf("workload: read trace: %w", err)
		}
		out = append(out, Arrival{
			At: time.UnixMilli(ta.AtUnixMS).UTC(),
			Query: cdw.Query{
				TextHash:     ta.TextHash,
				TemplateHash: ta.TemplateHash,
				UserHash:     ta.UserHash,
				Work:         ta.Work,
				ScaleExp:     ta.ScaleExp,
				ColdFactor:   ta.ColdFactor,
				BytesScanned: ta.Bytes,
			},
		})
	}
	sortArrivals(out)
	return out, nil
}
