package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"kwo/internal/cdw"
)

// Arrival is one query arriving at a warehouse at a point in time.
type Arrival struct {
	At    time.Time
	Query cdw.Query
}

// Generator produces a deterministic arrival stream for a time range.
type Generator interface {
	// Generate returns arrivals in [from, to), sorted by time.
	Generate(from, to time.Time, rng *rand.Rand) []Arrival
	// Name identifies the generator in experiment output.
	Name() string
}

// sortArrivals sorts in place by time, breaking ties by text hash so the
// order is deterministic.
func sortArrivals(a []Arrival) {
	sort.Slice(a, func(i, j int) bool {
		if a[i].At.Equal(a[j].At) {
			return a[i].Query.TextHash < a[j].Query.TextHash
		}
		return a[i].At.Before(a[j].At)
	})
}

// ---------------------------------------------------------------------
// ETL: scheduled, highly recurring batches.

// ETL models a warehouse serving scheduled pipeline jobs: every Period a
// batch of jobs runs, drawn from a fixed set of recurring templates with
// small jitter. This is the paper's "relatively static workloads over
// time (for performing ETL tasks)" shape (Figures 4b, 6).
type ETL struct {
	Pool *Pool
	// Period between batch runs (e.g. time.Hour).
	Period time.Duration
	// Offset into each period when the batch starts (e.g. 5 minutes).
	Offset time.Duration
	// JobsPerBatch is how many queries each batch runs.
	JobsPerBatch int
	// Jitter randomizes each job's start within the batch window.
	Jitter time.Duration
	// Users is the set of synthetic service users submitting jobs.
	Users []string
}

// Name implements Generator.
func (e ETL) Name() string { return "etl" }

// Generate implements Generator.
func (e ETL) Generate(from, to time.Time, rng *rand.Rand) []Arrival {
	var out []Arrival
	seq := uint64(0)
	period := e.Period
	if period <= 0 {
		period = time.Hour
	}
	users := e.Users
	if len(users) == 0 {
		users = []string{"etl-service"}
	}
	// Align the first batch to the period grid.
	start := from.Truncate(period)
	for batch := start; batch.Before(to); batch = batch.Add(period) {
		at := batch.Add(e.Offset)
		if at.Before(from) || !at.Before(to) {
			continue
		}
		for j := 0; j < e.JobsPerBatch; j++ {
			tpl := e.Pool.Templates[j%e.Pool.Len()] // fixed rotation: recurring jobs
			seq++
			q := tpl.Instantiate(rng, seq, UserHash(users[j%len(users)]))
			jitter := time.Duration(0)
			if e.Jitter > 0 {
				jitter = time.Duration(rng.Int63n(int64(e.Jitter)))
			}
			out = append(out, Arrival{At: at.Add(jitter), Query: q})
		}
	}
	sortArrivals(out)
	return out
}

// ---------------------------------------------------------------------
// BI: business-hours, cache-sensitive dashboard traffic.

// BI models dashboard and analyst traffic: Poisson arrivals whose rate
// follows a business-hours curve (weekdays, peaking late morning and
// mid-afternoon), drawing heavily reused cache-sensitive templates.
type BI struct {
	Pool *Pool
	// PeakQPH is the arrival rate, queries per hour, at the busiest
	// point of the day.
	PeakQPH float64
	// WeekendFactor scales weekend traffic (0 disables weekends).
	WeekendFactor float64
	// Users is the analyst population.
	Users []string
}

// Name implements Generator.
func (b BI) Name() string { return "bi" }

// rate returns the expected queries/hour at t.
func (b BI) rate(t time.Time) float64 {
	h := float64(t.Hour()) + float64(t.Minute())/60
	day := t.Weekday()
	weekday := day != time.Saturday && day != time.Sunday
	// Two-bump business-hours curve between 8:00 and 19:00.
	var shape float64
	if h >= 8 && h <= 19 {
		shape = math.Exp(-sq(h-10.5)/4.5) + 0.8*math.Exp(-sq(h-15.0)/5.0)
	}
	r := b.PeakQPH * shape
	if !weekday {
		r *= b.WeekendFactor
	}
	return r
}

func sq(x float64) float64 { return x * x }

// Generate implements Generator: a non-homogeneous Poisson process via
// thinning against the peak rate.
func (b BI) Generate(from, to time.Time, rng *rand.Rand) []Arrival {
	var out []Arrival
	maxRate := b.PeakQPH * 1.8 // upper bound of the two-bump curve
	if maxRate <= 0 {
		return nil
	}
	users := b.Users
	if len(users) == 0 {
		users = []string{"analyst-1", "analyst-2", "analyst-3"}
	}
	seq := uint64(0)
	t := from
	for {
		// Exponential gap at the bounding rate.
		gapHours := rng.ExpFloat64() / maxRate
		t = t.Add(time.Duration(gapHours * float64(time.Hour)))
		if !t.Before(to) {
			break
		}
		if rng.Float64()*maxRate > b.rate(t) {
			continue // thinned
		}
		tpl := b.Pool.Draw(rng)
		seq++
		q := tpl.Instantiate(rng, seq, UserHash(users[rng.Intn(len(users))]))
		out = append(out, Arrival{At: t, Query: q})
	}
	sortArrivals(out)
	return out
}

// ---------------------------------------------------------------------
// AdHoc: unpredictable exploratory analytics.

// AdHoc models exploratory analyst traffic: a baseline Poisson rate
// modulated by a random per-day activity multiplier (some days are
// near-silent, some are heavy), random bursts, heavier-tailed work, and
// an optional month-end surge. This is the "less predictable workloads"
// shape of Figure 4a.
type AdHoc struct {
	Pool *Pool
	// BaseQPH is the average arrival rate during active periods.
	BaseQPH float64
	// DayVariance controls the per-day lognormal activity multiplier;
	// 0 disables it, ~0.8 gives the strong day-to-day swings of
	// Figure 4a.
	DayVariance float64
	// BurstsPerDay is the expected number of short load bursts each day.
	BurstsPerDay float64
	// BurstQPH is the arrival rate inside a burst.
	BurstQPH float64
	// BurstLen is the mean burst duration.
	BurstLen time.Duration
	// MonthEndFactor multiplies the rate during the last two days of
	// the month (reporting crunch). 1 disables.
	MonthEndFactor float64
	// Users is the analyst population.
	Users []string
}

// Name implements Generator.
func (a AdHoc) Name() string { return "adhoc" }

type burst struct {
	start time.Time
	end   time.Time
}

// Generate implements Generator.
func (a AdHoc) Generate(from, to time.Time, rng *rand.Rand) []Arrival {
	users := a.Users
	if len(users) == 0 {
		users = []string{"scientist-1", "scientist-2"}
	}
	// Pre-draw per-day multipliers and burst windows so the rate
	// function is well-defined for thinning.
	days := int(to.Sub(from).Hours()/24) + 2
	dayMult := make([]float64, days)
	var bursts []burst
	for d := 0; d < days; d++ {
		dayMult[d] = 1.0
		if a.DayVariance > 0 {
			dayMult[d] = lognormal(rng, 1.0, a.DayVariance)
		}
		dayStart := from.Add(time.Duration(d) * 24 * time.Hour)
		nBursts := poisson(rng, a.BurstsPerDay)
		for i := 0; i < nBursts; i++ {
			bs := dayStart.Add(time.Duration(rng.Int63n(int64(24 * time.Hour))))
			blen := a.BurstLen
			if blen <= 0 {
				blen = 15 * time.Minute
			}
			blen = time.Duration(float64(blen) * (0.5 + rng.Float64()))
			bursts = append(bursts, burst{start: bs, end: bs.Add(blen)})
		}
	}
	rate := func(t time.Time) float64 {
		d := int(t.Sub(from).Hours() / 24)
		if d < 0 || d >= days {
			return 0
		}
		r := a.BaseQPH * dayMult[d]
		// Mild diurnal shape: active 7:00–23:00.
		h := t.Hour()
		if h < 7 {
			r *= 0.1
		}
		for _, b := range bursts {
			if !t.Before(b.start) && t.Before(b.end) {
				r += a.BurstQPH
			}
		}
		if a.MonthEndFactor > 1 {
			y, m, _ := t.Date()
			lastDay := time.Date(y, m+1, 1, 0, 0, 0, 0, t.Location()).Add(-24 * time.Hour).Day()
			if t.Day() >= lastDay-1 {
				r *= a.MonthEndFactor
			}
		}
		return r
	}
	maxRate := a.BaseQPH*8 + a.BurstQPH*3 // generous bound for thinning
	if a.MonthEndFactor > 1 {
		maxRate *= a.MonthEndFactor
	}
	var out []Arrival
	seq := uint64(0)
	t := from
	for {
		gapHours := rng.ExpFloat64() / maxRate
		t = t.Add(time.Duration(gapHours * float64(time.Hour)))
		if !t.Before(to) {
			break
		}
		r := rate(t)
		if r > maxRate {
			r = maxRate
		}
		if rng.Float64()*maxRate > r {
			continue
		}
		tpl := a.Pool.Draw(rng)
		seq++
		q := tpl.Instantiate(rng, seq, UserHash(users[rng.Intn(len(users))]))
		out = append(out, Arrival{At: t, Query: q})
	}
	sortArrivals(out)
	return out
}

// poisson draws a Poisson variate with the given mean (Knuth's method;
// means here are small).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// ---------------------------------------------------------------------
// Mixed: overlay of several generators.

// Mixed merges the arrival streams of several generators, modelling a
// warehouse shared by multiple applications.
type Mixed struct {
	Parts []Generator
	Label string
}

// Name implements Generator.
func (m Mixed) Name() string {
	if m.Label != "" {
		return m.Label
	}
	return "mixed"
}

// Generate implements Generator.
func (m Mixed) Generate(from, to time.Time, rng *rand.Rand) []Arrival {
	var out []Arrival
	for i, g := range m.Parts {
		// Derive an independent stream per part for stability under
		// reordering of parts.
		sub := rand.New(rand.NewSource(rng.Int63() + int64(i)))
		out = append(out, g.Generate(from, to, sub)...)
	}
	sortArrivals(out)
	return out
}

// Stall injects a clump of long-running queries at one instant — far
// more work than the warehouse has slots, so the queue backs up and
// stays backed up for a while. Fault-injection tests use it to assert
// that queued work always drains (no dispatch deadlock) and that the
// monitor flags the queueing.
type Stall struct {
	At       time.Time
	Count    int
	WorkSecs float64 // warm X-Small execution seconds per query
}

// Name implements Generator.
func (s Stall) Name() string { return "stall" }

// Generate implements Generator.
func (s Stall) Generate(from, to time.Time, rng *rand.Rand) []Arrival {
	if s.At.Before(from) || !s.At.Before(to) || s.Count <= 0 {
		return nil
	}
	work := s.WorkSecs
	if work <= 0 {
		work = 120
	}
	var out []Arrival
	for i := 0; i < s.Count; i++ {
		q := cdw.Query{
			TextHash:     hash64(fmt.Sprintf("stall-query-%d", i)),
			TemplateHash: hash64("template:stall"),
			UserHash:     UserHash("stall-user"),
			Work:         work * (0.75 + 0.5*rng.Float64()),
			ScaleExp:     0.9,
			ColdFactor:   0.5,
			BytesScanned: 4 << 30,
		}
		// Sub-second spread keeps arrival order deterministic while
		// avoiding a single mega-batch event.
		out = append(out, Arrival{At: s.At.Add(time.Duration(i) * 10 * time.Millisecond), Query: q})
	}
	sortArrivals(out)
	return out
}

// Spike injects a dense pulse of queries at a fixed time — used for
// failure-injection tests of the monitor's backoff behaviour.
type Spike struct {
	Pool  *Pool
	At    time.Time
	Count int
	Over  time.Duration
}

// Name implements Generator.
func (s Spike) Name() string { return "spike" }

// Generate implements Generator.
func (s Spike) Generate(from, to time.Time, rng *rand.Rand) []Arrival {
	if s.At.Before(from) || !s.At.Before(to) || s.Count <= 0 {
		return nil
	}
	over := s.Over
	if over <= 0 {
		over = time.Minute
	}
	var out []Arrival
	for i := 0; i < s.Count; i++ {
		tpl := s.Pool.Draw(rng)
		q := tpl.Instantiate(rng, uint64(i), UserHash("spike-user"))
		at := s.At.Add(time.Duration(rng.Int63n(int64(over))))
		out = append(out, Arrival{At: at, Query: q})
	}
	sortArrivals(out)
	return out
}
