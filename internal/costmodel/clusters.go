package costmodel

import (
	"time"

	"kwo/internal/cdw"
	"kwo/internal/ml"
	"kwo/internal/telemetry"
)

// MiniWindow is the batching granularity for cluster-count prediction.
// The paper: "To avoid dealing with per-second predictions, we batch
// the past query execution into mini-windows and then predict the
// average cluster count for each mini-window."
const MiniWindow = 10 * time.Minute

// ClusterModel predicts the average number of active clusters a
// warehouse would have used in a mini-window, given the window's
// arrival statistics and the configured maximum cluster count
// (§5.2, "impact on warehouse parallelism").
type ClusterModel struct {
	reg    *ml.Ridge
	slots  float64 // queries one cluster runs concurrently
	fitted bool
}

// clusterFeatures builds the regression features for one window:
// offered load in cluster-equivalents, and the configured max.
func clusterFeatures(qph, avgExecSecs float64, maxClusters int, slots float64) []float64 {
	// Offered load (Erlang intensity) in units of clusters:
	// arrivals/sec × service time / slots per cluster.
	load := qph / 3600 * avgExecSecs / slots
	return []float64{load, float64(maxClusters)}
}

// FitClusters trains the model on historical mini-windows. For each
// window with queries we know the average cluster count that actually
// served them (recorded per query at start time) and the max-cluster
// setting in effect.
func FitClusters(log *telemetry.WarehouseLog, initial cdw.Config, from, to time.Time, slots int) *ClusterModel {
	m := &ClusterModel{slots: float64(slots)}
	if m.slots <= 0 {
		m.slots = 8
	}
	var rows [][]float64
	var y []float64
	for t := from; t.Before(to); t = t.Add(MiniWindow) {
		ws := log.Stats(t, t.Add(MiniWindow))
		if ws.Queries == 0 {
			continue
		}
		cfg := log.ConfigAt(t, initial)
		rows = append(rows, clusterFeatures(ws.QPH, ws.AvgExec.Seconds(), cfg.MaxClusters, m.slots))
		y = append(y, ws.AvgClusters)
	}
	if len(rows) >= 8 {
		r := &ml.Ridge{Lambda: 1.0}
		if err := r.Fit(ml.FromRows(rows), y); err == nil {
			m.reg = r
			m.fitted = true
		}
	}
	return m
}

// Predict returns the expected average cluster count for a window with
// the given arrival statistics under maxClusters.
func (m *ClusterModel) Predict(qph, avgExecSecs float64, maxClusters int) float64 {
	if maxClusters < 1 {
		maxClusters = 1
	}
	analytic := m.analytic(qph, avgExecSecs, maxClusters)
	if !m.fitted {
		return analytic
	}
	p := m.reg.Predict(clusterFeatures(qph, avgExecSecs, maxClusters, m.slots))
	// The regression extrapolates poorly outside its training range;
	// keep it physical by clamping to [1, max] and blending with the
	// analytical queueing estimate.
	p = ml.Clamp(p, 1, float64(maxClusters))
	return 0.5*p + 0.5*analytic
}

// analytic is the queueing-theoretic baseline: clusters needed to carry
// the offered load with some headroom, clamped to [1, max].
func (m *ClusterModel) analytic(qph, avgExecSecs float64, maxClusters int) float64 {
	load := qph / 3600 * avgExecSecs / m.slots
	// Headroom factor: clusters run at ~70% occupancy before queueing
	// forces scale-out under the Standard policy.
	need := load / 0.7
	return ml.Clamp(need, 1, float64(maxClusters))
}

// Fitted reports whether the regression component is trained.
func (m *ClusterModel) Fitted() bool { return m.fitted }
