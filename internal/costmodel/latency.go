// Package costmodel implements the paper's warehouse cost model (§5):
// an analytical what-if query replay (§5.1) whose parameters — latency
// scaling across warehouse sizes, query arrival gaps, and cluster
// counts — are estimated from historical telemetry with machine
// learning (§5.2). The model estimates the billable cost of the
// *without-Keebo* counterfactual, which is both the basis of
// value-based pricing and an input to the smart models' action
// selection.
package costmodel

import (
	"math"
	"sort"

	"kwo/internal/cdw"
	"kwo/internal/ml"
	"kwo/internal/telemetry"
)

// defaultLogStep is the assumed log2 latency change per size step when
// nothing has been learned yet: one step up roughly, but not exactly,
// halves latency (queries rarely scale perfectly).
const defaultLogStep = -0.85

// LatencyModel scales query execution times across warehouse sizes.
// Per the paper, KWO "trains a regression model to scale query
// latencies across warehouse sizes", using identical queries (text
// hash) or similar queries (template hash) observed on different sizes;
// where history is insufficient it falls back to the warehouse-wide
// average impact.
type LatencyModel struct {
	// perTemplate maps template hash → fitted log2(exec) = a + b·size
	// (+ c·cold) regression.
	perTemplate map[uint64]*ml.Ridge
	// global is the pooled fallback regression across all templates.
	global *ml.Ridge
	// globalLogStep caches the fitted global slope b.
	globalLogStep float64
	// coldRatio is the average observed cold/warm latency ratio, used
	// by action-impact estimates.
	coldRatio float64
	fitted    bool
}

// minObsPerTemplate is how many observations across at least two
// distinct sizes a template needs for its own regression.
const minObsPerTemplate = 4

// FitLatency trains the model from grouped per-template observations.
func FitLatency(obs map[uint64][]telemetry.LatencyObs) *LatencyModel {
	m := &LatencyModel{
		perTemplate:   make(map[uint64]*ml.Ridge),
		globalLogStep: defaultLogStep,
		coldRatio:     1.5,
	}
	var allRows [][]float64
	var allY []float64
	var coldSum, warmSum float64
	var coldN, warmN int
	// Iterate templates in a fixed order: the pooled sums below are
	// float accumulations, so map order would leak into the last ULPs
	// of the fitted weights and break run-to-run determinism.
	tmpls := make([]uint64, 0, len(obs))
	for tmpl := range obs {
		tmpls = append(tmpls, tmpl)
	}
	sort.Slice(tmpls, func(i, j int) bool { return tmpls[i] < tmpls[j] })
	for _, tmpl := range tmpls {
		list := obs[tmpl]
		var rows [][]float64
		var y []float64
		sizes := map[cdw.Size]bool{}
		for _, o := range list {
			if o.ExecSecs <= 0 {
				continue
			}
			cold := 0.0
			if o.Cold {
				cold = 1
				coldSum += o.ExecSecs
				coldN++
			} else {
				warmSum += o.ExecSecs
				warmN++
			}
			row := []float64{float64(o.Size), cold}
			rows = append(rows, row)
			y = append(y, math.Log2(o.ExecSecs))
			sizes[o.Size] = true
			allRows = append(allRows, row)
			allY = append(allY, math.Log2(o.ExecSecs))
		}
		if len(rows) >= minObsPerTemplate && len(sizes) >= 2 {
			r := &ml.Ridge{Lambda: 0.1}
			if err := r.Fit(ml.FromRows(rows), y); err == nil {
				// Sanity: slope must be negative (bigger is never
				// slower on average) and not absurdly steep.
				if r.Weights[0] < 0 && r.Weights[0] > -2 {
					m.perTemplate[tmpl] = r
				}
			}
		}
	}
	if len(allRows) > 0 {
		g := &ml.Ridge{Lambda: 1.0}
		if err := g.Fit(ml.FromRows(allRows), allY); err == nil {
			m.global = g
			if g.Weights[0] < 0 && g.Weights[0] > -2 {
				m.globalLogStep = g.Weights[0]
			}
		}
		m.fitted = true
	}
	if coldN > 0 && warmN > 0 {
		ratio := (coldSum / float64(coldN)) / (warmSum / float64(warmN))
		if ratio > 1 && ratio < 20 {
			m.coldRatio = ratio
		}
	}
	return m
}

// ScaleExec converts an observed execution time at fromSize into the
// predicted execution time at toSize for the given template.
func (m *LatencyModel) ScaleExec(template uint64, execSecs float64, from, to cdw.Size) float64 {
	if from == to || execSecs <= 0 {
		return execSecs
	}
	step := m.globalLogStep
	if r, ok := m.perTemplate[template]; ok {
		step = r.Weights[0]
	}
	return execSecs * math.Exp2(step*float64(to-from))
}

// LogStep returns the warehouse-wide fitted log2 latency slope per size
// step (negative; −1 means perfect halving).
func (m *LatencyModel) LogStep() float64 { return m.globalLogStep }

// ColdRatio returns the average observed cold/warm latency ratio.
func (m *LatencyModel) ColdRatio() float64 { return m.coldRatio }

// Fitted reports whether any training data was seen.
func (m *LatencyModel) Fitted() bool { return m.fitted }

// TemplateCount returns how many templates earned their own regression.
func (m *LatencyModel) TemplateCount() int { return len(m.perTemplate) }
