package costmodel

import (
	"fmt"
	"strings"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/telemetry"
)

// BillingModel prices a replayed workload in a CDW product's native
// billing unit. The paper stresses that the warehouse cost model
// "directly estimates the billable cost incurred by the CDW (e.g.,
// credits for Snowflake, bytes scanned for BigQuery, and hours of usage
// for Azure Synapse)" and that the hybrid approach "is easily
// extensible to new CDW products" — this interface is that extension
// point.
type BillingModel interface {
	// Name identifies the billing scheme.
	Name() string
	// Unit is the native billing unit ("credits", "TiB scanned",
	// "vCore-hours").
	Unit() string
	// Price returns the cost, in the native unit, of the workload
	// summarized by a replay result and its raw telemetry rows.
	Price(res ReplayResult, recs []cdw.QueryRecord) float64
}

// CreditBilling is the Snowflake-style scheme the simulator itself
// uses: active cluster-seconds × the size's hourly credit rate (already
// folded into ReplayResult.Credits by the replay).
type CreditBilling struct{}

// Name implements BillingModel.
func (CreditBilling) Name() string { return "per-second compute (Snowflake-style)" }

// Unit implements BillingModel.
func (CreditBilling) Unit() string { return "credits" }

// Price implements BillingModel.
func (CreditBilling) Price(res ReplayResult, _ []cdw.QueryRecord) float64 {
	return res.Credits
}

// OnDemandBilling is the BigQuery-style scheme: pay per byte scanned,
// no warehouse to size or suspend. Idle time is free; every scan is
// billed no matter how the warehouse is configured.
type OnDemandBilling struct {
	// PerTiB is the price per TiB scanned, in the same abstract money
	// unit as a credit (so the two schemes are directly comparable;
	// set it from your contract's $/credit and $/TiB).
	PerTiB float64
}

// Name implements BillingModel.
func (OnDemandBilling) Name() string { return "on-demand scan (BigQuery-style)" }

// Unit implements BillingModel.
func (OnDemandBilling) Unit() string { return "credit-equivalents" }

// Price implements BillingModel.
func (b OnDemandBilling) Price(_ ReplayResult, recs []cdw.QueryRecord) float64 {
	rate := b.PerTiB
	if rate <= 0 {
		rate = 1.25 // a plausible default exchange rate
	}
	var bytes int64
	for _, r := range recs {
		bytes += r.BytesScanned
	}
	return float64(bytes) / (1 << 40) * rate
}

// HourlyPoolBilling is the Synapse-style scheme: a dedicated pool
// billed per hour whenever it is running, regardless of load within the
// hour.
type HourlyPoolBilling struct {
	// PerHour is the pool's hourly price in credit-equivalents.
	PerHour float64
}

// Name implements BillingModel.
func (HourlyPoolBilling) Name() string { return "dedicated pool hours (Synapse-style)" }

// Unit implements BillingModel.
func (HourlyPoolBilling) Unit() string { return "credit-equivalents" }

// Price implements BillingModel: every (partial) hour with activity
// bills a full hour.
func (b HourlyPoolBilling) Price(_ ReplayResult, recs []cdw.QueryRecord) float64 {
	rate := b.PerHour
	if rate <= 0 {
		rate = 4 // default: Medium-equivalent pool
	}
	hours := map[int64]bool{}
	for _, r := range recs {
		start := r.SubmitTime.Truncate(time.Hour).Unix()
		end := r.EndTime.Truncate(time.Hour).Unix()
		for h := start; h <= end; h += 3600 {
			hours[h] = true
		}
	}
	return float64(len(hours)) * rate
}

// ProductComparison prices the same workload under several billing
// schemes — the "which product should this workload run on" analysis
// that the cost model's extensibility enables.
type ProductComparison struct {
	From, To time.Time
	Queries  int
	Rows     []ProductRow
}

// ProductRow is one scheme's price.
type ProductRow struct {
	Scheme string
	Unit   string
	Price  float64
}

// String renders the comparison.
func (pc ProductComparison) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cross-product cost comparison (%d queries, %v)\n",
		pc.Queries, pc.To.Sub(pc.From).Round(time.Hour))
	for _, r := range pc.Rows {
		fmt.Fprintf(&b, "  %-40s %10.2f %s\n", r.Scheme, r.Price, r.Unit)
	}
	return b.String()
}

// CompareProducts prices the telemetry in [from, to) under every given
// billing model, using this model's replay for the compute-billed
// schemes.
func (m *Model) CompareProducts(log *telemetry.WarehouseLog, from, to time.Time,
	models ...BillingModel) ProductComparison {

	if len(models) == 0 {
		models = []BillingModel{CreditBilling{}, OnDemandBilling{}, HourlyPoolBilling{}}
	}
	res := m.Replay(log, from, to)
	recs := log.SubmittedBetween(from, to)
	pc := ProductComparison{From: from, To: to, Queries: len(recs)}
	for _, bm := range models {
		pc.Rows = append(pc.Rows, ProductRow{
			Scheme: bm.Name(),
			Unit:   bm.Unit(),
			Price:  bm.Price(res, recs),
		})
	}
	return pc
}
