package costmodel

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/telemetry"
)

// Property: a ReplayCursor advanced through an arbitrary sequence of
// watermarks returns exactly — bit-for-bit, not approximately — what a
// from-scratch Replay over the same range returns against the same log
// state. Records are delivered in completion order while the cursor
// advances, so submissions routinely become visible behind the
// watermark (stragglers), exercising the rebuild path; auto-suspend
// zero exercises the fallback path; MaxClusters > 1 exercises the
// cluster-prediction pricing.
func TestPropertyCursorMatchesReplay(t *testing.T) {
	f := func(seed int64, n uint8, susMin uint8, maxC uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		trainLog := synthLog(rng, 30, cdw.SizeSmall)
		cfg := cdw.Config{Name: "W", Size: cdw.SizeMedium, MinClusters: 1,
			MaxClusters: int(maxC%4) + 1,
			AutoSuspend: time.Duration(susMin%7) * time.Minute,
			AutoResume:  true}
		last := trainLog.Queries[len(trainLog.Queries)-1].EndTime
		m := Train(trainLog, cfg, t0, last.Add(time.Hour), 8)

		// Live records with overlapping executions, delivered to the
		// store in completion order as the clock advances.
		count := int(n)%60 + 5
		recs := make([]cdw.QueryRecord, 0, count)
		at := t0
		for i := 0; i < count; i++ {
			at = at.Add(time.Duration(rng.Intn(1200)) * time.Second)
			exec := time.Duration(rng.Intn(2400)+1) * time.Second
			recs = append(recs, cdw.QueryRecord{
				Warehouse: "W", TemplateHash: uint64(rng.Intn(5)),
				SubmitTime: at, StartTime: at, EndTime: at.Add(exec),
				ExecDuration: exec, Size: cdw.SizeSmall, Clusters: rng.Intn(2) + 1,
			})
		}
		sort.SliceStable(recs, func(i, j int) bool {
			return recs[i].EndTime.Before(recs[j].EndTime)
		})

		store := telemetry.NewStore()
		store.OnQuery(recs[0])
		delivered := 1
		log := store.Log("W")
		cur := NewReplayCursor(m, log, t0)

		now := t0
		end := recs[len(recs)-1].EndTime.Add(2 * time.Hour)
		for now.Before(end) {
			now = now.Add(time.Duration(rng.Intn(3*3600)+60) * time.Second)
			for delivered < len(recs) && !recs[delivered].EndTime.After(now) {
				store.OnQuery(recs[delivered])
				delivered++
			}
			got := cur.Advance(now)
			want := m.Replay(log, t0, now)
			if got != want {
				t.Logf("seed=%d now=%v: cursor %+v != scratch %+v", seed, now, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The cursor must keep matching when the range start does not align
// with a mini-window boundary and when every query lands in one burst
// (a single busy period spanning many windows).
func TestCursorUnalignedStartAndBurst(t *testing.T) {
	cfg := cdw.Config{Name: "W", Size: cdw.SizeSmall, MinClusters: 1,
		MaxClusters: 3, AutoSuspend: 3 * time.Minute, AutoResume: true}
	rng := rand.New(rand.NewSource(7))
	trainLog := synthLog(rng, 25, cdw.SizeSmall)
	last := trainLog.Queries[len(trainLog.Queries)-1].EndTime
	m := Train(trainLog, cfg, t0, last.Add(time.Hour), 8)

	store := telemetry.NewStore()
	start := t0.Add(7*time.Minute + 13*time.Second) // off-grid range start
	at := start.Add(90 * time.Second)
	for i := 0; i < 40; i++ {
		exec := 45 * time.Second
		store.OnQuery(cdw.QueryRecord{
			Warehouse: "W", TemplateHash: uint64(i % 3),
			SubmitTime: at, StartTime: at, EndTime: at.Add(exec),
			ExecDuration: exec, Size: cdw.SizeSmall, Clusters: 1,
		})
		at = at.Add(20 * time.Second) // dense burst, one busy period
	}
	log := store.Log("W")
	cur := NewReplayCursor(m, log, start)
	for _, step := range []time.Duration{
		5 * time.Minute, 5 * time.Minute, time.Minute, 45 * time.Minute, 4 * time.Hour,
	} {
		to := cur.at.Add(step)
		got := cur.Advance(to)
		want := m.Replay(log, start, to)
		if got != want {
			t.Fatalf("advance to %v: cursor %+v != scratch %+v", to, got, want)
		}
	}
}
