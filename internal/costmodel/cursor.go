package costmodel

import (
	"time"

	"kwo/internal/telemetry"
)

// ReplayCursor incrementally maintains the state of a without-Keebo
// replay over a growing range [from, to). The engine's rolling savings
// estimate re-replays its whole billing period on every pass; with a
// cursor each pass only consumes the records that arrived since the
// last one, finalizes the mini-windows that can no longer change, and
// re-prices just the open tail.
//
// Advance(to) is guaranteed to return exactly what
// m.Replay(log, from, to) would return against the same log state —
// bit-for-bit, including float accumulation order. Two properties make
// that possible: all finalized quantities are folded in the same order
// a from-scratch replay folds them, and the cursor re-counts its
// consumed range on every call so a straggler (a long-running query
// whose submission only becomes visible once it completes, behind the
// cursor's watermark) triggers a full rebuild instead of a silent
// divergence.
type ReplayCursor struct {
	m    *Model
	log  *telemetry.WarehouseLog
	from time.Time
	// fallback marks a configuration (auto-suspend disabled) whose
	// busy-period bridge depends on the range end, which no incremental
	// state can serve; Advance delegates to from-scratch Replay.
	fallback    bool
	autoSuspend time.Duration

	at      time.Time // records submitted in [from, at) are consumed
	queries int

	cur           *busyPeriod // open busy period, may still extend
	closed        []billedIv  // billed intervals of closed periods, in order
	closedActive  float64     // ActiveSeconds fold over closed periods
	resumesClosed int

	// Per-mini-window arrival stats for not-yet-finalized windows,
	// keyed by window start (unix seconds). Arrivals are folded in
	// submission order, matching Replay's per-window accumulation.
	perWin map[int64]*winArrivals

	nextWin      time.Time // first mini-window not yet finalized
	creditsFinal float64   // Credits fold over finalized windows
	billLo       int       // closed[:billLo] end at or before nextWin

	// onRebuild, when set, is called whenever a straggler forces the
	// cursor to re-consume its whole range (for instrumentation).
	onRebuild func()
}

type winArrivals struct {
	n       int
	sumExec float64
}

// NewReplayCursor starts a cursor for rolling replays of [from, ...)
// against log using model m. The log may be nil-free but empty; records
// are consumed as Advance encounters them.
func NewReplayCursor(m *Model, log *telemetry.WarehouseLog, from time.Time) *ReplayCursor {
	c := &ReplayCursor{
		m:           m,
		log:         log,
		from:        from,
		fallback:    m.Orig.AutoSuspend <= 0,
		autoSuspend: m.Orig.AutoSuspend,
	}
	c.reset()
	return c
}

// Model returns the model the cursor replays with; callers that retrain
// use it to detect a stale cursor.
func (c *ReplayCursor) Model() *Model { return c.m }

// From returns the fixed start of the cursor's range.
func (c *ReplayCursor) From() time.Time { return c.from }

// SetOnRebuild registers a callback fired on every straggler-forced
// rebuild. Rebuilds are a correctness mechanism but a performance
// cliff, so operators watch their rate.
func (c *ReplayCursor) SetOnRebuild(fn func()) { c.onRebuild = fn }

func (c *ReplayCursor) reset() {
	c.at = c.from
	c.queries = 0
	c.cur = nil
	c.closed = c.closed[:0]
	c.closedActive = 0
	c.resumesClosed = 0
	if c.perWin == nil {
		c.perWin = make(map[int64]*winArrivals)
	} else {
		clear(c.perWin)
	}
	c.nextWin = c.from.Truncate(MiniWindow)
	c.creditsFinal = 0
	c.billLo = 0
}

// Advance consumes records submitted in [at, to), moves the watermark
// to to, and returns the replay result for the full range [from, to).
func (c *ReplayCursor) Advance(to time.Time) ReplayResult {
	if c.fallback || to.Before(c.at) {
		// Auto-suspend-disabled bridge or a backward move: no valid
		// incremental state; answer from scratch without touching it.
		return c.m.Replay(c.log, c.from, to)
	}
	// Straggler check: the telemetry store only learns a query's
	// submission once the query completes, so a record can appear
	// behind the watermark between calls. Two binary searches detect
	// it; a rebuild re-consumes the range and restores equivalence.
	if len(c.log.SubmittedBetween(c.from, c.at)) != c.queries {
		c.reset()
		if c.onRebuild != nil {
			c.onRebuild()
		}
	}

	orig := c.m.Orig
	recs := c.log.SubmittedBetween(c.at, to)
	for i := range recs {
		r := &recs[i]
		exec := c.m.Latency.ScaleExec(r.TemplateHash, r.ExecDuration.Seconds(), r.Size, orig.Size)
		start := r.SubmitTime
		end := start.Add(time.Duration(exec * float64(time.Second)))
		if c.cur != nil && !start.After(c.cur.end.Add(c.autoSuspend)) {
			if end.After(c.cur.end) {
				c.cur.end = end
			}
		} else {
			c.closePeriod()
			c.cur = &busyPeriod{start: start, end: end}
		}
		key := start.Truncate(MiniWindow).Unix()
		wa := c.perWin[key]
		if wa == nil {
			wa = &winArrivals{}
			c.perWin[key] = wa
		}
		wa.n++
		wa.sumExec += exec
	}
	c.queries += len(recs)
	c.at = to
	c.finalizeWindows()
	return c.result(to)
}

func (c *ReplayCursor) closePeriod() {
	if c.cur == nil {
		return
	}
	iv := billedInterval(*c.cur, c.autoSuspend, c.m.Billing)
	c.closed = append(c.closed, iv)
	c.closedActive += iv.end.Sub(iv.start).Seconds()
	c.resumesClosed++
	c.cur = nil
}

// finalizeWindows folds every mini-window wholly behind the watermark
// into the finalized credit prefix. Such a window's pricing inputs can
// no longer change: its arrivals are all consumed (later records submit
// at or after the watermark), future busy periods start at or after the
// watermark and so cannot overlap it, and the open period's billed
// overlap with it is already at its maximum — either the period can
// never extend again (its bridge expired before the watermark) or its
// billed end already reaches past the window.
func (c *ReplayCursor) finalizeWindows() {
	for w := c.nextWin; !w.Add(MiniWindow).After(c.at); w = w.Add(MiniWindow) {
		wEnd := w.Add(MiniWindow)
		for c.billLo < len(c.closed) && !c.closed[c.billLo].end.After(w) {
			c.billLo++
		}
		var active float64
		active, _ = c.windowActive(w, wEnd, c.billLo)
		key := w.Unix()
		if active > 0 {
			var n int
			var sumExec float64
			if wa := c.perWin[key]; wa != nil {
				n, sumExec = wa.n, wa.sumExec
			}
			c.creditsFinal += c.m.windowCredits(active, w, wEnd, n, sumExec)
		}
		delete(c.perWin, key)
		c.nextWin = wEnd
	}
}

// windowActive sums the billed-interval overlap with [w, wEnd), folding
// closed intervals in order from index lo and the open period last —
// the same order Replay's pricing pass folds them. It returns the first
// closed index that could overlap a later window.
func (c *ReplayCursor) windowActive(w, wEnd time.Time, lo int) (float64, int) {
	for lo < len(c.closed) && !c.closed[lo].end.After(w) {
		lo++
	}
	var active float64
	for i := lo; i < len(c.closed); i++ {
		if !c.closed[i].start.Before(wEnd) {
			break
		}
		active += c.closed[i].overlapSecs(w, wEnd)
	}
	if c.cur != nil {
		active += billedInterval(*c.cur, c.autoSuspend, c.m.Billing).overlapSecs(w, wEnd)
	}
	return active, lo
}

// result assembles the ReplayResult for [from, to) from the finalized
// prefix plus a fresh pricing pass over the open tail windows.
func (c *ReplayCursor) result(to time.Time) ReplayResult {
	res := ReplayResult{From: c.from, To: to, Queries: c.queries}
	if c.queries == 0 {
		return res
	}
	res.Resumes = c.resumesClosed
	res.ActiveSeconds = c.closedActive
	var horizon time.Time
	if len(c.closed) > 0 {
		horizon = c.closed[len(c.closed)-1].end
	}
	if c.cur != nil {
		res.Resumes++
		iv := billedInterval(*c.cur, c.autoSuspend, c.m.Billing)
		res.ActiveSeconds += iv.end.Sub(iv.start).Seconds()
		horizon = iv.end // billed ends strictly increase; the open period's is last
	}
	credits := c.creditsFinal
	lo := c.billLo
	for w := c.nextWin; w.Before(horizon); w = w.Add(MiniWindow) {
		wEnd := w.Add(MiniWindow)
		var active float64
		active, lo = c.windowActive(w, wEnd, lo)
		if active == 0 {
			continue
		}
		var n int
		var sumExec float64
		if wa := c.perWin[w.Unix()]; wa != nil {
			n, sumExec = wa.n, wa.sumExec
		}
		credits += c.m.windowCredits(active, w, wEnd, n, sumExec)
	}
	res.Credits = credits
	return res
}
