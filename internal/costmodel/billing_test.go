package costmodel

import (
	"math"
	"strings"
	"testing"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/telemetry"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func billingLog() *telemetry.WarehouseLog {
	log := &telemetry.WarehouseLog{Name: "W"}
	// Three queries spread over two clock hours, 1 GiB each.
	for i, off := range []time.Duration{0, 30 * time.Minute, 90 * time.Minute} {
		at := t0.Add(off)
		log.Queries = append(log.Queries, cdw.QueryRecord{
			Warehouse: "W", TemplateHash: uint64(i),
			SubmitTime: at, StartTime: at, EndTime: at.Add(time.Minute),
			ExecDuration: time.Minute, Size: cdw.SizeSmall, Clusters: 1,
			BytesScanned: 1 << 30,
		})
	}
	return log
}

func TestOnDemandBilling(t *testing.T) {
	b := OnDemandBilling{PerTiB: 5}
	got := b.Price(ReplayResult{}, billingLog().Queries)
	want := 3.0 / 1024 * 5 // 3 GiB at 5 per TiB
	if !approx(got, want, 1e-9) {
		t.Fatalf("on-demand price = %v, want %v", got, want)
	}
	// Default rate applies when unset.
	if (OnDemandBilling{}).Price(ReplayResult{}, billingLog().Queries) <= 0 {
		t.Fatal("default rate not applied")
	}
}

func TestHourlyPoolBilling(t *testing.T) {
	b := HourlyPoolBilling{PerHour: 4}
	got := b.Price(ReplayResult{}, billingLog().Queries)
	// Activity touches hours 0 and 1 → 2 pool hours.
	if !approx(got, 8, 1e-9) {
		t.Fatalf("pool price = %v, want 8", got)
	}
}

func TestCreditBillingPassesThroughReplay(t *testing.T) {
	if (CreditBilling{}).Price(ReplayResult{Credits: 3.5}, nil) != 3.5 {
		t.Fatal("credit billing did not pass through")
	}
}

func TestCompareProducts(t *testing.T) {
	log := billingLog()
	cfg := cdw.Config{Name: "W", Size: cdw.SizeSmall, MinClusters: 1,
		MaxClusters: 1, AutoSuspend: 5 * time.Minute, AutoResume: true}
	m := Train(log, cfg, t0, t0.Add(2*time.Hour), 8)
	pc := m.CompareProducts(log, t0, t0.Add(2*time.Hour))
	if len(pc.Rows) != 3 {
		t.Fatalf("rows = %d", len(pc.Rows))
	}
	if pc.Queries != 3 {
		t.Fatalf("queries = %d", pc.Queries)
	}
	for _, r := range pc.Rows {
		if r.Price <= 0 {
			t.Fatalf("%s priced %v", r.Scheme, r.Price)
		}
	}
	// This sparse, scan-light workload should be cheaper on-demand
	// than on an always-billed pool.
	if pc.Rows[1].Price >= pc.Rows[2].Price {
		t.Fatalf("on-demand (%v) not cheaper than hourly pool (%v) for sparse workload",
			pc.Rows[1].Price, pc.Rows[2].Price)
	}
	if !strings.Contains(pc.String(), "Cross-product") {
		t.Fatal("rendering broken")
	}
}
