package costmodel

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/telemetry"
)

// synthLog fabricates a telemetry log with n random isolated queries.
func synthLog(rng *rand.Rand, n int, size cdw.Size) *telemetry.WarehouseLog {
	log := &telemetry.WarehouseLog{Name: "W"}
	at := t0
	for i := 0; i < n; i++ {
		at = at.Add(time.Duration(rng.Intn(3600)+1) * time.Second)
		exec := time.Duration(rng.Intn(300)+1) * time.Second
		log.Queries = append(log.Queries, cdw.QueryRecord{
			Warehouse: "W", TemplateHash: uint64(rng.Intn(5)),
			SubmitTime: at, StartTime: at, EndTime: at.Add(exec),
			ExecDuration: exec, Size: size, Clusters: 1,
		})
	}
	return log
}

// Property: replay credits are non-negative, and replaying a window
// that contains all queries costs at least as much as any sub-window.
func TestPropertyReplayMonotoneInWindow(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		log := synthLog(rng, int(n)%40+2, cdw.SizeSmall)
		cfg := cdw.Config{Name: "W", Size: cdw.SizeSmall, MinClusters: 1,
			MaxClusters: 1, AutoSuspend: 5 * time.Minute, AutoResume: true}
		last := log.Queries[len(log.Queries)-1].EndTime
		m := Train(log, cfg, t0, last.Add(time.Hour), 8)
		full := m.Replay(log, t0, last.Add(time.Hour))
		if full.Credits < 0 || full.ActiveSeconds < 0 {
			return false
		}
		// Sub-window covering the first half of the queries.
		mid := log.Queries[len(log.Queries)/2].SubmitTime
		half := m.Replay(log, t0, mid)
		if half.Credits < 0 || half.Credits > full.Credits+1e-9 {
			return false
		}
		// Replay never bills below the 60s-minimum floor per resume.
		minCredits := float64(full.Resumes) * 60.0 / 3600 * cfg.Size.CreditsPerHour()
		return full.Credits >= minCredits-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the without-Keebo estimate at a LARGER original size always
// costs at least as much per active period as the same replay at the
// recorded size would, for single-cluster warehouses — rate doubles
// faster than the latency model shrinks time (slope > -1).
func TestPropertyReplayOriginalSizeOrdering(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		log := synthLog(rng, int(n)%30+2, cdw.SizeSmall)
		last := log.Queries[len(log.Queries)-1].EndTime.Add(time.Hour)
		small := cdw.Config{Name: "W", Size: cdw.SizeSmall, MinClusters: 1,
			MaxClusters: 1, AutoSuspend: 2 * time.Minute, AutoResume: true}
		large := small
		large.Size = cdw.SizeLarge
		mSmall := Train(log, small, t0, last, 8)
		mLarge := Train(log, large, t0, last, 8)
		cSmall := mSmall.Replay(log, t0, last).Credits
		cLarge := mLarge.Replay(log, t0, last).Credits
		return cLarge >= cSmall-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: EstimateCPH is non-negative and bounded by the full-rate
// ceiling (every cluster busy all the time).
func TestPropertyEstimateCPHBounded(t *testing.T) {
	f := func(seed int64, qph uint16, execSecs uint8, sizeIdx, maxC uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		log := synthLog(rng, 20, cdw.SizeSmall)
		cfg := cdw.Config{
			Name:        "W",
			Size:        cdw.Size(sizeIdx % 10),
			MinClusters: 1,
			MaxClusters: int(maxC%10) + 1,
			AutoSuspend: 5 * time.Minute,
			AutoResume:  true,
		}
		m := Train(log, cfg, t0, t0.Add(24*time.Hour), 8)
		ws := telemetry.WindowStats{
			Queries: 50,
			QPH:     float64(qph),
			AvgExec: time.Duration(execSecs) * time.Second,
			AvgSize: float64(cfg.Size),
		}
		cph := m.EstimateCPH(ws, cfg)
		if cph < 0 {
			return false
		}
		ceiling := cfg.Size.CreditsPerHour() * float64(cfg.MaxClusters)
		return cph <= ceiling+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
