package costmodel

import (
	"encoding/binary"
	"math"
	"testing"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/telemetry"
)

// decodeHistory turns arbitrary fuzz bytes into a query history: each
// 8-byte chunk encodes one query's arrival gap, execution time, size,
// template and cold flag. Any byte string decodes to a valid history,
// so the fuzzer explores histories (dense bursts, huge gaps, size
// mixes), not parser rejections.
func decodeHistory(data []byte) *telemetry.WarehouseLog {
	log := &telemetry.WarehouseLog{Name: "W"}
	at := t0
	for len(data) >= 8 {
		w := binary.LittleEndian.Uint64(data[:8])
		data = data[8:]
		gap := time.Duration(w&0xFFFF) * time.Second                     // 0 .. ~18h
		exec := time.Duration((w>>16)&0x3FFF+1) * time.Millisecond * 100 // 0.1s .. ~27min
		size := cdw.SizeXSmall + cdw.Size((w>>30)&0x7)
		if !size.Valid() {
			size = cdw.SizeXSmall
		}
		tmpl := (w >> 33) & 0xF
		cold := (w>>37)&0x1 == 1
		queue := time.Duration((w>>38)&0xFF) * time.Second

		at = at.Add(gap)
		start := at.Add(queue)
		log.Queries = append(log.Queries, cdw.QueryRecord{
			QueryID:       uint64(len(log.Queries) + 1),
			Warehouse:     "W",
			TemplateHash:  tmpl,
			SubmitTime:    at,
			StartTime:     start,
			EndTime:       start.Add(exec),
			QueueDuration: queue,
			ExecDuration:  exec,
			Size:          size,
			Clusters:      1 + int((w>>46)&0x3),
			ColdRead:      cold,
		})
	}
	return log
}

// FuzzReplay trains the cost model on arbitrary query histories and
// replays them: whatever the history, the predicted without-Keebo cost
// must be finite and non-negative, and sub-window replays must never
// cost more than the full window.
func FuzzReplay(f *testing.F) {
	f.Add([]byte{})
	// One isolated query.
	f.Add(binary.LittleEndian.AppendUint64(nil, 60|(300<<16)))
	// A burst of identical queries with zero gaps.
	var burst []byte
	for i := 0; i < 12; i++ {
		burst = binary.LittleEndian.AppendUint64(burst, uint64(i)<<33|(50<<16))
	}
	f.Add(burst)
	// Mixed sizes, huge gaps, cold reads.
	var mixed []byte
	for i := 0; i < 8; i++ {
		mixed = binary.LittleEndian.AppendUint64(mixed,
			0xFFFF|uint64(i%5)<<30|uint64(i)<<33|1<<37|(900<<16))
	}
	f.Add(mixed)

	cfg := cdw.Config{Name: "W", Size: cdw.SizeMedium, MinClusters: 1,
		MaxClusters: 2, AutoSuspend: 5 * time.Minute, AutoResume: true}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 8*256 {
			data = data[:8*256] // bound per-input work
		}
		log := decodeHistory(data)
		to := t0.Add(time.Hour)
		if n := len(log.Queries); n > 0 {
			to = log.Queries[n-1].EndTime.Add(time.Hour)
		}
		m := Train(log, cfg, t0, to, 8)
		res := m.Replay(log, t0, to)

		check := func(name string, v float64) {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("%s = %v for %d-query history", name, v, len(log.Queries))
			}
		}
		check("Credits", res.Credits)
		check("ActiveSeconds", res.ActiveSeconds)
		if res.Resumes < 0 || res.Queries != len(log.Queries) {
			t.Fatalf("resumes=%d queries=%d/%d", res.Resumes, res.Queries, len(log.Queries))
		}

		// A half-window replay can never cost more than the full window.
		mid := t0.Add(to.Sub(t0) / 2)
		half := m.Replay(log, t0, mid)
		check("half-window Credits", half.Credits)
		if half.Credits > res.Credits+1e-9 {
			t.Fatalf("sub-window costs %v > full window %v", half.Credits, res.Credits)
		}
	})
}
