package costmodel

import (
	"math"
	"testing"
	"time"

	"kwo/internal/action"
	"kwo/internal/cdw"
	"kwo/internal/simclock"
	"kwo/internal/telemetry"
	"kwo/internal/workload"
)

var t0 = simclock.Epoch

// synthObs fabricates latency observations with a known log2 slope.
func synthObs(slope float64, sizes []cdw.Size, perSize int) map[uint64][]telemetry.LatencyObs {
	out := make(map[uint64][]telemetry.LatencyObs)
	base := 100.0
	for _, s := range sizes {
		exec := base * math.Exp2(slope*float64(s))
		for i := 0; i < perSize; i++ {
			out[1] = append(out[1], telemetry.LatencyObs{Size: s, ExecSecs: exec})
		}
	}
	return out
}

func TestLatencyModelRecoversSlope(t *testing.T) {
	obs := synthObs(-1.0, []cdw.Size{cdw.SizeXSmall, cdw.SizeSmall, cdw.SizeMedium}, 3)
	m := FitLatency(obs)
	if m.TemplateCount() != 1 {
		t.Fatalf("template regressions = %d, want 1", m.TemplateCount())
	}
	// 100s at XS should predict ~25s at Medium.
	got := m.ScaleExec(1, 100, cdw.SizeXSmall, cdw.SizeMedium)
	if math.Abs(got-25) > 1 {
		t.Fatalf("scaled exec = %v, want ~25", got)
	}
	// And back up.
	got = m.ScaleExec(1, 25, cdw.SizeMedium, cdw.SizeXSmall)
	if math.Abs(got-100) > 4 {
		t.Fatalf("scaled exec = %v, want ~100", got)
	}
}

func TestLatencyModelFallback(t *testing.T) {
	// Template 2 has too few observations → falls back to global.
	obs := synthObs(-0.9, []cdw.Size{cdw.SizeXSmall, cdw.SizeSmall, cdw.SizeMedium}, 4)
	obs[2] = []telemetry.LatencyObs{{Size: cdw.SizeXSmall, ExecSecs: 50}}
	m := FitLatency(obs)
	got := m.ScaleExec(2, 50, cdw.SizeXSmall, cdw.SizeSmall)
	want := 50 * math.Exp2(m.LogStep())
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("fallback scale = %v, want %v", got, want)
	}
	if m.LogStep() > -0.5 || m.LogStep() < -1.3 {
		t.Fatalf("global log step = %v, want near -0.9", m.LogStep())
	}
}

func TestLatencyModelUnfittedDefaults(t *testing.T) {
	m := FitLatency(nil)
	if m.Fitted() {
		t.Fatal("empty model claims fitted")
	}
	got := m.ScaleExec(9, 100, cdw.SizeXSmall, cdw.SizeSmall)
	want := 100 * math.Exp2(defaultLogStep)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("default scale = %v, want %v", got, want)
	}
	if m.ScaleExec(9, 100, cdw.SizeSmall, cdw.SizeSmall) != 100 {
		t.Fatal("same-size scale changed value")
	}
}

func TestLatencyModelColdRatio(t *testing.T) {
	obs := map[uint64][]telemetry.LatencyObs{
		1: {
			{Size: cdw.SizeXSmall, ExecSecs: 10, Cold: false},
			{Size: cdw.SizeXSmall, ExecSecs: 10, Cold: false},
			{Size: cdw.SizeXSmall, ExecSecs: 30, Cold: true},
		},
	}
	m := FitLatency(obs)
	if math.Abs(m.ColdRatio()-3.0) > 1e-9 {
		t.Fatalf("cold ratio = %v, want 3", m.ColdRatio())
	}
}

func TestGapModel(t *testing.T) {
	g := FitGaps([]float64{10, 20, 30, 40, 600})
	if g.N() != 5 {
		t.Fatalf("N = %d", g.N())
	}
	if math.Abs(g.Mean()-140) > 1e-9 {
		t.Fatalf("mean = %v", g.Mean())
	}
	// With a 60s auto-suspend: idle billed = (10+20+30+40+60)/5 = 32.
	got := g.IdleBilledPerGap(60 * time.Second)
	if math.Abs(got-32) > 1e-9 {
		t.Fatalf("idle billed = %v, want 32", got)
	}
	// Only the 600s gap exceeds 60s → suspend fraction 0.2.
	if f := g.SuspendFraction(60 * time.Second); math.Abs(f-0.2) > 1e-9 {
		t.Fatalf("suspend fraction = %v, want 0.2", f)
	}
	// Negative gaps are ignored.
	if FitGaps([]float64{-5, 5}).N() != 1 {
		t.Fatal("negative gap not filtered")
	}
	if FitGaps(nil).IdleBilledPerGap(time.Minute) != 0 {
		t.Fatal("empty gap model billed idle")
	}
}

func TestClusterModelAnalytic(t *testing.T) {
	m := &ClusterModel{slots: 8}
	// Tiny load: one cluster.
	if got := m.Predict(10, 5, 10); got != 1 {
		t.Fatalf("light load clusters = %v, want 1", got)
	}
	// Heavy load: 3600 qph × 20s / 8 slots = 2.5 clusters of work.
	got := m.Predict(3600, 20, 10)
	if got < 2.5 || got > 5 {
		t.Fatalf("heavy load clusters = %v, want in [2.5, 5]", got)
	}
	// Clamped by max.
	if got := m.Predict(36000, 60, 3); got != 3 {
		t.Fatalf("clamped clusters = %v, want 3", got)
	}
}

// buildTelemetry runs a real workload against the simulator with a
// fixed config and returns the telemetry log plus the actual credits
// over the window — ground truth for replay accuracy tests.
func buildTelemetry(t *testing.T, cfg cdw.Config, gen workload.Generator, days int, seed int64) (*telemetry.WarehouseLog, *cdw.Account, float64, time.Time) {
	t.Helper()
	sched := simclock.NewScheduler(seed)
	acct := cdw.NewAccount(sched, cdw.DefaultSimParams())
	store := telemetry.NewStore()
	acct.Subscribe(store)
	if _, err := acct.CreateWarehouse(cfg); err != nil {
		t.Fatal(err)
	}
	to := t0.Add(time.Duration(days) * 24 * time.Hour)
	arr := gen.Generate(t0, to, sched.Rand("workload"))
	workload.Drive(sched, acct, cfg.Name, arr)
	sched.RunUntil(to.Add(2 * time.Hour)) // let stragglers finish
	wh, _ := acct.Warehouse(cfg.Name)
	actual := wh.Meter().CreditsBetween(t0, to, sched.Now())
	return store.Log(cfg.Name), acct, actual, to
}

func TestReplayMatchesActualUnchangedConfig(t *testing.T) {
	// The key §7.2 property: with no optimizer in play, replaying
	// telemetry under the *same* original config should reproduce the
	// actual bill closely.
	cfg := cdw.Config{
		Name: "W", Size: cdw.SizeSmall, MinClusters: 1, MaxClusters: 1,
		Policy: cdw.ScaleStandard, AutoSuspend: 3 * time.Minute, AutoResume: true,
	}
	biPool, _, _ := workload.StandardPools()
	gen := workload.BI{Pool: biPool, PeakQPH: 80, WeekendFactor: 0.2}
	log, _, actual, to := buildTelemetry(t, cfg, gen, 3, 11)
	if actual <= 0 {
		t.Fatal("no actual credits")
	}
	m := Train(log, cfg, t0, to, 8)
	res := m.Replay(log, t0, to)
	relErr := math.Abs(res.Credits-actual) / actual
	if relErr > 0.15 {
		t.Fatalf("replay = %.2f vs actual %.2f credits (rel err %.1f%%), want < 15%%",
			res.Credits, actual, relErr*100)
	}
	if res.Queries == 0 || res.Resumes == 0 || res.ActiveSeconds <= 0 {
		t.Fatalf("replay result incomplete: %+v", res)
	}
}

func TestReplayCountsIdleAndMinimums(t *testing.T) {
	// Two one-second queries an hour apart on a 60s-suspend warehouse:
	// two busy periods, each billing ~1s + 60s idle ≥ the 60s minimum.
	cfg := cdw.Config{
		Name: "W", Size: cdw.SizeXSmall, MinClusters: 1, MaxClusters: 1,
		AutoSuspend: time.Minute, AutoResume: true,
	}
	log := &telemetry.WarehouseLog{Name: "W"}
	for i := 0; i < 2; i++ {
		at := t0.Add(time.Duration(i) * time.Hour)
		log.Queries = append(log.Queries, cdw.QueryRecord{
			Warehouse: "W", SubmitTime: at, StartTime: at,
			EndTime:      at.Add(time.Second),
			ExecDuration: time.Second, Size: cdw.SizeXSmall, Clusters: 1,
		})
	}
	m := Train(log, cfg, t0, t0.Add(2*time.Hour), 8)
	res := m.Replay(log, t0, t0.Add(2*time.Hour))
	if res.Resumes != 2 {
		t.Fatalf("resumes = %d, want 2", res.Resumes)
	}
	// Each period bills 61s → total ~122s ≈ 0.0339 credits.
	want := 2 * 61.0 / 3600
	if math.Abs(res.Credits-want) > 0.01 {
		t.Fatalf("credits = %v, want ~%v", res.Credits, want)
	}
}

func TestReplayBridgesShortGaps(t *testing.T) {
	cfg := cdw.Config{
		Name: "W", Size: cdw.SizeXSmall, MinClusters: 1, MaxClusters: 1,
		AutoSuspend: 10 * time.Minute, AutoResume: true,
	}
	log := &telemetry.WarehouseLog{Name: "W"}
	// Queries every 5 minutes: gaps shorter than auto-suspend → one
	// continuous busy period.
	for i := 0; i < 12; i++ {
		at := t0.Add(time.Duration(i) * 5 * time.Minute)
		log.Queries = append(log.Queries, cdw.QueryRecord{
			Warehouse: "W", SubmitTime: at, StartTime: at,
			EndTime:      at.Add(10 * time.Second),
			ExecDuration: 10 * time.Second, Size: cdw.SizeXSmall, Clusters: 1,
		})
	}
	m := Train(log, cfg, t0, t0.Add(2*time.Hour), 8)
	res := m.Replay(log, t0, t0.Add(2*time.Hour))
	if res.Resumes != 1 {
		t.Fatalf("resumes = %d, want 1 (continuous)", res.Resumes)
	}
	// Active: 55min span + 10s + 10min trailing suspend ≈ 65min.
	wantSecs := 55*60 + 10 + 10*60.0
	if math.Abs(res.ActiveSeconds-wantSecs) > 30 {
		t.Fatalf("active seconds = %v, want ~%v", res.ActiveSeconds, wantSecs)
	}
}

func TestReplayEmptyWindow(t *testing.T) {
	cfg := cdw.Config{Name: "W", Size: cdw.SizeXSmall, MinClusters: 1, MaxClusters: 1, AutoResume: true}
	log := &telemetry.WarehouseLog{Name: "W"}
	m := Train(log, cfg, t0, t0.Add(time.Hour), 8)
	res := m.Replay(log, t0, t0.Add(time.Hour))
	if res.Credits != 0 || res.Resumes != 0 {
		t.Fatalf("empty replay = %+v", res)
	}
}

func TestReplayScalesExecAcrossSizes(t *testing.T) {
	// Telemetry recorded on Small (KWO downsized from Large): the
	// without-Keebo replay at Large should bill at 8x rate but shorter
	// active time per query.
	orig := cdw.Config{
		Name: "W", Size: cdw.SizeLarge, MinClusters: 1, MaxClusters: 1,
		AutoSuspend: time.Minute, AutoResume: true,
	}
	log := &telemetry.WarehouseLog{Name: "W"}
	// One long isolated query recorded at X-Small: 800s exec.
	log.Queries = append(log.Queries, cdw.QueryRecord{
		Warehouse: "W", SubmitTime: t0, StartTime: t0,
		EndTime:      t0.Add(800 * time.Second),
		ExecDuration: 800 * time.Second, Size: cdw.SizeXSmall, Clusters: 1,
		TemplateHash: 5,
	})
	m := Train(log, orig, t0, t0.Add(time.Hour), 8)
	res := m.Replay(log, t0, t0.Add(time.Hour))
	// With the default slope −0.85 per step: 800s × 2^(−0.85·3) ≈ 137s.
	// Billed: 137 + 60 idle ≈ 197s at 8 credits/hour ≈ 0.44 credits.
	execWant := 800 * math.Exp2(defaultLogStep*3)
	want := (execWant + 60) / 3600 * 8
	if math.Abs(res.Credits-want) > 0.05 {
		t.Fatalf("credits = %v, want ~%v", res.Credits, want)
	}
}

func TestEstimateSavings(t *testing.T) {
	cfg := cdw.Config{
		Name: "W", Size: cdw.SizeXSmall, MinClusters: 1, MaxClusters: 1,
		AutoSuspend: time.Minute, AutoResume: true,
	}
	log := &telemetry.WarehouseLog{Name: "W"}
	log.Queries = append(log.Queries, cdw.QueryRecord{
		Warehouse: "W", SubmitTime: t0, StartTime: t0,
		EndTime:      t0.Add(time.Minute),
		ExecDuration: time.Minute, Size: cdw.SizeXSmall, Clusters: 1,
	})
	m := Train(log, cfg, t0, t0.Add(time.Hour), 8)
	replayed := m.Replay(log, t0, t0.Add(time.Hour)).Credits
	savings := m.EstimateSavings(log, replayed-0.01, t0, t0.Add(time.Hour))
	if math.Abs(savings-0.01) > 1e-9 {
		t.Fatalf("savings = %v, want 0.01", savings)
	}
}

func TestEstimateCPHDirections(t *testing.T) {
	cfg := cdw.Config{
		Name: "W", Size: cdw.SizeMedium, MinClusters: 1, MaxClusters: 2,
		AutoSuspend: 10 * time.Minute, AutoResume: true,
	}
	log := &telemetry.WarehouseLog{Name: "W"}
	// Sparse workload: 30 queries over 10 hours, 5s each, 20-min gaps.
	for i := 0; i < 30; i++ {
		at := t0.Add(time.Duration(i) * 20 * time.Minute)
		log.Queries = append(log.Queries, cdw.QueryRecord{
			Warehouse: "W", SubmitTime: at, StartTime: at,
			EndTime:      at.Add(5 * time.Second),
			ExecDuration: 5 * time.Second, Size: cdw.SizeMedium, Clusters: 1,
		})
	}
	to := t0.Add(10 * time.Hour)
	m := Train(log, cfg, t0, to, 8)
	ws := log.Stats(t0, to)

	base := m.EstimateCPH(ws, cfg)
	if base <= 0 {
		t.Fatal("zero baseline CPH")
	}
	smaller := cfg
	smaller.Size = cdw.SizeXSmall
	if m.EstimateCPH(ws, smaller) >= base {
		t.Fatal("downsizing an idle-dominated warehouse did not reduce CPH")
	}
	shorter := cfg
	shorter.AutoSuspend = time.Minute
	if m.EstimateCPH(ws, shorter) >= base {
		t.Fatal("shorter auto-suspend on sparse workload did not reduce CPH")
	}
}

func TestPredictImpactDirections(t *testing.T) {
	cfg := cdw.Config{
		Name: "W", Size: cdw.SizeMedium, MinClusters: 1, MaxClusters: 4,
		AutoSuspend: 10 * time.Minute, AutoResume: true,
	}
	log := &telemetry.WarehouseLog{Name: "W"}
	for i := 0; i < 50; i++ {
		at := t0.Add(time.Duration(i) * 10 * time.Minute)
		log.Queries = append(log.Queries, cdw.QueryRecord{
			Warehouse: "W", SubmitTime: at, StartTime: at,
			EndTime:      at.Add(8 * time.Second),
			ExecDuration: 8 * time.Second, Size: cdw.SizeMedium, Clusters: 1,
		})
	}
	to := t0.Add(9 * time.Hour)
	m := Train(log, cfg, t0, to, 8)
	ws := log.Stats(t0, to)

	down := m.PredictImpact(ws, cfg, action.Action{Kind: action.SizeDown})
	if down.DeltaCreditsPerHour >= 0 {
		t.Fatalf("size-down predicted to cost more: %+v", down)
	}
	if down.LatencyFactor <= 1 {
		t.Fatalf("size-down predicted to speed up: %+v", down)
	}
	up := m.PredictImpact(ws, cfg, action.Action{Kind: action.SizeUp})
	if up.DeltaCreditsPerHour <= 0 {
		t.Fatalf("size-up predicted to save: %+v", up)
	}
	if up.LatencyFactor >= 1 {
		t.Fatalf("size-up predicted to slow down: %+v", up)
	}
	shorter := m.PredictImpact(ws, cfg, action.Action{Kind: action.SuspendShorter})
	if shorter.DeltaCreditsPerHour >= 0 {
		t.Fatalf("suspend-shorter predicted to cost more on sparse load: %+v", shorter)
	}
	if shorter.LatencyFactor < 1 {
		t.Fatalf("suspend-shorter predicted to speed up: %+v", shorter)
	}
	noop := m.PredictImpact(ws, cfg, action.Action{Kind: action.NoOp})
	if noop.DeltaCreditsPerHour != 0 || noop.LatencyFactor != 1 {
		t.Fatalf("no-op has impact: %+v", noop)
	}
}

func TestPredictImpactQueueRisk(t *testing.T) {
	cfg := cdw.Config{
		Name: "W", Size: cdw.SizeSmall, MinClusters: 1, MaxClusters: 2,
		AutoSuspend: 5 * time.Minute, AutoResume: true,
	}
	log := &telemetry.WarehouseLog{Name: "W"}
	// Saturating load: 7200 qph × 10s / 8 slots = 2.5 clusters needed.
	for i := 0; i < 200; i++ {
		at := t0.Add(time.Duration(i) * 500 * time.Millisecond)
		log.Queries = append(log.Queries, cdw.QueryRecord{
			Warehouse: "W", SubmitTime: at, StartTime: at,
			EndTime:      at.Add(10 * time.Second),
			ExecDuration: 10 * time.Second, Size: cdw.SizeSmall, Clusters: 2,
		})
	}
	to := t0.Add(100 * time.Second)
	m := Train(log, cfg, t0, to, 8)
	ws := log.Stats(t0, to.Add(time.Minute))
	down := m.PredictImpact(ws, cfg, action.Action{Kind: action.ClustersDown})
	if down.QueueRisk <= 0 {
		t.Fatalf("clusters-down under saturating load shows no queue risk: %+v", down)
	}
	if down.LatencyFactor <= 1 {
		t.Fatalf("queue risk without latency penalty: %+v", down)
	}
}

func TestClusterModelFitsFromTelemetry(t *testing.T) {
	cfg := cdw.Config{
		Name: "W", Size: cdw.SizeSmall, MinClusters: 1, MaxClusters: 4,
		Policy: cdw.ScaleStandard, AutoSuspend: 5 * time.Minute, AutoResume: true,
	}
	biPool, _, _ := workload.StandardPools()
	gen := workload.BI{Pool: biPool, PeakQPH: 400, WeekendFactor: 0.2}
	log, _, _, to := buildTelemetry(t, cfg, gen, 2, 13)
	cm := FitClusters(log, cfg, t0, to, 8)
	if !cm.Fitted() {
		t.Fatal("cluster model did not fit with 2 days of busy telemetry")
	}
	// Prediction must stay within physical bounds.
	for _, qph := range []float64{0, 100, 1000, 100000} {
		p := cm.Predict(qph, 10, 4)
		if p < 1 || p > 4 {
			t.Fatalf("prediction %v out of [1,4] at qph=%v", p, qph)
		}
	}
}

func TestPredictImpactPolicySwitch(t *testing.T) {
	cfg := cdw.Config{
		Name: "W", Size: cdw.SizeSmall, MinClusters: 1, MaxClusters: 4,
		Policy: cdw.ScaleStandard, AutoSuspend: 5 * time.Minute, AutoResume: true,
	}
	log := &telemetry.WarehouseLog{Name: "W"}
	// Multi-cluster load: ~1385 qph × 40s / 8 slots ≈ 1.9 clusters.
	for i := 0; i < 100; i++ {
		at := t0.Add(time.Duration(i) * 2 * time.Second)
		log.Queries = append(log.Queries, cdw.QueryRecord{
			Warehouse: "W", SubmitTime: at, StartTime: at,
			EndTime:      at.Add(40 * time.Second),
			ExecDuration: 40 * time.Second, Size: cdw.SizeSmall, Clusters: 2,
		})
	}
	to := t0.Add(200 * time.Second)
	m := Train(log, cfg, t0, to, 8)
	ws := log.Stats(t0, to.Add(time.Minute))

	eco := m.PredictImpact(ws, cfg, action.Action{Kind: action.PolicyEconomy})
	if eco.DeltaCreditsPerHour >= 0 {
		t.Fatalf("economy switch predicted to cost more: %+v", eco)
	}
	if eco.QueueRisk <= 0 || eco.LatencyFactor <= 1 {
		t.Fatalf("economy switch shows no queueing trade-off: %+v", eco)
	}
	// Switching back: slightly better latency, higher cost.
	ecoCfg := cfg
	ecoCfg.Policy = cdw.ScaleEconomy
	std := m.PredictImpact(ws, ecoCfg, action.Action{Kind: action.PolicyStandard})
	if std.DeltaCreditsPerHour <= 0 {
		t.Fatalf("standard switch predicted to save: %+v", std)
	}
	if std.LatencyFactor >= 1 {
		t.Fatalf("standard switch not an improvement: %+v", std)
	}
	// Single-cluster warehouses are indifferent to policy.
	single := cfg
	single.MaxClusters = 1
	none := m.PredictImpact(ws, single, action.Action{Kind: action.PolicyEconomy})
	if none.QueueRisk != 0 || none.LatencyFactor != 1 {
		t.Fatalf("policy switch on single-cluster warehouse has impact: %+v", none)
	}
}

// TestFitLatencyDeterministic is a regression test: FitLatency used to
// accumulate the pooled regression sums in map-iteration order, so the
// fitted weights differed in their last bits from run to run —
// occasionally flipping a borderline engine decision and breaking
// seed-level reproducibility. Many templates with irregular values make
// any order sensitivity visible across repeated fits.
func TestFitLatencyDeterministic(t *testing.T) {
	obs := make(map[uint64][]telemetry.LatencyObs)
	for tmpl := uint64(1); tmpl <= 60; tmpl++ {
		x := float64(tmpl)
		for _, s := range []cdw.Size{cdw.SizeXSmall, cdw.SizeSmall, cdw.SizeMedium} {
			exec := (100.0 + x/3.0) * math.Exp2(-0.9*float64(s))
			obs[tmpl] = append(obs[tmpl],
				telemetry.LatencyObs{Size: s, ExecSecs: exec},
				telemetry.LatencyObs{Size: s, ExecSecs: exec * 1.37, Cold: true})
		}
	}
	ref := FitLatency(obs)
	for i := 0; i < 20; i++ {
		m := FitLatency(obs)
		if m.globalLogStep != ref.globalLogStep || m.coldRatio != ref.coldRatio {
			t.Fatalf("fit %d diverged: logStep %v vs %v, coldRatio %v vs %v",
				i, m.globalLogStep, ref.globalLogStep, m.coldRatio, ref.coldRatio)
		}
		for j, w := range m.global.Weights {
			if w != ref.global.Weights[j] {
				t.Fatalf("fit %d: global weight %d = %v, want %v (bit-exact)",
					i, j, w, ref.global.Weights[j])
			}
		}
	}
}
