package costmodel

import (
	"math/rand"
	"testing"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/telemetry"
)

// benchLog builds a 100k-record log (~29 days of traffic) through the
// real telemetry ingest path so indexes exist, as in production.
func benchReplayLog(n int) *telemetry.WarehouseLog {
	rng := rand.New(rand.NewSource(7))
	s := telemetry.NewStore()
	at := t0
	for i := 0; i < n; i++ {
		at = at.Add(time.Duration(rng.Intn(50)+1) * time.Second)
		exec := time.Duration(rng.Intn(120)+1) * time.Second
		s.OnQuery(cdw.QueryRecord{
			Warehouse: "W", TemplateHash: uint64(rng.Intn(20)),
			SubmitTime: at, StartTime: at, EndTime: at.Add(exec),
			ExecDuration: exec, Size: cdw.SizeSmall, Clusters: 1,
		})
	}
	return s.Log("W")
}

var sinkReplay ReplayResult

const benchReplayN = 100_000

func benchReplaySetup(b *testing.B) (*Model, *telemetry.WarehouseLog, time.Time) {
	b.Helper()
	log := benchReplayLog(benchReplayN)
	cfg := cdw.Config{Name: "W", Size: cdw.SizeSmall, MinClusters: 1,
		MaxClusters: 2, AutoSuspend: 5 * time.Minute, AutoResume: true}
	m := Train(log, cfg, t0, t0.Add(48*time.Hour), 8)
	end := log.Queries[len(log.Queries)-1].EndTime.Add(time.Hour)
	return m, log, end
}

// BenchmarkRollingReplayCursor100k is the monitor's real access
// pattern: the savings window grows by an hour at a time and each
// refresh replays [start, now). One op is a full rolling sweep over the
// 100k-record log using the incremental cursor.
func BenchmarkRollingReplayCursor100k(b *testing.B) {
	m, log, end := benchReplaySetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := NewReplayCursor(m, log, t0)
		var r ReplayResult
		for at := t0.Add(time.Hour); at.Before(end); at = at.Add(time.Hour) {
			r = cur.Advance(at)
		}
		sinkReplay = r
	}
}

// BenchmarkRollingReplayScratch100k is the same sweep recomputed from
// scratch each hour, the pre-cursor behavior.
func BenchmarkRollingReplayScratch100k(b *testing.B) {
	m, log, end := benchReplaySetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var r ReplayResult
		for at := t0.Add(time.Hour); at.Before(end); at = at.Add(time.Hour) {
			r = m.Replay(log, t0, at)
		}
		sinkReplay = r
	}
}

// BenchmarkReplayFull100k is a single full-window replay, the unit of
// work the scratch sweep repeats per step.
func BenchmarkReplayFull100k(b *testing.B) {
	m, log, end := benchReplaySetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkReplay = m.Replay(log, t0, end)
	}
}
