package costmodel

import (
	"time"

	"kwo/internal/cdw"
	"kwo/internal/telemetry"
)

// ReplayResult is the outcome of a without-Keebo what-if replay over a
// time range (§5.1).
type ReplayResult struct {
	From, To time.Time

	// Credits is the estimated billable cost had none of KWO's
	// optimizations been applied.
	Credits float64
	// ActiveSeconds is the estimated warehouse-active wall-clock
	// (single-cluster equivalent seconds before the cluster
	// multiplier).
	ActiveSeconds float64
	// Resumes is the number of distinct busy periods, each of which
	// would have incurred a resume (and the 60-second minimum).
	Resumes int
	// Queries is how many telemetry rows were replayed.
	Queries int
}

// busyPeriod is one contiguous interval in which the without-Keebo
// warehouse would have been running: queries executing back-to-back,
// bridged whenever the next arrival lands before the auto-suspend
// timer would have fired.
type busyPeriod struct {
	start time.Time
	end   time.Time // last completion; billing extends by auto-suspend
}

// Replay estimates the without-Keebo cost of the queries submitted in
// [from, to) on the warehouse whose telemetry is log, assuming the
// customer's original configuration orig had been in effect the whole
// time.
//
// It walks the recorded queries in submission order (gaps between
// arrivals are preserved, per §5.2: "the gaps should not change with
// warehouse optimization"), rescales each execution time from the size
// it actually ran at to the original size using the latency model,
// merges executions into busy periods bridged by the original
// auto-suspend interval, predicts the cluster count per mini-window
// using the cluster model, and prices the result at the original
// size's hourly rate.
func (m *Model) Replay(log *telemetry.WarehouseLog, from, to time.Time) ReplayResult {
	res := ReplayResult{From: from, To: to}
	recs := log.SubmittedBetween(from, to)
	res.Queries = len(recs)
	if len(recs) == 0 {
		return res
	}
	orig := m.Orig
	autoSuspend := orig.AutoSuspend
	if autoSuspend <= 0 {
		// A warehouse with auto-suspend disabled would have run
		// continuously; model it as a very long bridge.
		autoSuspend = to.Sub(from)
	}

	// Pass 1: busy periods at the original size.
	var periods []busyPeriod
	var cur *busyPeriod
	for _, r := range recs {
		exec := m.Latency.ScaleExec(r.TemplateHash, r.ExecDuration.Seconds(), r.Size, orig.Size)
		start := r.SubmitTime
		end := start.Add(time.Duration(exec * float64(time.Second)))
		if cur != nil && !start.After(cur.end.Add(autoSuspend)) {
			if end.After(cur.end) {
				cur.end = end
			}
			continue
		}
		if cur != nil {
			periods = append(periods, *cur)
		}
		cur = &busyPeriod{start: start, end: end}
	}
	if cur != nil {
		periods = append(periods, *cur)
	}
	res.Resumes = len(periods)

	// Pass 2: billed intervals — each busy period runs on for the
	// auto-suspend interval after its last completion (idle billing),
	// with the 60-second resume minimum applied.
	type billed struct{ start, end time.Time }
	var billedIvs []billed
	for _, p := range periods {
		end := p.end.Add(autoSuspend)
		if min := p.start.Add(cdw.MinBilledClusterTime); end.Before(min) {
			end = min
		}
		billedIvs = append(billedIvs, billed{p.start, end})
		res.ActiveSeconds += end.Sub(p.start).Seconds()
	}

	// Pass 3: price each mini-window: overlap of billed intervals with
	// the window × predicted cluster count × original hourly rate.
	rate := orig.Size.CreditsPerHour()
	horizon := billedIvs[len(billedIvs)-1].end
	for w := from.Truncate(MiniWindow); w.Before(horizon); w = w.Add(MiniWindow) {
		wEnd := w.Add(MiniWindow)
		var activeSecs float64
		for _, iv := range billedIvs {
			s, e := iv.start, iv.end
			if s.Before(w) {
				s = w
			}
			if e.After(wEnd) {
				e = wEnd
			}
			if e.After(s) {
				activeSecs += e.Sub(s).Seconds()
			}
		}
		if activeSecs == 0 {
			continue
		}
		ws := windowArrivalStats(recs, m.Latency, orig.Size, w, wEnd)
		clusters := 1.0
		if orig.MaxClusters > 1 {
			clusters = m.Clusters.Predict(ws.qph, ws.avgExecSecs, orig.MaxClusters)
			if clusters < float64(orig.MinClusters) {
				clusters = float64(orig.MinClusters)
			}
		} else if orig.MinClusters > 1 {
			clusters = float64(orig.MinClusters)
		}
		res.Credits += activeSecs / 3600 * rate * clusters
	}
	return res
}

// windowStats summarizes arrivals in a mini-window for cluster
// prediction.
type windowArrival struct {
	qph         float64
	avgExecSecs float64
}

func windowArrivalStats(recs []cdw.QueryRecord, lm *LatencyModel, origSize cdw.Size, from, to time.Time) windowArrival {
	var n int
	var sumExec float64
	for _, r := range recs {
		if r.SubmitTime.Before(from) || !r.SubmitTime.Before(to) {
			continue
		}
		n++
		sumExec += lm.ScaleExec(r.TemplateHash, r.ExecDuration.Seconds(), r.Size, origSize)
	}
	out := windowArrival{}
	hours := to.Sub(from).Hours()
	if hours > 0 {
		out.qph = float64(n) / hours
	}
	if n > 0 {
		out.avgExecSecs = sumExec / float64(n)
	}
	return out
}
