package costmodel

import (
	"time"

	"kwo/internal/cdw/backend"
	"kwo/internal/telemetry"
)

// ReplayResult is the outcome of a without-Keebo what-if replay over a
// time range (§5.1).
type ReplayResult struct {
	From, To time.Time

	// Credits is the estimated billable cost had none of KWO's
	// optimizations been applied.
	Credits float64
	// ActiveSeconds is the estimated warehouse-active wall-clock
	// (single-cluster equivalent seconds before the cluster
	// multiplier).
	ActiveSeconds float64
	// Resumes is the number of distinct busy periods, each of which
	// would have incurred a resume (and the 60-second minimum).
	Resumes int
	// Queries is how many telemetry rows were replayed.
	Queries int
}

// busyPeriod is one contiguous interval in which the without-Keebo
// warehouse would have been running: queries executing back-to-back,
// bridged whenever the next arrival lands before the auto-suspend
// timer would have fired.
type busyPeriod struct {
	start time.Time
	end   time.Time // last completion; billing extends by auto-suspend
}

// billedIv is the billable extent of one busy period: the period plus
// the auto-suspend idle tail, quantized under the backend's billing
// rule (per-start minimum floor, then quantum round-up). Because
// busy-period starts strictly increase and each period begins after the
// previous one's auto-suspend fired, billed starts AND billed ends are
// strictly increasing across periods — which is what lets replay and
// the cursor find the intervals overlapping a window with a rolling
// index instead of a scan.
type billedIv struct {
	start, end time.Time
}

func billedInterval(p busyPeriod, autoSuspend time.Duration, rule backend.BillingRule) billedIv {
	return billedIv{p.start, rule.BilledEnd(p.start, p.end.Add(autoSuspend))}
}

// overlapSecs returns the overlap of iv with [w, wEnd) in seconds.
func (iv billedIv) overlapSecs(w, wEnd time.Time) float64 {
	s, e := iv.start, iv.end
	if s.Before(w) {
		s = w
	}
	if e.After(wEnd) {
		e = wEnd
	}
	if e.After(s) {
		return e.Sub(s).Seconds()
	}
	return 0
}

// predictClusters applies the cluster model to one mini-window's
// arrival statistics under the original configuration's bounds.
func (m *Model) predictClusters(qph, avgExecSecs float64) float64 {
	orig := m.Orig
	clusters := 1.0
	if orig.MaxClusters > 1 {
		clusters = m.Clusters.Predict(qph, avgExecSecs, orig.MaxClusters)
		if clusters < float64(orig.MinClusters) {
			clusters = float64(orig.MinClusters)
		}
	} else if orig.MinClusters > 1 {
		clusters = float64(orig.MinClusters)
	}
	return clusters
}

// windowCredits prices one mini-window: active overlap × predicted
// clusters × the original size's hourly rate.
func (m *Model) windowCredits(activeSecs float64, w, wEnd time.Time, n int, sumExecSecs float64) float64 {
	var qph, avgExec float64
	if hours := wEnd.Sub(w).Hours(); hours > 0 {
		qph = float64(n) / hours
	}
	if n > 0 {
		avgExec = sumExecSecs / float64(n)
	}
	return activeSecs / 3600 * m.Orig.Size.CreditsPerHour() * m.predictClusters(qph, avgExec)
}

// Replay estimates the without-Keebo cost of the queries submitted in
// [from, to) on the warehouse whose telemetry is log, assuming the
// customer's original configuration orig had been in effect the whole
// time.
//
// It walks the recorded queries in submission order (gaps between
// arrivals are preserved, per §5.2: "the gaps should not change with
// warehouse optimization"), rescales each execution time from the size
// it actually ran at to the original size using the latency model,
// merges executions into busy periods bridged by the original
// auto-suspend interval, predicts the cluster count per mini-window
// using the cluster model, and prices the result at the original
// size's hourly rate.
//
// Cost is O(R log N + W): the record range is a binary-searched view
// of the submit index, and the pricing pass walks records and billed
// intervals with rolling pointers rather than rescanning them per
// window. For a rolling estimate over a growing range, use
// ReplayCursor, which reuses the busy-period state between calls.
func (m *Model) Replay(log *telemetry.WarehouseLog, from, to time.Time) ReplayResult {
	res := ReplayResult{From: from, To: to}
	recs := log.SubmittedBetween(from, to)
	res.Queries = len(recs)
	if len(recs) == 0 {
		return res
	}
	orig := m.Orig
	autoSuspend := orig.AutoSuspend
	if autoSuspend <= 0 {
		// A warehouse with auto-suspend disabled would have run
		// continuously; model it as a very long bridge.
		autoSuspend = to.Sub(from)
	}

	// Pass 1: busy periods at the original size.
	var periods []busyPeriod
	var cur *busyPeriod
	for _, r := range recs {
		exec := m.Latency.ScaleExec(r.TemplateHash, r.ExecDuration.Seconds(), r.Size, orig.Size)
		start := r.SubmitTime
		end := start.Add(time.Duration(exec * float64(time.Second)))
		if cur != nil && !start.After(cur.end.Add(autoSuspend)) {
			if end.After(cur.end) {
				cur.end = end
			}
			continue
		}
		if cur != nil {
			periods = append(periods, *cur)
		}
		cur = &busyPeriod{start: start, end: end}
	}
	if cur != nil {
		periods = append(periods, *cur)
	}
	res.Resumes = len(periods)

	// Pass 2: billed intervals — each busy period runs on for the
	// auto-suspend interval after its last completion (idle billing),
	// quantized under the backend's billing rule.
	billedIvs := make([]billedIv, 0, len(periods))
	for _, p := range periods {
		iv := billedInterval(p, autoSuspend, m.Billing)
		billedIvs = append(billedIvs, iv)
		res.ActiveSeconds += iv.end.Sub(iv.start).Seconds()
	}

	// Pass 3: price each mini-window: overlap of billed intervals with
	// the window × predicted cluster count × original hourly rate.
	// Billed starts and ends both increase, so the intervals touching a
	// window form a contiguous range; records are submit-sorted, so
	// each window's arrivals do too. Both pointers only move forward.
	horizon := billedIvs[len(billedIvs)-1].end
	ivLo, ri := 0, 0
	for w := from.Truncate(MiniWindow); w.Before(horizon); w = w.Add(MiniWindow) {
		wEnd := w.Add(MiniWindow)
		for ivLo < len(billedIvs) && !billedIvs[ivLo].end.After(w) {
			ivLo++
		}
		var activeSecs float64
		for i := ivLo; i < len(billedIvs); i++ {
			if !billedIvs[i].start.Before(wEnd) {
				break
			}
			activeSecs += billedIvs[i].overlapSecs(w, wEnd)
		}
		if activeSecs == 0 {
			continue
		}
		for ri < len(recs) && recs[ri].SubmitTime.Before(w) {
			ri++
		}
		var n int
		var sumExec float64
		for j := ri; j < len(recs) && recs[j].SubmitTime.Before(wEnd); j++ {
			n++
			sumExec += m.Latency.ScaleExec(recs[j].TemplateHash, recs[j].ExecDuration.Seconds(), recs[j].Size, orig.Size)
		}
		res.Credits += m.windowCredits(activeSecs, w, wEnd, n, sumExec)
	}
	return res
}
