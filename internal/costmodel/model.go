package costmodel

import (
	"math"
	"time"

	"kwo/internal/action"
	"kwo/internal/cdw"
	"kwo/internal/cdw/backend"
	"kwo/internal/ml"
	"kwo/internal/telemetry"
)

// Model is the trained warehouse cost model for one warehouse: the
// latency-scaling, query-gap and cluster-count estimators of §5.2 plus
// the customer's original (without-Keebo) configuration, against which
// all what-if replays are run.
type Model struct {
	Latency  *LatencyModel
	Gaps     *GapModel
	Clusters *ClusterModel
	// Orig is the configuration the customer had before KWO; the
	// without-Keebo counterfactual holds it fixed.
	Orig cdw.Config
	// Slots is the per-cluster concurrency of the underlying CDW.
	Slots int
	// Billing is the backend's billing quantization; the counterfactual
	// replay bills busy periods under the same rule the live meter
	// does. Train always sets it explicitly (Snowflake by default).
	Billing backend.BillingRule
}

// Train fits all parameter estimators from the telemetry in [from, to).
// orig is the customer's original configuration. The counterfactual
// bills under the default Snowflake rule; use TrainWithBilling when the
// warehouse lives on a different backend.
func Train(log *telemetry.WarehouseLog, orig cdw.Config, from, to time.Time, slots int) *Model {
	return TrainWithBilling(log, orig, from, to, slots, cdw.DefaultBackend().Billing())
}

// TrainWithBilling is Train with an explicit backend billing rule for
// the without-Keebo counterfactual.
func TrainWithBilling(log *telemetry.WarehouseLog, orig cdw.Config, from, to time.Time,
	slots int, billing backend.BillingRule) *Model {
	if slots <= 0 {
		slots = 8
	}
	return &Model{
		Latency:  FitLatency(log.TemplateObservations(from, to)),
		Gaps:     FitGaps(log.Gaps(from, to)),
		Clusters: FitClusters(log, orig, from, to, slots),
		Orig:     orig,
		Slots:    slots,
		Billing:  billing,
	}
}

// EstimateSavings returns the estimated credits KWO saved over
// [from, to): the replayed without-Keebo cost minus the actual billed
// credits. Actual cost comes straight from the billing ledger — per
// §5.1, "the with-Keebo cost need not be estimated as it can be
// directly obtained from the CDW's billing data."
func (m *Model) EstimateSavings(log *telemetry.WarehouseLog, actualCredits float64, from, to time.Time) float64 {
	return m.Replay(log, from, to).Credits - actualCredits
}

// ---------------------------------------------------------------------
// Action-impact prediction: "the cost model ... predicts the impact of
// each decision on cost and performance" (§4.3). The smart model
// consults these estimates before acting; the estimates use the same
// learned parameters as the replay.

// Impact is the predicted effect of applying an action now.
type Impact struct {
	// CreditsPerHour is the predicted billing rate after the action.
	CreditsPerHour float64
	// DeltaCreditsPerHour is CreditsPerHour(after) − (before);
	// negative means the action saves money.
	DeltaCreditsPerHour float64
	// LatencyFactor is the predicted multiplicative change in average
	// query latency (1 = unchanged, >1 = slower).
	LatencyFactor float64
	// QueueRisk estimates the probability mass of new queueing the
	// action introduces, in [0, 1].
	QueueRisk float64
}

// EstimateCPH predicts the steady-state credits/hour of a configuration
// under the workload summarized by ws. It combines an M/G/∞ busy-
// fraction estimate with the gap model's idle-billing estimate and the
// cluster model's parallelism prediction.
func (m *Model) EstimateCPH(ws telemetry.WindowStats, cfg cdw.Config) float64 {
	execSecs := m.Latency.ScaleExec(0, ws.AvgExec.Seconds(), averageSize(ws), cfg.Size)
	rho := ws.QPH / 3600 * execSecs
	busyFrac := 1 - math.Exp(-rho)
	idlePerGap := m.Gaps.IdleBilledPerGap(cfg.AutoSuspend)
	idleFrac := ml.Clamp(ws.QPH*idlePerGap/3600, 0, 1-busyFrac)
	clusters := 1.0
	if cfg.MaxClusters > 1 {
		clusters = m.Clusters.Predict(ws.QPH, execSecs, cfg.MaxClusters)
		// The Economy policy keeps clusters fully loaded before scaling
		// out, trimming the average cluster count at some queueing risk.
		if cfg.Policy == cdw.ScaleEconomy && clusters > 1 {
			clusters = 1 + (clusters-1)*economyClusterFactor
		}
	}
	if clusters < float64(cfg.MinClusters) {
		clusters = float64(cfg.MinClusters)
	}
	return cfg.Size.CreditsPerHour() * clusters * (busyFrac + idleFrac)
}

// economyClusterFactor is the assumed reduction of the average extra
// cluster count under the Economy scale-out policy.
const economyClusterFactor = 0.8

// averageSize rounds the window's mean executed size to a Size.
func averageSize(ws telemetry.WindowStats) cdw.Size {
	s := cdw.Size(int(math.Round(ws.AvgSize)))
	return s.Clamp(cdw.MinSize, cdw.MaxSize)
}

// LatencyFactorVsBaseline predicts the multiplicative latency change of
// running under cfg relative to running under base — the cumulative
// degradation the customer would perceive against their original
// configuration. It combines the learned size-scaling slope with the
// extra cold-cache reads a shorter auto-suspend interval induces.
func (m *Model) LatencyFactorVsBaseline(cfg, base cdw.Config) float64 {
	f := math.Exp2(m.Latency.LogStep() * float64(cfg.Size-base.Size))
	extraCold := m.Gaps.SuspendFraction(cfg.AutoSuspend) - m.Gaps.SuspendFraction(base.AutoSuspend)
	if extraCold > 0 {
		f *= 1 + extraCold*(m.Latency.ColdRatio()-1)
	}
	if f < 0.01 {
		f = 0.01
	}
	return f
}

// PredictImpact estimates the cost and performance impact of act
// applied to cfg under workload ws.
func (m *Model) PredictImpact(ws telemetry.WindowStats, cfg cdw.Config, act action.Action) Impact {
	before := m.EstimateCPH(ws, cfg)
	next := act.Target(cfg)
	after := m.EstimateCPH(ws, next)
	imp := Impact{
		CreditsPerHour:      after,
		DeltaCreditsPerHour: after - before,
		LatencyFactor:       1,
	}
	switch act.Kind {
	case action.SizeUp, action.SizeDown:
		// Latency scales with the learned per-step factor; only the
		// execution portion of latency changes.
		steps := float64(next.Size - cfg.Size)
		imp.LatencyFactor = math.Exp2(m.Latency.LogStep() * steps)
	case action.SuspendShorter, action.SuspendLonger:
		// A shorter interval suspends more often → more cold resumes.
		oldFrac := m.Gaps.SuspendFraction(cfg.AutoSuspend)
		newFrac := m.Gaps.SuspendFraction(next.AutoSuspend)
		extraCold := newFrac - oldFrac
		imp.LatencyFactor = 1 + extraCold*(m.Latency.ColdRatio()-1)
		if imp.LatencyFactor < 0.5 {
			imp.LatencyFactor = 0.5
		}
	case action.ClustersUp, action.ClustersDown:
		// Queue risk: offered load in clusters vs the new bound.
		execSecs := ws.AvgExec.Seconds()
		loadClusters := ws.QPH / 3600 * execSecs / float64(m.Slots)
		if float64(next.MaxClusters) < loadClusters {
			imp.QueueRisk = ml.Clamp((loadClusters-float64(next.MaxClusters))/loadClusters, 0, 1)
			imp.LatencyFactor = 1 + imp.QueueRisk
		}
	case action.PolicyEconomy:
		// Economy keeps clusters loaded: cheaper, but queries may wait
		// for slots when the load spans multiple clusters.
		if cfg.Policy != cdw.ScaleEconomy && cfg.MaxClusters > 1 {
			load := ws.QPH / 3600 * ws.AvgExec.Seconds() / float64(m.Slots)
			if load > 1 {
				imp.QueueRisk = ml.Clamp((load-1)/float64(cfg.MaxClusters), 0, 0.5)
			}
			imp.LatencyFactor = 1 + imp.QueueRisk/2
		}
	case action.PolicyStandard:
		// Standard prevents queueing by scaling out aggressively.
		if cfg.Policy == cdw.ScaleEconomy && cfg.MaxClusters > 1 {
			imp.LatencyFactor = 0.95
		}
	}
	return imp
}
