package costmodel

import (
	"sort"
	"time"

	"kwo/internal/ml"
)

// GapModel captures the distribution of idle gaps between query
// submissions on a warehouse (§5.2, "impact on query arrival times").
// The replay uses it to reason about idle-time billing, and the
// action-impact estimator uses it to predict what an auto-suspend
// change saves or costs.
type GapModel struct {
	gaps []float64 // sorted, seconds
	mean float64
	ewma ml.EWMA
}

// FitGaps builds a model from observed inter-arrival gaps in seconds.
func FitGaps(gaps []float64) *GapModel {
	g := &GapModel{ewma: ml.EWMA{Alpha: 0.1}}
	for _, x := range gaps {
		if x < 0 {
			continue
		}
		g.gaps = append(g.gaps, x)
		g.ewma.Add(x)
	}
	sort.Float64s(g.gaps)
	g.mean = ml.Mean(g.gaps)
	return g
}

// N returns the number of observed gaps.
func (g *GapModel) N() int { return len(g.gaps) }

// Mean returns the mean gap in seconds.
func (g *GapModel) Mean() float64 { return g.mean }

// Quantile returns the q-quantile gap in seconds.
func (g *GapModel) Quantile(q float64) float64 {
	return telemetryPercentile(g.gaps, q)
}

// IdleBilledPerGap returns the expected billed idle seconds per gap for
// a given auto-suspend interval: each gap bills min(gap, interval) of
// idle warehouse time before suspension kicks in. This encodes the
// paper's observation that "query gaps cannot be longer than the
// auto-suspend interval since the warehouse would have shut down".
func (g *GapModel) IdleBilledPerGap(autoSuspend time.Duration) float64 {
	if len(g.gaps) == 0 {
		return 0
	}
	limit := autoSuspend.Seconds()
	var total float64
	for _, gap := range g.gaps {
		if gap < limit {
			total += gap
		} else {
			total += limit
		}
	}
	return total / float64(len(g.gaps))
}

// SuspendFraction returns the fraction of gaps longer than the
// interval — i.e. how often the warehouse would suspend (and later
// resume cold) under that auto-suspend setting.
func (g *GapModel) SuspendFraction(autoSuspend time.Duration) float64 {
	if len(g.gaps) == 0 {
		return 0
	}
	limit := autoSuspend.Seconds()
	i := sort.SearchFloat64s(g.gaps, limit)
	return float64(len(g.gaps)-i) / float64(len(g.gaps))
}

// telemetryPercentile is a local nearest-rank quantile on a sorted
// slice.
func telemetryPercentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
