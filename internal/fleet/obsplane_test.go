package fleet

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"kwo/internal/obs"
)

// planePayloads runs a fleet to completion and returns the JSON
// encoding of all three /fleet/* payloads, concatenated — the byte
// surface the determinism property is asserted over.
func planePayloads(t *testing.T, cfg Config) []byte {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	if _, err := f.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, v := range []any{f.KPIs(), f.TimeSeries(), f.SLOStatus()} {
		if err := enc.Encode(v); err != nil {
			t.Fatalf("encode payload: %v", err)
		}
	}
	return buf.Bytes()
}

// TestObsPlaneDeterminismAcrossWorkers extends the fleet's core
// determinism property to the observability plane: the recorded time
// series, live KPIs, and SLO verdicts must be byte-identical JSON for
// any worker pool size. Sampling happens sequentially in tenant-index
// order on the epoch barrier, so worker count can only change goroutine
// interleavings, never a recorded point or a burn value.
func TestObsPlaneDeterminismAcrossWorkers(t *testing.T) {
	cfg := testConfig(8, 1)
	base := planePayloads(t, cfg)
	sweep := []int{4, 16}
	if *fleetWorkers > 0 {
		sweep = []int{*fleetWorkers}
	}
	for _, w := range sweep {
		c := cfg
		c.Workers = w
		got := planePayloads(t, c)
		if !bytes.Equal(got, base) {
			i := 0
			for i < len(got) && i < len(base) && got[i] == base[i] {
				i++
			}
			lo, hi := i-40, i+40
			if lo < 0 {
				lo = 0
			}
			if hi > len(base) {
				hi = len(base)
			}
			t.Fatalf("workers=%d plane payloads diverge from workers=1 at byte %d: ...%s...",
				w, i, base[lo:hi])
		}
	}
}

// TestReplaySLOMatchesFleet extends the replay contract to the SLO
// layer: a tenant replayed standalone under its derived seed must carry
// the exact verdicts (value, target, burn, pass) it earned in-fleet —
// the portal's drill-down from a fleet SLO breach to a reproducible
// single run depends on this.
func TestReplaySLOMatchesFleet(t *testing.T) {
	cfg := testConfig(8, 4)
	rep := runFleet(t, cfg)
	for _, idx := range []int{0, 5} {
		in := rep.PerTenant[idx]
		got, err := ReplayTenant(TenantSeed(cfg.Seed, idx), cfg)
		if err != nil {
			t.Fatalf("ReplayTenant(%d): %v", idx, err)
		}
		if got.SLOPass != in.SLOPass || got.SLOWorstBurn != in.SLOWorstBurn {
			t.Errorf("tenant %d replay SLO pass=%t burn=%g != in-fleet pass=%t burn=%g",
				idx, got.SLOPass, got.SLOWorstBurn, in.SLOPass, in.SLOWorstBurn)
		}
		inJSON, _ := json.Marshal(in.SLO)
		gotJSON, _ := json.Marshal(got.SLO)
		if !bytes.Equal(inJSON, gotJSON) {
			t.Errorf("tenant %d replay verdicts diverged:\n in-fleet: %s\n replay:   %s",
				idx, inJSON, gotJSON)
		}
	}
}

// TestHandlerFleetEndpoints checks the three /fleet/* endpoints decode
// back into their DTOs with the fields the portal renders.
func TestHandlerFleetEndpoints(t *testing.T) {
	cfg := testConfig(3, 2)
	cfg.Epochs = 6
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	h := Handler(f)

	var kpis LiveKPIs
	code, body := get(t, h, "/fleet/kpis")
	if code != 200 {
		t.Fatalf("/fleet/kpis status %d", code)
	}
	if err := json.Unmarshal([]byte(body), &kpis); err != nil {
		t.Fatalf("/fleet/kpis decode: %v", err)
	}
	if kpis.Tenants != 3 || !kpis.Done || kpis.Epoch != cfg.Epochs {
		t.Errorf("kpis = tenants %d done %t epoch %d, want 3 true %d",
			kpis.Tenants, kpis.Done, kpis.Epoch, cfg.Epochs)
	}
	if len(kpis.PerTenant) != 3 {
		t.Fatalf("kpis rows = %d, want 3", len(kpis.PerTenant))
	}
	for _, row := range kpis.PerTenant {
		if !strings.Contains(row.Replay, "-tenant ") || !strings.Contains(row.Replay, "-tenant-seed ") {
			t.Errorf("tenant %s replay command incomplete: %q", row.Tenant, row.Replay)
		}
		if len(row.Last) != len(obs.FleetSpecs()) {
			t.Errorf("tenant %s last values = %d, want %d", row.Tenant, len(row.Last), len(obs.FleetSpecs()))
		}
	}

	var ts FleetTimeSeries
	code, body = get(t, h, "/fleet/timeseries")
	if code != 200 {
		t.Fatalf("/fleet/timeseries status %d", code)
	}
	if err := json.Unmarshal([]byte(body), &ts); err != nil {
		t.Fatalf("/fleet/timeseries decode: %v", err)
	}
	if len(ts.Fleet) != len(obs.FleetSpecs()) {
		t.Errorf("fleet series = %d, want %d", len(ts.Fleet), len(obs.FleetSpecs()))
	}
	for _, s := range ts.Fleet {
		if len(s.Points) == 0 || len(s.Points) > ts.Budget {
			t.Errorf("fleet series %s has %d points (budget %d)", s.Name, len(s.Points), ts.Budget)
		}
	}
	if len(ts.PerTenant) != 3 {
		t.Errorf("tenant series sets = %d, want 3", len(ts.PerTenant))
	}

	var slo SLOStatus
	code, body = get(t, h, "/fleet/slo")
	if code != 200 {
		t.Fatalf("/fleet/slo status %d", code)
	}
	if err := json.Unmarshal([]byte(body), &slo); err != nil {
		t.Fatalf("/fleet/slo decode: %v", err)
	}
	if slo.Passing+slo.Failing != 3 {
		t.Errorf("slo passing %d + failing %d != 3 tenants", slo.Passing, slo.Failing)
	}
	if len(slo.Objectives) == 0 {
		t.Error("slo payload carries no objectives")
	}
	for _, row := range slo.PerTenant {
		if len(row.Verdicts) != len(slo.Objectives) {
			t.Errorf("tenant %s has %d verdicts for %d objectives", row.Tenant, len(row.Verdicts), len(slo.Objectives))
		}
	}
}

// TestObsPlaneScrapeWhileAdvancing hammers the ops endpoints from a
// second goroutine while the fleet advances epoch by epoch — under
// -race this proves the plane lock actually covers every recorder and
// series access the endpoints make.
func TestObsPlaneScrapeWhileAdvancing(t *testing.T) {
	cfg := testConfig(4, 2)
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h := Handler(f)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, path := range []string{"/fleet/kpis", "/fleet/timeseries", "/fleet/slo", "/metrics"} {
				rr := httptest.NewRecorder()
				h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
				if rr.Code != 200 {
					t.Errorf("%s status %d while advancing", path, rr.Code)
				}
			}
		}
	}()
	for e := 0; e < cfg.Epochs; e++ {
		if err := f.RunEpoch(); err != nil {
			t.Errorf("epoch %d: %v", e, err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if _, err := f.Run(); err != nil {
		t.Fatalf("Run after manual epochs: %v", err)
	}
	if k := f.KPIs(); !k.Done || k.Epoch != cfg.Epochs {
		t.Errorf("final kpis done=%t epoch=%d, want true %d", k.Done, k.Epoch, cfg.Epochs)
	}
}

// TestMergedExpositionPerTenantCatalog pins the contract behind
// `kwo-obscheck -tenants`: straight after provisioning — before a
// single epoch runs — the merged exposition carries at least one sample
// of every catalog family for every tenant label, because each tenant's
// hub is primed at New. Absence is always a wiring regression, never
// "nothing happened yet".
func TestMergedExpositionPerTenantCatalog(t *testing.T) {
	cfg := testConfig(3, 2)
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b strings.Builder
	if err := obs.WriteMergedPrometheus(&b, TenantLabel, f.Registries()); err != nil {
		t.Fatalf("WriteMergedPrometheus: %v", err)
	}
	parsed, err := obs.ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	for _, id := range TenantIDs(cfg.Tenants) {
		for _, spec := range obs.Catalog() {
			name := spec.Name
			if spec.Type == obs.TypeHistogram {
				name += "_count"
			}
			if !parsed.HasSeriesWithLabel(name, TenantLabel, id) {
				t.Errorf("merged exposition missing sample of %s for tenant %s", spec.Name, id)
			}
		}
	}
}
