package fleet

import (
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"kwo/internal/obs"
)

// benchConfig shapes a fleet for machinery benchmarks: one-minute
// epochs keep per-epoch simulation work small, so the numbers weight
// the fan-out/provisioning overhead the tentpole targets rather than
// optimizer math.
func benchConfig(tenants, epochs int) Config {
	return Config{
		Tenants: tenants,
		Seed:    7,
		// Pinned (not per-CPU): on a single-core runner workers=0 would
		// collapse both fan-out paths to inline execution and the
		// pool-vs-respawn comparison would measure nothing.
		Workers:     8,
		Epochs:      epochs,
		EpochLen:    time.Minute,
		AttachEpoch: 1,
		Opts:        lightOpts(),
	}
}

// benchFleetEpoch measures steady-state RunEpoch cost at a given fleet
// width, after the fleet is provisioned and the optimizers attached.
func benchFleetEpoch(b *testing.B, tenants int, respawn bool) {
	cfg := benchConfig(tenants, b.N+2)
	cfg.respawnPool = respawn
	f, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 2; i++ { // warm through attach before timing
		if err := f.RunEpoch(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.RunEpoch(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFleetEpoch16(b *testing.B)   { benchFleetEpoch(b, 16, false) }
func BenchmarkFleetEpoch256(b *testing.B)  { benchFleetEpoch(b, 256, false) }
func BenchmarkFleetEpoch1024(b *testing.B) { benchFleetEpoch(b, 1024, false) }

// *Naive* companions run the identical fleet through the
// pre-optimization fan-out: a fresh goroutine spawn per epoch instead
// of the persistent pool. The delta is what the pool buys.
func BenchmarkFleetEpochNaive16(b *testing.B)   { benchFleetEpoch(b, 16, true) }
func BenchmarkFleetEpochNaive256(b *testing.B)  { benchFleetEpoch(b, 256, true) }
func BenchmarkFleetEpochNaive1024(b *testing.B) { benchFleetEpoch(b, 1024, true) }

// benchProvision measures New — tenant provisioning — for a 64-tenant
// fleet over a month of hourly epochs. Lazy provisioning defers the
// arrival stream, so this is engine/profile setup; the Naive companion
// pays whole-horizon generation up front.
func benchProvision(b *testing.B, eager bool) {
	cfg := Config{
		Tenants:  64,
		Seed:     7,
		Epochs:   720, // a month of hours
		EpochLen: time.Hour,
		Opts:     lightOpts(),
	}
	cfg.eagerProvision = eager
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
}

func BenchmarkFleetProvision(b *testing.B)      { benchProvision(b, false) }
func BenchmarkFleetProvisionNaive(b *testing.B) { benchProvision(b, true) }

// scrapeRegs provisions a 1024-tenant fleet once (shared across the
// scrape benchmarks — provisioning dwarfs the scrape under test) and
// runs two epochs so every registry carries live series.
var scrapeOnce sync.Once
var scrapeRegs []obs.LabeledRegistry

func scrapeFleetRegs(b *testing.B) []obs.LabeledRegistry {
	scrapeOnce.Do(func() {
		f, err := New(benchConfig(1024, 2))
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		if _, err := f.Run(); err != nil {
			b.Fatal(err)
		}
		scrapeRegs = f.Registries()
	})
	return scrapeRegs
}

// BenchmarkMergedScrape1024 measures one merged /metrics render across
// 1024 live tenant registries through the streaming writer; the Naive
// companion is the pre-streaming renderer that materializes the whole
// exposition. allocs/op is the headline: streaming stays O(families),
// naive scales with total series.
func BenchmarkMergedScrape1024(b *testing.B) {
	regs := scrapeFleetRegs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := obs.WriteMergedPrometheus(io.Discard, TenantLabel, regs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMergedScrape1024Naive(b *testing.B) {
	regs := scrapeFleetRegs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := obs.WriteMergedPrometheusNaive(io.Discard, TenantLabel, regs); err != nil {
			b.Fatal(err)
		}
	}
}

// TestLazyProvisioningMemoryFlat is the tentpole's memory claim as a
// regression test: provisioning a fleet over a long horizon must NOT
// materialize the horizon's arrivals. Heap growth from a lazy New is
// required to be well under the eager path's, which holds a month of
// arrival structs per tenant.
func TestLazyProvisioningMemoryFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews heap accounting")
	}
	cfg := Config{
		Tenants:  16,
		Seed:     7,
		Epochs:   720,
		EpochLen: time.Hour,
		Opts:     lightOpts(),
	}
	heapAfterNew := func(eager bool) uint64 {
		c := cfg
		c.eagerProvision = eager
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		f, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		runtime.GC()
		runtime.ReadMemStats(&after)
		f.Close()
		runtime.KeepAlive(f)
		if after.HeapAlloc < before.HeapAlloc {
			return 0
		}
		return after.HeapAlloc - before.HeapAlloc
	}
	lazy := heapAfterNew(false)
	eager := heapAfterNew(true)
	if lazy*2 > eager {
		t.Errorf("lazy provisioning holds %d bytes, eager %d — lazy should be well under half (arrival horizon not deferred?)",
			lazy, eager)
	}
	t.Logf("heap after New: lazy=%d eager=%d", lazy, eager)
}
