package fleet

import (
	"flag"
	"strings"
	"testing"
	"time"

	"kwo/internal/core"
	"kwo/internal/obs"
)

// -fleet-workers narrows the determinism property to one worker count
// (compared against the sequential baseline) so CI can matrix worker
// counts across jobs; 0 keeps the in-test sweep over 1, 4, and 16.
var fleetWorkers = flag.Int("fleet-workers", 0, "single worker count to verify against the workers=1 baseline (0 = sweep 1,4,16)")

// lightOpts keeps engine behaviour (training, deciding, acting,
// billing) while cutting offline gradient steps, so a 64-tenant fleet
// fits a race-enabled test budget.
func lightOpts() core.Options {
	o := core.DefaultOptions()
	o.PretrainSteps = 40
	return o
}

func testConfig(tenants, workers int) Config {
	return Config{
		Tenants:   tenants,
		Seed:      7,
		Workers:   workers,
		Epochs:    12,
		EpochLen:  time.Hour,
		FaultRate: 0.25,
		Opts:      lightOpts(),
	}
}

func runFleet(t *testing.T, cfg Config) *Report {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	rep, err := f.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

// TestFleetDeterminismAcrossWorkers is the fleet's core property: a
// 64-tenant fleet produces a byte-identical rollup — down to each
// tenant's trace-event and telemetry-snapshot fingerprints — whatever
// the worker pool size. Run with -race, worker count only changes
// goroutine interleavings, never results.
func TestFleetDeterminismAcrossWorkers(t *testing.T) {
	tenants := 64
	if testing.Short() {
		tenants = 16
	}
	base := runFleet(t, testConfig(tenants, 1))
	baseFP := base.Fingerprint()
	sweep := []int{4, 16}
	if *fleetWorkers > 0 {
		sweep = []int{*fleetWorkers}
	}
	for _, w := range sweep {
		rep := runFleet(t, testConfig(tenants, w))
		if fp := rep.Fingerprint(); fp != baseFP {
			diffTenants(t, base, rep)
			t.Fatalf("workers=%d fingerprint %s != workers=1 %s", w, fp, baseFP)
		}
	}
}

// diffTenants pinpoints which tenant diverged when fingerprints differ.
func diffTenants(t *testing.T, a, b *Report) {
	t.Helper()
	for i := range a.PerTenant {
		if i >= len(b.PerTenant) {
			break
		}
		x, y := a.PerTenant[i], b.PerTenant[i]
		if x.EventsFingerprint != y.EventsFingerprint || x.SnapshotFingerprint != y.SnapshotFingerprint {
			t.Errorf("tenant %s diverged: events %s/%s snapshot %s/%s",
				x.Tenant, x.EventsFingerprint, y.EventsFingerprint,
				x.SnapshotFingerprint, y.SnapshotFingerprint)
		}
	}
}

// TestDegradedTenantIsolation forces one tenant behind a control plane
// broken badly enough for safe mode, and checks (a) the fleet still
// completes every epoch — the barrier is a time barrier, not a health
// barrier — and (b) every OTHER tenant's behaviour is byte-identical
// to a run without the sick tenant: degradation cannot leak.
func TestDegradedTenantIsolation(t *testing.T) {
	const sick = 3
	cfg := testConfig(12, 4)
	cfg.FaultRate = 0 // isolate the forced plan as the only difference
	clean := runFleet(t, cfg)
	cfg.FaultTenants = []int{sick}
	faulty := runFleet(t, cfg)

	if got := faulty.PerTenant[sick].Faults; got.AlterFailures == 0 {
		t.Errorf("forced-fault tenant saw no alter failures: %+v", got)
	}
	if k := faulty.PerTenant[sick]; !k.Degraded && k.DegradedTicks == 0 {
		t.Errorf("forced-fault tenant never degraded: %+v", k)
	}
	if faulty.Epochs != cfg.Epochs {
		t.Errorf("fleet stopped early: %d epochs of %d", faulty.Epochs, cfg.Epochs)
	}
	for i := range clean.PerTenant {
		if i == sick {
			continue
		}
		c, f := clean.PerTenant[i], faulty.PerTenant[i]
		if c.EventsFingerprint != f.EventsFingerprint {
			t.Errorf("tenant %s events perturbed by tenant %d's faults", c.Tenant, sick)
		}
		if c.SnapshotFingerprint != f.SnapshotFingerprint {
			t.Errorf("tenant %s snapshot perturbed by tenant %d's faults", c.Tenant, sick)
		}
	}
}

// TestReplayTenantMatchesFleet checks the replay contract: running one
// tenant standalone under its derived seed reproduces its in-fleet
// behaviour bit for bit.
func TestReplayTenantMatchesFleet(t *testing.T) {
	cfg := testConfig(8, 4)
	rep := runFleet(t, cfg)
	for _, idx := range []int{0, 3, 7} {
		in := rep.PerTenant[idx]
		got, err := ReplayTenant(TenantSeed(cfg.Seed, idx), cfg)
		if err != nil {
			t.Fatalf("ReplayTenant(%d): %v", idx, err)
		}
		if got.EventsFingerprint != in.EventsFingerprint {
			t.Errorf("tenant %d replay events %s != in-fleet %s", idx, got.EventsFingerprint, in.EventsFingerprint)
		}
		if got.SnapshotFingerprint != in.SnapshotFingerprint {
			t.Errorf("tenant %d replay snapshot %s != in-fleet %s", idx, got.SnapshotFingerprint, in.SnapshotFingerprint)
		}
		if got.Queries != in.Queries || got.ActualCredits != in.ActualCredits {
			t.Errorf("tenant %d replay KPIs diverged: %+v vs %+v", idx, got, in)
		}
	}
}

// TestEpochBarrier drives epochs one at a time and checks the clock
// lands exactly on each boundary, and that overrunning errors.
func TestEpochBarrier(t *testing.T) {
	cfg := testConfig(3, 2)
	cfg.Epochs = 4
	cfg.AttachEpoch = 1
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := f.Now()
	for e := 0; e < cfg.Epochs; e++ {
		if err := f.RunEpoch(); err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
		want := start.Add(time.Duration(e+1) * cfg.EpochLen)
		if !f.Now().Equal(want) {
			t.Fatalf("after epoch %d fleet at %v, want %v", e, f.Now(), want)
		}
		if f.Epoch() != e+1 {
			t.Fatalf("Epoch() = %d, want %d", f.Epoch(), e+1)
		}
	}
	if err := f.RunEpoch(); err == nil {
		t.Fatal("RunEpoch past the end should error")
	}
	if _, err := f.Run(); err != nil {
		t.Fatalf("Run after manual epochs: %v", err)
	}
}

// TestMergedMetricsParse checks the merged exposition obeys the strict
// parser and carries every tenant behind the tenant label.
func TestMergedMetricsParse(t *testing.T) {
	cfg := testConfig(4, 2)
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := obs.WriteMergedPrometheus(&b, TenantLabel, f.Registries()); err != nil {
		t.Fatalf("WriteMergedPrometheus: %v", err)
	}
	parsed, err := obs.ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("merged exposition does not parse: %v", err)
	}
	for _, spec := range obs.Catalog() {
		if !parsed.Has(spec.Name) {
			t.Errorf("merged exposition missing catalog family %s", spec.Name)
		}
	}
	for _, id := range []string{"t00", "t01", "t02", "t03"} {
		if !strings.Contains(b.String(), TenantLabel+`="`+id+`"`) {
			t.Errorf("merged exposition missing tenant %s", id)
		}
	}
}

func TestTenantSeedStable(t *testing.T) {
	// The derivation is a documented replay contract — a change here
	// silently breaks `kwo-fleet -tenant-seed` invocations users saved.
	if got := TenantSeed(0, 0); got != 5961753611672827773 {
		t.Errorf("TenantSeed(0,0) = %d; derivation changed", got)
	}
	seen := map[int64]bool{}
	for i := 0; i < 256; i++ {
		s := TenantSeed(7, i)
		if seen[s] {
			t.Fatalf("duplicate tenant seed at index %d", i)
		}
		seen[s] = true
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no tenants", func(c *Config) { c.Tenants = 0 }},
		{"no epochs", func(c *Config) { c.Epochs = 0 }},
		{"negative epoch len", func(c *Config) { c.EpochLen = -time.Hour }},
		{"attach past end", func(c *Config) { c.AttachEpoch = 12 }},
		{"fault rate > 1", func(c *Config) { c.FaultRate = 1.5 }},
		{"fault tenant out of range", func(c *Config) { c.FaultTenants = []int{99} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(4, 1)
			tc.mut(&cfg)
			if _, err := New(cfg); err == nil {
				t.Errorf("New accepted invalid config (%s)", tc.name)
			}
		})
	}
}

func TestTenantIDs(t *testing.T) {
	ids := tenantIDs(64)
	if ids[0] != "t00" || ids[63] != "t63" {
		t.Errorf("tenantIDs(64) = %v … %v", ids[0], ids[63])
	}
	// Width boundaries: n=100 still fits two digits (last id t99);
	// n=101 is the first fleet needing three, n=1001 the first needing
	// four. An off-by-one here would shuffle every tenant label — and
	// with it the merged-metrics series names — between fleet sizes.
	for _, tc := range []struct {
		n           int
		first, last string
	}{
		{99, "t00", "t98"},
		{100, "t00", "t99"},
		{101, "t000", "t100"},
		{1000, "t000", "t999"},
		{1001, "t0000", "t1000"},
	} {
		ids := tenantIDs(tc.n)
		if ids[0] != tc.first || ids[tc.n-1] != tc.last {
			t.Errorf("tenantIDs(%d) = %v … %v, want %v … %v",
				tc.n, ids[0], ids[tc.n-1], tc.first, tc.last)
		}
		if len(ids[0]) != len(ids[tc.n-1]) {
			t.Errorf("tenantIDs(%d) width not uniform: %v vs %v", tc.n, ids[0], ids[tc.n-1])
		}
	}
}

// TestEpochBarrierAtScale is the 1024-tenant smoke: a fleet two orders
// of magnitude wider than the determinism suite still lands every
// tenant exactly on each epoch boundary, and workers=1 vs workers=16
// produce identical rollup fingerprints. The horizon is kept tiny (two
// 15-minute epochs, attach at 1) so the test is about fan-out scale,
// not simulation depth.
func TestEpochBarrierAtScale(t *testing.T) {
	tenants := 1024
	if testing.Short() || raceEnabled {
		// Provisioning 1024 engines under the race detector blows the
		// test budget; 128 still exercises multi-round pool fan-out.
		tenants = 128
	}
	cfg := Config{
		Tenants:     tenants,
		Seed:        11,
		Epochs:      2,
		EpochLen:    15 * time.Minute,
		AttachEpoch: 1,
		Opts:        lightOpts(),
	}
	var baseFP string
	for _, w := range []int{1, 16} {
		cfg.Workers = w
		f, err := New(cfg)
		if err != nil {
			t.Fatalf("workers=%d New: %v", w, err)
		}
		rep, err := f.Run()
		f.Close()
		if err != nil {
			t.Fatalf("workers=%d Run: %v", w, err)
		}
		if len(rep.PerTenant) != tenants {
			t.Fatalf("workers=%d rollup has %d tenants, want %d", w, len(rep.PerTenant), tenants)
		}
		if w == 1 {
			baseFP = rep.Fingerprint()
		} else if fp := rep.Fingerprint(); fp != baseFP {
			t.Fatalf("workers=%d fingerprint %s != workers=1 %s at %d tenants", w, fp, baseFP, tenants)
		}
	}
}

// TestFleetUsableAfterClose: Close releases the pool but the fleet must
// keep working inline — the ops handler may still drive scrapes and
// late report calls.
func TestFleetUsableAfterClose(t *testing.T) {
	cfg := testConfig(4, 4)
	cfg.Epochs = 3
	cfg.AttachEpoch = 1
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	f.Close() // idempotent
	rep, err := f.Run()
	if err != nil {
		t.Fatalf("Run after Close: %v", err)
	}
	open, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer open.Close()
	rep2, err := open.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fingerprint() != rep2.Fingerprint() {
		t.Errorf("closed-pool (inline) run fingerprint %s != pooled run %s",
			rep.Fingerprint(), rep2.Fingerprint())
	}
}
