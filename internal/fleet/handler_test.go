package fleet

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kwo/internal/obs"
)

func testHandler(t *testing.T) http.Handler {
	t.Helper()
	cfg := testConfig(3, 2)
	cfg.Epochs = 6
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	return Handler(f)
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerMetricsMerged(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	parsed, err := obs.ParseText(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics not strict exposition format: %v", err)
	}
	for _, spec := range obs.Catalog() {
		if !parsed.Has(spec.Name) {
			t.Errorf("/metrics missing catalog family %s", spec.Name)
		}
	}
	for _, id := range []string{"t00", "t01", "t02"} {
		if !strings.Contains(body, TenantLabel+`="`+id+`"`) {
			t.Errorf("/metrics missing tenant %s", id)
		}
	}
}

func TestHandlerEvents(t *testing.T) {
	h := testHandler(t)
	code, body := get(t, h, "/events?tenant=t00&n=5")
	if code != http.StatusOK {
		t.Fatalf("/events status %d: %s", code, body)
	}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line != "" && !strings.HasPrefix(line, "{") {
			t.Errorf("/events line is not JSON: %s", line)
		}
	}
	if code, _ := get(t, h, "/events?tenant=nope"); code != http.StatusNotFound {
		t.Errorf("unknown tenant should 404, got %d", code)
	}
	if code, _ := get(t, h, "/events?n=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad n should 400, got %d", code)
	}
}

func TestHandlerIndexAndHealth(t *testing.T) {
	h := testHandler(t)
	if code, body := get(t, h, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, h, "/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index = %d %q", code, body)
	}
	if code, _ := get(t, h, "/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path should 404, got %d", code)
	}
}
