// Package fleet is the multi-tenant runner: it provisions N fully
// independent tenants — each its own virtual clock, simulated CDW
// account, telemetry store, observability hub, and optimizer engine,
// seeded by a deterministic per-tenant split of one fleet seed — and
// advances them concurrently through a bounded worker pool in lock-step
// epochs. Results are byte-identical for any worker count: the same
// determinism contract experiments.RunIndexed pins for experiment arms,
// extended to a whole SaaS fleet (the paper's Figure 1 deployment
// shape: one service optimizing many customers' warehouses at once).
//
// Cross-fleet aggregation rolls per-tenant spend/savings/latency/health
// into fleet KPIs with the top-K regressed tenants, and the merged obs
// view serves every tenant's metrics on one /metrics endpoint behind a
// tenant label. A tenant whose optimizer enters degraded/safe mode
// keeps running — epochs are a time barrier, not a health barrier, so
// one sick tenant can neither stall nor perturb the rest.
package fleet

import (
	"fmt"
	"sync"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/core"
	"kwo/internal/experiments"
	"kwo/internal/obs"
)

// Config shapes a fleet run. The zero value is not runnable; New
// applies defaults and validates.
type Config struct {
	// Tenants is how many independent tenants to provision.
	Tenants int
	// Seed is the fleet seed; tenant i runs under TenantSeed(Seed, i).
	Seed int64
	// Workers bounds the epoch worker pool; 0 means one per CPU.
	// Worker count never affects results, only wall-clock time.
	Workers int
	// Epochs is how many lock-step epochs to run.
	Epochs int
	// EpochLen is the simulated length of one epoch (default 1h).
	EpochLen time.Duration
	// AttachEpoch is the epoch boundary at which every tenant's
	// optimizer attaches and starts (history accumulates before it).
	// Default: Epochs/4, at least 1.
	AttachEpoch int
	// FaultRate is the probability (per tenant, drawn from the tenant's
	// own seeded stream) that a tenant lives behind an unreliable
	// control-plane API.
	FaultRate float64
	// FaultTenants force-installs a severe fault plan on the listed
	// tenant indices regardless of FaultRate — the isolation tests use
	// it to push one tenant into degraded mode on demand.
	FaultTenants []int
	// Backends is the pool of CDW backends tenants are provisioned on;
	// each tenant draws one from its own dedicated seeded stream, so a
	// mixed-backend fleet stays a pure function of the fleet seed. Empty
	// means every tenant runs on the default (Snowflake) backend with no
	// draw at all, keeping historical fingerprints byte-identical.
	Backends []string
	// TopK is how many regressed tenants the rollup highlights
	// (default 5).
	TopK int
	// SLO holds the fleet's service-level-objective thresholds; zero
	// fields take the obs.SLOConfig defaults. Objectives are evaluated
	// per tenant over the recorded epoch series.
	SLO obs.SLOConfig
	// SeriesBudget bounds how many points each recorded time series
	// retains; when full, the series halves itself by merging adjacent
	// points (the stride doubles). 0 means 64; must not be negative.
	SeriesBudget int
	// AlertSink, when set, receives every SLO breach/recovery and tenant
	// quarantine alert as it fires on an epoch barrier. Delivery is
	// best-effort (failures are counted, not fatal) and muted during
	// checkpoint replay so a resumed run never re-delivers alerts from
	// before the crash. Alerts themselves are deterministic either way —
	// the tracker log behind /fleet/slo is part of the checkpoint.
	AlertSink obs.AlertSink
	// CheckpointDir, when set, makes the fleet write an epoch-aligned
	// crash-recovery checkpoint (atomically, temp file + rename) every
	// CheckpointEvery epochs and at the final epoch. Resume restores a
	// fresh process to the exact checkpointed state.
	CheckpointDir string
	// CheckpointEvery is the epoch cadence of checkpoint writes
	// (default 8 when CheckpointDir is set).
	CheckpointEvery int
	// EpochDeadline, when positive, bounds one tenant's wall-clock time
	// per epoch: a tenant that exceeds it is quarantined (frozen out of
	// subsequent epochs) instead of stalling the fleet. Requires Wall.
	EpochDeadline time.Duration
	// Wall supplies wall-clock time for the epoch deadline watchdog.
	// Injected rather than time.Now so the fleet package itself stays
	// wall-clock-free (CI enforces this) and tests can fake a stall.
	Wall func() time.Time
	// PanicTenants force-arms a panic probe on the listed tenant
	// indices: a scheduled event that panics mid-way through PanicEpoch,
	// exercising the quarantine boundary on demand.
	PanicTenants []int
	// PanicEpoch is the 1-based epoch in which armed panic probes fire
	// (default AttachEpoch+1).
	PanicEpoch int
	// Opts tunes every tenant's engine; the zero value means
	// core.DefaultOptions(). Options.Obs is ignored — each tenant gets
	// its own hub.
	Opts core.Options
	// Params are the simulated CDW physical constants; the zero value
	// means cdw.DefaultSimParams().
	Params cdw.SimParams

	// respawnPool reverts fan-out to experiments.RunIndexedN — a fresh
	// set of goroutines per epoch instead of the fleet's persistent
	// pool. Unexported: only the in-package *Naive* benchmarks set it,
	// to measure what the persistent pool buys.
	respawnPool bool
	// eagerProvision reverts workload provisioning to one whole-horizon
	// Generate+Drive per tenant at New time, instead of lazy per-epoch
	// cursor chunks. Unexported, benchmark-only, as above.
	eagerProvision bool
}

// withDefaults returns the config with defaults applied, or an error
// if it is not runnable.
func (c Config) withDefaults() (Config, error) {
	if c.Tenants <= 0 {
		return c, fmt.Errorf("fleet: Tenants must be positive, got %d", c.Tenants)
	}
	if c.Epochs <= 0 {
		return c, fmt.Errorf("fleet: Epochs must be positive, got %d", c.Epochs)
	}
	if c.EpochLen == 0 {
		c.EpochLen = time.Hour
	}
	if c.EpochLen < 0 {
		return c, fmt.Errorf("fleet: EpochLen must be positive, got %v", c.EpochLen)
	}
	if c.AttachEpoch == 0 {
		c.AttachEpoch = c.Epochs / 4
		if c.AttachEpoch < 1 {
			c.AttachEpoch = 1
		}
	}
	if c.AttachEpoch < 0 || c.AttachEpoch >= c.Epochs {
		return c, fmt.Errorf("fleet: AttachEpoch %d outside [1, Epochs) with Epochs=%d",
			c.AttachEpoch, c.Epochs)
	}
	if c.FaultRate < 0 || c.FaultRate > 1 {
		return c, fmt.Errorf("fleet: FaultRate %v outside [0, 1]", c.FaultRate)
	}
	for _, i := range c.FaultTenants {
		if i < 0 || i >= c.Tenants {
			return c, fmt.Errorf("fleet: FaultTenants index %d outside [0, %d)", i, c.Tenants)
		}
	}
	for _, name := range c.Backends {
		if name == "" {
			return c, fmt.Errorf("fleet: Backends must not contain empty names")
		}
		if _, err := cdw.BackendByName(name); err != nil {
			return c, fmt.Errorf("fleet: %w", err)
		}
	}
	if c.TopK <= 0 {
		c.TopK = 5
	}
	if c.SeriesBudget < 0 {
		return c, fmt.Errorf("fleet: SeriesBudget must not be negative, got %d", c.SeriesBudget)
	}
	if c.SeriesBudget == 0 {
		c.SeriesBudget = 64
	}
	if c.CheckpointEvery < 0 {
		return c, fmt.Errorf("fleet: CheckpointEvery must not be negative, got %d", c.CheckpointEvery)
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 8
	}
	if c.EpochDeadline < 0 {
		return c, fmt.Errorf("fleet: EpochDeadline must not be negative, got %v", c.EpochDeadline)
	}
	if c.EpochDeadline > 0 && c.Wall == nil {
		return c, fmt.Errorf("fleet: EpochDeadline requires a Wall clock source")
	}
	for _, i := range c.PanicTenants {
		if i < 0 || i >= c.Tenants {
			return c, fmt.Errorf("fleet: PanicTenants index %d outside [0, %d)", i, c.Tenants)
		}
	}
	if c.PanicEpoch == 0 {
		c.PanicEpoch = c.AttachEpoch + 1
		if c.PanicEpoch > c.Epochs {
			c.PanicEpoch = c.Epochs
		}
	}
	if c.PanicEpoch < 1 || c.PanicEpoch > c.Epochs {
		return c, fmt.Errorf("fleet: PanicEpoch %d outside [1, %d]", c.PanicEpoch, c.Epochs)
	}
	c.SLO = c.SLO.WithDefaults()
	if c.Opts.DecideEvery == 0 {
		c.Opts = core.DefaultOptions()
	}
	if c.Params == (cdw.SimParams{}) {
		c.Params = cdw.DefaultSimParams()
	}
	return c, nil
}

// Fleet is a provisioned multi-tenant run. Create with New, drive with
// RunEpoch/Run; the ops endpoints of Handler may be scraped while the
// fleet is advancing.
type Fleet struct {
	cfg       Config
	tenants   []*tenant
	pool      *experiments.Pool
	plane     *obsPlane
	start     time.Time
	epoch     int
	done      bool
	closeOnce sync.Once
	// replaying is set while Resume re-executes checkpointed epochs: the
	// watchdog is off (replay wall-clock bears no relation to the
	// original run's) and external alert delivery is muted.
	replaying bool
}

// New provisions a fleet: Tenants independent simulation stacks, each
// seeded from TenantSeed(Seed, i), with the optimizer attach armed at
// the attach epoch. Workload arrivals are provisioned lazily, one epoch
// chunk at a time, so a fleet's resident arrival backlog is O(epoch)
// per tenant rather than O(horizon) — the query sequence is identical
// either way (workload.Cursor's contract).
//
// The fleet owns a persistent worker pool sized by Workers; every
// fan-out (provisioning, epochs, finalize, KPI rollup) reuses its
// goroutines. Call Close when done with the fleet to release them — a
// closed fleet still works, falling back to inline execution.
func New(cfg Config) (*Fleet, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	f := &Fleet{cfg: cfg, pool: experiments.NewPool(cfg.Workers)}
	ids := tenantIDs(cfg.Tenants)
	f.tenants = make([]*tenant, cfg.Tenants)
	// Provisioning fans out through the same bounded pool as epochs:
	// building 64 tenants' engines and first-epoch arrival chunks is
	// the most expensive single step of a short run.
	f.fanout(cfg.Tenants, func(i int) {
		f.tenants[i] = newTenant(i, ids[i], TenantSeed(cfg.Seed, i), cfg)
	})
	f.start = f.tenants[0].start
	f.plane = newObsPlane(cfg, f.start)
	return f, nil
}

// fanout runs fn(i) for i in [0, n) across the fleet's persistent
// worker pool (or, under the benchmark-only respawnPool knob, a fresh
// RunIndexedN spawn). Tenants are independent, so any schedule is
// correct; results land by index, so output never depends on timing.
func (f *Fleet) fanout(n int, fn func(i int)) {
	if f.cfg.respawnPool {
		experiments.RunIndexedN(n, f.cfg.Workers, func(i int) struct{} {
			fn(i)
			return struct{}{}
		})
		return
	}
	f.pool.Run(n, fn)
}

// Close releases the fleet's worker pool goroutines. Idempotent — a
// second Close is a guaranteed no-op — and the fleet remains usable
// afterwards (fan-outs run inline), so an ops handler holding the fleet
// for /metrics scrapes stays safe.
func (f *Fleet) Close() {
	f.closeOnce.Do(func() { f.pool.Close() })
}

// TenantIDs returns the zero-padded stable tenant labels a fleet of n
// tenants uses (t00 … t63) — exported so tooling (kwo-obscheck
// -tenants) can enumerate the labels a merged exposition must carry.
func TenantIDs(n int) []string { return tenantIDs(n) }

// tenantIDs returns zero-padded stable tenant labels: t00 … t63.
func tenantIDs(n int) []string {
	width := 2
	for lim := 100; lim < n; lim *= 10 {
		width++
	}
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("t%0*d", width, i)
	}
	return ids
}

// Config returns the fleet's effective (defaulted) configuration.
func (f *Fleet) Config() Config { return f.cfg }

// Epoch returns how many epochs have completed.
func (f *Fleet) Epoch() int { return f.epoch }

// Now returns the fleet's current epoch-boundary virtual time.
func (f *Fleet) Now() time.Time {
	return f.start.Add(time.Duration(f.epoch) * f.cfg.EpochLen)
}

// RunEpoch advances every tenant one epoch through the worker pool and
// then enforces the epoch barrier: all non-quarantined tenants must sit
// exactly on the boundary. A degraded tenant advances like any other —
// simulated time costs the same whether the optimizer is healthy or in
// safe mode — so the barrier cannot stall on tenant health. A tenant
// that panics mid-step (or exceeds the wall-clock epoch deadline) is
// quarantined: frozen at its last consistent state and excluded from
// every subsequent epoch, leaving the rest of the fleet untouched.
func (f *Fleet) RunEpoch() error {
	if f.epoch >= f.cfg.Epochs {
		return fmt.Errorf("fleet: all %d epochs already run", f.cfg.Epochs)
	}
	epochNo := f.epoch + 1
	target := f.start.Add(time.Duration(epochNo) * f.cfg.EpochLen)
	f.fanout(len(f.tenants), func(i int) {
		f.stepTenant(f.tenants[i], epochNo, target)
	})
	f.epoch = epochNo
	for _, t := range f.tenants {
		if t.quarantined() {
			continue
		}
		if !t.sched.Now().Equal(target) {
			return fmt.Errorf("fleet: epoch %d barrier violated: tenant %s at %v, want %v",
				f.epoch, t.id, t.sched.Now(), target)
		}
	}
	// Epoch-boundary observation: per-tenant recorder samples plus the
	// fleet-aggregate fold, sequential in tenant-index order so the
	// series are byte-identical for any worker count. SLO burn alerting
	// and quarantine announcements ride the same barrier.
	f.plane.record(target, f.epoch, f.tenants)
	if f.cfg.CheckpointDir != "" && !f.replaying &&
		(f.epoch%f.cfg.CheckpointEvery == 0 || f.epoch == f.cfg.Epochs) {
		if err := f.WriteCheckpoint(); err != nil {
			return fmt.Errorf("fleet: checkpoint at epoch %d: %w", f.epoch, err)
		}
	}
	return nil
}

// stepTenant advances one tenant to the epoch boundary behind the
// quarantine boundary. A panicking tenant is recovered and frozen out;
// with an epoch deadline configured, a tenant whose step took too much
// wall-clock time is frozen out post-hoc (the step itself is never
// interrupted — tenant state stays consistent at the point the panic or
// the boundary left it). Runs on an epoch worker.
func (f *Fleet) stepTenant(t *tenant, epochNo int, target time.Time) {
	if t.quarantined() {
		return
	}
	if rq := t.qResume; rq != nil && rq.epoch == epochNo {
		// The checkpoint being resumed had quarantined this tenant at
		// this epoch: restore the recorded freeze instead of
		// re-executing the failure.
		t.qResume = nil
		t.restoreQuarantine(rq)
		return
	}
	watchdog := f.cfg.EpochDeadline > 0 && !f.replaying
	var wallStart time.Time
	if watchdog {
		wallStart = f.cfg.Wall()
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.quarantineNow(epochNo, fmt.Sprintf("panic: %v", r))
			}
		}()
		t.advanceTo(target)
	}()
	if watchdog && !t.quarantined() {
		if elapsed := f.cfg.Wall().Sub(wallStart); elapsed > f.cfg.EpochDeadline {
			t.quarantineNow(epochNo, fmt.Sprintf(
				"epoch deadline exceeded: %v > %v", elapsed, f.cfg.EpochDeadline))
		}
	}
}

// Run drives all remaining epochs, stops every tenant's optimizer, and
// returns the cross-fleet rollup. The report is byte-identical for any
// Workers setting.
func (f *Fleet) Run() (*Report, error) {
	for f.epoch < f.cfg.Epochs {
		if err := f.RunEpoch(); err != nil {
			return nil, err
		}
	}
	if !f.done {
		f.done = true
		f.fanout(len(f.tenants), func(i int) {
			// A quarantined tenant is never touched again — its KPI row
			// was frozen at the quarantine epoch.
			if !f.tenants[i].quarantined() {
				f.tenants[i].finalize()
			}
		})
		f.plane.setDone()
	}
	return f.report(), nil
}

// report rolls up per-tenant KPIs into the fleet view. KPI computation
// fans out through the worker pool — savings estimation replays cost
// models, the expensive part — with each row landing at its tenant's
// index, so the rollup input is in index order and the report is
// deterministic regardless of which worker finished when.
func (f *Fleet) report() *Report {
	kpis := make([]TenantKPI, len(f.tenants))
	f.fanout(len(f.tenants), func(i int) {
		kpis[i] = f.tenants[i].kpi()
	})
	return rollup(f.cfg, kpis)
}

// Registries returns every tenant's metrics registry behind its tenant
// label, in index order — the input to obs.WriteMergedPrometheus.
func (f *Fleet) Registries() []obs.LabeledRegistry {
	out := make([]obs.LabeledRegistry, len(f.tenants))
	for i, t := range f.tenants {
		out[i] = obs.LabeledRegistry{Label: t.id, Registry: t.hub.Registry}
	}
	return out
}

// ReplayTenant runs one tenant standalone under the exact seed it holds
// (or would hold) inside a fleet with this config, and returns its KPI
// row. Because a tenant's behaviour is a pure function of its seed and
// the epoch schedule, the standalone run is byte-identical to the
// in-fleet run: same event fingerprint, same snapshot fingerprint.
func ReplayTenant(seed int64, cfg Config) (TenantKPI, error) {
	cfg.Tenants = 1
	cfg.FaultTenants = nil
	// Standalone replay has no quarantine boundary; never arm probes.
	cfg.PanicTenants = nil
	cfg, err := cfg.withDefaults()
	if err != nil {
		return TenantKPI{}, err
	}
	t := newTenant(0, "t00", seed, cfg)
	for e := 0; e < cfg.Epochs; e++ {
		boundary := t.start.Add(time.Duration(e+1) * cfg.EpochLen)
		t.advanceTo(boundary)
		// Same epoch-boundary sample the in-fleet run takes, so the
		// replayed tenant's series — and the SLO verdicts evaluated over
		// them — match the fleet's bit for bit.
		t.rec.Sample(boundary)
	}
	t.finalize()
	return t.kpi(), nil
}
