package fleet

import (
	"crypto/sha256"
	"encoding"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"math/rand"
	"sync/atomic"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/cdw/backend"
	"kwo/internal/core"
	"kwo/internal/obs"
	"kwo/internal/policy"
	"kwo/internal/simclock"
	"kwo/internal/telemetry"
	"kwo/internal/workload"
)

// warehouseName is the single warehouse every tenant runs. A fixed name
// keeps a tenant's behaviour a pure function of its seed (so a tenant
// can be replayed standalone from the seed alone); the merged obs view
// tells tenants apart by the tenant label, not the warehouse name.
const warehouseName = "MAIN_WH"

// TenantSeed derives tenant idx's simulation seed from the fleet seed,
// using the same FNV-split idiom as simclock.Scheduler.Rand. The split
// is a documented contract: `kwo-fleet -tenant-seed $(this value)`
// replays one tenant standalone, byte-identical to its in-fleet run.
func TenantSeed(fleetSeed int64, idx int) int64 {
	h := fnvHash(fmt.Sprintf("fleet:tenant:%d", idx))
	return fleetSeed ^ int64(h)
}

func fnvHash(s string) uint64 {
	// FNV-1a, inlined to keep the derivation self-describing here.
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	var h uint64 = offset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// profile is a tenant's derived shape: workload class and intensity,
// warehouse size, slider stance. It is drawn entirely from the tenant's
// own seeded RNG stream, so a tenant's profile — like everything else
// about it — reproduces from its seed.
type profile struct {
	Workload    string // bi | etl | adhoc | mixed
	QPH         float64
	Size        cdw.Size
	Slider      policy.Slider
	MaxClusters int
	AutoSuspend time.Duration
	AutoResume  bool
	// Backend is the CDW backend the tenant was provisioned on. Empty
	// means the default (Snowflake) backend — the field is only set when
	// the fleet draws from a configured backend pool.
	Backend string
}

// String renders the profile compactly (no commas — it rides inside CSV
// rollup rows). The backend suffix appears only for non-default
// backends, so default-fleet report rows stay byte-identical.
func (p profile) String() string {
	s := fmt.Sprintf("%s qph=%.1f size=%s slider=%d clusters<=%d suspend=%s",
		p.Workload, p.QPH, p.Size, int(p.Slider), p.MaxClusters, p.AutoSuspend)
	if p.Backend != "" && p.Backend != "snowflake" {
		s += " backend=" + p.Backend
	}
	return s
}

func deriveProfile(rng *rand.Rand) profile {
	var p profile
	p.Workload = []string{"bi", "etl", "adhoc", "mixed"}[rng.Intn(4)]
	p.QPH = 8 + 16*rng.Float64()
	p.Size = []cdw.Size{cdw.SizeSmall, cdw.SizeMedium, cdw.SizeLarge}[rng.Intn(3)]
	p.Slider = []policy.Slider{policy.GoodPerformance, policy.Balanced, policy.LowCost}[rng.Intn(3)]
	p.MaxClusters = 1 + rng.Intn(2)
	p.AutoSuspend = time.Duration(5+5*rng.Intn(3)) * time.Minute
	p.AutoResume = true
	return p
}

// deriveBackend draws the tenant's backend from the configured pool on
// a dedicated RNG stream (other streams never see the draw), resolves
// it, and clamps the already-derived profile to the backend's
// capability set: a knob the backend has no concept of is removed from
// the warehouse configuration rather than rejected at creation. With an
// empty pool no draw happens at all and the default backend is
// returned, so single-backend fleets keep historical fingerprints.
func deriveBackend(rng *rand.Rand, pool []string, p *profile) (backend.Backend, error) {
	if len(pool) == 0 {
		return cdw.DefaultBackend(), nil
	}
	name := pool[rng.Intn(len(pool))]
	b, err := cdw.BackendByName(name)
	if err != nil {
		return nil, err
	}
	p.Backend = b.Name()
	caps := backend.CapabilitiesOf(b)
	if caps&backend.CapMultiCluster == 0 {
		p.MaxClusters = 1
	}
	if caps&backend.CapAutoSuspend == 0 {
		p.AutoSuspend = 0
	}
	if caps&backend.CapAutoResume == 0 {
		p.AutoResume = false
	}
	return b, nil
}

// generator builds the profile's arrival generator from the standard
// template pools (fresh pools per tenant — nothing shared).
func (p profile) generator() workload.Generator {
	bi, etl, adhoc := workload.StandardPools()
	switch p.Workload {
	case "etl":
		return workload.ETL{Pool: etl, Period: time.Hour, Offset: 5 * time.Minute,
			JobsPerBatch: 3, Jitter: 2 * time.Minute}
	case "adhoc":
		return workload.AdHoc{Pool: adhoc, BaseQPH: p.QPH / 2, DayVariance: 0.7,
			BurstsPerDay: 2, BurstQPH: 5 * p.QPH, BurstLen: 15 * time.Minute}
	case "mixed":
		return workload.Mixed{Parts: []workload.Generator{
			workload.BI{Pool: bi, PeakQPH: p.QPH, WeekendFactor: 0.2},
			workload.ETL{Pool: etl, Period: 2 * time.Hour, Offset: 5 * time.Minute,
				JobsPerBatch: 2, Jitter: 2 * time.Minute},
		}}
	default: // bi
		return workload.BI{Pool: bi, PeakQPH: p.QPH, WeekendFactor: 0.2}
	}
}

// deriveFaultPlan decides, from the tenant's own fault RNG stream,
// whether this tenant lives behind an unreliable control plane. The
// draws happen unconditionally so the stream stays aligned whatever the
// rate — replaying a tenant with the same seed and rate reproduces the
// same plan.
func deriveFaultPlan(rng *rand.Rand, rate float64) *cdw.FaultPlan {
	roll := rng.Float64()
	plan := cdw.FaultPlan{
		AlterFailRate:    0.15 + 0.25*rng.Float64(),
		AlterTimeoutRate: 0.05 + 0.10*rng.Float64(),
		BillingLag:       time.Duration(rng.Intn(3)) * time.Hour,
	}
	if roll >= rate {
		return nil
	}
	return &plan
}

// forcedFaultPlan is the severe plan installed on tenants explicitly
// listed in Config.FaultTenants — a billing outage blinding the
// optimizer from attach until the given end, plus a high ALTER failure
// rate. The outage guarantees degraded/safe mode engages (three failed
// metering pulls trip it), which is exactly what the epoch-barrier
// isolation test needs.
func forcedFaultPlan(outageFrom, outageTo time.Time) *cdw.FaultPlan {
	return &cdw.FaultPlan{
		AlterFailRate:    0.9,
		AlterTimeoutRate: 0.05,
		BillingOutages:   []cdw.FaultWindow{{From: outageFrom, To: outageTo}},
	}
}

// eventHasher is an obs sink folding every trace event's deterministic
// JSON line into a running SHA-256 — the per-tenant ObsEvents
// fingerprint, without buffering the whole stream.
type eventHasher struct {
	h hash.Hash
	n uint64
}

func newEventHasher() *eventHasher { return &eventHasher{h: sha256.New()} }

// Emit implements obs.Sink. Each tenant's bus emits from at most one
// fleet worker at a time (epoch barriers order cross-worker handoffs),
// so no extra locking is needed.
func (e *eventHasher) Emit(ev obs.Event) {
	io.WriteString(e.h, ev.JSON())
	e.h.Write([]byte{'\n'})
	e.n++
}

// Sum returns the hex fingerprint of everything hashed so far.
func (e *eventHasher) Sum() string { return hex.EncodeToString(e.h.Sum(nil)) }

// State exports the running hash's internal state (sha256 implements
// encoding.BinaryMarshaler) so a checkpoint can pin the event stream's
// exact position, not just its digest so far.
func (e *eventHasher) State() ([]byte, error) {
	m, ok := e.h.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("fleet: event hash %T is not marshalable", e.h)
	}
	return m.MarshalBinary()
}

// countingSource wraps a rand.Source64 and counts draws — the RNG
// stream position a checkpoint records. It implements both Int63 and
// Uint64 by pure delegation, so rand.Rand takes the same fast Source64
// path it would on the unwrapped source and the stream is bit-identical.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (c *countingSource) Int63() int64 { c.n++; return c.src.Int63() }

func (c *countingSource) Uint64() uint64 { c.n++; return c.src.Uint64() }

func (c *countingSource) Seed(seed int64) { c.n = 0; c.src.Seed(seed) }

// tenant is one fully independent simulation stack: its own virtual
// clock, simulated account, telemetry store, obs hub, and optimizer
// engine. Tenants share no mutable state — that is the fleet's whole
// determinism and isolation story.
type tenant struct {
	idx  int
	id   string
	seed int64
	prof profile
	plan *cdw.FaultPlan

	sched  *simclock.Scheduler
	acct   *cdw.Account
	store  *telemetry.Store
	hub    *obs.Hub
	eng    *core.Engine
	events *eventHasher
	rec    *obs.Recorder
	objs   []obs.Objective
	slo    []obs.Verdict

	start      time.Time
	attachAt   time.Time
	horizonEnd time.Time
	cursor     workload.Cursor // nil once the stream is exhausted (or when eager)
	scheduled  int
	attachErr  error
	wdraws     *countingSource // workload RNG stream position

	// Quarantine state. quar is atomic because the ops handlers read it
	// while epoch workers may be writing; every other field below is
	// written before the Store(true) and only read after a Load(true),
	// so the atomic publishes them safely. qAnnounced is touched only on
	// the sequential epoch barrier.
	quar       atomic.Bool
	qEpoch     int
	qReason    string
	frozen     *TenantKPI
	qResume    *resumeQuarantine
	qAnnounced bool
}

// resumeQuarantine marks a tenant that the checkpoint being resumed had
// quarantined: at the recorded epoch the replay skips the advance and
// restores the frozen state instead of re-executing the failure.
type resumeQuarantine struct {
	epoch  int
	reason string
	kpi    *TenantKPI
}

// newTenant provisions one tenant: derive its profile and fault plan,
// create its warehouse, open its lazily-chunked workload stream, and
// arm the optimizer attach at the attach epoch.
func newTenant(idx int, id string, seed int64, cfg Config) *tenant {
	t := &tenant{idx: idx, id: id, seed: seed}
	t.sched = simclock.NewScheduler(seed)
	// The profile is derived before the backend so the backend draw can
	// clamp it; both use their own named streams, so adding a backend
	// pool later never shifts the profile a seed produces.
	t.prof = deriveProfile(t.sched.Rand("fleet:profile"))
	bk, bkErr := deriveBackend(t.sched.Rand("fleet:backend"), cfg.Backends, &t.prof)
	if bkErr != nil {
		// Unreachable after withDefaults validation, but a provisioning
		// path must fail closed, not panic.
		t.attachErr = fmt.Errorf("tenant %s: backend: %w", id, bkErr)
		bk = cdw.DefaultBackend()
	}
	t.acct = cdw.NewAccountWithBackend(t.sched, cfg.Params, bk)
	t.store = telemetry.NewStore()
	t.hub = obs.NewHub(t.sched.Now)
	t.events = newEventHasher()
	t.hub.Bus.AddSink(t.events)
	t.acct.SetObs(t.hub)
	t.store.SetObs(t.hub)
	t.acct.Subscribe(t.store)
	// Prime one sample per catalog family under this tenant's warehouse
	// label sets, register the epoch recorder, and pre-touch the SLO
	// gauges — so the merged fleet exposition carries every family for
	// every tenant from the first scrape (kwo-obscheck -tenants checks
	// exactly this). Priming creates zero-valued series only; it cannot
	// perturb behaviour or fingerprints.
	t.hub.Prime(warehouseName)
	t.rec = obs.NewRecorder(t.hub, obs.FleetSpecs(), cfg.SeriesBudget)
	t.objs = cfg.SLO.Objectives()
	for _, o := range t.objs {
		t.hub.SLOBurn.With(o.Name)
		t.hub.SLOPass.With(o.Name)
	}

	t.start = t.sched.Now()
	horizon := time.Duration(cfg.Epochs) * cfg.EpochLen
	t.attachAt = t.start.Add(time.Duration(cfg.AttachEpoch) * cfg.EpochLen)

	t.plan = deriveFaultPlan(t.sched.Rand("fleet:faults"), cfg.FaultRate)
	for _, f := range cfg.FaultTenants {
		if f == idx {
			t.plan = forcedFaultPlan(t.attachAt, t.attachAt.Add(4*cfg.EpochLen))
		}
	}
	if t.plan != nil {
		t.acct.SetFaults(*t.plan)
	}

	if _, err := t.acct.CreateWarehouse(cdw.Config{
		Name:        warehouseName,
		Size:        t.prof.Size,
		MinClusters: 1,
		MaxClusters: t.prof.MaxClusters,
		Policy:      cdw.ScaleStandard,
		AutoSuspend: t.prof.AutoSuspend,
		AutoResume:  t.prof.AutoResume,
	}); err != nil {
		t.attachErr = fmt.Errorf("tenant %s: create warehouse: %w", id, err)
		return t
	}

	// The workload stream is pulled chunk-by-chunk from a cursor as
	// epochs advance (see provisionTo) instead of materializing the
	// whole horizon here: resident arrivals stay O(epoch) per tenant.
	// The cursor consumes the identical seeded RNG stream a
	// whole-horizon Generate call would, so the query sequence — and
	// every downstream fingerprint — is unchanged (the eagerProvision
	// knob keeps the old path alive for benchmarks to prove it).
	gen := t.prof.generator()
	t.horizonEnd = t.start.Add(horizon)
	// The workload source is wrapped to count draws — the checkpointed
	// RNG stream position. The wrapper delegates both Int63 and Uint64,
	// so the stream is bit-identical to the plain Rand derivation.
	t.wdraws = &countingSource{src: rand.NewSource(t.sched.SeedFor("fleet:workload:" + gen.Name())).(rand.Source64)}
	wrng := rand.New(t.wdraws)
	if cfg.eagerProvision {
		arr := gen.Generate(t.start, t.horizonEnd, wrng)
		t.scheduled, _ = workload.Drive(t.sched, t.acct, warehouseName, arr)
	} else {
		t.cursor = workload.NewCursor(gen, t.start, t.horizonEnd, wrng)
	}

	opts := cfg.Opts
	opts.Obs = t.hub
	t.eng = core.NewEngineWithStore(t.acct, t.store, opts)
	t.sched.Schedule(t.attachAt, "fleet:attach", func() {
		settings := core.WarehouseSettings{Slider: t.prof.Slider}
		if _, err := t.eng.Attach(warehouseName, settings); err != nil {
			t.attachErr = fmt.Errorf("tenant %s: attach: %w", id, err)
			return
		}
		t.eng.Start()
	})
	// The panic probe: a scheduled event that panics mid-way through the
	// configured epoch, exercising the fleet's quarantine boundary on
	// demand. Scheduling it shifts later events' tie-break sequence
	// numbers uniformly (relative order is preserved) and draws from no
	// RNG stream, so behaviour before the probe fires is unperturbed.
	for _, pi := range cfg.PanicTenants {
		if pi == idx {
			at := t.start.Add(time.Duration(cfg.PanicEpoch-1)*cfg.EpochLen + cfg.EpochLen/2)
			t.sched.Schedule(at, "fleet:panic-probe", func() {
				panic(fmt.Sprintf("fleet: tenant %s panic probe (epoch %d)", id, cfg.PanicEpoch))
			})
		}
	}
	return t
}

// quarantined reports whether the tenant has been frozen out.
func (t *tenant) quarantined() bool { return t.quar.Load() }

// quarantineNow freezes the tenant: records the epoch and reason,
// computes its final KPI row defensively (the tenant may have panicked
// mid-step), and publishes the quarantined flag. Called from an epoch
// worker; the fields-then-flag write order is what makes the concurrent
// handler reads safe.
func (t *tenant) quarantineNow(epoch int, reason string) {
	t.qEpoch = epoch
	t.qReason = reason
	t.frozen = t.freezeKPI(epoch, reason)
	t.quar.Store(true)
}

// restoreQuarantine re-installs a quarantine recorded in a checkpoint
// without re-executing the failure.
func (t *tenant) restoreQuarantine(rq *resumeQuarantine) {
	t.qEpoch = rq.epoch
	t.qReason = rq.reason
	k := *rq.kpi
	t.frozen = &k
	t.quar.Store(true)
}

// freezeKPI computes the quarantined tenant's last-known KPI row. The
// computation itself runs behind a recover — a tenant that panicked
// mid-step may not be able to answer every question — falling back to
// an identity-only row rather than taking the fleet down twice.
func (t *tenant) freezeKPI(epoch int, reason string) *TenantKPI {
	k := TenantKPI{Tenant: t.id, Index: t.idx, Seed: t.seed, Profile: t.prof.String()}
	func() {
		defer func() {
			if r := recover(); r != nil {
				k.Err = fmt.Sprintf("kpi after quarantine: %v", r)
			}
		}()
		k = t.kpiNow()
	}()
	k.Quarantined = true
	k.QuarantineEpoch = epoch
	k.QuarantineReason = reason
	return &k
}

// advanceTo provisions the next workload chunk and runs the tenant's
// simulation up to the epoch boundary.
func (t *tenant) advanceTo(target time.Time) {
	t.provisionTo(target)
	t.sched.RunUntil(target)
}

// provisionTo schedules the arrival chunk [now, target) from the
// tenant's workload cursor. Every arrival in the chunk is at or after
// the tenant's current time (the cursor's chunk-containment contract),
// so nothing is dropped; on the final epoch the cursor also flushes
// jitter overflow past the horizon, keeping the scheduled count equal
// to the eager path's (those trailing events are scheduled but never
// run, exactly as before).
func (t *tenant) provisionTo(target time.Time) {
	if t.cursor == nil {
		return
	}
	arr := t.cursor.Next(target)
	n, _ := workload.Drive(t.sched, t.acct, warehouseName, arr)
	t.scheduled += n
	if !target.Before(t.horizonEnd) {
		t.cursor = nil
	}
}

// finalize stops the optimizer loops after the last epoch, evaluates
// the tenant's SLO objectives over its recorded series, and mirrors the
// verdicts onto the hub gauges. Evaluation is per-tenant pure
// arithmetic, so running it inside the finalize fan-out is safe and the
// standalone replay produces identical verdicts.
func (t *tenant) finalize() {
	if t.eng != nil {
		t.eng.Stop()
	}
	t.slo = t.evalSLO()
	obs.PublishSLO(t.hub, t.slo)
}

// evalSLO evaluates the tenant's objectives over its recorded series.
func (t *tenant) evalSLO() []obs.Verdict {
	return obs.Evaluate(t.objs, t.rec.Series)
}

// kpi rolls the tenant's run up into one report row. A quarantined
// tenant reports the KPI frozen at its quarantine epoch — its series,
// fingerprints, and SLO verdicts stop evolving the moment it left the
// fleet.
func (t *tenant) kpi() TenantKPI {
	if t.quarantined() {
		return *t.frozen
	}
	return t.kpiNow()
}

// kpiNow assembles the row from live tenant state.
func (t *tenant) kpiNow() TenantKPI {
	now := t.sched.Now()
	k := TenantKPI{
		Tenant:  t.id,
		Index:   t.idx,
		Seed:    t.seed,
		Profile: t.prof.String(),
	}
	if t.attachErr != nil {
		k.Err = t.attachErr.Error()
		return k
	}
	stats := t.store.Log(warehouseName).Stats(t.start, now)
	k.Queries = stats.Queries
	k.P99Latency = stats.P99Latency
	if wh, err := t.acct.Warehouse(warehouseName); err == nil {
		k.ActualCredits = wh.Meter().CreditsBetween(t.attachAt, now, now)
	}
	if actual, without, err := t.eng.EstimateSavings(warehouseName, t.attachAt, now); err == nil {
		k.ModelReady = true
		k.ActualCredits = actual
		k.WithoutKeebo = without
		if s := without - actual; s > 0 {
			k.Savings = s
		}
		if without > 0 {
			k.SavingsPercent = 100 * k.Savings / without
		}
	}
	if h, err := t.eng.Health(warehouseName); err == nil {
		k.Degraded = h.Degraded
		k.DegradedTicks = h.DegradedTicks
		k.Recoveries = h.Recoveries
	}
	k.ActionsApplied = t.eng.Actuator().AppliedCount()
	k.Invoices = len(t.eng.Ledger().Invoices())
	k.SLO = t.slo
	if k.SLO == nil {
		// kpi before finalize (mid-run scrape paths): evaluate live.
		k.SLO = t.evalSLO()
	}
	k.SLOFailed = obs.FailedObjectives(k.SLO)
	k.SLOPass = len(k.SLOFailed) == 0
	k.SLOWorstBurn = obs.WorstBurn(k.SLO)
	k.Faults = t.acct.FaultCounts()
	k.ObsEvents = t.hub.Bus.Total()
	k.EventsFingerprint = t.events.Sum()
	if snap, err := t.store.SnapshotBytes(); err == nil {
		sum := sha256.Sum256(snap)
		k.SnapshotFingerprint = hex.EncodeToString(sum[:])
	}
	return k
}
