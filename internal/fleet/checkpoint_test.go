package fleet

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// resumeBase returns the operational config a resuming process would
// supply: everything behaviour-affecting comes from the checkpoint, but
// Opts (not serialized — it may hold live hooks) must match the
// original run by construction, exactly as the CLI always builds it
// from defaults.
func resumeBase(cfg Config) Config {
	return Config{Workers: 3, Opts: cfg.Opts}
}

// TestCheckpointResumeFingerprintIdentical is the tentpole property: a
// run interrupted at ANY checkpoint and resumed in a fresh fleet must
// finish with a report fingerprint byte-identical to the uninterrupted
// run — crash recovery may not perturb a single simulated byte.
func TestCheckpointResumeFingerprintIdentical(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(4, 2)
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 5
	base := runFleet(t, cfg)
	want := base.Fingerprint()

	// Epochs 5 and 10 on the cadence, 12 because the final epoch always
	// checkpoints.
	names, err := filepath.Glob(filepath.Join(dir, "fleet-epoch-*.ckpt.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("checkpoint files = %v, want epochs 5, 10, 12", names)
	}
	for _, name := range names {
		cp, err := LoadCheckpoint(name)
		if err != nil {
			t.Fatalf("LoadCheckpoint(%s): %v", name, err)
		}
		f, err := Resume(cp, resumeBase(cfg))
		if err != nil {
			t.Fatalf("Resume(%s): %v", name, err)
		}
		rep, err := f.Run()
		f.Close()
		if err != nil {
			t.Fatalf("Run after resume from %s: %v", name, err)
		}
		if got := rep.Fingerprint(); got != want {
			t.Errorf("resume from %s: fingerprint %s != uninterrupted %s", name, got, want)
		}
	}
}

// TestResumeDoesNotRewriteReplayedCheckpoints: replayed epochs must not
// write checkpoint files (or deliver alerts) again — only epochs the
// resumed fleet genuinely advances through do.
func TestResumeDoesNotRewriteReplayedCheckpoints(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(3, 2)
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 4
	runFleet(t, cfg)

	cp, err := LoadCheckpoint(filepath.Join(dir, checkpointFileName(4)))
	if err != nil {
		t.Fatal(err)
	}
	fresh := t.TempDir()
	base := resumeBase(cfg)
	base.CheckpointDir = fresh
	base.CheckpointEvery = 4
	f, err := Resume(cp, base)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	defer f.Close()
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	names, err := filepath.Glob(filepath.Join(fresh, "fleet-epoch-*.ckpt.json"))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(names))
	for i, n := range names {
		got[i] = filepath.Base(n)
	}
	want := []string{checkpointFileName(8), checkpointFileName(12)}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("resumed run wrote %v, want only post-resume epochs %v", got, want)
	}
}

// TestCheckpointViewMatchesLive: the offline portal view rebuilt from a
// checkpoint alone must be JSON-identical to the live fleet's ops
// payloads at the same epoch.
func TestCheckpointViewMatchesLive(t *testing.T) {
	cfg := testConfig(3, 2)
	cfg.Epochs = 6
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	cp, err := f.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	kpis, ts, slo, err := CheckpointView(cp)
	if err != nil {
		t.Fatalf("CheckpointView: %v", err)
	}
	for _, pair := range []struct {
		what       string
		view, live any
	}{
		{"kpis", kpis, f.KPIs()},
		{"timeseries", ts, f.TimeSeries()},
		{"slo", slo, f.SLOStatus()},
	} {
		v, err := json.Marshal(pair.view)
		if err != nil {
			t.Fatal(err)
		}
		l, err := json.Marshal(pair.live)
		if err != nil {
			t.Fatal(err)
		}
		if string(v) != string(l) {
			t.Errorf("%s: checkpoint view diverges from live payload:\nview: %s\nlive: %s", pair.what, v, l)
		}
	}
}

// TestLoadCheckpointRejectsMalformed: version skew, structural damage,
// and plain garbage must all fail loudly at load time.
func TestLoadCheckpointRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(2, 1)
	cfg.Epochs = 4
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 4
	runFleet(t, cfg)
	path := filepath.Join(dir, checkpointFileName(4))
	good, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}

	rewrite := func(mutate func(*Checkpoint)) string {
		cp := *good
		cp.Tenants = append([]TenantCheckpoint(nil), good.Tenants...)
		mutate(&cp)
		out := filepath.Join(t.TempDir(), "mutated.ckpt.json")
		if err := writeCheckpointFile(out, &cp); err != nil {
			t.Fatal(err)
		}
		return out
	}

	cases := []struct {
		name   string
		path   string
		errHas string
	}{
		{"version skew", rewrite(func(cp *Checkpoint) { cp.Version = 99 }), "unsupported version"},
		{"epoch beyond horizon", rewrite(func(cp *Checkpoint) { cp.Epoch = cp.Config.Epochs + 1 }), "beyond configured horizon"},
		{"tenant count mismatch", rewrite(func(cp *Checkpoint) { cp.Tenants = cp.Tenants[:1] }), "tenant entries"},
		{"index disorder", rewrite(func(cp *Checkpoint) { cp.Tenants[0].Index = 1 }), "has index"},
		{"quarantine without KPI", rewrite(func(cp *Checkpoint) {
			cp.Tenants[0].Quarantined = true
			cp.Tenants[0].QuarantineEpoch = 2
		}), "without a frozen KPI"},
	}
	garbage := filepath.Join(t.TempDir(), "garbage.ckpt.json")
	if err := os.WriteFile(garbage, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases = append(cases, struct {
		name   string
		path   string
		errHas string
	}{"garbage", garbage, "invalid character"})

	for _, tc := range cases {
		if _, err := LoadCheckpoint(tc.path); err == nil || !strings.Contains(err.Error(), tc.errHas) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.errHas)
		}
	}
}

// TestResumeRejectsTamper: a checkpoint whose recorded state does not
// match what the deterministic replay reproduces must be refused —
// silent divergence would corrupt everything after the resume.
func TestResumeRejectsTamper(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(2, 1)
	cfg.Epochs = 4
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 4
	runFleet(t, cfg)
	path := filepath.Join(dir, checkpointFileName(4))

	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	cp.Tenants = append([]TenantCheckpoint(nil), cp.Tenants...)
	cp.Tenants[0].SchedSteps++
	if _, err := Resume(cp, resumeBase(cfg)); err == nil || !strings.Contains(err.Error(), "resume verify") {
		t.Fatalf("tampered scheduler state: err = %v, want resume verify failure", err)
	}

	// A checkpointed config that defaulting would alter is a config from
	// a different build — the merge guard must catch it before replay.
	cp2, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	cp2.Config.SeriesBudget = 0
	if _, err := Resume(cp2, resumeBase(cfg)); err == nil || !strings.Contains(err.Error(), "config mismatch") {
		t.Fatalf("defaulting-altered config: err = %v, want config mismatch", err)
	}
}

// TestLatestCheckpoint: newest loadable wins; corrupt newer files are
// skipped rather than masking an older good checkpoint; torn .tmp
// leftovers are invisible; an empty dir is a clean error.
func TestLatestCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(2, 1)
	cfg.Epochs = 8
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 4
	runFleet(t, cfg)

	cp, path, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatalf("LatestCheckpoint: %v", err)
	}
	if cp.Epoch != 8 || filepath.Base(path) != checkpointFileName(8) {
		t.Fatalf("latest = epoch %d (%s), want 8", cp.Epoch, path)
	}

	// Corrupt the newest; the older good file must be found behind it.
	if err := os.WriteFile(path, []byte("torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A stray temp file must never be considered.
	tmp := filepath.Join(dir, checkpointFileName(99)+".tmp")
	if err := os.WriteFile(tmp, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	cp, path, err = LatestCheckpoint(dir)
	if err != nil {
		t.Fatalf("LatestCheckpoint with corrupt head: %v", err)
	}
	if cp.Epoch != 4 || filepath.Base(path) != checkpointFileName(4) {
		t.Fatalf("latest behind corrupt head = epoch %d (%s), want 4", cp.Epoch, path)
	}

	if _, _, err := LatestCheckpoint(t.TempDir()); err == nil || !strings.Contains(err.Error(), "no checkpoint found") {
		t.Fatalf("empty dir: err = %v, want no checkpoint found", err)
	}
}

func TestWriteCheckpointRequiresDir(t *testing.T) {
	cfg := testConfig(1, 1)
	cfg.Epochs = 2
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.WriteCheckpoint(); err == nil || !strings.Contains(err.Error(), "no CheckpointDir") {
		t.Fatalf("err = %v, want no CheckpointDir configured", err)
	}
}
