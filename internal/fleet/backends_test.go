package fleet

import (
	"strings"
	"testing"
)

// mixedConfig is the standard mixed-fleet test shape: every registered
// backend in the pool, enough tenants that the seeded draw lands on
// more than one of them.
func mixedConfig(tenants, workers int) Config {
	cfg := testConfig(tenants, workers)
	cfg.Backends = []string{"snowflake", "bigquery", "redshift"}
	return cfg
}

// countBackends tallies how many tenants run on each backend, reading
// the profile strings the rollup reports (snowflake is the unlabeled
// default).
func countBackends(rep *Report) map[string]int {
	out := make(map[string]int)
	for _, k := range rep.PerTenant {
		name := "snowflake"
		if i := strings.Index(k.Profile, "backend="); i >= 0 {
			name = strings.Fields(k.Profile[i+len("backend="):])[0]
		}
		out[name]++
	}
	return out
}

// TestMixedBackendDeterminismAcrossWorkers extends the fleet's core
// byte-identity property to heterogeneous fleets: with tenants spread
// across backends, the rollup — including each tenant's event and
// snapshot fingerprints — is identical for any worker pool size.
func TestMixedBackendDeterminismAcrossWorkers(t *testing.T) {
	tenants := 16
	if testing.Short() {
		tenants = 8
	}
	base := runFleet(t, mixedConfig(tenants, 1))
	if n := countBackends(base); len(n) < 2 {
		t.Fatalf("pool drew only %v; pick a seed/tenant count that actually mixes", n)
	}
	baseFP := base.Fingerprint()
	sweep := []int{4, 16}
	if *fleetWorkers > 0 {
		sweep = []int{*fleetWorkers}
	}
	for _, w := range sweep {
		rep := runFleet(t, mixedConfig(tenants, w))
		if fp := rep.Fingerprint(); fp != baseFP {
			diffTenants(t, base, rep)
			t.Fatalf("mixed backends, workers=%d fingerprint %s != workers=1 %s", w, fp, baseFP)
		}
	}
}

// TestMixedBackendDegradedIsolation forces one tenant (on whatever
// backend its draw assigned) behind a broken control plane and checks
// no tenant on any backend is perturbed: cross-backend isolation is the
// same hard boundary as same-backend isolation.
func TestMixedBackendDegradedIsolation(t *testing.T) {
	const sick = 2
	cfg := mixedConfig(12, 4)
	cfg.FaultRate = 0 // the forced plan must be the only difference
	clean := runFleet(t, cfg)
	if n := countBackends(clean); len(n) < 2 {
		t.Fatalf("pool drew only %v; pick a seed/tenant count that actually mixes", n)
	}
	cfg.FaultTenants = []int{sick}
	faulty := runFleet(t, cfg)

	if got := faulty.PerTenant[sick].Faults; got.AlterFailures == 0 {
		t.Errorf("forced-fault tenant saw no alter failures: %+v", got)
	}
	for i := range clean.PerTenant {
		if i == sick {
			continue
		}
		c, f := clean.PerTenant[i], faulty.PerTenant[i]
		if c.EventsFingerprint != f.EventsFingerprint || c.SnapshotFingerprint != f.SnapshotFingerprint {
			t.Errorf("tenant %s (profile %s) perturbed by tenant %d's faults",
				c.Tenant, c.Profile, sick)
		}
	}
}

// TestSnowflakePoolMatchesDefault pins the compatibility contract: a
// pool holding only the default backend changes nothing. The draw runs
// on its own named stream, so per-tenant results — and therefore every
// historical fingerprint — match a run with no pool at all.
func TestSnowflakePoolMatchesDefault(t *testing.T) {
	plain := runFleet(t, testConfig(8, 4))
	pooled := func() Config {
		cfg := testConfig(8, 4)
		cfg.Backends = []string{"snowflake"}
		return cfg
	}()
	rep := runFleet(t, pooled)
	if a, b := plain.Fingerprint(), rep.Fingerprint(); a != b {
		diffTenants(t, plain, rep)
		t.Fatalf("Backends=[snowflake] fingerprint %s != no-pool %s", b, a)
	}
}

// TestBackendPoolValidation rejects bad pools up front, before any
// tenant is provisioned.
func TestBackendPoolValidation(t *testing.T) {
	cfg := testConfig(2, 1)
	cfg.Backends = []string{"snowflake", "nosuch"}
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("unknown backend in pool: got err %v, want mention of %q", err, "nosuch")
	}
	cfg.Backends = []string{""}
	if _, err := New(cfg); err == nil {
		t.Fatal("empty backend name in pool accepted")
	}
}
