package fleet

// The fleet observability plane: at every epoch boundary the fleet
// samples each tenant's recorder (per-tenant time series on the
// simulation clock) and folds the raw values into fleet-aggregate
// series. The plane also builds the JSON payloads behind the
// /fleet/kpis, /fleet/timeseries, and /fleet/slo endpoints.
//
// Everything here is deterministic: sampling happens sequentially in
// tenant-index order on the epoch barrier, timestamps come from the
// simulation clock, and series downsampling is a pure function of the
// append sequence — so the plane's output is byte-identical for any
// worker count, the same contract the rollup holds.

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"kwo/internal/obs"
)

// obsPlane holds the fleet-aggregate series and the epoch snapshot the
// ops endpoints read. Its mutex serializes epoch-boundary sampling
// (which appends to per-tenant and fleet series) against endpoint
// reads, so the plane is safe to scrape while the fleet advances.
type obsPlane struct {
	mu         sync.Mutex
	specs      []obs.SampleSpec
	objectives []obs.Objective
	budget     int
	fleet      []*obs.Series
	epoch      int
	now        time.Time
	done       bool

	// The alert plane. The tracker is the deterministic part — it runs
	// on the simulation clock and its log is checkpointed state. The
	// sink is external delivery (JSONL file, operator pager); mute turns
	// delivery off during checkpoint replay so a resumed run does not
	// re-page for alerts already delivered before the crash.
	tracker  *obs.AlertTracker
	sink     obs.AlertSink
	mute     bool
	sinkErrs int
}

func newObsPlane(cfg Config, start time.Time) *obsPlane {
	p := &obsPlane{
		specs:      obs.FleetSpecs(),
		objectives: cfg.SLO.Objectives(),
		budget:     cfg.SeriesBudget,
		now:        start,
		tracker:    obs.NewAlertTracker(),
		sink:       cfg.AlertSink,
	}
	p.fleet = make([]*obs.Series, len(p.specs))
	for i, sp := range p.specs {
		p.fleet[i] = obs.NewSeries(sp.Name, sp.TimeAgg, cfg.SeriesBudget)
	}
	return p
}

// deliver sends one alert to the external sink (if any, and not muted
// by replay). Delivery failures are counted, never fatal: the tracker's
// log is the durable record, the sink is best-effort notification.
func (p *obsPlane) deliver(a obs.Alert) {
	if p.mute || p.sink == nil {
		return
	}
	if err := p.sink.Send(a); err != nil {
		p.sinkErrs++
	}
}

// record takes the epoch-boundary sample: every tenant's recorder in
// index order (each tenant appends to its own series and returns the
// raw per-spec values), then the cross-tenant aggregate under each
// spec's CrossAgg into the fleet series. Sequential by design — the
// sample is a pure reduction over already-advanced tenants, cheap next
// to an epoch of simulation, and a fixed order keeps float accumulation
// deterministic.
func (p *obsPlane) record(t time.Time, epoch int, tenants []*tenant) {
	p.mu.Lock()
	defer p.mu.Unlock()
	agg := make([]float64, len(p.specs))
	seen := false
	active := 0
	for _, tn := range tenants {
		if tn.quarantined() {
			// A quarantined tenant's series freeze at its last sample;
			// it drops out of the fleet aggregate. Announce the
			// quarantine exactly once, on the first barrier after it.
			if !tn.qAnnounced {
				tn.qAnnounced = true
				p.deliver(p.tracker.Quarantine(t, tn.qEpoch, tn.id, tn.qReason))
			}
			continue
		}
		vals := tn.rec.Sample(t)
		for i, v := range vals {
			switch p.specs[i].CrossAgg {
			case obs.AggMax:
				if !seen || v > agg[i] {
					agg[i] = v
				}
			case obs.AggMean, obs.AggSum:
				agg[i] += v
			default: // AggLast
				agg[i] = v
			}
		}
		seen = true
		active++
	}
	for i, s := range p.fleet {
		v := agg[i]
		if p.specs[i].CrossAgg == obs.AggMean && active > 0 {
			v /= float64(active)
		}
		s.Append(t, v)
	}
	// SLO burn alerting: evaluate each active tenant's objectives over
	// its freshly-sampled series and let the tracker dedupe transitions.
	// Sequential in index order under the plane lock, so alert sequence
	// numbers are deterministic for any worker count.
	for _, tn := range tenants {
		if tn.quarantined() {
			continue
		}
		verdicts := obs.Evaluate(p.objectives, tn.rec.Series)
		for _, a := range p.tracker.Observe(t, epoch, tn.id, verdicts) {
			p.deliver(a)
		}
	}
	p.epoch = epoch
	p.now = t
}

func (p *obsPlane) setDone() {
	p.mu.Lock()
	p.done = true
	p.mu.Unlock()
}

// TenantLive is one tenant's row in the live KPI payload.
type TenantLive struct {
	Tenant    string             `json:"tenant"`
	Index     int                `json:"index"`
	Seed      int64              `json:"seed"`
	Profile   string             `json:"profile"`
	Last      map[string]float64 `json:"last"`
	SLOPass   bool               `json:"slo_pass"`
	WorstBurn float64            `json:"slo_worst_burn"`
	Failed    []string           `json:"slo_failed,omitempty"`
	Replay    string             `json:"replay"`

	Quarantined      bool   `json:"quarantined,omitempty"`
	QuarantineEpoch  int    `json:"quarantine_epoch,omitempty"`
	QuarantineReason string `json:"quarantine_reason,omitempty"`
}

// LiveKPIs is the /fleet/kpis payload: fleet progress, the latest
// fleet-aggregate value of every recorded series, and one row per
// tenant with its latest values and live SLO verdict.
type LiveKPIs struct {
	Seed        int64              `json:"seed"`
	Tenants     int                `json:"tenants"`
	Epoch       int                `json:"epoch"`
	Epochs      int                `json:"epochs"`
	EpochLen    time.Duration      `json:"epoch_len_ns"`
	AttachEpoch int                `json:"attach_epoch"`
	Now         time.Time          `json:"now"`
	Done        bool               `json:"done"`
	Fleet       map[string]float64 `json:"fleet"`
	SLOFailing  int                `json:"slo_failing"`
	Quarantined int                `json:"quarantined,omitempty"`
	PerTenant   []TenantLive       `json:"per_tenant"`
}

// TenantSeries is one tenant's recorded series in the time-series
// payload.
type TenantSeries struct {
	Tenant string           `json:"tenant"`
	Series []obs.SeriesDump `json:"series"`
}

// FleetTimeSeries is the /fleet/timeseries payload: the fleet-aggregate
// series plus every tenant's, all bounded by the point budget.
type FleetTimeSeries struct {
	Budget    int              `json:"budget"`
	EpochLen  time.Duration    `json:"epoch_len_ns"`
	Epoch     int              `json:"epoch"`
	Fleet     []obs.SeriesDump `json:"fleet"`
	PerTenant []TenantSeries   `json:"per_tenant"`
}

// TenantSLO is one tenant's verdict set in the SLO payload.
type TenantSLO struct {
	Tenant    string        `json:"tenant"`
	Pass      bool          `json:"pass"`
	WorstBurn float64       `json:"worst_burn"`
	Verdicts  []obs.Verdict `json:"verdicts"`
	Replay    string        `json:"replay"`

	Quarantined      bool   `json:"quarantined,omitempty"`
	QuarantineEpoch  int    `json:"quarantine_epoch,omitempty"`
	QuarantineReason string `json:"quarantine_reason,omitempty"`
}

// AlertSummary is the alert plane's rollup inside the SLO payload: the
// deterministic tracker log's totals plus currently-firing objectives
// and the most recent alerts.
type AlertSummary struct {
	Total       uint64      `json:"total"`
	Breaches    int         `json:"breaches"`
	Recoveries  int         `json:"recoveries"`
	Quarantines int         `json:"quarantines"`
	SinkErrors  int         `json:"sink_errors,omitempty"`
	Firing      []string    `json:"firing,omitempty"`
	Recent      []obs.Alert `json:"recent,omitempty"`
}

// SLOStatus is the /fleet/slo payload: the effective config and
// objectives, fleet pass/fail counts, and per-tenant verdicts with the
// replay command that reproduces each tenant standalone.
type SLOStatus struct {
	Config             obs.SLOConfig  `json:"config"`
	Objectives         []obs.Objective `json:"objectives"`
	Passing            int            `json:"passing"`
	Failing            int            `json:"failing"`
	WorstBurn          float64        `json:"worst_burn"`
	FailingByObjective map[string]int `json:"failing_by_objective"`
	Quarantined        int            `json:"quarantined,omitempty"`
	Alerts             AlertSummary   `json:"alerts"`
	PerTenant          []TenantSLO    `json:"per_tenant"`
}

// KPIs builds the live KPI payload. Safe while the fleet advances:
// sampling and payload building serialize on the plane lock.
func (f *Fleet) KPIs() LiveKPIs {
	p := f.plane
	p.mu.Lock()
	defer p.mu.Unlock()
	out := LiveKPIs{
		Seed:        f.cfg.Seed,
		Tenants:     len(f.tenants),
		Epoch:       p.epoch,
		Epochs:      f.cfg.Epochs,
		EpochLen:    f.cfg.EpochLen,
		AttachEpoch: f.cfg.AttachEpoch,
		Now:         p.now,
		Done:        p.done,
		Fleet:       make(map[string]float64, len(p.fleet)),
	}
	for _, s := range p.fleet {
		out.Fleet[s.Name()] = s.Last()
	}
	for _, t := range f.tenants {
		// A quarantined tenant's series are frozen at its quarantine
		// epoch, so evaluating over them reports its last-known state.
		verdicts := obs.Evaluate(p.objectives, t.rec.Series)
		failed := obs.FailedObjectives(verdicts)
		row := TenantLive{
			Tenant:    t.id,
			Index:     t.idx,
			Seed:      t.seed,
			Profile:   t.prof.String(),
			Last:      make(map[string]float64, len(p.specs)),
			SLOPass:   len(failed) == 0,
			WorstBurn: obs.WorstBurn(verdicts),
			Failed:    failed,
			Replay:    replayCommand(f.cfg, t.idx, t.seed),
		}
		if t.quarantined() {
			row.Quarantined = true
			row.QuarantineEpoch = t.qEpoch
			row.QuarantineReason = t.qReason
			out.Quarantined++
		}
		for _, sp := range p.specs {
			row.Last[sp.Name] = t.rec.Series(sp.Name).Last()
		}
		if !row.SLOPass {
			out.SLOFailing++
		}
		out.PerTenant = append(out.PerTenant, row)
	}
	return out
}

// TimeSeries builds the /fleet/timeseries payload.
func (f *Fleet) TimeSeries() FleetTimeSeries {
	p := f.plane
	p.mu.Lock()
	defer p.mu.Unlock()
	out := FleetTimeSeries{
		Budget:   p.budget,
		EpochLen: f.cfg.EpochLen,
		Epoch:    p.epoch,
		Fleet:    make([]obs.SeriesDump, len(p.fleet)),
	}
	for i, s := range p.fleet {
		out.Fleet[i] = s.Dump()
	}
	for _, t := range f.tenants {
		out.PerTenant = append(out.PerTenant, TenantSeries{Tenant: t.id, Series: t.rec.Dump()})
	}
	return out
}

// SLOStatus builds the /fleet/slo payload, evaluating every tenant's
// objectives over its recorded series as of the last epoch boundary.
func (f *Fleet) SLOStatus() SLOStatus {
	p := f.plane
	p.mu.Lock()
	defer p.mu.Unlock()
	out := SLOStatus{
		Config:             f.cfg.SLO,
		Objectives:         p.objectives,
		FailingByObjective: make(map[string]int),
	}
	for _, t := range f.tenants {
		verdicts := obs.Evaluate(p.objectives, t.rec.Series)
		failed := obs.FailedObjectives(verdicts)
		row := TenantSLO{
			Tenant:    t.id,
			Pass:      len(failed) == 0,
			WorstBurn: obs.WorstBurn(verdicts),
			Verdicts:  verdicts,
			Replay:    replayCommand(f.cfg, t.idx, t.seed),
		}
		if t.quarantined() {
			row.Quarantined = true
			row.QuarantineEpoch = t.qEpoch
			row.QuarantineReason = t.qReason
			out.Quarantined++
		}
		if row.Pass {
			out.Passing++
		} else {
			out.Failing++
		}
		for _, name := range failed {
			out.FailingByObjective[name]++
		}
		if row.WorstBurn > out.WorstBurn {
			out.WorstBurn = row.WorstBurn
		}
		out.PerTenant = append(out.PerTenant, row)
	}
	out.Alerts = p.alertSummary()
	return out
}

// alertSummary rolls the tracker log up; callers hold the plane lock.
func (p *obsPlane) alertSummary() AlertSummary {
	log := p.tracker.Log()
	sum := AlertSummary{
		Total:      p.tracker.Seq(),
		SinkErrors: p.sinkErrs,
		Firing:     p.tracker.FiringKeys(),
	}
	for _, a := range log {
		switch a.Kind {
		case obs.AlertSLOBreach:
			sum.Breaches++
		case obs.AlertSLORecovery:
			sum.Recoveries++
		case obs.AlertQuarantine:
			sum.Quarantines++
		}
	}
	const recent = 20
	if len(log) > recent {
		log = log[len(log)-recent:]
	}
	sum.Recent = log
	return sum
}

// Alerts returns the full deterministic alert log so far (breaches,
// recoveries, quarantines), in sequence order.
func (f *Fleet) Alerts() []obs.Alert {
	f.plane.mu.Lock()
	defer f.plane.mu.Unlock()
	return f.plane.tracker.Log()
}

// replayCommand renders the kwo-fleet invocation that replays one
// tenant standalone, byte-identical to its in-fleet run — the portal's
// drill-down link from a fleet SLO breach to a reproducible single
// simulation.
func replayCommand(cfg Config, idx int, seed int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "kwo-fleet -epochs %d -epoch-len %s -attach-epoch %d",
		cfg.Epochs, cfg.EpochLen, cfg.AttachEpoch)
	if cfg.FaultRate > 0 {
		fmt.Fprintf(&b, " -fault-rate %s", strconv.FormatFloat(cfg.FaultRate, 'g', -1, 64))
	}
	if len(cfg.Backends) > 0 {
		fmt.Fprintf(&b, " -backends %s", strings.Join(cfg.Backends, ","))
	}
	fmt.Fprintf(&b, " -tenant %d -tenant-seed %d", idx, seed)
	return b.String()
}
