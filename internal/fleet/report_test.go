package fleet

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"kwo/internal/cdw"
)

func sampleKPIs() []TenantKPI {
	return []TenantKPI{
		{Tenant: "t00", Index: 0, Queries: 100, ActualCredits: 50, WithoutKeebo: 100,
			Savings: 50, SavingsPercent: 50, P99Latency: 2 * time.Second, ObsEvents: 10,
			EventsFingerprint: "aa", SnapshotFingerprint: "bb"},
		{Tenant: "t01", Index: 1, Queries: 200, ActualCredits: 90, WithoutKeebo: 100,
			Savings: 10, SavingsPercent: 10, P99Latency: 8 * time.Second, ObsEvents: 20,
			Faults: cdw.FaultCounts{AlterFailures: 3}},
		{Tenant: "t02", Index: 2, Queries: 300, ActualCredits: 80, WithoutKeebo: 100,
			Savings: 20, SavingsPercent: 20, P99Latency: 4 * time.Second,
			Degraded: true, DegradedTicks: 7, Recoveries: 1},
		{Tenant: "t03", Index: 3, Queries: 50, ActualCredits: 95, WithoutKeebo: 100,
			Savings: 5, SavingsPercent: 5, P99Latency: 9 * time.Second},
	}
}

func sampleConfig() Config {
	return Config{Tenants: 4, Seed: 9, Epochs: 10, EpochLen: time.Hour,
		AttachEpoch: 2, TopK: 2}
}

func TestRollupTotals(t *testing.T) {
	r := rollup(sampleConfig(), sampleKPIs())
	if r.TotalQueries != 650 {
		t.Errorf("TotalQueries = %d, want 650", r.TotalQueries)
	}
	if r.TotalActual != 315 || r.TotalWithout != 400 || r.TotalSavings != 85 {
		t.Errorf("credits rollup = %v/%v/%v", r.TotalActual, r.TotalWithout, r.TotalSavings)
	}
	if want := 100 * 85.0 / 400.0; r.SavingsPercent != want {
		t.Errorf("SavingsPercent = %v, want %v", r.SavingsPercent, want)
	}
	if r.MaxP99 != 9*time.Second {
		t.Errorf("MaxP99 = %v", r.MaxP99)
	}
	if want := (2 + 8 + 4 + 9) * time.Second / 4; r.MeanP99 != want {
		t.Errorf("MeanP99 = %v, want %v", r.MeanP99, want)
	}
	if r.DegradedTenants != 1 || r.FaultyTenants != 1 {
		t.Errorf("health rollup: degraded=%d faulty=%d", r.DegradedTenants, r.FaultyTenants)
	}
	if r.TotalFaults.AlterFailures != 3 {
		t.Errorf("TotalFaults = %+v", r.TotalFaults)
	}
	if r.ObsEvents != 30 {
		t.Errorf("ObsEvents = %d", r.ObsEvents)
	}
}

func TestTopRegressedOrdering(t *testing.T) {
	r := rollup(sampleConfig(), sampleKPIs())
	if len(r.TopRegressed) != 2 {
		t.Fatalf("TopK=2 but got %d", len(r.TopRegressed))
	}
	// The degraded tenant outranks everyone, then lowest savings.
	if r.TopRegressed[0].Tenant != "t02" || r.TopRegressed[1].Tenant != "t03" {
		t.Errorf("TopRegressed = %s, %s; want t02, t03",
			r.TopRegressed[0].Tenant, r.TopRegressed[1].Tenant)
	}
	// Ties on savings break by worse p99, then index.
	tied := []TenantKPI{
		{Tenant: "a", Index: 0, SavingsPercent: 10, P99Latency: time.Second},
		{Tenant: "b", Index: 1, SavingsPercent: 10, P99Latency: 5 * time.Second},
		{Tenant: "c", Index: 2, SavingsPercent: 10, P99Latency: 5 * time.Second},
	}
	top := topRegressed(tied, 5)
	if top[0].Tenant != "b" || top[1].Tenant != "c" || top[2].Tenant != "a" {
		t.Errorf("tie-break order = %s,%s,%s; want b,c,a", top[0].Tenant, top[1].Tenant, top[2].Tenant)
	}
}

func TestWriteCSVShape(t *testing.T) {
	r := rollup(sampleConfig(), sampleKPIs())
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("CSV has %d lines, want header + 4 rows", len(lines))
	}
	cols := strings.Split(lines[0], ",")
	for i, row := range lines[1:] {
		if got := len(strings.Split(row, ",")); got != len(cols) {
			t.Errorf("row %d has %d columns, header has %d", i, got, len(cols))
		}
	}
	if !strings.HasPrefix(lines[1], "t00,0,") {
		t.Errorf("row order broken: %s", lines[1])
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := rollup(sampleConfig(), sampleKPIs())
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("rollup JSON does not round-trip: %v", err)
	}
	if back.TotalQueries != r.TotalQueries || len(back.PerTenant) != len(r.PerTenant) {
		t.Errorf("round-trip lost data: %+v", back)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	a := rollup(sampleConfig(), sampleKPIs())
	b := rollup(sampleConfig(), sampleKPIs())
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical rollups disagree on fingerprint")
	}
	kpis := sampleKPIs()
	kpis[2].EventsFingerprint = "changed"
	c := rollup(sampleConfig(), kpis)
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("fingerprint blind to a tenant's event-stream change")
	}
}

func TestReportString(t *testing.T) {
	s := rollup(sampleConfig(), sampleKPIs()).String()
	for _, want := range []string{"4 tenants", "savings", "top regressed", "t02", "fingerprint:"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
