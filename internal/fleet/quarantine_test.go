package fleet

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kwo/internal/obs"
)

// TestQuarantineIsolation is the blast-radius property: a tenant that
// panics mid-epoch is quarantined — frozen at its last consistent
// state — and every OTHER tenant's fingerprints are byte-identical to a
// run where the panic never happened. Tenant seeds derive from the
// fleet seed and index, so the comparison baseline is the same-size
// fleet without the probe, not a smaller fleet.
func TestQuarantineIsolation(t *testing.T) {
	clean := testConfig(4, 2)
	cleanRep := runFleet(t, clean)

	cfg := clean
	cfg.PanicTenants = []int{2}
	cfg.PanicEpoch = 4
	sink := &obs.MemoryAlertSink{}
	cfg.AlertSink = sink
	rep := runFleet(t, cfg)

	if rep.QuarantinedTenants != 1 {
		t.Fatalf("QuarantinedTenants = %d, want 1", rep.QuarantinedTenants)
	}
	for i, k := range rep.PerTenant {
		ck := cleanRep.PerTenant[i]
		if i == 2 {
			if !k.Quarantined || k.QuarantineEpoch != 4 {
				t.Fatalf("probe tenant = quarantined %t epoch %d, want true 4", k.Quarantined, k.QuarantineEpoch)
			}
			if !strings.Contains(k.QuarantineReason, "panic") || !strings.Contains(k.QuarantineReason, "panic probe") {
				t.Errorf("probe reason = %q, want a panic-probe panic", k.QuarantineReason)
			}
			continue
		}
		if k.Quarantined {
			t.Errorf("tenant %s quarantined, only t02 should be", k.Tenant)
		}
		if k.EventsFingerprint != ck.EventsFingerprint || k.SnapshotFingerprint != ck.SnapshotFingerprint {
			t.Errorf("tenant %s fingerprints perturbed by t02's quarantine", k.Tenant)
		}
	}
	if n := sink.Count(obs.AlertQuarantine); n != 1 {
		t.Errorf("quarantine alerts delivered = %d, want exactly 1 (announced once)", n)
	}
	// The quarantined tenant leads the regression ranking: a frozen
	// tenant is the worst thing on the board.
	if len(rep.TopRegressed) == 0 || !rep.TopRegressed[0].Quarantined {
		t.Errorf("TopRegressed does not lead with the quarantined tenant")
	}
}

// TestQuarantineDeterminismAcrossWorkers: quarantine decisions,
// announcements, and every surviving tenant's state must be identical
// for any worker count — this is the -race CI target.
func TestQuarantineDeterminismAcrossWorkers(t *testing.T) {
	cfg := testConfig(4, 1)
	cfg.PanicTenants = []int{1}
	cfg.PanicEpoch = 3
	base := runFleet(t, cfg)
	sweep := []int{2, 4}
	if *fleetWorkers > 0 {
		sweep = []int{*fleetWorkers}
	}
	for _, w := range sweep {
		c := cfg
		c.Workers = w
		rep := runFleet(t, c)
		if rep.Fingerprint() != base.Fingerprint() {
			t.Errorf("workers=%d fingerprint %s != workers=1 %s", w, rep.Fingerprint(), base.Fingerprint())
		}
	}
}

// TestEpochDeadlineQuarantine drives the watchdog with a scripted wall
// clock: one tenant's epoch appears to take an hour, the rest are
// instant. Only the slow tenant is quarantined, and the run completes.
func TestEpochDeadlineQuarantine(t *testing.T) {
	clean := testConfig(3, 1)
	cleanRep := runFleet(t, clean)

	cfg := clean // Workers=1 → inline sequential fan-out, call order deterministic
	cfg.EpochDeadline = time.Second
	wall := time.Unix(0, 0)
	calls := 0
	cfg.Wall = func() time.Time {
		calls++
		// Each active tenant costs two calls per epoch (start, end), in
		// index order. Call 4 is tenant 1's end-of-step in epoch 1.
		if calls == 4 {
			return wall.Add(time.Hour)
		}
		return wall
	}
	rep := runFleet(t, cfg)

	if rep.QuarantinedTenants != 1 {
		t.Fatalf("QuarantinedTenants = %d, want 1", rep.QuarantinedTenants)
	}
	for i, k := range rep.PerTenant {
		if i == 1 {
			if !k.Quarantined || k.QuarantineEpoch != 1 || !strings.Contains(k.QuarantineReason, "epoch deadline exceeded") {
				t.Fatalf("slow tenant = %+v, want deadline quarantine at epoch 1", k)
			}
			continue
		}
		ck := cleanRep.PerTenant[i]
		if k.Quarantined || k.EventsFingerprint != ck.EventsFingerprint {
			t.Errorf("tenant %s perturbed by t01's deadline quarantine", k.Tenant)
		}
	}
}

// TestQuarantineFrozenSLOStable: a quarantined tenant's frozen series
// keep evaluating to the same verdicts on every scrape, its KPI row
// stays the frozen one, and repeated payload reads are byte-identical.
func TestQuarantineFrozenSLOStable(t *testing.T) {
	cfg := testConfig(3, 2)
	cfg.PanicTenants = []int{0}
	cfg.PanicEpoch = 3
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}

	first, err := json.Marshal(f.SLOStatus())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := json.Marshal(f.SLOStatus())
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(first) {
			t.Fatalf("SLO payload %d over a quarantined fleet not stable:\n%s\n%s", i, again, first)
		}
	}

	slo := f.SLOStatus()
	if slo.Quarantined != 1 {
		t.Fatalf("slo.Quarantined = %d, want 1", slo.Quarantined)
	}
	row := slo.PerTenant[0]
	if !row.Quarantined || row.QuarantineEpoch != 3 {
		t.Fatalf("t00 SLO row = %+v, want quarantined at epoch 3", row)
	}
	// Objectives still evaluate over the frozen rings — a quarantined
	// tenant keeps its verdicts, it does not vanish from the SLO board.
	if len(row.Verdicts) != len(slo.Objectives) {
		t.Fatalf("frozen tenant has %d verdicts, want %d", len(row.Verdicts), len(slo.Objectives))
	}

	kpis := f.KPIs()
	if kpis.Quarantined != 1 || !kpis.PerTenant[0].Quarantined {
		t.Fatalf("live KPIs = quarantined %d row %+v, want the freeze surfaced", kpis.Quarantined, kpis.PerTenant[0])
	}
	if sum := slo.Alerts; sum.Quarantines != 1 {
		t.Fatalf("alert summary quarantines = %d, want 1", sum.Quarantines)
	}
}

// TestResumeAcrossQuarantine: checkpoints taken before AND after a
// quarantine both resume to the uninterrupted run's exact fingerprint.
// Before: the panic probe fires live in the resumed process. After: the
// checkpoint's quarantine record is restored without re-panicking.
func TestResumeAcrossQuarantine(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(4, 2)
	cfg.PanicTenants = []int{1}
	cfg.PanicEpoch = 3
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 2
	base := runFleet(t, cfg)
	want := base.Fingerprint()

	for _, epoch := range []int{2, 6} {
		cp, err := LoadCheckpoint(filepath.Join(dir, checkpointFileName(epoch)))
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if epoch > 3 {
			if !cp.Tenants[1].Quarantined || cp.Tenants[1].QuarantineEpoch != 3 {
				t.Fatalf("epoch-%d checkpoint does not record the quarantine: %+v", epoch, cp.Tenants[1])
			}
		}
		f, err := Resume(cp, resumeBase(cfg))
		if err != nil {
			t.Fatalf("Resume from epoch %d: %v", epoch, err)
		}
		rep, err := f.Run()
		f.Close()
		if err != nil {
			t.Fatalf("Run after resume from epoch %d: %v", epoch, err)
		}
		if got := rep.Fingerprint(); got != want {
			t.Errorf("resume from epoch %d: fingerprint %s != uninterrupted %s", epoch, got, want)
		}
	}
}

// TestQuarantineCSVRow: the report CSV keeps one column layout for all
// tenants, quarantine reasons are sanitized for the format, and the
// fingerprint therefore covers quarantine state.
func TestQuarantineCSVRow(t *testing.T) {
	cfg := testConfig(3, 2)
	cfg.PanicTenants = []int{2}
	cfg.PanicEpoch = 4
	rep := runFleet(t, cfg)

	var b strings.Builder
	if err := rep.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want header + 3 rows", len(lines))
	}
	if !strings.Contains(lines[0], "quarantined,quarantine_epoch,quarantine_reason") {
		t.Fatalf("CSV header missing quarantine columns: %s", lines[0])
	}
	width := len(strings.Split(lines[0], ","))
	for i, line := range lines[1:] {
		if got := len(strings.Split(line, ",")); got != width {
			t.Errorf("row %d has %d fields, header has %d (reason not sanitized?): %s", i, got, width, line)
		}
	}
	if !strings.Contains(lines[3], ",true,4,") {
		t.Errorf("quarantined row does not carry true,4: %s", lines[3])
	}
}

func TestSanitizeCSV(t *testing.T) {
	in := "panic: a, b\nand more"
	if got, want := sanitizeCSV(in), "panic: a; b and more"; got != want {
		t.Fatalf("sanitizeCSV(%q) = %q, want %q", in, got, want)
	}
}
