package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/obs"
)

// TenantKPI is one tenant's row in the fleet rollup.
type TenantKPI struct {
	Tenant  string `json:"tenant"`
	Index   int    `json:"index"`
	Seed    int64  `json:"seed"`
	Profile string `json:"profile"`

	Queries        int           `json:"queries"`
	ActualCredits  float64       `json:"actual_credits"`
	WithoutKeebo   float64       `json:"without_keebo_credits"`
	Savings        float64       `json:"savings_credits"`
	SavingsPercent float64       `json:"savings_percent"`
	P99Latency     time.Duration `json:"p99_latency_ns"`

	ActionsApplied int  `json:"actions_applied"`
	Invoices       int  `json:"invoices"`
	ModelReady     bool `json:"model_ready"`

	Degraded      bool            `json:"degraded"`
	DegradedTicks int             `json:"degraded_ticks"`
	Recoveries    int             `json:"recoveries"`
	Faults        cdw.FaultCounts `json:"faults"`

	ObsEvents           uint64 `json:"obs_events"`
	EventsFingerprint   string `json:"events_fingerprint"`
	SnapshotFingerprint string `json:"snapshot_fingerprint"`

	// SLO verdicts evaluated over the tenant's recorded epoch series.
	SLOPass      bool          `json:"slo_pass"`
	SLOWorstBurn float64       `json:"slo_worst_burn"`
	SLOFailed    []string      `json:"slo_failed,omitempty"`
	SLO          []obs.Verdict `json:"slo,omitempty"`

	// Quarantine state: a tenant that panicked or blew the epoch
	// deadline is frozen out of subsequent epochs, and its row reports
	// the KPI captured at the quarantine epoch.
	Quarantined      bool   `json:"quarantined,omitempty"`
	QuarantineEpoch  int    `json:"quarantine_epoch,omitempty"`
	QuarantineReason string `json:"quarantine_reason,omitempty"`

	Err string `json:"err,omitempty"`
}

// Report is the cross-fleet rollup: fleet KPIs plus every tenant row
// and the top-K regressed tenants. It deliberately records nothing
// about worker counts or wall-clock time, so the serialized report is
// byte-identical for any pool size.
type Report struct {
	Seed        int64         `json:"seed"`
	Tenants     int           `json:"tenants"`
	Epochs      int           `json:"epochs"`
	EpochLen    time.Duration `json:"epoch_len_ns"`
	AttachEpoch int           `json:"attach_epoch"`

	TotalQueries   int     `json:"total_queries"`
	TotalActual    float64 `json:"total_actual_credits"`
	TotalWithout   float64 `json:"total_without_keebo_credits"`
	TotalSavings   float64 `json:"total_savings_credits"`
	SavingsPercent float64 `json:"savings_percent"`

	MeanP99 time.Duration `json:"mean_p99_ns"`
	MaxP99  time.Duration `json:"max_p99_ns"`

	TotalActions    int             `json:"total_actions_applied"`
	TotalInvoices   int             `json:"total_invoices"`
	DegradedTenants int             `json:"degraded_tenants"`
	FaultyTenants   int             `json:"faulty_tenants"`
	TotalFaults     cdw.FaultCounts `json:"total_faults"`
	ObsEvents       uint64          `json:"obs_events"`

	SLOFailingTenants     int            `json:"slo_failing_tenants"`
	SLOWorstBurn          float64        `json:"slo_worst_burn"`
	SLOFailingByObjective map[string]int `json:"slo_failing_by_objective,omitempty"`

	QuarantinedTenants int `json:"quarantined_tenants,omitempty"`

	PerTenant    []TenantKPI `json:"per_tenant"`
	TopRegressed []TenantKPI `json:"top_regressed"`
}

// rollup folds per-tenant KPIs (already in index order) into the fleet
// report.
func rollup(cfg Config, kpis []TenantKPI) *Report {
	r := &Report{
		Seed:        cfg.Seed,
		Tenants:     cfg.Tenants,
		Epochs:      cfg.Epochs,
		EpochLen:    cfg.EpochLen,
		AttachEpoch: cfg.AttachEpoch,
		PerTenant:   kpis,
	}
	var p99Sum time.Duration
	for _, k := range kpis {
		r.TotalQueries += k.Queries
		r.TotalActual += k.ActualCredits
		r.TotalWithout += k.WithoutKeebo
		r.TotalSavings += k.Savings
		r.TotalActions += k.ActionsApplied
		r.TotalInvoices += k.Invoices
		r.ObsEvents += k.ObsEvents
		if k.DegradedTicks > 0 || k.Degraded {
			r.DegradedTenants++
		}
		if k.Faults != (cdw.FaultCounts{}) {
			r.FaultyTenants++
		}
		r.TotalFaults.AlterFailures += k.Faults.AlterFailures
		r.TotalFaults.AlterAckLosts += k.Faults.AlterAckLosts
		r.TotalFaults.BillingFailures += k.Faults.BillingFailures
		p99Sum += k.P99Latency
		if k.P99Latency > r.MaxP99 {
			r.MaxP99 = k.P99Latency
		}
		if len(k.SLOFailed) > 0 {
			r.SLOFailingTenants++
			if r.SLOFailingByObjective == nil {
				r.SLOFailingByObjective = make(map[string]int)
			}
			for _, name := range k.SLOFailed {
				r.SLOFailingByObjective[name]++
			}
		}
		if k.SLOWorstBurn > r.SLOWorstBurn {
			r.SLOWorstBurn = k.SLOWorstBurn
		}
		if k.Quarantined {
			r.QuarantinedTenants++
		}
	}
	if len(kpis) > 0 {
		r.MeanP99 = p99Sum / time.Duration(len(kpis))
	}
	if r.TotalWithout > 0 {
		r.SavingsPercent = 100 * r.TotalSavings / r.TotalWithout
	}
	r.TopRegressed = topRegressed(kpis, cfg.TopK)
	return r
}

// topRegressed ranks tenants most-regressed-first: SLO-breaching
// tenants ahead of passing ones (worst error-budget burn first), then
// degraded tenants ahead of healthy ones, then by lowest savings
// percent, then by worst p99, then by index for a total (deterministic)
// order.
func topRegressed(kpis []TenantKPI, k int) []TenantKPI {
	ranked := append([]TenantKPI(nil), kpis...)
	sort.SliceStable(ranked, func(i, j int) bool {
		a, b := ranked[i], ranked[j]
		// Quarantined tenants lead outright: being frozen out of the
		// fleet is the most regressed a tenant can be.
		if a.Quarantined != b.Quarantined {
			return a.Quarantined
		}
		af, bf := len(a.SLOFailed) > 0, len(b.SLOFailed) > 0
		if af != bf {
			return af
		}
		if af && a.SLOWorstBurn != b.SLOWorstBurn {
			return a.SLOWorstBurn > b.SLOWorstBurn
		}
		ad, bd := a.Degraded || a.DegradedTicks > 0, b.Degraded || b.DegradedTicks > 0
		if ad != bd {
			return ad
		}
		if a.SavingsPercent != b.SavingsPercent {
			return a.SavingsPercent < b.SavingsPercent
		}
		if a.P99Latency != b.P99Latency {
			return a.P99Latency > b.P99Latency
		}
		return a.Index < b.Index
	})
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[:k]
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// sanitizeCSV keeps free-text fields (quarantine reasons carry panic
// messages) from breaking the fixed column count.
func sanitizeCSV(s string) string {
	s = strings.ReplaceAll(s, ",", ";")
	s = strings.ReplaceAll(s, "\n", " ")
	return s
}

// csvHeader is the rollup's column contract; WriteCSV and the
// fingerprint both build on it.
const csvHeader = "tenant,index,seed,profile,queries,actual_credits,without_keebo_credits," +
	"savings_credits,savings_percent,p99_ms,actions_applied,invoices,model_ready," +
	"degraded,degraded_ticks,recoveries,alter_failures,alter_ack_losts,billing_failures," +
	"obs_events,events_fingerprint,snapshot_fingerprint,slo_pass,slo_worst_burn,slo_failed," +
	"quarantined,quarantine_epoch,quarantine_reason,err"

// WriteCSV renders the per-tenant rollup as deterministic CSV: fixed
// column order, shortest-round-trip floats, one row per tenant in
// index order.
func (r *Report) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(csvHeader + "\n")
	for _, k := range r.PerTenant {
		fmt.Fprintf(&b, "%s,%d,%d,%s,%d,%s,%s,%s,%s,%s,%d,%d,%t,%t,%d,%d,%d,%d,%d,%d,%s,%s,%t,%s,%s,%t,%d,%s,%s\n",
			k.Tenant, k.Index, k.Seed, k.Profile, k.Queries,
			fmtFloat(k.ActualCredits), fmtFloat(k.WithoutKeebo), fmtFloat(k.Savings),
			fmtFloat(k.SavingsPercent), fmtFloat(float64(k.P99Latency)/float64(time.Millisecond)),
			k.ActionsApplied, k.Invoices, k.ModelReady,
			k.Degraded, k.DegradedTicks, k.Recoveries,
			k.Faults.AlterFailures, k.Faults.AlterAckLosts, k.Faults.BillingFailures,
			k.ObsEvents, k.EventsFingerprint, k.SnapshotFingerprint,
			k.SLOPass, fmtFloat(k.SLOWorstBurn), strings.Join(k.SLOFailed, ";"),
			k.Quarantined, k.QuarantineEpoch, sanitizeCSV(k.QuarantineReason), k.Err)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders the full report (fleet KPIs + per-tenant rows +
// top-K) as deterministic indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Fingerprint is the rollup's determinism fingerprint: a SHA-256 over
// the CSV rendering, which itself embeds every tenant's event and
// snapshot fingerprints. Two fleet runs agree on this hex string iff
// they agreed on every tenant's full behaviour.
func (r *Report) Fingerprint() string {
	var b strings.Builder
	_ = r.WriteCSV(&b)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// String renders the operator-facing fleet summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d tenants, %d epochs × %v (attach at epoch %d), seed %d\n",
		r.Tenants, r.Epochs, r.EpochLen, r.AttachEpoch, r.Seed)
	fmt.Fprintf(&b, "  spend:    %10.2f credits (without Keebo: %.2f)\n", r.TotalActual, r.TotalWithout)
	fmt.Fprintf(&b, "  savings:  %10.2f credits (%.1f%%)\n", r.TotalSavings, r.SavingsPercent)
	fmt.Fprintf(&b, "  queries:  %10d   p99 mean %v  max %v\n",
		r.TotalQueries, r.MeanP99.Round(10*time.Millisecond), r.MaxP99.Round(10*time.Millisecond))
	fmt.Fprintf(&b, "  actions:  %10d applied, %d invoices\n", r.TotalActions, r.TotalInvoices)
	fmt.Fprintf(&b, "  health:   %d/%d tenants degraded at some point, %d behind faulty APIs (%d alter failures, %d lost acks, %d billing failures)\n",
		r.DegradedTenants, r.Tenants, r.FaultyTenants,
		r.TotalFaults.AlterFailures, r.TotalFaults.AlterAckLosts, r.TotalFaults.BillingFailures)
	fmt.Fprintf(&b, "  events:   %10d trace events across tenant hubs\n", r.ObsEvents)
	fmt.Fprintf(&b, "  slo:      %d/%d tenants passing (worst burn %.2f)",
		r.Tenants-r.SLOFailingTenants, r.Tenants, r.SLOWorstBurn)
	if len(r.SLOFailingByObjective) > 0 {
		names := make([]string, 0, len(r.SLOFailingByObjective))
		for name := range r.SLOFailingByObjective {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, name := range names {
			parts = append(parts, fmt.Sprintf("%s×%d", name, r.SLOFailingByObjective[name]))
		}
		fmt.Fprintf(&b, "; failing: %s", strings.Join(parts, ", "))
	}
	b.WriteByte('\n')
	if r.QuarantinedTenants > 0 {
		fmt.Fprintf(&b, "  quarantined: %d tenants frozen out\n", r.QuarantinedTenants)
	}
	if len(r.TopRegressed) > 0 {
		fmt.Fprintf(&b, "  top regressed tenants:\n")
		for _, k := range r.TopRegressed {
			state := "healthy"
			if k.Quarantined {
				state = fmt.Sprintf("quarantined(epoch %d)", k.QuarantineEpoch)
			} else if k.Degraded {
				state = "degraded"
			} else if k.DegradedTicks > 0 {
				state = fmt.Sprintf("recovered(%d ticks)", k.DegradedTicks)
			}
			slo := "slo-pass"
			if len(k.SLOFailed) > 0 {
				slo = fmt.Sprintf("slo-fail(%s burn=%.2f)",
					strings.Join(k.SLOFailed, ";"), k.SLOWorstBurn)
			}
			fmt.Fprintf(&b, "    %s  seed=%-20d savings %5.1f%%  p99 %-8v %-22s %-12s %s\n",
				k.Tenant, k.Seed, k.SavingsPercent,
				k.P99Latency.Round(10*time.Millisecond), state, slo, k.Profile)
		}
	}
	fmt.Fprintf(&b, "  fingerprint: %s\n", r.Fingerprint())
	return b.String()
}
