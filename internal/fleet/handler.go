package fleet

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"kwo/internal/obs"
)

// TenantLabel is the label name distinguishing tenants in the merged
// metrics exposition.
const TenantLabel = "tenant"

// Handler serves the fleet ops surface:
//
//	/metrics          merged Prometheus exposition of every tenant's
//	                  registry, each sample behind tenant="tNN"
//	/events           recent trace events (?tenant=, ?n=, ?kind=);
//	                  without ?tenant= all tenants are emitted in
//	                  index order
//	/healthz          liveness probe
//	/                 plain-text index
//
// All endpoints are read-only and safe to scrape while the fleet is
// advancing: registries and buses carry their own locks, and the
// tenant list is immutable after New.
func Handler(f *Fleet) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obs.WriteMergedPrometheus(w, TenantLabel, f.Registries()); err != nil {
			fmt.Fprintf(w, "# write error: %v\n", err)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		n := 100
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v <= 0 {
				http.Error(w, "n must be a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		kind := obs.EventKind(r.URL.Query().Get("kind"))
		want := r.URL.Query().Get(TenantLabel)
		var b strings.Builder
		found := false
		for _, t := range f.tenants {
			if want != "" && t.id != want {
				continue
			}
			found = true
			for _, ev := range t.hub.Bus.Recent(n) {
				if kind != "" && ev.Kind != kind {
					continue
				}
				b.WriteString(ev.JSON())
				b.WriteByte('\n')
			}
		}
		if want != "" && !found {
			http.Error(w, fmt.Sprintf("unknown tenant %q", want), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprint(w, b.String())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "kwo fleet ops endpoint (%d tenants)\n\n/metrics\n/events?tenant=t00&n=100&kind=\n/healthz\n",
			len(f.tenants))
	})
	return mux
}
