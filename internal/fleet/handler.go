package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"kwo/internal/obs"
)

// TenantLabel is the label name distinguishing tenants in the merged
// metrics exposition.
const TenantLabel = "tenant"

// Handler serves the fleet ops surface:
//
//	/metrics          merged Prometheus exposition of every tenant's
//	                  registry, each sample behind tenant="tNN"
//	/events           recent trace events (?tenant=, ?n=, ?kind=a,b);
//	                  without ?tenant= all tenants are emitted in
//	                  index order
//	/fleet/kpis       live fleet + per-tenant KPIs with SLO verdicts
//	/fleet/timeseries recorded epoch series (fleet aggregate + per
//	                  tenant), downsampled to the point budget
//	/fleet/slo        per-tenant SLO verdicts, burn, and replay links
//	/healthz          liveness probe
//	/                 plain-text index
//
// All endpoints are read-only and safe to scrape while the fleet is
// advancing: registries and buses carry their own locks, the tenant
// list is immutable after New, and the /fleet/* payloads serialize on
// the observability plane's lock against epoch-boundary sampling.
func Handler(f *Fleet) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obs.WriteMergedPrometheus(w, TenantLabel, f.Registries()); err != nil {
			fmt.Fprintf(w, "# write error: %v\n", err)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		n := 100
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v <= 0 {
				http.Error(w, "n must be a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		kinds := obs.ParseKindFilter(r.URL.Query().Get("kind"))
		want := r.URL.Query().Get(TenantLabel)
		var b strings.Builder
		found := false
		for _, t := range f.tenants {
			if want != "" && t.id != want {
				continue
			}
			found = true
			for _, ev := range t.hub.Bus.Recent(n) {
				if !kinds.Match(ev.Kind) {
					continue
				}
				b.WriteString(ev.JSON())
				b.WriteByte('\n')
			}
		}
		if want != "" && !found {
			http.Error(w, fmt.Sprintf("unknown tenant %q", want), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprint(w, b.String())
	})
	mux.HandleFunc("/fleet/kpis", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, f.KPIs())
	})
	mux.HandleFunc("/fleet/timeseries", func(w http.ResponseWriter, r *http.Request) {
		want, ok := tenantParam(f, w, r)
		if !ok {
			return
		}
		ts := f.TimeSeries()
		if want != "" {
			filtered := ts.PerTenant[:0:0]
			for _, row := range ts.PerTenant {
				if row.Tenant == want {
					filtered = append(filtered, row)
				}
			}
			ts.PerTenant = filtered
		}
		writeJSON(w, ts)
	})
	mux.HandleFunc("/fleet/slo", func(w http.ResponseWriter, r *http.Request) {
		want, ok := tenantParam(f, w, r)
		if !ok {
			return
		}
		slo := f.SLOStatus()
		if want != "" {
			filtered := slo.PerTenant[:0:0]
			for _, row := range slo.PerTenant {
				if row.Tenant == want {
					filtered = append(filtered, row)
				}
			}
			slo.PerTenant = filtered
		}
		writeJSON(w, slo)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "kwo fleet ops endpoint (%d tenants)\n\n/metrics\n/events?tenant=t00&n=100&kind=a,b\n/fleet/kpis\n/fleet/timeseries\n/fleet/slo\n/healthz\n",
			len(f.tenants))
	})
	return mux
}

// tenantParam validates an optional ?tenant= query against the fleet's
// labels, mirroring /events' treatment of ?n=: a malformed value (not a
// tNN label) or a label outside the fleet answers 400 with a usable
// message instead of silently returning an unfiltered payload. The
// second result is false when a response was already written.
func tenantParam(f *Fleet, w http.ResponseWriter, r *http.Request) (string, bool) {
	q := r.URL.Query()
	if !q.Has(TenantLabel) {
		return "", true
	}
	want := q.Get(TenantLabel)
	if !validTenantLabel(want) {
		http.Error(w, fmt.Sprintf("tenant must be a tNN label, got %q", want), http.StatusBadRequest)
		return "", false
	}
	for _, t := range f.tenants {
		if t.id == want {
			return want, true
		}
	}
	http.Error(w, fmt.Sprintf("unknown tenant %q", want), http.StatusBadRequest)
	return "", false
}

// validTenantLabel reports whether s has the shape of a tenant label:
// 't' followed by at least two digits (the zero-padded index).
func validTenantLabel(s string) bool {
	if len(s) < 3 || s[0] != 't' {
		return false
	}
	for i := 1; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// writeJSON renders a /fleet/* payload as deterministic indented JSON
// (encoding/json sorts map keys and uses shortest round-trip floats).
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(w, "\n// encode error: %v\n", err)
	}
}
