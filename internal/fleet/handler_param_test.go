package fleet

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestHandlerTenantParamValidation: /fleet/timeseries and /fleet/slo
// reject malformed or unknown ?tenant= values with 400 (matching the
// ?n= contract on /fleet/timeseries) instead of silently returning an
// empty filter.
func TestHandlerTenantParamValidation(t *testing.T) {
	cfg := testConfig(3, 2)
	cfg.Epochs = 4
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	h := Handler(f)

	for _, path := range []string{"/fleet/timeseries", "/fleet/slo"} {
		for _, tc := range []struct {
			query  string
			errHas string
		}{
			{"?tenant=bogus", "tenant must be a tNN label"},
			{"?tenant=t1", "tenant must be a tNN label"}, // too few digits
			{"?tenant=t0x", "tenant must be a tNN label"},
			{"?tenant=", "tenant must be a tNN label"},
			{"?tenant=t99", "unknown tenant"},
		} {
			code, body := get(t, h, path+tc.query)
			if code != 400 {
				t.Errorf("%s%s status = %d, want 400", path, tc.query, code)
			}
			if !strings.Contains(body, tc.errHas) {
				t.Errorf("%s%s body = %q, want %q", path, tc.query, body, tc.errHas)
			}
		}
		// No tenant param at all: full payload, no error.
		if code, _ := get(t, h, path); code != 200 {
			t.Errorf("%s without tenant param status = %d, want 200", path, code)
		}
	}

	// A valid, known tenant filters the payload down to that tenant.
	code, body := get(t, h, "/fleet/timeseries?tenant=t01")
	if code != 200 {
		t.Fatalf("valid tenant filter status = %d: %s", code, body)
	}
	var ts FleetTimeSeries
	if err := json.Unmarshal([]byte(body), &ts); err != nil {
		t.Fatal(err)
	}
	if len(ts.PerTenant) != 1 || ts.PerTenant[0].Tenant != "t01" {
		t.Fatalf("filtered timeseries rows = %+v, want exactly t01", ts.PerTenant)
	}

	code, body = get(t, h, "/fleet/slo?tenant=t02")
	if code != 200 {
		t.Fatalf("valid tenant SLO filter status = %d: %s", code, body)
	}
	var slo SLOStatus
	if err := json.Unmarshal([]byte(body), &slo); err != nil {
		t.Fatal(err)
	}
	if len(slo.PerTenant) != 1 || slo.PerTenant[0].Tenant != "t02" {
		t.Fatalf("filtered SLO rows = %+v, want exactly t02", slo.PerTenant)
	}
}
