package fleet

// Crash-safe checkpoint/restore. A fleet checkpoint is an epoch-aligned
// snapshot of everything that evolves during a run: per-tenant series
// rings and recorder baselines, scheduler positions, RNG stream draw
// counts, event-stream hash state, billing watermarks, quarantine
// records, the fleet-aggregate series, and the alert tracker's log and
// dedup state. Checkpoints are written atomically (temp file + rename)
// on the epoch barrier, so a crash at any instant leaves either the
// previous complete checkpoint or the new complete checkpoint — never a
// torn file.
//
// Restore is replay-based. The fleet's event queue holds closures over
// live object graphs, which no snapshot format can serialize; instead
// Resume provisions a fresh fleet from the same config and
// deterministically re-executes epochs 1..k — the determinism contract
// the fleet already holds is what makes this exact — then verifies the
// replayed state against the checkpoint field by field before handing
// the fleet back. Replay is cheap relative to re-running the whole
// horizon and, critically, cannot drift silently: any divergence
// (version skew, config mismatch, tampered file) fails loudly at resume
// time rather than corrupting the continued run. External alert
// delivery is muted during replay so a resumed run never re-pages for
// alerts delivered before the crash.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"kwo/internal/obs"
)

// CheckpointVersion is the checkpoint file format version. Loaders
// reject any other value: a format change must not be silently
// misinterpreted as state.
const CheckpointVersion = 1

// Checkpoint is one epoch-aligned fleet snapshot.
type Checkpoint struct {
	Version int `json:"version"`
	// Epoch is how many epochs had completed when the snapshot was
	// taken; Now is the epoch boundary's virtual time (UnixNano).
	Epoch int   `json:"epoch"`
	Now   int64 `json:"now"`
	// Config pins the behaviour-affecting configuration. Resume refuses
	// a config that does not match: replaying under different knobs
	// would produce a different — wrong — state.
	Config CheckpointConfig `json:"config"`
	// FleetSeries are the fleet-aggregate series rings.
	FleetSeries []obs.SeriesSnapshot `json:"fleet_series"`
	// Alerts is the alert tracker's full deterministic state.
	Alerts AlertState `json:"alerts"`
	// Tenants holds one entry per tenant, in index order.
	Tenants []TenantCheckpoint `json:"tenants"`
}

// CheckpointConfig is the serializable, behaviour-affecting subset of
// Config. Operational knobs (Workers, TopK, CheckpointDir, sinks, the
// wall clock) deliberately do not appear: none of them influence
// simulated state, so a resume may freely change them.
type CheckpointConfig struct {
	Tenants      int           `json:"tenants"`
	Seed         int64         `json:"seed"`
	Epochs       int           `json:"epochs"`
	EpochLen     time.Duration `json:"epoch_len_ns"`
	AttachEpoch  int           `json:"attach_epoch"`
	FaultRate    float64       `json:"fault_rate,omitempty"`
	FaultTenants []int         `json:"fault_tenants,omitempty"`
	Backends     []string      `json:"backends,omitempty"`
	SLO          obs.SLOConfig `json:"slo"`
	SeriesBudget int           `json:"series_budget"`
	PanicTenants []int         `json:"panic_tenants,omitempty"`
	PanicEpoch   int           `json:"panic_epoch,omitempty"`
}

// checkpointConfigOf extracts the pinned subset from a defaulted Config.
func checkpointConfigOf(c Config) CheckpointConfig {
	return CheckpointConfig{
		Tenants:      c.Tenants,
		Seed:         c.Seed,
		Epochs:       c.Epochs,
		EpochLen:     c.EpochLen,
		AttachEpoch:  c.AttachEpoch,
		FaultRate:    c.FaultRate,
		FaultTenants: append([]int(nil), c.FaultTenants...),
		Backends:     append([]string(nil), c.Backends...),
		SLO:          c.SLO,
		SeriesBudget: c.SeriesBudget,
		PanicTenants: append([]int(nil), c.PanicTenants...),
		PanicEpoch:   c.PanicEpoch,
	}
}

// Merge overlays the checkpointed behaviour knobs onto base, keeping
// base's operational knobs (Workers, TopK, CheckpointDir, sinks, Wall).
// This is how a resuming process reconstructs the run config from the
// checkpoint plus its own flags.
func (cc CheckpointConfig) Merge(base Config) Config {
	base.Tenants = cc.Tenants
	base.Seed = cc.Seed
	base.Epochs = cc.Epochs
	base.EpochLen = cc.EpochLen
	base.AttachEpoch = cc.AttachEpoch
	base.FaultRate = cc.FaultRate
	base.FaultTenants = append([]int(nil), cc.FaultTenants...)
	base.Backends = append([]string(nil), cc.Backends...)
	base.SLO = cc.SLO
	base.SeriesBudget = cc.SeriesBudget
	base.PanicTenants = append([]int(nil), cc.PanicTenants...)
	base.PanicEpoch = cc.PanicEpoch
	return base
}

// matches reports the first behaviour-affecting difference between the
// checkpointed config and the resuming one, or nil if they agree.
func (cc CheckpointConfig) matches(other CheckpointConfig) error {
	a, err := json.Marshal(cc)
	if err != nil {
		return err
	}
	b, err := json.Marshal(other)
	if err != nil {
		return err
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("fleet: checkpoint config mismatch:\n  checkpoint: %s\n  resume:     %s", a, b)
	}
	return nil
}

// AlertState is the alert tracker's checkpointed state: sequence
// counter, currently-firing (tenant, objective) pairs, and the full
// deterministic log.
type AlertState struct {
	Seq    uint64      `json:"seq"`
	Firing []string    `json:"firing,omitempty"`
	Log    []obs.Alert `json:"log,omitempty"`
}

// TenantCheckpoint is one tenant's snapshot. For an active tenant it
// pins every evolving piece of state the replay must reproduce; for a
// quarantined tenant it records the freeze itself (epoch, reason,
// frozen KPI row) — the tenant never advances again, so nothing else
// need survive.
type TenantCheckpoint struct {
	Tenant  string `json:"tenant"`
	Index   int    `json:"index"`
	Seed    int64  `json:"seed"`
	Profile string `json:"profile"`

	SchedNow      int64  `json:"sched_now,omitempty"`
	SchedSteps    uint64 `json:"sched_steps,omitempty"`
	SchedSeq      uint64 `json:"sched_seq,omitempty"`
	Pending       int    `json:"pending,omitempty"`
	Scheduled     int    `json:"scheduled,omitempty"`
	CursorDone    bool   `json:"cursor_done,omitempty"`
	WorkloadDraws uint64 `json:"workload_draws,omitempty"`

	Events     uint64 `json:"events,omitempty"`
	EventsSum  string `json:"events_sum,omitempty"`
	EventsHash []byte `json:"events_hash,omitempty"`

	BillStart        int64 `json:"bill_start,omitempty"`
	BillingWatermark int64 `json:"billing_watermark,omitempty"`

	Recorder obs.RecorderSnapshot `json:"recorder"`

	AttachErr string `json:"attach_err,omitempty"`

	Quarantined      bool       `json:"quarantined,omitempty"`
	QuarantineEpoch  int        `json:"quarantine_epoch,omitempty"`
	QuarantineReason string     `json:"quarantine_reason,omitempty"`
	FrozenKPI        *TenantKPI `json:"frozen_kpi,omitempty"`
}

// checkpoint extracts the tenant's snapshot entry.
func (t *tenant) checkpoint() (TenantCheckpoint, error) {
	tc := TenantCheckpoint{
		Tenant:  t.id,
		Index:   t.idx,
		Seed:    t.seed,
		Profile: t.prof.String(),
	}
	if t.quarantined() {
		tc.Quarantined = true
		tc.QuarantineEpoch = t.qEpoch
		tc.QuarantineReason = t.qReason
		k := *t.frozen
		tc.FrozenKPI = &k
		return tc, nil
	}
	tc.SchedNow = t.sched.Now().UnixNano()
	tc.SchedSteps = t.sched.Steps()
	tc.SchedSeq = t.sched.Seq()
	tc.Pending = t.sched.Pending()
	tc.Scheduled = t.scheduled
	tc.CursorDone = t.cursor == nil
	tc.WorkloadDraws = t.wdraws.n
	tc.Events = t.events.n
	tc.EventsSum = t.events.Sum()
	state, err := t.events.State()
	if err != nil {
		return tc, fmt.Errorf("fleet: tenant %s: %w", t.id, err)
	}
	tc.EventsHash = state
	tc.Recorder = t.rec.Snapshot()
	if t.attachErr != nil {
		tc.AttachErr = t.attachErr.Error()
	}
	if t.eng != nil {
		if bs, err := t.eng.BillingPeriodStart(warehouseName); err == nil && !bs.IsZero() {
			tc.BillStart = bs.UnixNano()
		}
		if wm, err := t.eng.BillingWatermark(warehouseName); err == nil && !wm.IsZero() {
			tc.BillingWatermark = wm.UnixNano()
		}
	}
	return tc, nil
}

// Checkpoint takes a snapshot of the fleet at its current epoch
// boundary. Callers drive it between epochs (RunEpoch calls it on the
// barrier); the plane lock orders it against concurrent ops scrapes.
func (f *Fleet) Checkpoint() (*Checkpoint, error) {
	f.plane.mu.Lock()
	defer f.plane.mu.Unlock()
	cp := &Checkpoint{
		Version: CheckpointVersion,
		Epoch:   f.epoch,
		Now:     f.Now().UnixNano(),
		Config:  checkpointConfigOf(f.cfg),
	}
	cp.FleetSeries = make([]obs.SeriesSnapshot, len(f.plane.fleet))
	for i, s := range f.plane.fleet {
		cp.FleetSeries[i] = s.Snapshot()
	}
	cp.Alerts = AlertState{
		Seq:    f.plane.tracker.Seq(),
		Firing: f.plane.tracker.FiringKeys(),
		Log:    f.plane.tracker.Log(),
	}
	cp.Tenants = make([]TenantCheckpoint, len(f.tenants))
	for i, t := range f.tenants {
		tc, err := t.checkpoint()
		if err != nil {
			return nil, err
		}
		cp.Tenants[i] = tc
	}
	return cp, nil
}

// checkpointFileName is the epoch-stamped on-disk name; zero-padding
// keeps lexicographic order equal to epoch order.
func checkpointFileName(epoch int) string {
	return fmt.Sprintf("fleet-epoch-%06d.ckpt.json", epoch)
}

// WriteCheckpoint snapshots the fleet and writes it atomically into
// Config.CheckpointDir: the bytes land in a temp file first and the
// final name appears only via rename, so readers (and crashes) never
// see a partial checkpoint.
func (f *Fleet) WriteCheckpoint() error {
	if f.cfg.CheckpointDir == "" {
		return fmt.Errorf("fleet: WriteCheckpoint: no CheckpointDir configured")
	}
	cp, err := f.Checkpoint()
	if err != nil {
		return err
	}
	return writeCheckpointFile(filepath.Join(f.cfg.CheckpointDir, checkpointFileName(cp.Epoch)), cp)
}

func writeCheckpointFile(path string, cp *Checkpoint) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(cp, "", " ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	tf, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := tf.Write(append(data, '\n')); err != nil {
		tf.Close()
		os.Remove(tmp)
		return err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		os.Remove(tmp)
		return err
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCheckpoint reads and validates one checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("fleet: checkpoint %s: %w", path, err)
	}
	if err := cp.validate(); err != nil {
		return nil, fmt.Errorf("fleet: checkpoint %s: %w", path, err)
	}
	return &cp, nil
}

// validate checks the structural invariants a loaded checkpoint must
// hold before anything trusts it.
func (cp *Checkpoint) validate() error {
	if cp.Version != CheckpointVersion {
		return fmt.Errorf("unsupported version %d (this build reads %d)", cp.Version, CheckpointVersion)
	}
	if cp.Epoch < 1 {
		return fmt.Errorf("invalid epoch %d", cp.Epoch)
	}
	if cp.Config.Tenants <= 0 || len(cp.Tenants) != cp.Config.Tenants {
		return fmt.Errorf("has %d tenant entries, config says %d", len(cp.Tenants), cp.Config.Tenants)
	}
	if cp.Epoch > cp.Config.Epochs {
		return fmt.Errorf("epoch %d beyond configured horizon %d", cp.Epoch, cp.Config.Epochs)
	}
	for i, tc := range cp.Tenants {
		if tc.Index != i {
			return fmt.Errorf("tenant entry %d has index %d", i, tc.Index)
		}
		if tc.Quarantined && tc.FrozenKPI == nil {
			return fmt.Errorf("tenant %s quarantined without a frozen KPI", tc.Tenant)
		}
		if tc.Quarantined && (tc.QuarantineEpoch < 1 || tc.QuarantineEpoch > cp.Epoch) {
			return fmt.Errorf("tenant %s quarantine epoch %d outside [1, %d]",
				tc.Tenant, tc.QuarantineEpoch, cp.Epoch)
		}
	}
	return nil
}

// LatestCheckpoint returns the newest loadable checkpoint in dir. Files
// that fail to load (torn leftovers, foreign files, version skew) are
// skipped with their errors collected, so one bad file cannot mask an
// older good checkpoint behind it.
func LatestCheckpoint(dir string) (*Checkpoint, string, error) {
	names, err := filepath.Glob(filepath.Join(dir, "fleet-epoch-*.ckpt.json"))
	if err != nil {
		return nil, "", err
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	var errs []string
	for _, name := range names {
		cp, err := LoadCheckpoint(name)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		return cp, name, nil
	}
	if len(errs) > 0 {
		return nil, "", fmt.Errorf("fleet: no loadable checkpoint in %s: %s", dir, strings.Join(errs, "; "))
	}
	return nil, "", fmt.Errorf("fleet: no checkpoint found in %s", dir)
}

// Resume reconstructs a running fleet from a checkpoint: provision a
// fresh fleet under the merged config, deterministically replay epochs
// 1..cp.Epoch (external alert delivery muted, watchdog off), and verify
// the replayed state against the checkpoint field by field. The
// returned fleet stands exactly where the interrupted one stood —
// continuing it produces a byte-identical report fingerprint to a run
// that was never interrupted.
func Resume(cp *Checkpoint, base Config) (*Fleet, error) {
	if err := cp.validate(); err != nil {
		return nil, fmt.Errorf("fleet: resume: %w", err)
	}
	cfg, err := cp.Config.Merge(base).withDefaults()
	if err != nil {
		return nil, fmt.Errorf("fleet: resume: %w", err)
	}
	if err := cp.Config.matches(checkpointConfigOf(cfg)); err != nil {
		return nil, err
	}
	f, err := New(cfg)
	if err != nil {
		return nil, err
	}
	for i, tc := range cp.Tenants {
		if tc.Quarantined {
			k := *tc.FrozenKPI
			f.tenants[i].qResume = &resumeQuarantine{
				epoch:  tc.QuarantineEpoch,
				reason: tc.QuarantineReason,
				kpi:    &k,
			}
		}
	}
	f.replaying = true
	f.plane.mute = true
	for f.epoch < cp.Epoch {
		if err := f.RunEpoch(); err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: resume replay: %w", err)
		}
	}
	f.replaying = false
	f.plane.mute = false
	if err := f.verifyCheckpoint(cp); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// verifyCheckpoint re-snapshots the replayed fleet and compares it to
// the checkpoint. Replay determinism makes equality the expected case;
// any difference means the checkpoint does not belong to this config or
// build, and the resume must not continue.
func (f *Fleet) verifyCheckpoint(cp *Checkpoint) error {
	got, err := f.Checkpoint()
	if err != nil {
		return fmt.Errorf("fleet: resume verify: %w", err)
	}
	if got.Epoch != cp.Epoch || got.Now != cp.Now {
		return fmt.Errorf("fleet: resume verify: replay stands at epoch %d/now %d, checkpoint has %d/%d",
			got.Epoch, got.Now, cp.Epoch, cp.Now)
	}
	if err := jsonEq("fleet series", got.FleetSeries, cp.FleetSeries); err != nil {
		return err
	}
	if err := jsonEq("alert state", got.Alerts, cp.Alerts); err != nil {
		return err
	}
	for i := range cp.Tenants {
		want, have := cp.Tenants[i], got.Tenants[i]
		if want.Quarantined {
			// The freeze was restored, not re-executed; epoch and reason
			// are the record to check, the KPI row came from the
			// checkpoint itself.
			if !have.Quarantined || have.QuarantineEpoch != want.QuarantineEpoch ||
				have.QuarantineReason != want.QuarantineReason {
				return fmt.Errorf("fleet: resume verify: tenant %s quarantine state diverged", want.Tenant)
			}
			continue
		}
		if have.Quarantined {
			return fmt.Errorf("fleet: resume verify: tenant %s quarantined during replay: %s",
				want.Tenant, have.QuarantineReason)
		}
		if err := jsonEq("tenant "+want.Tenant, have, want); err != nil {
			return err
		}
	}
	return nil
}

// jsonEq compares two values by their deterministic JSON encodings and
// reports the first divergence with both renderings.
func jsonEq(what string, got, want any) error {
	g, err := json.Marshal(got)
	if err != nil {
		return err
	}
	w, err := json.Marshal(want)
	if err != nil {
		return err
	}
	if !bytes.Equal(g, w) {
		return fmt.Errorf("fleet: resume verify: %s diverged\n  replayed:   %s\n  checkpoint: %s", what, g, w)
	}
	return nil
}

// CheckpointView rebuilds the fleet ops payloads (live KPIs, time
// series, SLO status) from a checkpoint alone — no replay, no fleet.
// The portal uses it to inspect a crashed run offline.
func CheckpointView(cp *Checkpoint) (LiveKPIs, FleetTimeSeries, SLOStatus, error) {
	var (
		kpis LiveKPIs
		ts   FleetTimeSeries
		slo  SLOStatus
	)
	if err := cp.validate(); err != nil {
		return kpis, ts, slo, fmt.Errorf("fleet: checkpoint view: %w", err)
	}
	cfg, err := cp.Config.Merge(Config{}).withDefaults()
	if err != nil {
		return kpis, ts, slo, fmt.Errorf("fleet: checkpoint view: %w", err)
	}
	objectives := cfg.SLO.Objectives()

	kpis = LiveKPIs{
		Seed:        cfg.Seed,
		Tenants:     cfg.Tenants,
		Epoch:       cp.Epoch,
		Epochs:      cfg.Epochs,
		EpochLen:    cfg.EpochLen,
		AttachEpoch: cfg.AttachEpoch,
		Now:         time.Unix(0, cp.Now).UTC(),
		Done:        cp.Epoch == cfg.Epochs,
		Fleet:       make(map[string]float64, len(cp.FleetSeries)),
	}
	ts = FleetTimeSeries{
		Budget:   cfg.SeriesBudget,
		EpochLen: cfg.EpochLen,
		Epoch:    cp.Epoch,
	}
	for _, snap := range cp.FleetSeries {
		s, err := obs.RestoreSeries(snap)
		if err != nil {
			return kpis, ts, slo, fmt.Errorf("fleet: checkpoint view: %w", err)
		}
		kpis.Fleet[s.Name()] = s.Last()
		ts.Fleet = append(ts.Fleet, s.Dump())
	}
	slo = SLOStatus{
		Config:             cfg.SLO,
		Objectives:         objectives,
		FailingByObjective: make(map[string]int),
	}
	for _, tc := range cp.Tenants {
		series := make(map[string]*obs.Series, len(tc.Recorder.Series))
		var dumps []obs.SeriesDump
		for _, snap := range tc.Recorder.Series {
			s, err := obs.RestoreSeries(snap)
			if err != nil {
				return kpis, ts, slo, fmt.Errorf("fleet: checkpoint view: tenant %s: %w", tc.Tenant, err)
			}
			series[s.Name()] = s
			dumps = append(dumps, s.Dump())
		}
		lookup := func(name string) *obs.Series { return series[name] }
		verdicts := obs.Evaluate(objectives, lookup)
		failed := obs.FailedObjectives(verdicts)

		live := TenantLive{
			Tenant:    tc.Tenant,
			Index:     tc.Index,
			Seed:      tc.Seed,
			Profile:   tc.Profile,
			Last:      make(map[string]float64, len(series)),
			SLOPass:   len(failed) == 0,
			WorstBurn: obs.WorstBurn(verdicts),
			Failed:    failed,
			Replay:    replayCommand(cfg, tc.Index, tc.Seed),
		}
		for name, s := range series {
			live.Last[name] = s.Last()
		}
		row := TenantSLO{
			Tenant:    tc.Tenant,
			Pass:      live.SLOPass,
			WorstBurn: live.WorstBurn,
			Verdicts:  verdicts,
			Replay:    live.Replay,
		}
		if tc.Quarantined {
			live.Quarantined, row.Quarantined = true, true
			live.QuarantineEpoch, row.QuarantineEpoch = tc.QuarantineEpoch, tc.QuarantineEpoch
			live.QuarantineReason, row.QuarantineReason = tc.QuarantineReason, tc.QuarantineReason
			kpis.Quarantined++
			slo.Quarantined++
		}
		if !live.SLOPass {
			kpis.SLOFailing++
		}
		if row.Pass {
			slo.Passing++
		} else {
			slo.Failing++
		}
		for _, name := range failed {
			slo.FailingByObjective[name]++
		}
		if row.WorstBurn > slo.WorstBurn {
			slo.WorstBurn = row.WorstBurn
		}
		kpis.PerTenant = append(kpis.PerTenant, live)
		ts.PerTenant = append(ts.PerTenant, TenantSeries{Tenant: tc.Tenant, Series: dumps})
		slo.PerTenant = append(slo.PerTenant, row)
	}
	slo.Alerts = alertSummaryOf(cp.Alerts)
	return kpis, ts, slo, nil
}

// alertSummaryOf rolls a checkpointed alert state up the same way the
// live plane does.
func alertSummaryOf(st AlertState) AlertSummary {
	sum := AlertSummary{Total: st.Seq, Firing: st.Firing}
	log := st.Log
	for _, a := range log {
		switch a.Kind {
		case obs.AlertSLOBreach:
			sum.Breaches++
		case obs.AlertSLORecovery:
			sum.Recoveries++
		case obs.AlertQuarantine:
			sum.Quarantines++
		}
	}
	const recent = 20
	if len(log) > recent {
		log = log[len(log)-recent:]
	}
	sum.Recent = log
	return sum
}
