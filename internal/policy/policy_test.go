package policy

import (
	"testing"
	"testing/quick"
	"time"

	"kwo/internal/action"
	"kwo/internal/cdw"
	"kwo/internal/monitor"
	"kwo/internal/simclock"
)

var t0 = simclock.Epoch // Monday 00:00 UTC

func cfg() cdw.Config {
	return cdw.Config{
		Name: "BI_WH", Size: cdw.SizeLarge, MinClusters: 1, MaxClusters: 4,
		AutoSuspend: 5 * time.Minute, AutoResume: true,
	}
}

func at(day time.Weekday, hour, min int) time.Time {
	// Epoch is Monday; offset to the requested weekday.
	offset := (int(day) - int(time.Monday) + 7) % 7
	return t0.Add(time.Duration(offset)*24*time.Hour +
		time.Duration(hour)*time.Hour + time.Duration(min)*time.Minute)
}

func TestRuleActiveAt(t *testing.T) {
	r := Rule{Days: []time.Weekday{time.Monday}, StartMinute: 9 * 60, EndMinute: 10 * 60}
	if !r.ActiveAt(at(time.Monday, 9, 30)) {
		t.Fatal("inactive inside window")
	}
	if r.ActiveAt(at(time.Monday, 10, 0)) {
		t.Fatal("active at exclusive end")
	}
	if r.ActiveAt(at(time.Tuesday, 9, 30)) {
		t.Fatal("active on wrong day")
	}
	allDay := Rule{Days: []time.Weekday{time.Friday}}
	if !allDay.ActiveAt(at(time.Friday, 23, 59)) || allDay.ActiveAt(at(time.Thursday, 12, 0)) {
		t.Fatal("all-day rule wrong")
	}
	wrap := Rule{StartMinute: 22 * 60, EndMinute: 6 * 60}
	if !wrap.ActiveAt(at(time.Monday, 23, 0)) || !wrap.ActiveAt(at(time.Monday, 5, 0)) ||
		wrap.ActiveAt(at(time.Monday, 12, 0)) {
		t.Fatal("wrapping window wrong")
	}
}

func TestNoDownsizeRule(t *testing.T) {
	cs := Constraints{{
		Name: "protect mornings", Days: []time.Weekday{time.Monday},
		StartMinute: 9 * 60, EndMinute: 10 * 60, NoDownsize: true,
	}}
	down := action.Action{Kind: action.SizeDown}
	if cs.Allows(at(time.Monday, 9, 15), cfg(), down) {
		t.Fatal("downsize allowed during protected window")
	}
	if !cs.Allows(at(time.Monday, 11, 0), cfg(), down) {
		t.Fatal("downsize blocked outside window")
	}
	if !cs.Allows(at(time.Monday, 9, 15), cfg(), action.Action{Kind: action.SizeUp}) {
		t.Fatal("upsize blocked by NoDownsize rule")
	}
}

func TestMinSizeEnforcement(t *testing.T) {
	min := cdw.SizeMedium
	cs := Constraints{{Name: "floor", MinSize: &min}}
	c := cfg()
	c.Size = cdw.SizeMedium
	if cs.Allows(t0, c, action.Action{Kind: action.SizeDown}) {
		t.Fatal("downsize below MinSize allowed")
	}
	c.Size = cdw.SizeLarge
	if !cs.Allows(t0, c, action.Action{Kind: action.SizeDown}) {
		t.Fatal("downsize to MinSize blocked")
	}
}

func TestMinClustersEnforcement(t *testing.T) {
	three := 3
	cs := Constraints{{Name: "clusters", MinClusters: &three}}
	c := cfg()
	c.MaxClusters = 3
	if cs.Allows(t0, c, action.Action{Kind: action.ClustersDown}) {
		t.Fatal("cluster reduction below floor allowed")
	}
	c.MaxClusters = 4
	if !cs.Allows(t0, c, action.Action{Kind: action.ClustersDown}) {
		t.Fatal("cluster reduction to floor blocked")
	}
}

func TestRequiredEnforcesWindow(t *testing.T) {
	// The paper's example: 9:00–9:30 the BI warehouse must be X-Large
	// with a minimum of 3 clusters.
	xl := cdw.SizeXLarge
	three := 3
	cs := Constraints{{
		Name: "morning rush", StartMinute: 9 * 60, EndMinute: 9*60 + 30,
		EnforceSize: &xl, MinClusters: &three,
	}}
	c := cfg() // Large, 1-4 clusters
	alt := cs.Required(at(time.Monday, 9, 5), c)
	if alt.Size == nil || *alt.Size != cdw.SizeXLarge {
		t.Fatalf("required size = %+v", alt.Size)
	}
	if alt.MinClusters == nil || *alt.MinClusters != 3 {
		t.Fatalf("required min clusters = %+v", alt.MinClusters)
	}
	// Outside the window: nothing required.
	if got := cs.Required(at(time.Monday, 10, 0), c); !got.IsZero() {
		t.Fatalf("required outside window = %+v", got)
	}
	// Already compliant: nothing required.
	c.Size = cdw.SizeXLarge
	c.MinClusters, c.MaxClusters = 3, 4
	if got := cs.Required(at(time.Monday, 9, 5), c); !got.IsZero() {
		t.Fatalf("required when compliant = %+v", got)
	}
}

func TestFilterPicksNextBest(t *testing.T) {
	cs := Constraints{{Name: "nodown", NoDownsize: true}}
	ranked := []action.Action{
		{Kind: action.SizeDown},
		{Kind: action.SuspendShorter},
		{Kind: action.NoOp},
	}
	got := cs.Filter(t0, cfg(), ranked)
	if got.Kind != action.SuspendShorter {
		t.Fatalf("filter picked %v, want suspend-shorter", got.Kind)
	}
	// Everything blocked → NoOp.
	all := Constraints{{Name: "freeze", NoDownsize: true, NoUpsize: true,
		NoSuspendChange: true, NoClusterChange: true}}
	got = all.Filter(t0, cfg(), ranked[:2])
	if got.Kind != action.NoOp {
		t.Fatalf("fully blocked filter = %v, want no-op", got.Kind)
	}
}

func TestRuleValidate(t *testing.T) {
	bad := []Rule{
		{Name: "m", StartMinute: -1},
		{Name: "m", EndMinute: 24*60 + 1},
		{Name: "s", MinSize: func() *cdw.Size { s := cdw.Size(99); return &s }()},
		{Name: "o", MinSize: cdw.SizeP(cdw.SizeLarge), MaxSize: cdw.SizeP(cdw.SizeSmall)},
		{Name: "c", MinClusters: cdw.IntP(0)},
	}
	for i, r := range bad {
		if r.Validate() == nil {
			t.Errorf("bad rule %d accepted", i)
		}
	}
	good := Rule{Name: "ok", StartMinute: 60, EndMinute: 120, MinClusters: cdw.IntP(2)}
	if err := (Constraints{good}).Validate(); err != nil {
		t.Fatalf("good rule rejected: %v", err)
	}
}

func TestSliderTuningMonotone(t *testing.T) {
	sliders := []Slider{BestPerformance, GoodPerformance, Balanced, LowCost, LowestCost}
	for i := 1; i < len(sliders); i++ {
		a, b := sliders[i-1].Tuning(), sliders[i].Tuning()
		if b.PerfPenalty >= a.PerfPenalty {
			t.Errorf("%v→%v: PerfPenalty not decreasing", sliders[i-1], sliders[i])
		}
		if b.MaxLatencyFactor <= a.MaxLatencyFactor {
			t.Errorf("%v→%v: MaxLatencyFactor not increasing", sliders[i-1], sliders[i])
		}
		if b.MaxAddedLatency <= a.MaxAddedLatency {
			t.Errorf("%v→%v: MaxAddedLatency not increasing", sliders[i-1], sliders[i])
		}
		if b.MaxQueueRisk < a.MaxQueueRisk {
			t.Errorf("%v→%v: MaxQueueRisk decreasing", sliders[i-1], sliders[i])
		}
		if b.MinSavingsToAct >= a.MinSavingsToAct {
			t.Errorf("%v→%v: MinSavingsToAct not decreasing", sliders[i-1], sliders[i])
		}
		if b.Headroom >= a.Headroom {
			t.Errorf("%v→%v: Headroom not decreasing", sliders[i-1], sliders[i])
		}
		if b.CooldownTicks >= a.CooldownTicks {
			t.Errorf("%v→%v: CooldownTicks not decreasing", sliders[i-1], sliders[i])
		}
	}
	if !Balanced.Valid() || Slider(0).Valid() || Slider(6).Valid() {
		t.Fatal("Valid() wrong")
	}
	for _, s := range sliders {
		if s.String() == "" {
			t.Fatal("empty slider label")
		}
	}
}

func TestBackoffRevertsRecentAction(t *testing.T) {
	b := NewBackoff(2, 4)
	healthy := monitor.Snapshot{}
	degraded := monitor.Snapshot{Degraded: true}

	b.Tick(healthy)
	b.Record(action.Action{Kind: action.SizeDown, Warehouse: "W"})
	d := b.Tick(degraded)
	if d.Revert == nil {
		t.Fatal("no revert after degradation inside guard window")
	}
	if d.Revert.Kind != action.SizeUp || !d.Revert.Reverts {
		t.Fatalf("revert = %+v, want size-up revert", d.Revert)
	}
	if !d.Conservative {
		t.Fatal("not conservative after revert")
	}
	if b.Reverts() != 1 {
		t.Fatalf("reverts = %d", b.Reverts())
	}
	// Cooldown holds for the configured ticks.
	for i := 0; i < 4; i++ {
		if d := b.Tick(healthy); !d.Conservative {
			t.Fatalf("cooldown released early at tick %d", i)
		}
	}
	if d := b.Tick(healthy); d.Conservative {
		t.Fatal("cooldown never released")
	}
}

func TestBackoffGuardExpires(t *testing.T) {
	b := NewBackoff(2, 4)
	healthy := monitor.Snapshot{}
	b.Tick(healthy)
	b.Record(action.Action{Kind: action.SizeDown, Warehouse: "W"})
	b.Tick(healthy)
	b.Tick(healthy)
	// Guard window (2 ticks) has passed; degradation now is not ours.
	d := b.Tick(monitor.Snapshot{Degraded: true})
	if d.Revert != nil {
		t.Fatalf("stale action reverted: %+v", d.Revert)
	}
	if !d.Conservative {
		t.Fatal("workload spike did not force conservative mode")
	}
}

func TestBackoffIgnoresNoOp(t *testing.T) {
	b := NewBackoff(2, 4)
	b.Tick(monitor.Snapshot{})
	b.Record(action.Action{Kind: action.NoOp})
	d := b.Tick(monitor.Snapshot{Degraded: true})
	if d.Revert != nil {
		t.Fatal("reverted a no-op")
	}
}

func TestBackoffDoubleRevertSuppressed(t *testing.T) {
	b := NewBackoff(3, 4)
	b.Tick(monitor.Snapshot{})
	b.Record(action.Action{Kind: action.ClustersDown, Warehouse: "W"})
	if d := b.Tick(monitor.Snapshot{Degraded: true}); d.Revert == nil {
		t.Fatal("first revert missing")
	}
	// Still degraded next tick: the same action must not revert twice.
	if d := b.Tick(monitor.Snapshot{Degraded: true}); d.Revert != nil {
		t.Fatal("same action reverted twice")
	}
}

// Property: Filter never returns an action the constraints disallow.
func TestPropertyFilterSound(t *testing.T) {
	f := func(kinds []uint8, noDown, noUp, noSusp, noClus bool) bool {
		cs := Constraints{{Name: "p", NoDownsize: noDown, NoUpsize: noUp,
			NoSuspendChange: noSusp, NoClusterChange: noClus}}
		var ranked []action.Action
		for _, k := range kinds {
			ranked = append(ranked, action.Action{Kind: action.Kind(int(k) % action.NumKinds)})
		}
		got := cs.Filter(t0, cfg(), ranked)
		return cs.Allows(t0, cfg(), got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Required output, applied, is compliant (idempotent fixpoint).
func TestPropertyRequiredIdempotent(t *testing.T) {
	f := func(sizeIdx uint8, minC uint8, enforce uint8) bool {
		es := cdw.Size(enforce % 10)
		mc := int(minC%4) + 1
		cs := Constraints{{Name: "e", EnforceSize: &es, MinClusters: &mc}}
		c := cfg()
		c.Size = cdw.Size(sizeIdx % 10)
		alt := cs.Required(t0, c)
		after := alt.Apply(c)
		return cs.Required(t0, after).IsZero()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
