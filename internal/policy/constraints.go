// Package policy implements the customer-facing control surface of KWO:
// hard constraint rules (§4.1 "Constraints"), the five-position
// cost/performance slider (§4.1 "Sliders") with its mapping to internal
// hyper-parameters, and the backoff controller that turns real-time
// monitor feedback into self-correction (§4.3, §4.4).
package policy

import (
	"fmt"
	"time"

	"kwo/internal/action"
	"kwo/internal/cdw"
)

// Rule is one customer constraint: during a time window (certain hours
// of certain days) it can forbid classes of optimizations or enforce
// resource floors/ceilings. "KWO's automated optimizations always
// respect the customer provided rules, treating them as hard business
// constraints."
type Rule struct {
	Name string

	// Days restricts the rule to these weekdays; empty means every day.
	Days []time.Weekday
	// StartMinute/EndMinute bound the rule within the day, minutes
	// after midnight UTC, window [Start, End). Both zero means the
	// whole day. Windows may wrap midnight (Start > End).
	StartMinute int
	EndMinute   int

	// Prohibitions.
	NoDownsize      bool // e.g. "cannot be downsized even if underutilized"
	NoUpsize        bool
	NoSuspendChange bool
	NoClusterChange bool

	// Enforcements, applied while the rule is active.
	MinSize     *cdw.Size
	MaxSize     *cdw.Size
	MinClusters *int // e.g. "a minimum of 3 clusters"
	EnforceSize *cdw.Size
}

// Validate reports the first problem with the rule.
func (r Rule) Validate() error {
	if r.StartMinute < 0 || r.StartMinute >= 24*60 ||
		r.EndMinute < 0 || r.EndMinute > 24*60 {
		return fmt.Errorf("policy: rule %q: minutes out of range", r.Name)
	}
	if r.MinSize != nil && !r.MinSize.Valid() {
		return fmt.Errorf("policy: rule %q: invalid MinSize", r.Name)
	}
	if r.MaxSize != nil && !r.MaxSize.Valid() {
		return fmt.Errorf("policy: rule %q: invalid MaxSize", r.Name)
	}
	if r.MinSize != nil && r.MaxSize != nil && *r.MinSize > *r.MaxSize {
		return fmt.Errorf("policy: rule %q: MinSize > MaxSize", r.Name)
	}
	if r.MinClusters != nil && *r.MinClusters < 1 {
		return fmt.Errorf("policy: rule %q: MinClusters < 1", r.Name)
	}
	return nil
}

// ActiveAt reports whether the rule applies at t (UTC).
func (r Rule) ActiveAt(t time.Time) bool {
	if len(r.Days) > 0 {
		ok := false
		for _, d := range r.Days {
			if t.Weekday() == d {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if r.StartMinute == 0 && r.EndMinute == 0 {
		return true
	}
	min := t.Hour()*60 + t.Minute()
	if r.StartMinute <= r.EndMinute {
		return min >= r.StartMinute && min < r.EndMinute
	}
	// Wrapping window, e.g. 22:00–06:00.
	return min >= r.StartMinute || min < r.EndMinute
}

// Constraints is the ordered set of rules for one warehouse.
type Constraints []Rule

// Validate checks every rule.
func (cs Constraints) Validate() error {
	for _, r := range cs {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Allows reports whether applying act to cur at time t violates any
// active rule. It checks both the action class (prohibitions) and the
// resulting configuration (enforcements).
func (cs Constraints) Allows(t time.Time, cur cdw.Config, act action.Action) bool {
	next := act.Target(cur)
	for _, r := range cs {
		if !r.ActiveAt(t) {
			continue
		}
		switch act.Kind {
		case action.SizeDown:
			if r.NoDownsize {
				return false
			}
		case action.SizeUp:
			if r.NoUpsize {
				return false
			}
		case action.SuspendShorter, action.SuspendLonger:
			if r.NoSuspendChange {
				return false
			}
		case action.ClustersUp, action.ClustersDown:
			if r.NoClusterChange {
				return false
			}
		}
		if r.MinSize != nil && next.Size < *r.MinSize {
			return false
		}
		if r.MaxSize != nil && next.Size > *r.MaxSize {
			return false
		}
		if r.MinClusters != nil && next.MaxClusters < *r.MinClusters {
			return false
		}
		if r.EnforceSize != nil && next.Size != *r.EnforceSize {
			return false
		}
	}
	return true
}

// AllowsAlteration reports whether applying the raw alteration to cur
// at time t violates any active rule — the Alteration-level counterpart
// of Allows. The engine uses it to filter post-enforcement restores:
// restoring the pre-window configuration is itself a configuration
// change and must honor the prohibitions active at restore time.
func (cs Constraints) AllowsAlteration(t time.Time, cur cdw.Config, alt cdw.Alteration) bool {
	next := alt.Apply(cur)
	for _, r := range cs {
		if !r.ActiveAt(t) {
			continue
		}
		if r.NoDownsize && next.Size < cur.Size {
			return false
		}
		if r.NoUpsize && next.Size > cur.Size {
			return false
		}
		if r.NoSuspendChange && next.AutoSuspend != cur.AutoSuspend {
			return false
		}
		if r.NoClusterChange &&
			(next.MinClusters != cur.MinClusters || next.MaxClusters != cur.MaxClusters) {
			return false
		}
		if r.MinSize != nil && next.Size < *r.MinSize {
			return false
		}
		if r.MaxSize != nil && next.Size > *r.MaxSize {
			return false
		}
		if r.MinClusters != nil && next.MaxClusters < *r.MinClusters {
			return false
		}
		if r.EnforceSize != nil && next.Size != *r.EnforceSize {
			return false
		}
	}
	return true
}

// Required returns the alteration needed to bring cur into compliance
// with the rules active at t, or a zero Alteration if already
// compliant. This implements enforcement rules like "from 9am to 9:30am
// the BI warehouse must change from Large to X-Large with a minimum of
// 3 clusters".
func (cs Constraints) Required(t time.Time, cur cdw.Config) cdw.Alteration {
	target := cur
	for _, r := range cs {
		if !r.ActiveAt(t) {
			continue
		}
		if r.EnforceSize != nil {
			target.Size = *r.EnforceSize
		}
		if r.MinSize != nil && target.Size < *r.MinSize {
			target.Size = *r.MinSize
		}
		if r.MaxSize != nil && target.Size > *r.MaxSize {
			target.Size = *r.MaxSize
		}
		if r.MinClusters != nil {
			if target.MaxClusters < *r.MinClusters {
				target.MaxClusters = *r.MinClusters
			}
			if target.MinClusters < *r.MinClusters {
				target.MinClusters = *r.MinClusters
			}
		}
	}
	var alt cdw.Alteration
	if target.Size != cur.Size {
		alt.Size = cdw.SizeP(target.Size)
	}
	if target.MinClusters != cur.MinClusters {
		alt.MinClusters = cdw.IntP(target.MinClusters)
	}
	if target.MaxClusters != cur.MaxClusters {
		alt.MaxClusters = cdw.IntP(target.MaxClusters)
	}
	return alt
}

// EnforcementActive reports whether any rule with resource
// enforcements (size pinning, floors, cluster minimums) applies at t.
// The engine uses it to know when an enforcement window has ended and
// the pre-enforcement configuration should be restored.
func (cs Constraints) EnforcementActive(t time.Time) bool {
	for _, r := range cs {
		if !r.ActiveAt(t) {
			continue
		}
		if r.EnforceSize != nil || r.MinSize != nil || r.MaxSize != nil || r.MinClusters != nil {
			return true
		}
	}
	return false
}

// Filter returns the first action from ranked that the constraints
// allow at time t, falling back to NoOp. This implements §4.3:
// "non-compliant actions are cancelled and replaced with the next best
// action that complies with the latest constraints."
func (cs Constraints) Filter(t time.Time, cur cdw.Config, ranked []action.Action) action.Action {
	for _, a := range ranked {
		if cs.Allows(t, cur, a) {
			return a
		}
	}
	return action.Action{Kind: action.NoOp, Warehouse: cur.Name}
}
