package policy

import "fmt"

// Slider is the single per-warehouse control the customer moves between
// "Best Performance" and "Lowest Cost" (§4.1). KWO maps it internally
// to the hyper-parameters of the learning algorithm, so customers never
// reason about individual optimizations.
type Slider int

const (
	// BestPerformance provisions headroom and avoids any action with
	// slowdown potential.
	BestPerformance Slider = 1
	// GoodPerformance reduces the chances of slowdown, e.g.
	// provisioning for sudden spikes.
	GoodPerformance Slider = 2
	// Balanced (the default) applies only optimizations that cut cost
	// without degrading performance.
	Balanced Slider = 3
	// LowCost accepts a small performance degradation for savings.
	LowCost Slider = 4
	// LowestCost minimizes spend aggressively.
	LowestCost Slider = 5
)

// String returns the label shown in the portal.
func (s Slider) String() string {
	switch s {
	case BestPerformance:
		return "Best Performance"
	case GoodPerformance:
		return "Good Performance"
	case Balanced:
		return "Balanced"
	case LowCost:
		return "Low Cost"
	case LowestCost:
		return "Lowest Cost"
	default:
		return fmt.Sprintf("Slider(%d)", int(s))
	}
}

// Valid reports whether s is one of the five positions.
func (s Slider) Valid() bool { return s >= BestPerformance && s <= LowestCost }

// Tuning is the internal hyper-parameter set a slider position expands
// into. The smart model and the reward function consume these; the
// customer only ever sees the slider.
type Tuning struct {
	// PerfPenalty is λ, the weight of performance degradation in the
	// RL reward relative to credits spent. High λ makes slowdowns
	// expensive to the agent.
	PerfPenalty float64
	// MaxLatencyFactor is the largest predicted latency multiplier the
	// smart model will accept from a cost-saving action.
	MaxLatencyFactor float64
	// MaxAddedLatency is the absolute added average latency (seconds)
	// accepted from a cost-saving action even when the relative factor
	// exceeds MaxLatencyFactor — an oversized warehouse running 0.5s
	// queries can be downsized even if they become 0.9s queries.
	MaxAddedLatency float64
	// MaxQueueRisk is the largest predicted queueing risk accepted.
	MaxQueueRisk float64
	// MinSavingsToAct is the minimum predicted credits/hour saving
	// before a disruptive action is worth taking.
	MinSavingsToAct float64
	// SpikeSensitivity scales the monitor's spike thresholds: <1 trips
	// earlier (more conservative), >1 tolerates more noise.
	SpikeSensitivity float64
	// CooldownTicks is how many decision ticks the model stays
	// conservative after a backoff.
	CooldownTicks int
	// Explore is the ε floor for online exploration; aggressive
	// positions explore more.
	Explore float64
	// Headroom biases sizing upward: fraction of extra capacity kept
	// for spikes.
	Headroom float64
}

// Tuning expands the slider position. The mapping is monotone in every
// field: moving toward LowestCost always lowers the protection knobs
// and raises the savings appetite, which is what makes the slider's
// behaviour intuitive (§7.4).
func (s Slider) Tuning() Tuning {
	switch s {
	case BestPerformance:
		return Tuning{
			PerfPenalty:      40,
			MaxLatencyFactor: 1.02,
			MaxAddedLatency:  0.1,
			MaxQueueRisk:     0.0,
			MinSavingsToAct:  0.50,
			SpikeSensitivity: 0.5,
			CooldownTicks:    12,
			Explore:          0.01,
			Headroom:         0.5,
		}
	case GoodPerformance:
		return Tuning{
			PerfPenalty:      16,
			MaxLatencyFactor: 1.10,
			MaxAddedLatency:  0.5,
			MaxQueueRisk:     0.05,
			MinSavingsToAct:  0.20,
			SpikeSensitivity: 0.7,
			CooldownTicks:    9,
			Explore:          0.02,
			Headroom:         0.3,
		}
	case LowCost:
		return Tuning{
			PerfPenalty:      4,
			MaxLatencyFactor: 1.60,
			MaxAddedLatency:  10,
			MaxQueueRisk:     0.25,
			MinSavingsToAct:  0.02,
			SpikeSensitivity: 1.3,
			CooldownTicks:    4,
			Explore:          0.06,
			Headroom:         0.05,
		}
	case LowestCost:
		return Tuning{
			PerfPenalty:      1.5,
			MaxLatencyFactor: 2.50,
			MaxAddedLatency:  45,
			MaxQueueRisk:     0.50,
			MinSavingsToAct:  0.005,
			SpikeSensitivity: 1.6,
			CooldownTicks:    2,
			Explore:          0.08,
			Headroom:         0.0,
		}
	default: // Balanced
		return Tuning{
			PerfPenalty:      8,
			MaxLatencyFactor: 1.30,
			MaxAddedLatency:  2.5,
			MaxQueueRisk:     0.10,
			MinSavingsToAct:  0.05,
			SpikeSensitivity: 1.0,
			CooldownTicks:    6,
			Explore:          0.04,
			Headroom:         0.15,
		}
	}
}
