package policy

import (
	"kwo/internal/action"
	"kwo/internal/monitor"
)

// Backoff is the self-correction state machine of §4.3/§4.4: after the
// smart model applies an action, the monitor's next snapshots decide
// whether the action "took" or must be rolled back. After a rollback
// the model stays conservative for a cooldown period.
type Backoff struct {
	// GuardTicks is how many decision ticks after an action the
	// monitor verdict can still trigger a revert of that action.
	GuardTicks int
	// CooldownTicks is how long to stay conservative after a revert.
	CooldownTicks int

	tick        int
	lastAction  action.Action
	lastTick    int
	hasLast     bool
	cooldownEnd int

	reverts int
}

// NewBackoff builds a controller with the given guard and cooldown.
func NewBackoff(guardTicks, cooldownTicks int) *Backoff {
	if guardTicks <= 0 {
		guardTicks = 2
	}
	if cooldownTicks <= 0 {
		cooldownTicks = 6
	}
	return &Backoff{GuardTicks: guardTicks, CooldownTicks: cooldownTicks}
}

// Decision is the backoff controller's verdict for one tick.
type Decision struct {
	// Revert, when non-nil, is the action that must be applied NOW to
	// undo the previous action (performance degraded inside its guard
	// window).
	Revert *action.Action
	// Conservative is true while in cooldown: the smart model must not
	// take cost-cutting actions, only no-ops or performance-restoring
	// ones.
	Conservative bool
}

// Tick advances the controller with the latest monitor snapshot. Call
// once per decision tick, before choosing the next action.
func (b *Backoff) Tick(snap monitor.Snapshot) Decision {
	b.tick++
	d := Decision{Conservative: b.tick <= b.cooldownEnd}
	if snap.Degraded && b.hasLast && b.tick-b.lastTick <= b.GuardTicks &&
		b.lastAction.Kind != action.NoOp {
		inv := action.Action{
			Kind:      b.lastAction.Kind.Inverse(),
			Warehouse: b.lastAction.Warehouse,
			Reverts:   true,
		}
		d.Revert = &inv
		d.Conservative = true
		b.cooldownEnd = b.tick + b.CooldownTicks
		b.hasLast = false
		b.reverts++
	} else if snap.Degraded {
		// Degradation not attributable to our own action (workload
		// spike): still go conservative, but nothing to revert.
		d.Conservative = true
		b.cooldownEnd = b.tick + b.CooldownTicks
	}
	return d
}

// Record notes the action applied this tick so a later degraded
// snapshot can revert it. Recording a NoOp clears the guard.
func (b *Backoff) Record(a action.Action) {
	if a.Kind == action.NoOp {
		return
	}
	b.lastAction = a
	b.lastTick = b.tick
	b.hasLast = true
}

// Reverts returns how many rollbacks the controller has issued.
func (b *Backoff) Reverts() int { return b.reverts }

// InCooldown reports whether the controller is currently conservative.
func (b *Backoff) InCooldown() bool { return b.tick < b.cooldownEnd }
