// Package monitor implements KWO's real-time monitoring component
// (§4.4). It watches performance metrics to (1) assess the impact of
// the optimizer's own actions and feed that back to the smart models,
// (2) detect sudden workload spikes or new query patterns that the
// models were not trained on, and (3) detect external configuration
// changes made by other users, which force KWO to revert its own
// actions.
package monitor

import (
	"time"

	"kwo/internal/cdw"
	"kwo/internal/ml"
	"kwo/internal/telemetry"
)

// Thresholds tune the spike detectors.
type Thresholds struct {
	// LatencySpikeFactor flags when windowed p99 latency exceeds the
	// baseline by this multiple.
	LatencySpikeFactor float64
	// QueueSpikeFloor is the minimum p99 queue time considered a
	// spike regardless of baseline.
	QueueSpikeFloor time.Duration
	// QueueSpikeFactor flags when p99 queue time exceeds baseline by
	// this multiple.
	QueueSpikeFactor float64
	// LoadSpikeFactor flags when arrival rate exceeds baseline by
	// this multiple.
	LoadSpikeFactor float64
	// NewPatternFraction flags when more than this fraction of the
	// window's distinct templates were never seen before.
	NewPatternFraction float64
	// MinBaselineWindows is how many windows feed the baseline before
	// spike detection activates (avoids false alarms on cold start).
	MinBaselineWindows int
}

// DefaultThresholds returns conservative production defaults.
func DefaultThresholds() Thresholds {
	return Thresholds{
		LatencySpikeFactor: 2.0,
		QueueSpikeFloor:    5 * time.Second,
		QueueSpikeFactor:   3.0,
		LoadSpikeFactor:    3.0,
		NewPatternFraction: 0.4,
		MinBaselineWindows: 6,
	}
}

// Snapshot is the real-time state handed to the smart model at each
// decision point (Algorithm 1's Monitoring.RealTimeState()).
type Snapshot struct {
	At    time.Time
	Stats telemetry.WindowStats

	BaselineP99   time.Duration
	BaselineQueue time.Duration
	BaselineQPH   float64

	LatencySpike bool
	QueueSpike   bool
	LoadSpike    bool
	NewPattern   bool

	// Degraded is true when any spike condition fired — the signal
	// that makes the smart model back off to a conservative action.
	Degraded bool
}

// Monitor tracks one warehouse. It keeps exponentially weighted
// baselines of the key metrics and compares each new window to them.
type Monitor struct {
	store     *telemetry.Store
	warehouse string
	th        Thresholds
	window    time.Duration

	p99   ml.EWMA
	queue ml.EWMA
	qph   ml.EWMA
	n     int

	// observer, when set, receives every snapshot Observe folds — the
	// engine uses it to export baselines and spike verdicts without a
	// second Stats pass. Peek never calls it.
	observer func(Snapshot)
}

// New creates a monitor for one warehouse of the telemetry store, with
// the given observation window (the paper checks real-time state every
// few minutes).
func New(store *telemetry.Store, warehouse string, window time.Duration, th Thresholds) *Monitor {
	if window <= 0 {
		window = 10 * time.Minute
	}
	return &Monitor{
		store:     store,
		warehouse: warehouse,
		th:        th,
		window:    window,
		p99:       ml.EWMA{Alpha: 0.1},
		queue:     ml.EWMA{Alpha: 0.1},
		qph:       ml.EWMA{Alpha: 0.1},
	}
}

// degradedFoldWeight is the fraction of the normal smoothing weight a
// degraded window contributes to the baselines. Folding degraded
// windows at full weight lets a regression teach the baseline to accept
// the regression — after a few windows the spike detectors disarm
// themselves and the self-correction loop goes blind. A heavy
// down-weight keeps sustained real shifts converging (a genuinely
// changed workload still becomes the baseline, just ~8x slower) while a
// KWO-caused regression keeps firing long enough to be reverted.
const degradedFoldWeight = 0.125

// Observe computes the current snapshot and folds the window into the
// baselines. Call it once per decision tick.
func (m *Monitor) Observe(now time.Time) Snapshot {
	snap := m.Peek(now)
	// Fold into baselines. Spiking windows are still folded, but heavily
	// down-weighted, so a genuinely changed workload eventually becomes
	// the baseline — the models "constantly learn and improve" — without
	// the detectors disarming themselves against a live regression.
	if snap.Stats.Queries > 0 {
		// Down-weighting is per metric: a queue spike must not drag the
		// queue baseline up, but the same window's latency observation
		// may be fine and keeps its baseline tracking. The load baseline
		// always folds at full weight — arrival rate is driven by the
		// workload, not by anything KWO did, so a load spike is exactly
		// the "genuinely changed workload" case that must keep
		// converging.
		fold := func(e *ml.EWMA, x float64, spiked bool) {
			if spiked {
				e.AddWeighted(x, degradedFoldWeight)
			} else {
				e.Add(x)
			}
		}
		fold(&m.p99, snap.Stats.P99Latency.Seconds(), snap.LatencySpike)
		fold(&m.queue, snap.Stats.P99Queue.Seconds(), snap.QueueSpike)
		m.qph.Add(snap.Stats.QPH)
		m.n++
	}
	if m.observer != nil {
		m.observer(snap)
	}
	return snap
}

// SetObserver registers the per-Observe snapshot callback.
func (m *Monitor) SetObserver(fn func(Snapshot)) { m.observer = fn }

// Peek computes the current snapshot WITHOUT folding the window into
// the baselines. It is side-effect free, so test harnesses and
// invariant checks can inspect the monitor's verdict at any instant
// without perturbing what the engine's own Observe calls will see.
//
// The Stats call underneath is O(log N + W) with no steady-state
// allocation (N = log size, W = queries in the window): additive
// fields come from prefix-aggregate differences and percentiles from
// quickselect over reused scratch, so Peek stays cheap on every
// decision tick even against multi-month logs.
func (m *Monitor) Peek(now time.Time) Snapshot {
	var log *telemetry.WarehouseLog
	if m.store != nil {
		log = m.store.Log(m.warehouse)
	}
	ws := log.Stats(now.Add(-m.window), now)
	snap := Snapshot{
		At:            now,
		Stats:         ws,
		BaselineP99:   time.Duration(m.p99.Value() * float64(time.Second)),
		BaselineQueue: time.Duration(m.queue.Value() * float64(time.Second)),
		BaselineQPH:   m.qph.Value(),
	}
	ready := m.n >= m.th.MinBaselineWindows
	if ready && ws.Queries > 0 {
		if m.p99.Value() > 0 &&
			ws.P99Latency.Seconds() > m.th.LatencySpikeFactor*m.p99.Value() {
			snap.LatencySpike = true
		}
		queueHigh := ws.P99Queue >= m.th.QueueSpikeFloor
		queueJump := m.queue.Value() > 0 &&
			ws.P99Queue.Seconds() > m.th.QueueSpikeFactor*m.queue.Value()
		if queueHigh && (queueJump || m.queue.Value() == 0) {
			snap.QueueSpike = true
		}
		if m.qph.Value() > 0 && ws.QPH > m.th.LoadSpikeFactor*m.qph.Value() {
			snap.LoadSpike = true
		}
		if ws.DistinctTemplates > 0 {
			frac := float64(ws.NewTemplates) / float64(ws.DistinctTemplates)
			if frac > m.th.NewPatternFraction {
				snap.NewPattern = true
			}
		}
	}
	snap.Degraded = snap.LatencySpike || snap.QueueSpike || snap.LoadSpike || snap.NewPattern
	return snap
}

// Windows returns how many non-empty windows have been folded into the
// baselines.
func (m *Monitor) Windows() int { return m.n }

// Config returns the thresholds the monitor was built with.
func (m *Monitor) Config() Thresholds { return m.th }

// Window returns the observation window length.
func (m *Monitor) Window() time.Duration { return m.window }

// ExternalChanges filters a change log down to alterations made by
// actors other than selfActor — the trigger for §4.4's "immediately
// reverts its own action" behaviour.
func ExternalChanges(changes []cdw.ConfigChange, selfActor string) []cdw.ConfigChange {
	var out []cdw.ConfigChange
	for _, c := range changes {
		if c.Actor != selfActor {
			out = append(out, c)
		}
	}
	return out
}
