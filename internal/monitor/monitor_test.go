package monitor

import (
	"testing"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/simclock"
	"kwo/internal/telemetry"
)

var t0 = simclock.Epoch

// feed appends n queries with the given latency and template into the
// store for the window ending at end.
func feed(s *telemetry.Store, end time.Time, n int, exec, queue time.Duration, tmplBase uint64) {
	for i := 0; i < n; i++ {
		at := end.Add(-time.Duration(i+1) * 30 * time.Second)
		start := at.Add(queue)
		s.OnQuery(cdw.QueryRecord{
			Warehouse: "W", TemplateHash: tmplBase + uint64(i%3),
			SubmitTime: at, StartTime: start, EndTime: start.Add(exec),
			QueueDuration: queue, ExecDuration: exec,
			Size: cdw.SizeSmall, Clusters: 1,
		})
	}
}

func warmedMonitor(s *telemetry.Store) (*Monitor, time.Time) {
	m := New(s, "W", 10*time.Minute, DefaultThresholds())
	now := t0
	for i := 0; i < 8; i++ {
		now = now.Add(10 * time.Minute)
		feed(s, now, 10, 2*time.Second, 100*time.Millisecond, 0)
		m.Observe(now)
	}
	return m, now
}

func TestNoSpikeOnSteadyState(t *testing.T) {
	s := telemetry.NewStore()
	feed(s, t0.Add(time.Minute), 1, time.Second, 0, 0)
	m, now := warmedMonitor(s)
	now = now.Add(10 * time.Minute)
	feed(s, now, 10, 2*time.Second, 100*time.Millisecond, 0)
	snap := m.Observe(now)
	if snap.Degraded {
		t.Fatalf("steady state flagged degraded: %+v", snap)
	}
	if snap.BaselineP99 <= 0 || snap.BaselineQPH <= 0 {
		t.Fatal("baselines not learned")
	}
}

func TestLatencySpikeDetected(t *testing.T) {
	s := telemetry.NewStore()
	m, now := warmedMonitor(s)
	now = now.Add(10 * time.Minute)
	feed(s, now, 10, 20*time.Second, 100*time.Millisecond, 0) // 10x slower
	snap := m.Observe(now)
	if !snap.LatencySpike || !snap.Degraded {
		t.Fatalf("latency spike missed: %+v", snap)
	}
}

func TestQueueSpikeDetected(t *testing.T) {
	s := telemetry.NewStore()
	m, now := warmedMonitor(s)
	now = now.Add(10 * time.Minute)
	feed(s, now, 10, 2*time.Second, 30*time.Second, 0)
	snap := m.Observe(now)
	if !snap.QueueSpike {
		t.Fatalf("queue spike missed: %+v", snap)
	}
}

func TestSmallQueueBelowFloorIgnored(t *testing.T) {
	s := telemetry.NewStore()
	m, now := warmedMonitor(s)
	now = now.Add(10 * time.Minute)
	// 4x baseline queue but under the 5s floor: not a spike.
	feed(s, now, 10, 2*time.Second, 400*time.Millisecond, 0)
	snap := m.Observe(now)
	if snap.QueueSpike {
		t.Fatalf("sub-floor queue flagged: %+v", snap)
	}
}

func TestLoadSpikeDetected(t *testing.T) {
	s := telemetry.NewStore()
	m, now := warmedMonitor(s)
	now = now.Add(10 * time.Minute)
	// 100 queries packed into the window: 600 QPH vs ~60 baseline.
	for i := 0; i < 100; i++ {
		at := now.Add(-time.Duration(i+1) * 5 * time.Second)
		s.OnQuery(cdw.QueryRecord{
			Warehouse: "W", TemplateHash: uint64(i % 3),
			SubmitTime: at, StartTime: at, EndTime: at.Add(2 * time.Second),
			ExecDuration: 2 * time.Second, Size: cdw.SizeSmall, Clusters: 1,
		})
	}
	snap := m.Observe(now)
	if !snap.LoadSpike {
		t.Fatalf("load spike missed: %+v", snap)
	}
}

func TestNewPatternDetected(t *testing.T) {
	s := telemetry.NewStore()
	m, now := warmedMonitor(s)
	now = now.Add(10 * time.Minute)
	feed(s, now, 10, 2*time.Second, 100*time.Millisecond, 999) // unseen templates
	snap := m.Observe(now)
	if !snap.NewPattern {
		t.Fatalf("new pattern missed: %+v", snap)
	}
}

func TestColdStartSuppressed(t *testing.T) {
	s := telemetry.NewStore()
	m := New(s, "W", 10*time.Minute, DefaultThresholds())
	// Even an extreme first window cannot spike before baselines warm.
	now := t0.Add(10 * time.Minute)
	feed(s, now, 200, time.Minute, time.Minute, 0)
	snap := m.Observe(now)
	if snap.Degraded {
		t.Fatalf("cold-start window flagged: %+v", snap)
	}
}

func TestEmptyWindowsDoNotPoisonBaseline(t *testing.T) {
	s := telemetry.NewStore()
	m, now := warmedMonitor(s)
	before := m.Windows()
	// Three empty windows.
	for i := 0; i < 3; i++ {
		now = now.Add(10 * time.Minute)
		m.Observe(now)
	}
	if m.Windows() != before {
		t.Fatal("empty windows were folded into baseline")
	}
	// Steady traffic afterwards is still unflagged.
	now = now.Add(10 * time.Minute)
	feed(s, now, 10, 2*time.Second, 100*time.Millisecond, 0)
	if snap := m.Observe(now); snap.Degraded {
		t.Fatalf("degraded after idle gap: %+v", snap)
	}
}

func TestExternalChanges(t *testing.T) {
	chs := []cdw.ConfigChange{
		{Actor: "kwo", Warehouse: "W"},
		{Actor: "dba-jane", Warehouse: "W"},
		{Actor: "kwo", Warehouse: "W"},
		{Actor: "etl-tool", Warehouse: "W"},
	}
	ext := ExternalChanges(chs, "kwo")
	if len(ext) != 2 {
		t.Fatalf("external = %d, want 2", len(ext))
	}
	if ext[0].Actor != "dba-jane" || ext[1].Actor != "etl-tool" {
		t.Fatalf("external actors = %v, %v", ext[0].Actor, ext[1].Actor)
	}
	if got := ExternalChanges(nil, "kwo"); len(got) != 0 {
		t.Fatal("nil changes produced output")
	}
}

func TestNilLogSafe(t *testing.T) {
	m := New(nil, "W", 10*time.Minute, DefaultThresholds())
	snap := m.Observe(t0.Add(time.Hour))
	if snap.Degraded || snap.Stats.Queries != 0 {
		t.Fatalf("nil log snapshot = %+v", snap)
	}
}

// A sustained regression must keep firing: before degraded windows were
// down-weighted, ~6 windows of queueing folded at full weight taught the
// queue baseline to accept the queueing and the detector disarmed itself
// — exactly while a KWO-caused regression still needed reverting.
func TestSustainedQueueingKeepsFiring(t *testing.T) {
	s := telemetry.NewStore()
	m, now := warmedMonitor(s)
	for i := 0; i < 30; i++ {
		now = now.Add(10 * time.Minute)
		feed(s, now, 10, 2*time.Second, 30*time.Second, 0)
		snap := m.Observe(now)
		if !snap.QueueSpike {
			t.Fatalf("queue spike disarmed itself after %d degraded windows (baseline %s)",
				i, snap.BaselineQueue)
		}
	}
}

// The flip side: down-weighting must slow convergence, not stop it. A
// workload whose latency genuinely shifted (without queueing pressure
// staying pathological forever) still becomes the new baseline.
func TestShiftedWorkloadEventuallyConverges(t *testing.T) {
	s := telemetry.NewStore()
	m, now := warmedMonitor(s)
	fired := 0
	for i := 0; i < 400; i++ {
		now = now.Add(10 * time.Minute)
		feed(s, now, 10, 5*time.Second, 100*time.Millisecond, 0) // 2.5x slower for good
		snap := m.Observe(now)
		if snap.LatencySpike {
			fired++
		} else if i > 2 {
			break
		}
	}
	if fired == 0 {
		t.Fatal("shifted workload never flagged at all")
	}
	now = now.Add(10 * time.Minute)
	feed(s, now, 10, 5*time.Second, 100*time.Millisecond, 0)
	if snap := m.Observe(now); snap.LatencySpike {
		t.Fatalf("baseline never converged to the shifted workload (baseline %s, fired %d windows)",
			snap.BaselineP99, fired)
	}
}
