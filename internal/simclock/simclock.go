// Package simclock provides a deterministic discrete-event simulation
// engine: a virtual clock, an ordered event queue, and seeded random
// number streams.
//
// All of the repository's simulated components (the cloud data warehouse,
// workload generators, the KWO engine itself) are driven by a single
// *Scheduler. Time never advances on its own; it jumps from event to
// event, which makes multi-day simulations run in milliseconds and makes
// every run exactly reproducible for a given seed.
package simclock

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// Epoch is the default simulation start: Monday 2023-01-02 00:00 UTC.
// Starting on a Monday makes day-of-week constraint rules easy to reason
// about in tests and experiments.
var Epoch = time.Date(2023, 1, 2, 0, 0, 0, 0, time.UTC)

// Event is a scheduled callback. Events with equal times fire in the
// order they were scheduled.
type Event struct {
	At   time.Time
	Name string // for tracing and tests
	Fn   func()

	seq   uint64
	index int
}

// eventHeap orders events by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At.Equal(h[j].At) {
		return h[i].seq < h[j].seq
	}
	return h[i].At.Before(h[j].At)
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Scheduler is a discrete-event simulator. It is not safe for concurrent
// use; the simulation is single-threaded by design so that runs are
// deterministic.
type Scheduler struct {
	now    time.Time
	queue  eventHeap
	seq    uint64
	seed   int64
	steps  uint64
	halted bool
}

// NewScheduler returns a scheduler whose clock starts at Epoch.
func NewScheduler(seed int64) *Scheduler {
	return NewSchedulerAt(Epoch, seed)
}

// NewSchedulerAt returns a scheduler whose clock starts at the given time.
func NewSchedulerAt(start time.Time, seed int64) *Scheduler {
	return &Scheduler{now: start, seed: seed}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time { return s.now }

// Steps returns the number of events executed so far.
func (s *Scheduler) Steps() uint64 { return s.steps }

// Seq returns the number of events ever scheduled — the tie-break
// counter behind same-time ordering. Together with Steps it pins a
// scheduler's position exactly; checkpoint verification compares both.
func (s *Scheduler) Seq() uint64 { return s.seq }

// Schedule enqueues fn to run at time at. Scheduling in the past is an
// error in the simulation logic, so it panics rather than silently
// reordering history.
func (s *Scheduler) Schedule(at time.Time, name string, fn func()) *Event {
	if at.Before(s.now) {
		panic(fmt.Sprintf("simclock: schedule %q at %v before now %v", name, at, s.now))
	}
	s.seq++
	e := &Event{At: at, Name: name, Fn: fn, seq: s.seq}
	heap.Push(&s.queue, e)
	return e
}

// After enqueues fn to run after delay d.
func (s *Scheduler) After(d time.Duration, name string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.Schedule(s.now.Add(d), name, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false.
func (s *Scheduler) Cancel(e *Event) bool {
	if e == nil || e.index < 0 || e.index >= len(s.queue) || s.queue[e.index] != e {
		return false
	}
	heap.Remove(&s.queue, e.index)
	return true
}

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return len(s.queue) }

// NextEventTime returns the time of the earliest pending event. The
// second result is false when the queue is empty. Harnesses use it to
// step the simulation event by event up to a horizon.
func (s *Scheduler) NextEventTime() (time.Time, bool) {
	if len(s.queue) == 0 {
		return time.Time{}, false
	}
	return s.queue[0].At, true
}

// Step executes the next event, advancing the clock to its time.
// It returns false when the queue is empty or the scheduler was halted.
func (s *Scheduler) Step() bool {
	if s.halted || len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	s.now = e.At
	s.steps++
	e.Fn()
	return true
}

// RunUntil executes events until the clock would pass t, then sets the
// clock to exactly t. Events scheduled at exactly t are executed.
func (s *Scheduler) RunUntil(t time.Time) {
	for !s.halted && len(s.queue) > 0 && !s.queue[0].At.After(t) {
		s.Step()
	}
	if !s.halted && t.After(s.now) {
		s.now = t
	}
}

// RunFor advances the simulation by d.
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.now.Add(d)) }

// Drain runs every remaining event. maxSteps bounds runaway event chains;
// it returns an error if the bound is hit.
func (s *Scheduler) Drain(maxSteps uint64) error {
	for i := uint64(0); len(s.queue) > 0 && !s.halted; i++ {
		if i >= maxSteps {
			return fmt.Errorf("simclock: drain exceeded %d steps with %d events pending", maxSteps, len(s.queue))
		}
		s.Step()
	}
	return nil
}

// Halt stops the scheduler: Step and RunUntil become no-ops. Used by
// experiments that hit a terminal condition mid-run.
func (s *Scheduler) Halt() { s.halted = true }

// Halted reports whether Halt was called.
func (s *Scheduler) Halted() bool { return s.halted }

// Rand returns an independent deterministic random stream derived from
// the scheduler seed and a name. Two streams with different names are
// decorrelated; the same name always yields the same stream.
func (s *Scheduler) Rand(name string) *rand.Rand {
	return rand.New(rand.NewSource(s.SeedFor(name)))
}

// SeedFor returns the derived seed Rand(name) builds its source from —
// callers that need to wrap the source (e.g. to count draws for a
// checkpoint) get the identical stream by seeding their own.
func (s *Scheduler) SeedFor(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return s.seed ^ int64(h.Sum64())
}

// Elapsed returns the virtual time elapsed since start.
func Elapsed(start, now time.Time) time.Duration { return now.Sub(start) }
