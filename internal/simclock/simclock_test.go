package simclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := NewScheduler(1)
	var got []string
	s.Schedule(Epoch.Add(2*time.Second), "b", func() { got = append(got, "b") })
	s.Schedule(Epoch.Add(1*time.Second), "a", func() { got = append(got, "a") })
	s.Schedule(Epoch.Add(3*time.Second), "c", func() { got = append(got, "c") })
	s.RunUntil(Epoch.Add(10 * time.Second))
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if !s.Now().Equal(Epoch.Add(10 * time.Second)) {
		t.Fatalf("clock = %v, want %v", s.Now(), Epoch.Add(10*time.Second))
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	at := Epoch.Add(time.Second)
	for i := 0; i < 20; i++ {
		i := i
		s.Schedule(at, "tie", func() { got = append(got, i) })
	}
	s.RunFor(2 * time.Second)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", got)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewScheduler(1)
	s.RunUntil(Epoch.Add(time.Hour))
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.Schedule(Epoch, "past", func() {})
}

func TestCancel(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	e := s.After(time.Second, "x", func() { fired = true })
	if !s.Cancel(e) {
		t.Fatal("first cancel returned false")
	}
	if s.Cancel(e) {
		t.Fatal("second cancel returned true")
	}
	s.RunFor(time.Minute)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelNil(t *testing.T) {
	s := NewScheduler(1)
	if s.Cancel(nil) {
		t.Fatal("cancel(nil) returned true")
	}
}

func TestEventsScheduledDuringStepRun(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 5 {
			s.After(time.Second, "chain", chain)
		}
	}
	s.After(time.Second, "chain", chain)
	s.RunFor(time.Minute)
	if count != 5 {
		t.Fatalf("chain executed %d times, want 5", count)
	}
}

func TestRunUntilExecutesBoundary(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	at := Epoch.Add(time.Second)
	s.Schedule(at, "boundary", func() { fired = true })
	s.RunUntil(at)
	if !fired {
		t.Fatal("event at exact boundary time did not fire")
	}
}

func TestDrainBound(t *testing.T) {
	s := NewScheduler(1)
	var loop func()
	loop = func() { s.After(time.Second, "loop", loop) }
	s.After(time.Second, "loop", loop)
	if err := s.Drain(100); err == nil {
		t.Fatal("unbounded event chain did not trip drain limit")
	}
}

func TestHalt(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	s.After(time.Second, "a", func() { n++; s.Halt() })
	s.After(2*time.Second, "b", func() { n++ })
	s.RunFor(time.Hour)
	if n != 1 {
		t.Fatalf("executed %d events after halt, want 1", n)
	}
	if !s.Halted() {
		t.Fatal("Halted() = false after Halt")
	}
}

func TestRandDeterministicAndDecorrelated(t *testing.T) {
	a := NewScheduler(42).Rand("alpha")
	b := NewScheduler(42).Rand("alpha")
	c := NewScheduler(42).Rand("beta")
	same, diff := true, false
	for i := 0; i < 32; i++ {
		x, y, z := a.Int63(), b.Int63(), c.Int63()
		if x != y {
			same = false
		}
		if x != z {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed+name produced different streams")
	}
	if !diff {
		t.Fatal("different names produced identical streams")
	}
}

// Property: for any set of non-negative delays, events fire in sorted
// time order.
func TestPropertyOrdering(t *testing.T) {
	f := func(delaysMS []uint16) bool {
		s := NewScheduler(7)
		var fired []time.Time
		for _, d := range delaysMS {
			at := Epoch.Add(time.Duration(d) * time.Millisecond)
			s.Schedule(at, "p", func() { fired = append(fired, s.Now()) })
		}
		s.RunFor(time.Hour)
		if len(fired) != len(delaysMS) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i].Before(fired[j]) })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pending decreases by exactly one per Step.
func TestPropertyPendingAccounting(t *testing.T) {
	f := func(n uint8) bool {
		s := NewScheduler(3)
		for i := 0; i < int(n); i++ {
			s.After(time.Duration(i)*time.Second, "e", func() {})
		}
		for want := int(n); want > 0; want-- {
			if s.Pending() != want {
				return false
			}
			s.Step()
		}
		return s.Pending() == 0 && !s.Step()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
