package rl

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"kwo/internal/action"
	"kwo/internal/cdw"
	"kwo/internal/ml"
	"kwo/internal/monitor"
	"kwo/internal/simclock"
	"kwo/internal/telemetry"
)

func snapAt(t time.Time, qph float64, degraded bool) monitor.Snapshot {
	return monitor.Snapshot{
		At: t,
		Stats: telemetry.WindowStats{
			QPH:        qph,
			AvgExec:    5 * time.Second,
			P99Latency: 8 * time.Second,
			P99Queue:   time.Second,
			Queries:    int(qph / 6),
			ColdReads:  2,
		},
		Degraded: degraded,
	}
}

func cfg() cdw.Config {
	return cdw.Config{Name: "W", Size: cdw.SizeMedium, MinClusters: 1,
		MaxClusters: 3, AutoSuspend: 5 * time.Minute, AutoResume: true}
}

func TestFeaturizeShapeAndBounds(t *testing.T) {
	s := Featurize(snapAt(simclock.Epoch.Add(14*time.Hour), 500, true), cfg())
	if len(s) != StateDim {
		t.Fatalf("state dim = %d, want %d", len(s), StateDim)
	}
	for i, v := range s {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("feature %d is %v", i, v)
		}
		if v < -1.5 || v > 3 {
			t.Fatalf("feature %d = %v outside sane bounds", i, v)
		}
	}
	if s[12] != 1 {
		t.Fatal("degraded flag not set")
	}
	// Weekday flag: Epoch is Monday.
	if s[10] != 1 {
		t.Fatal("weekday flag not set on Monday")
	}
	sat := Featurize(snapAt(simclock.Epoch.Add(5*24*time.Hour), 500, false), cfg())
	if sat[10] != 0 {
		t.Fatal("weekday flag set on Saturday")
	}
}

func TestFeaturizeDistinguishesConfigs(t *testing.T) {
	snap := snapAt(simclock.Epoch, 100, false)
	a := Featurize(snap, cfg())
	big := cfg()
	big.Size = cdw.Size6XLarge
	b := Featurize(snap, big)
	if a[5] >= b[5] {
		t.Fatal("size feature not increasing with size")
	}
}

func TestReward(t *testing.T) {
	if Reward(10, 0, 5) != -10 {
		t.Fatal("pure cost reward wrong")
	}
	if Reward(0, 2, 5) != -10 {
		t.Fatal("pure perf reward wrong")
	}
	if Reward(1, 1, 0) != -1 {
		t.Fatal("lambda=0 should ignore perf")
	}
	// Higher lambda punishes perf harder.
	if Reward(1, 1, 10) >= Reward(1, 1, 1) {
		t.Fatal("lambda not monotone")
	}
}

func TestAgentRankComplete(t *testing.T) {
	a := NewAgent(rand.New(rand.NewSource(1)), DefaultConfig())
	state := Featurize(snapAt(simclock.Epoch, 100, false), cfg())
	ranked := a.Rank(state)
	if len(ranked) != action.NumKinds {
		t.Fatalf("ranked %d actions, want %d", len(ranked), action.NumKinds)
	}
	seen := map[action.Kind]bool{}
	for _, k := range ranked {
		if seen[k] {
			t.Fatalf("duplicate action %v in ranking", k)
		}
		seen[k] = true
	}
	// Ranking is consistent with Q-values.
	qs := a.Q(state)
	for i := 1; i < len(ranked); i++ {
		if qs[ranked[i-1]] < qs[ranked[i]] {
			t.Fatal("ranking not descending in Q")
		}
	}
}

func TestEpsilonDecayAndFloor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epsilon = 0.5
	cfg.EpsilonMin = 0.1
	cfg.EpsilonDecay = 0.5
	a := NewAgent(rand.New(rand.NewSource(2)), cfg)
	state := make([]float64, StateDim)
	for i := 0; i < 10; i++ {
		a.Act(state)
	}
	if a.Epsilon() != 0.1 {
		t.Fatalf("epsilon = %v, want floor 0.1", a.Epsilon())
	}
	a.SetEpsilonFloor(0.3)
	if a.Epsilon() != 0.3 {
		t.Fatalf("raising floor did not lift epsilon: %v", a.Epsilon())
	}
}

// bandit builds transitions for a 2-state bandit where the optimal
// action differs by state, then checks the agent learns both.
func TestAgentLearnsContextualBandit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := DefaultConfig()
	c.Epsilon = 0 // pure offline learning
	c.LearningRate = 1e-2
	a := NewAgent(rng, c)

	stateA := make([]float64, StateDim) // "idle": size-down pays
	stateB := make([]float64, StateDim) // "busy": size-up pays
	stateA[0] = 0.1
	stateB[0] = 0.9
	stateB[4] = 1.0

	var ts []ml.Transition
	for i := 0; i < 400; i++ {
		for k := 0; k < action.NumKinds; k++ {
			rA, rB := -0.5, -0.5
			if action.Kind(k) == action.SizeDown {
				rA, rB = 1.0, -2.0
			}
			if action.Kind(k) == action.SizeUp {
				rA, rB = -2.0, 1.0
			}
			ts = append(ts,
				ml.Transition{State: stateA, Action: k, Reward: rA, NextState: stateA, Terminal: true},
				ml.Transition{State: stateB, Action: k, Reward: rB, NextState: stateB, Terminal: true},
			)
		}
	}
	a.Pretrain(ts, 3000)

	if got := a.Rank(stateA)[0]; got != action.SizeDown {
		t.Fatalf("idle-state best action = %v, want size-down (Q=%v)", got, a.Q(stateA))
	}
	if got := a.Rank(stateB)[0]; got != action.SizeUp {
		t.Fatalf("busy-state best action = %v, want size-up (Q=%v)", got, a.Q(stateB))
	}
}

func TestAgentBootstrapsFutureReward(t *testing.T) {
	// Two-step chain: action 1 in s0 leads to s1 with zero immediate
	// reward; s1's best action pays +10. With gamma=0.9 the Q-value of
	// (s0, action 1) should approach 9 > immediate +5 of action 0.
	rng := rand.New(rand.NewSource(4))
	c := DefaultConfig()
	c.Gamma = 0.9
	c.LearningRate = 1e-2
	c.SyncEvery = 50
	a := NewAgent(rng, c)
	s0 := make([]float64, StateDim)
	s1 := make([]float64, StateDim)
	s1[0] = 1
	var ts []ml.Transition
	for i := 0; i < 300; i++ {
		ts = append(ts,
			ml.Transition{State: s0, Action: 0, Reward: 5, NextState: s0, Terminal: true},
			ml.Transition{State: s0, Action: 1, Reward: 0, NextState: s1, Terminal: false},
			ml.Transition{State: s1, Action: 2, Reward: 10, NextState: s1, Terminal: true},
		)
		// Other actions in s1 are poor, so max_a Q(s1) ≈ 10.
		for k := 0; k < action.NumKinds; k++ {
			if k != 2 {
				ts = append(ts, ml.Transition{State: s1, Action: k, Reward: -1, NextState: s1, Terminal: true})
			}
		}
	}
	a.Pretrain(ts, 6000)
	q0 := a.Q(s0)
	if q0[1] <= q0[0] {
		t.Fatalf("agent did not bootstrap future reward: Q(s0) = %v", q0)
	}
}

func TestObserveTrainsOnline(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewAgent(rng, DefaultConfig())
	s := make([]float64, StateDim)
	for i := 0; i < 50; i++ {
		a.Observe(ml.Transition{State: s, Action: 0, Reward: 1, NextState: s, Terminal: true})
	}
	if a.BufferLen() != 50 {
		t.Fatalf("buffer = %d", a.BufferLen())
	}
	if a.Steps() != 50 {
		t.Fatalf("steps = %d", a.Steps())
	}
	q := a.Q(s)[0]
	if q < 0.2 {
		t.Fatalf("online training ineffective: Q = %v, want → 1", q)
	}
}

func TestAgentDeterministicGivenSeed(t *testing.T) {
	build := func() []float64 {
		rng := rand.New(rand.NewSource(9))
		a := NewAgent(rng, DefaultConfig())
		s := make([]float64, StateDim)
		for i := 0; i < 100; i++ {
			a.Observe(ml.Transition{State: s, Action: i % action.NumKinds,
				Reward: float64(i % 3), NextState: s, Terminal: i%2 == 0})
		}
		return a.Q(s)
	}
	q1, q2 := build(), build()
	for i := range q1 {
		if q1[i] != q2[i] {
			t.Fatal("agent not deterministic for fixed seed")
		}
	}
}

func TestDoubleDQNLearnsBandit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := DefaultConfig()
	c.Epsilon = 0
	c.DoubleDQN = true
	c.LearningRate = 1e-2
	a := NewAgent(rng, c)
	state := make([]float64, StateDim)
	state[0] = 0.5
	var ts []ml.Transition
	for i := 0; i < 300; i++ {
		for k := 0; k < action.NumKinds; k++ {
			r := -1.0
			if action.Kind(k) == action.SuspendShorter {
				r = 2.0
			}
			ts = append(ts, ml.Transition{State: state, Action: k, Reward: r,
				NextState: state, Terminal: false}) // non-terminal: exercises the double-DQN bootstrap
		}
	}
	a.Pretrain(ts, 3000)
	if got := a.Rank(state)[0]; got != action.SuspendShorter {
		t.Fatalf("double-DQN best action = %v (Q=%v)", got, a.Q(state))
	}
}
