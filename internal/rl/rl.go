// Package rl implements the deep reinforcement learning core of KWO's
// data learning (§6): a DQN agent whose states are featurized telemetry
// windows, whose actions are the warehouse optimization actions of
// internal/action, and whose reward balances credits spent against
// performance degradation with a slider-controlled weight λ.
//
// The agent supports the paper's two training regimes: offline
// pre-training from large historical telemetry ("our DRL model benefits
// from having access to large historical telemetry data") and online
// updates from the live feedback loop of Algorithm 1.
package rl

import (
	"math"
	"math/rand"
	"time"

	"kwo/internal/action"
	"kwo/internal/cdw"
	"kwo/internal/ml"
	"kwo/internal/monitor"
)

// StateDim is the length of the featurized state vector.
const StateDim = 13

// Featurize encodes a monitor snapshot plus the current warehouse
// configuration as the agent's state vector. All features are bounded
// or log-compressed so the network never sees wild magnitudes.
func Featurize(snap monitor.Snapshot, cfg cdw.Config) []float64 {
	ws := snap.Stats
	hour := float64(snap.At.Hour()) + float64(snap.At.Minute())/60
	weekday := 0.0
	switch snap.At.Weekday() {
	case time.Saturday, time.Sunday:
	default:
		weekday = 1
	}
	coldFrac := 0.0
	if ws.Queries > 0 {
		coldFrac = float64(ws.ColdReads) / float64(ws.Queries)
	}
	degraded := 0.0
	if snap.Degraded {
		degraded = 1
	}
	rho := ws.QPH / 3600 * ws.AvgExec.Seconds() // offered load
	return []float64{
		math.Log1p(ws.QPH) / 10,
		math.Log1p(ws.AvgExec.Seconds()) / 10,
		math.Log1p(ws.P99Latency.Seconds()) / 10,
		math.Log1p(ws.P99Queue.Seconds()) / 10,
		ml.Clamp(rho/16, 0, 1),
		float64(cfg.Size) / float64(cdw.MaxSize),
		ml.Clamp(float64(cfg.MaxClusters)/10, 0, 1),
		math.Log1p(cfg.AutoSuspend.Seconds()) / 10,
		math.Sin(2 * math.Pi * hour / 24),
		math.Cos(2 * math.Pi * hour / 24),
		weekday,
		coldFrac,
		degraded,
	}
}

// Reward computes the per-window reward: the negative of credits spent
// plus λ times the performance penalty. perfPenalty should already
// aggregate latency degradation and queueing (see core.PerfPenalty).
func Reward(creditsSpent, perfPenalty, lambda float64) float64 {
	return -creditsSpent - lambda*perfPenalty
}

// Config tunes the agent.
type Config struct {
	Gamma        float64 // discount factor
	Epsilon      float64 // initial exploration rate
	EpsilonMin   float64 // exploration floor
	EpsilonDecay float64 // multiplicative decay per online step
	LearningRate float64
	BatchSize    int
	BufferSize   int
	SyncEvery    int // steps between target-network syncs
	Hidden       int // width of the two hidden layers
	// DoubleDQN selects the bootstrap action with the online network
	// and evaluates it with the target network, reducing the maximization
	// bias of vanilla DQN.
	DoubleDQN bool
}

// DefaultConfig returns the production defaults.
func DefaultConfig() Config {
	return Config{
		Gamma:        0.9,
		Epsilon:      0.3,
		EpsilonMin:   0.03,
		EpsilonDecay: 0.999,
		LearningRate: 5e-3,
		BatchSize:    32,
		BufferSize:   20000,
		SyncEvery:    200,
		Hidden:       32,
	}
}

// Agent is a DQN over the action.Kind space.
type Agent struct {
	cfg    Config
	q      *ml.MLP
	target *ml.MLP
	buf    *ml.ReplayBuffer
	rng    *rand.Rand
	steps  int
}

// NewAgent builds an agent with freshly initialized networks.
func NewAgent(rng *rand.Rand, cfg Config) *Agent {
	if cfg.Hidden <= 0 {
		cfg.Hidden = 32
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.BufferSize <= 0 {
		cfg.BufferSize = 10000
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = 200
	}
	if cfg.Gamma <= 0 || cfg.Gamma >= 1 {
		cfg.Gamma = 0.9
	}
	q := ml.NewMLP(rng, StateDim, cfg.Hidden, cfg.Hidden, action.NumKinds)
	q.LearningRate = cfg.LearningRate
	q.GradClip = 1.0
	return &Agent{
		cfg:    cfg,
		q:      q,
		target: q.Clone(),
		buf:    ml.NewReplayBuffer(cfg.BufferSize),
		rng:    rng,
	}
}

// Q returns the Q-values for every action in the given state.
func (a *Agent) Q(state []float64) []float64 { return a.q.Forward(state) }

// Rank returns all action kinds sorted by descending Q-value — the
// smart model walks this list and applies the best action that passes
// the cost model and constraint filters.
func (a *Agent) Rank(state []float64) []action.Kind {
	qs := a.Q(state)
	kinds := action.All()
	// Insertion sort by Q desc; the action space is tiny.
	for i := 1; i < len(kinds); i++ {
		for j := i; j > 0 && qs[kinds[j]] > qs[kinds[j-1]]; j-- {
			kinds[j], kinds[j-1] = kinds[j-1], kinds[j]
		}
	}
	return kinds
}

// Act picks an action ε-greedily and decays ε.
func (a *Agent) Act(state []float64) action.Kind {
	eps := a.cfg.Epsilon
	if a.rng.Float64() < eps {
		a.decayEpsilon()
		return action.Kind(a.rng.Intn(action.NumKinds))
	}
	a.decayEpsilon()
	return a.Rank(state)[0]
}

func (a *Agent) decayEpsilon() {
	a.cfg.Epsilon *= a.cfg.EpsilonDecay
	if a.cfg.Epsilon < a.cfg.EpsilonMin {
		a.cfg.Epsilon = a.cfg.EpsilonMin
	}
}

// Epsilon returns the current exploration rate.
func (a *Agent) Epsilon() float64 { return a.cfg.Epsilon }

// SetEpsilonFloor adjusts the exploration floor (the slider's Explore
// knob) without retraining — §4.3's "re-calibrate its decisions
// automatically" on slider moves.
func (a *Agent) SetEpsilonFloor(min float64) {
	a.cfg.EpsilonMin = min
	if a.cfg.Epsilon < min {
		a.cfg.Epsilon = min
	}
}

// Observe stores a transition and performs one training step.
func (a *Agent) Observe(tr ml.Transition) float64 {
	a.buf.Add(tr)
	return a.trainStep()
}

// trainStep samples a minibatch and applies one DQN update, returning
// the mean TD loss.
func (a *Agent) trainStep() float64 {
	batch := a.buf.Sample(a.rng, a.cfg.BatchSize)
	if len(batch) == 0 {
		return 0
	}
	var total float64
	for _, tr := range batch {
		target := tr.Reward
		if !tr.Terminal {
			nq := a.target.Forward(tr.NextState)
			var boot float64
			if a.cfg.DoubleDQN {
				// Double DQN: online net picks, target net scores.
				oq := a.q.Forward(tr.NextState)
				argmax := 0
				for i := 1; i < len(oq); i++ {
					if oq[i] > oq[argmax] {
						argmax = i
					}
				}
				boot = nq[argmax]
			} else {
				boot = nq[0]
				for _, v := range nq[1:] {
					if v > boot {
						boot = v
					}
				}
			}
			target += a.cfg.Gamma * boot
		}
		targets := make([]float64, action.NumKinds)
		mask := make([]bool, action.NumKinds)
		targets[tr.Action] = target
		mask[tr.Action] = true
		total += a.q.TrainStep(tr.State, targets, mask)
	}
	a.steps++
	if a.steps%a.cfg.SyncEvery == 0 {
		a.target.CopyFrom(a.q)
	}
	return total / float64(len(batch))
}

// Pretrain fills the replay buffer with historical transitions and
// trains for the given number of steps — the offline phase that lets
// the agent act sensibly from its first live decision.
func (a *Agent) Pretrain(transitions []ml.Transition, steps int) {
	for _, tr := range transitions {
		a.buf.Add(tr)
	}
	for i := 0; i < steps; i++ {
		a.trainStep()
	}
}

// BufferLen exposes the replay buffer size (for tests and dashboards).
func (a *Agent) BufferLen() int { return a.buf.Len() }

// Steps returns the number of gradient steps taken.
func (a *Agent) Steps() int { return a.steps }
