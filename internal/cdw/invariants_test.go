package cdw

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"kwo/internal/simclock"
)

// TestPropertySimulatorInvariants drives random workloads through a
// random warehouse configuration and checks structural invariants at
// periodic checkpoints:
//
//  1. running queries never exceed active clusters × slots,
//  2. a suspended warehouse has no active clusters and no running
//     queries,
//  3. billed credits are non-negative and non-decreasing,
//  4. active clusters never exceed MaxClusters plus draining ones,
//  5. every submitted query eventually completes.
func TestPropertySimulatorInvariants(t *testing.T) {
	f := func(seed int64, sizeIdx, maxC uint8, suspendMin uint8, n uint8) bool {
		sched := simclock.NewScheduler(seed)
		acct := NewAccount(sched, DefaultSimParams())
		cfg := Config{
			Name:        "W",
			Size:        Size(sizeIdx % 4),
			MinClusters: 1,
			MaxClusters: int(maxC%4) + 1,
			Policy:      ScalingPolicy(seed % 2),
			AutoSuspend: time.Duration(int(suspendMin%10)+1) * time.Minute,
			AutoResume:  true,
		}
		wh, err := acct.CreateWarehouse(cfg)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		queries := int(n)%120 + 10
		for i := 0; i < queries; i++ {
			at := simclock.Epoch.Add(time.Duration(rng.Int63n(int64(4 * time.Hour))))
			q := Query{
				Work:         0.5 + rng.Float64()*120,
				ScaleExp:     0.4 + rng.Float64()*0.7,
				ColdFactor:   rng.Float64() * 3,
				TemplateHash: uint64(rng.Intn(20)),
			}
			sched.Schedule(at, "q", func() { _ = acct.Submit("W", q) })
		}
		slots := acct.Params().MaxConcurrency
		lastCredits := 0.0
		ok := true
		check := func() {
			if wh.RunningQueries() > wh.ActiveClusters()*slots {
				ok = false
			}
			if !wh.Running() && (wh.ActiveClusters() != 0 || wh.RunningQueries() != 0) {
				ok = false
			}
			if wh.ActiveClusters() > cfg.MaxClusters+wh.drainingCount() {
				ok = false
			}
			c := wh.Meter().TotalCredits(sched.Now())
			if c < lastCredits-1e-9 {
				ok = false
			}
			lastCredits = c
		}
		for i := 0; i < 24*6; i++ {
			sched.RunFor(10 * time.Minute)
			check()
			if !ok {
				return false
			}
		}
		_, _, _, completed := wh.Stats()
		return completed == queries
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAlterationsPreserveInvariants applies random alterations
// mid-flight and re-checks the same invariants.
func TestPropertyAlterationsPreserveInvariants(t *testing.T) {
	f := func(seed int64) bool {
		sched := simclock.NewScheduler(seed)
		acct := NewAccount(sched, DefaultSimParams())
		cfg := Config{
			Name: "W", Size: SizeSmall, MinClusters: 1, MaxClusters: 3,
			AutoSuspend: 5 * time.Minute, AutoResume: true,
		}
		wh, _ := acct.CreateWarehouse(cfg)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 60; i++ {
			at := simclock.Epoch.Add(time.Duration(rng.Int63n(int64(3 * time.Hour))))
			q := Query{Work: 1 + rng.Float64()*200, ScaleExp: 0.9,
				ColdFactor: 1, TemplateHash: uint64(rng.Intn(8))}
			sched.Schedule(at, "q", func() { _ = acct.Submit("W", q) })
		}
		// Random alterations every 20 minutes.
		for i := 1; i <= 9; i++ {
			at := simclock.Epoch.Add(time.Duration(i) * 20 * time.Minute)
			sched.Schedule(at, "alter", func() {
				var alt Alteration
				switch rng.Intn(5) {
				case 0:
					alt.Size = SizeP(Size(rng.Intn(5)))
				case 1:
					alt.MaxClusters = IntP(rng.Intn(4) + 1)
				case 2:
					alt.AutoSuspend = DurationP(time.Duration(rng.Intn(600)+30) * time.Second)
				case 3:
					alt.Suspend = true
				case 4:
					alt.Resume = true
				}
				// MaxClusters below MinClusters is rejected: also drop
				// min when shrinking max.
				if alt.MaxClusters != nil {
					alt.MinClusters = IntP(1)
				}
				_ = acct.Alter("W", alt, "chaos")
			})
		}
		slots := acct.Params().MaxConcurrency
		for i := 0; i < 5*6; i++ {
			sched.RunFor(10 * time.Minute)
			if wh.RunningQueries() > wh.ActiveClusters()*slots {
				return false
			}
			if !wh.Running() && wh.ActiveClusters() != 0 {
				return false
			}
		}
		// Everything completes eventually (resume if a chaos-suspend
		// stranded the queue; auto-resume handles new arrivals only).
		_ = acct.Alter("W", Alteration{Resume: true}, "chaos")
		sched.RunFor(12 * time.Hour)
		_, _, _, completed := wh.Stats()
		return completed == 60
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestClusterStartSpacing verifies Standard scale-out spaces successive
// cluster launches by ClusterStartSpacing.
func TestClusterStartSpacing(t *testing.T) {
	sched := simclock.NewScheduler(1)
	acct := NewAccount(sched, DefaultSimParams())
	cfg := Config{Name: "W", Size: SizeXSmall, MinClusters: 1, MaxClusters: 4,
		Policy: ScaleStandard, AutoSuspend: time.Hour, AutoResume: true}
	acct.CreateWarehouse(cfg)
	var starts []time.Time
	acct.Subscribe(listenerFuncs{onEvent: func(e WarehouseEvent) {
		if e.Kind == EventClusterStart {
			starts = append(starts, e.Time)
		}
	}})
	// Flood with long queries to force maximal scale-out.
	for i := 0; i < 50; i++ {
		acct.Submit("W", Query{Work: 3600, ScaleExp: 1, TemplateHash: uint64(i)})
	}
	sched.RunFor(10 * time.Minute)
	if len(starts) < 3 {
		t.Fatalf("only %d cluster starts", len(starts))
	}
	spacing := DefaultSimParams().ClusterStartSpacing
	// starts[0] is the initial cluster; scale-out starts begin at [1].
	for i := 2; i < len(starts); i++ {
		if d := starts[i].Sub(starts[i-1]); d < spacing {
			t.Fatalf("cluster starts %d and %d only %v apart, want >= %v", i-1, i, d, spacing)
		}
	}
}

// TestCacheCapacityEviction verifies the per-cluster cache evicts old
// working sets when over capacity, sized by warehouse capacity.
func TestCacheCapacityEviction(t *testing.T) {
	sched := simclock.NewScheduler(1)
	params := DefaultSimParams()
	params.CacheEntriesPerCapacity = 2 // XS holds 2 entries
	acct := NewAccount(sched, params)
	cfg := Config{Name: "W", Size: SizeXSmall, MinClusters: 1, MaxClusters: 1,
		AutoSuspend: time.Hour, AutoResume: true}
	acct.CreateWarehouse(cfg)
	var recs []QueryRecord
	acct.Subscribe(listenerFuncs{onQuery: func(r QueryRecord) { recs = append(recs, r) }})
	run := func(tmpl uint64) {
		acct.Submit("W", Query{Work: 5, ScaleExp: 1, ColdFactor: 2, TemplateHash: tmpl})
		sched.RunFor(time.Minute)
	}
	run(1) // cold; cache {1}
	run(2) // cold; cache {1,2}
	run(3) // cold; evicts 1 → cache {2,3}
	run(1) // must be cold again (evicted)
	run(3) // still warm
	wantCold := []bool{true, true, true, true, false}
	if len(recs) != len(wantCold) {
		t.Fatalf("completed %d", len(recs))
	}
	for i, w := range wantCold {
		if recs[i].ColdRead != w {
			t.Fatalf("query %d cold=%v, want %v", i, recs[i].ColdRead, w)
		}
	}
}

// TestEconomyScaleInSlower verifies Economy retires spare clusters
// later than Standard.
func TestEconomyScaleInSlower(t *testing.T) {
	scaleInTime := func(policy ScalingPolicy) time.Duration {
		sched := simclock.NewScheduler(1)
		acct := NewAccount(sched, DefaultSimParams())
		cfg := Config{Name: "W", Size: SizeXSmall, MinClusters: 1, MaxClusters: 2,
			Policy: policy, AutoSuspend: 2 * time.Hour, AutoResume: true}
		wh, _ := acct.CreateWarehouse(cfg)
		// Force a second cluster.
		for i := 0; i < 20; i++ {
			acct.Submit("W", Query{Work: 600, ScaleExp: 1, TemplateHash: uint64(i)})
		}
		sched.RunFor(time.Minute)
		if wh.ActiveClusters() < 2 {
			// Economy needs enough queued work; pile more on.
			for i := 0; i < 40; i++ {
				acct.Submit("W", Query{Work: 600, ScaleExp: 1, TemplateHash: uint64(100 + i)})
			}
			sched.RunFor(time.Minute)
		}
		if wh.ActiveClusters() < 2 {
			return 0
		}
		// Wait for all queries to finish, then measure time until the
		// spare cluster retires.
		for wh.RunningQueries() > 0 || wh.QueueLength() > 0 {
			sched.RunFor(10 * time.Minute)
		}
		start := sched.Now()
		for wh.ActiveClusters() > 1 {
			sched.RunFor(time.Minute)
			if sched.Now().Sub(start) > 2*time.Hour {
				break
			}
		}
		return sched.Now().Sub(start)
	}
	std := scaleInTime(ScaleStandard)
	eco := scaleInTime(ScaleEconomy)
	if std == 0 || eco == 0 {
		t.Skip("could not provoke scale-out")
	}
	if eco <= std {
		t.Fatalf("economy scale-in (%v) not slower than standard (%v)", eco, std)
	}
}

// listenerFuncs adapts closures to the Listener interface.
type listenerFuncs struct {
	onQuery  func(QueryRecord)
	onChange func(ConfigChange)
	onEvent  func(WarehouseEvent)
}

func (l listenerFuncs) OnQuery(r QueryRecord) {
	if l.onQuery != nil {
		l.onQuery(r)
	}
}
func (l listenerFuncs) OnChange(c ConfigChange) {
	if l.onChange != nil {
		l.onChange(c)
	}
}
func (l listenerFuncs) OnWarehouseEvent(e WarehouseEvent) {
	if l.onEvent != nil {
		l.onEvent(e)
	}
}
