package cdw

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSizeDoubling(t *testing.T) {
	for s := MinSize; s < MaxSize; s++ {
		if got, want := s.Up().CreditsPerHour(), 2*s.CreditsPerHour(); got != want {
			t.Errorf("%s→%s credits %v, want %v", s, s.Up(), got, want)
		}
		if got, want := s.Up().Capacity(), 2*s.Capacity(); got != want {
			t.Errorf("%s→%s capacity %v, want %v", s, s.Up(), got, want)
		}
	}
	if SizeXSmall.CreditsPerHour() != 1 {
		t.Errorf("X-Small credits/hour = %v, want 1", SizeXSmall.CreditsPerHour())
	}
}

func TestSizeParseRoundTrip(t *testing.T) {
	for s := MinSize; s <= MaxSize; s++ {
		got, err := ParseSize(s.String())
		if err != nil {
			t.Fatalf("ParseSize(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("round trip %v → %v", s, got)
		}
	}
	if _, err := ParseSize("Gigantic"); err == nil {
		t.Fatal("ParseSize accepted unknown name")
	}
}

func TestSizeClampUpDown(t *testing.T) {
	if MaxSize.Up() != MaxSize {
		t.Error("Up past MaxSize not clamped")
	}
	if MinSize.Down() != MinSize {
		t.Error("Down past MinSize not clamped")
	}
	if SizeLarge.Clamp(SizeXSmall, SizeMedium) != SizeMedium {
		t.Error("Clamp upper bound failed")
	}
	if SizeXSmall.Clamp(SizeSmall, SizeLarge) != SizeSmall {
		t.Error("Clamp lower bound failed")
	}
	if !SizeMedium.Valid() || Size(99).Valid() {
		t.Error("Valid() wrong")
	}
}

func TestConfigValidate(t *testing.T) {
	base := Config{Name: "W", Size: SizeSmall, MinClusters: 1, MaxClusters: 2,
		AutoSuspend: time.Minute, AutoResume: true}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(Config) Config
	}{
		{"empty name", func(c Config) Config { c.Name = ""; return c }},
		{"bad size", func(c Config) Config { c.Size = Size(42); return c }},
		{"zero min clusters", func(c Config) Config { c.MinClusters = 0; return c }},
		{"max < min", func(c Config) Config { c.MaxClusters = 0; return c }},
		{"negative suspend", func(c Config) Config { c.AutoSuspend = -time.Second; return c }},
	}
	for _, tc := range cases {
		if err := tc.mut(base).Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
	}
}

func TestAlterationApply(t *testing.T) {
	c := Config{Name: "W", Size: SizeSmall, MinClusters: 1, MaxClusters: 2,
		Policy: ScaleStandard, AutoSuspend: time.Minute, AutoResume: true}
	a := Alteration{
		Size:        SizeP(SizeLarge),
		MaxClusters: IntP(5),
		Policy:      PolicyP(ScaleEconomy),
		AutoSuspend: DurationP(30 * time.Second),
		AutoResume:  BoolP(false),
	}
	got := a.Apply(c)
	if got.Size != SizeLarge || got.MaxClusters != 5 || got.Policy != ScaleEconomy ||
		got.AutoSuspend != 30*time.Second || got.AutoResume {
		t.Fatalf("Apply result %+v", got)
	}
	if got.MinClusters != 1 || got.Name != "W" {
		t.Fatal("Apply touched fields it should not have")
	}
	if !(Alteration{}).IsZero() {
		t.Fatal("zero alteration not IsZero")
	}
	if a.IsZero() {
		t.Fatal("non-zero alteration IsZero")
	}
}

func TestAlterationString(t *testing.T) {
	a := Alteration{Size: SizeP(SizeMedium), AutoSuspend: DurationP(90 * time.Second)}
	s := a.String()
	want1, want2 := "WAREHOUSE_SIZE=Medium", "AUTO_SUSPEND=90"
	if !contains(s, want1) || !contains(s, want2) {
		t.Fatalf("String() = %q, want to contain %q and %q", s, want1, want2)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Property: a query's latency is non-increasing in warehouse size, and a
// cold read is never faster than a warm one.
func TestPropertyLatencyMonotone(t *testing.T) {
	f := func(workMS uint32, expPct uint8, coldPct uint8) bool {
		q := Query{
			Work:       float64(workMS%1_000_000)/1000 + 0.01,
			ScaleExp:   0.3 + float64(expPct%80)/100, // 0.3..1.09
			ColdFactor: float64(coldPct) / 100,       // 0..2.55
		}
		for s := MinSize; s < MaxSize; s++ {
			if q.Latency(s.Up(), true) > q.Latency(s, true) {
				return false
			}
			if q.Latency(s, false) < q.Latency(s, true) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScalingPolicyString(t *testing.T) {
	if ScaleStandard.String() != "Standard" || ScaleEconomy.String() != "Economy" {
		t.Fatal("policy names wrong")
	}
}
