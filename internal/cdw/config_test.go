package cdw

import (
	"testing"
	"time"
)

// TestMaximizedSingleCluster pins the Maximized definition: Maximized
// is a multi-cluster mode, so a Min=Max=1 warehouse is an ordinary
// single-cluster warehouse, never Maximized. (Regression: the predicate
// once returned true for Min=Max=1, contradicting its own doc comment.)
func TestMaximizedSingleCluster(t *testing.T) {
	cases := []struct {
		min, max int
		want     bool
	}{
		{1, 1, false}, // plain single-cluster, the regression case
		{2, 2, true},  // genuine Maximized
		{3, 3, true},
		{1, 2, false}, // auto-scale, not Maximized
		{1, 4, false},
	}
	for _, c := range cases {
		cfg := Config{Name: "W", Size: SizeSmall, MinClusters: c.min, MaxClusters: c.max}
		if got := cfg.Maximized(); got != c.want {
			t.Errorf("Config{Min:%d,Max:%d}.Maximized() = %v, want %v", c.min, c.max, got, c.want)
		}
	}
}

// TestAutoSuspendRoundingPinned pins the exact SQL an AUTO_SUSPEND
// alteration renders and requires Apply to install the same whole-second
// value: the audit log must never disagree with the configuration it
// describes. (Regression: String once truncated while Apply rounded, so
// 90.5s logged AUTO_SUSPEND=90 but configured 91s.)
func TestAutoSuspendRoundingPinned(t *testing.T) {
	cases := []struct {
		in      time.Duration
		wantSQL string
		wantCfg time.Duration
	}{
		{90 * time.Second, "ALTER WAREHOUSE SET AUTO_SUSPEND=90", 90 * time.Second},
		{90*time.Second + 500*time.Millisecond, "ALTER WAREHOUSE SET AUTO_SUSPEND=91", 91 * time.Second},
		{90*time.Second + 499*time.Millisecond, "ALTER WAREHOUSE SET AUTO_SUSPEND=90", 90 * time.Second},
		{499 * time.Millisecond, "ALTER WAREHOUSE SET AUTO_SUSPEND=0", 0},
	}
	base := Config{Name: "W", Size: SizeSmall, MinClusters: 1, MaxClusters: 1}
	for _, c := range cases {
		alt := Alteration{AutoSuspend: DurationP(c.in)}
		if got := alt.String(); got != c.wantSQL {
			t.Errorf("Alteration{AutoSuspend:%v}.String() = %q, want %q", c.in, got, c.wantSQL)
		}
		if got := alt.Apply(base).AutoSuspend; got != c.wantCfg {
			t.Errorf("Apply installed AutoSuspend=%v for input %v, want %v", got, c.in, c.wantCfg)
		}
	}
}
