package backendtest_test

import (
	"flag"
	"testing"

	"kwo/internal/cdw"
	"kwo/internal/cdw/backendtest"
)

// conformanceBackend restricts the suite to one backend, so CI can run
// a matrix leg per backend:
//
//	go test -race ./internal/cdw/backendtest -conformance-backend=bigquery
var conformanceBackend = flag.String("conformance-backend", "",
	"run the conformance suite against only this backend (default: all registered)")

// TestConformance runs every registered backend through the suite. A
// new backend registered with the cdw package is picked up here
// automatically — there is no separate list to keep in sync.
func TestConformance(t *testing.T) {
	names := cdw.BackendNames()
	if *conformanceBackend != "" {
		names = []string{*conformanceBackend}
	}
	for _, name := range names {
		b, err := cdw.BackendByName(name)
		if err != nil {
			t.Fatalf("BackendByName(%q): %v", name, err)
		}
		t.Run(name, func(t *testing.T) { backendtest.Run(t, b) })
	}
}
