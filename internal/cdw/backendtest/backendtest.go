// Package backendtest is a reusable conformance suite for CDW backend
// implementations. Every backend registered with the cdw package — and
// any future one — must pass it; the suite pins the contract the rest
// of the system leans on:
//
//   - metering is non-negative and monotone, and aggregate credit reads
//     (TotalCredits, CreditsBetween, Hourly) agree with each other;
//   - billed intervals honor the backend's declared BillingRule — the
//     per-start minimum and the quantum round-up — exactly;
//   - absolute ALTERs are idempotent, so a blind retry after a lost
//     acknowledgment can never corrupt configuration;
//   - capability gating is honest: knobs the backend cannot honor are
//     rejected with a CapabilityError and leave both the configuration
//     and the audit log untouched, while identity values still pass;
//   - billing-history pulls stay gapless under injected faults when the
//     caller advances its cursor only to the returned watermark;
//   - a fixed seed reproduces byte-identical billing and audit traces.
//
// Drive it from a normal test:
//
//	func TestMyBackend(t *testing.T) { backendtest.Run(t, mybackend.New()) }
package backendtest

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/cdw/backend"
	"kwo/internal/simclock"
)

// whName is the warehouse every conformance environment provisions.
const whName = "CONF_WH"

// Run exercises one backend against the full conformance suite.
func Run(t *testing.T, b backend.Backend) {
	t.Helper()
	if b == nil {
		t.Fatal("backendtest: nil backend")
	}
	if b.Name() == "" {
		t.Fatal("backendtest: backend has an empty name")
	}
	t.Run("DeclaredRule", func(t *testing.T) { testDeclaredRule(t, b) })
	t.Run("MeteringMonotone", func(t *testing.T) { testMeteringMonotone(t, b) })
	t.Run("BillingRuleHonesty", func(t *testing.T) { testBillingRuleHonesty(t, b) })
	t.Run("IdempotentAbsoluteAlters", func(t *testing.T) { testIdempotentAlters(t, b) })
	t.Run("CapabilityGating", func(t *testing.T) { testCapabilityGating(t, b) })
	t.Run("BillingGaplessUnderFaults", func(t *testing.T) { testBillingGapless(t, b) })
	t.Run("DeterministicPerSeed", func(t *testing.T) { testDeterminism(t, b) })
}

// env is one isolated conformance environment: a seeded virtual clock,
// an account on the backend under test, and a single warehouse whose
// base configuration requests nothing the backend lacks.
type env struct {
	sched *simclock.Scheduler
	acct  *cdw.Account
	wh    *cdw.Warehouse
	start time.Time
}

// baseConfig is the minimal configuration valid on every backend:
// single cluster, no auto-suspend, no auto-resume. Capabilities the
// backend does hold are exercised by the individual subtests, not here.
func baseConfig() cdw.Config {
	return cdw.Config{
		Name:        whName,
		Size:        cdw.SizeXSmall,
		MinClusters: 1,
		MaxClusters: 1,
		Policy:      cdw.ScaleStandard,
		AutoSuspend: 0,
		AutoResume:  false,
	}
}

func newEnv(t *testing.T, b backend.Backend, seed int64) *env {
	t.Helper()
	sched := simclock.NewScheduler(seed)
	acct := cdw.NewAccountWithBackend(sched, cdw.DefaultSimParams(), b)
	wh, err := acct.CreateWarehouse(baseConfig())
	if err != nil {
		t.Fatalf("CreateWarehouse(base config) on %s: %v", b.Name(), err)
	}
	return &env{sched: sched, acct: acct, wh: wh, start: sched.Now()}
}

// submit schedules a query at the given offset from the run start.
func (e *env) submit(at time.Duration, work float64, tmpl uint64) {
	e.sched.Schedule(e.start.Add(at), "backendtest:submit", func() {
		q := cdw.Query{
			TextHash:     tmpl*1009 + uint64(at/time.Second),
			TemplateHash: tmpl,
			UserHash:     7,
			Work:         work,
			ScaleExp:     1.0,
			ColdFactor:   1.5,
		}
		if err := e.acct.Submit(whName, q); err != nil {
			panic(fmt.Sprintf("backendtest: submit at %v: %v", at, err))
		}
	})
}

// alterAt schedules an Alter at the given offset and fails the test if
// it errors.
func (e *env) alterAt(t *testing.T, at time.Duration, alt cdw.Alteration, actor string) {
	t.Helper()
	e.sched.Schedule(e.start.Add(at), "backendtest:alter", func() {
		if err := e.acct.Alter(whName, alt, actor); err != nil {
			t.Errorf("alter %q at %v: %v", alt.String(), at, err)
		}
	})
}

const creditEps = 1e-9

// testDeclaredRule sanity-checks the static surface of the backend
// before anything dynamic runs against it.
func testDeclaredRule(t *testing.T, b backend.Backend) {
	rule := b.Billing()
	if rule.Quantum < 0 || rule.MinPerStart < 0 {
		t.Fatalf("billing rule has negative components: %+v", rule)
	}
	if g := b.MeteringGranularity(); g <= 0 {
		t.Fatalf("metering granularity must be positive, got %v", g)
	}
	base := 2 * time.Second
	if d := b.ResumeDelay(base); d < 0 {
		t.Errorf("ResumeDelay(%v) = %v, want >= 0", base, d)
	}
	if d := b.ClusterStartDelay(base); d < 0 {
		t.Errorf("ClusterStartDelay(%v) = %v, want >= 0", base, d)
	}
	// BilledEnd must never bill less than the actual interval, and must
	// be monotone in the stop time.
	s := time.Unix(0, 0).UTC()
	prev := s
	for _, run := range []time.Duration{0, time.Second, 37 * time.Second, 61 * time.Second, time.Hour + time.Minute} {
		end := rule.BilledEnd(s, s.Add(run))
		if end.Before(s.Add(run)) {
			t.Errorf("BilledEnd bills %v for a %v run (less than actual)", end.Sub(s), run)
		}
		if end.Before(prev) {
			t.Errorf("BilledEnd not monotone: run %v billed to %v, shorter run billed to %v", run, end, prev)
		}
		prev = end
	}
}

// testMeteringMonotone drives a short workload while sampling aggregate
// credits, then cross-checks every aggregate read against the others.
func testMeteringMonotone(t *testing.T, b backend.Backend) {
	e := newEnv(t, b, 101)
	for i := 0; i < 24; i++ {
		e.submit(time.Duration(i)*5*time.Minute, 3+float64(i%5), uint64(i%3))
	}
	var samples []float64
	for i := 0; i <= 36; i++ {
		at := time.Duration(i) * 5 * time.Minute
		e.sched.Schedule(e.start.Add(at), "backendtest:sample", func() {
			samples = append(samples, e.wh.Meter().TotalCredits(e.sched.Now()))
		})
	}
	e.sched.RunUntil(e.start.Add(3 * time.Hour))

	for i, c := range samples {
		if c < 0 {
			t.Fatalf("sample %d: negative credits %g", i, c)
		}
		if i > 0 && c < samples[i-1]-creditEps {
			t.Fatalf("credits regressed between samples %d and %d: %g -> %g", i-1, i, samples[i-1], c)
		}
	}

	now := e.sched.Now()
	m := e.wh.Meter()
	total := m.TotalCredits(now)
	mid := e.start.Add(90 * time.Minute)
	far := now.Add(24 * time.Hour)
	split := m.CreditsBetween(e.start.Add(-time.Hour), mid, now) + m.CreditsBetween(mid, far, now)
	if math.Abs(split-total) > 1e-6 {
		t.Errorf("CreditsBetween split %g != TotalCredits %g", split, total)
	}
	var hourly float64
	for _, row := range m.Hourly(e.start.Add(-time.Hour), far, now) {
		if row.Credits < -creditEps {
			t.Errorf("hour %v has negative credits %g", row.HourStart, row.Credits)
		}
		hourly += row.Credits
	}
	if math.Abs(hourly-total) > 1e-6 {
		t.Errorf("Hourly sum %g != TotalCredits %g", hourly, total)
	}
}

// testBillingRuleHonesty drives two explicit cluster runs and checks
// that the metered intervals match the backend's declared BillingRule —
// the per-start minimum on a short run, the quantum round-up on a long
// one, and no padding at all when the rule is zero.
func testBillingRuleHonesty(t *testing.T, b backend.Backend) {
	e := newEnv(t, b, 202)
	rule := b.Billing()

	// Run A: the warehouse is created running; stop it after a short
	// interval chosen to land inside any per-start minimum.
	runA := 37 * time.Second
	e.alterAt(t, runA, cdw.Alteration{Suspend: true}, "backendtest")

	// Run B: resume later, run past one quantum (or a few minutes when
	// the rule has none), stop again.
	resumeAt := 2 * time.Hour
	runB := 4 * time.Minute
	if rule.Quantum > 0 {
		runB = rule.Quantum + 7*time.Minute
	}
	e.alterAt(t, resumeAt, cdw.Alteration{Resume: true}, "backendtest")
	e.alterAt(t, resumeAt+runB, cdw.Alteration{Suspend: true}, "backendtest")

	horizon := resumeAt + runB + 3*time.Hour
	if rule.Quantum > 0 {
		horizon += 2 * rule.Quantum
	}
	e.sched.RunUntil(e.start.Add(horizon))

	now := e.sched.Now()
	segs := e.wh.Meter().Segments(now)
	if len(segs) != 2 {
		t.Fatalf("want 2 closed segments (two cluster runs), got %d: %+v", len(segs), segs)
	}
	for i, want := range []time.Duration{runA, runB} {
		seg := segs[i]
		if seg.End.IsZero() {
			t.Fatalf("segment %d still open after suspend", i)
		}
		actual := seg.End.Sub(seg.Start)
		if actual != want {
			t.Fatalf("segment %d actual duration %v, want %v", i, actual, want)
		}
		wantEnd := rule.BilledEnd(seg.Start, seg.End)
		if !seg.BilledEnd().Equal(wantEnd) {
			t.Errorf("segment %d billed to %v; rule %+v demands %v", i, seg.BilledEnd(), rule, wantEnd)
		}
		billed := seg.BilledEnd().Sub(seg.Start)
		if rule.MinPerStart > 0 && billed < rule.MinPerStart {
			t.Errorf("segment %d billed %v, below the declared per-start minimum %v", i, billed, rule.MinPerStart)
		}
		if rule.Quantum > 0 && billed%rule.Quantum != 0 {
			t.Errorf("segment %d billed %v, not a multiple of the declared quantum %v", i, billed, rule.Quantum)
		}
		if rule.MinPerStart == 0 && rule.Quantum == 0 && billed != actual {
			t.Errorf("segment %d billed %v for a %v run under a zero rule (no padding allowed)", i, billed, actual)
		}
	}

	var wantCredits float64
	for _, seg := range segs {
		wantCredits += seg.Size.CreditsPerHour() * rule.BilledEnd(seg.Start, seg.End).Sub(seg.Start).Hours()
	}
	if got := e.wh.Meter().TotalCredits(now); math.Abs(got-wantCredits) > 1e-9 {
		t.Errorf("TotalCredits %g, want %g from the declared rule", got, wantCredits)
	}
}

// supportedAbsoluteAlter builds an absolute alteration that pins every
// knob the backend supports to a non-default value and every other knob
// to its current (identity) value.
func supportedAbsoluteAlter(b backend.Backend, cur cdw.Config) cdw.Alteration {
	alt := cdw.Alteration{
		Size:        cdw.SizeP(cur.Size),
		MinClusters: cdw.IntP(cur.MinClusters),
		MaxClusters: cdw.IntP(cur.MaxClusters),
		Policy:      cdw.PolicyP(cur.Policy),
		AutoSuspend: cdw.DurationP(cur.AutoSuspend),
		AutoResume:  cdw.BoolP(cur.AutoResume),
	}
	if b.Has(backend.CapResize) {
		alt.Size = cdw.SizeP(cdw.SizeSmall)
	}
	if b.Has(backend.CapMultiCluster) {
		alt.MaxClusters = cdw.IntP(3)
		alt.Policy = cdw.PolicyP(cdw.ScaleEconomy)
	}
	if b.Has(backend.CapAutoSuspend) {
		alt.AutoSuspend = cdw.DurationP(7 * time.Minute)
	}
	if b.Has(backend.CapAutoResume) {
		alt.AutoResume = cdw.BoolP(true)
	}
	return alt
}

// testIdempotentAlters applies the same absolute alteration twice: the
// second application must succeed, change nothing, and render the same
// statement — the property blind retries after lost ACKs depend on.
func testIdempotentAlters(t *testing.T, b backend.Backend) {
	e := newEnv(t, b, 303)
	alt := supportedAbsoluteAlter(b, e.wh.Config())

	if err := e.acct.Alter(whName, alt, "backendtest"); err != nil {
		t.Fatalf("first apply of %q: %v", alt.String(), err)
	}
	after1 := e.wh.Config()
	if err := e.acct.Alter(whName, alt, "backendtest"); err != nil {
		t.Fatalf("retried apply of %q: %v", alt.String(), err)
	}
	after2 := e.wh.Config()
	if after1 != after2 {
		t.Fatalf("absolute alter not idempotent:\n first: %+v\nsecond: %+v", after1, after2)
	}

	changes := e.acct.Changes()
	if len(changes) != 2 {
		t.Fatalf("want 2 audit rows (every statement is logged), got %d", len(changes))
	}
	if changes[0].Statement != changes[1].Statement {
		t.Errorf("same alteration rendered differently:\n%s\n%s", changes[0].Statement, changes[1].Statement)
	}
	if changes[1].Before != changes[1].After {
		t.Errorf("retry row records a config change: before %+v after %+v", changes[1].Before, changes[1].After)
	}
	if changes[0].After != after1 {
		t.Errorf("audit After %+v disagrees with live config %+v", changes[0].After, after1)
	}
}

// capProbe is one capability paired with an alteration that requires it
// and an identity alteration on the same knob that must always pass.
type capProbe struct {
	cap       backend.Capability
	violating cdw.Alteration
	identity  cdw.Alteration
}

func capProbes() []capProbe {
	return []capProbe{
		{backend.CapAutoSuspend,
			cdw.Alteration{AutoSuspend: cdw.DurationP(10 * time.Minute)},
			cdw.Alteration{AutoSuspend: cdw.DurationP(0)}},
		{backend.CapAutoResume,
			cdw.Alteration{AutoResume: cdw.BoolP(true)},
			cdw.Alteration{AutoResume: cdw.BoolP(false)}},
		{backend.CapMultiCluster,
			cdw.Alteration{MaxClusters: cdw.IntP(2)},
			cdw.Alteration{MaxClusters: cdw.IntP(1)}},
		{backend.CapResize,
			cdw.Alteration{Size: cdw.SizeP(cdw.SizeSmall)},
			cdw.Alteration{Size: cdw.SizeP(cdw.SizeXSmall)}},
	}
}

// testCapabilityGating checks each capability in both directions: a
// lacked capability rejects violating knobs (permanently, leaving no
// trace) while identity values still pass; a held capability applies.
func testCapabilityGating(t *testing.T, b backend.Backend) {
	for _, p := range capProbes() {
		p := p
		t.Run(p.cap.String(), func(t *testing.T) {
			e := newEnv(t, b, 404)
			if b.Has(p.cap) {
				if err := e.acct.Alter(whName, p.violating, "backendtest"); err != nil {
					t.Fatalf("backend holds %v but rejected %q: %v", p.cap, p.violating.String(), err)
				}
				return
			}
			before := e.wh.Config()
			audit := len(e.acct.Changes())
			err := e.acct.Alter(whName, p.violating, "backendtest")
			if err == nil {
				t.Fatalf("backend lacks %v but silently accepted %q", p.cap, p.violating.String())
			}
			if !cdw.IsCapabilityError(err) {
				t.Fatalf("want CapabilityError for %q, got %T: %v", p.violating.String(), err, err)
			}
			if cdw.IsTransient(err) {
				t.Errorf("capability rejection must be permanent, got a transient error: %v", err)
			}
			if !strings.Contains(err.Error(), b.Name()) {
				t.Errorf("capability error should name the backend %q: %v", b.Name(), err)
			}
			if got := e.wh.Config(); got != before {
				t.Errorf("rejected alter mutated config: before %+v after %+v", before, got)
			}
			if got := len(e.acct.Changes()); got != audit {
				t.Errorf("rejected alter left %d new audit rows", got-audit)
			}
			// Identity values on the same knob are not requests for the
			// missing feature and must keep working (absolute restores).
			if err := e.acct.Alter(whName, p.identity, "backendtest"); err != nil {
				t.Errorf("identity alter %q rejected on %s: %v", p.identity.String(), b.Name(), err)
			}
			// Creating a warehouse that needs the capability must fail too.
			cfg := baseConfig()
			cfg.Name = "CONF_WH_GATE"
			switch p.cap {
			case backend.CapAutoSuspend:
				cfg.AutoSuspend = 5 * time.Minute
			case backend.CapAutoResume:
				cfg.AutoResume = true
			case backend.CapMultiCluster:
				cfg.MaxClusters = 2
			case backend.CapResize:
				return // any fixed size is valid at creation
			}
			if _, err := e.acct.CreateWarehouse(cfg); !cdw.IsCapabilityError(err) {
				t.Errorf("CreateWarehouse needing %v: want CapabilityError, got %v", p.cap, err)
			}
		})
	}
}

// testBillingGapless runs a workload behind billing lag and an outage
// window, pulling history on a cursor advanced only to the returned
// watermark. The assembled rows must tile the timeline in exact
// granularity steps with no gaps, duplicates, or lost credits.
func testBillingGapless(t *testing.T, b backend.Backend) {
	e := newEnv(t, b, 505)
	gran := b.MeteringGranularity()
	for i := 0; i < 60; i++ {
		e.submit(time.Duration(i)*13*time.Minute, 2+float64(i%7), uint64(i%4))
	}
	faultsEnd := e.start.Add(10 * time.Hour)
	e.acct.SetFaults(cdw.FaultPlan{
		BillingLag: 2 * time.Hour,
		BillingOutages: []cdw.FaultWindow{
			{From: e.start.Add(3 * time.Hour), To: e.start.Add(5 * time.Hour)},
		},
		Until: faultsEnd,
	})

	var rows []cdw.HourlyRecord
	var transients int
	cursor := e.start.Truncate(gran)
	for i := 1; i <= 32; i++ {
		at := time.Duration(i) * 30 * time.Minute
		e.sched.Schedule(e.start.Add(at), "backendtest:pull", func() {
			now := e.sched.Now()
			got, wm, err := e.acct.BillingHistory(whName, cursor, now.Truncate(gran))
			if err != nil {
				if !cdw.IsTransient(err) {
					t.Errorf("billing pull at %v: non-transient error %v", now, err)
				}
				transients++
				return // cursor stays put; the next pull re-covers the span
			}
			rows = append(rows, got...)
			cursor = wm
		})
	}
	e.sched.RunUntil(e.start.Add(16 * time.Hour))
	if transients == 0 {
		t.Error("outage window injected but no pull hit it; widen the schedule")
	}

	// Faults expired mid-run, so the final pull reaches the present.
	now := e.sched.Now()
	final := now.Truncate(gran)
	got, wm, err := e.acct.BillingHistory(whName, cursor, final)
	if err != nil {
		t.Fatalf("final billing pull: %v", err)
	}
	rows = append(rows, got...)
	if !wm.Equal(final) {
		t.Fatalf("watermark %v short of %v after the fault plan expired", wm, final)
	}

	if len(rows) == 0 {
		t.Fatal("no billing rows assembled")
	}
	for i, r := range rows {
		if r.Credits < -creditEps {
			t.Errorf("row %d (%v) has negative credits %g", i, r.HourStart, r.Credits)
		}
		if want := rows[0].HourStart.Add(time.Duration(i) * gran); !r.HourStart.Equal(want) {
			t.Fatalf("row %d starts %v, want %v — watermark-advanced pulls must tile gaplessly in %v steps",
				i, r.HourStart, want, gran)
		}
	}
	var sum float64
	for _, r := range rows {
		sum += r.Credits
	}
	want := e.wh.Meter().CreditsBetween(rows[0].HourStart, final, now)
	if math.Abs(sum-want) > 1e-6 {
		t.Errorf("assembled rows sum to %g credits, meter says %g — credits lost across fault windows", sum, want)
	}
}

// trace runs a seeded workload with config changes and returns a
// printable fingerprint of everything observable: billed segments,
// hourly rows, audit statements, and lifecycle counters.
func trace(t *testing.T, b backend.Backend, seed int64) string {
	t.Helper()
	e := newEnv(t, b, seed)
	rng := e.sched.Rand("backendtest:load")
	at := time.Duration(0)
	for i := 0; i < 40; i++ {
		at += time.Duration(2+rng.Intn(9)) * time.Minute
		e.submit(at, 1+rng.Float64()*8, uint64(rng.Intn(5)))
	}
	alt := supportedAbsoluteAlter(b, e.wh.Config())
	e.alterAt(t, 90*time.Minute, alt, "backendtest")
	e.alterAt(t, 4*time.Hour, cdw.Alteration{Suspend: true}, "backendtest")
	e.alterAt(t, 5*time.Hour, cdw.Alteration{Resume: true}, "backendtest")
	e.sched.RunUntil(e.start.Add(8 * time.Hour))

	now := e.sched.Now()
	var sb strings.Builder
	for _, seg := range e.wh.Meter().Segments(now) {
		fmt.Fprintf(&sb, "seg c%d %s %s..%s billed=%s\n", seg.ClusterID, seg.Size,
			seg.Start.Format(time.RFC3339), seg.End.Format(time.RFC3339),
			seg.BilledEnd().Format(time.RFC3339))
	}
	for _, row := range e.wh.Meter().Hourly(e.start, now.Add(time.Hour), now) {
		fmt.Fprintf(&sb, "hour %s %.9f\n", row.HourStart.Format(time.RFC3339), row.Credits)
	}
	for _, ch := range e.acct.Changes() {
		fmt.Fprintf(&sb, "audit %s %s %s\n", ch.Time.Format(time.RFC3339), ch.Actor, ch.Statement)
	}
	resumes, suspends, coldReads, completed := e.wh.Stats()
	fmt.Fprintf(&sb, "stats r=%d s=%d c=%d q=%d total=%.9f\n",
		resumes, suspends, coldReads, completed, e.wh.Meter().TotalCredits(now))
	return sb.String()
}

// testDeterminism replays the same seeded drive twice and demands
// byte-identical traces; a third run on another seed guards against the
// trace being trivially constant.
func testDeterminism(t *testing.T, b backend.Backend) {
	t1 := trace(t, b, 606)
	t2 := trace(t, b, 606)
	if t1 != t2 {
		t.Fatalf("same seed produced different traces:\n--- run 1 ---\n%s--- run 2 ---\n%s", t1, t2)
	}
	if t3 := trace(t, b, 607); t3 == t1 {
		t.Error("different seeds produced identical traces; the drive is not exercising the seed")
	}
}
