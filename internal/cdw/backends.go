package cdw

import (
	"errors"
	"fmt"
	"sort"

	"kwo/internal/cdw/backend"
	"kwo/internal/cdw/backend/bigquery"
	"kwo/internal/cdw/backend/redshift"
	"kwo/internal/cdw/backend/snowflake"
)

// DefaultBackend is the backend every account uses unless told
// otherwise: the Snowflake-shaped simulator the repository started
// with.
func DefaultBackend() backend.Backend { return snowflake.New() }

var registeredBackends = map[string]backend.Backend{
	"snowflake": snowflake.New(),
	"bigquery":  bigquery.New(),
	"redshift":  redshift.New(),
}

// BackendByName resolves a backend by its stable name. The empty string
// resolves to the default (Snowflake) backend, so zero-valued
// configurations keep their historical behaviour.
func BackendByName(name string) (backend.Backend, error) {
	if name == "" {
		return DefaultBackend(), nil
	}
	b, ok := registeredBackends[name]
	if !ok {
		return nil, fmt.Errorf("cdw: unknown backend %q (have %v)", name, BackendNames())
	}
	return b, nil
}

// BackendNames lists the registered backends in sorted order.
func BackendNames() []string {
	out := make([]string, 0, len(registeredBackends))
	for name := range registeredBackends {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CapabilityError reports an ALTER or configuration that depends on a
// control-plane feature the backend does not have. It is permanent, not
// transient: retrying the same statement can never succeed, so the
// actuator records it as a permanent failure instead of backing off.
type CapabilityError struct {
	Backend string
	Knob    string             // the rejected knob, e.g. "AUTO_SUSPEND"
	Needs   backend.Capability // the missing capability
}

// Error implements error.
func (e *CapabilityError) Error() string {
	return fmt.Sprintf("cdw: backend %s does not support %s (requires %s)",
		e.Backend, e.Knob, e.Needs)
}

// IsCapabilityError reports whether err is (or wraps) a CapabilityError.
func IsCapabilityError(err error) bool {
	var ce *CapabilityError
	return errors.As(err, &ce)
}

// checkAlterationCapabilities rejects the knobs of an alteration the
// backend cannot honour. A knob is rejected when it is present AND asks
// for a state the backend has no concept of — setting AUTO_SUSPEND=0 on
// a backend without auto-suspend is the only state it knows and passes,
// while any positive value must fail loudly rather than be silently
// dropped.
func checkAlterationCapabilities(b backend.Backend, cur Config, a Alteration) error {
	reject := func(knob string, needs backend.Capability) error {
		return &CapabilityError{Backend: b.Name(), Knob: knob, Needs: needs}
	}
	if a.AutoSuspend != nil && *a.AutoSuspend != 0 && !b.Has(backend.CapAutoSuspend) {
		return reject("AUTO_SUSPEND", backend.CapAutoSuspend)
	}
	if a.AutoResume != nil && *a.AutoResume && !b.Has(backend.CapAutoResume) {
		return reject("AUTO_RESUME", backend.CapAutoResume)
	}
	if !b.Has(backend.CapMultiCluster) {
		if a.MinClusters != nil && *a.MinClusters > 1 {
			return reject("MIN_CLUSTER_COUNT", backend.CapMultiCluster)
		}
		if a.MaxClusters != nil && *a.MaxClusters > 1 {
			return reject("MAX_CLUSTER_COUNT", backend.CapMultiCluster)
		}
		if a.Policy != nil && *a.Policy != ScaleStandard {
			return reject("SCALING_POLICY", backend.CapMultiCluster)
		}
	}
	if a.Size != nil && *a.Size != cur.Size && !b.Has(backend.CapResize) {
		return reject("WAREHOUSE_SIZE", backend.CapResize)
	}
	return nil
}

// checkConfigCapabilities rejects a creation-time configuration that
// depends on features the backend does not have.
func checkConfigCapabilities(b backend.Backend, cfg Config) error {
	reject := func(knob string, needs backend.Capability) error {
		return &CapabilityError{Backend: b.Name(), Knob: knob, Needs: needs}
	}
	if cfg.AutoSuspend > 0 && !b.Has(backend.CapAutoSuspend) {
		return reject("AUTO_SUSPEND", backend.CapAutoSuspend)
	}
	if cfg.AutoResume && !b.Has(backend.CapAutoResume) {
		return reject("AUTO_RESUME", backend.CapAutoResume)
	}
	if cfg.MaxClusters > 1 && !b.Has(backend.CapMultiCluster) {
		return reject("MAX_CLUSTER_COUNT", backend.CapMultiCluster)
	}
	return nil
}

// compile-time interface checks for the registered backends.
var (
	_ backend.Backend = snowflake.Backend{}
	_ backend.Backend = bigquery.Backend{}
	_ backend.Backend = redshift.Backend{}
)
