// Package bigquery is a BigQuery-shaped backend: slot-reservation style
// capacity billed per second with no minimum, noticeably slower
// capacity provisioning than Snowflake, and no multi-cluster
// auto-scale (one reservation serves the warehouse). Auto-suspend and
// auto-resume exist (flex-slot style), so idle capacity can still be
// released automatically.
package bigquery

import (
	"time"

	"kwo/internal/cdw/backend"
)

// provisionFactor stretches the base resume/scale-out delays: acquiring
// slot capacity is much slower than waking a Snowflake warehouse.
const provisionFactor = 10

// Backend implements backend.Backend with BigQuery-shaped semantics.
type Backend struct{}

// New returns the BigQuery-shaped backend.
func New() Backend { return Backend{} }

// Name implements backend.Backend.
func (Backend) Name() string { return "bigquery" }

// Has implements backend.Backend: everything except multi-cluster
// scale-out.
func (Backend) Has(c backend.Capability) bool {
	return c&backend.CapMultiCluster == 0
}

// Billing implements backend.Backend: exact per-second billing, no
// minimum and no quantum.
func (Backend) Billing() backend.BillingRule { return backend.BillingRule{} }

// ResumeDelay implements backend.Backend: slow capacity acquisition.
func (Backend) ResumeDelay(base time.Duration) time.Duration {
	return base * provisionFactor
}

// ClusterStartDelay implements backend.Backend: same slow provisioning.
func (Backend) ClusterStartDelay(base time.Duration) time.Duration {
	return base * provisionFactor
}

// MeteringGranularity implements backend.Backend: hourly usage export.
func (Backend) MeteringGranularity() time.Duration { return time.Hour }
