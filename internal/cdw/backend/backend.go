// Package backend defines the control-plane surface of a cloud data
// warehouse provider: which configuration knobs exist, how billing is
// quantized, how slowly capacity comes up, and how fine-grained the
// metering view is. The cdw simulator executes against this interface,
// so the optimizer's decision surface is provider-agnostic while the
// provider-specific semantics (Snowflake's 60-second minimum, node-hour
// quanta, missing auto-suspend, …) stay explicit instead of being baked
// into the state machine.
//
// The package deliberately does not import kwo/internal/cdw: concrete
// backends and the cdw engine both depend on it, never the other way
// around.
package backend

import (
	"strings"
	"time"
)

// Capability is a bitset of optional control-plane features. A backend
// that lacks a capability must reject — not silently ignore — any
// configuration or ALTER that depends on it.
type Capability uint32

const (
	// CapAutoSuspend: the provider can suspend an idle warehouse
	// automatically after a configured idle period (AUTO_SUSPEND).
	CapAutoSuspend Capability = 1 << iota
	// CapAutoResume: a suspended warehouse resumes on query arrival
	// (AUTO_RESUME) instead of rejecting queries.
	CapAutoResume
	// CapMultiCluster: the warehouse can scale out to more than one
	// cluster (MIN/MAX_CLUSTER_COUNT > 1, SCALING_POLICY).
	CapMultiCluster
	// CapResize: the warehouse size can be changed after creation.
	CapResize
)

var capNames = []struct {
	c    Capability
	name string
}{
	{CapAutoSuspend, "auto-suspend"},
	{CapAutoResume, "auto-resume"},
	{CapMultiCluster, "multi-cluster"},
	{CapResize, "resize"},
}

// String renders the set as a "+"-joined list of feature names.
func (c Capability) String() string {
	var parts []string
	for _, e := range capNames {
		if c&e.c != 0 {
			parts = append(parts, e.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// All returns every defined capability, in declaration order.
func AllCapabilities() []Capability {
	out := make([]Capability, len(capNames))
	for i, e := range capNames {
		out[i] = e.c
	}
	return out
}

// CapabilitiesOf folds a backend's Has answers into one bitset, for
// callers that gate many decisions and want a single cached mask.
func CapabilitiesOf(b Backend) Capability {
	var set Capability
	for _, e := range capNames {
		if b.Has(e.c) {
			set |= e.c
		}
	}
	return set
}

// BillingRule describes how a provider turns cluster runtime into
// billed time. Both fields may be zero (bill exactly the seconds used).
type BillingRule struct {
	// Quantum, when positive, rounds each cluster run's billed duration
	// up to the next multiple (node-hour style billing). Zero bills the
	// exact duration.
	Quantum time.Duration
	// MinPerStart, when positive, is the minimum billed per cluster
	// start (Snowflake's 60-second resume minimum). Zero means no
	// minimum.
	MinPerStart time.Duration
}

// BilledEnd applies the rule to one cluster run [start, end): the
// MinPerStart floor first, then the Quantum round-up. The result is
// never before end.
func (r BillingRule) BilledEnd(start, end time.Time) time.Time {
	if end.Before(start) {
		end = start
	}
	if r.MinPerStart > 0 {
		if min := start.Add(r.MinPerStart); end.Before(min) {
			end = min
		}
	}
	if r.Quantum > 0 {
		d := end.Sub(start)
		if rem := d % r.Quantum; rem != 0 {
			end = start.Add(d - rem + r.Quantum)
		}
	}
	return end
}

// Backend is one provider's control-plane surface. Implementations must
// be stateless and safe for concurrent use: the same value is shared by
// every account and meter of a simulation, and by the costmodel's
// counterfactual replay.
type Backend interface {
	// Name is the stable lowercase identifier used by registries, CLI
	// flags, and fleet tenant profiles.
	Name() string
	// Has reports whether the provider supports the capability.
	Has(Capability) bool
	// Billing returns the provider's billing quantization rule.
	Billing() BillingRule
	// ResumeDelay maps the simulator's base resume delay to this
	// provider's (providers with slow cluster provisioning stretch it).
	ResumeDelay(base time.Duration) time.Duration
	// ClusterStartDelay maps the base scale-out start delay likewise.
	ClusterStartDelay(base time.Duration) time.Duration
	// MeteringGranularity is the bucket width of the provider's billing
	// history view (Snowflake's WAREHOUSE_METERING_HISTORY is hourly).
	MeteringGranularity() time.Duration
}
