// Package snowflake is the Snowflake-shaped backend: the full knob set
// (auto-suspend, auto-resume, multi-cluster scale-out, resize),
// per-second billing with a 60-second minimum per cluster start, fast
// resume, and hourly metering history. It reproduces the semantics the
// simulator has always had, byte for byte.
package snowflake

import (
	"time"

	"kwo/internal/cdw/backend"
)

// MinBilledClusterTime is Snowflake's 60-second billing minimum applied
// on every warehouse resume or cluster start.
const MinBilledClusterTime = 60 * time.Second

// Backend implements backend.Backend with Snowflake semantics.
type Backend struct{}

// New returns the Snowflake backend.
func New() Backend { return Backend{} }

// Name implements backend.Backend.
func (Backend) Name() string { return "snowflake" }

// Has implements backend.Backend: every capability is supported.
func (Backend) Has(c backend.Capability) bool { return true }

// Billing implements backend.Backend: per-second billing with the
// 60-second minimum per cluster start, no quantum rounding.
func (Backend) Billing() backend.BillingRule {
	return backend.BillingRule{MinPerStart: MinBilledClusterTime}
}

// ResumeDelay implements backend.Backend: resume is fast (identity).
func (Backend) ResumeDelay(base time.Duration) time.Duration { return base }

// ClusterStartDelay implements backend.Backend (identity).
func (Backend) ClusterStartDelay(base time.Duration) time.Duration { return base }

// MeteringGranularity implements backend.Backend: hourly rows, like
// WAREHOUSE_METERING_HISTORY.
func (Backend) MeteringGranularity() time.Duration { return time.Hour }
