// Package redshift is a Redshift-shaped backend: node-hour billing
// (every started hour of a cluster run is billed in full), no
// auto-suspend — the AUTO_SUSPEND knob does not exist and must be
// rejected — no multi-cluster auto-scale, and slow cluster resume.
// Manual suspend/resume and resizing are supported, and a paused
// cluster still resumes on demand (auto-resume), mirroring Redshift's
// pause/resume surface.
package redshift

import (
	"time"

	"kwo/internal/cdw/backend"
)

// provisionFactor stretches the base resume/scale-out delays: resuming
// a paused cluster takes minutes, not seconds.
const provisionFactor = 30

// Backend implements backend.Backend with Redshift-shaped semantics.
type Backend struct{}

// New returns the Redshift-shaped backend.
func New() Backend { return Backend{} }

// Name implements backend.Backend.
func (Backend) Name() string { return "redshift" }

// Has implements backend.Backend: resize and auto-resume only — no
// auto-suspend, no multi-cluster scale-out.
func (Backend) Has(c backend.Capability) bool {
	return c&(backend.CapAutoSuspend|backend.CapMultiCluster) == 0
}

// Billing implements backend.Backend: node-hour quanta — each cluster
// run bills whole started hours.
func (Backend) Billing() backend.BillingRule {
	return backend.BillingRule{Quantum: time.Hour}
}

// ResumeDelay implements backend.Backend: slow cluster resume.
func (Backend) ResumeDelay(base time.Duration) time.Duration {
	return base * provisionFactor
}

// ClusterStartDelay implements backend.Backend: same slow provisioning.
func (Backend) ClusterStartDelay(base time.Duration) time.Duration {
	return base * provisionFactor
}

// MeteringGranularity implements backend.Backend: hourly usage rows.
func (Backend) MeteringGranularity() time.Duration { return time.Hour }
