package cdw

import (
	"sort"
	"time"

	"kwo/internal/cdw/backend"
	"kwo/internal/cdw/backend/snowflake"
)

// MinBilledClusterTime is the minimum billed duration each time a
// cluster starts, matching Snowflake's 60-second minimum on every
// warehouse resume or cluster start. Backends other than Snowflake
// carry their own rule; see backend.BillingRule.
const MinBilledClusterTime = snowflake.MinBilledClusterTime

// MeterSegment is one contiguous billed interval for one cluster at one
// size. A cluster that runs across a resize produces multiple segments.
type MeterSegment struct {
	Warehouse string
	ClusterID int
	Size      Size
	Start     time.Time
	End       time.Time // zero while the segment is open
	// MinimumApplied marks the segment that opened a cluster run (which
	// carries the backend's per-start billing minimum, when its billing
	// rule has one).
	MinimumApplied bool
	// MinBilledUntil, when non-zero, extends the billed interval to at
	// least this instant — the per-start billing minimum at run start,
	// or the quantum round-up when the run stops. A resize inside the
	// minimum window hands the remainder to the post-resize segment, so
	// a cluster run's billed intervals never overlap.
	MinBilledUntil time.Time
}

// BilledEnd returns the end of the billed interval, applying any
// remaining cluster-start minimum carried by this segment.
func (s MeterSegment) BilledEnd() time.Time { return s.billedEnd() }

func (s MeterSegment) billedEnd() time.Time {
	end := s.End
	if !s.MinBilledUntil.IsZero() && end.Before(s.MinBilledUntil) {
		end = s.MinBilledUntil
	}
	return end
}

// Credits returns the credits consumed by the segment.
func (s MeterSegment) Credits() float64 {
	return s.Size.CreditsPerHour() * s.billedEnd().Sub(s.Start).Hours()
}

// Meter is the billing ledger for one warehouse. It accumulates
// segments as clusters start, stop and resize, and answers aggregate
// credit queries used both for "actual" billing and by the cost model.
type Meter struct {
	warehouse string
	rule      backend.BillingRule
	closed    []MeterSegment
	open      map[int]*MeterSegment // by cluster ID
	runStart  map[int]time.Time     // run start per open cluster (for quantum rounding)
}

// NewMeter returns an empty ledger for the named warehouse, billing
// under the default Snowflake rule (per-second with a 60s minimum per
// cluster start).
func NewMeter(warehouse string) *Meter {
	return NewMeterWithRule(warehouse, backend.BillingRule{MinPerStart: MinBilledClusterTime})
}

// NewMeterWithRule returns an empty ledger billing under the given
// backend billing rule.
func NewMeterWithRule(warehouse string, rule backend.BillingRule) *Meter {
	return &Meter{
		warehouse: warehouse,
		rule:      rule,
		open:      make(map[int]*MeterSegment),
		runStart:  make(map[int]time.Time),
	}
}

// Rule returns the billing rule the meter quantizes under.
func (m *Meter) Rule() backend.BillingRule { return m.rule }

// StartCluster opens metering for a cluster at the given size. newStart
// marks a genuine cluster start (resume or scale-out), which carries the
// rule's per-start billing minimum; a resize reopening is not a new
// start.
func (m *Meter) StartCluster(clusterID int, size Size, at time.Time, newStart bool) {
	seg := &MeterSegment{
		Warehouse: m.warehouse,
		ClusterID: clusterID,
		Size:      size,
		Start:     at,
	}
	if newStart {
		seg.MinimumApplied = true
		if m.rule.MinPerStart > 0 {
			seg.MinBilledUntil = at.Add(m.rule.MinPerStart)
		}
		m.runStart[clusterID] = at
	}
	m.open[clusterID] = seg
}

// StopCluster closes metering for a cluster. Under a quantum billing
// rule the run's billed time rounds up to the next whole quantum (at
// the final segment's size), extending the closing segment's billed
// interval.
func (m *Meter) StopCluster(clusterID int, at time.Time) {
	seg, ok := m.open[clusterID]
	if !ok {
		return
	}
	seg.End = at
	if m.rule.Quantum > 0 {
		if rs, ok := m.runStart[clusterID]; ok {
			if end := m.rule.BilledEnd(rs, at); end.After(seg.billedEnd()) {
				seg.MinBilledUntil = end
			}
		}
	}
	m.closed = append(m.closed, *seg)
	delete(m.open, clusterID)
	delete(m.runStart, clusterID)
}

// Resize closes every open segment at the old size and reopens it at the
// new size, preserving the billing-minimum marker on the segment that
// carried it (the minimum applies to the cluster run, not the size).
func (m *Meter) Resize(newSize Size, at time.Time) {
	ids := make([]int, 0, len(m.open))
	for id := range m.open {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		seg := m.open[id]
		if seg.Size == newSize {
			continue
		}
		closed := *seg
		closed.End = at
		next := &MeterSegment{
			Warehouse: m.warehouse,
			ClusterID: id,
			Size:      newSize,
			Start:     at,
		}
		// The 60-second minimum belongs to the cluster run. If the run's
		// minimum window is still open, the remainder moves to the
		// post-resize segment (billed at the new size); otherwise the
		// closed segment bills exactly its actual duration. Either way
		// the run's billed intervals never overlap.
		if closed.MinBilledUntil.After(at) {
			next.MinBilledUntil = closed.MinBilledUntil
			closed.MinBilledUntil = time.Time{}
		}
		m.closed = append(m.closed, closed)
		m.open[id] = next
	}
}

// ActiveClusters returns the number of clusters currently metering.
func (m *Meter) ActiveClusters() int { return len(m.open) }

// Segments returns all closed segments plus snapshots of open segments
// truncated at now. The result is sorted by start time.
func (m *Meter) Segments(now time.Time) []MeterSegment {
	out := make([]MeterSegment, 0, len(m.closed)+len(m.open))
	out = append(out, m.closed...)
	for _, seg := range m.open {
		snap := *seg
		snap.End = now
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start.Equal(out[j].Start) {
			return out[i].ClusterID < out[j].ClusterID
		}
		return out[i].Start.Before(out[j].Start)
	})
	return out
}

// CreditsBetween returns the credits billed in [from, to), prorating
// segments that straddle the boundaries. now truncates open segments.
func (m *Meter) CreditsBetween(from, to, now time.Time) float64 {
	var total float64
	for _, seg := range m.Segments(now) {
		total += segmentCreditsBetween(seg, from, to)
	}
	return total
}

func segmentCreditsBetween(seg MeterSegment, from, to time.Time) float64 {
	end := seg.billedEnd()
	start := seg.Start
	if start.Before(from) {
		start = from
	}
	if end.After(to) {
		end = to
	}
	if !end.After(start) {
		return 0
	}
	return seg.Size.CreditsPerHour() * end.Sub(start).Hours()
}

// TotalCredits returns all credits billed so far.
func (m *Meter) TotalCredits(now time.Time) float64 {
	var total float64
	for _, seg := range m.Segments(now) {
		total += seg.Credits()
	}
	return total
}

// HourlyRecord is one row of the billing history: credits billed to the
// warehouse during one clock hour. It mirrors Snowflake's
// WAREHOUSE_METERING_HISTORY granularity.
type HourlyRecord struct {
	Warehouse string
	HourStart time.Time
	Credits   float64
}

// Hourly aggregates billed credits into clock-hour buckets over
// [from, to). Hours with zero credits are included so time series line
// up across warehouses. Runs in one pass over the segment list.
func (m *Meter) Hourly(from, to, now time.Time) []HourlyRecord {
	from = from.Truncate(time.Hour)
	if !to.After(from) {
		return nil
	}
	n := int((to.Sub(from) + time.Hour - 1) / time.Hour)
	buckets := make([]float64, n)
	for _, seg := range m.Segments(now) {
		rate := seg.Size.CreditsPerHour()
		start, end := seg.Start, seg.billedEnd()
		if start.Before(from) {
			start = from
		}
		if end.After(to) {
			end = to
		}
		for start.Before(end) {
			idx := int(start.Sub(from) / time.Hour)
			hourEnd := from.Add(time.Duration(idx+1) * time.Hour)
			chunk := end
			if chunk.After(hourEnd) {
				chunk = hourEnd
			}
			buckets[idx] += rate * chunk.Sub(start).Hours()
			start = chunk
		}
	}
	out := make([]HourlyRecord, n)
	for i := range buckets {
		out[i] = HourlyRecord{
			Warehouse: m.warehouse,
			HourStart: from.Add(time.Duration(i) * time.Hour),
			Credits:   buckets[i],
		}
	}
	return out
}

// Daily aggregates billed credits into 24-hour buckets starting at from.
func (m *Meter) Daily(from time.Time, days int, now time.Time) []float64 {
	out := make([]float64, days)
	for d := 0; d < days; d++ {
		s := from.Add(time.Duration(d) * 24 * time.Hour)
		out[d] = m.CreditsBetween(s, s.Add(24*time.Hour), now)
	}
	return out
}
