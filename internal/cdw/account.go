package cdw

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"kwo/internal/cdw/backend"
	"kwo/internal/obs"
	"kwo/internal/simclock"
)

// EventKind classifies warehouse lifecycle events.
type EventKind int

const (
	EventResume EventKind = iota
	EventSuspend
	EventClusterStart
	EventClusterStop
)

// String returns a stable lowercase name for the event kind.
func (k EventKind) String() string {
	switch k {
	case EventResume:
		return "resume"
	case EventSuspend:
		return "suspend"
	case EventClusterStart:
		return "cluster-start"
	case EventClusterStop:
		return "cluster-stop"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// WarehouseEvent is a lifecycle transition visible in telemetry.
type WarehouseEvent struct {
	Time      time.Time
	Warehouse string
	Kind      EventKind
	Clusters  int // active clusters after the event
}

// ConfigChange is one row of the configuration audit log. Actor records
// who made the change, which is how the monitor distinguishes KWO's own
// actions from external changes made by other users (§4.4).
type ConfigChange struct {
	Time      time.Time
	Warehouse string
	Before    Config
	After     Config
	Actor     string
	Statement string // the rendered ALTER statement
}

// Listener receives telemetry as the simulation runs. Implementations
// must not mutate the account from inside callbacks.
type Listener interface {
	OnQuery(QueryRecord)
	OnChange(ConfigChange)
	OnWarehouseEvent(WarehouseEvent)
}

// Account is a simulated CDW account holding multiple virtual
// warehouses, the equivalent of one Snowflake account. All interaction
// — query submission, ALTER statements, billing reads — goes through it.
type Account struct {
	sched       *simclock.Scheduler
	params      SimParams
	backend     backend.Backend
	warehouses  map[string]*Warehouse
	names       []string // insertion order, for deterministic iteration
	listeners   []Listener
	changes     []ConfigChange
	overhead    []OverheadRecord
	nextQueryID uint64

	// faults, when non-nil, makes the account's API surface misbehave on
	// demand (see faults.go). faultRng drives the probabilistic faults
	// from the scheduler's seeded stream so runs stay deterministic.
	faults      *FaultPlan
	faultRng    *rand.Rand
	faultCounts FaultCounts

	// hub, when set, mirrors injected faults, audit-log writes, and
	// optimizer overhead into the observability registry and event bus.
	hub *obs.Hub
}

// OverheadRecord meters credits consumed by the optimizer itself
// (telemetry pulls, actuator statements) rather than by user queries.
type OverheadRecord struct {
	Time    time.Time
	Credits float64
	Note    string
}

// NewAccount creates an account driven by the given scheduler, running
// against the default (Snowflake-shaped) backend.
func NewAccount(sched *simclock.Scheduler, params SimParams) *Account {
	return NewAccountWithBackend(sched, params, DefaultBackend())
}

// NewAccountWithBackend creates an account whose control-plane surface
// — billing quanta, resume latency, capability gating — is defined by
// the given backend. A nil backend falls back to the default.
func NewAccountWithBackend(sched *simclock.Scheduler, params SimParams, b backend.Backend) *Account {
	if b == nil {
		b = DefaultBackend()
	}
	return &Account{
		sched:      sched,
		params:     params,
		backend:    b,
		warehouses: make(map[string]*Warehouse),
	}
}

// Scheduler returns the driving scheduler.
func (a *Account) Scheduler() *simclock.Scheduler { return a.sched }

// Params returns the account's physical constants.
func (a *Account) Params() SimParams { return a.params }

// Backend returns the account's control-plane backend.
func (a *Account) Backend() backend.Backend { return a.backend }

// Subscribe registers a telemetry listener.
func (a *Account) Subscribe(l Listener) { a.listeners = append(a.listeners, l) }

// SetObs wires the observability hub; nil (the default) disables the
// account-side instrumentation.
func (a *Account) SetObs(h *obs.Hub) { a.hub = h }

// noteFault counts an injected fault and traces it.
func (a *Account) noteFault(kind, warehouse, op string) {
	if a.hub == nil {
		return
	}
	a.hub.FaultsInjected.With(kind).Inc()
	a.hub.Emit(obs.EventFaultInjected, warehouse, obs.A("kind", kind), obs.A("op", op))
}

// SetFaults installs a fault plan on the account's API surface. Passing
// the zero plan effectively disables injection again (no outage windows,
// zero rates).
func (a *Account) SetFaults(plan FaultPlan) {
	p := plan
	a.faults = &p
	if a.faultRng == nil {
		a.faultRng = a.sched.Rand("cdw:faults")
	}
}

// Faults returns a copy of the installed fault plan, or nil.
func (a *Account) Faults() *FaultPlan {
	if a.faults == nil {
		return nil
	}
	p := *a.faults
	return &p
}

// FaultCounts reports how many faults the account has injected so far.
func (a *Account) FaultCounts() FaultCounts { return a.faultCounts }

// CreateWarehouse provisions a warehouse. Like Snowflake, a newly
// created warehouse starts running (and will auto-suspend if idle).
func (a *Account) CreateWarehouse(cfg Config) (*Warehouse, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := checkConfigCapabilities(a.backend, cfg); err != nil {
		return nil, err
	}
	if _, ok := a.warehouses[cfg.Name]; ok {
		return nil, fmt.Errorf("cdw: warehouse %s already exists", cfg.Name)
	}
	w := newWarehouse(a, cfg, false)
	a.warehouses[cfg.Name] = w
	a.names = append(a.names, cfg.Name)
	return w, nil
}

// Warehouse returns a warehouse by name.
func (a *Account) Warehouse(name string) (*Warehouse, error) {
	w, ok := a.warehouses[name]
	if !ok {
		return nil, fmt.Errorf("cdw: no warehouse named %s", name)
	}
	return w, nil
}

// WarehouseNames lists warehouses in creation order.
func (a *Account) WarehouseNames() []string {
	out := make([]string, len(a.names))
	copy(out, a.names)
	return out
}

// Submit routes a query to the named warehouse, assigning it an ID.
func (a *Account) Submit(warehouse string, q Query) error {
	w, err := a.Warehouse(warehouse)
	if err != nil {
		return err
	}
	a.nextQueryID++
	q.ID = a.nextQueryID
	return w.Submit(q)
}

// Alter applies an ALTER WAREHOUSE-style change on behalf of actor.
// The change is recorded in the audit log whether or not any field
// actually changed, matching how real accounts log every statement.
func (a *Account) Alter(warehouse string, alt Alteration, actor string) error {
	w, err := a.Warehouse(warehouse)
	if err != nil {
		return err
	}
	ackLost := false
	if a.faults != nil {
		now := a.sched.Now()
		fail, lost := a.faults.alterFault(now, a.faultRng)
		if fail {
			a.faultCounts.AlterFailures++
			reason := "injected"
			for _, o := range a.faults.AlterOutages {
				if o.Contains(now) {
					reason = "outage"
				}
			}
			a.noteFault("alter-fail", warehouse, "alter")
			return &TransientError{Op: "alter", Reason: reason}
		}
		ackLost = lost
	}
	if err := checkAlterationCapabilities(a.backend, w.cfg, alt); err != nil {
		return err
	}
	before := w.cfg
	if err := w.applyAlteration(alt); err != nil {
		return err
	}
	ch := ConfigChange{
		Time:      a.sched.Now(),
		Warehouse: warehouse,
		Before:    before,
		After:     w.cfg,
		Actor:     actor,
		Statement: alt.String(),
	}
	a.changes = append(a.changes, ch)
	if a.hub != nil {
		a.hub.ConfigChanges.With(warehouse, actor).Inc()
	}
	for _, l := range a.listeners {
		l.OnChange(ch)
	}
	if ackLost {
		a.faultCounts.AlterAckLosts++
		a.noteFault("alter-ack-lost", warehouse, "alter")
		return &TransientError{Op: "alter", Reason: "timeout", AckLost: true}
	}
	return nil
}

// BillingHistory reads a warehouse's hourly billing rows over [from, to)
// the way a live deployment would: through the account's fault model.
// It returns the rows actually available and a watermark — the end of
// the span the rows cover; callers must only advance their pull cursor
// to the watermark, never to the requested end, or delayed hours are
// silently lost. With no fault plan the watermark is to and the rows are
// exactly Meter().Hourly(from, to, now).
func (a *Account) BillingHistory(warehouse string, from, to time.Time) ([]HourlyRecord, time.Time, error) {
	w, err := a.Warehouse(warehouse)
	if err != nil {
		return nil, from, err
	}
	now := a.sched.Now()
	if a.faults != nil {
		for _, o := range a.faults.BillingOutages {
			if o.Contains(now) {
				a.faultCounts.BillingFailures++
				a.noteFault("billing-fail", warehouse, "billing-history")
				return nil, from, &TransientError{Op: "billing-history", Reason: "outage"}
			}
		}
		if lag := a.faults.BillingLag; lag > 0 && a.faults.ratesActive(now) {
			if avail := now.Add(-lag).Truncate(time.Hour); avail.Before(to) {
				to = avail
			}
		}
	}
	if !to.After(from) {
		return nil, from, nil
	}
	return w.Meter().Hourly(from, to, now), to, nil
}

// Changes returns the configuration audit log.
func (a *Account) Changes() []ConfigChange {
	out := make([]ConfigChange, len(a.changes))
	copy(out, a.changes)
	return out
}

// ChangesSince returns audit rows at or after t.
func (a *Account) ChangesSince(t time.Time) []ConfigChange {
	i := sort.Search(len(a.changes), func(i int) bool { return !a.changes[i].Time.Before(t) })
	out := make([]ConfigChange, len(a.changes)-i)
	copy(out, a.changes[i:])
	return out
}

// RecordOverhead meters credits consumed by the optimizer's own
// operations. The paper's Figure 6 reports this overhead separately
// from user spend.
func (a *Account) RecordOverhead(credits float64, note string) {
	a.overhead = append(a.overhead, OverheadRecord{
		Time: a.sched.Now(), Credits: credits, Note: note,
	})
	if a.hub != nil {
		a.hub.OverheadCredits.With(note).Add(credits)
	}
}

// OverheadBetween sums optimizer overhead credits in [from, to).
func (a *Account) OverheadBetween(from, to time.Time) float64 {
	var total float64
	for _, r := range a.overhead {
		if !r.Time.Before(from) && r.Time.Before(to) {
			total += r.Credits
		}
	}
	return total
}

// TotalCredits sums billed credits across all warehouses up to now.
func (a *Account) TotalCredits() float64 {
	now := a.sched.Now()
	var total float64
	for _, name := range a.names {
		total += a.warehouses[name].Meter().TotalCredits(now)
	}
	return total
}

// CreditsBetween sums billed credits across all warehouses in [from, to).
func (a *Account) CreditsBetween(from, to time.Time) float64 {
	now := a.sched.Now()
	var total float64
	for _, name := range a.names {
		total += a.warehouses[name].Meter().CreditsBetween(from, to, now)
	}
	return total
}

func (a *Account) emitQuery(rec QueryRecord) {
	for _, l := range a.listeners {
		l.OnQuery(rec)
	}
}

func (a *Account) emitWarehouseEvent(ev WarehouseEvent) {
	for _, l := range a.listeners {
		l.OnWarehouseEvent(ev)
	}
}
