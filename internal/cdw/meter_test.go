package cdw

import (
	"math"
	"testing"
	"time"

	"kwo/internal/simclock"
)

var t0 = simclock.Epoch

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeterMinimumBilling(t *testing.T) {
	m := NewMeter("W")
	m.StartCluster(0, SizeXSmall, t0, true)
	m.StopCluster(0, t0.Add(5*time.Second)) // ran 5s, billed 60s
	got := m.TotalCredits(t0.Add(time.Hour))
	want := 60.0 / 3600 // X-Small: 1 credit/hour
	if !approx(got, want, 1e-9) {
		t.Fatalf("credits = %v, want %v (60s minimum)", got, want)
	}
}

func TestMeterLongRunNoMinimumInflation(t *testing.T) {
	m := NewMeter("W")
	m.StartCluster(0, SizeSmall, t0, true)
	m.StopCluster(0, t0.Add(30*time.Minute))
	got := m.TotalCredits(t0.Add(time.Hour))
	want := 2.0 * 0.5 // Small = 2 credits/hour for half an hour
	if !approx(got, want, 1e-9) {
		t.Fatalf("credits = %v, want %v", got, want)
	}
}

func TestMeterResizeSplitsSegments(t *testing.T) {
	m := NewMeter("W")
	m.StartCluster(0, SizeXSmall, t0, true)
	m.Resize(SizeMedium, t0.Add(30*time.Minute))
	m.StopCluster(0, t0.Add(time.Hour))
	got := m.TotalCredits(t0.Add(2 * time.Hour))
	want := 1.0*0.5 + 4.0*0.5 // 30min at XS + 30min at Medium
	if !approx(got, want, 1e-9) {
		t.Fatalf("credits = %v, want %v", got, want)
	}
	segs := m.Segments(t0.Add(2 * time.Hour))
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(segs))
	}
	if segs[0].Size != SizeXSmall || segs[1].Size != SizeMedium {
		t.Fatalf("segment sizes = %v, %v", segs[0].Size, segs[1].Size)
	}
}

func TestMeterResizeSameSizeNoop(t *testing.T) {
	m := NewMeter("W")
	m.StartCluster(0, SizeLarge, t0, true)
	m.Resize(SizeLarge, t0.Add(time.Minute))
	if len(m.Segments(t0.Add(2*time.Minute))) != 1 {
		t.Fatal("same-size resize split the segment")
	}
}

func TestMeterProration(t *testing.T) {
	m := NewMeter("W")
	m.StartCluster(0, SizeXSmall, t0.Add(30*time.Minute), true)
	m.StopCluster(0, t0.Add(90*time.Minute))
	now := t0.Add(3 * time.Hour)
	// First hour contains 30 minutes of activity.
	h1 := m.CreditsBetween(t0, t0.Add(time.Hour), now)
	if !approx(h1, 0.5, 1e-9) {
		t.Fatalf("hour1 = %v, want 0.5", h1)
	}
	h2 := m.CreditsBetween(t0.Add(time.Hour), t0.Add(2*time.Hour), now)
	if !approx(h2, 0.5, 1e-9) {
		t.Fatalf("hour2 = %v, want 0.5", h2)
	}
	if got := m.CreditsBetween(t0.Add(2*time.Hour), now, now); got != 0 {
		t.Fatalf("idle hour billed %v", got)
	}
}

func TestMeterHourlyIncludesZeroHours(t *testing.T) {
	m := NewMeter("W")
	m.StartCluster(0, SizeXSmall, t0, true)
	m.StopCluster(0, t0.Add(10*time.Minute))
	recs := m.Hourly(t0, t0.Add(3*time.Hour), t0.Add(3*time.Hour))
	if len(recs) != 3 {
		t.Fatalf("hourly rows = %d, want 3", len(recs))
	}
	if recs[1].Credits != 0 || recs[2].Credits != 0 {
		t.Fatal("idle hours not zero")
	}
	if recs[0].Credits <= 0 {
		t.Fatal("active hour zero")
	}
}

func TestMeterOpenSegmentTruncatedAtNow(t *testing.T) {
	m := NewMeter("W")
	m.StartCluster(0, SizeXSmall, t0, true)
	got := m.TotalCredits(t0.Add(2 * time.Hour))
	if !approx(got, 2.0, 1e-9) {
		t.Fatalf("open segment credits = %v, want 2.0", got)
	}
}

func TestMeterMultiCluster(t *testing.T) {
	m := NewMeter("W")
	m.StartCluster(0, SizeXSmall, t0, true)
	m.StartCluster(1, SizeXSmall, t0, true)
	m.StopCluster(0, t0.Add(time.Hour))
	m.StopCluster(1, t0.Add(time.Hour))
	if got := m.TotalCredits(t0.Add(time.Hour)); !approx(got, 2.0, 1e-9) {
		t.Fatalf("two clusters for an hour = %v credits, want 2", got)
	}
	if m.ActiveClusters() != 0 {
		t.Fatal("clusters still active after stop")
	}
}

func TestMeterDaily(t *testing.T) {
	m := NewMeter("W")
	m.StartCluster(0, SizeXSmall, t0, true)
	m.StopCluster(0, t0.Add(24*time.Hour))
	m.StartCluster(1, SizeXSmall, t0.Add(36*time.Hour), true)
	m.StopCluster(1, t0.Add(37*time.Hour))
	days := m.Daily(t0, 3, t0.Add(72*time.Hour))
	if !approx(days[0], 24, 1e-9) || !approx(days[1], 1, 1e-9) || days[2] != 0 {
		t.Fatalf("daily = %v", days)
	}
}

func TestMeterStopUnknownClusterNoop(t *testing.T) {
	m := NewMeter("W")
	m.StopCluster(99, t0) // must not panic
	if m.TotalCredits(t0.Add(time.Hour)) != 0 {
		t.Fatal("phantom cluster billed")
	}
}
