package cdw

import (
	"fmt"
	"time"
)

// ScalingPolicy controls when a multi-cluster warehouse adds and removes
// clusters, mirroring Snowflake's two documented policies.
type ScalingPolicy int

const (
	// ScaleStandard prevents queuing by starting additional clusters
	// as soon as queries queue.
	ScaleStandard ScalingPolicy = iota
	// ScaleEconomy conserves credits by starting additional clusters
	// only when there is enough queued work to keep a new cluster busy,
	// and by keeping clusters fully loaded before scaling out.
	ScaleEconomy
)

// String returns the Snowflake display name for the policy.
func (p ScalingPolicy) String() string {
	switch p {
	case ScaleStandard:
		return "Standard"
	case ScaleEconomy:
		return "Economy"
	default:
		return fmt.Sprintf("ScalingPolicy(%d)", int(p))
	}
}

// Config is the user-settable configuration of a virtual warehouse —
// the knobs that both the customer and the optimizer can turn.
type Config struct {
	Name        string
	Size        Size
	MinClusters int // >= 1
	// MaxClusters is >= MinClusters. Min == Max > 1 runs the warehouse
	// in Snowflake's Maximized mode (all clusters started together);
	// Min == Max == 1 is a plain single-cluster warehouse, not
	// Maximized — Maximized is a multi-cluster concept.
	MaxClusters int
	Policy      ScalingPolicy // scale-out/scale-in behaviour
	AutoSuspend time.Duration // idle period before automatic suspension; 0 disables
	AutoResume  bool          // resume automatically when a query arrives
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("cdw: warehouse name must not be empty")
	}
	if !c.Size.Valid() {
		return fmt.Errorf("cdw: warehouse %s: invalid size %d", c.Name, int(c.Size))
	}
	if c.MinClusters < 1 {
		return fmt.Errorf("cdw: warehouse %s: MinClusters must be >= 1, got %d", c.Name, c.MinClusters)
	}
	if c.MaxClusters < c.MinClusters {
		return fmt.Errorf("cdw: warehouse %s: MaxClusters (%d) < MinClusters (%d)",
			c.Name, c.MaxClusters, c.MinClusters)
	}
	if c.AutoSuspend < 0 {
		return fmt.Errorf("cdw: warehouse %s: negative AutoSuspend", c.Name)
	}
	return nil
}

// Maximized reports whether the warehouse runs in Snowflake's Maximized
// mode: a multi-cluster warehouse (MaxClusters > 1) with min == max, so
// all clusters start together. A Min=Max=1 warehouse is an ordinary
// single-cluster warehouse, never Maximized.
func (c Config) Maximized() bool { return c.MinClusters == c.MaxClusters && c.MaxClusters > 1 }

// Alteration is a partial configuration change, the simulator's
// equivalent of an ALTER WAREHOUSE statement. Nil fields are left
// untouched.
type Alteration struct {
	Size        *Size
	MinClusters *int
	MaxClusters *int
	Policy      *ScalingPolicy
	AutoSuspend *time.Duration
	AutoResume  *bool
	// Suspend and Resume request an immediate state change
	// (ALTER WAREHOUSE ... SUSPEND / RESUME).
	Suspend bool
	Resume  bool
}

// IsZero reports whether the alteration changes nothing.
func (a Alteration) IsZero() bool {
	return a.Size == nil && a.MinClusters == nil && a.MaxClusters == nil &&
		a.Policy == nil && a.AutoSuspend == nil && a.AutoResume == nil &&
		!a.Suspend && !a.Resume
}

// String renders the alteration roughly as the SQL the actuator would
// emit against a real warehouse.
func (a Alteration) String() string {
	s := "ALTER WAREHOUSE SET"
	if a.Size != nil {
		s += fmt.Sprintf(" WAREHOUSE_SIZE=%s", *a.Size)
	}
	if a.MinClusters != nil {
		s += fmt.Sprintf(" MIN_CLUSTER_COUNT=%d", *a.MinClusters)
	}
	if a.MaxClusters != nil {
		s += fmt.Sprintf(" MAX_CLUSTER_COUNT=%d", *a.MaxClusters)
	}
	if a.Policy != nil {
		s += fmt.Sprintf(" SCALING_POLICY=%s", *a.Policy)
	}
	if a.AutoSuspend != nil {
		// AUTO_SUSPEND takes whole seconds; render the same
		// round-to-nearest-second value Apply installs, so the logged
		// statement never disagrees with the applied configuration.
		s += fmt.Sprintf(" AUTO_SUSPEND=%d", int64(a.AutoSuspend.Round(time.Second)/time.Second))
	}
	if a.AutoResume != nil {
		s += fmt.Sprintf(" AUTO_RESUME=%v", *a.AutoResume)
	}
	if a.Suspend {
		s += " SUSPEND"
	}
	if a.Resume {
		s += " RESUME"
	}
	return s
}

// Apply returns a copy of c with the alteration applied.
func (a Alteration) Apply(c Config) Config {
	if a.Size != nil {
		c.Size = *a.Size
	}
	if a.MinClusters != nil {
		c.MinClusters = *a.MinClusters
	}
	if a.MaxClusters != nil {
		c.MaxClusters = *a.MaxClusters
	}
	if a.Policy != nil {
		c.Policy = *a.Policy
	}
	if a.AutoSuspend != nil {
		// Whole seconds only, matching the rendered statement: a
		// non-integral duration rounds to the nearest second in both
		// places, so audit log and configuration always agree.
		c.AutoSuspend = a.AutoSuspend.Round(time.Second)
	}
	if a.AutoResume != nil {
		c.AutoResume = *a.AutoResume
	}
	return c
}

// Helper constructors for pointer fields, so call sites read cleanly.

// SizeP returns a pointer to s, for building Alterations.
func SizeP(s Size) *Size { return &s }

// IntP returns a pointer to n, for building Alterations.
func IntP(n int) *int { return &n }

// PolicyP returns a pointer to p, for building Alterations.
func PolicyP(p ScalingPolicy) *ScalingPolicy { return &p }

// DurationP returns a pointer to d, for building Alterations.
func DurationP(d time.Duration) *time.Duration { return &d }

// BoolP returns a pointer to b, for building Alterations.
func BoolP(b bool) *bool { return &b }
