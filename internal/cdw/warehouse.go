package cdw

import (
	"fmt"
	"math"
	"time"

	"kwo/internal/simclock"
)

func mathPow(base, exp float64) float64 { return math.Pow(base, exp) }

// SimParams are account-wide physical constants of the simulated CDW.
type SimParams struct {
	// MaxConcurrency is the number of queries one cluster runs at once
	// (Snowflake's default MAX_CONCURRENCY_LEVEL is 8).
	MaxConcurrency int
	// ResumeDelay is how long a suspended warehouse takes to serve its
	// first query after auto-resume.
	ResumeDelay time.Duration
	// ClusterStartDelay is how long a newly started extra cluster takes
	// to accept queries.
	ClusterStartDelay time.Duration
	// ClusterStartSpacing is the minimum interval between successive
	// scale-out cluster starts (Standard policy starts clusters ~20s
	// apart).
	ClusterStartSpacing time.Duration
	// ScaleInCheckEvery is the cadence of scale-in checks.
	ScaleInCheckEvery time.Duration
	// StandardIdleChecks / EconomyIdleChecks are how many consecutive
	// scale-in checks must find spare capacity before a cluster is shut
	// down (Standard: 2–3 minutes; Economy: 5–6 minutes).
	StandardIdleChecks int
	EconomyIdleChecks  int
	// EconomyQueuedWork is the amount of estimated queued work, in
	// seconds, needed before the Economy policy starts another cluster
	// (Snowflake documents ~6 minutes of work).
	EconomyQueuedWork float64
	// CacheTTL is how long a cached working set stays warm without
	// being touched.
	CacheTTL time.Duration
	// CacheEntriesPerCapacity scales cache capacity with warehouse
	// size: a cluster of capacity C holds CacheEntriesPerCapacity*C
	// distinct working sets.
	CacheEntriesPerCapacity int
}

// DefaultSimParams returns production-plausible constants.
func DefaultSimParams() SimParams {
	return SimParams{
		MaxConcurrency:          8,
		ResumeDelay:             2 * time.Second,
		ClusterStartDelay:       2 * time.Second,
		ClusterStartSpacing:     20 * time.Second,
		ScaleInCheckEvery:       time.Minute,
		StandardIdleChecks:      2,
		EconomyIdleChecks:       6,
		EconomyQueuedWork:       360,
		CacheTTL:                4 * time.Hour,
		CacheEntriesPerCapacity: 64,
	}
}

type cacheEntry struct {
	lastTouch time.Time
}

// cluster is one compute cluster of a (possibly multi-cluster) warehouse.
type cluster struct {
	id        int
	readyAt   time.Time // accepts queries from this instant
	running   int       // queries currently executing
	cache     map[uint64]cacheEntry
	idleSince time.Time
	draining  bool // no new queries; shut down when running hits 0
}

type pendingQuery struct {
	q         Query
	submitted time.Time
	resumed   bool // this query triggered an auto-resume
}

// Warehouse is the runtime state machine of one virtual warehouse.
type Warehouse struct {
	acct  *Account
	sched *simclock.Scheduler
	cfg   Config

	running      bool
	clusters     []*cluster
	queue        []pendingQuery
	meter        *Meter
	nextCluster  int
	lastStart    time.Time // last scale-out cluster start
	suspendEvent *simclock.Event
	scaleGen     uint64 // invalidates stale scale-in check events
	retryArmed   bool   // a dispatch retry is pending
	spareChecks  int    // consecutive scale-in checks with spare capacity

	// Counters for dashboards and tests.
	resumes   int
	suspends  int
	coldReads int
	completed int
}

func newWarehouse(acct *Account, cfg Config, startSuspended bool) *Warehouse {
	w := &Warehouse{
		acct:  acct,
		sched: acct.sched,
		cfg:   cfg,
		meter: NewMeterWithRule(cfg.Name, acct.backend.Billing()),
	}
	if !startSuspended {
		w.resume(false)
	}
	return w
}

// Config returns the warehouse's current configuration.
func (w *Warehouse) Config() Config { return w.cfg }

// Running reports whether the warehouse is started.
func (w *Warehouse) Running() bool { return w.running }

// ActiveClusters returns the number of started clusters.
func (w *Warehouse) ActiveClusters() int { return len(w.clusters) }

// QueueLength returns the number of queries waiting for a slot.
func (w *Warehouse) QueueLength() int { return len(w.queue) }

// DrainingClusters returns how many clusters are draining (finishing
// their in-flight queries before shutdown). Invariant checks use it:
// non-draining clusters must respect the configured bounds, draining
// ones are transient slack.
func (w *Warehouse) DrainingClusters() int { return w.drainingCount() }

// RunningQueries returns the number of queries currently executing.
func (w *Warehouse) RunningQueries() int {
	n := 0
	for _, c := range w.clusters {
		n += c.running
	}
	return n
}

// Meter exposes the billing ledger.
func (w *Warehouse) Meter() *Meter { return w.meter }

// resumeDelay is the backend-shaped warm-up before a resumed warehouse
// serves its first query.
func (w *Warehouse) resumeDelay() time.Duration {
	return w.acct.backend.ResumeDelay(w.acct.params.ResumeDelay)
}

// clusterStartDelay is the backend-shaped warm-up before an extra
// cluster accepts queries.
func (w *Warehouse) clusterStartDelay() time.Duration {
	return w.acct.backend.ClusterStartDelay(w.acct.params.ClusterStartDelay)
}

// Stats returns lifetime counters.
func (w *Warehouse) Stats() (resumes, suspends, coldReads, completed int) {
	return w.resumes, w.suspends, w.coldReads, w.completed
}

// Submit hands a query to the warehouse at the current virtual time.
// If the warehouse is suspended and auto-resume is disabled, the query
// is rejected, mirroring Snowflake's behaviour.
func (w *Warehouse) Submit(q Query) error {
	now := w.sched.Now()
	resumed := false
	if !w.running {
		if !w.cfg.AutoResume {
			return fmt.Errorf("cdw: warehouse %s is suspended and auto-resume is off", w.cfg.Name)
		}
		w.resume(true)
		resumed = true
	}
	w.cancelSuspend()
	w.queue = append(w.queue, pendingQuery{q: q, submitted: now, resumed: resumed})
	w.dispatch()
	return nil
}

// resume starts the warehouse with MinClusters clusters.
func (w *Warehouse) resume(byQuery bool) {
	now := w.sched.Now()
	w.running = true
	w.spareChecks = 0
	for i := 0; i < w.cfg.MinClusters; i++ {
		w.startCluster(now.Add(w.resumeDelay()))
	}
	w.resumes++
	w.acct.emitWarehouseEvent(WarehouseEvent{
		Time: now, Warehouse: w.cfg.Name, Kind: EventResume, Clusters: len(w.clusters),
	})
	w.scheduleScaleCheck()
	// An externally resumed warehouse with no traffic should still
	// auto-suspend.
	w.maybeScheduleSuspend()
}

// suspend stops all clusters and drops their caches.
func (w *Warehouse) suspend() {
	now := w.sched.Now()
	if !w.running {
		return
	}
	for _, c := range w.clusters {
		w.meter.StopCluster(c.id, now)
	}
	w.clusters = nil
	w.running = false
	w.suspends++
	w.scaleGen++ // kill pending scale-in checks
	w.acct.emitWarehouseEvent(WarehouseEvent{
		Time: now, Warehouse: w.cfg.Name, Kind: EventSuspend, Clusters: 0,
	})
}

func (w *Warehouse) cancelSuspend() {
	if w.suspendEvent != nil {
		w.sched.Cancel(w.suspendEvent)
		w.suspendEvent = nil
	}
}

// maybeScheduleSuspend arms the auto-suspend timer when the warehouse is
// completely idle.
func (w *Warehouse) maybeScheduleSuspend() {
	if !w.running || w.cfg.AutoSuspend <= 0 {
		return
	}
	if len(w.queue) > 0 || w.RunningQueries() > 0 {
		return
	}
	w.cancelSuspend()
	w.suspendEvent = w.sched.After(w.cfg.AutoSuspend, "auto-suspend:"+w.cfg.Name, func() {
		w.suspendEvent = nil
		if w.running && len(w.queue) == 0 && w.RunningQueries() == 0 {
			w.suspend()
		}
	})
}

// startCluster opens a new cluster billing from now with the 60s minimum.
func (w *Warehouse) startCluster(readyAt time.Time) *cluster {
	now := w.sched.Now()
	c := &cluster{
		id:        w.nextCluster,
		readyAt:   readyAt,
		cache:     make(map[uint64]cacheEntry),
		idleSince: now,
	}
	w.nextCluster++
	w.clusters = append(w.clusters, c)
	w.meter.StartCluster(c.id, w.cfg.Size, now, true)
	w.acct.emitWarehouseEvent(WarehouseEvent{
		Time: now, Warehouse: w.cfg.Name, Kind: EventClusterStart, Clusters: len(w.clusters),
	})
	return c
}

// stopCluster closes a cluster's metering and removes it.
func (w *Warehouse) stopCluster(c *cluster) {
	now := w.sched.Now()
	w.meter.StopCluster(c.id, now)
	for i, cc := range w.clusters {
		if cc == c {
			w.clusters = append(w.clusters[:i], w.clusters[i+1:]...)
			break
		}
	}
	w.acct.emitWarehouseEvent(WarehouseEvent{
		Time: now, Warehouse: w.cfg.Name, Kind: EventClusterStop, Clusters: len(w.clusters),
	})
	// A draining cluster can finish after MIN_CLUSTER_COUNT was raised,
	// leaving a running warehouse below its floor with nothing queued to
	// trigger a scale-out. Backfill immediately.
	if w.running && len(w.clusters) < w.cfg.MinClusters {
		w.startCluster(now.Add(w.clusterStartDelay()))
	}
}

// dispatch assigns queued queries to clusters with free slots, scaling
// out per the configured policy when queries would otherwise wait.
func (w *Warehouse) dispatch() {
	if !w.running {
		return
	}
	for len(w.queue) > 0 {
		c := w.pickCluster()
		if c == nil {
			if !w.maybeScaleOut() {
				return // queue stays; capacity may free up later
			}
			continue
		}
		pq := w.queue[0]
		w.queue = w.queue[1:]
		w.execute(c, pq)
	}
}

// pickCluster returns the least-loaded non-draining cluster with a free
// slot, preferring warm (longest-running) clusters on ties so caches
// concentrate.
func (w *Warehouse) pickCluster() *cluster {
	var best *cluster
	for _, c := range w.clusters {
		if c.draining || c.running >= w.acct.params.MaxConcurrency {
			continue
		}
		if best == nil || c.running < best.running ||
			(c.running == best.running && c.id < best.id) {
			best = c
		}
	}
	return best
}

// maybeScaleOut starts another cluster if the scaling policy calls for
// it. Returns true if a cluster was started.
func (w *Warehouse) maybeScaleOut() bool {
	if len(w.clusters) >= w.cfg.MaxClusters {
		return false
	}
	now := w.sched.Now()
	p := w.acct.params
	if !w.lastStart.IsZero() && now.Sub(w.lastStart) < p.ClusterStartSpacing {
		// Blocked only by start spacing: retry once the window opens so
		// queued queries are not stranded until the next completion.
		w.scheduleDispatchRetry(w.lastStart.Add(p.ClusterStartSpacing))
		return false
	}
	switch w.cfg.Policy {
	case ScaleStandard:
		// Start as soon as anything queues.
		if len(w.queue) == 0 {
			return false
		}
	case ScaleEconomy:
		// Start only if the queued work would keep a new cluster busy.
		if w.estimatedQueuedWork() < p.EconomyQueuedWork {
			return false
		}
	}
	w.lastStart = now
	w.startCluster(now.Add(w.clusterStartDelay()))
	return true
}

// scheduleDispatchRetry arms a one-shot re-dispatch at the given time,
// coalescing duplicate requests.
func (w *Warehouse) scheduleDispatchRetry(at time.Time) {
	if w.retryArmed {
		return
	}
	w.retryArmed = true
	w.sched.Schedule(at, "dispatch-retry:"+w.cfg.Name, func() {
		w.retryArmed = false
		if w.running && len(w.queue) > 0 {
			w.dispatch()
		}
	})
}

// estimatedQueuedWork sums the warm-cache latencies of queued queries at
// the current size, in seconds.
func (w *Warehouse) estimatedQueuedWork() float64 {
	var total float64
	for _, pq := range w.queue {
		total += pq.q.Latency(w.cfg.Size, true).Seconds()
	}
	return total
}

// execute runs a query on a cluster and schedules its completion.
func (w *Warehouse) execute(c *cluster, pq pendingQuery) {
	now := w.sched.Now()
	start := now
	if c.readyAt.After(start) {
		start = c.readyAt
	}
	warm := w.cacheWarm(c, pq.q.TemplateHash, start)
	lat := pq.q.Latency(w.cfg.Size, warm)
	if !warm {
		w.coldReads++
	}
	w.touchCache(c, pq.q.TemplateHash, start.Add(lat))
	c.running++
	sizeAtStart := w.cfg.Size
	clustersAtStart := len(w.clusters)
	end := start.Add(lat)
	w.sched.Schedule(end, "query-complete:"+w.cfg.Name, func() {
		c.running--
		if c.running == 0 {
			c.idleSince = w.sched.Now()
		}
		w.completed++
		rec := QueryRecord{
			QueryID:       pq.q.ID,
			Warehouse:     w.cfg.Name,
			TextHash:      pq.q.TextHash,
			TemplateHash:  pq.q.TemplateHash,
			UserHash:      pq.q.UserHash,
			SubmitTime:    pq.submitted,
			StartTime:     start,
			EndTime:       end,
			QueueDuration: start.Sub(pq.submitted),
			ExecDuration:  end.Sub(start),
			BytesScanned:  pq.q.BytesScanned,
			Size:          sizeAtStart,
			Clusters:      clustersAtStart,
			ColdRead:      !warm,
			Resumed:       pq.resumed,
		}
		w.acct.emitQuery(rec)
		if c.draining && c.running == 0 {
			w.stopCluster(c)
		}
		w.dispatch()
		w.maybeScheduleSuspend()
	})
}

// cacheWarm reports whether the cluster's local cache holds the query's
// working set.
func (w *Warehouse) cacheWarm(c *cluster, template uint64, at time.Time) bool {
	e, ok := c.cache[template]
	if !ok {
		return false
	}
	return at.Sub(e.lastTouch) <= w.acct.params.CacheTTL
}

// touchCache records the working set in the cluster cache, evicting the
// stalest entry when over capacity. Capacity scales with warehouse size.
func (w *Warehouse) touchCache(c *cluster, template uint64, at time.Time) {
	capEntries := int(w.cfg.Size.Capacity()) * w.acct.params.CacheEntriesPerCapacity
	c.cache[template] = cacheEntry{lastTouch: at}
	for len(c.cache) > capEntries {
		var oldestKey uint64
		var oldest time.Time
		first := true
		for k, e := range c.cache {
			if first || e.lastTouch.Before(oldest) ||
				(e.lastTouch.Equal(oldest) && k < oldestKey) {
				oldestKey, oldest, first = k, e.lastTouch, false
			}
		}
		delete(c.cache, oldestKey)
	}
}

// scheduleScaleCheck arms the periodic scale-in check for this run of
// the warehouse. scaleGen invalidates checks scheduled before a suspend.
func (w *Warehouse) scheduleScaleCheck() {
	gen := w.scaleGen
	w.sched.After(w.acct.params.ScaleInCheckEvery, "scale-check:"+w.cfg.Name, func() {
		if gen != w.scaleGen || !w.running {
			return
		}
		w.scaleInCheck()
		w.scheduleScaleCheck()
	})
}

// scaleInCheck shuts down a spare cluster after the policy's required
// number of consecutive under-loaded observations.
func (w *Warehouse) scaleInCheck() {
	p := w.acct.params
	need := p.StandardIdleChecks
	if w.cfg.Policy == ScaleEconomy {
		need = p.EconomyIdleChecks
	}
	if len(w.clusters) <= w.cfg.MinClusters {
		w.spareChecks = 0
		return
	}
	// Spare capacity: current load (running + queued) fits in one fewer
	// cluster.
	load := w.RunningQueries() + len(w.queue)
	if load <= (len(w.clusters)-1)*p.MaxConcurrency {
		w.spareChecks++
	} else {
		w.spareChecks = 0
		return
	}
	if w.spareChecks < need {
		return
	}
	w.spareChecks = 0
	// Retire the most recently started idle cluster; if none is idle,
	// drain the most recently started one.
	var victim *cluster
	for _, c := range w.clusters {
		if c.running == 0 && (victim == nil || c.id > victim.id) {
			victim = c
		}
	}
	if victim != nil {
		w.stopCluster(victim)
		return
	}
	var newest *cluster
	for _, c := range w.clusters {
		if !c.draining && (newest == nil || c.id > newest.id) {
			newest = c
		}
	}
	if newest != nil && len(w.clusters)-w.drainingCount() > w.cfg.MinClusters {
		newest.draining = true
	}
}

func (w *Warehouse) drainingCount() int {
	n := 0
	for _, c := range w.clusters {
		if c.draining {
			n++
		}
	}
	return n
}

// applyAlteration mutates the warehouse per an ALTER WAREHOUSE-style
// request. It is called by the Account so the change is logged there.
func (w *Warehouse) applyAlteration(a Alteration) error {
	now := w.sched.Now()
	newCfg := a.Apply(w.cfg)
	if err := newCfg.Validate(); err != nil {
		return err
	}
	resized := newCfg.Size != w.cfg.Size
	w.cfg = newCfg

	if resized && w.running {
		w.meter.Resize(newCfg.Size, now)
	}
	if w.running {
		// Enforce new cluster bounds.
		for len(w.clusters)-w.drainingCount() > w.cfg.MaxClusters {
			var victim *cluster
			for _, c := range w.clusters {
				if c.running == 0 && !c.draining && (victim == nil || c.id > victim.id) {
					victim = c
				}
			}
			if victim != nil {
				w.stopCluster(victim)
				continue
			}
			var newest *cluster
			for _, c := range w.clusters {
				if !c.draining && (newest == nil || c.id > newest.id) {
					newest = c
				}
			}
			if newest == nil {
				break
			}
			newest.draining = true
		}
		for len(w.clusters) < w.cfg.MinClusters {
			w.startCluster(now.Add(w.clusterStartDelay()))
		}
	}
	if a.Suspend && w.running {
		// Snowflake lets in-flight queries finish; we approximate by
		// suspending once idle, or immediately if already idle.
		if w.RunningQueries() == 0 && len(w.queue) == 0 {
			w.cancelSuspend()
			w.suspend()
		}
	}
	if a.Resume && !w.running {
		w.resume(false)
	}
	// AutoSuspend change may shorten or lengthen an armed timer.
	w.maybeScheduleSuspend()
	return nil
}

// Utilization returns the fraction of occupied slots across non-draining
// clusters, 0 when suspended.
func (w *Warehouse) Utilization() float64 {
	if !w.running || len(w.clusters) == 0 {
		return 0
	}
	slots := 0
	used := 0
	for _, c := range w.clusters {
		if c.draining {
			continue
		}
		slots += w.acct.params.MaxConcurrency
		used += c.running
	}
	if slots == 0 {
		return 0
	}
	return float64(used) / float64(slots)
}
