package cdw

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"kwo/internal/simclock"
)

// faultRig builds an account with one Medium warehouse "W".
func faultRig(t *testing.T, seed int64) (*simclock.Scheduler, *Account) {
	t.Helper()
	sched := simclock.NewScheduler(seed)
	acct := NewAccount(sched, DefaultSimParams())
	if _, err := acct.CreateWarehouse(Config{
		Name: "W", Size: SizeMedium, MinClusters: 1, MaxClusters: 3,
		AutoSuspend: 5 * time.Minute, AutoResume: true,
	}); err != nil {
		t.Fatal(err)
	}
	return sched, acct
}

func TestNoPlanNoFaults(t *testing.T) {
	sched, acct := faultRig(t, 1)
	if acct.Faults() != nil {
		t.Fatal("fresh account has a fault plan")
	}
	if err := acct.Alter("W", Alteration{Size: SizeP(SizeLarge)}, "test"); err != nil {
		t.Fatalf("alter without faults: %v", err)
	}
	sched.RunFor(3 * time.Hour)
	now := sched.Now()
	_, watermark, err := acct.BillingHistory("W", simclock.Epoch, now.Truncate(time.Hour))
	if err != nil {
		t.Fatalf("billing history without faults: %v", err)
	}
	if !watermark.Equal(now.Truncate(time.Hour)) {
		t.Fatalf("watermark = %v, want requested end %v", watermark, now.Truncate(time.Hour))
	}
	if c := acct.FaultCounts(); c != (FaultCounts{}) {
		t.Fatalf("fault counts = %+v on a plan-free account", c)
	}
}

func TestAlterOutageFailsBeforeApply(t *testing.T) {
	sched, acct := faultRig(t, 1)
	start := sched.Now()
	acct.SetFaults(FaultPlan{
		AlterOutages: []FaultWindow{{From: start, To: start.Add(10 * time.Minute)}},
	})
	err := acct.Alter("W", Alteration{Size: SizeP(SizeLarge)}, "test")
	if err == nil {
		t.Fatal("alter succeeded inside an outage window")
	}
	if !IsTransient(err) || AckLost(err) {
		t.Fatalf("outage error = %v, want transient without AckLost", err)
	}
	if !strings.Contains(err.Error(), "outage") {
		t.Fatalf("outage error %q does not name the outage", err)
	}
	wh, _ := acct.Warehouse("W")
	if wh.Config().Size != SizeMedium {
		t.Fatalf("size changed to %v despite pre-apply failure", wh.Config().Size)
	}
	if n := len(acct.Changes()); n != 0 {
		t.Fatalf("audit rows = %d after a failed-before-apply alter", n)
	}
	if c := acct.FaultCounts(); c.AlterFailures != 1 {
		t.Fatalf("fault counts = %+v, want 1 alter failure", c)
	}
	// Past the window the same alter goes through.
	sched.RunFor(11 * time.Minute)
	if err := acct.Alter("W", Alteration{Size: SizeP(SizeLarge)}, "test"); err != nil {
		t.Fatalf("alter after the outage: %v", err)
	}
	if wh.Config().Size != SizeLarge {
		t.Fatalf("size = %v after post-outage alter", wh.Config().Size)
	}
}

func TestAckLostAppliesChangeAndRecordsAudit(t *testing.T) {
	_, acct := faultRig(t, 1)
	acct.SetFaults(FaultPlan{AlterTimeoutRate: 1})
	err := acct.Alter("W", Alteration{Size: SizeP(SizeLarge)}, "test")
	if err == nil {
		t.Fatal("ack-lost alter returned no error")
	}
	if !IsTransient(err) || !AckLost(err) {
		t.Fatalf("ack-lost error = %v, want transient with AckLost", err)
	}
	wh, _ := acct.Warehouse("W")
	if wh.Config().Size != SizeLarge {
		t.Fatalf("size = %v, want the change applied despite the lost ack", wh.Config().Size)
	}
	chs := acct.Changes()
	if len(chs) != 1 || chs[0].After.Size != SizeLarge {
		t.Fatalf("audit rows = %+v, want the landed change recorded", chs)
	}
	if c := acct.FaultCounts(); c.AlterAckLosts != 1 {
		t.Fatalf("fault counts = %+v, want 1 lost ack", c)
	}
}

// TestAlterFaultDeterminism pins the property every failing-seed replay
// relies on: the same seed and plan produce the same fault sequence.
func TestAlterFaultDeterminism(t *testing.T) {
	run := func() string {
		sched, acct := faultRig(t, 42)
		acct.SetFaults(FaultPlan{AlterFailRate: 0.4, AlterTimeoutRate: 0.3})
		var b strings.Builder
		for i := 0; i < 40; i++ {
			alt := Alteration{AutoSuspend: DurationP(time.Duration(1+i%10) * time.Minute)}
			err := acct.Alter("W", alt, "test")
			fmt.Fprintf(&b, "%d err=%v ackLost=%v\n", i, err, AckLost(err))
			sched.RunFor(time.Minute)
		}
		fmt.Fprintf(&b, "%+v", acct.FaultCounts())
		return b.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged:\n--- first\n%s\n--- second\n%s", a, b)
	}
	if !strings.Contains(a, "err=cdw: alter unavailable") {
		t.Fatal("40 alters at 40% fail rate injected no failures")
	}
}

func TestBillingLagTruncatesWatermark(t *testing.T) {
	sched, acct := faultRig(t, 1)
	acct.SetFaults(FaultPlan{BillingLag: 2 * time.Hour})
	sched.RunFor(5 * time.Hour)
	now := sched.Now()
	rows, watermark, err := acct.BillingHistory("W", simclock.Epoch, now.Truncate(time.Hour))
	if err != nil {
		t.Fatalf("lagged billing history: %v", err)
	}
	wantWM := now.Add(-2 * time.Hour).Truncate(time.Hour)
	if !watermark.Equal(wantWM) {
		t.Fatalf("watermark = %v, want now−lag = %v", watermark, wantWM)
	}
	for _, r := range rows {
		if !r.HourStart.Before(wantWM) {
			t.Fatalf("row for hour %v leaked past the lag watermark", r.HourStart)
		}
	}
	if want := int(wantWM.Sub(simclock.Epoch) / time.Hour); len(rows) != want {
		t.Fatalf("rows = %d, want %d (zero-credit hours included)", len(rows), want)
	}
}

func TestBillingOutageDeniesRead(t *testing.T) {
	sched, acct := faultRig(t, 1)
	now := sched.Now()
	acct.SetFaults(FaultPlan{
		BillingOutages: []FaultWindow{{From: now, To: now.Add(time.Hour)}},
	})
	sched.RunFor(30 * time.Minute)
	from := simclock.Epoch
	rows, watermark, err := acct.BillingHistory("W", from, sched.Now().Truncate(time.Hour))
	if err == nil || !IsTransient(err) {
		t.Fatalf("billing read in an outage: err=%v, want transient", err)
	}
	if len(rows) != 0 || !watermark.Equal(from) {
		t.Fatalf("outage read returned rows=%d watermark=%v; cursor must not advance", len(rows), watermark)
	}
	if c := acct.FaultCounts(); c.BillingFailures != 1 {
		t.Fatalf("fault counts = %+v, want 1 billing failure", c)
	}
}

// TestUntilDeactivatesRates checks the recovery-tail cutoff: rate faults
// and the billing lag stop at Until, while explicit outage windows keep
// their own bounds.
func TestUntilDeactivatesRates(t *testing.T) {
	sched, acct := faultRig(t, 1)
	now := sched.Now()
	acct.SetFaults(FaultPlan{AlterFailRate: 1, BillingLag: 3 * time.Hour, Until: now})
	if err := acct.Alter("W", Alteration{Size: SizeP(SizeLarge)}, "test"); err != nil {
		t.Fatalf("alter after Until with 100%% fail rate: %v", err)
	}
	sched.RunFor(2 * time.Hour)
	end := sched.Now().Truncate(time.Hour)
	_, watermark, err := acct.BillingHistory("W", simclock.Epoch, end)
	if err != nil || !watermark.Equal(end) {
		t.Fatalf("billing after Until: watermark=%v err=%v, want full span %v", watermark, err, end)
	}
	// An outage window placed after Until still fires.
	later := sched.Now()
	acct.SetFaults(FaultPlan{
		AlterOutages: []FaultWindow{{From: later, To: later.Add(time.Hour)}},
		Until:        now,
	})
	if err := acct.Alter("W", Alteration{Size: SizeP(SizeMedium)}, "test"); err == nil {
		t.Fatal("outage window after Until did not fire")
	}
}
