package cdw

import (
	"testing"
	"time"

	"kwo/internal/simclock"
)

// testRig wires a scheduler, an account, one warehouse, and a recording
// listener together.
type testRig struct {
	sched *simclock.Scheduler
	acct  *Account
	wh    *Warehouse
	recs  []QueryRecord
	evs   []WarehouseEvent
	chs   []ConfigChange
}

func (r *testRig) OnQuery(q QueryRecord)             { r.recs = append(r.recs, q) }
func (r *testRig) OnChange(c ConfigChange)           { r.chs = append(r.chs, c) }
func (r *testRig) OnWarehouseEvent(e WarehouseEvent) { r.evs = append(r.evs, e) }

func newRig(t *testing.T, cfg Config) *testRig {
	t.Helper()
	r := &testRig{sched: simclock.NewScheduler(1)}
	r.acct = NewAccount(r.sched, DefaultSimParams())
	r.acct.Subscribe(r)
	wh, err := r.acct.CreateWarehouse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.wh = wh
	return r
}

func baseCfg() Config {
	return Config{
		Name:        "WH",
		Size:        SizeXSmall,
		MinClusters: 1,
		MaxClusters: 1,
		Policy:      ScaleStandard,
		AutoSuspend: 5 * time.Minute,
		AutoResume:  true,
	}
}

func q(work float64) Query {
	return Query{Work: work, ScaleExp: 1.0, ColdFactor: 1.0, TemplateHash: 42, BytesScanned: 1 << 20}
}

func TestAutoSuspendAfterIdle(t *testing.T) {
	r := newRig(t, baseCfg())
	if !r.wh.Running() {
		t.Fatal("new warehouse not running")
	}
	// No queries: should suspend after AutoSuspend.
	r.sched.RunFor(10 * time.Minute)
	if r.wh.Running() {
		t.Fatal("idle warehouse did not auto-suspend")
	}
	resumes, suspends, _, _ := r.wh.Stats()
	if resumes != 1 || suspends != 1 {
		t.Fatalf("resumes=%d suspends=%d, want 1/1", resumes, suspends)
	}
}

func TestAutoResumeOnQuery(t *testing.T) {
	r := newRig(t, baseCfg())
	r.sched.RunFor(10 * time.Minute) // suspend
	if err := r.acct.Submit("WH", q(10)); err != nil {
		t.Fatal(err)
	}
	if !r.wh.Running() {
		t.Fatal("query did not auto-resume warehouse")
	}
	r.sched.RunFor(time.Minute)
	if len(r.recs) != 1 {
		t.Fatalf("completed %d queries, want 1", len(r.recs))
	}
	rec := r.recs[0]
	if !rec.Resumed {
		t.Fatal("record did not mark auto-resume")
	}
	// Resume delay pushes the start, counted as queue time.
	if rec.QueueDuration < DefaultSimParams().ResumeDelay {
		t.Fatalf("queue duration %v < resume delay", rec.QueueDuration)
	}
}

func TestSubmitSuspendedNoAutoResume(t *testing.T) {
	cfg := baseCfg()
	cfg.AutoResume = false
	r := newRig(t, cfg)
	r.sched.RunFor(10 * time.Minute) // suspend
	if err := r.acct.Submit("WH", q(1)); err == nil {
		t.Fatal("suspended warehouse without auto-resume accepted a query")
	}
}

func TestColdThenWarmCache(t *testing.T) {
	r := newRig(t, baseCfg())
	// Same template twice: first cold, second warm and faster.
	r.acct.Submit("WH", q(10))
	r.sched.RunFor(time.Minute)
	r.acct.Submit("WH", q(10))
	r.sched.RunFor(time.Minute)
	if len(r.recs) != 2 {
		t.Fatalf("completed %d, want 2", len(r.recs))
	}
	if !r.recs[0].ColdRead {
		t.Fatal("first query not cold")
	}
	if r.recs[1].ColdRead {
		t.Fatal("second identical query not warm")
	}
	if r.recs[1].ExecDuration >= r.recs[0].ExecDuration {
		t.Fatalf("warm run (%v) not faster than cold (%v)",
			r.recs[1].ExecDuration, r.recs[0].ExecDuration)
	}
}

func TestSuspendDropsCache(t *testing.T) {
	r := newRig(t, baseCfg())
	r.acct.Submit("WH", q(10))
	r.sched.RunFor(20 * time.Minute) // complete + suspend
	if r.wh.Running() {
		t.Fatal("expected suspended")
	}
	r.acct.Submit("WH", q(10))
	r.sched.RunFor(time.Minute)
	if !r.recs[1].ColdRead {
		t.Fatal("cache survived a suspend")
	}
}

func TestQueueingWhenSlotsFull(t *testing.T) {
	r := newRig(t, baseCfg())
	slots := DefaultSimParams().MaxConcurrency
	for i := 0; i < slots+3; i++ {
		qq := q(60)
		qq.TemplateHash = uint64(i) // distinct working sets
		r.acct.Submit("WH", qq)
	}
	if r.wh.QueueLength() != 3 {
		t.Fatalf("queue = %d, want 3 (MaxClusters=1 cannot scale out)", r.wh.QueueLength())
	}
	r.sched.RunFor(time.Hour)
	if len(r.recs) != slots+3 {
		t.Fatalf("completed %d, want %d", len(r.recs), slots+3)
	}
	queued := 0
	for _, rec := range r.recs {
		if rec.QueueDuration > DefaultSimParams().ResumeDelay {
			queued++
		}
	}
	if queued < 3 {
		t.Fatalf("only %d queries show queueing, want >= 3", queued)
	}
}

func TestStandardScaleOut(t *testing.T) {
	cfg := baseCfg()
	cfg.MaxClusters = 3
	r := newRig(t, cfg)
	slots := DefaultSimParams().MaxConcurrency
	for i := 0; i < slots+1; i++ {
		qq := q(300)
		qq.TemplateHash = uint64(i)
		r.acct.Submit("WH", qq)
	}
	if r.wh.ActiveClusters() != 2 {
		t.Fatalf("standard policy did not scale out immediately: clusters=%d", r.wh.ActiveClusters())
	}
}

func TestEconomyScaleOutNeedsQueuedWork(t *testing.T) {
	cfg := baseCfg()
	cfg.MaxClusters = 3
	cfg.Policy = ScaleEconomy
	r := newRig(t, cfg)
	slots := DefaultSimParams().MaxConcurrency
	// One short queued query: far below the 6-minute threshold.
	for i := 0; i < slots+1; i++ {
		qq := q(30)
		qq.TemplateHash = uint64(i)
		r.acct.Submit("WH", qq)
	}
	if r.wh.ActiveClusters() != 1 {
		t.Fatalf("economy scaled out on trivial queue: clusters=%d", r.wh.ActiveClusters())
	}
	// Pile on queued work to exceed the threshold.
	for i := 0; i < 20; i++ {
		qq := q(120)
		qq.TemplateHash = uint64(100 + i)
		r.acct.Submit("WH", qq)
	}
	if r.wh.ActiveClusters() < 2 {
		t.Fatalf("economy did not scale out under heavy queue: clusters=%d", r.wh.ActiveClusters())
	}
}

func TestScaleInAfterLoadDrops(t *testing.T) {
	cfg := baseCfg()
	cfg.MaxClusters = 4
	cfg.AutoSuspend = time.Hour // keep running
	r := newRig(t, cfg)
	slots := DefaultSimParams().MaxConcurrency
	for i := 0; i < 3*slots; i++ {
		qq := q(120)
		qq.TemplateHash = uint64(i)
		r.acct.Submit("WH", qq)
	}
	if r.wh.ActiveClusters() < 2 {
		t.Fatal("did not scale out")
	}
	// After all queries finish, scale-in checks should retire extras.
	r.sched.RunFor(30 * time.Minute)
	if r.wh.ActiveClusters() != cfg.MinClusters {
		t.Fatalf("clusters = %d after idle, want MinClusters=%d",
			r.wh.ActiveClusters(), cfg.MinClusters)
	}
}

func TestMaximizedModeStartsAllClusters(t *testing.T) {
	cfg := baseCfg()
	cfg.MinClusters = 3
	cfg.MaxClusters = 3
	r := newRig(t, cfg)
	if r.wh.ActiveClusters() != 3 {
		t.Fatalf("maximized warehouse started %d clusters, want 3", r.wh.ActiveClusters())
	}
	if !cfg.Maximized() {
		t.Fatal("Maximized() = false")
	}
}

func TestResizeAffectsSubsequentLatency(t *testing.T) {
	r := newRig(t, baseCfg())
	r.acct.Submit("WH", q(64))
	r.sched.RunFor(5 * time.Minute)
	if err := r.acct.Alter("WH", Alteration{Size: SizeP(SizeLarge)}, "test"); err != nil {
		t.Fatal(err)
	}
	qq := q(64)
	qq.TemplateHash = 43
	r.acct.Submit("WH", qq)
	r.sched.RunFor(5 * time.Minute)
	if len(r.recs) != 2 {
		t.Fatalf("completed %d, want 2", len(r.recs))
	}
	// Large has 8x capacity of XS: cold 64s*2 → 128s vs 16s.
	if r.recs[1].ExecDuration >= r.recs[0].ExecDuration {
		t.Fatalf("query on Large (%v) not faster than on XS (%v)",
			r.recs[1].ExecDuration, r.recs[0].ExecDuration)
	}
	if r.recs[1].Size != SizeLarge {
		t.Fatalf("record size %v, want Large", r.recs[1].Size)
	}
}

func TestAlterReducingMaxClustersStopsExtras(t *testing.T) {
	cfg := baseCfg()
	cfg.MinClusters = 1
	cfg.MaxClusters = 4
	cfg.AutoSuspend = time.Hour
	r := newRig(t, cfg)
	slots := DefaultSimParams().MaxConcurrency
	for i := 0; i < 3*slots; i++ {
		qq := q(600)
		qq.TemplateHash = uint64(i)
		r.acct.Submit("WH", qq)
	}
	r.sched.RunFor(2 * time.Minute)
	before := r.wh.ActiveClusters()
	if before < 3 {
		t.Fatalf("precondition: wanted >=3 clusters, got %d", before)
	}
	if err := r.acct.Alter("WH", Alteration{MaxClusters: IntP(1)}, "test"); err != nil {
		t.Fatal(err)
	}
	// Busy clusters drain; after queries finish they stop.
	r.sched.RunFor(time.Hour)
	if r.wh.ActiveClusters() != 1 {
		t.Fatalf("clusters = %d after reducing max to 1", r.wh.ActiveClusters())
	}
}

func TestAlterRaisingMinClustersStartsMore(t *testing.T) {
	cfg := baseCfg()
	cfg.MaxClusters = 4
	cfg.AutoSuspend = time.Hour
	r := newRig(t, cfg)
	if err := r.acct.Alter("WH", Alteration{MinClusters: IntP(3)}, "test"); err != nil {
		t.Fatal(err)
	}
	if r.wh.ActiveClusters() != 3 {
		t.Fatalf("clusters = %d after raising min to 3", r.wh.ActiveClusters())
	}
}

func TestExplicitSuspendResume(t *testing.T) {
	r := newRig(t, baseCfg())
	if err := r.acct.Alter("WH", Alteration{Suspend: true}, "test"); err != nil {
		t.Fatal(err)
	}
	if r.wh.Running() {
		t.Fatal("explicit suspend ignored")
	}
	if err := r.acct.Alter("WH", Alteration{Resume: true}, "test"); err != nil {
		t.Fatal(err)
	}
	if !r.wh.Running() {
		t.Fatal("explicit resume ignored")
	}
}

func TestChangeLogRecordsActor(t *testing.T) {
	r := newRig(t, baseCfg())
	r.acct.Alter("WH", Alteration{Size: SizeP(SizeMedium)}, "kwo")
	r.acct.Alter("WH", Alteration{Size: SizeP(SizeLarge)}, "external-user")
	chs := r.acct.Changes()
	if len(chs) != 2 {
		t.Fatalf("changes = %d, want 2", len(chs))
	}
	if chs[0].Actor != "kwo" || chs[1].Actor != "external-user" {
		t.Fatalf("actors = %s, %s", chs[0].Actor, chs[1].Actor)
	}
	if chs[1].Before.Size != SizeMedium || chs[1].After.Size != SizeLarge {
		t.Fatal("before/after configs wrong")
	}
	if len(r.chs) != 2 {
		t.Fatal("listener did not receive change events")
	}
}

func TestBillingMinimumOnResume(t *testing.T) {
	r := newRig(t, baseCfg())
	r.sched.RunFor(10 * time.Minute) // suspend after 5min idle
	creditsBefore := r.wh.Meter().TotalCredits(r.sched.Now())
	// A 1-second query should still bill the 60s minimum.
	r.acct.Submit("WH", q(1))
	r.sched.RunFor(20 * time.Minute) // complete + suspend again
	creditsAfter := r.wh.Meter().TotalCredits(r.sched.Now())
	delta := creditsAfter - creditsBefore
	min := 60.0 / 3600
	if delta < min {
		t.Fatalf("resume billed %v credits, below 60s minimum %v", delta, min)
	}
}

func TestAutoSuspendIntervalRespected(t *testing.T) {
	cfg := baseCfg()
	cfg.AutoSuspend = 2 * time.Minute
	r := newRig(t, cfg)
	r.acct.Submit("WH", q(10))
	r.sched.RunFor(90 * time.Second)
	if !r.wh.Running() {
		t.Fatal("suspended before interval elapsed")
	}
	r.sched.RunFor(5 * time.Minute)
	if r.wh.Running() {
		t.Fatal("did not suspend after interval")
	}
	// Billed time should cover roughly query + suspend interval.
	credits := r.wh.Meter().TotalCredits(r.sched.Now())
	upper := (10.0*2 + 2 + 120 + 30) / 3600 // cold query + resume + interval + slack
	if credits > upper {
		t.Fatalf("credits %v exceed expected bound %v", credits, upper)
	}
}

func TestUtilization(t *testing.T) {
	r := newRig(t, baseCfg())
	if u := r.wh.Utilization(); u != 0 {
		t.Fatalf("idle utilization = %v", u)
	}
	for i := 0; i < 4; i++ {
		qq := q(300)
		qq.TemplateHash = uint64(i)
		r.acct.Submit("WH", qq)
	}
	want := 4.0 / float64(DefaultSimParams().MaxConcurrency)
	if u := r.wh.Utilization(); u != want {
		t.Fatalf("utilization = %v, want %v", u, want)
	}
}

func TestAccountSubmitUnknownWarehouse(t *testing.T) {
	r := newRig(t, baseCfg())
	if err := r.acct.Submit("NOPE", q(1)); err == nil {
		t.Fatal("submit to unknown warehouse succeeded")
	}
	if err := r.acct.Alter("NOPE", Alteration{}, "x"); err == nil {
		t.Fatal("alter of unknown warehouse succeeded")
	}
	if _, err := r.acct.CreateWarehouse(baseCfg()); err == nil {
		t.Fatal("duplicate create succeeded")
	}
}

func TestOverheadLedger(t *testing.T) {
	r := newRig(t, baseCfg())
	r.acct.RecordOverhead(0.01, "telemetry pull")
	r.sched.RunFor(time.Hour)
	r.acct.RecordOverhead(0.02, "alter")
	got := r.acct.OverheadBetween(t0, t0.Add(30*time.Minute))
	if !approx(got, 0.01, 1e-12) {
		t.Fatalf("overhead window = %v, want 0.01", got)
	}
	all := r.acct.OverheadBetween(t0, t0.Add(2*time.Hour))
	if !approx(all, 0.03, 1e-12) {
		t.Fatalf("overhead total = %v, want 0.03", all)
	}
}

func TestQueryIDsAssigned(t *testing.T) {
	r := newRig(t, baseCfg())
	r.acct.Submit("WH", q(1))
	r.acct.Submit("WH", q(1))
	r.sched.RunFor(time.Minute)
	if r.recs[0].QueryID == 0 || r.recs[1].QueryID == 0 ||
		r.recs[0].QueryID == r.recs[1].QueryID {
		t.Fatalf("query IDs = %d, %d", r.recs[0].QueryID, r.recs[1].QueryID)
	}
}

func TestWarehouseEventsEmitted(t *testing.T) {
	r := newRig(t, baseCfg())
	r.sched.RunFor(10 * time.Minute) // suspend
	r.acct.Submit("WH", q(1))
	r.sched.RunFor(10 * time.Minute) // resume, run, suspend
	var kinds []EventKind
	for _, e := range r.evs {
		kinds = append(kinds, e.Kind)
	}
	// create(resume,cluster-start) suspend resume cluster-start suspend
	wantContains := []EventKind{EventResume, EventSuspend, EventResume, EventSuspend}
	i := 0
	for _, k := range kinds {
		if i < len(wantContains) && k == wantContains[i] {
			i++
		}
	}
	if i != len(wantContains) {
		t.Fatalf("event kinds %v missing expected subsequence", kinds)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, int) {
		r := newRig(t, func() Config { c := baseCfg(); c.MaxClusters = 3; return c }())
		rnd := r.sched.Rand("load")
		for i := 0; i < 200; i++ {
			at := t0.Add(time.Duration(rnd.Int63n(int64(2 * time.Hour))))
			qq := q(5 + rnd.Float64()*60)
			qq.TemplateHash = uint64(rnd.Intn(10))
			r.sched.Schedule(at, "submit", func() { r.acct.Submit("WH", qq) })
		}
		r.sched.RunFor(4 * time.Hour)
		return r.acct.TotalCredits(), len(r.recs)
	}
	c1, n1 := run()
	c2, n2 := run()
	if c1 != c2 || n1 != n2 {
		t.Fatalf("simulation not deterministic: (%v,%d) vs (%v,%d)", c1, n1, c2, n2)
	}
}

// TestDrainCompletionRespectsRaisedMinClusters is a regression test: a
// draining cluster that finishes after MIN_CLUSTER_COUNT was raised
// must not leave the running warehouse below its floor. stopCluster
// backfills immediately.
func TestDrainCompletionRespectsRaisedMinClusters(t *testing.T) {
	cfg := baseCfg()
	cfg.MaxClusters = 3
	cfg.AutoSuspend = time.Hour
	r := newRig(t, cfg)
	slots := DefaultSimParams().MaxConcurrency
	for i := 0; i < 3*slots; i++ {
		qq := q(600)
		qq.TemplateHash = uint64(i)
		r.acct.Submit("WH", qq)
	}
	r.sched.RunFor(2 * time.Minute)
	if r.wh.ActiveClusters() != 3 {
		t.Fatalf("precondition: wanted 3 clusters, got %d", r.wh.ActiveClusters())
	}
	// All clusters are busy, so dropping the max forces two to drain.
	if err := r.acct.Alter("WH", Alteration{MaxClusters: IntP(1)}, "test"); err != nil {
		t.Fatal(err)
	}
	if r.wh.DrainingClusters() != 2 {
		t.Fatalf("precondition: wanted 2 draining clusters, got %d", r.wh.DrainingClusters())
	}
	// Raise the floor above what will survive the drain. The alteration
	// itself starts nothing: three clusters still exist.
	if err := r.acct.Alter("WH",
		Alteration{MinClusters: IntP(2), MaxClusters: IntP(3)}, "test"); err != nil {
		t.Fatal(err)
	}
	// Queries finish, draining clusters stop; the warehouse must
	// backfill to the new floor rather than sit at one cluster.
	r.sched.RunFor(30 * time.Minute)
	if !r.wh.Running() {
		t.Fatal("warehouse suspended unexpectedly")
	}
	if got := r.wh.ActiveClusters(); got < 2 {
		t.Fatalf("clusters = %d after drain, want >= MinClusters=2", got)
	}
}
