package cdw

import (
	"time"
)

// Query is a unit of work submitted to a warehouse. Fields describe the
// query's resource profile, not its text: per the paper's security
// criterion (C6), only hashes of the text and template ever leave the
// warehouse, so the simulator carries hashes from the start.
type Query struct {
	ID           uint64
	TextHash     uint64 // hash of the full query text (constants included)
	TemplateHash uint64 // hash of the normalized template (constants stripped)
	UserHash     uint64 // hashed user name

	// Work is the execution time, in seconds, this query would take on
	// a warm X-Small cluster. Latency on larger sizes scales as
	// Work / Capacity^ScaleExp.
	Work float64

	// ScaleExp is the query's size-scaling exponent in (0, ~1.1].
	// 1.0 means perfectly parallelizable (latency halves per size step);
	// values below 1 model queries dominated by fixed costs; values
	// above 1 model memory-bound queries that spill on small sizes.
	ScaleExp float64

	// ColdFactor is the relative slowdown when the query runs on a
	// cluster whose local cache does not hold this query's working set:
	// coldLatency = warmLatency * (1 + ColdFactor). BI queries that
	// rescan the same partitions have high ColdFactor; full-scan ETL
	// queries have low ColdFactor.
	ColdFactor float64

	BytesScanned int64
}

// Latency returns the query's execution time on a cluster of the given
// size, given whether the cluster cache is warm for this query.
func (q Query) Latency(s Size, warm bool) time.Duration {
	cap := s.Capacity()
	// latency = Work / cap^ScaleExp
	lat := q.Work / pow(cap, q.ScaleExp)
	if !warm {
		lat *= 1 + q.ColdFactor
	}
	if lat < 0.001 {
		lat = 0.001 // floor at 1ms: even trivial queries are not free
	}
	return time.Duration(lat * float64(time.Second))
}

// pow computes base^exp for base >= 1 without importing math in the hot
// path signature; it simply delegates to math.Pow via the shared helper
// in latency.go.
func pow(base, exp float64) float64 { return mathPow(base, exp) }

// QueryRecord is the telemetry row produced when a query completes. It
// mirrors the columns of Snowflake's QUERY_HISTORY view that the paper
// says KWO trains on: system information, time series data, and
// performance metrics — never query text.
type QueryRecord struct {
	QueryID      uint64
	Warehouse    string
	TextHash     uint64
	TemplateHash uint64
	UserHash     uint64

	SubmitTime time.Time // when the query arrived
	StartTime  time.Time // when execution began (after queueing/resume)
	EndTime    time.Time // when execution finished

	QueueDuration time.Duration // StartTime - SubmitTime
	ExecDuration  time.Duration // EndTime - StartTime

	BytesScanned int64
	Size         Size // warehouse size the query executed at
	Clusters     int  // active clusters when the query started
	ColdRead     bool // true if the local cache was cold for this query
	Resumed      bool // true if this query triggered an auto-resume
}

// TotalDuration is queueing plus execution — the latency the user sees.
func (r QueryRecord) TotalDuration() time.Duration {
	return r.QueueDuration + r.ExecDuration
}
