package cdw

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// This file is the account's injectable fault model. A real CDW's
// control-plane API is not the always-up, zero-latency function call the
// rest of the simulator pretends it is: ALTER WAREHOUSE statements fail
// or time out, and the billing/metering history views trail reality by
// up to hours (Snowflake documents WAREHOUSE_METERING_HISTORY latency of
// up to 3 hours). The paper's §4.4 monitoring component exists precisely
// because the optimizer must back off and self-correct when the world
// misbehaves, so the simulator has to be able to misbehave on demand —
// deterministically, from the scheduler's seeded RNG, so a failing seed
// still reproduces byte for byte.

// FaultWindow is a half-open interval [From, To) during which a fault
// class is unconditionally active.
type FaultWindow struct {
	From, To time.Time
}

// Contains reports whether t falls inside the window.
func (w FaultWindow) Contains(t time.Time) bool {
	return !t.Before(w.From) && t.Before(w.To)
}

func (w FaultWindow) String() string {
	return fmt.Sprintf("[%s, %s)", w.From.Format("Mon 15:04"), w.To.Format("Mon 15:04"))
}

// FaultPlan configures the account's fault model. The zero plan injects
// nothing; an account with no plan installed behaves exactly as before
// (and draws no random numbers, so fault-free runs are byte-identical to
// runs on a build without fault injection at all).
type FaultPlan struct {
	// AlterFailRate is the probability that an ALTER WAREHOUSE call
	// fails transiently *before* the change is applied.
	AlterFailRate float64
	// AlterTimeoutRate is the probability that an ALTER WAREHOUSE call
	// times out *after* the change landed: the audit log records the
	// change but the caller gets an error with AckLost set. This is the
	// classic idempotency hazard retries must survive.
	AlterTimeoutRate float64
	// AlterOutages are windows during which every ALTER fails before
	// applying, regardless of the rates.
	AlterOutages []FaultWindow
	// BillingLag delays billing-history visibility: rows for hours newer
	// than now−BillingLag have not reached the metering view yet.
	BillingLag time.Duration
	// BillingOutages are windows during which billing-history reads fail
	// outright.
	BillingOutages []FaultWindow
	// Until, when non-zero, deactivates the rate-based faults and the
	// billing lag from that instant on (outage windows carry their own
	// bounds). Harnesses use it to guarantee a clean recovery tail so
	// end-of-run convergence invariants are decidable.
	Until time.Time
}

// ratesActive reports whether the probabilistic faults and the billing
// lag still apply at t.
func (p *FaultPlan) ratesActive(t time.Time) bool {
	return p.Until.IsZero() || t.Before(p.Until)
}

// alterFault decides the fate of one ALTER call: fail before applying,
// apply but lose the acknowledgment, or proceed normally.
func (p *FaultPlan) alterFault(now time.Time, rng *rand.Rand) (fail, ackLost bool) {
	for _, w := range p.AlterOutages {
		if w.Contains(now) {
			return true, false
		}
	}
	if !p.ratesActive(now) {
		return false, false
	}
	if p.AlterFailRate > 0 && rng.Float64() < p.AlterFailRate {
		return true, false
	}
	if p.AlterTimeoutRate > 0 && rng.Float64() < p.AlterTimeoutRate {
		return false, true
	}
	return false, false
}

// String renders a compact description for failure reports.
func (p *FaultPlan) String() string {
	var parts []string
	if p.AlterFailRate > 0 {
		parts = append(parts, fmt.Sprintf("alter-fail %.0f%%", 100*p.AlterFailRate))
	}
	if p.AlterTimeoutRate > 0 {
		parts = append(parts, fmt.Sprintf("alter-timeout %.0f%%", 100*p.AlterTimeoutRate))
	}
	for _, w := range p.AlterOutages {
		parts = append(parts, "alter-outage "+w.String())
	}
	if p.BillingLag > 0 {
		parts = append(parts, fmt.Sprintf("billing-lag %s", p.BillingLag))
	}
	for _, w := range p.BillingOutages {
		parts = append(parts, "billing-outage "+w.String())
	}
	if len(parts) == 0 {
		return "no faults"
	}
	if !p.Until.IsZero() {
		parts = append(parts, "until "+p.Until.Format("Mon 15:04"))
	}
	return strings.Join(parts, ", ")
}

// TransientError is a failure the caller should treat as retryable: the
// request did not definitively fail for a structural reason (validation,
// unknown warehouse), the API just misbehaved.
type TransientError struct {
	// Op names the failed API call ("alter", "billing-history").
	Op string
	// Reason classifies the injected cause ("outage", "injected",
	// "timeout").
	Reason string
	// AckLost reports that the operation may have taken effect even
	// though an error was returned — the caller must reconcile, not
	// blindly reissue a relative change.
	AckLost bool
}

func (e *TransientError) Error() string {
	if e.AckLost {
		return fmt.Sprintf("cdw: %s %s: response lost (change may have applied)", e.Op, e.Reason)
	}
	return fmt.Sprintf("cdw: %s unavailable (%s)", e.Op, e.Reason)
}

// IsTransient reports whether err is a retryable API failure.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// AckLost reports whether err indicates the operation may have taken
// effect despite the error.
func AckLost(err error) bool {
	var te *TransientError
	return errors.As(err, &te) && te.AckLost
}

// FaultCounts tallies injected faults, for reports and tests.
type FaultCounts struct {
	AlterFailures   int // ALTERs failed before applying
	AlterAckLosts   int // ALTERs applied but acknowledgment lost
	BillingFailures int // billing-history reads denied
}
