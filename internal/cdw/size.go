// Package cdw implements a discrete-event simulator of a Snowflake-like
// cloud data warehouse: virtual warehouses with T-shirt sizes, per-second
// credit metering with a 60-second resume minimum, auto-suspend and
// auto-resume, multi-cluster scale-out with Standard/Economy policies,
// query queueing, and a local cache that is dropped on suspend.
//
// The simulator reproduces the decision surface described in §3 of the
// Keebo paper (memory optimization, warehouse resizing, warehouse
// parallelism) so that the optimizer exercises exactly the knobs the
// paper's system tunes. It stands in for the real Snowflake API; the
// optimizer only ever talks to it through the same narrow surface
// (ALTER WAREHOUSE-style alterations and telemetry reads).
package cdw

import "fmt"

// Size is a Snowflake-style T-shirt warehouse size. Credits per hour and
// nominal compute capacity both double with each increment.
type Size int

// The ten documented Snowflake warehouse sizes.
const (
	SizeXSmall Size = iota // X-Small: 1 credit/hour
	SizeSmall
	SizeMedium
	SizeLarge
	SizeXLarge
	Size2XLarge
	Size3XLarge
	Size4XLarge
	Size5XLarge
	Size6XLarge
)

// MinSize and MaxSize bound the valid Size range.
const (
	MinSize = SizeXSmall
	MaxSize = Size6XLarge
)

var sizeNames = [...]string{
	"X-Small", "Small", "Medium", "Large", "X-Large",
	"2X-Large", "3X-Large", "4X-Large", "5X-Large", "6X-Large",
}

// String returns the Snowflake display name for the size.
func (s Size) String() string {
	if s < MinSize || s > MaxSize {
		return fmt.Sprintf("Size(%d)", int(s))
	}
	return sizeNames[s]
}

// Valid reports whether s is one of the defined sizes.
func (s Size) Valid() bool { return s >= MinSize && s <= MaxSize }

// CreditsPerHour returns the billing rate of a single running cluster of
// this size. X-Small is 1 credit/hour; the rate doubles per size step.
func (s Size) CreditsPerHour() float64 { return float64(uint64(1) << uint(s)) }

// Capacity returns the nominal compute capacity of one cluster, relative
// to X-Small = 1. Like the billing rate, it doubles per step ("the
// compute capacity is widely assumed to also double with each increment").
func (s Size) Capacity() float64 { return float64(uint64(1) << uint(s)) }

// Up returns the next larger size, clamped at 6X-Large.
func (s Size) Up() Size {
	if s >= MaxSize {
		return MaxSize
	}
	return s + 1
}

// Down returns the next smaller size, clamped at X-Small.
func (s Size) Down() Size {
	if s <= MinSize {
		return MinSize
	}
	return s - 1
}

// Clamp restricts s to [lo, hi].
func (s Size) Clamp(lo, hi Size) Size {
	if s < lo {
		return lo
	}
	if s > hi {
		return hi
	}
	return s
}

// ParseSize converts a display name (as accepted by ALTER WAREHOUSE)
// back to a Size.
func ParseSize(name string) (Size, error) {
	for i, n := range sizeNames {
		if n == name {
			return Size(i), nil
		}
	}
	return 0, fmt.Errorf("cdw: unknown warehouse size %q", name)
}
