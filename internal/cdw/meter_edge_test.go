package cdw

import (
	"testing"
	"time"
)

// TestMeterResumeDurationEdges pins the 60-second minimum behaviour at
// and around the boundary: short runs bill exactly 60s, a run of
// exactly 60s is not inflated, and one second more bills one second
// more.
func TestMeterResumeDurationEdges(t *testing.T) {
	cases := []struct {
		name    string
		ran     time.Duration
		wantSec float64
	}{
		{"instant stop", 0, 60},
		{"under minimum", 20 * time.Second, 60},
		{"one short of minimum", 59 * time.Second, 60},
		{"exactly minimum", 60 * time.Second, 60},
		{"one past minimum", 61 * time.Second, 61},
		{"well past minimum", 10 * time.Minute, 600},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMeter("W")
			m.StartCluster(0, SizeXSmall, t0, true)
			m.StopCluster(0, t0.Add(tc.ran))
			now := t0.Add(time.Hour)
			got := m.TotalCredits(now)
			want := tc.wantSec / 3600 // X-Small: 1 credit/hour
			if !approx(got, want, 1e-9) {
				t.Fatalf("ran %v: credits = %v, want %v", tc.ran, got, want)
			}
			// The hourly aggregation must bill the same credits.
			var hourly float64
			for _, r := range m.Hourly(t0, now.Add(time.Hour), now) {
				hourly += r.Credits
			}
			if !approx(hourly, want, 1e-9) {
				t.Fatalf("ran %v: hourly sum = %v, want %v", tc.ran, hourly, want)
			}
		})
	}
}

// TestMeterMinimumStraddlesHourBoundary suspends inside the 60s minimum
// right before a clock hour ends: the minimum's extension must land in
// the next hour's bucket, and the buckets must still sum to the total.
func TestMeterMinimumStraddlesHourBoundary(t *testing.T) {
	m := NewMeter("W")
	start := t0.Add(time.Hour - 30*time.Second) // 00:59:30
	m.StartCluster(0, SizeXSmall, start, true)
	m.StopCluster(0, start.Add(10*time.Second)) // ran 10s, billed until 01:00:30
	now := t0.Add(2 * time.Hour)

	rows := m.Hourly(t0, now, now)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	wantH0 := 30.0 / 3600 // 00:59:30–01:00:00
	wantH1 := 30.0 / 3600 // 01:00:00–01:00:30, minimum extension
	if !approx(rows[0].Credits, wantH0, 1e-9) || !approx(rows[1].Credits, wantH1, 1e-9) {
		t.Fatalf("hourly = %v/%v, want %v/%v",
			rows[0].Credits, rows[1].Credits, wantH0, wantH1)
	}
	if total := m.TotalCredits(now); !approx(rows[0].Credits+rows[1].Credits, total, 1e-9) {
		t.Fatalf("hourly sum %v != total %v", rows[0].Credits+rows[1].Credits, total)
	}
}

// TestMeterZeroDurationQueries pins the degenerate billing windows:
// empty and inverted ranges are zero rows and zero credits.
func TestMeterZeroDurationQueries(t *testing.T) {
	m := NewMeter("W")
	m.StartCluster(0, SizeMedium, t0, true)
	m.StopCluster(0, t0.Add(5*time.Minute))
	now := t0.Add(time.Hour)

	if rows := m.Hourly(t0, t0, now); rows != nil {
		t.Fatalf("Hourly over empty range = %d rows, want nil", len(rows))
	}
	if rows := m.Hourly(now, t0, now); rows != nil {
		t.Fatalf("Hourly over inverted range = %d rows, want nil", len(rows))
	}
	at := t0.Add(2 * time.Minute)
	if c := m.CreditsBetween(at, at, now); c != 0 {
		t.Fatalf("CreditsBetween over empty range = %v, want 0", c)
	}
	if c := m.CreditsBetween(now, t0, now); c != 0 {
		t.Fatalf("CreditsBetween over inverted range = %v, want 0", c)
	}
}

// TestMeterResizeDuringMinimum is the regression test for double
// billing: a resize inside the 60-second window must hand the remaining
// minimum to the post-resize segment, so the run bills exactly 60
// seconds across non-overlapping intervals (20s at the old size, 40s at
// the new).
func TestMeterResizeDuringMinimum(t *testing.T) {
	m := NewMeter("W")
	m.StartCluster(0, SizeXSmall, t0, true)
	m.Resize(SizeMedium, t0.Add(20*time.Second))
	m.StopCluster(0, t0.Add(30*time.Second))
	now := t0.Add(time.Hour)

	want := 1.0*(20.0/3600) + 4.0*(40.0/3600)
	if got := m.TotalCredits(now); !approx(got, want, 1e-9) {
		t.Fatalf("credits = %v, want %v (20s XS + 40s Medium)", got, want)
	}

	segs := m.Segments(now)
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(segs))
	}
	pre, post := segs[0], segs[1]
	if !pre.MinimumApplied {
		t.Fatal("run-opening segment lost its minimum marker")
	}
	if !pre.MinBilledUntil.IsZero() {
		t.Fatalf("pre-resize segment still carries MinBilledUntil %v", pre.MinBilledUntil)
	}
	if got, want := post.MinBilledUntil, t0.Add(60*time.Second); !got.Equal(want) {
		t.Fatalf("post-resize MinBilledUntil = %v, want %v", got, want)
	}
	if pre.BilledEnd().After(post.Start) {
		t.Fatalf("billed intervals overlap: %v > %v — double billing", pre.BilledEnd(), post.Start)
	}
	billed := pre.BilledEnd().Sub(pre.Start) + post.BilledEnd().Sub(post.Start)
	if billed != MinBilledClusterTime {
		t.Fatalf("run billed %v, want exactly %v", billed, MinBilledClusterTime)
	}
}

// TestMeterResizeAfterMinimumNoCarry: once the 60-second window has
// passed, a resize must not re-extend billing.
func TestMeterResizeAfterMinimumNoCarry(t *testing.T) {
	m := NewMeter("W")
	m.StartCluster(0, SizeXSmall, t0, true)
	m.Resize(SizeMedium, t0.Add(2*time.Minute))
	m.StopCluster(0, t0.Add(3*time.Minute))
	now := t0.Add(time.Hour)

	segs := m.Segments(now)
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(segs))
	}
	if !segs[1].MinBilledUntil.IsZero() {
		t.Fatalf("post-resize segment carries stale MinBilledUntil %v", segs[1].MinBilledUntil)
	}
	want := 1.0*(2.0/60) + 4.0*(1.0/60)
	if got := m.TotalCredits(now); !approx(got, want, 1e-9) {
		t.Fatalf("credits = %v, want %v", got, want)
	}
}
