// Package pricing implements KWO's value-based pricing (§4.7): the
// customer is charged a percentage of the savings actually realized —
// "no savings, no charges" — with savings estimated by the warehouse
// cost model's what-if analysis.
package pricing

import (
	"fmt"
	"math"
	"time"
)

// DefaultRate is the fraction of realized savings billed to the
// customer.
const DefaultRate = 0.20

// Invoice is one billing-period statement.
type Invoice struct {
	Warehouse string
	From, To  time.Time
	// ActualCredits is what the customer paid the CDW vendor.
	ActualCredits float64
	// EstimatedWithoutKeebo is the cost model's counterfactual.
	EstimatedWithoutKeebo float64
	// Savings is max(0, EstimatedWithoutKeebo − ActualCredits).
	Savings float64
	// Rate is the fraction of savings charged.
	Rate float64
	// Charge is Savings × Rate.
	Charge float64
}

// NewInvoice computes an invoice from the period's actual and
// counterfactual costs. Negative savings never produce a charge (and
// are reported as zero savings): the customer has nothing to lose (C1).
// The rate must lie strictly inside (0, 1); an out-of-range rate is an
// error, never silently replaced — a mistyped 1.0 must fail loudly, not
// quietly bill the default share.
func NewInvoice(warehouse string, from, to time.Time, actual, withoutKeebo, rate float64) (Invoice, error) {
	if err := ValidateRate(rate); err != nil {
		return Invoice{}, fmt.Errorf("pricing: invoice %s: %w", warehouse, err)
	}
	return newInvoice(warehouse, from, to, actual, withoutKeebo, rate), nil
}

// newInvoice builds the invoice from a rate the caller has already
// validated (Ledger construction validates once, Add reuses).
func newInvoice(warehouse string, from, to time.Time, actual, withoutKeebo, rate float64) Invoice {
	savings := withoutKeebo - actual
	if savings < 0 {
		savings = 0
	}
	return Invoice{
		Warehouse:             warehouse,
		From:                  from,
		To:                    to,
		ActualCredits:         actual,
		EstimatedWithoutKeebo: withoutKeebo,
		Savings:               savings,
		Rate:                  rate,
		Charge:                savings * rate,
	}
}

// ValidateRate reports whether a savings-share rate is usable: a finite
// fraction strictly inside (0, 1).
func ValidateRate(rate float64) error {
	if math.IsNaN(rate) || rate <= 0 || rate >= 1 {
		return fmt.Errorf("pricing: rate %v outside (0,1)", rate)
	}
	return nil
}

// Validate checks the invoice's internal consistency: every field
// finite and non-negative, the period well-formed, savings exactly the
// clamped counterfactual difference, and the charge exactly the rated
// share of savings. "No savings, no charges" (§4.7) is only credible
// if no code path can manufacture a charge any other way.
func (i Invoice) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"ActualCredits", i.ActualCredits},
		{"EstimatedWithoutKeebo", i.EstimatedWithoutKeebo},
		{"Savings", i.Savings},
		{"Rate", i.Rate},
		{"Charge", i.Charge},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("pricing: invoice %s: %s is %v", i.Warehouse, f.name, f.v)
		}
		if f.v < 0 {
			return fmt.Errorf("pricing: invoice %s: %s is negative (%v)", i.Warehouse, f.name, f.v)
		}
	}
	if i.To.Before(i.From) {
		return fmt.Errorf("pricing: invoice %s: period ends (%v) before it starts (%v)",
			i.Warehouse, i.To, i.From)
	}
	if i.Rate <= 0 || i.Rate >= 1 {
		return fmt.Errorf("pricing: invoice %s: rate %v outside (0,1)", i.Warehouse, i.Rate)
	}
	wantSavings := i.EstimatedWithoutKeebo - i.ActualCredits
	if wantSavings < 0 {
		wantSavings = 0
	}
	if i.Savings != wantSavings {
		return fmt.Errorf("pricing: invoice %s: savings %v != clamp(withoutKeebo-actual) %v",
			i.Warehouse, i.Savings, wantSavings)
	}
	if i.Charge != i.Savings*i.Rate {
		return fmt.Errorf("pricing: invoice %s: charge %v != savings*rate %v",
			i.Warehouse, i.Charge, i.Savings*i.Rate)
	}
	return nil
}

// SavingsPercent returns savings as a percentage of the counterfactual
// cost (the number the paper's "20%–70% savings" claim refers to).
func (i Invoice) SavingsPercent() float64 {
	if i.EstimatedWithoutKeebo <= 0 {
		return 0
	}
	return 100 * i.Savings / i.EstimatedWithoutKeebo
}

// String renders a one-line statement.
func (i Invoice) String() string {
	return fmt.Sprintf("%s %s→%s: actual %.2f, without-Keebo %.2f, savings %.2f (%.1f%%), charge %.2f",
		i.Warehouse, i.From.Format("2006-01-02"), i.To.Format("2006-01-02"),
		i.ActualCredits, i.EstimatedWithoutKeebo, i.Savings, i.SavingsPercent(), i.Charge)
}

// Ledger accumulates invoices per warehouse.
type Ledger struct {
	Rate     float64
	invoices []Invoice
}

// NewLedger creates a ledger with the given savings share. A rate of
// exactly zero is the documented zero-value convenience and selects
// DefaultRate; any other out-of-range rate (negative, >= 1, NaN) is an
// error rather than a silent substitution.
func NewLedger(rate float64) (*Ledger, error) {
	if rate == 0 {
		rate = DefaultRate
	}
	if err := ValidateRate(rate); err != nil {
		return nil, fmt.Errorf("pricing: ledger: %w", err)
	}
	return &Ledger{Rate: rate}, nil
}

// Add computes and stores an invoice, returning it. The ledger's rate
// was validated at construction, so Add cannot fail.
func (l *Ledger) Add(warehouse string, from, to time.Time, actual, withoutKeebo float64) Invoice {
	inv := newInvoice(warehouse, from, to, actual, withoutKeebo, l.Rate)
	l.invoices = append(l.invoices, inv)
	return inv
}

// Invoices returns a copy of all invoices.
func (l *Ledger) Invoices() []Invoice {
	out := make([]Invoice, len(l.invoices))
	copy(out, l.invoices)
	return out
}

// TotalSavings sums savings across invoices.
func (l *Ledger) TotalSavings() float64 {
	var s float64
	for _, inv := range l.invoices {
		s += inv.Savings
	}
	return s
}

// TotalCharges sums charges across invoices.
func (l *Ledger) TotalCharges() float64 {
	var s float64
	for _, inv := range l.invoices {
		s += inv.Charge
	}
	return s
}
