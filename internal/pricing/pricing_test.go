package pricing

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"kwo/internal/simclock"
)

var t0 = simclock.Epoch

func TestInvoiceBasic(t *testing.T) {
	inv := NewInvoice("W", t0, t0.Add(24*time.Hour), 40, 100, 0.2)
	if inv.Savings != 60 {
		t.Fatalf("savings = %v", inv.Savings)
	}
	if inv.Charge != 12 {
		t.Fatalf("charge = %v", inv.Charge)
	}
	if math.Abs(inv.SavingsPercent()-60) > 1e-9 {
		t.Fatalf("savings %% = %v", inv.SavingsPercent())
	}
	if !strings.Contains(inv.String(), "savings 60.00") {
		t.Fatalf("String() = %q", inv.String())
	}
}

func TestNoSavingsNoCharge(t *testing.T) {
	inv := NewInvoice("W", t0, t0.Add(time.Hour), 100, 80, 0.2)
	if inv.Savings != 0 || inv.Charge != 0 {
		t.Fatalf("negative savings billed: %+v", inv)
	}
	if inv.SavingsPercent() != 0 {
		t.Fatal("savings percent nonzero")
	}
}

func TestBadRateDefaults(t *testing.T) {
	for _, r := range []float64{-1, 0, 1, 2} {
		inv := NewInvoice("W", t0, t0.Add(time.Hour), 0, 100, r)
		if inv.Rate != DefaultRate {
			t.Fatalf("rate %v not defaulted: %v", r, inv.Rate)
		}
	}
	if NewLedger(0).Rate != DefaultRate {
		t.Fatal("ledger rate not defaulted")
	}
}

func TestLedgerAccumulates(t *testing.T) {
	l := NewLedger(0.25)
	l.Add("A", t0, t0.Add(time.Hour), 10, 30)
	l.Add("B", t0, t0.Add(time.Hour), 50, 50)
	l.Add("A", t0.Add(time.Hour), t0.Add(2*time.Hour), 5, 25)
	if got := l.TotalSavings(); got != 40 {
		t.Fatalf("total savings = %v", got)
	}
	if got := l.TotalCharges(); got != 10 {
		t.Fatalf("total charges = %v", got)
	}
	if len(l.Invoices()) != 3 {
		t.Fatal("invoice count wrong")
	}
}

// Property: charge is never negative and never exceeds rate × savings
// bound; zero-savings periods are free.
func TestPropertyChargeBounds(t *testing.T) {
	f := func(actual, without float64) bool {
		if math.IsNaN(actual) || math.IsNaN(without) ||
			math.Abs(actual) > 1e12 || math.Abs(without) > 1e12 {
			return true
		}
		inv := NewInvoice("W", t0, t0.Add(time.Hour), actual, without, 0.2)
		if inv.Charge < 0 || inv.Savings < 0 {
			return false
		}
		return inv.Charge <= 0.2*inv.Savings+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
