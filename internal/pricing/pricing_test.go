package pricing

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"kwo/internal/simclock"
)

var t0 = simclock.Epoch

func mustInvoice(t *testing.T, warehouse string, from, to time.Time, actual, withoutKeebo, rate float64) Invoice {
	t.Helper()
	inv, err := NewInvoice(warehouse, from, to, actual, withoutKeebo, rate)
	if err != nil {
		t.Fatalf("NewInvoice: %v", err)
	}
	return inv
}

func TestInvoiceBasic(t *testing.T) {
	inv := mustInvoice(t, "W", t0, t0.Add(24*time.Hour), 40, 100, 0.2)
	if inv.Savings != 60 {
		t.Fatalf("savings = %v", inv.Savings)
	}
	if inv.Charge != 12 {
		t.Fatalf("charge = %v", inv.Charge)
	}
	if math.Abs(inv.SavingsPercent()-60) > 1e-9 {
		t.Fatalf("savings %% = %v", inv.SavingsPercent())
	}
	if !strings.Contains(inv.String(), "savings 60.00") {
		t.Fatalf("String() = %q", inv.String())
	}
}

func TestNoSavingsNoCharge(t *testing.T) {
	inv := mustInvoice(t, "W", t0, t0.Add(time.Hour), 100, 80, 0.2)
	if inv.Savings != 0 || inv.Charge != 0 {
		t.Fatalf("negative savings billed: %+v", inv)
	}
	if inv.SavingsPercent() != 0 {
		t.Fatal("savings percent nonzero")
	}
}

// Regression: an out-of-range rate used to be silently replaced with
// DefaultRate, so a mistyped 1.0 quietly billed 20%. It must now fail
// loudly and produce no invoice at all.
func TestBadRateRejected(t *testing.T) {
	for _, r := range []float64{-1, 0, 1, 2, math.NaN()} {
		inv, err := NewInvoice("W", t0, t0.Add(time.Hour), 0, 100, r)
		if err == nil {
			t.Fatalf("rate %v accepted: %+v", r, inv)
		}
		if inv != (Invoice{}) {
			t.Fatalf("rate %v produced a non-zero invoice: %+v", r, inv)
		}
	}
	for _, r := range []float64{-1, 1, 2, math.NaN()} {
		if l, err := NewLedger(r); err == nil {
			t.Fatalf("ledger rate %v accepted: %+v", r, l)
		}
	}
}

// A rate of exactly zero stays the documented zero-value convenience
// for ledgers: "unset" means DefaultRate.
func TestLedgerZeroRateDefaults(t *testing.T) {
	l, err := NewLedger(0)
	if err != nil {
		t.Fatalf("NewLedger(0): %v", err)
	}
	if l.Rate != DefaultRate {
		t.Fatalf("ledger rate not defaulted: %v", l.Rate)
	}
}

func TestLedgerAccumulates(t *testing.T) {
	l, err := NewLedger(0.25)
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	l.Add("A", t0, t0.Add(time.Hour), 10, 30)
	l.Add("B", t0, t0.Add(time.Hour), 50, 50)
	l.Add("A", t0.Add(time.Hour), t0.Add(2*time.Hour), 5, 25)
	if got := l.TotalSavings(); got != 40 {
		t.Fatalf("total savings = %v", got)
	}
	if got := l.TotalCharges(); got != 10 {
		t.Fatalf("total charges = %v", got)
	}
	if len(l.Invoices()) != 3 {
		t.Fatal("invoice count wrong")
	}
}

// Property: charge is never negative and never exceeds rate × savings
// bound; zero-savings periods are free.
func TestPropertyChargeBounds(t *testing.T) {
	f := func(actual, without float64) bool {
		if math.IsNaN(actual) || math.IsNaN(without) ||
			math.Abs(actual) > 1e12 || math.Abs(without) > 1e12 {
			return true
		}
		inv, err := NewInvoice("W", t0, t0.Add(time.Hour), actual, without, 0.2)
		if err != nil {
			return false
		}
		if inv.Charge < 0 || inv.Savings < 0 {
			return false
		}
		return inv.Charge <= 0.2*inv.Savings+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
