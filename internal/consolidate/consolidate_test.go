package consolidate

import (
	"strings"
	"testing"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/simclock"
	"kwo/internal/telemetry"
	"kwo/internal/workload"
)

var t0 = simclock.Epoch

// buildCandidate runs a workload on its own warehouse and returns the
// candidate with real telemetry and billing.
func buildCandidate(t *testing.T, name string, size cdw.Size, gen workload.Generator,
	days int, seed int64) Candidate {
	t.Helper()
	sched := simclock.NewScheduler(seed)
	acct := cdw.NewAccount(sched, cdw.DefaultSimParams())
	store := telemetry.NewStore()
	acct.Subscribe(store)
	cfg := cdw.Config{Name: name, Size: size, MinClusters: 1, MaxClusters: 2,
		AutoSuspend: 10 * time.Minute, AutoResume: true}
	if _, err := acct.CreateWarehouse(cfg); err != nil {
		t.Fatal(err)
	}
	to := t0.Add(time.Duration(days) * 24 * time.Hour)
	workload.Drive(sched, acct, name, gen.Generate(t0, to, sched.Rand("wl")))
	sched.RunUntil(to.Add(time.Hour))
	wh, _ := acct.Warehouse(name)
	return Candidate{
		Config: cfg, Log: store.Log(name),
		ActualCredits: wh.Meter().CreditsBetween(t0, to, sched.Now()),
	}
}

func TestRecommendsMergingUnderutilizedWarehouses(t *testing.T) {
	// Three lightly used warehouses with overlapping business-hours
	// idle tails: a classic consolidation win.
	biPool, _, _ := workload.StandardPools()
	days := 2
	var cands []Candidate
	for i, name := range []string{"TEAM_A", "TEAM_B", "TEAM_C"} {
		gen := workload.BI{Pool: biPool, PeakQPH: 10, WeekendFactor: 0.2}
		cands = append(cands, buildCandidate(t, name, cdw.SizeSmall, gen, days, int64(i+1)))
	}
	to := t0.Add(time.Duration(days) * 24 * time.Hour)
	rec, err := Analyze(cands, t0, to, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("current %.1f merged %.1f (%.1f%%) peak %.2f clusters",
		rec.CurrentCredits, rec.MergedCredits, rec.SavingsPercent, rec.PeakLoadClusters)
	if !rec.Consolidate {
		t.Fatalf("merge of underutilized warehouses not recommended: %+v", rec.Reasons)
	}
	if rec.SavingsPercent < 10 {
		t.Fatalf("savings %.1f%% too small", rec.SavingsPercent)
	}
	if rec.Target.Size != cdw.SizeSmall {
		t.Fatalf("target size %v, want Small (largest member)", rec.Target.Size)
	}
	if len(rec.Warehouses) != 3 {
		t.Fatalf("warehouses = %v", rec.Warehouses)
	}
	if !strings.Contains(rec.String(), "RECOMMENDED") {
		t.Fatal("rendering broken")
	}
}

func TestRejectsOverloadedMerge(t *testing.T) {
	// Two saturated warehouses running heavy multi-minute jobs at high
	// rate: combined peak cannot fit the cluster bound with headroom.
	_, etlPool, _ := workload.StandardPools()
	days := 1
	var cands []Candidate
	for i, name := range []string{"HOT_A", "HOT_B"} {
		gen := workload.BI{Pool: etlPool, PeakQPH: 600, WeekendFactor: 0.2}
		cands = append(cands, buildCandidate(t, name, cdw.SizeXSmall, gen, days, int64(i+10)))
	}
	to := t0.Add(time.Duration(days) * 24 * time.Hour)
	p := DefaultParams()
	p.MaxClusters = 1
	rec, err := Analyze(cands, t0, to, p)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Consolidate {
		t.Fatal("overloaded merge recommended")
	}
	if len(rec.Reasons) == 0 || !strings.Contains(rec.Reasons[0], "cluster") {
		t.Fatalf("reasons = %v", rec.Reasons)
	}
}

func TestTargetTakesLargestSizeAndShortestSuspend(t *testing.T) {
	biPool, _, _ := workload.StandardPools()
	gen := workload.BI{Pool: biPool, PeakQPH: 10, WeekendFactor: 0.2}
	a := buildCandidate(t, "A", cdw.SizeSmall, gen, 1, 1)
	b := buildCandidate(t, "B", cdw.SizeLarge, gen, 1, 2)
	b.Config.AutoSuspend = 3 * time.Minute
	to := t0.Add(24 * time.Hour)
	rec, err := Analyze([]Candidate{a, b}, t0, to, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Target.Size != cdw.SizeLarge {
		t.Fatalf("target size %v, want Large", rec.Target.Size)
	}
	if rec.Target.AutoSuspend != 3*time.Minute {
		t.Fatalf("target suspend %v, want 3m", rec.Target.AutoSuspend)
	}
	if err := rec.Target.Validate(); err != nil {
		t.Fatalf("target invalid: %v", err)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	biPool, _, _ := workload.StandardPools()
	gen := workload.BI{Pool: biPool, PeakQPH: 10}
	one := buildCandidate(t, "A", cdw.SizeSmall, gen, 1, 1)
	if _, err := Analyze([]Candidate{one}, t0, t0.Add(time.Hour), DefaultParams()); err == nil {
		t.Fatal("single warehouse accepted")
	}
	two := []Candidate{one, buildCandidate(t, "B", cdw.SizeSmall, gen, 1, 2)}
	if _, err := Analyze(two, t0, t0, DefaultParams()); err == nil {
		t.Fatal("empty window accepted")
	}
}
