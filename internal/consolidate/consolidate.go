// Package consolidate implements the warehouse-consolidation analysis
// the paper lists among warehouse optimization decisions (§1:
// "consolidating multiple warehouses into one, and load balancing
// decisions"). Given the telemetry of several warehouses, it determines
// whether their combined load would fit a single multi-cluster
// warehouse, estimates the cost of the merged configuration with the
// same analytical machinery as the cost model, and emits a
// recommendation with the predicted savings and the risk signals a
// human (or the engine) should weigh.
package consolidate

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/costmodel"
	"kwo/internal/ml"
	"kwo/internal/telemetry"
)

// Candidate is one warehouse considered for consolidation.
type Candidate struct {
	Config cdw.Config
	Log    *telemetry.WarehouseLog
	// ActualCredits is the warehouse's billed cost over the analysis
	// window.
	ActualCredits float64
}

// Recommendation is the analysis outcome.
type Recommendation struct {
	From, To time.Time
	// Warehouses lists the analyzed warehouse names.
	Warehouses []string
	// Consolidate is true when merging is predicted to save without
	// breaching the capacity bound.
	Consolidate bool
	// Target is the proposed merged configuration (valid only when
	// Consolidate is true).
	Target cdw.Config
	// CurrentCredits is the summed actual cost of the candidates.
	CurrentCredits float64
	// MergedCredits is the estimated cost of the merged warehouse over
	// the same window.
	MergedCredits float64
	// SavingsPercent is the predicted relative saving.
	SavingsPercent float64
	// PeakLoadClusters is the combined peak offered load in cluster
	// equivalents of the target size.
	PeakLoadClusters float64
	// Reasons collects human-readable notes (why / why not).
	Reasons []string
}

// String renders the recommendation for the portal.
func (r Recommendation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Consolidation analysis %s → %s over %v\n",
		strings.Join(r.Warehouses, " + "),
		r.Target.Name, r.To.Sub(r.From).Round(time.Hour))
	if r.Consolidate {
		fmt.Fprintf(&b, "  RECOMMENDED: merge into one %s warehouse with %d–%d clusters\n",
			r.Target.Size, r.Target.MinClusters, r.Target.MaxClusters)
	} else {
		b.WriteString("  NOT RECOMMENDED\n")
	}
	fmt.Fprintf(&b, "  current cost:  %.2f credits\n", r.CurrentCredits)
	fmt.Fprintf(&b, "  merged cost:   %.2f credits (%.1f%% saving)\n", r.MergedCredits, r.SavingsPercent)
	fmt.Fprintf(&b, "  peak combined load: %.1f clusters of %s\n", r.PeakLoadClusters, r.Target.Size)
	for _, reason := range r.Reasons {
		fmt.Fprintf(&b, "  - %s\n", reason)
	}
	return b.String()
}

// Params tunes the analysis.
type Params struct {
	// Window is the mini-window used for load profiles.
	Window time.Duration
	// Slots is the per-cluster concurrency of the CDW.
	Slots int
	// MaxClusters bounds the merged warehouse's scale-out.
	MaxClusters int
	// Headroom is the spare capacity fraction required at combined
	// peak (e.g. 0.3 keeps 30% slack).
	Headroom float64
	// MinSavings is the minimum relative saving (0..1) to recommend.
	MinSavings float64
}

// DefaultParams returns conservative defaults.
func DefaultParams() Params {
	return Params{
		Window:      costmodel.MiniWindow,
		Slots:       8,
		MaxClusters: 10,
		Headroom:    0.3,
		MinSavings:  0.10,
	}
}

// Analyze evaluates merging the candidates over [from, to).
func Analyze(cands []Candidate, from, to time.Time, p Params) (Recommendation, error) {
	if len(cands) < 2 {
		return Recommendation{}, fmt.Errorf("consolidate: need at least two warehouses, got %d", len(cands))
	}
	if p.Window <= 0 {
		p.Window = costmodel.MiniWindow
	}
	if p.Slots <= 0 {
		p.Slots = 8
	}
	rec := Recommendation{From: from, To: to}
	var names []string
	for _, c := range cands {
		names = append(names, c.Config.Name)
		rec.CurrentCredits += c.ActualCredits
	}
	sort.Strings(names)
	rec.Warehouses = names

	// Target size: the largest candidate size, so no workload slows
	// down after the merge (C4); latency can only improve for the
	// smaller warehouses' queries.
	target := cands[0].Config
	for _, c := range cands[1:] {
		if c.Config.Size > target.Size {
			target.Size = c.Config.Size
		}
		if c.Config.AutoSuspend > 0 &&
			(target.AutoSuspend == 0 || c.Config.AutoSuspend < target.AutoSuspend) {
			target.AutoSuspend = c.Config.AutoSuspend
		}
	}
	target.Name = "CONSOLIDATED_WH"
	target.MinClusters = 1
	target.AutoResume = true

	// Combined per-window load profile in cluster equivalents of the
	// target size: each warehouse's offered load is rescaled from the
	// size it ran at to the target size.
	nWindows := int(to.Sub(from) / p.Window)
	if nWindows <= 0 {
		return Recommendation{}, fmt.Errorf("consolidate: empty analysis window")
	}
	loads := make([]float64, nWindows)
	busyWindows := 0
	for _, c := range cands {
		lm := costmodel.FitLatency(c.Log.TemplateObservations(from, to))
		for i := 0; i < nWindows; i++ {
			ws := c.Log.Stats(from.Add(time.Duration(i)*p.Window), from.Add(time.Duration(i+1)*p.Window))
			if ws.Queries == 0 {
				continue
			}
			execAtTarget := lm.ScaleExec(0, ws.AvgExec.Seconds(),
				cdw.Size(int(math.Round(ws.AvgSize))).Clamp(cdw.MinSize, cdw.MaxSize), target.Size)
			loads[i] += ws.QPH / 3600 * execAtTarget / float64(p.Slots)
		}
	}
	var peak float64
	for _, l := range loads {
		if l > 0 {
			busyWindows++
		}
		if l > peak {
			peak = l
		}
	}
	rec.PeakLoadClusters = peak

	// Required clusters at peak with headroom.
	needed := int(math.Ceil(peak / (1 - p.Headroom)))
	if needed < 1 {
		needed = 1
	}
	target.MaxClusters = needed
	rec.Target = target

	if needed > p.MaxClusters {
		rec.Reasons = append(rec.Reasons, fmt.Sprintf(
			"combined peak needs %d clusters, above the %d-cluster bound", needed, p.MaxClusters))
		return rec, nil
	}

	// Merged cost estimate: per busy window, billed time ≈ window
	// (the merged warehouse runs when any member would) × predicted
	// clusters; idle tail follows the merged auto-suspend.
	rate := target.Size.CreditsPerHour()
	var merged float64
	prevBusy := false
	for i := 0; i < nWindows; i++ {
		if loads[i] <= 0 {
			if prevBusy {
				merged += rate * target.AutoSuspend.Hours() // idle tail
			}
			prevBusy = false
			continue
		}
		clusters := ml.Clamp(loads[i]/0.7, 1, float64(target.MaxClusters))
		merged += rate * p.Window.Hours() * clusters
		prevBusy = true
	}
	rec.MergedCredits = merged
	if rec.CurrentCredits > 0 {
		rec.SavingsPercent = 100 * (1 - merged/rec.CurrentCredits)
	}

	if merged >= rec.CurrentCredits*(1-p.MinSavings) {
		rec.Reasons = append(rec.Reasons, fmt.Sprintf(
			"predicted saving %.1f%% below the %.0f%% threshold",
			rec.SavingsPercent, p.MinSavings*100))
		return rec, nil
	}
	rec.Consolidate = true
	rec.Reasons = append(rec.Reasons,
		fmt.Sprintf("combined load fits %d clusters of %s with %.0f%% headroom",
			target.MaxClusters, target.Size, p.Headroom*100),
		fmt.Sprintf("overlapping idle periods are billed once instead of %d times", len(cands)),
	)
	return rec, nil
}
