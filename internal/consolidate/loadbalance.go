package consolidate

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"kwo/internal/costmodel"
)

// Move is one load-balancing suggestion: route the given query
// templates from one warehouse to another.
type Move struct {
	From      string
	To        string
	Templates []uint64
	// LoadClusters is the offered load being moved, in cluster
	// equivalents of the destination's size.
	LoadClusters float64
}

// BalanceReport is the outcome of a load-balancing analysis across an
// account's warehouses (§1: "load balancing decisions").
type BalanceReport struct {
	From, To time.Time
	// Hot lists warehouses with sustained queueing at their scale-out
	// bound; Cold lists warehouses with ample spare capacity.
	Hot  []string
	Cold []string
	// Moves are the suggested template reroutes (empty when balanced).
	Moves   []Move
	Reasons []string
}

// Balanced reports whether no moves are needed.
func (r BalanceReport) Balanced() bool { return len(r.Moves) == 0 }

// String renders the report.
func (r BalanceReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Load-balance analysis over %v\n", r.To.Sub(r.From).Round(time.Hour))
	if r.Balanced() {
		b.WriteString("  account is balanced; no moves suggested\n")
	}
	for _, m := range r.Moves {
		fmt.Fprintf(&b, "  MOVE %d templates (%.2f clusters of load) from %s to %s\n",
			len(m.Templates), m.LoadClusters, m.From, m.To)
	}
	for _, reason := range r.Reasons {
		fmt.Fprintf(&b, "  - %s\n", reason)
	}
	return b.String()
}

// warehouseLoad summarizes one warehouse's pressure over the window.
type warehouseLoad struct {
	cand Candidate
	// peakLoad is the peak offered load in cluster equivalents of the
	// warehouse's own size.
	peakLoad float64
	// queueP99 is the window-wide p99 queueing.
	queueP99 time.Duration
	// perTemplate is the offered load contributed by each template.
	perTemplate map[uint64]float64
}

// AnalyzeBalance looks for hot/cold warehouse pairs and suggests
// template moves that relieve queueing without overloading the
// destination.
func AnalyzeBalance(cands []Candidate, from, to time.Time, p Params) (BalanceReport, error) {
	if len(cands) < 2 {
		return BalanceReport{}, fmt.Errorf("consolidate: need at least two warehouses, got %d", len(cands))
	}
	if p.Window <= 0 {
		p.Window = costmodel.MiniWindow
	}
	if p.Slots <= 0 {
		p.Slots = 8
	}
	rep := BalanceReport{From: from, To: to}
	nWindows := int(to.Sub(from) / p.Window)
	if nWindows <= 0 {
		return rep, fmt.Errorf("consolidate: empty analysis window")
	}

	loads := make([]*warehouseLoad, 0, len(cands))
	for _, c := range cands {
		wl := &warehouseLoad{cand: c, perTemplate: map[uint64]float64{}}
		stats := c.Log.Stats(from, to)
		wl.queueP99 = stats.P99Queue
		for i := 0; i < nWindows; i++ {
			ws := c.Log.Stats(from.Add(time.Duration(i)*p.Window), from.Add(time.Duration(i+1)*p.Window))
			if ws.Queries == 0 {
				continue
			}
			load := ws.QPH / 3600 * ws.AvgExec.Seconds() / float64(p.Slots)
			if load > wl.peakLoad {
				wl.peakLoad = load
			}
		}
		// Per-template offered load across the whole window.
		windowHours := to.Sub(from).Hours()
		for tmpl, obs := range c.Log.TemplateObservations(from, to) {
			var secs float64
			for _, o := range obs {
				secs += o.ExecSecs
			}
			wl.perTemplate[tmpl] = secs / 3600 / windowHours / float64(p.Slots)
		}
		loads = append(loads, wl)
	}

	// Classify: hot = queueing at (or near) the scale-out bound;
	// cold = well under capacity.
	var hot, cold []*warehouseLoad
	for _, wl := range loads {
		capacity := float64(wl.cand.Config.MaxClusters)
		switch {
		case wl.queueP99 >= 2*time.Second && wl.peakLoad >= 0.7*capacity:
			hot = append(hot, wl)
			rep.Hot = append(rep.Hot, wl.cand.Config.Name)
		case wl.peakLoad <= 0.4*capacity:
			cold = append(cold, wl)
			rep.Cold = append(rep.Cold, wl.cand.Config.Name)
		}
	}
	sort.Strings(rep.Hot)
	sort.Strings(rep.Cold)
	if len(hot) == 0 {
		rep.Reasons = append(rep.Reasons, "no warehouse shows sustained queueing at its cluster bound")
		return rep, nil
	}
	if len(cold) == 0 {
		rep.Reasons = append(rep.Reasons, "no warehouse has spare capacity to receive load")
		return rep, nil
	}

	// Greedy: move the hottest warehouse's heaviest templates to the
	// coldest warehouse until the hot one's peak fits with headroom.
	for _, h := range hot {
		dst := cold[0]
		for _, c := range cold[1:] {
			if c.peakLoad/float64(c.cand.Config.MaxClusters) <
				dst.peakLoad/float64(dst.cand.Config.MaxClusters) {
				dst = c
			}
		}
		target := (1 - p.Headroom) * float64(h.cand.Config.MaxClusters)
		excess := h.peakLoad - target
		if excess <= 0 {
			continue
		}
		type tl struct {
			tmpl uint64
			load float64
		}
		var ranked []tl
		for tmpl, load := range h.perTemplate {
			ranked = append(ranked, tl{tmpl, load})
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].load == ranked[j].load {
				return ranked[i].tmpl < ranked[j].tmpl
			}
			return ranked[i].load > ranked[j].load
		})
		dstSpare := (1-p.Headroom)*float64(dst.cand.Config.MaxClusters) - dst.peakLoad
		move := Move{From: h.cand.Config.Name, To: dst.cand.Config.Name}
		for _, r := range ranked {
			if move.LoadClusters >= excess || move.LoadClusters+r.load > dstSpare {
				break
			}
			move.Templates = append(move.Templates, r.tmpl)
			move.LoadClusters += r.load
		}
		if len(move.Templates) > 0 {
			rep.Moves = append(rep.Moves, move)
			rep.Reasons = append(rep.Reasons, fmt.Sprintf(
				"%s queues (p99 %v) at %.1f/%d clusters; %s runs at %.1f/%d",
				h.cand.Config.Name, h.queueP99.Round(100*time.Millisecond),
				h.peakLoad, h.cand.Config.MaxClusters,
				dst.cand.Config.Name, dst.peakLoad, dst.cand.Config.MaxClusters))
		}
	}
	if len(rep.Moves) == 0 {
		rep.Reasons = append(rep.Reasons, "hot warehouses' excess does not fit any cold warehouse's spare capacity")
	}
	return rep, nil
}
