package consolidate

import (
	"strings"
	"testing"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/workload"
)

func TestBalanceSuggestsMoveFromHotToCold(t *testing.T) {
	// HOT: a single-cluster warehouse drowning in heavy jobs.
	_, etlPool, _ := workload.StandardPools()
	hotGen := workload.BI{Pool: etlPool, PeakQPH: 400, WeekendFactor: 0.2}
	hot := buildCandidate(t, "HOT", cdw.SizeXSmall, hotGen, 1, 1)
	hot.Config.MaxClusters = 1

	// COLD: a barely used warehouse of the same size.
	biPool, _, _ := workload.StandardPools()
	coldGen := workload.BI{Pool: biPool, PeakQPH: 4, WeekendFactor: 0.2}
	cold := buildCandidate(t, "COLD", cdw.SizeXSmall, coldGen, 1, 2)
	cold.Config.MaxClusters = 4

	to := t0.Add(24 * time.Hour)
	rep, err := AnalyzeBalance([]Candidate{hot, cold}, t0, to, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hot=%v cold=%v moves=%d", rep.Hot, rep.Cold, len(rep.Moves))
	if len(rep.Hot) != 1 || rep.Hot[0] != "HOT" {
		t.Fatalf("hot = %v", rep.Hot)
	}
	if len(rep.Cold) != 1 || rep.Cold[0] != "COLD" {
		t.Fatalf("cold = %v", rep.Cold)
	}
	if rep.Balanced() {
		t.Fatal("no moves suggested for an obviously imbalanced pair")
	}
	m := rep.Moves[0]
	if m.From != "HOT" || m.To != "COLD" || len(m.Templates) == 0 || m.LoadClusters <= 0 {
		t.Fatalf("move = %+v", m)
	}
	if !strings.Contains(rep.String(), "MOVE") {
		t.Fatal("rendering broken")
	}
}

func TestBalanceQuietAccount(t *testing.T) {
	biPool, _, _ := workload.StandardPools()
	gen := workload.BI{Pool: biPool, PeakQPH: 6, WeekendFactor: 0.2}
	a := buildCandidate(t, "A", cdw.SizeSmall, gen, 1, 1)
	b := buildCandidate(t, "B", cdw.SizeSmall, gen, 1, 2)
	to := t0.Add(24 * time.Hour)
	rep, err := AnalyzeBalance([]Candidate{a, b}, t0, to, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Balanced() {
		t.Fatalf("quiet account produced moves: %+v", rep.Moves)
	}
	if len(rep.Hot) != 0 {
		t.Fatalf("quiet account marked hot: %v", rep.Hot)
	}
	if !strings.Contains(rep.String(), "balanced") {
		t.Fatal("rendering broken")
	}
}

func TestBalanceNoColdReceiver(t *testing.T) {
	_, etlPool, _ := workload.StandardPools()
	gen := workload.BI{Pool: etlPool, PeakQPH: 400, WeekendFactor: 0.2}
	a := buildCandidate(t, "A", cdw.SizeXSmall, gen, 1, 1)
	a.Config.MaxClusters = 1
	b := buildCandidate(t, "B", cdw.SizeXSmall, gen, 1, 2)
	b.Config.MaxClusters = 1
	to := t0.Add(24 * time.Hour)
	rep, err := AnalyzeBalance([]Candidate{a, b}, t0, to, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Balanced() {
		t.Fatalf("moves suggested with no cold receiver: %+v", rep.Moves)
	}
	found := false
	for _, r := range rep.Reasons {
		if strings.Contains(r, "spare capacity") {
			found = true
		}
	}
	if !found {
		t.Fatalf("reasons = %v", rep.Reasons)
	}
}

func TestBalanceErrors(t *testing.T) {
	biPool, _, _ := workload.StandardPools()
	gen := workload.BI{Pool: biPool, PeakQPH: 5}
	one := buildCandidate(t, "A", cdw.SizeSmall, gen, 1, 1)
	if _, err := AnalyzeBalance([]Candidate{one}, t0, t0.Add(time.Hour), DefaultParams()); err == nil {
		t.Fatal("single warehouse accepted")
	}
	two := []Candidate{one, buildCandidate(t, "B", cdw.SizeSmall, gen, 1, 2)}
	if _, err := AnalyzeBalance(two, t0, t0, DefaultParams()); err == nil {
		t.Fatal("empty window accepted")
	}
}
