// Package actuator translates smart-model actions into the underlying
// CDW's API and executes them (§4.5). It is the abstraction layer that
// hides vendor-specific details from the smart models: actions go in,
// ALTER WAREHOUSE statements come out, and every execution (or failure)
// is recorded. It also meters its own (small) cost, which Figure 6
// reports as "Keebo overhead".
package actuator

import (
	"fmt"
	"time"

	"kwo/internal/action"
	"kwo/internal/cdw"
)

// Actor is the identity under which KWO alters warehouses; the monitor
// uses it to tell KWO's own changes apart from external ones.
const Actor = "kwo"

// Record is one row of the action log.
type Record struct {
	Time      time.Time
	Action    action.Action
	Statement string
	Applied   bool   // false for no-effect or failed actions
	Err       string // non-empty on failure
	Reason    string // free-text: "smart-model", "revert", "constraint", ...
}

// Actuator executes actions against a simulated account.
type Actuator struct {
	acct *cdw.Account
	// OverheadPerOp is the credit cost KWO's own operations incur
	// (metadata queries, ALTER statements). The paper engineers this
	// to be negligible; it is metered so Figure 6 can prove it.
	OverheadPerOp float64
	log           []Record
}

// New creates an actuator bound to an account.
func New(acct *cdw.Account, overheadPerOp float64) *Actuator {
	return &Actuator{acct: acct, OverheadPerOp: overheadPerOp}
}

// Apply executes a smart-model action. No-effect actions (clamped at a
// bound, or NoOp) are logged but not sent to the warehouse, so they
// cost nothing. Returns whether the action changed anything.
func (a *Actuator) Apply(act action.Action, reason string) (bool, error) {
	now := a.acct.Scheduler().Now()
	rec := Record{Time: now, Action: act, Reason: reason}
	if act.Kind == action.NoOp {
		a.log = append(a.log, rec)
		return false, nil
	}
	wh, err := a.acct.Warehouse(act.Warehouse)
	if err != nil {
		rec.Err = err.Error()
		a.log = append(a.log, rec)
		return false, err
	}
	alt := act.Alteration(wh.Config())
	if alt.IsZero() {
		a.log = append(a.log, rec)
		return false, nil
	}
	rec.Statement = alt.String()
	a.acct.RecordOverhead(a.OverheadPerOp, "actuator:"+act.Kind.String())
	if err := a.acct.Alter(act.Warehouse, alt, Actor); err != nil {
		rec.Err = err.Error()
		a.log = append(a.log, rec)
		return false, fmt.Errorf("actuator: apply %v to %s: %w", act.Kind, act.Warehouse, err)
	}
	rec.Applied = true
	a.log = append(a.log, rec)
	return true, nil
}

// ApplyAlteration executes a raw alteration (constraint enforcement or
// a revert to a remembered configuration).
func (a *Actuator) ApplyAlteration(warehouse string, alt cdw.Alteration, reason string) error {
	now := a.acct.Scheduler().Now()
	rec := Record{
		Time:      now,
		Action:    action.Action{Kind: action.NoOp, Warehouse: warehouse},
		Statement: alt.String(),
		Reason:    reason,
	}
	if alt.IsZero() {
		a.log = append(a.log, rec)
		return nil
	}
	a.acct.RecordOverhead(a.OverheadPerOp, "actuator:"+reason)
	if err := a.acct.Alter(warehouse, alt, Actor); err != nil {
		rec.Err = err.Error()
		a.log = append(a.log, rec)
		return fmt.Errorf("actuator: %s on %s: %w", reason, warehouse, err)
	}
	rec.Applied = true
	a.log = append(a.log, rec)
	return nil
}

// MeterTelemetryPull records the cost of one telemetry collection pass.
// Per §7.3, telemetry is obtained by "leveraging running warehouses ...
// without waking them" and by combining multiple queries into one, so
// the cost is a small constant.
func (a *Actuator) MeterTelemetryPull() {
	a.acct.RecordOverhead(a.OverheadPerOp, "telemetry-pull")
}

// Log returns a copy of the action log.
func (a *Actuator) Log() []Record {
	out := make([]Record, len(a.log))
	copy(out, a.log)
	return out
}

// AppliedCount returns how many log entries actually changed the
// warehouse.
func (a *Actuator) AppliedCount() int {
	n := 0
	for _, r := range a.log {
		if r.Applied {
			n++
		}
	}
	return n
}
