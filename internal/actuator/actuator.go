// Package actuator translates smart-model actions into the underlying
// CDW's API and executes them (§4.5). It is the abstraction layer that
// hides vendor-specific details from the smart models: actions go in,
// ALTER WAREHOUSE statements come out, and every execution (or failure)
// is recorded. It also meters its own (small) cost, which Figure 6
// reports as "Keebo overhead".
//
// Because no real CDW API succeeds instantly every time, the actuator
// owns the fault-handling policy for writes: transient failures are
// retried with capped exponential backoff plus jitter, retries reissue
// the exact absolute alteration computed at decision time (so a retry
// after a lost acknowledgment is idempotent instead of stepping the
// configuration twice), and a per-warehouse circuit breaker stops the
// engine from hammering an API that keeps failing. Every failure lands
// in a structured failure log alongside the action log.
package actuator

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"kwo/internal/action"
	"kwo/internal/cdw"
	"kwo/internal/obs"
	"kwo/internal/simclock"
)

// Actor is the identity under which KWO alters warehouses; the monitor
// uses it to tell KWO's own changes apart from external ones.
const Actor = "kwo"

// Sentinel errors for operations rejected before any API call.
var (
	// ErrPending rejects a new discretionary operation while a previous
	// one is still retrying: two in-flight writes to one warehouse could
	// interleave into a configuration neither decision intended.
	ErrPending = errors.New("actuator: a previous operation is still retrying")
	// ErrBreakerOpen rejects discretionary operations while the
	// warehouse's circuit breaker is open.
	ErrBreakerOpen = errors.New("actuator: circuit breaker open")
)

// RetryPolicy tunes the retry/backoff and circuit-breaker behaviour.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation (1 = no
	// retries).
	MaxAttempts int
	// BaseDelay is the delay before the first retry; each subsequent
	// retry doubles it, capped at MaxDelay.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// JitterFrac spreads each delay uniformly in ±JitterFrac around its
	// nominal value, so synchronized retry storms cannot form.
	JitterFrac float64
	// BreakerThreshold is how many consecutive operations must exhaust
	// their retries before the warehouse's circuit breaker opens.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects discretionary
	// operations before allowing a probe.
	BreakerCooldown time.Duration
}

// DefaultRetryPolicy returns production-plausible fault handling: four
// attempts spread over a few minutes, then a 45-minute breaker after two
// consecutively abandoned operations.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:      4,
		BaseDelay:        30 * time.Second,
		MaxDelay:         8 * time.Minute,
		JitterFrac:       0.2,
		BreakerThreshold: 2,
		BreakerCooldown:  45 * time.Minute,
	}
}

// delay computes the backoff before retrying after the given (1-based)
// failed attempt.
func (p RetryPolicy) delay(attempt int, rng *rand.Rand) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		d = 30 * time.Second
	}
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.JitterFrac > 0 && rng != nil {
		d = time.Duration(float64(d) * (1 + p.JitterFrac*(2*rng.Float64()-1)))
	}
	if d < time.Second {
		d = time.Second
	}
	return d
}

// Record is one row of the action log: one attempt against the API.
type Record struct {
	Time      time.Time
	Action    action.Action
	Statement string
	Applied   bool   // false for no-effect or failed attempts
	Err       string // non-empty on failure
	Reason    string // free-text: "smart-model", "revert", "constraint", ...
	// OpID groups the attempts of one logical operation; Attempt is the
	// 1-based attempt number within it. OpID 0 marks rows that never
	// reached the API (no-ops, rejections).
	OpID    uint64
	Attempt int
}

// FailureKind classifies failure-log entries.
type FailureKind int

const (
	// FailTransient is one failed attempt; a retry is scheduled (or the
	// operation is about to be abandoned).
	FailTransient FailureKind = iota
	// FailExhausted marks an operation abandoned after MaxAttempts.
	FailExhausted
	// FailPermanent marks a non-retryable failure (validation, unknown
	// warehouse).
	FailPermanent
	// FailBreakerOpened records the circuit breaker opening.
	FailBreakerOpened
	// FailRejectedBreaker rejects an operation while the breaker is open.
	FailRejectedBreaker
	// FailRejectedPending rejects an operation while another retries.
	FailRejectedPending
	// FailSuperseded marks a retrying operation cancelled because
	// constraint enforcement outranked it.
	FailSuperseded
	// FailRetryAborted marks a retry cancelled by the retry gate: the
	// decision was legal when made, but the world changed while the
	// operation waited out its backoff (e.g. a no-downsize window
	// opened), so reissuing it would violate policy now.
	FailRetryAborted
	// FailIngest records a telemetry/billing-history pull failure the
	// engine reported via NoteIngestFailure.
	FailIngest
)

// String names the failure kind.
func (k FailureKind) String() string {
	switch k {
	case FailTransient:
		return "transient"
	case FailExhausted:
		return "exhausted"
	case FailPermanent:
		return "permanent"
	case FailBreakerOpened:
		return "breaker-opened"
	case FailRejectedBreaker:
		return "rejected-breaker"
	case FailRejectedPending:
		return "rejected-pending"
	case FailSuperseded:
		return "superseded"
	case FailRetryAborted:
		return "retry-aborted"
	case FailIngest:
		return "ingest"
	default:
		return fmt.Sprintf("FailureKind(%d)", int(k))
	}
}

// Failure is one row of the structured failure log.
type Failure struct {
	Time      time.Time
	Warehouse string
	Kind      FailureKind
	OpID      uint64
	Attempt   int
	Reason    string // the actuation reason of the operation
	Statement string
	Err       string
	// AckLost reports the attempt may have taken effect despite the
	// error (the retry must therefore be idempotent).
	AckLost bool
}

func (f Failure) String() string {
	return fmt.Sprintf("[%s] %s op=%d attempt=%d %s %s: %s",
		f.Time.Format("Mon 15:04:05"), f.Kind, f.OpID, f.Attempt, f.Warehouse, f.Statement, f.Err)
}

// op is one logical operation: an exact alteration retried as-is until
// it lands or is abandoned.
type op struct {
	id      uint64
	act     action.Action
	alt     cdw.Alteration
	reason  string
	note    string // overhead-metering note
	attempt int
}

// whState is the actuator's per-warehouse fault-handling state.
type whState struct {
	pending         *op
	consecExhausted int
	openUntil       time.Time
}

// Actuator executes actions against a simulated account.
type Actuator struct {
	acct  *cdw.Account
	sched *simclock.Scheduler
	// OverheadPerOp is the credit cost KWO's own operations incur
	// (metadata queries, ALTER statements). The paper engineers this
	// to be negligible; it is metered so Figure 6 can prove it.
	OverheadPerOp float64

	policy RetryPolicy
	rng    *rand.Rand
	hub    *obs.Hub

	log      []Record
	failures []Failure
	states   map[string]*whState
	opSeq    uint64

	// onApplied, when set, is invoked for operations that land on an
	// asynchronous retry (attempt > 1) — the synchronous caller already
	// saw the first attempt's result and is long gone.
	onApplied func(warehouse, reason string, act action.Action, after cdw.Config)
	// retryGate, when set, is consulted before every asynchronous retry.
	// Returning false abandons the operation: the alteration was legal
	// when decided, but policy may have changed while it waited out its
	// backoff.
	retryGate func(warehouse, reason string, alt cdw.Alteration) bool
}

// New creates an actuator bound to an account, with the default retry
// policy.
func New(acct *cdw.Account, overheadPerOp float64) *Actuator {
	return &Actuator{
		acct:          acct,
		sched:         acct.Scheduler(),
		OverheadPerOp: overheadPerOp,
		policy:        DefaultRetryPolicy(),
		rng:           acct.Scheduler().Rand("actuator:retry"),
		states:        make(map[string]*whState),
	}
}

// SetObs wires the observability hub. The actuator emits action,
// retry, and breaker metrics and events through it; a nil hub (the
// default) disables instrumentation.
func (a *Actuator) SetObs(h *obs.Hub) { a.hub = h }

// noteFailure appends to the structured failure log and mirrors the
// row into the obs registry; abandonment kinds also land on the event
// bus so operators see them without polling Failures().
func (a *Actuator) noteFailure(f Failure) {
	a.failures = append(a.failures, f)
	if a.hub == nil {
		return
	}
	a.hub.ActionFailures.With(f.Warehouse, f.Kind.String()).Inc()
	switch f.Kind {
	case FailExhausted, FailPermanent, FailSuperseded, FailRetryAborted:
		a.hub.Emit(obs.EventActionFailed, f.Warehouse,
			obs.A("kind", f.Kind.String()),
			obs.A("reason", f.Reason),
			obs.A("statement", f.Statement),
			obs.AInt("attempt", f.Attempt),
			obs.A("err", f.Err))
	case FailIngest:
		a.hub.Emit(obs.EventIngestFailed, f.Warehouse, obs.A("err", f.Err))
	}
}

// SetRetryPolicy replaces the retry policy.
func (a *Actuator) SetRetryPolicy(p RetryPolicy) {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	a.policy = p
}

// Policy returns the active retry policy.
func (a *Actuator) Policy() RetryPolicy { return a.policy }

// SetOnApplied registers the callback invoked when an operation lands on
// an asynchronous retry.
func (a *Actuator) SetOnApplied(fn func(warehouse, reason string, act action.Action, after cdw.Config)) {
	a.onApplied = fn
}

// SetRetryGate registers the policy recheck consulted before every
// asynchronous retry.
func (a *Actuator) SetRetryGate(fn func(warehouse, reason string, alt cdw.Alteration) bool) {
	a.retryGate = fn
}

func (a *Actuator) state(warehouse string) *whState {
	ws, ok := a.states[warehouse]
	if !ok {
		ws = &whState{}
		a.states[warehouse] = ws
	}
	return ws
}

// Pending reports whether an operation against the warehouse is still
// retrying.
func (a *Actuator) Pending(warehouse string) bool {
	ws, ok := a.states[warehouse]
	return ok && ws.pending != nil
}

// BreakerOpen reports whether the warehouse's circuit breaker currently
// rejects discretionary operations.
func (a *Actuator) BreakerOpen(warehouse string) bool {
	ws, ok := a.states[warehouse]
	return ok && a.sched.Now().Before(ws.openUntil)
}

// Apply executes a smart-model action. No-effect actions (clamped at a
// bound, or NoOp) are logged but not sent to the warehouse, so they
// cost nothing. Returns whether the action changed anything. A transient
// API failure schedules retries of the exact alteration; the eventual
// outcome is reported through the failure log and the OnApplied
// callback.
func (a *Actuator) Apply(act action.Action, reason string) (bool, error) {
	now := a.sched.Now()
	rec := Record{Time: now, Action: act, Reason: reason}
	if act.Kind == action.NoOp {
		a.log = append(a.log, rec)
		return false, nil
	}
	ws := a.state(act.Warehouse)
	if ws.pending != nil {
		rec.Err = ErrPending.Error()
		a.log = append(a.log, rec)
		a.noteFailure(Failure{
			Time: now, Warehouse: act.Warehouse, Kind: FailRejectedPending,
			OpID: ws.pending.id, Reason: reason, Err: ErrPending.Error(),
		})
		return false, ErrPending
	}
	if now.Before(ws.openUntil) {
		rec.Err = ErrBreakerOpen.Error()
		a.log = append(a.log, rec)
		a.noteFailure(Failure{
			Time: now, Warehouse: act.Warehouse, Kind: FailRejectedBreaker,
			Reason: reason, Err: ErrBreakerOpen.Error(),
		})
		return false, ErrBreakerOpen
	}
	wh, err := a.acct.Warehouse(act.Warehouse)
	if err != nil {
		rec.Err = err.Error()
		a.log = append(a.log, rec)
		return false, err
	}
	alt := act.Alteration(wh.Config())
	if alt.IsZero() {
		a.log = append(a.log, rec)
		return false, nil
	}
	a.opSeq++
	o := &op{id: a.opSeq, act: act, alt: alt, reason: reason, note: act.Kind.String()}
	applied, err := a.attempt(ws, o)
	if err != nil {
		return false, fmt.Errorf("actuator: apply %v to %s: %w", act.Kind, act.Warehouse, err)
	}
	return applied, nil
}

// ApplyAlteration executes a raw alteration (constraint enforcement or
// a revert to a remembered configuration). Enforcement is the priority
// action class: it supersedes a retrying discretionary operation and is
// not subject to the circuit breaker.
func (a *Actuator) ApplyAlteration(warehouse string, alt cdw.Alteration, reason string) error {
	now := a.sched.Now()
	rec := Record{
		Time:      now,
		Action:    action.Action{Kind: action.NoOp, Warehouse: warehouse},
		Statement: alt.String(),
		Reason:    reason,
	}
	if alt.IsZero() {
		a.log = append(a.log, rec)
		return nil
	}
	ws := a.state(warehouse)
	if ws.pending != nil {
		a.noteFailure(Failure{
			Time: now, Warehouse: warehouse, Kind: FailSuperseded,
			OpID: ws.pending.id, Attempt: ws.pending.attempt,
			Reason: ws.pending.reason, Statement: ws.pending.alt.String(),
			Err: "superseded by " + reason,
		})
		ws.pending = nil
		a.setPendingGauge(warehouse, 0)
	}
	a.opSeq++
	o := &op{
		id:     a.opSeq,
		act:    action.Action{Kind: action.NoOp, Warehouse: warehouse},
		alt:    alt,
		reason: reason,
		note:   reason,
	}
	if _, err := a.attempt(ws, o); err != nil {
		return fmt.Errorf("actuator: %s on %s: %w", reason, warehouse, err)
	}
	return nil
}

// attempt runs one try of an operation: it meters overhead, calls the
// API, and on transient failure schedules the next try on the simulated
// clock. Asynchronous retries land here again with nobody waiting on the
// return value.
func (a *Actuator) attempt(ws *whState, o *op) (bool, error) {
	o.attempt++
	now := a.sched.Now()
	rec := Record{
		Time: now, Action: o.act, Statement: o.alt.String(), Reason: o.reason,
		OpID: o.id, Attempt: o.attempt,
	}
	a.acct.RecordOverhead(a.OverheadPerOp, "actuator:"+o.note)
	if a.hub != nil {
		a.hub.ActionAttempts.With(o.act.Warehouse).Inc()
	}
	err := a.acct.Alter(o.act.Warehouse, o.alt, Actor)
	if err == nil {
		rec.Applied = true
		a.log = append(a.log, rec)
		ws.pending = nil
		ws.consecExhausted = 0
		if a.hub != nil {
			a.setPendingGauge(o.act.Warehouse, 0)
			a.hub.ActionsApplied.With(o.act.Warehouse, o.reason).Inc()
			a.hub.Emit(obs.EventActionApplied, o.act.Warehouse,
				obs.A("statement", o.alt.String()),
				obs.A("reason", o.reason),
				obs.AInt("attempt", o.attempt))
		}
		if o.attempt > 1 && a.onApplied != nil {
			if wh, werr := a.acct.Warehouse(o.act.Warehouse); werr == nil {
				a.onApplied(o.act.Warehouse, o.reason, o.act, wh.Config())
			}
		}
		return true, nil
	}
	rec.Err = err.Error()
	a.log = append(a.log, rec)
	fail := Failure{
		Time: now, Warehouse: o.act.Warehouse, OpID: o.id, Attempt: o.attempt,
		Reason: o.reason, Statement: o.alt.String(), Err: err.Error(),
		AckLost: cdw.AckLost(err),
	}
	if !cdw.IsTransient(err) {
		ws.pending = nil
		a.setPendingGauge(o.act.Warehouse, 0)
		fail.Kind = FailPermanent
		a.noteFailure(fail)
		return false, err
	}
	fail.Kind = FailTransient
	a.noteFailure(fail)
	if o.attempt >= a.policy.MaxAttempts {
		ws.pending = nil
		a.setPendingGauge(o.act.Warehouse, 0)
		ws.consecExhausted++
		a.noteFailure(Failure{
			Time: now, Warehouse: o.act.Warehouse, OpID: o.id, Attempt: o.attempt,
			Kind: FailExhausted, Reason: o.reason, Statement: o.alt.String(),
			Err: fmt.Sprintf("abandoned after %d attempts: %v", o.attempt, err),
		})
		if a.policy.BreakerThreshold > 0 && ws.consecExhausted >= a.policy.BreakerThreshold &&
			!now.Before(ws.openUntil) {
			ws.openUntil = now.Add(a.policy.BreakerCooldown)
			a.noteFailure(Failure{
				Time: now, Warehouse: o.act.Warehouse, Kind: FailBreakerOpened,
				Err: fmt.Sprintf("open until %s after %d consecutive abandoned operations",
					ws.openUntil.Format("Mon 15:04:05"), ws.consecExhausted),
			})
			a.noteBreakerOpened(ws, o.act.Warehouse)
		}
		return false, fmt.Errorf("retries exhausted after %d attempts: %w", o.attempt, err)
	}
	ws.pending = o
	delay := a.policy.delay(o.attempt, a.rng)
	if a.hub != nil {
		a.setPendingGauge(o.act.Warehouse, 1)
		a.hub.ActionRetries.With(o.act.Warehouse).Inc()
		a.hub.RetryBackoff.With(o.act.Warehouse).Observe(delay.Seconds())
		a.hub.Emit(obs.EventActionRetried, o.act.Warehouse,
			obs.A("statement", o.alt.String()),
			obs.A("reason", o.reason),
			obs.AInt("attempt", o.attempt),
			obs.ADur("delay", delay))
	}
	a.sched.After(delay, "actuator-retry:"+o.act.Warehouse, func() {
		if ws.pending != o {
			return // superseded or cancelled
		}
		if a.retryGate != nil && !a.retryGate(o.act.Warehouse, o.reason, o.alt) {
			ws.pending = nil
			a.setPendingGauge(o.act.Warehouse, 0)
			a.noteFailure(Failure{
				Time: a.sched.Now(), Warehouse: o.act.Warehouse, Kind: FailRetryAborted,
				OpID: o.id, Attempt: o.attempt, Reason: o.reason, Statement: o.alt.String(),
				Err: "retry aborted: policy no longer allows the alteration",
			})
			return
		}
		a.attempt(ws, o)
	})
	return false, err
}

// setPendingGauge mirrors whState.pending into the obs registry.
func (a *Actuator) setPendingGauge(warehouse string, v float64) {
	if a.hub != nil {
		a.hub.RetryPending.With(warehouse).Set(v)
	}
}

// noteBreakerOpened emits the breaker-open transition and schedules a
// pure-observer callback at the cooldown deadline that emits the close
// transition — so a breaker that opens and closes between two Health
// polls is still visible on the event bus. The callback mutates no
// warehouse or actuator state; determinism is unaffected.
func (a *Actuator) noteBreakerOpened(ws *whState, warehouse string) {
	if a.hub == nil {
		return
	}
	until := ws.openUntil
	a.hub.BreakerOpen.With(warehouse).Set(1)
	a.hub.BreakerTransitions.With(warehouse, "open").Inc()
	a.hub.Emit(obs.EventBreakerOpened, warehouse,
		obs.A("until", until.Format(time.RFC3339)),
		obs.AInt("consecutive_exhausted", ws.consecExhausted))
	a.sched.Schedule(until, "obs:breaker-close:"+warehouse, func() {
		// Skip if a later trip extended the window; that trip scheduled
		// its own close observer.
		if !ws.openUntil.Equal(until) {
			return
		}
		a.hub.BreakerOpen.With(warehouse).Set(0)
		a.hub.BreakerTransitions.With(warehouse, "closed").Inc()
		a.hub.Emit(obs.EventBreakerClosed, warehouse)
	})
}

// NoteIngestFailure records a telemetry/billing ingestion failure in the
// failure log — ingestion is read-path, so there is nothing to retry
// here (the engine re-pulls from its cursor on the next tick), but the
// failure must still be visible in one place alongside actuation
// failures.
func (a *Actuator) NoteIngestFailure(warehouse string, err error) {
	if a.hub != nil {
		a.hub.IngestFailures.With(warehouse).Inc()
	}
	a.noteFailure(Failure{
		Time: a.sched.Now(), Warehouse: warehouse, Kind: FailIngest, Err: err.Error(),
	})
}

// MeterTelemetryPull records the cost of one telemetry collection pass.
// Per §7.3, telemetry is obtained by "leveraging running warehouses ...
// without waking them" and by combining multiple queries into one, so
// the cost is a small constant.
func (a *Actuator) MeterTelemetryPull() {
	a.acct.RecordOverhead(a.OverheadPerOp, "telemetry-pull")
}

// Log returns a copy of the action log.
func (a *Actuator) Log() []Record {
	out := make([]Record, len(a.log))
	copy(out, a.log)
	return out
}

// Failures returns a copy of the structured failure log.
func (a *Actuator) Failures() []Failure {
	out := make([]Failure, len(a.failures))
	copy(out, a.failures)
	return out
}

// FailureCount returns the failure-log length without copying.
func (a *Actuator) FailureCount() int { return len(a.failures) }

// AppliedCount returns how many log entries actually changed the
// warehouse.
func (a *Actuator) AppliedCount() int {
	n := 0
	for _, r := range a.log {
		if r.Applied {
			n++
		}
	}
	return n
}
