package actuator

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"kwo/internal/action"
	"kwo/internal/cdw"
	"kwo/internal/simclock"
)

// noJitter is the default policy with jitter removed, so retry timing is
// exact: attempts land at +0, +30s, +1m30s, +3m30s.
func noJitter() RetryPolicy {
	p := DefaultRetryPolicy()
	p.JitterFrac = 0
	return p
}

func kinds(fs []Failure) []FailureKind {
	out := make([]FailureKind, len(fs))
	for i, f := range fs {
		out[i] = f.Kind
	}
	return out
}

func countKind(fs []Failure, k FailureKind) int {
	n := 0
	for _, f := range fs {
		if f.Kind == k {
			n++
		}
	}
	return n
}

func TestRetryLandsAfterOutage(t *testing.T) {
	sched, acct, act := rig(t)
	act.SetRetryPolicy(noJitter())
	start := sched.Now()
	// Outage ends between the 3rd attempt (+1m30s) and the 4th (+3m30s).
	acct.SetFaults(cdw.FaultPlan{
		AlterOutages: []cdw.FaultWindow{{From: start, To: start.Add(3 * time.Minute)}},
	})
	var landed []cdw.Size
	act.SetOnApplied(func(wh, reason string, a action.Action, after cdw.Config) {
		landed = append(landed, after.Size)
	})
	applied, err := act.Apply(action.Action{Kind: action.SizeDown, Warehouse: "W"}, "smart-model")
	if applied || err == nil || !cdw.IsTransient(err) {
		t.Fatalf("first attempt: applied=%v err=%v, want a transient failure", applied, err)
	}
	if !act.Pending("W") {
		t.Fatal("no pending operation after a transient failure")
	}
	sched.RunFor(10 * time.Minute)
	if act.Pending("W") {
		t.Fatal("operation still pending after the outage ended")
	}
	wh, _ := acct.Warehouse("W")
	if wh.Config().Size != cdw.SizeSmall {
		t.Fatalf("size = %v, want the retried size-down applied", wh.Config().Size)
	}
	if len(landed) != 1 || landed[0] != cdw.SizeSmall {
		t.Fatalf("onApplied calls = %v, want one with the post-retry config", landed)
	}
	// One logical op, four attempts, last one applied; exactly one
	// effectful audit row.
	var attempts int
	for _, r := range act.Log() {
		if r.OpID == 1 {
			attempts++
			if r.Attempt == attempts && attempts == 4 && !r.Applied {
				t.Fatalf("final attempt not applied: %+v", r)
			}
		}
	}
	if attempts != 4 {
		t.Fatalf("attempts = %d, want 4", attempts)
	}
	if got := countKind(act.Failures(), FailTransient); got != 3 {
		t.Fatalf("transient failures = %d, want 3; log: %v", got, kinds(act.Failures()))
	}
	if n := len(acct.Changes()); n != 1 {
		t.Fatalf("audit rows = %d, want exactly 1 (idempotent retry)", n)
	}
}

func TestExhaustionOpensBreaker(t *testing.T) {
	sched, acct, act := rig(t)
	act.SetRetryPolicy(noJitter())
	start := sched.Now()
	acct.SetFaults(cdw.FaultPlan{
		AlterOutages: []cdw.FaultWindow{{From: start, To: start.Add(2 * time.Hour)}},
	})

	// First operation exhausts its four attempts: no breaker yet.
	if _, err := act.Apply(action.Action{Kind: action.SizeDown, Warehouse: "W"}, "smart-model"); err == nil {
		t.Fatal("apply inside a full outage succeeded")
	}
	sched.RunFor(10 * time.Minute)
	if got := countKind(act.Failures(), FailExhausted); got != 1 {
		t.Fatalf("exhausted ops = %d, want 1", got)
	}
	if act.BreakerOpen("W") {
		t.Fatal("breaker open after a single exhausted operation (threshold is 2)")
	}

	// Second consecutive exhaustion trips the breaker.
	if _, err := act.Apply(action.Action{Kind: action.SizeDown, Warehouse: "W"}, "smart-model"); err == nil {
		t.Fatal("second apply succeeded inside the outage")
	}
	sched.RunFor(10 * time.Minute)
	if !act.BreakerOpen("W") {
		t.Fatal("breaker not open after two consecutive exhausted operations")
	}
	if got := countKind(act.Failures(), FailBreakerOpened); got != 1 {
		t.Fatalf("breaker-opened rows = %d, want 1", got)
	}

	// Discretionary work is rejected without touching the API.
	logBefore := len(act.Log())
	_, err := act.Apply(action.Action{Kind: action.SizeUp, Warehouse: "W"}, "smart-model")
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("apply with open breaker: %v, want ErrBreakerOpen", err)
	}
	if countKind(act.Failures(), FailRejectedBreaker) != 1 {
		t.Fatalf("missing rejected-breaker row: %v", kinds(act.Failures()))
	}
	rej := act.Log()[logBefore]
	if rej.OpID != 0 {
		t.Fatalf("rejected op got OpID %d, want 0 (never reached the API)", rej.OpID)
	}

	// Constraint enforcement bypasses the breaker: it reaches the API
	// (and fails transiently in the outage) instead of being rejected.
	err = act.ApplyAlteration("W", cdw.Alteration{Size: cdw.SizeP(cdw.SizeLarge)}, "constraint")
	if errors.Is(err, ErrBreakerOpen) {
		t.Fatal("enforcement rejected by the breaker")
	}
	if err == nil || !cdw.IsTransient(errors.Unwrap(err)) && !cdw.IsTransient(err) {
		t.Fatalf("enforcement in outage: %v, want a transient API failure", err)
	}
	if !act.Pending("W") {
		t.Fatal("enforcement not retrying despite the open breaker")
	}
}

func TestEnforcementSupersedesPendingRetry(t *testing.T) {
	sched, acct, act := rig(t)
	act.SetRetryPolicy(noJitter())
	start := sched.Now()
	acct.SetFaults(cdw.FaultPlan{
		AlterOutages: []cdw.FaultWindow{{From: start, To: start.Add(2 * time.Minute)}},
	})
	if _, err := act.Apply(action.Action{Kind: action.SizeDown, Warehouse: "W"}, "smart-model"); err == nil {
		t.Fatal("apply inside the outage succeeded")
	}
	if err := act.ApplyAlteration("W", cdw.Alteration{Size: cdw.SizeP(cdw.SizeLarge)}, "constraint"); err == nil {
		t.Fatal("enforcement first attempt succeeded inside the outage")
	}
	if countKind(act.Failures(), FailSuperseded) != 1 {
		t.Fatalf("missing superseded row: %v", kinds(act.Failures()))
	}
	sched.RunFor(10 * time.Minute)
	wh, _ := acct.Warehouse("W")
	if wh.Config().Size != cdw.SizeLarge {
		t.Fatalf("size = %v, want the enforcement to win after the outage", wh.Config().Size)
	}
	// The superseded op must never have been reissued: op 1 stops at
	// attempt 1, op 2 (enforcement) retries to success.
	for _, r := range act.Log() {
		if r.OpID == 1 && r.Attempt > 1 {
			t.Fatalf("superseded operation was retried: %+v", r)
		}
	}
	if n := len(acct.Changes()); n != 1 {
		t.Fatalf("audit rows = %d, want 1 (only the enforcement landed)", n)
	}
}

func TestRetryGateAbortsStaleRetry(t *testing.T) {
	sched, acct, act := rig(t)
	act.SetRetryPolicy(noJitter())
	start := sched.Now()
	acct.SetFaults(cdw.FaultPlan{
		AlterOutages: []cdw.FaultWindow{{From: start, To: start.Add(10 * time.Minute)}},
	})
	var gateCalls int
	act.SetRetryGate(func(wh, reason string, alt cdw.Alteration) bool {
		gateCalls++
		return false // the world changed: the alteration is no longer legal
	})
	if _, err := act.Apply(action.Action{Kind: action.SizeDown, Warehouse: "W"}, "smart-model"); err == nil {
		t.Fatal("apply inside the outage succeeded")
	}
	sched.RunFor(5 * time.Minute)
	if gateCalls != 1 {
		t.Fatalf("gate consulted %d times, want once (abort ends the operation)", gateCalls)
	}
	if act.Pending("W") {
		t.Fatal("operation still pending after the gate aborted it")
	}
	fs := act.Failures()
	if countKind(fs, FailRetryAborted) != 1 {
		t.Fatalf("missing retry-aborted row: %v", kinds(fs))
	}
	wh, _ := acct.Warehouse("W")
	if wh.Config().Size != cdw.SizeMedium {
		t.Fatalf("size = %v, aborted retry must not touch the warehouse", wh.Config().Size)
	}
	// Only the first attempt reached the API.
	for _, r := range act.Log() {
		if r.OpID == 1 && r.Attempt > 1 {
			t.Fatalf("aborted operation was retried: %+v", r)
		}
	}
}

// TestRetryTimingDeterminism pins satellite-level determinism at the
// actuator layer: the same seed, policy (with jitter), and fault plan
// produce byte-identical action and failure logs.
func TestRetryTimingDeterminism(t *testing.T) {
	run := func() string {
		sched := simclock.NewScheduler(7)
		acct := cdw.NewAccount(sched, cdw.DefaultSimParams())
		if _, err := acct.CreateWarehouse(cdw.Config{
			Name: "W", Size: cdw.SizeMedium, MinClusters: 1, MaxClusters: 3,
			AutoSuspend: 5 * time.Minute, AutoResume: true,
		}); err != nil {
			t.Fatal(err)
		}
		act := New(acct, 0.001)
		acct.SetFaults(cdw.FaultPlan{AlterFailRate: 0.5, AlterTimeoutRate: 0.3})
		for i := 0; i < 12; i++ {
			kind := action.SizeUp
			if i%2 == 1 {
				kind = action.SizeDown
			}
			act.Apply(action.Action{Kind: kind, Warehouse: "W"}, "smart-model")
			sched.RunFor(20 * time.Minute) // long enough for any retry chain to resolve
		}
		var b strings.Builder
		for _, r := range act.Log() {
			fmt.Fprintf(&b, "%s op=%d/%d applied=%v %q %s\n",
				r.Time.Format(time.RFC3339), r.OpID, r.Attempt, r.Applied, r.Statement, r.Err)
		}
		for _, f := range act.Failures() {
			b.WriteString(f.String() + "\n")
		}
		fmt.Fprintf(&b, "%+v", acct.FaultCounts())
		return b.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged:\n--- first\n%s\n--- second\n%s", a, b)
	}
	if !strings.Contains(a, "transient") {
		t.Fatal("fault plan injected no transient failures in 12 operations")
	}
}
