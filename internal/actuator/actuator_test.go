package actuator

import (
	"testing"
	"time"

	"kwo/internal/action"
	"kwo/internal/cdw"
	"kwo/internal/simclock"
)

func rig(t *testing.T) (*simclock.Scheduler, *cdw.Account, *Actuator) {
	t.Helper()
	sched := simclock.NewScheduler(1)
	acct := cdw.NewAccount(sched, cdw.DefaultSimParams())
	_, err := acct.CreateWarehouse(cdw.Config{
		Name: "W", Size: cdw.SizeMedium, MinClusters: 1, MaxClusters: 3,
		AutoSuspend: 5 * time.Minute, AutoResume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sched, acct, New(acct, 0.001)
}

func TestApplyChangesConfig(t *testing.T) {
	_, acct, act := rig(t)
	applied, err := act.Apply(action.Action{Kind: action.SizeDown, Warehouse: "W"}, "smart-model")
	if err != nil || !applied {
		t.Fatalf("apply: applied=%v err=%v", applied, err)
	}
	wh, _ := acct.Warehouse("W")
	if wh.Config().Size != cdw.SizeSmall {
		t.Fatalf("size = %v after size-down", wh.Config().Size)
	}
	chs := acct.Changes()
	if len(chs) != 1 || chs[0].Actor != Actor {
		t.Fatalf("change log = %+v", chs)
	}
	if act.AppliedCount() != 1 {
		t.Fatalf("applied count = %d", act.AppliedCount())
	}
}

func TestNoOpAndClampedNotSent(t *testing.T) {
	_, acct, act := rig(t)
	if applied, err := act.Apply(action.Action{Kind: action.NoOp, Warehouse: "W"}, "x"); err != nil || applied {
		t.Fatalf("no-op: applied=%v err=%v", applied, err)
	}
	// Drive size to the floor, then another size-down is a no-effect.
	act.Apply(action.Action{Kind: action.SizeDown, Warehouse: "W"}, "x")
	act.Apply(action.Action{Kind: action.SizeDown, Warehouse: "W"}, "x")
	applied, err := act.Apply(action.Action{Kind: action.SizeDown, Warehouse: "W"}, "x")
	if err != nil || applied {
		t.Fatalf("clamped action applied: %v %v", applied, err)
	}
	if len(acct.Changes()) != 2 {
		t.Fatalf("changes = %d, want 2", len(acct.Changes()))
	}
	if got := len(act.Log()); got != 4 {
		t.Fatalf("log rows = %d, want 4 (every attempt logged)", got)
	}
}

func TestApplyUnknownWarehouse(t *testing.T) {
	_, _, act := rig(t)
	applied, err := act.Apply(action.Action{Kind: action.SizeUp, Warehouse: "NOPE"}, "x")
	if err == nil || applied {
		t.Fatal("unknown warehouse accepted")
	}
	log := act.Log()
	if log[len(log)-1].Err == "" {
		t.Fatal("error not recorded in log")
	}
}

func TestOverheadMetered(t *testing.T) {
	sched, acct, act := rig(t)
	act.Apply(action.Action{Kind: action.SizeUp, Warehouse: "W"}, "x")
	act.MeterTelemetryPull()
	got := acct.OverheadBetween(simclock.Epoch, sched.Now().Add(time.Second))
	if got != 0.002 {
		t.Fatalf("overhead = %v, want 0.002", got)
	}
}

func TestApplyAlteration(t *testing.T) {
	_, acct, act := rig(t)
	alt := cdw.Alteration{Size: cdw.SizeP(cdw.SizeXLarge), MinClusters: cdw.IntP(2)}
	if err := act.ApplyAlteration("W", alt, "constraint"); err != nil {
		t.Fatal(err)
	}
	wh, _ := acct.Warehouse("W")
	if wh.Config().Size != cdw.SizeXLarge || wh.Config().MinClusters != 2 {
		t.Fatalf("config = %+v", wh.Config())
	}
	// Zero alteration is logged but free.
	if err := act.ApplyAlteration("W", cdw.Alteration{}, "noop"); err != nil {
		t.Fatal(err)
	}
	if got := acct.OverheadBetween(simclock.Epoch, simclock.Epoch.Add(time.Hour)); got != 0.001 {
		t.Fatalf("overhead = %v, want 0.001 (one real op)", got)
	}
	// Invalid alteration surfaces the warehouse error.
	bad := cdw.Alteration{MinClusters: cdw.IntP(9), MaxClusters: cdw.IntP(1)}
	if err := act.ApplyAlteration("W", bad, "bad"); err == nil {
		t.Fatal("invalid alteration accepted")
	}
}
