package actuator

import (
	"testing"
	"time"

	"kwo/internal/action"
	"kwo/internal/cdw"
	"kwo/internal/obs"
)

// TestBreakerEventsOpenAndCloseBetweenPolls pins the satellite
// regression: a breaker episode that opens AND closes inside one poll
// interval is invisible to the poll-only Health surface — BreakerOpen
// reads false both before and after — but the event bus must still
// record both transitions, and the gauge/counter pair must agree.
func TestBreakerEventsOpenAndCloseBetweenPolls(t *testing.T) {
	sched, acct, act := rig(t)
	hub := obs.NewHub(sched.Now)
	mem := &obs.MemorySink{}
	hub.Bus.AddSink(mem)
	act.SetObs(hub)

	p := noJitter()
	p.MaxAttempts = 1 // no retries: each failed operation exhausts at once
	p.BreakerThreshold = 2
	p.BreakerCooldown = 5 * time.Minute
	act.SetRetryPolicy(p)

	start := sched.Now()
	acct.SetFaults(cdw.FaultPlan{
		AlterOutages: []cdw.FaultWindow{{From: start, To: start.Add(2 * time.Minute)}},
	})

	// Poll before: closed.
	if act.BreakerOpen("W") {
		t.Fatal("breaker open before any failure")
	}
	// Two consecutive exhausted operations trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := act.Apply(action.Action{Kind: action.SizeDown, Warehouse: "W"}, "smart-model"); err == nil {
			t.Fatal("apply inside the outage succeeded")
		}
	}
	if !act.BreakerOpen("W") {
		t.Fatal("breaker not open after two exhausted operations")
	}
	if v := hub.BreakerOpen.With("W").Value(); v != 1 {
		t.Fatalf("kwo_actuator_breaker_open gauge = %g while the breaker is open, want 1", v)
	}

	// One poll interval later the cooldown has expired: the poll sees
	// closed again, exactly as it did before the episode.
	sched.RunFor(10 * time.Minute)
	if act.BreakerOpen("W") {
		t.Fatal("breaker still open after the cooldown")
	}

	// The poll-only view missed the whole episode; the events must not.
	if got := mem.Count(obs.EventBreakerOpened); got != 1 {
		t.Fatalf("breaker-opened events = %d, want 1", got)
	}
	if got := mem.Count(obs.EventBreakerClosed); got != 1 {
		t.Fatalf("breaker-closed events = %d, want 1", got)
	}
	if v := hub.BreakerOpen.With("W").Value(); v != 0 {
		t.Fatalf("kwo_actuator_breaker_open gauge = %g after close, want 0", v)
	}
	if v := hub.Registry.CounterSum(obs.MetricBreakerTransitions); v != 2 {
		t.Fatalf("breaker transition counter sums to %g, want 2 (one open + one close)", v)
	}

	// Ordering sanity: opened strictly before closed, close at open+cooldown.
	evs := mem.Events()
	var opened, closed *obs.Event
	for i := range evs {
		switch evs[i].Kind {
		case obs.EventBreakerOpened:
			opened = &evs[i]
		case obs.EventBreakerClosed:
			closed = &evs[i]
		}
	}
	if opened == nil || closed == nil {
		t.Fatal("missing breaker transition events")
	}
	if !closed.Time.Equal(opened.Time.Add(p.BreakerCooldown)) {
		t.Fatalf("breaker closed at %v, want exactly open (%v) + cooldown %v",
			closed.Time, opened.Time, p.BreakerCooldown)
	}
}

// TestFailureCounterMatchesLog pins the metric registry to the
// actuator's structured failure log under a lossy API: the per-kind
// failure counter must sum to exactly the log length.
func TestFailureCounterMatchesLog(t *testing.T) {
	sched, acct, act := rig(t)
	hub := obs.NewHub(sched.Now)
	act.SetObs(hub)
	act.SetRetryPolicy(noJitter())

	start := sched.Now()
	acct.SetFaults(cdw.FaultPlan{
		AlterOutages: []cdw.FaultWindow{{From: start, To: start.Add(3 * time.Minute)}},
	})
	if _, err := act.Apply(action.Action{Kind: action.SizeDown, Warehouse: "W"}, "smart-model"); err == nil {
		t.Fatal("apply inside the outage succeeded")
	}
	sched.RunFor(10 * time.Minute)

	if got, want := hub.Registry.CounterSum(obs.MetricActionFailures), float64(act.FailureCount()); got != want {
		t.Fatalf("kwo_action_failures_total sums to %g, failure log has %g rows", got, want)
	}
	if got, want := hub.Registry.CounterSum(obs.MetricActionsApplied), float64(act.AppliedCount()); got != want {
		t.Fatalf("kwo_actions_applied_total sums to %g, applied log has %g rows", got, want)
	}
}
