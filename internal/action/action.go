// Package action defines the vocabulary of warehouse optimization
// actions shared by the smart models (which choose them), the policy
// layer (which filters them against customer constraints), the cost
// model (which predicts their impact), and the actuator (which
// translates them into ALTER WAREHOUSE statements).
//
// The action space covers the three optimization families of §3:
// memory optimization (auto-suspend tuning), warehouse resizing, and
// warehouse parallelism (multi-cluster bounds).
package action

import (
	"fmt"
	"time"

	"kwo/internal/cdw"
)

// Kind enumerates the discrete actions a smart model can take at each
// decision point.
type Kind int

const (
	// NoOp leaves the warehouse untouched.
	NoOp Kind = iota
	// SizeUp grows the warehouse one T-shirt size.
	SizeUp
	// SizeDown shrinks the warehouse one T-shirt size.
	SizeDown
	// ClustersUp raises the multi-cluster maximum by one.
	ClustersUp
	// ClustersDown lowers the multi-cluster maximum by one.
	ClustersDown
	// SuspendShorter halves the auto-suspend interval.
	SuspendShorter
	// SuspendLonger doubles the auto-suspend interval.
	SuspendLonger
	// PolicyEconomy switches multi-cluster scale-out to the Economy
	// policy (keep clusters loaded; cheaper, may queue).
	PolicyEconomy
	// PolicyStandard switches scale-out to the Standard policy
	// (prevent queueing by scaling out aggressively).
	PolicyStandard

	// NumKinds is the size of the action space (for Q-networks).
	NumKinds int = iota
)

var kindNames = [...]string{
	"no-op", "size-up", "size-down", "clusters-up", "clusters-down",
	"suspend-shorter", "suspend-longer", "policy-economy", "policy-standard",
}

// String returns a stable lowercase name.
func (k Kind) String() string {
	if int(k) < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// All returns every action kind in order.
func All() []Kind {
	out := make([]Kind, NumKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Auto-suspend bounds for the suspend ladder.
const (
	MinAutoSuspend = 30 * time.Second
	MaxAutoSuspend = 60 * time.Minute
)

// Action is one concrete decision for one warehouse.
type Action struct {
	Kind      Kind
	Warehouse string
	// Reverts marks a self-correction that undoes a previous action;
	// it bypasses cost-driven filtering but still honours constraints.
	Reverts bool
}

// Target computes the configuration this action aims for, starting from
// cur. The result is clamped to valid ranges; an action that cannot
// move the configuration (already at a bound) returns cur unchanged.
func (a Action) Target(cur cdw.Config) cdw.Config {
	next := cur
	switch a.Kind {
	case SizeUp:
		next.Size = cur.Size.Up()
	case SizeDown:
		next.Size = cur.Size.Down()
	case ClustersUp:
		next.MaxClusters = cur.MaxClusters + 1
	case ClustersDown:
		if cur.MaxClusters > 1 {
			next.MaxClusters = cur.MaxClusters - 1
		}
		if next.MinClusters > next.MaxClusters {
			next.MinClusters = next.MaxClusters
		}
	case SuspendShorter:
		next.AutoSuspend = clampSuspend(cur.AutoSuspend / 2)
	case SuspendLonger:
		next.AutoSuspend = clampSuspend(cur.AutoSuspend * 2)
	case PolicyEconomy:
		next.Policy = cdw.ScaleEconomy
	case PolicyStandard:
		next.Policy = cdw.ScaleStandard
	}
	return next
}

// Alteration renders the action as the partial ALTER statement moving
// cur to the action's target. A no-effect action returns a zero
// Alteration.
func (a Action) Alteration(cur cdw.Config) cdw.Alteration {
	next := a.Target(cur)
	var alt cdw.Alteration
	if next.Size != cur.Size {
		alt.Size = cdw.SizeP(next.Size)
	}
	if next.MaxClusters != cur.MaxClusters {
		alt.MaxClusters = cdw.IntP(next.MaxClusters)
	}
	if next.MinClusters != cur.MinClusters {
		alt.MinClusters = cdw.IntP(next.MinClusters)
	}
	if next.AutoSuspend != cur.AutoSuspend {
		alt.AutoSuspend = cdw.DurationP(next.AutoSuspend)
	}
	if next.Policy != cur.Policy {
		alt.Policy = cdw.PolicyP(next.Policy)
	}
	return alt
}

// Effective reports whether the action changes the configuration.
func (a Action) Effective(cur cdw.Config) bool {
	return !a.Alteration(cur).IsZero()
}

func clampSuspend(d time.Duration) time.Duration {
	if d < MinAutoSuspend {
		return MinAutoSuspend
	}
	if d > MaxAutoSuspend {
		return MaxAutoSuspend
	}
	return d
}

// Inverse returns the action kind that undoes k (NoOp for NoOp).
func (k Kind) Inverse() Kind {
	switch k {
	case SizeUp:
		return SizeDown
	case SizeDown:
		return SizeUp
	case ClustersUp:
		return ClustersDown
	case ClustersDown:
		return ClustersUp
	case SuspendShorter:
		return SuspendLonger
	case SuspendLonger:
		return SuspendShorter
	case PolicyEconomy:
		return PolicyStandard
	case PolicyStandard:
		return PolicyEconomy
	default:
		return NoOp
	}
}
