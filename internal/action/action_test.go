package action

import (
	"testing"
	"testing/quick"
	"time"

	"kwo/internal/cdw"
)

func cfg() cdw.Config {
	return cdw.Config{
		Name: "W", Size: cdw.SizeMedium, MinClusters: 1, MaxClusters: 3,
		AutoSuspend: 5 * time.Minute, AutoResume: true,
	}
}

func TestTargets(t *testing.T) {
	c := cfg()
	cases := []struct {
		kind  Kind
		check func(cdw.Config) bool
	}{
		{NoOp, func(n cdw.Config) bool { return n == c }},
		{SizeUp, func(n cdw.Config) bool { return n.Size == cdw.SizeLarge }},
		{SizeDown, func(n cdw.Config) bool { return n.Size == cdw.SizeSmall }},
		{ClustersUp, func(n cdw.Config) bool { return n.MaxClusters == 4 }},
		{ClustersDown, func(n cdw.Config) bool { return n.MaxClusters == 2 }},
		{SuspendShorter, func(n cdw.Config) bool { return n.AutoSuspend == 150*time.Second }},
		{SuspendLonger, func(n cdw.Config) bool { return n.AutoSuspend == 10*time.Minute }},
	}
	for _, tc := range cases {
		got := Action{Kind: tc.kind}.Target(c)
		if !tc.check(got) {
			t.Errorf("%v target = %+v", tc.kind, got)
		}
	}
}

func TestTargetClamps(t *testing.T) {
	c := cfg()
	c.Size = cdw.MaxSize
	if got := (Action{Kind: SizeUp}).Target(c); got.Size != cdw.MaxSize {
		t.Error("SizeUp past max not clamped")
	}
	c.Size = cdw.MinSize
	if got := (Action{Kind: SizeDown}).Target(c); got.Size != cdw.MinSize {
		t.Error("SizeDown past min not clamped")
	}
	c.AutoSuspend = MinAutoSuspend
	if got := (Action{Kind: SuspendShorter}).Target(c); got.AutoSuspend != MinAutoSuspend {
		t.Error("SuspendShorter past floor not clamped")
	}
	c.AutoSuspend = MaxAutoSuspend
	if got := (Action{Kind: SuspendLonger}).Target(c); got.AutoSuspend != MaxAutoSuspend {
		t.Error("SuspendLonger past ceiling not clamped")
	}
	c.MaxClusters = 1
	c.MinClusters = 1
	if got := (Action{Kind: ClustersDown}).Target(c); got.MaxClusters != 1 {
		t.Error("ClustersDown below 1 not clamped")
	}
}

func TestClustersDownDragsMin(t *testing.T) {
	c := cfg()
	c.MinClusters = 3
	c.MaxClusters = 3
	got := Action{Kind: ClustersDown}.Target(c)
	if got.MaxClusters != 2 || got.MinClusters != 2 {
		t.Fatalf("min/max = %d/%d, want 2/2", got.MinClusters, got.MaxClusters)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("target invalid: %v", err)
	}
}

func TestAlterationAndEffective(t *testing.T) {
	c := cfg()
	a := Action{Kind: SizeDown}
	alt := a.Alteration(c)
	if alt.Size == nil || *alt.Size != cdw.SizeSmall {
		t.Fatalf("alteration = %+v", alt)
	}
	if !a.Effective(c) {
		t.Fatal("size-down not effective")
	}
	if (Action{Kind: NoOp}).Effective(c) {
		t.Fatal("no-op effective")
	}
	// Clamped action at the bound is not effective.
	c.Size = cdw.MinSize
	if (Action{Kind: SizeDown}).Effective(c) {
		t.Fatal("clamped size-down claimed effective")
	}
}

func TestInverse(t *testing.T) {
	for _, k := range All() {
		inv := k.Inverse()
		if k == NoOp {
			if inv != NoOp {
				t.Fatal("NoOp inverse wrong")
			}
			continue
		}
		if inv.Inverse() != k {
			t.Fatalf("%v inverse not involutive", k)
		}
		if inv == k {
			t.Fatalf("%v is its own inverse", k)
		}
	}
}

func TestAllAndNames(t *testing.T) {
	ks := All()
	if len(ks) != NumKinds || NumKinds != 9 {
		t.Fatalf("NumKinds = %d, len(All) = %d", NumKinds, len(ks))
	}
	seen := map[string]bool{}
	for _, k := range ks {
		n := k.String()
		if n == "" || seen[n] {
			t.Fatalf("bad or duplicate name %q", n)
		}
		seen[n] = true
	}
	if Kind(99).String() == "" {
		t.Fatal("out-of-range name empty")
	}
}

// Property: any action applied to a valid config yields a valid config.
func TestPropertyTargetsValid(t *testing.T) {
	f := func(kind uint8, size uint8, minC, maxC uint8, susp uint16) bool {
		c := cdw.Config{
			Name:        "W",
			Size:        cdw.Size(size % 10),
			MinClusters: int(minC%5) + 1,
			AutoSuspend: time.Duration(susp) * time.Second,
			AutoResume:  true,
		}
		c.MaxClusters = c.MinClusters + int(maxC%5)
		if c.Validate() != nil {
			return true
		}
		a := Action{Kind: Kind(int(kind) % NumKinds)}
		return a.Target(c).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: applying an action's alteration through cdw.Alteration.Apply
// reproduces the action's target.
func TestPropertyAlterationMatchesTarget(t *testing.T) {
	f := func(kind uint8) bool {
		c := cfg()
		a := Action{Kind: Kind(int(kind) % NumKinds)}
		return a.Alteration(c).Apply(c) == a.Target(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
