// Package benchio records benchmark results as a versioned JSON
// artifact (BENCH_<rev>.json) so the repo's performance trajectory is
// measurable across PRs instead of anecdotal. A report combines
// records parsed from `go test -bench` output (ns/op, B/op, allocs/op,
// custom metrics) with records emitted directly by harnesses such as
// cmd/kwo-bench (experiment wall-clock and figure metrics).
//
// Serialization is deterministic: fields are fixed-order, map keys are
// sorted by encoding/json, and no timestamps are embedded — two runs
// that measure the same numbers produce byte-identical files.
package benchio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
)

// Record is one benchmark measurement.
type Record struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations,omitempty"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full artifact: environment fingerprint plus records in
// insertion order.
type Report struct {
	Rev       string   `json:"rev"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Records   []Record `json:"records"`
}

// NewReport returns a report stamped with the current toolchain and
// host fingerprint for revision rev.
func NewReport(rev string) *Report {
	return &Report{
		Rev:       rev,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
}

// Add appends a record.
func (r *Report) Add(rec Record) { r.Records = append(r.Records, rec) }

// WriteTo serializes the report as indented JSON.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return 0, err
	}
	b = append(b, '\n')
	n, err := w.Write(b)
	return int64(n), err
}

// ParseGoBench extracts benchmark records from `go test -bench` output.
// Lines that are not benchmark results are ignored. The trailing
// -GOMAXPROCS suffix is kept as part of the name (it is part of the
// measurement's identity).
func ParseGoBench(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		rec := Record{Name: fields[0], Iterations: iters}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				rec.NsPerOp = v
			case "B/op":
				rec.BytesPerOp = v
			case "allocs/op":
				rec.AllocsPerOp = v
			default:
				if rec.Metrics == nil {
					rec.Metrics = make(map[string]float64)
				}
				rec.Metrics[unit] = v
			}
		}
		if ok {
			out = append(out, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchio: scanning bench output: %w", err)
	}
	return out, nil
}
