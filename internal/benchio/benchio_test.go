package benchio

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: kwo
cpu: Imaginary CPU @ 3.00GHz
BenchmarkSubmittedBetween-8   	  500000	      2210 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig4a-8              	       1	9876543210 ns/op	        53.20 savings_%
BenchmarkBroken-8             	   notanint	     1 ns/op
PASS
ok  	kwo	12.345s
`

func TestParseGoBench(t *testing.T) {
	recs, err := ParseGoBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("parsed %d records, want 2: %+v", len(recs), recs)
	}
	sb := recs[0]
	if sb.Name != "BenchmarkSubmittedBetween-8" || sb.Iterations != 500000 ||
		sb.NsPerOp != 2210 || sb.BytesPerOp != 0 || sb.AllocsPerOp != 0 {
		t.Fatalf("bad record: %+v", sb)
	}
	fig := recs[1]
	if fig.NsPerOp != 9876543210 || fig.Metrics["savings_%"] != 53.20 {
		t.Fatalf("bad custom-metric record: %+v", fig)
	}
}

func TestReportDeterministicSerialization(t *testing.T) {
	build := func() *Report {
		r := NewReport("abc1234")
		r.Add(Record{Name: "X", NsPerOp: 1,
			Metrics: map[string]float64{"zeta": 2, "alpha": 1, "mid": 3}})
		r.Add(Record{Name: "Y", AllocsPerOp: 4})
		return r
	}
	var a, b bytes.Buffer
	if _, err := build().WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := build().WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same report serialized differently:\n%s\nvs\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{`"rev": "abc1234"`, `"ns_per_op": 1`, `"alpha": 1`} {
		if !strings.Contains(out, want) {
			t.Fatalf("serialized report missing %q:\n%s", want, out)
		}
	}
	// Sorted map keys: alpha before mid before zeta.
	if ai, zi := strings.Index(out, "alpha"), strings.Index(out, "zeta"); ai > zi {
		t.Fatalf("metric keys not sorted:\n%s", out)
	}
}
