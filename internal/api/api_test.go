package api

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/core"
	"kwo/internal/simclock"
	"kwo/internal/workload"
)

// rig builds a running scenario with KWO attached and returns a test
// server over its API.
func rig(t *testing.T) (*httptest.Server, *cdw.Account, *simclock.Scheduler) {
	t.Helper()
	sched := simclock.NewScheduler(1)
	acct := cdw.NewAccount(sched, cdw.DefaultSimParams())
	opts := core.DefaultOptions()
	opts.PretrainSteps = 100
	engine := core.NewEngine(acct, opts)
	cfg := cdw.Config{
		Name: "BI_WH", Size: cdw.SizeLarge, MinClusters: 1, MaxClusters: 2,
		AutoSuspend: 10 * time.Minute, AutoResume: true,
	}
	if _, err := acct.CreateWarehouse(cfg); err != nil {
		t.Fatal(err)
	}
	pool, _, _ := workload.StandardPools()
	gen := workload.BI{Pool: pool, PeakQPH: 60, WeekendFactor: 0.3}
	end := simclock.Epoch.Add(5 * 24 * time.Hour)
	workload.Drive(sched, acct, "BI_WH", gen.Generate(simclock.Epoch, end, sched.Rand("wl")))
	sched.RunFor(2 * 24 * time.Hour)
	if _, err := engine.Attach("BI_WH", core.DefaultSettings()); err != nil {
		t.Fatal(err)
	}
	engine.Start()
	sched.RunUntil(end)

	srv := httptest.NewServer(NewServer(Backend{Engine: engine, Acct: acct}))
	t.Cleanup(srv.Close)
	return srv, acct, sched
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestStatusEndpoint(t *testing.T) {
	srv, _, _ := rig(t)
	var status map[string]any
	if code := getJSON(t, srv.URL+"/api/v1/status", &status); code != 200 {
		t.Fatalf("status code %d", code)
	}
	if status["warehouses"].(float64) != 1 {
		t.Fatalf("status = %v", status)
	}
	if status["total_credits"].(float64) <= 0 {
		t.Fatal("no credits in status")
	}
}

func TestWarehouseEndpoints(t *testing.T) {
	srv, _, _ := rig(t)
	var list []WarehouseInfo
	if code := getJSON(t, srv.URL+"/api/v1/warehouses", &list); code != 200 {
		t.Fatalf("code %d", code)
	}
	if len(list) != 1 || list[0].Name != "BI_WH" || !list[0].Attached {
		t.Fatalf("list = %+v", list)
	}
	if list[0].Slider != 3 || list[0].SliderLabel != "Balanced" {
		t.Fatalf("slider info = %+v", list[0])
	}
	var one WarehouseInfo
	if code := getJSON(t, srv.URL+"/api/v1/warehouses/BI_WH", &one); code != 200 {
		t.Fatalf("code %d", code)
	}
	if one.Size == "" || one.MaxClusters != 2 {
		t.Fatalf("warehouse = %+v", one)
	}
	if code := getJSON(t, srv.URL+"/api/v1/warehouses/NOPE", nil); code != 404 {
		t.Fatalf("missing warehouse code %d", code)
	}
}

func TestReportEndpoint(t *testing.T) {
	srv, _, _ := rig(t)
	var rep ReportJSON
	if code := getJSON(t, srv.URL+"/api/v1/warehouses/BI_WH/report?from=-48h", &rep); code != 200 {
		t.Fatalf("code %d", code)
	}
	if rep.Queries == 0 || rep.ActualCredits <= 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.WithoutKeebo <= 0 {
		t.Fatal("no counterfactual in report")
	}
	if code := getJSON(t, srv.URL+"/api/v1/warehouses/BI_WH/report?from=garbage", nil); code != 400 {
		t.Fatalf("bad from code %d", code)
	}
}

func TestSeriesEndpoints(t *testing.T) {
	srv, _, _ := rig(t)
	var days []map[string]any
	if code := getJSON(t, srv.URL+"/api/v1/warehouses/BI_WH/daily?days=5&from="+
		simclock.Epoch.Format(time.RFC3339), &days); code != 200 {
		t.Fatalf("code %d", code)
	}
	if len(days) != 5 {
		t.Fatalf("daily rows = %d", len(days))
	}
	var hours []map[string]any
	if code := getJSON(t, srv.URL+"/api/v1/warehouses/BI_WH/hourly?hours=24", &hours); code != 200 {
		t.Fatalf("code %d", code)
	}
	if len(hours) != 24 {
		t.Fatalf("hourly rows = %d", len(hours))
	}
	if code := getJSON(t, srv.URL+"/api/v1/warehouses/BI_WH/daily?days=0", nil); code != 400 {
		t.Fatalf("days=0 code %d", code)
	}
}

func TestSliderEndpoints(t *testing.T) {
	srv, _, _ := rig(t)
	put := func(body string) int {
		req, _ := http.NewRequest(http.MethodPut,
			srv.URL+"/api/v1/warehouses/BI_WH/slider", strings.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := put(`{"position": 5}`); code != 200 {
		t.Fatalf("set slider code %d", code)
	}
	var got map[string]any
	getJSON(t, srv.URL+"/api/v1/warehouses/BI_WH/slider", &got)
	if got["position"].(float64) != 5 || got["label"] != "Lowest Cost" {
		t.Fatalf("slider = %v", got)
	}
	if code := put(`{"position": 9}`); code != 400 {
		t.Fatalf("invalid slider code %d", code)
	}
	if code := put(`not json`); code != 400 {
		t.Fatalf("bad body code %d", code)
	}
}

func TestConstraintsEndpoints(t *testing.T) {
	srv, _, _ := rig(t)
	rules := []RuleJSON{{
		Name: "morning rush", Days: []int{1, 2, 3, 4, 5},
		StartMinute: 540, EndMinute: 570,
		EnforceSize: "X-Large", MinClusters: 3,
	}}
	body, _ := json.Marshal(rules)
	req, _ := http.NewRequest(http.MethodPut,
		srv.URL+"/api/v1/warehouses/BI_WH/constraints", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("set constraints code %d", resp.StatusCode)
	}
	var got []RuleJSON
	getJSON(t, srv.URL+"/api/v1/warehouses/BI_WH/constraints", &got)
	if len(got) != 1 || got[0].EnforceSize != "X-Large" || got[0].MinClusters != 3 {
		t.Fatalf("constraints = %+v", got)
	}
	if len(got[0].Days) != 5 {
		t.Fatalf("days = %v", got[0].Days)
	}
	// Invalid rule rejected.
	bad := []RuleJSON{{Name: "x", EnforceSize: "Gigantic"}}
	body, _ = json.Marshal(bad)
	req, _ = http.NewRequest(http.MethodPut,
		srv.URL+"/api/v1/warehouses/BI_WH/constraints", bytes.NewReader(body))
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad rule code %d", resp.StatusCode)
	}
	badDay := []RuleJSON{{Name: "x", Days: []int{7}}}
	body, _ = json.Marshal(badDay)
	req, _ = http.NewRequest(http.MethodPut,
		srv.URL+"/api/v1/warehouses/BI_WH/constraints", bytes.NewReader(body))
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad day code %d", resp.StatusCode)
	}
}

func TestResumeEndpoint(t *testing.T) {
	srv, acct, sched := rig(t)
	// External change pauses optimization on the next tick.
	acct.Alter("BI_WH", cdw.Alteration{Size: cdw.SizeP(cdw.Size3XLarge)}, "dba")
	sched.RunFor(30 * time.Minute)
	var info WarehouseInfo
	getJSON(t, srv.URL+"/api/v1/warehouses/BI_WH", &info)
	if !info.Paused {
		t.Fatal("not paused after external change")
	}
	resp, err := http.Post(srv.URL+"/api/v1/warehouses/BI_WH/resume-optimization", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if out["paused"].(bool) {
		t.Fatal("still paused after resume")
	}
}

func TestInvoicesAndActions(t *testing.T) {
	srv, _, _ := rig(t)
	var invs []InvoiceJSON
	if code := getJSON(t, srv.URL+"/api/v1/invoices", &invs); code != 200 {
		t.Fatalf("code %d", code)
	}
	if len(invs) == 0 {
		t.Fatal("no invoices")
	}
	for _, inv := range invs {
		if inv.Charge < 0 || inv.Charge > inv.Savings*inv.Rate+1e-9 {
			t.Fatalf("bad invoice %+v", inv)
		}
	}
	var acts []ActionJSON
	if code := getJSON(t, srv.URL+"/api/v1/actions?limit=10", &acts); code != 200 {
		t.Fatalf("code %d", code)
	}
	if len(acts) == 0 || len(acts) > 10 {
		t.Fatalf("actions = %d", len(acts))
	}
	if code := getJSON(t, srv.URL+"/api/v1/actions?limit=zero", nil); code != 400 {
		t.Fatalf("bad limit code %d", code)
	}
}

func TestAdvanceHook(t *testing.T) {
	sched := simclock.NewScheduler(9)
	acct := cdw.NewAccount(sched, cdw.DefaultSimParams())
	engine := core.NewEngine(acct, core.DefaultOptions())
	acct.CreateWarehouse(cdw.Config{Name: "W", Size: cdw.SizeXSmall,
		MinClusters: 1, MaxClusters: 1, AutoResume: true})
	calls := 0
	srv := httptest.NewServer(NewServer(Backend{
		Engine: engine, Acct: acct,
		Advance: func() { calls++; sched.RunFor(time.Minute) },
	}))
	defer srv.Close()
	before := sched.Now()
	http.Get(srv.URL + "/api/v1/status")
	http.Get(srv.URL + "/api/v1/status")
	if calls != 2 {
		t.Fatalf("advance calls = %d", calls)
	}
	if !sched.Now().Equal(before.Add(2 * time.Minute)) {
		t.Fatal("virtual time did not advance")
	}
}

func TestRuleJSONRoundTrip(t *testing.T) {
	in := RuleJSON{
		Name: "full", Days: []int{1, 3}, StartMinute: 60, EndMinute: 120,
		NoDownsize: true, NoUpsize: true, NoSuspend: true, NoClusters: true,
		MinSize: "Small", MaxSize: "X-Large", MinClusters: 2, EnforceSize: "Medium",
	}
	rule, err := ruleFromJSON(in)
	if err != nil {
		t.Fatal(err)
	}
	out := ruleToJSON(rule)
	a, _ := json.Marshal(in)
	b, _ := json.Marshal(out)
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip mismatch:\n%s\n%s", a, b)
	}
}

func TestConsolidationEndpoint(t *testing.T) {
	sched := simclock.NewScheduler(7)
	acct := cdw.NewAccount(sched, cdw.DefaultSimParams())
	engine := core.NewEngine(acct, core.DefaultOptions())
	pool, _, _ := workload.StandardPools()
	for _, name := range []string{"A", "B"} {
		acct.CreateWarehouse(cdw.Config{Name: name, Size: cdw.SizeSmall,
			MinClusters: 1, MaxClusters: 2, AutoSuspend: 10 * time.Minute, AutoResume: true})
		gen := workload.BI{Pool: pool, PeakQPH: 10, WeekendFactor: 0.2}
		end := simclock.Epoch.Add(2 * 24 * time.Hour)
		workload.Drive(sched, acct, name, gen.Generate(simclock.Epoch, end, sched.Rand("wl:"+name)))
	}
	sched.RunFor(2*24*time.Hour + time.Hour)
	srv := httptest.NewServer(NewServer(Backend{Engine: engine, Acct: acct}))
	defer srv.Close()

	var out map[string]any
	if code := getJSON(t, srv.URL+"/api/v1/consolidation?warehouses=A,B&from=-48h", &out); code != 200 {
		t.Fatalf("code %d", code)
	}
	if out["current_credits"].(float64) <= 0 {
		t.Fatalf("analysis = %v", out)
	}
	if _, ok := out["consolidate"].(bool); !ok {
		t.Fatalf("missing verdict: %v", out)
	}
	if code := getJSON(t, srv.URL+"/api/v1/consolidation?warehouses=A", nil); code != 400 {
		t.Fatalf("single warehouse code %d", code)
	}
	if code := getJSON(t, srv.URL+"/api/v1/consolidation?warehouses=A,NOPE", nil); code != 404 {
		t.Fatalf("unknown warehouse code %d", code)
	}
}

func TestWhatIfEndpoint(t *testing.T) {
	srv, _, _ := rig(t)
	var out map[string]any
	if code := getJSON(t, srv.URL+"/api/v1/warehouses/BI_WH/what-if?slider=5&from=-48h", &out); code != 200 {
		t.Fatalf("code %d", code)
	}
	if out["queries"].(float64) == 0 || out["live_credits"].(float64) <= 0 {
		t.Fatalf("what-if = %v", out)
	}
	if out["sandbox_credits"].(float64) <= 0 {
		t.Fatalf("no sandbox projection: %v", out)
	}
	if code := getJSON(t, srv.URL+"/api/v1/warehouses/BI_WH/what-if?slider=9", nil); code != 400 {
		t.Fatalf("invalid slider code %d", code)
	}
	if code := getJSON(t, srv.URL+"/api/v1/warehouses/BI_WH/what-if", nil); code != 400 {
		t.Fatalf("missing slider code %d", code)
	}
}
