// Package api implements KWO's programmatic API service (§4.1): a JSON
// HTTP interface exposing the dashboards' KPIs, the per-warehouse
// slider, the constraint rules, invoices, and the action audit trail.
// The web portal is a thin client of this API; here the API is the
// deliverable and cmd/kwo-portal serves it over a live simulation.
//
// All handlers are safe for concurrent use: the server serializes
// access to the underlying (single-threaded, virtual-time) engine with
// one mutex, and an optional Advance hook lets the host move virtual
// time forward before each request is served.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/consolidate"
	"kwo/internal/core"
	"kwo/internal/policy"
	"kwo/internal/pricing"
)

// Backend is what the API serves: the engine plus account access. It is
// implemented by the facade's Simulation+Optimizer pair.
type Backend struct {
	Engine *core.Engine
	Acct   *cdw.Account
	// Advance, if non-nil, is called before each request to move
	// virtual time (e.g. in lock-step with wall time).
	Advance func()
}

// Server is the HTTP API service.
type Server struct {
	mu  sync.Mutex
	b   Backend
	mux *http.ServeMux
}

// NewServer builds the API service over a backend.
func NewServer(b Backend) *Server {
	s := &Server{b: b, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /api/v1/status", s.handleStatus)
	s.mux.HandleFunc("GET /api/v1/warehouses", s.handleWarehouses)
	s.mux.HandleFunc("GET /api/v1/warehouses/{name}", s.handleWarehouse)
	s.mux.HandleFunc("GET /api/v1/warehouses/{name}/report", s.handleReport)
	s.mux.HandleFunc("GET /api/v1/warehouses/{name}/daily", s.handleDaily)
	s.mux.HandleFunc("GET /api/v1/warehouses/{name}/hourly", s.handleHourly)
	s.mux.HandleFunc("PUT /api/v1/warehouses/{name}/slider", s.handleSetSlider)
	s.mux.HandleFunc("GET /api/v1/warehouses/{name}/slider", s.handleGetSlider)
	s.mux.HandleFunc("PUT /api/v1/warehouses/{name}/constraints", s.handleSetConstraints)
	s.mux.HandleFunc("GET /api/v1/warehouses/{name}/constraints", s.handleGetConstraints)
	s.mux.HandleFunc("POST /api/v1/warehouses/{name}/resume-optimization", s.handleResume)
	s.mux.HandleFunc("GET /api/v1/warehouses/{name}/what-if", s.handleWhatIf)
	s.mux.HandleFunc("GET /api/v1/consolidation", s.handleConsolidation)
	s.mux.HandleFunc("GET /api/v1/invoices", s.handleInvoices)
	s.mux.HandleFunc("GET /api/v1/actions", s.handleActions)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.b.Advance != nil {
		s.b.Advance()
	}
	s.mux.ServeHTTP(w, r)
}

// --- wire types -------------------------------------------------------

// WarehouseInfo is the JSON view of one warehouse.
type WarehouseInfo struct {
	Name        string `json:"name"`
	Size        string `json:"size"`
	MinClusters int    `json:"min_clusters"`
	MaxClusters int    `json:"max_clusters"`
	Policy      string `json:"scaling_policy"`
	AutoSuspend string `json:"auto_suspend"`
	AutoResume  bool   `json:"auto_resume"`
	Running     bool   `json:"running"`
	Clusters    int    `json:"active_clusters"`
	Attached    bool   `json:"optimization_attached"`
	Paused      bool   `json:"optimization_paused"`
	Slider      int    `json:"slider,omitempty"`
	SliderLabel string `json:"slider_label,omitempty"`
}

// ReportJSON is the JSON view of a core.Report.
type ReportJSON struct {
	Warehouse        string  `json:"warehouse"`
	From             string  `json:"from"`
	To               string  `json:"to"`
	ActualCredits    float64 `json:"actual_credits"`
	WithoutKeebo     float64 `json:"without_keebo_credits"`
	Savings          float64 `json:"savings_credits"`
	SavingsPercent   float64 `json:"savings_percent"`
	OverheadCredits  float64 `json:"overhead_credits"`
	Queries          int     `json:"queries"`
	CostPerQuery     float64 `json:"cost_per_query"`
	AvgLatencyMS     int64   `json:"avg_latency_ms"`
	P99LatencyMS     int64   `json:"p99_latency_ms"`
	P99QueueMS       int64   `json:"p99_queue_ms"`
	ActionsApplied   int     `json:"actions_applied"`
	Reverts          int     `json:"reverts"`
	ConstraintEvents int     `json:"constraint_events"`
}

// RuleJSON is the JSON form of a constraint rule.
type RuleJSON struct {
	Name        string `json:"name"`
	Days        []int  `json:"days,omitempty"` // 0=Sunday … 6=Saturday
	StartMinute int    `json:"start_minute"`
	EndMinute   int    `json:"end_minute"`
	NoDownsize  bool   `json:"no_downsize,omitempty"`
	NoUpsize    bool   `json:"no_upsize,omitempty"`
	NoSuspend   bool   `json:"no_suspend_change,omitempty"`
	NoClusters  bool   `json:"no_cluster_change,omitempty"`
	MinSize     string `json:"min_size,omitempty"`
	MaxSize     string `json:"max_size,omitempty"`
	MinClusters int    `json:"min_clusters,omitempty"`
	EnforceSize string `json:"enforce_size,omitempty"`
}

// ActionJSON is one row of the action audit log.
type ActionJSON struct {
	Time      string `json:"time"`
	Warehouse string `json:"warehouse"`
	Kind      string `json:"kind"`
	Statement string `json:"statement,omitempty"`
	Applied   bool   `json:"applied"`
	Reason    string `json:"reason"`
	Error     string `json:"error,omitempty"`
}

// InvoiceJSON is one value-based-pricing statement.
type InvoiceJSON struct {
	Warehouse      string  `json:"warehouse"`
	From           string  `json:"from"`
	To             string  `json:"to"`
	ActualCredits  float64 `json:"actual_credits"`
	WithoutKeebo   float64 `json:"without_keebo_credits"`
	Savings        float64 `json:"savings_credits"`
	SavingsPercent float64 `json:"savings_percent"`
	Rate           float64 `json:"rate"`
	Charge         float64 `json:"charge_credits"`
}

// --- helpers ----------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// parseTime accepts RFC3339 or a duration relative to now ("-24h").
func (s *Server) parseTime(val string, def time.Time) (time.Time, error) {
	if val == "" {
		return def, nil
	}
	if strings.HasPrefix(val, "-") || strings.HasPrefix(val, "+") {
		d, err := time.ParseDuration(val)
		if err != nil {
			return time.Time{}, err
		}
		return s.b.Acct.Scheduler().Now().Add(d), nil
	}
	return time.Parse(time.RFC3339, val)
}

func reportJSON(r core.Report) ReportJSON {
	return ReportJSON{
		Warehouse:        r.Warehouse,
		From:             r.From.Format(time.RFC3339),
		To:               r.To.Format(time.RFC3339),
		ActualCredits:    r.ActualCredits,
		WithoutKeebo:     r.WithoutKeebo,
		Savings:          r.Savings,
		SavingsPercent:   r.SavingsPercent,
		OverheadCredits:  r.OverheadCredits,
		Queries:          r.Queries,
		CostPerQuery:     r.CostPerQuery,
		AvgLatencyMS:     r.AvgLatency.Milliseconds(),
		P99LatencyMS:     r.P99Latency.Milliseconds(),
		P99QueueMS:       r.P99Queue.Milliseconds(),
		ActionsApplied:   r.ActionsApplied,
		Reverts:          r.Reverts,
		ConstraintEvents: r.ConstraintEvents,
	}
}

func invoiceJSON(inv pricing.Invoice) InvoiceJSON {
	return InvoiceJSON{
		Warehouse:      inv.Warehouse,
		From:           inv.From.Format(time.RFC3339),
		To:             inv.To.Format(time.RFC3339),
		ActualCredits:  inv.ActualCredits,
		WithoutKeebo:   inv.EstimatedWithoutKeebo,
		Savings:        inv.Savings,
		SavingsPercent: inv.SavingsPercent(),
		Rate:           inv.Rate,
		Charge:         inv.Charge,
	}
}

// ruleToJSON converts a policy rule to wire form.
func ruleToJSON(r policy.Rule) RuleJSON {
	out := RuleJSON{
		Name:        r.Name,
		StartMinute: r.StartMinute,
		EndMinute:   r.EndMinute,
		NoDownsize:  r.NoDownsize,
		NoUpsize:    r.NoUpsize,
		NoSuspend:   r.NoSuspendChange,
		NoClusters:  r.NoClusterChange,
	}
	for _, d := range r.Days {
		out.Days = append(out.Days, int(d))
	}
	if r.MinSize != nil {
		out.MinSize = r.MinSize.String()
	}
	if r.MaxSize != nil {
		out.MaxSize = r.MaxSize.String()
	}
	if r.MinClusters != nil {
		out.MinClusters = *r.MinClusters
	}
	if r.EnforceSize != nil {
		out.EnforceSize = r.EnforceSize.String()
	}
	return out
}

// ruleFromJSON parses the wire form back to a policy rule.
func ruleFromJSON(in RuleJSON) (policy.Rule, error) {
	r := policy.Rule{
		Name:            in.Name,
		StartMinute:     in.StartMinute,
		EndMinute:       in.EndMinute,
		NoDownsize:      in.NoDownsize,
		NoUpsize:        in.NoUpsize,
		NoSuspendChange: in.NoSuspend,
		NoClusterChange: in.NoClusters,
	}
	for _, d := range in.Days {
		if d < 0 || d > 6 {
			return r, fmt.Errorf("day %d out of range 0..6", d)
		}
		r.Days = append(r.Days, time.Weekday(d))
	}
	parse := func(name string) (*cdw.Size, error) {
		if name == "" {
			return nil, nil
		}
		sz, err := cdw.ParseSize(name)
		if err != nil {
			return nil, err
		}
		return &sz, nil
	}
	var err error
	if r.MinSize, err = parse(in.MinSize); err != nil {
		return r, err
	}
	if r.MaxSize, err = parse(in.MaxSize); err != nil {
		return r, err
	}
	if r.EnforceSize, err = parse(in.EnforceSize); err != nil {
		return r, err
	}
	if in.MinClusters > 0 {
		mc := in.MinClusters
		r.MinClusters = &mc
	}
	return r, r.Validate()
}

// --- handlers ---------------------------------------------------------

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"virtual_time":        s.b.Acct.Scheduler().Now().Format(time.RFC3339),
		"warehouses":          len(s.b.Acct.WarehouseNames()),
		"attached_warehouses": len(s.b.Engine.Warehouses()),
		"total_credits":       s.b.Acct.TotalCredits(),
		"total_savings":       s.b.Engine.Ledger().TotalSavings(),
	})
}

func (s *Server) warehouseInfo(name string) (WarehouseInfo, error) {
	wh, err := s.b.Acct.Warehouse(name)
	if err != nil {
		return WarehouseInfo{}, err
	}
	cfg := wh.Config()
	info := WarehouseInfo{
		Name:        cfg.Name,
		Size:        cfg.Size.String(),
		MinClusters: cfg.MinClusters,
		MaxClusters: cfg.MaxClusters,
		Policy:      cfg.Policy.String(),
		AutoSuspend: cfg.AutoSuspend.String(),
		AutoResume:  cfg.AutoResume,
		Running:     wh.Running(),
		Clusters:    wh.ActiveClusters(),
	}
	if sm, err := s.b.Engine.Model(name); err == nil {
		info.Attached = true
		info.Paused = sm.Paused()
		info.Slider = int(sm.Settings().Slider)
		info.SliderLabel = sm.Settings().Slider.String()
	}
	return info, nil
}

func (s *Server) handleWarehouses(w http.ResponseWriter, r *http.Request) {
	var out []WarehouseInfo
	for _, name := range s.b.Acct.WarehouseNames() {
		info, err := s.warehouseInfo(name)
		if err != nil {
			continue
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleWarehouse(w http.ResponseWriter, r *http.Request) {
	info, err := s.warehouseInfo(r.PathValue("name"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	now := s.b.Acct.Scheduler().Now()
	from, err := s.parseTime(r.URL.Query().Get("from"), now.Add(-24*time.Hour))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad from: %v", err)
		return
	}
	to, err := s.parseTime(r.URL.Query().Get("to"), now)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad to: %v", err)
		return
	}
	rep, err := s.b.Engine.Report(name, from, to)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, reportJSON(rep))
}

func (s *Server) handleDaily(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	now := s.b.Acct.Scheduler().Now()
	days := 7
	if v := r.URL.Query().Get("days"); v != "" {
		d, err := strconv.Atoi(v)
		if err != nil || d < 1 || d > 366 {
			writeErr(w, http.StatusBadRequest, "bad days %q", v)
			return
		}
		days = d
	}
	from, err := s.parseTime(r.URL.Query().Get("from"),
		now.Add(-time.Duration(days)*24*time.Hour))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad from: %v", err)
		return
	}
	rows, err := s.b.Engine.DailySeries(name, from, days)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	type dayJSON struct {
		Day          string  `json:"day"`
		Credits      float64 `json:"credits"`
		Queries      int     `json:"queries"`
		AvgLatencyMS int64   `json:"avg_latency_ms"`
		P99LatencyMS int64   `json:"p99_latency_ms"`
	}
	out := make([]dayJSON, 0, len(rows))
	for _, d := range rows {
		out = append(out, dayJSON{
			Day: d.Day.Format("2006-01-02"), Credits: d.Credits, Queries: d.Queries,
			AvgLatencyMS: d.AvgLatency.Milliseconds(), P99LatencyMS: d.P99Latency.Milliseconds(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHourly(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	now := s.b.Acct.Scheduler().Now()
	hours := 24
	if v := r.URL.Query().Get("hours"); v != "" {
		h, err := strconv.Atoi(v)
		if err != nil || h < 1 || h > 24*31 {
			writeErr(w, http.StatusBadRequest, "bad hours %q", v)
			return
		}
		hours = h
	}
	from, err := s.parseTime(r.URL.Query().Get("from"),
		now.Add(-time.Duration(hours)*time.Hour))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad from: %v", err)
		return
	}
	rows, err := s.b.Engine.HourlySeries(name, from, hours)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	type hourJSON struct {
		Hour     string  `json:"hour"`
		Actual   float64 `json:"actual_credits"`
		Overhead float64 `json:"overhead_credits"`
		Savings  float64 `json:"estimated_savings"`
	}
	out := make([]hourJSON, 0, len(rows))
	for _, h := range rows {
		out = append(out, hourJSON{
			Hour: h.Hour.Format(time.RFC3339), Actual: h.ActualCredits,
			Overhead: h.OverheadCredits, Savings: h.EstimatedSavings,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetSlider(w http.ResponseWriter, r *http.Request) {
	sm, err := s.b.Engine.Model(r.PathValue("name"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"position": int(sm.Settings().Slider),
		"label":    sm.Settings().Slider.String(),
	})
}

func (s *Server) handleSetSlider(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Position int `json:"position"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	slider := policy.Slider(body.Position)
	if !slider.Valid() {
		writeErr(w, http.StatusBadRequest, "slider position %d out of range 1..5", body.Position)
		return
	}
	sm, err := s.b.Engine.Model(r.PathValue("name"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	sm.SetSlider(slider)
	writeJSON(w, http.StatusOK, map[string]any{
		"position": body.Position, "label": slider.String(),
	})
}

func (s *Server) handleGetConstraints(w http.ResponseWriter, r *http.Request) {
	sm, err := s.b.Engine.Model(r.PathValue("name"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	out := []RuleJSON{}
	for _, rule := range sm.Settings().Constraints {
		out = append(out, ruleToJSON(rule))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSetConstraints(w http.ResponseWriter, r *http.Request) {
	var body []RuleJSON
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	var cs policy.Constraints
	for i, rj := range body {
		rule, err := ruleFromJSON(rj)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "rule %d: %v", i, err)
			return
		}
		cs = append(cs, rule)
	}
	sm, err := s.b.Engine.Model(r.PathValue("name"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	sm.SetConstraints(cs)
	writeJSON(w, http.StatusOK, map[string]any{"rules": len(cs)})
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sm, err := s.b.Engine.Model(name)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	wh, err := s.b.Acct.Warehouse(name)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	sm.ResumeOptimization(wh.Config())
	writeJSON(w, http.StatusOK, map[string]any{"paused": sm.Paused()})
}

// handleWhatIf projects an alternative slider over a recorded window
// in a sandbox fork.
func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	pos, err := strconv.Atoi(r.URL.Query().Get("slider"))
	if err != nil || !policy.Slider(pos).Valid() {
		writeErr(w, http.StatusBadRequest, "need ?slider=1..5")
		return
	}
	now := s.b.Acct.Scheduler().Now()
	from, err := s.parseTime(r.URL.Query().Get("from"), now.Add(-24*time.Hour))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad from: %v", err)
		return
	}
	to, err := s.parseTime(r.URL.Query().Get("to"), now)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad to: %v", err)
		return
	}
	res, err := s.b.Engine.WhatIf(name, core.WarehouseSettings{Slider: policy.Slider(pos)}, from, to)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"warehouse":       res.Warehouse,
		"from":            res.From.Format(time.RFC3339),
		"to":              res.To.Format(time.RFC3339),
		"queries":         res.Queries,
		"live_credits":    res.LiveCredits,
		"sandbox_credits": res.SandboxCredits,
		"live_p99_s":      res.LiveP99,
		"sandbox_p99_s":   res.SandboxP99,
	})
}

// handleConsolidation runs the warehouse-consolidation analysis over
// the comma-separated ?warehouses= list.
func (s *Server) handleConsolidation(w http.ResponseWriter, r *http.Request) {
	names := strings.Split(r.URL.Query().Get("warehouses"), ",")
	if len(names) < 2 || names[0] == "" {
		writeErr(w, http.StatusBadRequest, "need ?warehouses=A,B[,C...]")
		return
	}
	now := s.b.Acct.Scheduler().Now()
	from, err := s.parseTime(r.URL.Query().Get("from"), now.Add(-7*24*time.Hour))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad from: %v", err)
		return
	}
	to, err := s.parseTime(r.URL.Query().Get("to"), now)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad to: %v", err)
		return
	}
	var cands []consolidate.Candidate
	for _, name := range names {
		wh, err := s.b.Acct.Warehouse(name)
		if err != nil {
			writeErr(w, http.StatusNotFound, "%v", err)
			return
		}
		cands = append(cands, consolidate.Candidate{
			Config:        wh.Config(),
			Log:           s.b.Engine.Store().Log(name),
			ActualCredits: wh.Meter().CreditsBetween(from, to, now),
		})
	}
	rec, err := consolidate.Analyze(cands, from, to, consolidate.DefaultParams())
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"warehouses":          rec.Warehouses,
		"consolidate":         rec.Consolidate,
		"target_size":         rec.Target.Size.String(),
		"target_max_clusters": rec.Target.MaxClusters,
		"current_credits":     rec.CurrentCredits,
		"merged_credits":      rec.MergedCredits,
		"savings_percent":     rec.SavingsPercent,
		"peak_load_clusters":  rec.PeakLoadClusters,
		"reasons":             rec.Reasons,
	})
}

func (s *Server) handleInvoices(w http.ResponseWriter, r *http.Request) {
	out := []InvoiceJSON{}
	for _, inv := range s.b.Engine.Ledger().Invoices() {
		out = append(out, invoiceJSON(inv))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleActions(w http.ResponseWriter, r *http.Request) {
	limit := 100
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		limit = n
	}
	log := s.b.Engine.Actuator().Log()
	if len(log) > limit {
		log = log[len(log)-limit:]
	}
	out := make([]ActionJSON, 0, len(log))
	for _, rec := range log {
		out = append(out, ActionJSON{
			Time:      rec.Time.Format(time.RFC3339),
			Warehouse: rec.Action.Warehouse,
			Kind:      rec.Action.Kind.String(),
			Statement: rec.Statement,
			Applied:   rec.Applied,
			Reason:    rec.Reason,
			Error:     rec.Err,
		})
	}
	writeJSON(w, http.StatusOK, out)
}
