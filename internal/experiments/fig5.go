package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/costmodel"
	"kwo/internal/workload"
)

// Fig5Row is one warehouse of Figure 5: actual vs estimated cost.
type Fig5Row struct {
	Warehouse   string
	Actual      float64
	Estimated   float64
	RelErrPct   float64
	PaperErrPct float64
}

// Fig5Result reproduces Figure 5: the warehouse cost model estimates
// the actual (billed) cost of real workloads without running any
// queries. The paper reports relative errors of 0.67%, 4.09%, 20.9%
// and 3.12% across four warehouses, with the outlier being a
// low-spending, rarely-used warehouse where small absolute error is
// large relative error.
type Fig5Result struct {
	Rows []Fig5Row
}

// String renders the figure as a text table.
func (f Fig5Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 5 — warehouse cost model accuracy (actual vs estimated credits)\n")
	fmt.Fprintf(&b, "%-12s %-10s %-10s %-10s %s\n", "warehouse", "actual", "estimated", "rel err", "paper err")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-12s %-10.2f %-10.2f %-9.2f%% %.2f%%\n",
			r.Warehouse, r.Actual, r.Estimated, r.RelErrPct, r.PaperErrPct)
	}
	return b.String()
}

// CSV renders the rows for plotting.
func (f Fig5Result) CSV() string {
	var b strings.Builder
	b.WriteString("warehouse,actual,estimated,rel_err_pct\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%s,%.4f,%.4f,%.3f\n", r.Warehouse, r.Actual, r.Estimated, r.RelErrPct)
	}
	return b.String()
}

// fig5Warehouse runs one workload without KWO, trains the cost model on
// its telemetry, and compares the replayed estimate with the actual
// bill over the evaluation window.
func fig5Warehouse(name string, cfg cdw.Config, gen workload.Generator,
	days int, seed int64, paperErr float64) Fig5Row {

	run := Scenario{Name: "fig5-" + name, Seed: seed, Orig: cfg, Gen: gen,
		PreDays: days, KwoDays: 0}.Execute()

	to := Epoch.Add(time.Duration(days) * 24 * time.Hour)
	log := run.Engine.Store().Log(cfg.Name)
	model := costmodel.Train(log, cfg, Epoch, to, run.Acct.Params().MaxConcurrency)

	wh, _ := run.Acct.Warehouse(cfg.Name)
	actual := wh.Meter().CreditsBetween(Epoch, to, run.Sched.Now())
	est := model.Replay(log, Epoch, to).Credits
	row := Fig5Row{Warehouse: name, Actual: actual, Estimated: est, PaperErrPct: paperErr}
	if actual > 0 {
		row.RelErrPct = 100 * math.Abs(est-actual) / actual
	}
	return row
}

// Fig5 reproduces the four-warehouse accuracy comparison. Warehouse3 is
// the deliberately low-spend, rarely-used one.
func Fig5(seed int64) Fig5Result {
	biPool, etlPool, adhocPool := workload.StandardPools()
	days := 3

	res := Fig5Result{}
	res.Rows = append(res.Rows, fig5Warehouse("Warehouse1",
		cdw.Config{Name: "WH1", Size: cdw.SizeSmall, MinClusters: 1, MaxClusters: 1,
			AutoSuspend: 5 * time.Minute, AutoResume: true},
		workload.ETL{Pool: etlPool, Period: time.Hour, JobsPerBatch: 4, Jitter: time.Minute},
		days, seed, 0.67))
	res.Rows = append(res.Rows, fig5Warehouse("Warehouse2",
		cdw.Config{Name: "WH2", Size: cdw.SizeMedium, MinClusters: 1, MaxClusters: 2,
			AutoSuspend: 5 * time.Minute, AutoResume: true},
		workload.BI{Pool: biPool, PeakQPH: 100, WeekendFactor: 0.3},
		days, seed+1, 4.09))
	// Warehouse3: provisioned but rarely used — a handful of queries a
	// day, so billing minimums and resume effects dominate.
	res.Rows = append(res.Rows, fig5Warehouse("Warehouse3",
		cdw.Config{Name: "WH3", Size: cdw.SizeXSmall, MinClusters: 1, MaxClusters: 1,
			AutoSuspend: time.Minute, AutoResume: true},
		workload.AdHoc{Pool: adhocPool, BaseQPH: 0.3, DayVariance: 1.0},
		days, seed+2, 20.9))
	res.Rows = append(res.Rows, fig5Warehouse("Warehouse4",
		cdw.Config{Name: "WH4", Size: cdw.SizeSmall, MinClusters: 1, MaxClusters: 3,
			AutoSuspend: 10 * time.Minute, AutoResume: true},
		workload.AdHoc{Pool: adhocPool, BaseQPH: 20, DayVariance: 0.5,
			BurstsPerDay: 1, BurstQPH: 150, BurstLen: 15 * time.Minute},
		days, seed+3, 3.12))
	return res
}
