package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxWorkers bounds the fan-out of RunIndexed. Zero or negative means
// one worker per CPU. It is read when a fan-out starts; set it before
// launching experiments, not concurrently with them. Code that needs a
// per-call pool size (several fan-outs alive in one process) should
// pass it explicitly via RunIndexedN instead of mutating this knob.
var MaxWorkers int

func workerCount(n int) int {
	w := MaxWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunIndexed evaluates fn(0), …, fn(n-1) across a bounded worker pool
// and returns the results in index order. Every experiment arm builds
// its own scheduler, account, and RNG stream from its seed, so arms
// share no mutable state and the result for each index is byte-
// identical whether the pool has one worker or many — parallelism
// changes wall-clock time, never output.
//
// The pool size comes from the package-level MaxWorkers knob. Callers
// that host several independent simulations in one process (the fleet
// runner) should use RunIndexedN instead: it takes the worker count as
// an argument, so two concurrent fan-outs can never alias through
// package state.
func RunIndexed[T any](n int, fn func(int) T) []T {
	return RunIndexedN(n, workerCount(n), fn)
}

// RunIndexedN is RunIndexed with an explicit worker count: workers <= 0
// means one worker per CPU. It reads no package-level state, so
// concurrent fan-outs with different pool sizes cannot interfere.
func RunIndexedN[T any](n, workers int, fn func(int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}
