package experiments

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolOrderAndCompleteness(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 0} {
		p := NewPool(workers)
		for round := 0; round < 3; round++ { // reuse across rounds is the point
			out := make([]int, 23)
			p.Run(len(out), func(i int) { out[i] = i * i })
			for i, v := range out {
				if v != i*i {
					t.Fatalf("workers=%d round=%d: out[%d] = %d, want %d", workers, round, i, v, i*i)
				}
			}
		}
		p.Run(0, func(i int) { t.Errorf("n=0 must not call fn (i=%d)", i) })
		p.Close()
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	p.Run(50, func(i int) {
		n := inFlight.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		inFlight.Add(-1)
	})
	if got := peak.Load(); got > 3 {
		t.Fatalf("observed %d concurrent tasks, want ≤ 3", got)
	}
}

// The pool really is parallel: with 4 workers, a task that blocks until
// a second task is in flight must not deadlock.
func TestPoolRunsConcurrently(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var inFlight atomic.Int64
	release := make(chan struct{})
	var once sync.Once
	out := make([]int, 8)
	p.Run(len(out), func(i int) {
		if inFlight.Add(1) >= 2 {
			once.Do(func() { close(release) })
		}
		select {
		case <-release:
		case <-time.After(10 * time.Second):
			t.Error("no concurrent task within 10s")
			once.Do(func() { close(release) })
		}
		inFlight.Add(-1)
		out[i] = i * 3
	})
	for i, v := range out {
		if v != i*3 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*3)
		}
	}
}

// RunWorkers pins at most one in-flight index per worker id, so
// per-worker scratch needs no locking.
func TestPoolWorkerScratchIsolation(t *testing.T) {
	const workers = 4
	p := NewPool(workers)
	defer p.Close()
	busy := make([]atomic.Bool, workers)
	counts := make([]atomic.Int64, workers)
	p.RunWorkers(200, func(worker, i int) {
		if worker < 0 || worker >= workers {
			t.Errorf("worker id %d outside [0,%d)", worker, workers)
			return
		}
		if !busy[worker].CompareAndSwap(false, true) {
			t.Errorf("worker %d entered twice concurrently", worker)
		}
		counts[worker].Add(1)
		busy[worker].Store(false)
	})
	var total int64
	for k := range counts {
		total += counts[k].Load()
	}
	if total != 200 {
		t.Fatalf("ran %d indices, want 200", total)
	}
}

// A closed pool degrades to inline execution instead of erroring, and
// Close is idempotent — the Fleet keeps serving reports after Close.
func TestPoolClosedRunsInline(t *testing.T) {
	p := NewPool(4)
	p.Close()
	p.Close() // idempotent
	out := make([]int, 10)
	p.Run(len(out), func(i int) { out[i] = i + 1 })
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("closed pool: out[%d] = %d, want %d", i, v, i+1)
		}
	}
	var nilPool *Pool
	nilPool.Run(3, func(i int) { out[i] = -i }) // nil pool also inline
	if out[1] != -1 {
		t.Fatalf("nil pool did not run inline")
	}
}

// The steady-state fan-out cost must stay O(1) allocations per round —
// one round header plus the closure — not O(workers) goroutine spawns.
// Guards the fleet's per-epoch hot path against allocation creep.
func TestPoolRunAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under -race")
	}
	p := NewPool(8)
	defer p.Close()
	sink := make([]int, 64)
	p.Run(len(sink), func(i int) { sink[i] = i }) // warm up
	allocs := testing.AllocsPerRun(100, func() {
		p.Run(len(sink), func(i int) { sink[i] = i })
	})
	if allocs > 8 {
		t.Fatalf("pool round allocates %.1f objects, want ≤ 8", allocs)
	}
}

// benchFn is a tiny unit of work so the fan-out benchmarks measure
// machinery (spawn vs reuse), not payload.
var benchSink atomic.Int64

func benchFn(i int) { benchSink.Add(int64(i)) }

// BenchmarkPoolRound measures one persistent-pool fan-out of 256 tiny
// tasks across 8 long-lived workers.
func BenchmarkPoolRound(b *testing.B) {
	p := NewPool(8)
	defer p.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(256, benchFn)
	}
}

// BenchmarkPoolRoundNaive is the pre-pool path: RunIndexedN spawns a
// fresh set of 8 goroutines for every round.
func BenchmarkPoolRoundNaive(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunIndexedN(256, 8, func(i int) struct{} {
			benchFn(i)
			return struct{}{}
		})
	}
}
