// Package experiments regenerates every table and figure of the
// paper's evaluation (§7) on the simulated substrate: Figure 4 (savings
// on unpredictable and predictable workloads), Figure 5 (cost-model
// accuracy), Figure 6 (overhead vs savings), Figure 7 (the slider's
// Pareto trade-off), the onboarding ramp quoted in §1/§9, the 20–70%
// savings band, and the ablations DESIGN.md calls out.
//
// Absolute magnitudes differ from the paper's production fleet — the
// substrate is a simulator — but each harness reports the paper's
// numbers alongside the measured ones so the shape can be compared
// directly.
package experiments

import (
	"time"

	"kwo/internal/cdw"
	"kwo/internal/core"
	"kwo/internal/simclock"
	"kwo/internal/workload"
)

// Epoch aliases the simulation start (Monday 00:00 UTC).
var Epoch = simclock.Epoch

// Scenario is a reusable pre/with-KWO experiment setup.
type Scenario struct {
	Name     string
	Seed     int64
	Orig     cdw.Config
	Gen      workload.Generator
	PreDays  int
	KwoDays  int
	Settings core.WarehouseSettings
	Opts     core.Options
}

// Run is the materialized outcome of a scenario.
type Run struct {
	Sched  *simclock.Scheduler
	Acct   *cdw.Account
	Engine *core.Engine
	SM     *core.SmartModel
	Attach time.Time // when KWO was enabled
	End    time.Time
}

// ExperimentOptions returns the engine options used across experiments:
// production cadence with a training budget small enough to keep the
// full suite fast.
func ExperimentOptions() core.Options {
	opts := core.DefaultOptions()
	opts.PretrainSteps = 200
	opts.TrainEvery = 4 * time.Hour
	return opts
}

// Execute runs the scenario: PreDays of workload without KWO, then
// KwoDays with the engine attached and started.
func (s Scenario) Execute() *Run {
	opts := s.Opts
	if opts.DecideEvery == 0 {
		opts = ExperimentOptions()
	}
	sched := simclock.NewScheduler(s.Seed)
	acct := cdw.NewAccount(sched, cdw.DefaultSimParams())
	engine := core.NewEngine(acct, opts)
	if _, err := acct.CreateWarehouse(s.Orig); err != nil {
		panic("experiments: " + err.Error())
	}
	end := Epoch.Add(time.Duration(s.PreDays+s.KwoDays) * 24 * time.Hour)
	arr := s.Gen.Generate(Epoch, end, sched.Rand("workload:"+s.Name))
	workload.Drive(sched, acct, s.Orig.Name, arr)

	attach := Epoch.Add(time.Duration(s.PreDays) * 24 * time.Hour)
	sched.RunUntil(attach)
	var sm *core.SmartModel
	if s.KwoDays > 0 {
		settings := s.Settings
		if !settings.Slider.Valid() {
			settings = core.DefaultSettings()
		}
		var err error
		sm, err = engine.Attach(s.Orig.Name, settings)
		if err != nil {
			panic("experiments: " + err.Error())
		}
		engine.Start()
	}
	sched.RunUntil(end.Add(time.Hour))
	return &Run{Sched: sched, Acct: acct, Engine: engine, SM: sm,
		Attach: attach, End: end}
}

// DailyCredits returns per-day billed credits from day `fromDay`
// (0-based) for `days` days.
func (r *Run) DailyCredits(fromDay, days int) []float64 {
	wh, err := r.Acct.Warehouse(r.warehouseName())
	if err != nil {
		return nil
	}
	start := Epoch.Add(time.Duration(fromDay) * 24 * time.Hour)
	return wh.Meter().Daily(start, days, r.Sched.Now())
}

func (r *Run) warehouseName() string {
	names := r.Acct.WarehouseNames()
	if len(names) == 0 {
		return ""
	}
	return names[0]
}

// DayP99 returns the day's p99 total latency in seconds.
func (r *Run) DayP99(day int) float64 {
	log := r.Engine.Store().Log(r.warehouseName())
	s := Epoch.Add(time.Duration(day) * 24 * time.Hour)
	return log.Stats(s, s.Add(24*time.Hour)).P99Latency.Seconds()
}

// WindowStats returns telemetry stats over an arbitrary window.
func (r *Run) WindowStats(from, to time.Time) (avgLatency, p99Latency float64, queries int) {
	log := r.Engine.Store().Log(r.warehouseName())
	ws := log.Stats(from, to)
	return ws.AvgLatency.Seconds(), ws.P99Latency.Seconds(), ws.Queries
}

// Mean returns the arithmetic mean of xs (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// oversizedBI is the recurring "unpredictability + overprovisioning"
// setup: a Large warehouse serving dashboard traffic that would fit a
// much smaller one.
func oversizedBI(maxClusters int) (cdw.Config, workload.Generator) {
	biPool, _, _ := workload.StandardPools()
	cfg := cdw.Config{
		Name: "BI_WH", Size: cdw.SizeLarge, MinClusters: 1, MaxClusters: maxClusters,
		Policy: cdw.ScaleStandard, AutoSuspend: 10 * time.Minute, AutoResume: true,
	}
	return cfg, workload.BI{Pool: biPool, PeakQPH: 60, WeekendFactor: 0.3}
}
