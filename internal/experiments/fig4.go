package experiments

import (
	"fmt"
	"strings"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/workload"
)

// Fig4Row is one bar+point of Figure 4: a day's credit usage and p99
// latency, before or with KWO.
type Fig4Row struct {
	Day     int
	Credits float64
	P99Secs float64
	WithKWO bool
}

// Fig4Result reproduces one subfigure of Figure 4.
type Fig4Result struct {
	Label string
	Rows  []Fig4Row

	PreAvgDaily  float64
	KwoAvgDaily  float64
	ReductionPct float64
	PreP99Secs   float64
	KwoP99Secs   float64

	// Paper's reported numbers for the same subfigure.
	PaperPreDaily, PaperKwoDaily, PaperReductionPct float64
}

// String renders the figure as a text table.
func (f Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4%s — daily credit usage and p99 latency\n", f.Label)
	fmt.Fprintf(&b, "%-5s %-9s %-10s %s\n", "day", "credits", "p99(s)", "phase")
	for _, r := range f.Rows {
		phase := "before"
		if r.WithKWO {
			phase = "with-KWO"
		}
		fmt.Fprintf(&b, "%-5d %-9.2f %-10.2f %s\n", r.Day+1, r.Credits, r.P99Secs, phase)
	}
	fmt.Fprintf(&b, "avg daily credits: before %.1f → with %.1f (−%.1f%%)  [paper: %.1f → %.1f, −%.1f%%]\n",
		f.PreAvgDaily, f.KwoAvgDaily, f.ReductionPct,
		f.PaperPreDaily, f.PaperKwoDaily, f.PaperReductionPct)
	fmt.Fprintf(&b, "p99 latency: before %.1fs → with %.1fs\n", f.PreP99Secs, f.KwoP99Secs)
	return b.String()
}

// CSV renders the rows for plotting.
func (f Fig4Result) CSV() string {
	var b strings.Builder
	b.WriteString("day,credits,p99_secs,with_kwo\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%d,%.4f,%.4f,%v\n", r.Day+1, r.Credits, r.P99Secs, r.WithKWO)
	}
	return b.String()
}

func fig4FromRun(run *Run, label string, preDays, kwoDays int,
	paperPre, paperKwo float64) Fig4Result {

	res := Fig4Result{
		Label:             label,
		PaperPreDaily:     paperPre,
		PaperKwoDaily:     paperKwo,
		PaperReductionPct: 100 * (1 - paperKwo/paperPre),
	}
	total := preDays + kwoDays
	credits := run.DailyCredits(0, total)
	for d := 0; d < total; d++ {
		res.Rows = append(res.Rows, Fig4Row{
			Day:     d,
			Credits: credits[d],
			P99Secs: run.DayP99(d),
			WithKWO: d >= preDays,
		})
	}
	res.PreAvgDaily = Mean(credits[:preDays])
	// Skip the first with-KWO day (onboarding ramp) in the average,
	// matching how the paper reports steady-state behaviour.
	steady := credits[preDays+1:]
	if len(steady) == 0 {
		steady = credits[preDays:]
	}
	res.KwoAvgDaily = Mean(steady)
	if res.PreAvgDaily > 0 {
		res.ReductionPct = 100 * (1 - res.KwoAvgDaily/res.PreAvgDaily)
	}
	preEnd := Epoch.Add(time.Duration(preDays) * 24 * time.Hour)
	_, preP99, _ := run.WindowStats(Epoch, preEnd)
	_, kwoP99, _ := run.WindowStats(preEnd.Add(24*time.Hour), run.End)
	res.PreP99Secs = preP99
	res.KwoP99Secs = kwoP99
	return res
}

// Fig4a reproduces Figure 4a: a warehouse with a *less predictable*
// workload (strong day-to-day variance, bursts). The paper reports
// daily usage dropping from 10.4 to 4.2 credits (−59.7%) with no
// noticeable p99 change.
func Fig4a(seed int64) Fig4Result {
	_, _, adhocPool := workload.StandardPools()
	cfg := cdw.Config{
		Name: "ADHOC_WH", Size: cdw.SizeSmall, MinClusters: 1, MaxClusters: 2,
		Policy: cdw.ScaleStandard, AutoSuspend: 8 * time.Minute, AutoResume: true,
	}
	gen := workload.AdHoc{
		Pool: adhocPool, BaseQPH: 6, DayVariance: 0.7,
		BurstsPerDay: 2, BurstQPH: 80, BurstLen: 15 * time.Minute,
	}
	run := Scenario{
		Name: "fig4a", Seed: seed, Orig: cfg, Gen: gen,
		PreDays: 7, KwoDays: 7,
	}.Execute()
	return fig4FromRun(run, "a (unpredictable workload)", 7, 7, 10.4, 4.2)
}

// Fig4b reproduces Figure 4b: a warehouse with a *predictable* ETL
// workload. The paper reports 26.9 → 23.4 credits/day (−13.2%), with
// p99 slightly lower under KWO (smaller always-running warehouses beat
// sporadically running bigger ones that wake up cold).
func Fig4b(seed int64) Fig4Result {
	_, etlPool, _ := workload.StandardPools()
	cfg := cdw.Config{
		Name: "ETL_WH", Size: cdw.SizeSmall, MinClusters: 1, MaxClusters: 1,
		Policy: cdw.ScaleStandard, AutoSuspend: 10 * time.Minute, AutoResume: true,
	}
	gen := workload.ETL{
		Pool: etlPool, Period: time.Hour, Offset: 5 * time.Minute,
		JobsPerBatch: 6, Jitter: 2 * time.Minute,
	}
	run := Scenario{
		Name: "fig4b", Seed: seed, Orig: cfg, Gen: gen,
		PreDays: 7, KwoDays: 7,
	}.Execute()
	return fig4FromRun(run, "b (predictable workload)", 7, 7, 26.9, 23.4)
}
