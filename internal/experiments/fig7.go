package experiments

import (
	"fmt"
	"strings"
	"time"

	"kwo/internal/core"
	"kwo/internal/policy"
)

// Fig7Row is one slider position of Figure 7: warehouse cost (bar) and
// average query latency (line).
type Fig7Row struct {
	Slider     policy.Slider
	Credits    float64 // steady-state daily credits with KWO
	AvgLatency float64 // seconds
	P99Latency float64 // seconds
}

// Fig7Result reproduces Figure 7: the same workload run under all five
// slider positions. The meaningful property is Pareto efficiency —
// moving the slider toward Lowest Cost monotonically trades latency for
// credits; the paper quotes 1.42s average latency at slider 3.
type Fig7Result struct {
	Rows []Fig7Row
}

// String renders the figure as a text table.
func (f Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 7 — cost/performance trade-off across slider positions\n")
	fmt.Fprintf(&b, "%-4s %-18s %-14s %-10s %s\n", "pos", "label", "credits/day", "avg lat(s)", "p99(s)")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-4d %-18s %-14.2f %-10.2f %.2f\n",
			int(r.Slider), r.Slider.String(), r.Credits, r.AvgLatency, r.P99Latency)
	}
	return b.String()
}

// CSV renders the rows for plotting.
func (f Fig7Result) CSV() string {
	var b strings.Builder
	b.WriteString("slider,label,credits_per_day,avg_latency_secs,p99_latency_secs\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%d,%s,%.4f,%.4f,%.4f\n",
			int(r.Slider), r.Slider, r.Credits, r.AvgLatency, r.P99Latency)
	}
	return b.String()
}

// Fig7 runs the oversized-BI workload once per slider position (same
// seed, same arrival stream) and measures steady-state daily credits
// and latency. The five positions are independent simulations and run
// across the worker pool.
func Fig7(seed int64) Fig7Result {
	preDays, kwoDays := 2, 4
	sliders := []policy.Slider{policy.BestPerformance, policy.GoodPerformance,
		policy.Balanced, policy.LowCost, policy.LowestCost}
	rows := RunIndexed(len(sliders), func(i int) Fig7Row {
		s := sliders[i]
		cfg, gen := oversizedBI(1)
		run := Scenario{
			Name: fmt.Sprintf("fig7-s%d", int(s)), Seed: seed, Orig: cfg, Gen: gen,
			PreDays: preDays, KwoDays: kwoDays,
			Settings: core.WarehouseSettings{Slider: s},
		}.Execute()
		// Steady state: skip the first with-KWO day.
		steadyFrom := run.Attach.Add(24 * time.Hour)
		days := kwoDays - 1
		wh, _ := run.Acct.Warehouse(cfg.Name)
		credits := wh.Meter().CreditsBetween(steadyFrom, run.End, run.Sched.Now()) / float64(days)
		avg, p99, _ := run.WindowStats(steadyFrom, run.End)
		return Fig7Row{Slider: s, Credits: credits, AvgLatency: avg, P99Latency: p99}
	})
	return Fig7Result{Rows: rows}
}
