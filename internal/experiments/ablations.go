package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"kwo/internal/baseline"
	"kwo/internal/cdw"
	"kwo/internal/core"
	"kwo/internal/costmodel"
	"kwo/internal/simclock"
	"kwo/internal/telemetry"
	"kwo/internal/workload"
)

// AblationCostModelResult quantifies §5.2's claim that calibrating the
// replay with learned parameters "yields more accurate estimates" than
// replay alone: it compares the counterfactual error of the trained
// latency model against the uncalibrated default when the telemetry
// was recorded at a different size than the counterfactual.
type AblationCostModelResult struct {
	GroundTruth     float64 // actual credits of the counterfactual run
	TrainedEst      float64
	DefaultEst      float64
	TrainedErrPct   float64
	DefaultErrPct   float64
	TrainedIsCloser bool
}

// String renders the comparison.
func (a AblationCostModelResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation — replay with vs without learned parameter estimation\n")
	fmt.Fprintf(&b, "ground truth (actual Large run): %.2f credits\n", a.GroundTruth)
	fmt.Fprintf(&b, "estimate with trained latency model:   %.2f (err %.1f%%)\n", a.TrainedEst, a.TrainedErrPct)
	fmt.Fprintf(&b, "estimate with uncalibrated default:    %.2f (err %.1f%%)\n", a.DefaultEst, a.DefaultErrPct)
	return b.String()
}

// AblationCostModel records a workload on a Small warehouse, asks the
// cost model "what would this have cost on Large?", and checks the
// answer against an identical simulation actually run on Large. The
// trained arm has seen executions at both sizes (phase 1 runs Large,
// phase 2 runs Small); the default arm replays with the uncalibrated
// slope.
func AblationCostModel(seed int64) AblationCostModelResult {
	// Heavy, execution-dominated jobs with template-specific scaling
	// exponents: billing is dominated by execution time, so getting
	// the per-template latency scaling right is what decides accuracy.
	pool := workload.NewPool([]workload.Template{
		{Name: "heavy-1", WorkMean: 1200, WorkSigma: 0.15, ScaleExp: 0.5, ColdFactor: 0.2, BytesMean: 1 << 30},
		{Name: "heavy-2", WorkMean: 900, WorkSigma: 0.15, ScaleExp: 1.1, ColdFactor: 0.2, BytesMean: 1 << 30},
		{Name: "heavy-3", WorkMean: 1500, WorkSigma: 0.15, ScaleExp: 0.7, ColdFactor: 0.2, BytesMean: 1 << 30},
	}, 0)
	gen := workload.ETL{Pool: pool, Period: 2 * time.Hour, JobsPerBatch: 3, Jitter: 10 * time.Minute}
	days := 4
	end := Epoch.Add(time.Duration(days) * 24 * time.Hour)
	mid := Epoch.Add(time.Duration(days/2) * 24 * time.Hour)

	cfgLarge := cdw.Config{Name: "W", Size: cdw.SizeLarge, MinClusters: 1, MaxClusters: 1,
		AutoSuspend: time.Minute, AutoResume: true}

	// Run A (mixed sizes: Large for the first half, Small after, giving
	// the latency model cross-size observations of the same templates)
	// and run B (ground truth: identical workload, Large the whole time)
	// are independent simulations; run both across the worker pool.
	type armOut struct {
		store *telemetry.Store
		truth float64
	}
	arms := RunIndexed(2, func(i int) armOut {
		if i == 0 {
			schedA := simclock.NewScheduler(seed)
			acctA := cdw.NewAccount(schedA, cdw.DefaultSimParams())
			storeA := telemetry.NewStore()
			acctA.Subscribe(storeA)
			acctA.CreateWarehouse(cfgLarge)
			arrA := gen.Generate(Epoch, end, schedA.Rand("wl"))
			workload.Drive(schedA, acctA, "W", arrA)
			schedA.Schedule(mid, "resize", func() {
				acctA.Alter("W", cdw.Alteration{Size: cdw.SizeP(cdw.SizeSmall)}, "test")
			})
			schedA.RunUntil(end.Add(time.Hour))
			return armOut{store: storeA}
		}
		schedB := simclock.NewScheduler(seed)
		acctB := cdw.NewAccount(schedB, cdw.DefaultSimParams())
		acctB.CreateWarehouse(cfgLarge)
		arrB := gen.Generate(Epoch, end, schedB.Rand("wl"))
		workload.Drive(schedB, acctB, "W", arrB)
		schedB.RunUntil(end.Add(time.Hour))
		whB, _ := acctB.Warehouse("W")
		return armOut{truth: whB.Meter().CreditsBetween(mid, end, schedB.Now())}
	})
	storeA, truth := arms[0].store, arms[1].truth

	// Trained arm: parameters estimated from run A's full history.
	logA := storeA.Log("W")
	trained := costmodel.Train(logA, cfgLarge, Epoch, end, 8)
	trainedEst := trained.Replay(logA, mid, end).Credits

	// Default arm: same replay but with an unfitted latency model.
	def := *trained
	def.Latency = costmodel.FitLatency(nil)
	defaultEst := def.Replay(logA, mid, end).Credits

	res := AblationCostModelResult{
		GroundTruth: truth,
		TrainedEst:  trainedEst,
		DefaultEst:  defaultEst,
	}
	if truth > 0 {
		res.TrainedErrPct = 100 * math.Abs(trainedEst-truth) / truth
		res.DefaultErrPct = 100 * math.Abs(defaultEst-truth) / truth
	}
	res.TrainedIsCloser = res.TrainedErrPct <= res.DefaultErrPct
	return res
}

// AblationBackoffResult compares the engine with and without the
// self-correction loop of §4.3–§4.4 under an injected load spike.
type AblationBackoffResult struct {
	// WithReverts is how many rollbacks the self-correcting arm issued.
	WithReverts int
	// P99With/P99Without are the post-spike p99 latencies (seconds).
	P99With    float64
	P99Without float64
	// CreditsWith/CreditsWithout are post-spike daily credits.
	CreditsWith    float64
	CreditsWithout float64
}

// String renders the comparison.
func (a AblationBackoffResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation — self-correction (backoff/revert) on vs off under a load spike\n")
	fmt.Fprintf(&b, "reverts issued (on-arm): %d\n", a.WithReverts)
	fmt.Fprintf(&b, "post-spike p99: with self-correction %.1fs, without %.1fs\n", a.P99With, a.P99Without)
	fmt.Fprintf(&b, "post-spike daily credits: with %.1f, without %.1f\n", a.CreditsWith, a.CreditsWithout)
	return b.String()
}

// AblationBackoff injects a dense spike into a BI workload after KWO
// has settled into a small configuration and compares both arms.
func AblationBackoff(seed int64) AblationBackoffResult {
	build := func(disable bool) *Run {
		biPool, _, _ := workload.StandardPools()
		cfg := cdw.Config{Name: "W", Size: cdw.SizeLarge, MinClusters: 1, MaxClusters: 1,
			AutoSuspend: 10 * time.Minute, AutoResume: true}
		spikeAt := Epoch.Add(4*24*time.Hour + 14*time.Hour)
		// The spike must be dense enough to overrun the settled (small)
		// configuration's concurrency slots and queue for several decision
		// ticks — that sustained objective pressure is what engages the
		// §4.3/§4.4 self-correction loop deterministically, rather than
		// relying on an unrelated cost-cut landing right before the spike.
		gen := workload.Mixed{Parts: []workload.Generator{
			workload.BI{Pool: biPool, PeakQPH: 60, WeekendFactor: 0.3},
			workload.Spike{Pool: biPool, At: spikeAt, Count: 2500, Over: 30 * time.Minute},
		}, Label: "bi+spike"}
		opts := ExperimentOptions()
		opts.DisableSelfCorrection = disable
		return Scenario{Name: fmt.Sprintf("backoff-%v", disable), Seed: seed,
			Orig: cfg, Gen: gen, PreDays: 2, KwoDays: 4, Opts: opts,
			Settings: core.DefaultSettings()}.Execute()
	}
	runs := RunIndexed(2, func(i int) *Run { return build(i == 1) })
	on, off := runs[0], runs[1]

	spikeAt := Epoch.Add(4*24*time.Hour + 14*time.Hour)
	post := spikeAt.Add(-10 * time.Minute)
	postEnd := spikeAt.Add(3 * time.Hour)
	_, p99On, _ := on.WindowStats(post, postEnd)
	_, p99Off, _ := off.WindowStats(post, postEnd)
	whOn, _ := on.Acct.Warehouse("W")
	whOff, _ := off.Acct.Warehouse("W")
	return AblationBackoffResult{
		WithReverts:    on.SM.Reverts,
		P99With:        p99On,
		P99Without:     p99Off,
		CreditsWith:    whOn.Meter().CreditsBetween(post, postEnd, on.Sched.Now()),
		CreditsWithout: whOff.Meter().CreditsBetween(post, postEnd, off.Sched.Now()),
	}
}

// ValueOfLearningRow is one controller's outcome on the shared workload.
type ValueOfLearningRow struct {
	Controller string
	DailyCred  float64
	SavingsPct float64
	P99Secs    float64
}

// ValueOfLearningResult compares KWO against the non-learning baselines
// on the oversized-BI workload: savings AND the latency paid for them.
type ValueOfLearningResult struct {
	Rows []ValueOfLearningRow
}

// String renders the comparison.
func (v ValueOfLearningResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation — KWO vs non-learning baselines (oversized BI workload)\n")
	fmt.Fprintf(&b, "%-15s %-12s %-10s %s\n", "controller", "credits/day", "savings", "p99(s)")
	for _, r := range v.Rows {
		fmt.Fprintf(&b, "%-15s %-12.2f %-9.1f%% %.2f\n", r.Controller, r.DailyCred, r.SavingsPct, r.P99Secs)
	}
	return b.String()
}

// CSV renders the rows.
func (v ValueOfLearningResult) CSV() string {
	var b strings.Builder
	b.WriteString("controller,credits_per_day,savings_pct,p99_secs\n")
	for _, r := range v.Rows {
		fmt.Fprintf(&b, "%s,%.4f,%.2f,%.4f\n", r.Controller, r.DailyCred, r.SavingsPct, r.P99Secs)
	}
	return b.String()
}

// ValueOfLearning runs static, rule-of-thumb, reactive and KWO arms on
// the identical workload.
func ValueOfLearning(seed int64) ValueOfLearningResult {
	preDays, ctlDays := 2, 4
	end := Epoch.Add(time.Duration(preDays+ctlDays) * 24 * time.Hour)
	steadyFrom := Epoch.Add(time.Duration(preDays+1) * 24 * time.Hour)
	steadyDays := float64(ctlDays - 1)

	type arm struct {
		name string
		ctl  baseline.Controller // nil for KWO
	}
	arms := []arm{
		{"static", baseline.Static{}},
		{"rule-of-thumb", &baseline.RuleOfThumb{}},
		{"reactive", baseline.NewReactive()},
		{"kwo", nil},
	}
	// The arms share nothing but the seed; run them across the worker
	// pool and derive savings afterwards, once the static arm's spend is
	// known.
	rows := RunIndexed(len(arms), func(i int) ValueOfLearningRow {
		a := arms[i]
		var daily, p99 float64
		if a.ctl == nil {
			cfg, gen := oversizedBI(1)
			run := Scenario{Name: "vol-kwo", Seed: seed, Orig: cfg, Gen: gen,
				PreDays: preDays, KwoDays: ctlDays}.Execute()
			wh, _ := run.Acct.Warehouse(cfg.Name)
			daily = wh.Meter().CreditsBetween(steadyFrom, run.End, run.Sched.Now()) / steadyDays
			_, p99, _ = run.WindowStats(steadyFrom, run.End)
		} else {
			cfg, gen := oversizedBI(1)
			sched := simclock.NewScheduler(seed)
			acct := cdw.NewAccount(sched, cdw.DefaultSimParams())
			store := telemetry.NewStore()
			acct.Subscribe(store)
			acct.CreateWarehouse(cfg)
			arr := gen.Generate(Epoch, end, sched.Rand("workload:vol"))
			workload.Drive(sched, acct, cfg.Name, arr)
			attach := Epoch.Add(time.Duration(preDays) * 24 * time.Hour)
			sched.RunUntil(attach)
			baseline.Run(sched, acct, cfg.Name, a.ctl, 10*time.Minute)
			sched.RunUntil(end.Add(time.Hour))
			wh, _ := acct.Warehouse(cfg.Name)
			daily = wh.Meter().CreditsBetween(steadyFrom, end, sched.Now()) / steadyDays
			p99 = store.Log(cfg.Name).Stats(steadyFrom, end).P99Latency.Seconds()
		}
		return ValueOfLearningRow{Controller: a.name, DailyCred: daily, P99Secs: p99}
	})
	staticDaily := rows[0].DailyCred // arms[0] is the static baseline
	if staticDaily > 0 {
		for i := range rows {
			rows[i].SavingsPct = 100 * (1 - rows[i].DailyCred/staticDaily)
		}
	}
	return ValueOfLearningResult{Rows: rows}
}
