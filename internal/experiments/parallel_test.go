package experiments

import (
	"bytes"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunIndexedOrderAndCompleteness(t *testing.T) {
	old := MaxWorkers
	defer func() { MaxWorkers = old }()
	for _, workers := range []int{1, 2, 7, 0} {
		MaxWorkers = workers
		got := RunIndexed(23, func(i int) int { return i * i })
		if len(got) != 23 {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
	if got := RunIndexed(0, func(i int) int { return i }); got != nil {
		t.Fatalf("n=0: got %v, want nil", got)
	}
}

// RunIndexedN must honour its explicit worker argument and ignore the
// package-level MaxWorkers knob entirely — that is its whole point: two
// concurrent fan-outs in one process must not alias through package
// state.
func TestRunIndexedNIgnoresMaxWorkers(t *testing.T) {
	old := MaxWorkers
	defer func() { MaxWorkers = old }()
	MaxWorkers = 1 // would serialize RunIndexed; RunIndexedN must not care
	var inFlight atomic.Int64
	release := make(chan struct{})
	var once sync.Once
	got := RunIndexedN(8, 4, func(i int) int {
		// Every task blocks until a second task is observed in flight —
		// deadlock-free only if RunIndexedN really runs 4 workers despite
		// MaxWorkers = 1.
		if inFlight.Add(1) >= 2 {
			once.Do(func() { close(release) })
		}
		select {
		case <-release:
		case <-time.After(10 * time.Second):
			t.Error("no concurrent task within 10s: MaxWorkers leaked into RunIndexedN")
			once.Do(func() { close(release) })
		}
		inFlight.Add(-1)
		return i * 3
	})
	for i, v := range got {
		if v != i*3 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*3)
		}
	}
}

func TestRunIndexedBoundsConcurrency(t *testing.T) {
	old := MaxWorkers
	defer func() { MaxWorkers = old }()
	MaxWorkers = 3
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	RunIndexed(50, func(i int) struct{} {
		n := inFlight.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		inFlight.Add(-1)
		return struct{}{}
	})
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent tasks, want ≤ 3", p)
	}
}

// scenarioSnapshots runs four independent seeds through the pool and
// returns each run's full telemetry snapshot.
func scenarioSnapshots(t *testing.T, workers int) [][]byte {
	t.Helper()
	old := MaxWorkers
	MaxWorkers = workers
	defer func() { MaxWorkers = old }()
	seeds := []int64{11, 12, 13, 14}
	return RunIndexed(len(seeds), func(i int) []byte {
		cfg, gen := oversizedBI(1)
		run := Scenario{Name: "par-det", Seed: seeds[i], Orig: cfg, Gen: gen,
			PreDays: 1, KwoDays: 1}.Execute()
		var buf bytes.Buffer
		if err := run.Engine.Store().WriteSnapshot(&buf); err != nil {
			t.Error(err)
		}
		return buf.Bytes()
	})
}

// The load-bearing promise of the parallel runner: per-seed results are
// byte-identical to the sequential run — parallelism changes wall-clock
// time, never output.
func TestParallelScenariosByteIdenticalToSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario simulation in -short mode")
	}
	seq := scenarioSnapshots(t, 1)
	par := scenarioSnapshots(t, runtime.GOMAXPROCS(0))
	for i := range seq {
		if !bytes.Equal(seq[i], par[i]) {
			t.Fatalf("seed index %d: parallel snapshot (%d bytes) differs from sequential (%d bytes)",
				i, len(par[i]), len(seq[i]))
		}
	}
}
