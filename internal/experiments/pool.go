package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a persistent bounded worker pool for index fan-outs: the same
// contract as RunIndexedN — fn(0), …, fn(n-1) evaluated across at most
// Workers() goroutines, results deterministic because each index writes
// only its own slot — but the goroutines are created once and reused
// across rounds instead of being respawned per call. A fleet running
// thousands of lock-step epochs pays the spawn cost once, keeps worker
// stacks warm, and lets callers pin per-worker scratch to the worker
// index RunWorkers exposes.
//
// A Pool is owned by a single driving goroutine: Run, RunWorkers and
// Close must not be called concurrently with each other. The fn
// callbacks themselves run concurrently on the workers, exactly as with
// RunIndexedN.
type Pool struct {
	workers int
	rounds  []chan *poolRound
	closed  bool
}

// poolRound is one fan-out: workers claim indices from next until n is
// exhausted, then check in on wg.
type poolRound struct {
	n    int
	fn   func(worker, i int)
	next atomic.Int64
	wg   sync.WaitGroup
}

// NewPool starts a pool of long-lived workers; workers <= 0 means one
// per CPU. Idle workers block on their round channel and cost nothing.
// Call Close when the pool's owner is done with it; a closed pool
// degrades to inline execution rather than erroring, so owners that
// outlive their hot loop (a Fleet kept alive for ops scrapes) stay
// usable.
func NewPool(workers int) *Pool {
	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: w, rounds: make([]chan *poolRound, w)}
	for k := range p.rounds {
		ch := make(chan *poolRound, 1)
		p.rounds[k] = ch
		worker := k
		go func() {
			for r := range ch {
				for {
					i := int(r.next.Add(1)) - 1
					if i >= r.n {
						break
					}
					r.fn(worker, i)
				}
				r.wg.Done()
			}
		}()
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Run evaluates fn(0), …, fn(n-1) across the pool and returns when all
// calls have completed. Results are index-deterministic: parallelism
// changes wall-clock time, never which fn call handles which index.
func (p *Pool) Run(n int, fn func(i int)) {
	p.RunWorkers(n, func(_, i int) { fn(i) })
}

// RunWorkers is Run with the worker index (0 … Workers()-1) passed to
// fn, so callers can reuse per-worker scratch across indices without
// locking: at most one index runs on a given worker at a time.
func (p *Pool) RunWorkers(n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.closed || p.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	r := &poolRound{n: n, fn: fn}
	r.wg.Add(w)
	for k := 0; k < w; k++ {
		p.rounds[k] <- r
	}
	r.wg.Wait()
}

// Close releases the worker goroutines. Close is idempotent; Run and
// RunWorkers on a closed pool execute inline on the calling goroutine.
func (p *Pool) Close() {
	if p == nil || p.closed {
		return
	}
	p.closed = true
	for _, ch := range p.rounds {
		close(ch)
	}
}
