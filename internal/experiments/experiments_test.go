package experiments

import (
	"strings"
	"testing"
)

// The experiment harnesses are the reproduction's deliverable: these
// tests assert the paper's qualitative claims (who wins, rough factors,
// monotonicity), not the absolute production numbers.

func TestFig4aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day simulation")
	}
	res := Fig4a(1)
	if len(res.Rows) != 14 {
		t.Fatalf("rows = %d, want 14", len(res.Rows))
	}
	t.Logf("fig4a: pre %.1f → kwo %.1f (−%.1f%%), p99 %.0fs → %.0fs",
		res.PreAvgDaily, res.KwoAvgDaily, res.ReductionPct, res.PreP99Secs, res.KwoP99Secs)
	// Paper: −59.7% on the unpredictable workload. Accept a generous
	// band around it; the substrate and workload differ.
	if res.ReductionPct < 30 || res.ReductionPct > 80 {
		t.Fatalf("reduction %.1f%% outside [30, 80] band (paper: 59.7%%)", res.ReductionPct)
	}
	// Paper: "no noticeable latency changes".
	if res.KwoP99Secs > 1.8*res.PreP99Secs {
		t.Fatalf("p99 noticeably degraded: %.0fs → %.0fs", res.PreP99Secs, res.KwoP99Secs)
	}
	if !strings.Contains(res.String(), "with-KWO") || !strings.Contains(res.CSV(), "with_kwo") {
		t.Fatal("rendering broken")
	}
}

func TestFig4bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day simulation")
	}
	res := Fig4b(1)
	t.Logf("fig4b: pre %.1f → kwo %.1f (−%.1f%%), p99 %.0fs → %.0fs",
		res.PreAvgDaily, res.KwoAvgDaily, res.ReductionPct, res.PreP99Secs, res.KwoP99Secs)
	// Paper: −13.2% on the predictable workload — modest but real.
	if res.ReductionPct < 5 || res.ReductionPct > 40 {
		t.Fatalf("reduction %.1f%% outside [5, 40] band (paper: 13.2%%)", res.ReductionPct)
	}
	// Predictable workload has much steadier pre-KWO usage than 4a:
	// assert low variance across pre days.
	var lo, hi = res.Rows[0].Credits, res.Rows[0].Credits
	for _, r := range res.Rows[:7] {
		if r.Credits < lo {
			lo = r.Credits
		}
		if r.Credits > hi {
			hi = r.Credits
		}
	}
	if hi > 1.2*lo {
		t.Fatalf("pre-KWO ETL usage not steady: min %.1f max %.1f", lo, hi)
	}
	// Paper: p99 "interestingly lower with KWO than before".
	if res.KwoP99Secs > 1.15*res.PreP99Secs {
		t.Fatalf("ETL p99 degraded: %.0fs → %.0fs", res.PreP99Secs, res.KwoP99Secs)
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day simulation")
	}
	res := Fig5(1)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		t.Logf("fig5 %s: actual %.2f est %.2f err %.2f%%", r.Warehouse, r.Actual, r.Estimated, r.RelErrPct)
	}
	// Normal warehouses: accurate estimates (paper: 0.67–4.09%).
	for _, i := range []int{0, 1, 3} {
		if res.Rows[i].RelErrPct > 10 {
			t.Fatalf("%s rel err %.1f%% > 10%%", res.Rows[i].Warehouse, res.Rows[i].RelErrPct)
		}
	}
	// The rarely-used warehouse must be the low-spend outlier with the
	// largest relative error (paper: 20.9%).
	w3 := res.Rows[2]
	for _, i := range []int{0, 1, 3} {
		if w3.Actual >= res.Rows[i].Actual {
			t.Fatalf("Warehouse3 not the low-spend one")
		}
		if w3.RelErrPct < res.Rows[i].RelErrPct {
			t.Fatalf("Warehouse3 error %.1f%% not the largest", w3.RelErrPct)
		}
	}
	if !strings.Contains(res.CSV(), "rel_err_pct") {
		t.Fatal("CSV broken")
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day simulation")
	}
	res := Fig6(1)
	if len(res.Rows) != 24 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	t.Logf("fig6: actual %.2f overhead %.4f (%.2f%%) savings %.2f cv %.3f",
		res.TotalActual, res.TotalOverhead, res.OverheadPctOfActual, res.TotalSavings, res.WithoutKeeboCV)
	// Paper: overhead "negligibly small".
	if res.OverheadPctOfActual > 3 {
		t.Fatalf("overhead %.2f%% of actual — not negligible", res.OverheadPctOfActual)
	}
	// Paper: savings significantly greater than overhead.
	if res.TotalSavings < 20*res.TotalOverhead {
		t.Fatalf("savings %.2f not ≫ overhead %.3f", res.TotalSavings, res.TotalOverhead)
	}
	// Paper: actual + savings nearly identical over hours (static ETL).
	if res.WithoutKeeboCV > 0.25 {
		t.Fatalf("actual+savings CV %.3f — not steady", res.WithoutKeeboCV)
	}
}

func TestFig7ParetoShape(t *testing.T) {
	if testing.Short() {
		t.Skip("five multi-day simulations")
	}
	res := Fig7(1)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		t.Logf("fig7 %d %s: %.2f credits/day, avg %.2fs", int(r.Slider), r.Slider, r.Credits, r.AvgLatency)
	}
	// Cost must (weakly) decrease toward Lowest Cost; small noise
	// tolerated at adjacent positions.
	for i := 1; i < 5; i++ {
		if res.Rows[i].Credits > res.Rows[i-1].Credits*1.10 {
			t.Fatalf("cost not decreasing: pos %d %.1f → pos %d %.1f",
				i, res.Rows[i-1].Credits, i+1, res.Rows[i].Credits)
		}
	}
	// Endpoints must differ strongly in both dimensions.
	if res.Rows[4].Credits > 0.5*res.Rows[0].Credits {
		t.Fatalf("Lowest Cost (%.1f) not well below Best Performance (%.1f)",
			res.Rows[4].Credits, res.Rows[0].Credits)
	}
	if res.Rows[4].AvgLatency < 1.5*res.Rows[0].AvgLatency {
		t.Fatalf("latency trade-off missing: %.2fs vs %.2fs",
			res.Rows[0].AvgLatency, res.Rows[4].AvgLatency)
	}
	// Latency weakly increases toward Lowest Cost.
	for i := 1; i < 5; i++ {
		if res.Rows[i].AvgLatency < res.Rows[i-1].AvgLatency*0.80 {
			t.Fatalf("latency not increasing: pos %d %.2fs → pos %d %.2fs",
				i, res.Rows[i-1].AvgLatency, i+1, res.Rows[i].AvgLatency)
		}
	}
}

func TestOnboardingRamp(t *testing.T) {
	if testing.Short() {
		t.Skip("12-day simulation")
	}
	res := Onboarding(1)
	t.Logf("onboarding: eventual %.1f%%, 50/70/95 at %d/%d/%d h (paper 20/43/83)",
		res.EventualPct, res.HoursTo50, res.HoursTo70, res.HoursTo95)
	if res.EventualPct < 20 {
		t.Fatalf("eventual savings %.1f%% too small", res.EventualPct)
	}
	// The ramp is gradual and ordered: savings accrue over days, not
	// minutes, per the paper's 20/43/83-hour milestones.
	if !(res.HoursTo50 <= res.HoursTo70 && res.HoursTo70 <= res.HoursTo95) {
		t.Fatalf("milestones not ordered: %d/%d/%d", res.HoursTo50, res.HoursTo70, res.HoursTo95)
	}
	if res.HoursTo95 < 24 {
		t.Fatalf("95%% of savings after only %d hours — ramp too abrupt (paper: 83h)", res.HoursTo95)
	}
	if res.HoursTo50 > 48 {
		t.Fatalf("50%% of savings took %d hours — ramp too slow (paper: 20h)", res.HoursTo50)
	}
}

func TestSavingsBand(t *testing.T) {
	if testing.Short() {
		t.Skip("four multi-day simulations")
	}
	res := SavingsBand(1)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]SavingsBandRow{}
	for _, r := range res.Rows {
		byName[r.Archetype] = r
		t.Logf("band %s: %.1f%%", r.Archetype, r.SavingsPct)
		// C1: never meaningfully worse than doing nothing.
		if r.SavingsPct < -5 {
			t.Fatalf("%s: KWO increased cost by %.1f%%", r.Archetype, -r.SavingsPct)
		}
	}
	// The oversized warehouse saves much more than the right-sized one
	// — the paper's "depending on their workload, customers observe
	// 20%–70% savings".
	if byName["oversized-bi"].SavingsPct < byName["rightsized-etl"].SavingsPct+15 {
		t.Fatalf("oversized (%.1f%%) not clearly above right-sized (%.1f%%)",
			byName["oversized-bi"].SavingsPct, byName["rightsized-etl"].SavingsPct)
	}
	if byName["oversized-bi"].SavingsPct < 20 {
		t.Fatalf("best archetype saves only %.1f%%", byName["oversized-bi"].SavingsPct)
	}
}

func TestAblationCostModel(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day simulation")
	}
	res := AblationCostModel(1)
	t.Logf("cost-model ablation: trained %.1f%% vs default %.1f%%", res.TrainedErrPct, res.DefaultErrPct)
	if !res.TrainedIsCloser {
		t.Fatalf("learned parameter estimation did not improve accuracy: %+v", res)
	}
	if res.TrainedErrPct > 8 {
		t.Fatalf("trained estimate err %.1f%% too large", res.TrainedErrPct)
	}
	if res.DefaultErrPct < 2*res.TrainedErrPct {
		t.Fatalf("ablation effect too weak: default %.1f%% vs trained %.1f%%",
			res.DefaultErrPct, res.TrainedErrPct)
	}
}

func TestAblationBackoff(t *testing.T) {
	if testing.Short() {
		t.Skip("two multi-day simulations")
	}
	res := AblationBackoff(1)
	t.Logf("backoff ablation: reverts=%d p99 with %.1fs / without %.1fs",
		res.WithReverts, res.P99With, res.P99Without)
	if res.WithReverts == 0 {
		t.Fatal("self-correcting arm never reverted under the spike")
	}
	if res.P99With <= 0 || res.P99Without <= 0 {
		t.Fatal("missing post-spike latency data")
	}
}

func TestValueOfLearning(t *testing.T) {
	if testing.Short() {
		t.Skip("four multi-day simulations")
	}
	res := ValueOfLearning(1)
	byName := map[string]ValueOfLearningRow{}
	for _, r := range res.Rows {
		byName[r.Controller] = r
		t.Logf("vol %s: %.1f credits/day, %.1f%% savings, p99 %.1fs",
			r.Controller, r.DailyCred, r.SavingsPct, r.P99Secs)
	}
	// KWO saves substantially more than doing nothing or the static
	// rule of thumb.
	if byName["kwo"].SavingsPct < 30 {
		t.Fatalf("KWO savings %.1f%% too small", byName["kwo"].SavingsPct)
	}
	// The reactive controller may save more, but only by sacrificing
	// latency: KWO must Pareto-dominate it on performance.
	if byName["reactive"].P99Secs < byName["kwo"].P99Secs {
		t.Fatalf("reactive p99 (%.1fs) better than KWO (%.1fs) — unexpected",
			byName["reactive"].P99Secs, byName["kwo"].P99Secs)
	}
	if byName["kwo"].P99Secs > 4*byName["static"].P99Secs {
		t.Fatalf("KWO p99 %.1fs too far above static %.1fs",
			byName["kwo"].P99Secs, byName["static"].P99Secs)
	}
}
