//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in; the
// allocation-regression tests skip under -race because instrumentation
// changes allocation accounting.
const raceEnabled = true
