package experiments

import (
	"fmt"
	"strings"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/core"
	"kwo/internal/policy"
	"kwo/internal/workload"
)

// OnboardingResult reproduces the paper's onboarding claim (§1, §9):
// "customers reach 50%, 70%, and 95% of their eventual savings after
// only 20, 43, and 83 hours" of using Keebo.
type OnboardingResult struct {
	// SavingsPct[h] is the savings percentage over the trailing 24
	// hours ending h hours after onboarding (h starts at 1).
	SavingsPct []float64
	// EventualPct is the steady-state savings percentage (final day).
	EventualPct float64
	// HoursTo50/70/95 are the measured ramp milestones; the paper's
	// values are 20, 43 and 83 hours.
	HoursTo50 int
	HoursTo70 int
	HoursTo95 int
}

// String renders the ramp summary.
func (o OnboardingResult) String() string {
	var b strings.Builder
	b.WriteString("Onboarding ramp — hours to reach fraction of eventual savings\n")
	fmt.Fprintf(&b, "eventual savings: %.1f%%\n", o.EventualPct)
	fmt.Fprintf(&b, "hours to 50%%: %d  [paper: 20]\n", o.HoursTo50)
	fmt.Fprintf(&b, "hours to 70%%: %d  [paper: 43]\n", o.HoursTo70)
	fmt.Fprintf(&b, "hours to 95%%: %d  [paper: 83]\n", o.HoursTo95)
	return b.String()
}

// CSV renders the hourly ramp for plotting.
func (o OnboardingResult) CSV() string {
	var b strings.Builder
	b.WriteString("hours_since_onboarding,trailing_savings_pct\n")
	for i, p := range o.SavingsPct {
		fmt.Fprintf(&b, "%d,%.3f\n", i+1, p)
	}
	return b.String()
}

// Onboarding measures the savings ramp on a mixed workload. Savings at
// hour h are computed against the pre-KWO spend rate for the matching
// trailing window (same hours of day, one week earlier has the same
// weekday pattern; we use the pre period's average hourly rate by hour
// of day to normalize the diurnal cycle).
func Onboarding(seed int64) OnboardingResult {
	biPool, _, _ := workload.StandardPools()
	cfg := cdw.Config{
		Name: "MAIN_WH", Size: cdw.SizeLarge, MinClusters: 1, MaxClusters: 2,
		Policy: cdw.ScaleStandard, AutoSuspend: 10 * time.Minute, AutoResume: true,
	}
	// The canonical onboarding story: an overprovisioned dashboard
	// warehouse. (Minutes-long ETL tails mixed into the same warehouse
	// make p99-based pressure oscillate and are better served by their
	// own warehouse — see examples/multi-warehouse.)
	gen := workload.BI{Pool: biPool, PeakQPH: 50, WeekendFactor: 0.3}

	preDays, kwoDays := 7, 5
	opts := ExperimentOptions()
	// Slow the ramp to production-like pace: less offline training per
	// pass, so improvement accrues across retraining cycles.
	opts.PretrainSteps = 60
	run := Scenario{Name: "onboarding", Seed: seed, Orig: cfg, Gen: gen,
		PreDays: preDays, KwoDays: kwoDays,
		Settings: core.WarehouseSettings{Slider: policy.Balanced},
		Opts:     opts}.Execute()

	wh, _ := run.Acct.Warehouse(cfg.Name)
	now := run.Sched.Now()

	// Pre-KWO average spend by hour of day (over the full pre week).
	preByHour := make([]float64, 24)
	for d := 0; d < preDays; d++ {
		for h := 0; h < 24; h++ {
			s := Epoch.Add(time.Duration(d*24+h) * time.Hour)
			preByHour[h] += wh.Meter().CreditsBetween(s, s.Add(time.Hour), now)
		}
	}
	for h := range preByHour {
		preByHour[h] /= float64(preDays)
	}

	totalHours := kwoDays * 24
	res := OnboardingResult{}
	for h := 1; h <= totalHours; h++ {
		// Trailing 24h window ending at attach + h hours. During the
		// first day the window reaches back into the pre-KWO period,
		// whose hours carry ~zero savings — exactly how a customer
		// watching a daily dashboard experiences the ramp.
		var actual, baseline float64
		for i := 0; i < 24; i++ {
			s := run.Attach.Add(time.Duration(h-24+i) * time.Hour)
			actual += wh.Meter().CreditsBetween(s, s.Add(time.Hour), now)
			baseline += preByHour[s.Hour()]
		}
		pct := 0.0
		if baseline > 0 {
			pct = 100 * (1 - actual/baseline)
		}
		if pct < 0 {
			pct = 0
		}
		res.SavingsPct = append(res.SavingsPct, pct)
	}
	// Eventual savings: the final 24h window.
	res.EventualPct = res.SavingsPct[len(res.SavingsPct)-1]
	// A milestone counts only when it is sustained for several hours —
	// a single lucky window is not "reaching" the savings level.
	find := func(frac float64) int {
		target := frac * res.EventualPct
		const sustain = 3
		run := 0
		for i, p := range res.SavingsPct {
			if p >= target {
				run++
				if run >= sustain {
					return i + 2 - sustain // hour the streak began
				}
			} else {
				run = 0
			}
		}
		return totalHours
	}
	res.HoursTo50 = find(0.50)
	res.HoursTo70 = find(0.70)
	res.HoursTo95 = find(0.95)
	return res
}

// SavingsBandRow is one workload archetype's outcome.
type SavingsBandRow struct {
	Archetype  string
	SavingsPct float64
	PreDaily   float64
	KwoDaily   float64
}

// SavingsBandResult reproduces the paper's headline claim that
// customers observe 20%–70% savings depending on their workload.
type SavingsBandResult struct {
	Rows []SavingsBandRow
}

// String renders the band summary.
func (s SavingsBandResult) String() string {
	var b strings.Builder
	b.WriteString("Savings band — reduction by workload archetype [paper: 20%–70%]\n")
	fmt.Fprintf(&b, "%-22s %-12s %-12s %s\n", "archetype", "pre/day", "with/day", "savings")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-22s %-12.2f %-12.2f %.1f%%\n", r.Archetype, r.PreDaily, r.KwoDaily, r.SavingsPct)
	}
	return b.String()
}

// CSV renders the rows.
func (s SavingsBandResult) CSV() string {
	var b strings.Builder
	b.WriteString("archetype,pre_daily,kwo_daily,savings_pct\n")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%s,%.4f,%.4f,%.2f\n", r.Archetype, r.PreDaily, r.KwoDaily, r.SavingsPct)
	}
	return b.String()
}

// SavingsBand runs four workload archetypes under Balanced settings.
func SavingsBand(seed int64) SavingsBandResult {
	biPool, etlPool, adhocPool := workload.StandardPools()
	type arch struct {
		name string
		cfg  cdw.Config
		gen  workload.Generator
	}
	archetypes := []arch{
		{
			name: "oversized-bi",
			cfg: cdw.Config{Name: "W", Size: cdw.SizeLarge, MinClusters: 1, MaxClusters: 1,
				AutoSuspend: 10 * time.Minute, AutoResume: true},
			gen: workload.BI{Pool: biPool, PeakQPH: 60, WeekendFactor: 0.3},
		},
		{
			name: "rightsized-etl",
			cfg: cdw.Config{Name: "W", Size: cdw.SizeSmall, MinClusters: 1, MaxClusters: 1,
				AutoSuspend: 10 * time.Minute, AutoResume: true},
			gen: workload.ETL{Pool: etlPool, Period: time.Hour, JobsPerBatch: 6, Jitter: 2 * time.Minute},
		},
		{
			name: "bursty-adhoc",
			cfg: cdw.Config{Name: "W", Size: cdw.SizeMedium, MinClusters: 1, MaxClusters: 2,
				AutoSuspend: 10 * time.Minute, AutoResume: true},
			gen: workload.AdHoc{Pool: adhocPool, BaseQPH: 14, DayVariance: 0.7,
				BurstsPerDay: 2, BurstQPH: 120, BurstLen: 20 * time.Minute},
		},
		{
			name: "overprovisioned-idle",
			cfg: cdw.Config{Name: "W", Size: cdw.SizeXLarge, MinClusters: 1, MaxClusters: 1,
				AutoSuspend: 30 * time.Minute, AutoResume: true},
			gen: workload.AdHoc{Pool: adhocPool, BaseQPH: 4, DayVariance: 0.4},
		},
	}
	rows := RunIndexed(len(archetypes), func(i int) SavingsBandRow {
		a := archetypes[i]
		run := Scenario{Name: "band-" + a.name, Seed: seed + int64(i),
			Orig: a.cfg, Gen: a.gen, PreDays: 3, KwoDays: 4}.Execute()
		pre := Mean(run.DailyCredits(0, 3))
		kwo := Mean(run.DailyCredits(4, 3)) // skip ramp day
		row := SavingsBandRow{Archetype: a.name, PreDaily: pre, KwoDaily: kwo}
		if pre > 0 {
			row.SavingsPct = 100 * (1 - kwo/pre)
		}
		return row
	})
	return SavingsBandResult{Rows: rows}
}
