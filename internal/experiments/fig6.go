package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/workload"
)

// Fig6Row is one hour of Figure 6: actual usage, KWO overhead, and
// estimated savings.
type Fig6Row struct {
	Hour             int
	ActualCredits    float64
	OverheadCredits  float64
	EstimatedSavings float64
}

// Fig6Result reproduces Figure 6: hourly actual credit usage (blue),
// KWO's own overhead (red, negligible), and estimated savings (green)
// for a warehouse with a static ETL workload. The paper highlights two
// properties: overhead ≪ savings, and actual + savings (the expected
// total without Keebo) is nearly constant hour over hour.
type Fig6Result struct {
	Rows []Fig6Row

	TotalActual   float64
	TotalOverhead float64
	TotalSavings  float64
	// OverheadPctOfActual should be well under 1%.
	OverheadPctOfActual float64
	// WithoutKeeboCV is the coefficient of variation of hourly
	// (actual + savings); small for the static workload.
	WithoutKeeboCV float64
}

// String renders the figure as a text table.
func (f Fig6Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 6 — hourly actual usage vs KWO overhead vs estimated savings\n")
	fmt.Fprintf(&b, "%-5s %-9s %-10s %s\n", "hour", "actual", "overhead", "est.savings")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-5d %-9.3f %-10.5f %.3f\n",
			r.Hour, r.ActualCredits, r.OverheadCredits, r.EstimatedSavings)
	}
	fmt.Fprintf(&b, "totals: actual %.2f, overhead %.4f (%.3f%% of actual), savings %.2f\n",
		f.TotalActual, f.TotalOverhead, f.OverheadPctOfActual, f.TotalSavings)
	fmt.Fprintf(&b, "hourly (actual+savings) coefficient of variation: %.3f\n", f.WithoutKeeboCV)
	return b.String()
}

// CSV renders the rows for plotting.
func (f Fig6Result) CSV() string {
	var b strings.Builder
	b.WriteString("hour,actual,overhead,estimated_savings\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%d,%.5f,%.6f,%.5f\n", r.Hour, r.ActualCredits, r.OverheadCredits, r.EstimatedSavings)
	}
	return b.String()
}

// Fig6 runs an ETL warehouse with KWO active and reports 24 hourly rows
// from the third with-KWO day (steady state).
func Fig6(seed int64) Fig6Result {
	_, etlPool, _ := workload.StandardPools()
	cfg := cdw.Config{
		Name: "ETL_WH", Size: cdw.SizeMedium, MinClusters: 1, MaxClusters: 1,
		Policy: cdw.ScaleStandard, AutoSuspend: 10 * time.Minute, AutoResume: true,
	}
	gen := workload.ETL{
		Pool: etlPool, Period: time.Hour, Offset: 5 * time.Minute,
		JobsPerBatch: 6, Jitter: 2 * time.Minute,
	}
	preDays, kwoDays := 2, 4
	run := Scenario{Name: "fig6", Seed: seed, Orig: cfg, Gen: gen,
		PreDays: preDays, KwoDays: kwoDays}.Execute()

	// Report the 24 hours of the third with-KWO day.
	dayStart := run.Attach.Add(2 * 24 * time.Hour)
	hours, err := run.Engine.HourlySeries(cfg.Name, dayStart, 24)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	res := Fig6Result{}
	var withoutKeebo []float64
	for i, h := range hours {
		res.Rows = append(res.Rows, Fig6Row{
			Hour:             i,
			ActualCredits:    h.ActualCredits,
			OverheadCredits:  h.OverheadCredits,
			EstimatedSavings: h.EstimatedSavings,
		})
		res.TotalActual += h.ActualCredits
		res.TotalOverhead += h.OverheadCredits
		res.TotalSavings += h.EstimatedSavings
		withoutKeebo = append(withoutKeebo, h.ActualCredits+h.EstimatedSavings)
	}
	if res.TotalActual > 0 {
		res.OverheadPctOfActual = 100 * res.TotalOverhead / res.TotalActual
	}
	mean := Mean(withoutKeebo)
	if mean > 0 {
		var ss float64
		for _, x := range withoutKeebo {
			ss += (x - mean) * (x - mean)
		}
		res.WithoutKeeboCV = math.Sqrt(ss/float64(len(withoutKeebo))) / mean
	}
	return res
}
