package simtest

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strconv"
	"testing"
)

var (
	seedFlag      = flag.Int64("seed", -1, "run only the scenario for this seed, verbosely")
	faultSeedFlag = flag.Int64("fault-seed", -1, "run only the fault-injection scenario for this seed, verbosely")
)

// soakMode reports whether the long-running soak mode is enabled via
// KWO_SIMTEST_SOAK. The value, when numeric, overrides the seed count.
func soakMode() (bool, int) {
	v := os.Getenv("KWO_SIMTEST_SOAK")
	if v == "" {
		return false, 0
	}
	if n, err := strconv.Atoi(v); err == nil && n > 0 {
		return true, n
	}
	return true, 64
}

// TestSim drives randomized end-to-end scenarios through the real engine
// over the cdw simulator and checks cross-cutting invariants after every
// simulated event. Every 8th seed is run twice to assert determinism.
func TestSim(t *testing.T) {
	if *seedFlag >= 0 {
		sc := GenerateScenario(*seedFlag, os.Getenv("KWO_SIMTEST_SOAK") != "")
		t.Logf("scenario: %+v", sc)
		for _, f := range sc.Faults {
			t.Logf("fault: %s", f.describe())
		}
		res := RunScenario(sc)
		t.Logf("steps=%d scheduled=%d completed=%d credits=%.4f audit=%d applied=%d invoices=%d",
			res.Steps, res.Scheduled, res.Completed, res.TotalCredits,
			res.AuditRows, res.AppliedActions, res.Invoices)
		if res.Failed() {
			t.Fatal(res.Report())
		}
		return
	}

	seeds := 500
	soak, n := soakMode()
	if soak {
		seeds = n
	}
	if testing.Short() && !soak {
		seeds = 120
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := GenerateScenario(seed, soak)
			res := RunScenario(sc)
			if res.Failed() {
				t.Fatal(res.Report())
			}
			if seed%8 == 0 {
				again := RunScenario(GenerateScenario(seed, soak))
				compareRuns(t, res, again)
			}
		})
	}
}

// TestSimFaults is the fault-injection sweep: the same end-to-end
// scenarios as TestSim, but with the account's API fault model installed
// — ALTER failures and lost acknowledgments, control-plane and
// billing-history outage windows, metering lag. On top of the regular
// invariants the harness asserts that no invoice is lost, no ingested
// billing hour is skipped, no operation takes effect twice, and that
// once the plan's recovery tail passes, the engine's expected
// configuration reconciles with reality. Every 4th seed runs twice to
// pin retry/backoff determinism.
func TestSimFaults(t *testing.T) {
	if *faultSeedFlag >= 0 {
		sc := GenerateFaultScenario(*faultSeedFlag, os.Getenv("KWO_SIMTEST_SOAK") != "")
		t.Logf("scenario: %+v", sc)
		t.Logf("fault plan: %s", sc.Plan.String())
		for _, f := range sc.Faults {
			t.Logf("fault: %s", f.describe())
		}
		res := RunScenario(sc)
		t.Logf("steps=%d credits=%.4f audit=%d applied=%d invoices=%d", res.Steps,
			res.TotalCredits, res.AuditRows, res.AppliedActions, res.Invoices)
		t.Logf("injected: %+v, actuator failure log: %d rows", res.FaultCounts, res.ActuatorFailures)
		if res.Failed() {
			t.Fatal(res.Report())
		}
		return
	}

	seeds := 160
	soak, n := soakMode()
	if soak {
		seeds = n
	}
	if testing.Short() && !soak {
		seeds = 100
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := GenerateFaultScenario(seed, soak)
			res := RunScenario(sc)
			if res.Failed() {
				t.Fatal(res.Report())
			}
			if seed%4 == 0 {
				again := RunScenario(GenerateFaultScenario(seed, soak))
				compareRuns(t, res, again)
			}
		})
	}
}

// compareRuns asserts the determinism fingerprint: the same seed must
// reproduce the identical simulation, byte for byte.
func compareRuns(t *testing.T, a, b *Result) {
	t.Helper()
	if b.Failed() {
		t.Fatalf("re-run failed where first run passed:\n%s", b.Report())
	}
	if a.Steps != b.Steps {
		t.Errorf("non-deterministic step count: %d vs %d", a.Steps, b.Steps)
	}
	if a.TotalCredits != b.TotalCredits {
		t.Errorf("non-deterministic credits: %.12f vs %.12f", a.TotalCredits, b.TotalCredits)
	}
	if a.AuditRows != b.AuditRows || a.AppliedActions != b.AppliedActions {
		t.Errorf("non-deterministic action trail: audit %d/%d applied %d/%d",
			a.AuditRows, b.AuditRows, a.AppliedActions, b.AppliedActions)
	}
	if a.Invoices != b.Invoices {
		t.Errorf("non-deterministic invoice count: %d vs %d", a.Invoices, b.Invoices)
	}
	if a.Scheduled != b.Scheduled || a.Completed != b.Completed {
		t.Errorf("non-deterministic workload: scheduled %d/%d completed %d/%d",
			a.Scheduled, b.Scheduled, a.Completed, b.Completed)
	}
	if !bytes.Equal(a.Snapshot, b.Snapshot) {
		t.Errorf("non-deterministic telemetry snapshot: %d vs %d bytes",
			len(a.Snapshot), len(b.Snapshot))
	}
	if a.FaultCounts != b.FaultCounts {
		t.Errorf("non-deterministic fault injection: %+v vs %+v", a.FaultCounts, b.FaultCounts)
	}
	if a.ActuatorFailures != b.ActuatorFailures {
		t.Errorf("non-deterministic failure log: %d vs %d rows", a.ActuatorFailures, b.ActuatorFailures)
	}
	if a.ObsEvents != b.ObsEvents {
		t.Errorf("non-deterministic trace-event count: %d vs %d", a.ObsEvents, b.ObsEvents)
	}
}
