package simtest

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"time"

	"kwo/internal/actuator"
	"kwo/internal/cdw"
	"kwo/internal/obs"
	"kwo/internal/policy"
	"kwo/internal/telemetry"
)

// closeEnough compares credits with a relative tolerance: the aggregates
// we cross-check sum the same float terms in different orders.
func closeEnough(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= 1e-9*scale
}

// ---------------------------------------------------------------------
// cdw.Listener: per-record checks, run on every emission.

// OnQuery implements cdw.Listener: every completed query must be
// internally consistent.
func (h *harness) OnQuery(r cdw.QueryRecord) {
	if r.StartTime.Before(r.SubmitTime) {
		h.failf(r.EndTime, "query %d started %s before it was submitted %s",
			r.QueryID, r.StartTime, r.SubmitTime)
	}
	if r.EndTime.Before(r.StartTime) {
		h.failf(r.EndTime, "query %d ended before it started", r.QueryID)
	}
	if r.QueueDuration != r.StartTime.Sub(r.SubmitTime) ||
		r.ExecDuration != r.EndTime.Sub(r.StartTime) {
		h.failf(r.EndTime, "query %d durations disagree with its timestamps", r.QueryID)
	}
	if !r.Size.Valid() || r.Clusters < 1 {
		h.failf(r.EndTime, "query %d ran on invalid capacity (size %v, %d clusters)",
			r.QueryID, r.Size, r.Clusters)
	}
}

// OnChange implements cdw.Listener: the audit log must never record a
// transition into an invalid configuration.
func (h *harness) OnChange(c cdw.ConfigChange) {
	h.logEvent(c.Time, fmt.Sprintf("config change by %s: %s", c.Actor, c.Statement))
	if err := c.After.Validate(); err != nil {
		h.failf(c.Time, "audit log records invalid configuration: %v", err)
	}
	if !c.After.AutoResume {
		h.autoResumeOn = false
	}
}

// OnWarehouseEvent implements cdw.Listener.
func (h *harness) OnWarehouseEvent(e cdw.WarehouseEvent) {
	h.logEvent(e.Time, fmt.Sprintf("%v (clusters=%d)", e.Kind, e.Clusters))
	switch e.Kind {
	case cdw.EventSuspend:
		if e.Clusters != 0 {
			h.failf(e.Time, "suspend event reports %d clusters still up", e.Clusters)
		}
	case cdw.EventResume, cdw.EventClusterStart:
		if e.Clusters < 1 {
			h.failf(e.Time, "%v event reports %d clusters", e.Kind, e.Clusters)
		}
	}
}

// ---------------------------------------------------------------------
// Cheap per-event state checks.

// cheapCheck runs after every scheduler step: O(1) structural state
// invariants of the warehouse.
func (h *harness) cheapCheck() {
	w := h.wh
	now := h.sched.Now()
	cfg := w.Config()
	if w.Running() {
		if w.ActiveClusters() < cfg.MinClusters {
			h.failf(now, "running with %d clusters, below MIN_CLUSTER_COUNT=%d",
				w.ActiveClusters(), cfg.MinClusters)
		}
		if nd := w.ActiveClusters() - w.DrainingClusters(); nd > cfg.MaxClusters {
			h.failf(now, "%d non-draining clusters exceed MAX_CLUSTER_COUNT=%d",
				nd, cfg.MaxClusters)
		}
	} else {
		if w.ActiveClusters() != 0 {
			h.failf(now, "suspended warehouse has %d clusters running", w.ActiveClusters())
		}
		if w.RunningQueries() != 0 {
			h.failf(now, "suspended warehouse has %d queries executing", w.RunningQueries())
		}
	}
	if w.QueueLength() > maxQueue {
		h.failf(now, "queue exploded past %d entries", maxQueue)
	}
}

// ---------------------------------------------------------------------
// Periodic expensive sweeps.

func (h *harness) sweep(now time.Time) {
	h.checkMeter(now)
	h.checkBillingRows(now)
	h.checkAudit(now)
	h.checkInvoices(now)
	h.checkEnforcementSLA(now)
	h.checkObsConsistency(now)
	h.checkRecorder(now)
}

// checkObsConsistency holds the observability layer to the engine's
// authoritative state: the event bus's cumulative per-kind counts (which
// survive ring wrap) and the metric registry must agree exactly with the
// actuator log, the pricing ledger, and the account's fault counters.
// Counter increments and event emissions are synchronous with the state
// changes they mirror, so equality must hold at every sweep, not just at
// the end of the run.
func (h *harness) checkObsConsistency(now time.Time) {
	if h.hub == nil {
		return
	}
	bus, reg := h.hub.Bus, h.hub.Registry
	check := func(what string, got uint64, want int) {
		if got != uint64(want) {
			h.failf(now, "obs: %s — observed %d, authoritative %d", what, got, want)
		}
	}
	checkSum := func(metric string, want int) {
		if got := reg.CounterSum(metric); got != float64(want) {
			h.failf(now, "obs: %s sums to %g, authoritative %d", metric, got, want)
		}
	}
	if h.eng != nil {
		applied := h.eng.Actuator().AppliedCount()
		check("action-applied events vs actuator applied log", bus.KindCount(obs.EventActionApplied), applied)
		checkSum(obs.MetricActionsApplied, applied)
		checkSum(obs.MetricActionFailures, h.eng.Actuator().FailureCount())
		invoices := len(h.eng.Ledger().Invoices())
		check("invoice events vs pricing ledger", bus.KindCount(obs.EventInvoice), invoices)
		checkSum(obs.MetricInvoices, invoices)
	}
	fc := h.acct.FaultCounts()
	faults := fc.AlterFailures + fc.AlterAckLosts + fc.BillingFailures
	check("fault-injected events vs account fault counters", bus.KindCount(obs.EventFaultInjected), faults)
	checkSum(obs.MetricFaultsInjected, faults)
	// Every emitted event increments kwo_obs_events_total{kind} once.
	if got := reg.CounterSum(obs.MetricEvents); got != float64(bus.Total()) {
		h.failf(now, "obs: %s sums to %g, event bus emitted %d", obs.MetricEvents, got, bus.Total())
	}
}

// checkRecorder samples the fleet-standard recorder and holds the
// time-series layer to exact conservation: a delta-sampled sum series,
// however many halving rounds it has been through, must total exactly
// the counter it was sampled from — downsampling is an aggregation,
// never an approximation. SLO evaluation over those series must be
// pure and keep burn inside [0, BurnCap] with pass ⇔ burn ≤ 1.
func (h *harness) checkRecorder(now time.Time) {
	if h.rec == nil {
		return
	}
	h.rec.Sample(now)
	reg := h.hub.Registry
	conserved := []struct{ series, metric string }{
		{obs.SeriesQueries, obs.MetricQueries},
		{obs.SeriesDecisionTicks, obs.MetricDecisionTicks},
		{obs.SeriesDegradedTicks, obs.MetricDegradedTicks},
		{obs.SeriesActionAttempts, obs.MetricActionAttempts},
	}
	for _, c := range conserved {
		s := h.rec.Series(c.series)
		total, ok := s.Total()
		if !ok {
			h.failf(now, "recorder series %s empty after sampling", c.series)
			continue
		}
		if want := reg.CounterSum(c.metric); total != want {
			h.failf(now, "recorder series %s totals %g after downsampling, registry %s says %g",
				c.series, total, c.metric, want)
		}
	}
	objectives := obs.SLOConfig{}.Objectives()
	verdicts := obs.Evaluate(objectives, h.rec.Series)
	again := obs.Evaluate(objectives, h.rec.Series)
	for i, v := range verdicts {
		if v.Burn < 0 || v.Burn > obs.BurnCap {
			h.failf(now, "slo %s burn %g outside [0, %g]", v.Objective, v.Burn, obs.BurnCap)
		}
		if v.Pass != (v.Burn <= 1) {
			h.failf(now, "slo %s pass=%t disagrees with burn %g", v.Objective, v.Pass, v.Burn)
		}
		if again[i] != v {
			h.failf(now, "slo evaluation is not pure: %+v then %+v", v, again[i])
		}
	}
}

// checkTelemetryIndexes cross-checks the telemetry log's query-path
// fast paths — the submit-order index behind SubmittedBetween and the
// prefix aggregates + quickselect percentiles behind Stats — against a
// naive recomputation from the raw end-time-ordered log. Both must be
// exactly equal (struct ==, not approximately): the indexes are pure
// accelerations, not approximations.
func (h *harness) checkTelemetryIndexes(now time.Time) {
	log := h.store.Log(h.name)
	if log == nil {
		return
	}
	far := now.Add(time.Hour)
	windows := [][2]time.Time{{h.start, far}}
	if n := len(log.Queries); n > 0 {
		mid := log.Queries[n/2].EndTime
		windows = append(windows, [2]time.Time{mid.Add(-time.Hour), mid})
	}
	for _, w := range windows {
		from, to := w[0], w[1]
		got := log.SubmittedBetween(from, to)
		want := naiveSubmittedBetween(log, from, to)
		if len(got) != len(want) {
			h.failf(now, "submit index returned %d records for [%v, %v), naive scan %d",
				len(got), from, to, len(want))
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				h.failf(now, "submit index record %d for [%v, %v) disagrees with naive stable sort",
					i, from, to)
				break
			}
		}
		if gs, ns := log.Stats(from, to), naiveWindowStats(log, from, to); gs != ns {
			h.failf(now, "indexed Stats for [%v, %v) disagrees with naive recomputation:\n  indexed: %+v\n  naive:   %+v",
				from, to, gs, ns)
		}
	}
}

// naiveSubmittedBetween is the pre-index implementation: scan the whole
// end-time-ordered log, then stable-sort the window by submit time.
func naiveSubmittedBetween(l *telemetry.WarehouseLog, from, to time.Time) []cdw.QueryRecord {
	var out []cdw.QueryRecord
	for _, r := range l.Queries {
		if !r.SubmitTime.Before(from) && r.SubmitTime.Before(to) {
			out = append(out, r)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].SubmitTime.Before(out[j].SubmitTime)
	})
	return out
}

// naiveWindowStats recomputes WindowStats for [from, to) from first
// principles: a full scan for the window, duration sums in integer
// arithmetic, and sort-based nearest-rank percentiles. Every field must
// match the indexed fast path bit for bit.
func naiveWindowStats(l *telemetry.WarehouseLog, from, to time.Time) telemetry.WindowStats {
	ws := telemetry.WindowStats{From: from, To: to}
	firstEnd := make(map[uint64]time.Time)
	for _, r := range l.Queries {
		if _, seen := firstEnd[r.TemplateHash]; !seen {
			firstEnd[r.TemplateHash] = r.EndTime
		}
	}
	var recs []cdw.QueryRecord
	for _, r := range l.Queries {
		if !r.EndTime.Before(from) && r.EndTime.Before(to) {
			recs = append(recs, r)
		}
	}
	n := len(recs)
	ws.Queries = n
	if hours := to.Sub(from).Hours(); hours > 0 {
		ws.QPH = float64(n) / hours
	}
	if n == 0 {
		return ws
	}
	var lat, queue, exec time.Duration
	var clusters, size int64
	lats := make([]time.Duration, 0, n)
	queues := make([]time.Duration, 0, n)
	seen := make(map[uint64]struct{})
	for _, r := range recs {
		lat += r.TotalDuration()
		queue += r.QueueDuration
		exec += r.ExecDuration
		ws.BytesTotal += r.BytesScanned
		clusters += int64(r.Clusters)
		size += int64(r.Size)
		if r.ColdRead {
			ws.ColdReads++
		}
		if r.Resumed {
			ws.Resumes++
		}
		lats = append(lats, r.TotalDuration())
		queues = append(queues, r.QueueDuration)
		if _, ok := seen[r.TemplateHash]; !ok {
			seen[r.TemplateHash] = struct{}{}
			if !firstEnd[r.TemplateHash].Before(from) {
				ws.NewTemplates++
			}
		}
		if r.Clusters > ws.MaxClusters {
			ws.MaxClusters = r.Clusters
		}
	}
	ws.AvgLatency = lat / time.Duration(n)
	ws.AvgQueue = queue / time.Duration(n)
	ws.AvgExec = exec / time.Duration(n)
	ws.AvgClusters = float64(clusters) / float64(n)
	ws.AvgSize = float64(size) / float64(n)
	ws.DistinctTemplates = len(seen)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	sort.Slice(queues, func(i, j int) bool { return queues[i] < queues[j] })
	rank := func(p float64) int {
		r := int(math.Ceil(p*float64(n))) - 1
		if r < 0 {
			r = 0
		}
		if r >= n {
			r = n - 1
		}
		return r
	}
	ws.P50Latency = lats[rank(0.50)]
	ws.P95Latency = lats[rank(0.95)]
	ws.P99Latency = lats[rank(0.99)]
	ws.P99Queue = queues[rank(0.99)]
	return ws
}

// checkMeter is billing conservation: the per-segment ledger, the hourly
// aggregation, and the range query must all describe the same credits,
// and every cluster run must bill at least the backend's per-start
// minimum with no overlapping intervals.
func (h *harness) checkMeter(now time.Time) {
	m := h.wh.Meter()
	rule := h.acct.Backend().Billing()
	total := m.TotalCredits(now)
	if total+1e-9 < h.prevCredits {
		h.failf(now, "total credits decreased: %.9f -> %.9f", h.prevCredits, total)
	}
	h.prevCredits = total

	// far reaches past every pending per-start minimum and quantum
	// round-up so open segments are fully covered by the bucketed views.
	far := now.Add(2*rule.MinPerStart + 2*rule.Quantum + time.Hour)
	var sumHourly float64
	for _, r := range m.Hourly(h.start, far, now) {
		if !r.HourStart.Equal(r.HourStart.Truncate(time.Hour)) {
			h.failf(now, "hourly row not hour-aligned: %v", r.HourStart)
		}
		if r.Credits < 0 {
			h.failf(now, "negative hourly credits %v at %v", r.Credits, r.HourStart)
		}
		sumHourly += r.Credits
	}
	if !closeEnough(sumHourly, total) {
		h.failf(now, "billing conservation: sum(hourly)=%.9f != total=%.9f", sumHourly, total)
	}
	if cb := m.CreditsBetween(h.start, far, now); !closeEnough(cb, total) {
		h.failf(now, "billing conservation: CreditsBetween=%.9f != total=%.9f", cb, total)
	}

	// Per-cluster-run segment geometry. Cluster IDs are never reused, so
	// grouping by ID reconstructs runs.
	segs := m.Segments(now)
	runs := make(map[int][]cdw.MeterSegment)
	var ids []int
	for _, s := range segs {
		if _, seen := runs[s.ClusterID]; !seen {
			ids = append(ids, s.ClusterID)
		}
		runs[s.ClusterID] = append(runs[s.ClusterID], s)
	}
	const slack = time.Microsecond
	for _, id := range ids {
		run := runs[id]
		if !run[0].MinimumApplied {
			h.failf(now, "cluster %d: run-opening segment lacks the run-start marker", id)
		}
		var billed time.Duration
		for i, s := range run {
			end := s.BilledEnd()
			if end.Before(s.Start) {
				h.failf(now, "cluster %d: segment billed end precedes start", id)
			}
			billed += end.Sub(s.Start)
			if i > 0 {
				prevEnd := run[i-1].BilledEnd()
				if s.Start.Add(slack).Before(prevEnd) {
					h.failf(now, "cluster %d: billed intervals overlap (segment %d starts %s before previous ends %s) — double billing",
						id, i, s.Start, prevEnd)
				}
			}
		}
		if rule.MinPerStart > 0 && billed+slack < rule.MinPerStart {
			h.failf(now, "cluster %d: run billed only %s, under the %s per-start minimum",
				id, billed, rule.MinPerStart)
		}
	}
}

// checkBillingRows re-derives every newly ingested billing-history row
// from the meter: the engine's periodic pull must agree with the ledger.
func (h *harness) checkBillingRows(now time.Time) {
	log := h.store.Log(h.name)
	if log == nil {
		return
	}
	rows := log.Billing
	newRows := rows[h.billingIdx:]
	h.billingIdx = len(rows)
	// Bound per-sweep recompute work; the first pull ingests a long
	// zero-credit history tail that is cheap to spot-check.
	if len(newRows) > 16 {
		for _, r := range newRows[:len(newRows)-16] {
			if r.Credits < 0 {
				h.failf(now, "ingested billing row at %v has negative credits", r.HourStart)
			}
		}
		newRows = newRows[len(newRows)-16:]
	}
	m := h.wh.Meter()
	for _, r := range newRows {
		want := m.Hourly(r.HourStart, r.HourStart.Add(time.Hour), now)
		if len(want) != 1 {
			h.failf(now, "meter returned %d rows for a single hour", len(want))
			continue
		}
		if !closeEnough(r.Credits, want[0].Credits) {
			h.failf(now, "billing history row %v: ingested %.9f credits, meter says %.9f",
				r.HourStart, r.Credits, want[0].Credits)
		}
	}
}

// checkAudit pairs every KWO-actor audit row with the actuator attempt
// that produced it and holds each reason class to its own rule:
// discretionary changes and restores must respect active prohibitions
// and enforcement bounds; enforcement itself must land on a compliant
// configuration.
//
// Under injected API faults an audit row may also come from an
// acknowledged-lost attempt — the change landed but the call returned an
// error, so the matching record is not Applied. Attempts are therefore
// matched by timestamp and statement, and a second invariant rides
// along: because retries reissue the exact absolute alteration, one
// logical operation (OpID) may change the configuration at most once,
// no matter how many of its attempts reached the warehouse.
func (h *harness) checkAudit(now time.Time) {
	if h.eng == nil {
		return
	}
	changes := h.acct.Changes()
	recs := h.eng.Actuator().Log()
	ai := h.actIdx
	for _, c := range changes[h.auditIdx:] {
		if c.Actor != actuator.Actor {
			continue
		}
		// The audit log and the attempt log are both chronological, and
		// every KWO audit row was written by exactly one attempt (applied,
		// or applied-with-lost-ack); records that never reached the API
		// (OpID 0) or failed before applying match no row and are skipped.
		for ai < len(recs) && !(recs[ai].OpID != 0 && recs[ai].Time.Equal(c.Time) &&
			recs[ai].Statement == c.Statement) {
			ai++
		}
		if ai >= len(recs) {
			h.failf(now, "KWO audit row at %v (%s) has no actuator record", c.Time, c.Statement)
			break
		}
		rec := recs[ai]
		ai++
		if c.Before != c.After {
			if h.effectiveOps == nil {
				h.effectiveOps = make(map[uint64]int)
			}
			h.effectiveOps[rec.OpID]++
			if h.effectiveOps[rec.OpID] > 1 {
				h.failf(c.Time, "operation %d changed the configuration twice (attempt %d, %s) — retry was not idempotent",
					rec.OpID, rec.Attempt, c.Statement)
			}
		}
		rules := h.rulesAt(c.Time)
		switch rec.Reason {
		case "smart-model", "revert", "constraint-restore":
			h.checkChangeRespectsRules(rules, c, rec.Reason)
		case "constraint":
			if req := rules.Required(c.Time, c.After); !req.IsZero() {
				h.failf(c.Time, "constraint enforcement left configuration non-compliant (still requires %s)",
					req.String())
			}
		default:
			h.failf(c.Time, "KWO change with unknown reason %q", rec.Reason)
		}
	}
	h.auditIdx = len(changes)
	h.actIdx = ai
}

// checkChangeRespectsRules is an independent re-derivation of
// policy.Constraints.Allows over an audit row: no discretionary KWO
// change may violate a prohibition or enforcement bound active at its
// timestamp.
func (h *harness) checkChangeRespectsRules(rules policy.Constraints, c cdw.ConfigChange, reason string) {
	for _, r := range rules {
		if !r.ActiveAt(c.Time) {
			continue
		}
		bad := func(msg string) {
			h.failf(c.Time, "%s change violates rule %q: %s (%s)", reason, r.Name, msg, c.Statement)
		}
		if r.NoDownsize && c.After.Size < c.Before.Size {
			bad("downsized during a no-downsize window")
		}
		if r.NoUpsize && c.After.Size > c.Before.Size {
			bad("upsized during a no-upsize window")
		}
		if r.NoSuspendChange && c.After.AutoSuspend != c.Before.AutoSuspend {
			bad("changed auto-suspend during a no-suspend-change window")
		}
		if r.NoClusterChange && (c.After.MinClusters != c.Before.MinClusters ||
			c.After.MaxClusters != c.Before.MaxClusters) {
			bad("changed cluster bounds during a no-cluster-change window")
		}
		if r.MinSize != nil && c.After.Size < *r.MinSize {
			bad("landed below the enforced minimum size")
		}
		if r.MaxSize != nil && c.After.Size > *r.MaxSize {
			bad("landed above the enforced maximum size")
		}
		if r.MinClusters != nil && c.After.MaxClusters < *r.MinClusters {
			bad("landed below the enforced cluster minimum")
		}
		if r.EnforceSize != nil && c.After.Size != *r.EnforceSize {
			bad("landed off the enforced size")
		}
	}
}

// checkInvoices validates value-based pricing: internal consistency,
// actuals that match the meter, and billing periods that tile the time
// axis with no gaps or overlaps.
func (h *harness) checkInvoices(now time.Time) {
	if h.eng == nil {
		return
	}
	invs := h.eng.Ledger().Invoices()
	m := h.wh.Meter()
	for i := h.invoiceIdx; i < len(invs); i++ {
		inv := invs[i]
		if err := inv.Validate(); err != nil {
			h.failf(inv.To, "invoice invalid: %v", err)
		}
		if actual := m.CreditsBetween(inv.From, inv.To, now); !closeEnough(actual, inv.ActualCredits) {
			h.failf(inv.To, "invoice actual %.9f disagrees with meter %.9f for [%v, %v)",
				inv.ActualCredits, actual, inv.From, inv.To)
		}
		if i == 0 && !inv.From.Equal(h.attachAt) {
			h.failf(inv.To, "first invoice starts %v, but the engine attached at %v", inv.From, h.attachAt)
		}
		if i > 0 && !inv.From.Equal(invs[i-1].To) {
			h.failf(inv.To, "billing periods do not tile: invoice %d starts %v, previous ended %v",
				i, inv.From, invs[i-1].To)
		}
		if d := inv.To.Sub(inv.From); d != h.sc.Opts.BillEvery {
			h.failf(inv.To, "billing period %v is not BillEvery=%v", d, h.sc.Opts.BillEvery)
		}
	}
	h.invoiceIdx = len(invs)
}

// checkEnforcementSLA asserts that while the engine is attached, started
// and not externally paused, an active enforcement window never leaves
// the configuration non-compliant for longer than a few decision ticks.
func (h *harness) checkEnforcementSLA(now time.Time) {
	grace := 3*h.sc.Opts.DecideEvery + 2*h.sc.CheckEvery
	sm := h.model()
	if sm == nil || !h.engineStarted || now.Before(h.attachAt.Add(h.sc.Opts.DecideEvery)) ||
		sm.Paused() {
		h.nonCompliantSince = time.Time{}
		return
	}
	req := h.rulesAt(now).Required(now, h.wh.Config())
	if req.IsZero() {
		h.nonCompliantSince = time.Time{}
		return
	}
	if h.nonCompliantSince.IsZero() {
		h.nonCompliantSince = now
		return
	}
	// An active ALTER outage excuses non-compliance: enforcement is
	// reissued every tick but cannot land while the control plane is
	// down, so the SLA clock restarts when an outage overlapping the
	// non-compliant span ends.
	if p := h.sc.Plan; p != nil {
		for _, w := range p.AlterOutages {
			if w.From.Before(now) && w.To.After(h.nonCompliantSince) {
				since := w.To
				if since.After(now) {
					since = now
				}
				h.nonCompliantSince = since
			}
		}
	}
	if now.Sub(h.nonCompliantSince) > grace {
		h.failf(now, "enforcement SLA: configuration non-compliant since %v (still requires %s)",
			h.nonCompliantSince.Format("Mon 15:04:05"), req.String())
	}
}

// ---------------------------------------------------------------------
// End-of-run checks.

func (h *harness) finalChecks(horizon time.Time) {
	h.sweep(horizon)
	h.checkTelemetryIndexes(horizon)

	w := h.wh
	if w.QueueLength() != 0 || w.RunningQueries() != 0 {
		h.failf(horizon, "queue did not drain: %d queued, %d executing after %s of drain",
			w.QueueLength(), w.RunningQueries(), h.sc.Drain)
	}

	_, _, _, completed := w.Stats()
	rejected := h.scheduled - completed
	if rejected < 0 {
		h.failf(horizon, "more queries completed (%d) than were scheduled (%d)",
			completed, h.scheduled)
	}
	if h.autoResumeOn && rejected > 0 {
		h.failf(horizon, "%d queries rejected although auto-resume stayed enabled", rejected)
	}

	// No lost invoices: the bill loop fires every BillEvery from attach
	// until the engine stops, and every firing must close its period with
	// an invoice — even before the cost model has trained (zero savings)
	// and even when pulls or actions were failing. The schedule alone
	// predicts the count.
	if h.eng != nil && h.engineStarted {
		want := 0
		for t := h.attachAt.Add(h.sc.Opts.BillEvery); t.Before(h.end); t = t.Add(h.sc.Opts.BillEvery) {
			want++
		}
		if got := len(h.eng.Ledger().Invoices()); got != want {
			h.failf(horizon, "lost invoice(s): %d issued, the billing schedule predicts %d", got, want)
		}
	}

	// Billing ingestion is gapless: rows land in strict one-hour steps,
	// so a lagging or failing metering view may delay hours but never
	// lose them (the pull cursor only ever advances to the watermark).
	if log := h.store.Log(h.name); log != nil {
		for i := 1; i < len(log.Billing); i++ {
			if d := log.Billing[i].HourStart.Sub(log.Billing[i-1].HourStart); d != time.Hour {
				h.failf(horizon, "billing history gap: row %d at %s follows row %d at %s",
					i, log.Billing[i].HourStart.Format("Mon 15:04"),
					i-1, log.Billing[i-1].HourStart.Format("Mon 15:04"))
				break
			}
		}
	}

	// Reconciliation converges: after the fault plan's recovery tail
	// (no injected ALTER faults in the last two hours of the run), the
	// model's expected configuration must equal reality. Skipped while
	// paused — reconciliation is deliberately suspended when an external
	// change is in force.
	if sm := h.model(); sm != nil && h.engineStarted && !sm.Paused() {
		if cur := h.wh.Config(); sm.Expected() != cur {
			h.failf(horizon, "expected configuration did not reconcile with reality:\n    expected: %+v\n    actual:   %+v",
				sm.Expected(), cur)
		}
	}

	// Savings must never exceed the counterfactual: cumulative ledger
	// savings bounded by cumulative estimates.
	if h.eng != nil {
		var savings, without float64
		for _, inv := range h.eng.Ledger().Invoices() {
			savings += inv.Savings
			without += inv.EstimatedWithoutKeebo
		}
		if savings > without+1e-9 {
			h.failf(horizon, "ledger savings %.9f exceed the estimated without-KWO spend %.9f",
				savings, without)
		}
	}

	// Snapshot round-trip: serialize, parse, re-serialize, compare.
	snap, err := h.store.SnapshotBytes()
	if err != nil {
		h.failf(horizon, "snapshot write: %v", err)
		return
	}
	restored, err := telemetry.ReadSnapshot(bytes.NewReader(snap))
	if err != nil {
		h.failf(horizon, "snapshot read-back: %v", err)
		return
	}
	again, err := restored.SnapshotBytes()
	if err != nil {
		h.failf(horizon, "snapshot re-write: %v", err)
		return
	}
	if !bytes.Equal(snap, again) {
		h.failf(horizon, "snapshot round-trip is not byte-identical (%d vs %d bytes)",
			len(snap), len(again))
	}
}
