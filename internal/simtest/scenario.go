// Package simtest is a seeded end-to-end simulation-test harness. Each
// scenario composes a randomized warehouse configuration, workload mix,
// constraint schedule, slider position, engine options, and injected
// faults (query spikes, stalled queues, external ALTER WAREHOUSE
// changes, billing-hour-boundary suspend/resume races), drives the real
// core.Engine over the cdw simulator to completion, and checks a
// library of cross-cutting invariants after every simulated event.
//
// Everything derives deterministically from one int64 seed, so any
// failure reproduces with:
//
//	go test ./internal/simtest -run 'TestSim' -seed=N -v
package simtest

import (
	"fmt"
	"math/rand"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/core"
	"kwo/internal/policy"
	"kwo/internal/simclock"
	"kwo/internal/workload"
)

// FaultKind enumerates the injectable faults.
type FaultKind int

const (
	// FaultSpike is a dense pulse of queries far above the baseline
	// arrival rate; the monitor must flag it within a few decision ticks.
	FaultSpike FaultKind = iota
	// FaultStall clumps long-running queries so the queue backs up; the
	// queue must still fully drain by the end of the run.
	FaultStall
	// FaultExternalAlter is an ALTER WAREHOUSE by a non-KWO actor; the
	// engine must pause optimization until the change is undone (§4.4).
	FaultExternalAlter
	// FaultBoundaryRace suspends and resumes the warehouse across a
	// clock-hour boundary, exercising the 60-second billing minimum
	// straddling an hourly-aggregation edge.
	FaultBoundaryRace
	// FaultSliderMove changes the slider position mid-run.
	FaultSliderMove
	// FaultConstraintSwap replaces the constraint rules mid-run.
	FaultConstraintSwap
)

// String names the fault kind for failure reports.
func (k FaultKind) String() string {
	switch k {
	case FaultSpike:
		return "spike"
	case FaultStall:
		return "stall"
	case FaultExternalAlter:
		return "external-alter"
	case FaultBoundaryRace:
		return "boundary-race"
	case FaultSliderMove:
		return "slider-move"
	case FaultConstraintSwap:
		return "constraint-swap"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one scheduled disturbance. Which fields matter depends on
// Kind.
type Fault struct {
	Kind FaultKind
	At   time.Time

	// Spike / stall shape.
	Count    int
	Over     time.Duration
	WorkSecs float64

	// External alteration: which knob to turn (0 size, 1 auto-suspend,
	// 2 max clusters, 3 scaling policy), and when to undo it (0 = never).
	AlterPick int
	UndoAfter time.Duration

	// Mid-run setting changes.
	Slider policy.Slider
	Rules  policy.Constraints
}

func (f Fault) describe() string {
	switch f.Kind {
	case FaultSpike:
		return fmt.Sprintf("%s spike at %s: %d queries over %s",
			f.At.Weekday(), f.At.Format("15:04:05"), f.Count, f.Over)
	case FaultStall:
		return fmt.Sprintf("stall at %s: %d queries of ~%.0fs",
			f.At.Format("15:04:05"), f.Count, f.WorkSecs)
	case FaultExternalAlter:
		return fmt.Sprintf("external alter (knob %d) at %s, undo after %s",
			f.AlterPick, f.At.Format("15:04:05"), f.UndoAfter)
	case FaultBoundaryRace:
		return fmt.Sprintf("hour-boundary suspend/resume race near %s", f.At.Format("15:04:05"))
	case FaultSliderMove:
		return fmt.Sprintf("slider -> %v at %s", f.Slider, f.At.Format("15:04:05"))
	case FaultConstraintSwap:
		return fmt.Sprintf("constraint swap (%d rules) at %s", len(f.Rules), f.At.Format("15:04:05"))
	default:
		return f.Kind.String()
	}
}

// Scenario is one fully specified end-to-end run. All fields derive from
// the seed via GenerateScenario, so a Scenario never needs to be
// serialized: the seed is the repro.
type Scenario struct {
	Seed   int64
	Params cdw.SimParams
	// Backend names the CDW backend the account runs on; empty means the
	// default (Snowflake) backend. Generated scenarios always leave it
	// empty — multi-cluster generation assumes Snowflake semantics — but
	// targeted tests (and the backend conformance suite) set it to drive
	// the harness's invariant sweeps against other providers.
	Backend string

	Warehouse cdw.Config
	Slider    policy.Slider
	Rules     policy.Constraints
	Opts      core.Options

	// PreRun is unoptimized history before KWO attaches; Run is the
	// optimized span; Drain is extra time for in-flight work to finish
	// after the engine stops.
	PreRun, Run, Drain time.Duration
	// CheckEvery is the cadence of the expensive invariant sweeps.
	CheckEvery time.Duration

	Gens   []workload.Generator
	Faults []Fault

	// SoleExternal is true when exactly one fault can trigger the
	// external-change pause, making pause/unpause assertions unambiguous.
	SoleExternal bool
	// SpikePool supplies templates for injected spikes.
	SpikePool *workload.Pool

	// Plan, when non-nil, installs the account's API fault model: ALTER
	// failures and lost acknowledgments, control-plane outage windows,
	// and billing-history lag. Nil keeps the API perfectly reliable.
	Plan *cdw.FaultPlan
	// Replay overrides the replay command printed in failure reports
	// (fault scenarios reproduce through a different test).
	Replay string
}

// GenerateScenario derives a randomized scenario from the seed. soak
// stretches the simulated spans for the long-running mode.
func GenerateScenario(seed int64, soak bool) Scenario {
	rng := rand.New(rand.NewSource(seed ^ 0x5eedc0de))
	biPool, etlPool, adhocPool := workload.StandardPools()

	maxC := 1 + rng.Intn(3)
	minC := 1
	if maxC > 1 && rng.Intn(4) == 0 {
		minC = 1 + rng.Intn(maxC)
	}
	pol := cdw.ScaleStandard
	if rng.Intn(3) == 0 {
		pol = cdw.ScaleEconomy
	}
	suspends := []time.Duration{0, 2 * time.Minute, 5 * time.Minute, 10 * time.Minute, 30 * time.Minute}
	asus := suspends[1+rng.Intn(4)]
	if rng.Intn(10) == 0 {
		asus = 0 // never suspends: the always-on pathological case
	}
	cfg := cdw.Config{
		Name:        "SIM_WH",
		Size:        cdw.SizeXSmall + cdw.Size(rng.Intn(5)),
		MinClusters: minC,
		MaxClusters: maxC,
		Policy:      pol,
		AutoSuspend: asus,
		AutoResume:  rng.Float64() < 0.9,
	}

	opts := core.DefaultOptions()
	opts.DecideEvery = []time.Duration{5, 10, 15}[rng.Intn(3)] * time.Minute
	opts.TrainEvery = time.Duration(2+rng.Intn(3)) * time.Hour
	opts.BillEvery = []time.Duration{6, 8, 12}[rng.Intn(3)] * time.Hour
	opts.HistoryWindow = 7 * 24 * time.Hour
	opts.PretrainSteps = 12
	opts.WarmupWindows = 3
	// The harness exercises safety invariants, not RL quality; a small
	// network keeps 500 seeds affordable under -race on one core.
	opts.RL.Hidden = 8
	opts.RL.BatchSize = 16
	opts.RampStepHours = []float64{0, 12}[rng.Intn(2)]

	pre := 3*time.Hour + time.Duration(rng.Intn(4*60))*time.Minute
	run := 14*time.Hour + time.Duration(rng.Intn(10*60))*time.Minute
	if soak {
		pre = 6*time.Hour + time.Duration(rng.Intn(12*60))*time.Minute
		run = 3*24*time.Hour + time.Duration(rng.Intn(4*24*60))*time.Minute
	}

	var gens []workload.Generator
	nGens := 1 + rng.Intn(2)
	picks := rng.Perm(3)[:nGens]
	for _, p := range picks {
		switch p {
		case 0:
			gens = append(gens, workload.BI{
				Pool: biPool, PeakQPH: 8 + rng.Float64()*22, WeekendFactor: 0.2,
			})
		case 1:
			gens = append(gens, workload.ETL{
				Pool:         etlPool,
				Period:       time.Duration(1+rng.Intn(2)) * time.Hour,
				Offset:       time.Duration(rng.Intn(40)) * time.Minute,
				JobsPerBatch: 2 + rng.Intn(4),
				Jitter:       10 * time.Minute,
			})
		case 2:
			gens = append(gens, workload.AdHoc{
				Pool: adhocPool, BaseQPH: 2 + rng.Float64()*5, DayVariance: 0.6,
				BurstsPerDay: 1.5, BurstQPH: 30, BurstLen: 10 * time.Minute,
			})
		}
	}

	sc := Scenario{
		Seed:       seed,
		Params:     cdw.DefaultSimParams(),
		Warehouse:  cfg,
		Slider:     policy.Slider(1 + rng.Intn(5)),
		Rules:      randomRules(rng, cfg),
		Opts:       opts,
		PreRun:     pre,
		Run:        run,
		Drain:      8 * time.Hour,
		CheckEvery: 30 * time.Minute,
		Gens:       gens,
		SpikePool:  biPool,
	}

	start := simclock.Epoch
	attach := start.Add(pre)
	end := start.Add(pre + run)
	lo, hi := attach.Add(150*time.Minute), end.Add(-3*time.Hour)
	externals := 0
	for i, n := 0, rng.Intn(4); i < n; i++ {
		at := lo.Add(time.Duration(rng.Int63n(int64(hi.Sub(lo)))))
		f := Fault{At: at}
		switch roll := rng.Float64(); {
		case roll < 0.25:
			f.Kind = FaultSpike
			f.Count = 240 + rng.Intn(360)
			f.Over = time.Duration(4+rng.Intn(6)) * time.Minute
		case roll < 0.45:
			f.Kind = FaultStall
			f.Count = 24 + rng.Intn(24)
			f.WorkSecs = 60 + rng.Float64()*120
		case roll < 0.65:
			f.Kind = FaultExternalAlter
			f.AlterPick = rng.Intn(4)
			if rng.Float64() < 0.7 {
				f.UndoAfter = time.Hour + time.Duration(rng.Intn(60))*time.Minute
			}
			externals++
		case roll < 0.80:
			f.Kind = FaultBoundaryRace
			externals++
		case roll < 0.90:
			f.Kind = FaultSliderMove
			f.Slider = policy.Slider(1 + rng.Intn(5))
		default:
			f.Kind = FaultConstraintSwap
			f.Rules = randomRules(rng, cfg)
		}
		sc.Faults = append(sc.Faults, f)
	}
	sc.SoleExternal = externals == 1
	return sc
}

// GenerateFaultScenario derives the same scenario as GenerateScenario
// and then overlays an API fault plan from an independent RNG stream, so
// the fault sweep explores the same workload space with a misbehaving
// control plane on top. The plan always deactivates its rate-based
// faults two hours before the engine stops (and bounds every outage
// window by that cutoff), guaranteeing a clean recovery tail in which
// retries drain, the circuit breaker closes, and the reconciliation
// invariant becomes decidable.
func GenerateFaultScenario(seed int64, soak bool) Scenario {
	sc := GenerateScenario(seed, soak)
	rng := rand.New(rand.NewSource(seed ^ 0xfa177e57))

	attach := simclock.Epoch.Add(sc.PreRun)
	end := simclock.Epoch.Add(sc.PreRun + sc.Run)
	plan := &cdw.FaultPlan{Until: end.Add(-2 * time.Hour)}

	plan.AlterFailRate = 0.05 + 0.30*rng.Float64()
	if rng.Intn(2) == 0 {
		plan.AlterTimeoutRate = 0.05 + 0.20*rng.Float64()
	}
	if rng.Intn(2) == 0 {
		// Snowflake documents metering-view latency of up to 3 hours.
		plan.BillingLag = time.Duration(30+rng.Intn(150)) * time.Minute
	}

	// Outage windows live well inside the faulted span so each one is
	// followed by time to recover.
	lo, hi := attach.Add(time.Hour), plan.Until.Add(-time.Hour)
	window := func(minMin, maxMin int) (cdw.FaultWindow, bool) {
		if !hi.After(lo) {
			return cdw.FaultWindow{}, false
		}
		from := lo.Add(time.Duration(rng.Int63n(int64(hi.Sub(lo)))))
		to := from.Add(time.Duration(minMin+rng.Intn(maxMin-minMin+1)) * time.Minute)
		if to.After(plan.Until) {
			to = plan.Until
		}
		return cdw.FaultWindow{From: from, To: to}, true
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		if w, ok := window(10, 30); ok {
			plan.AlterOutages = append(plan.AlterOutages, w)
		}
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		if w, ok := window(20, 60); ok {
			plan.BillingOutages = append(plan.BillingOutages, w)
		}
	}

	sc.Plan = plan
	// The pause/unpause SLA assumes the chaos actor's ALTER and its undo
	// both land; under injected API faults either call may fail, so the
	// unambiguous-external assertions are disabled.
	sc.SoleExternal = false
	sc.Replay = fmt.Sprintf("go test ./internal/simtest -run 'TestSimFaults' -fault-seed=%d -v", seed)
	return sc
}

// randomRules builds a valid constraint set (possibly empty): time
// windows — some wrapping midnight, some day-restricted — carrying
// either a prohibition or a single enforcement.
func randomRules(rng *rand.Rand, cfg cdw.Config) policy.Constraints {
	if rng.Float64() < 0.45 {
		return nil
	}
	var cs policy.Constraints
	for i, n := 0, 1+rng.Intn(2); i < n; i++ {
		r := policy.Rule{Name: fmt.Sprintf("rule-%d", i)}
		if rng.Float64() < 0.75 {
			r.StartMinute = rng.Intn(24 * 60)
			r.EndMinute = (r.StartMinute + 60 + rng.Intn(7*60)) % (24 * 60)
			if r.StartMinute == 0 && r.EndMinute == 0 {
				r.EndMinute = 600
			}
		}
		if rng.Float64() < 0.3 {
			for d, nd := 0, 1+rng.Intn(3); d < nd; d++ {
				r.Days = append(r.Days, time.Weekday(rng.Intn(7)))
			}
		}
		switch rng.Intn(8) {
		case 0:
			r.NoDownsize = true
		case 1:
			r.NoUpsize = true
		case 2:
			r.NoSuspendChange = true
		case 3:
			r.NoClusterChange = true
		case 4:
			r.MinSize = cdw.SizeP(cfg.Size.Clamp(cdw.MinSize, cdw.MaxSize))
		case 5:
			r.MaxSize = cdw.SizeP(cfg.Size.Up())
		case 6:
			s := cfg.Size
			if rng.Intn(2) == 0 {
				s = s.Up()
			} else {
				s = s.Down()
			}
			r.EnforceSize = cdw.SizeP(s)
		default:
			r.MinClusters = cdw.IntP(2 + rng.Intn(2))
		}
		cs = append(cs, r)
	}
	if cs.Validate() != nil {
		return nil
	}
	return cs
}
