package simtest

import (
	"fmt"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/core"
	"kwo/internal/obs"
	"kwo/internal/policy"
	"kwo/internal/simclock"
	"kwo/internal/telemetry"
	"kwo/internal/workload"
)

const (
	// maxFailures bounds how many invariant violations one run collects
	// before the harness stops stepping.
	maxFailures = 8
	// maxQueue is the runaway bound on queued queries.
	maxQueue = 20000
	// eventTail is how many recent simulation events the failure report
	// keeps.
	eventTail = 48
	// chaosActor is the non-KWO identity used for injected external
	// alterations.
	chaosActor = "chaos-admin"
)

// Result is the outcome of driving one scenario to completion.
type Result struct {
	Seed     int64
	Failures []string
	// EventTail is the most recent slice of the event log, oldest first.
	EventTail []string
	// Faults describes the scenario's injected faults.
	Faults []string

	// Replay is the command that reproduces the run.
	Replay string

	// Determinism fingerprint: two runs of the same scenario must agree
	// on every field below, byte for byte.
	Snapshot       []byte
	TotalCredits   float64
	AuditRows      int
	AppliedActions int
	Invoices       int
	Steps          uint64

	Scheduled int
	Completed int

	// Fault-injection fingerprint: how often the API misbehaved and how
	// the actuator coped must reproduce too.
	FaultCounts      cdw.FaultCounts
	ActuatorFailures int

	// ObsEvents is the total trace-event count — instrumentation must be
	// as deterministic as the simulation it observes.
	ObsEvents uint64
}

// Failed reports whether any invariant was violated.
func (r *Result) Failed() bool { return len(r.Failures) > 0 }

// Report renders a human-readable failure report with replay
// instructions.
func (r *Result) Report() string {
	s := fmt.Sprintf("scenario seed %d: %d invariant violation(s)\n", r.Seed, len(r.Failures))
	for _, f := range r.Failures {
		s += "  FAIL " + f + "\n"
	}
	if len(r.Faults) > 0 {
		s += "injected faults:\n"
		for _, f := range r.Faults {
			s += "  " + f + "\n"
		}
	}
	if len(r.EventTail) > 0 {
		s += "last events:\n"
		for _, e := range r.EventTail {
			s += "  " + e + "\n"
		}
	}
	replay := r.Replay
	if replay == "" {
		replay = fmt.Sprintf("go test ./internal/simtest -run 'TestSim' -seed=%d -v", r.Seed)
	}
	s += "replay: " + replay
	return s
}

// ruleEpoch is one span of the constraint timeline (rules change mid-run
// via FaultConstraintSwap).
type ruleEpoch struct {
	from  time.Time
	rules policy.Constraints
}

type harness struct {
	sc    Scenario
	sched *simclock.Scheduler
	acct  *cdw.Account
	store *telemetry.Store
	eng   *core.Engine
	hub   *obs.Hub
	rec   *obs.Recorder
	wh    *cdw.Warehouse
	name  string

	start, attachAt, end time.Time
	engineStarted        bool

	epochs []ruleEpoch

	// Sweep cursors: everything before these indices has been verified.
	auditIdx   int
	actIdx     int
	invoiceIdx int
	billingIdx int

	// effectiveOps counts, per actuator operation ID, the audit rows in
	// which the operation actually changed the configuration. Retries
	// reissue the exact absolute alteration, so even after an
	// acknowledged-lost apply a logical operation must take effect at
	// most once.
	effectiveOps map[uint64]int

	prevCredits       float64
	nonCompliantSince time.Time

	scheduled    int
	autoResumeOn bool // AutoResume never observed false

	events   []string
	failures []string
}

// RunScenario drives the scenario to completion, checking invariants
// along the way.
func RunScenario(sc Scenario) *Result {
	h := &harness{sc: sc, name: sc.Warehouse.Name, autoResumeOn: sc.Warehouse.AutoResume}
	h.sched = simclock.NewScheduler(sc.Seed)
	bk, err := cdw.BackendByName(sc.Backend)
	if err != nil {
		return &Result{Failures: []string{err.Error()}}
	}
	h.acct = cdw.NewAccountWithBackend(h.sched, sc.Params, bk)
	if sc.Plan != nil {
		h.acct.SetFaults(*sc.Plan)
	}
	h.store = telemetry.NewStore()
	// One hub across account, store, and engine — exactly how the public
	// API wires it — so checkObsConsistency can hold the event bus and
	// registry to the engine's authoritative counters.
	h.hub = obs.NewHub(h.sched.Now)
	h.acct.SetObs(h.hub)
	h.store.SetObs(h.hub)
	// A fleet-spec recorder sampled at every sweep: checkRecorder holds
	// the time-series layer to exact conservation against the registry.
	// The small budget forces many halving rounds over a long scenario.
	h.rec = obs.NewRecorder(h.hub, obs.FleetSpecs(), 16)
	h.acct.Subscribe(h.store)
	h.acct.Subscribe(h)

	h.start = h.sched.Now()
	h.attachAt = h.start.Add(sc.PreRun)
	h.end = h.start.Add(sc.PreRun + sc.Run)
	h.epochs = []ruleEpoch{{from: h.start, rules: sc.Rules}}

	wh, err := h.acct.CreateWarehouse(sc.Warehouse)
	if err != nil {
		h.failf(h.start, "create warehouse: %v", err)
		return h.result()
	}
	h.wh = wh
	opts := sc.Opts
	opts.Obs = h.hub
	h.eng = core.NewEngineWithStore(h.acct, h.store, opts)

	for i, g := range sc.Gens {
		arr := g.Generate(h.start, h.end, h.sched.Rand(fmt.Sprintf("simtest:gen:%d:%s", i, g.Name())))
		n, _ := workload.Drive(h.sched, h.acct, h.name, arr)
		h.scheduled += n
	}

	h.sched.Schedule(h.attachAt, "simtest:attach", func() {
		settings := core.WarehouseSettings{Slider: sc.Slider, Constraints: sc.Rules}
		if _, err := h.eng.Attach(h.name, settings); err != nil {
			h.failf(h.sched.Now(), "attach: %v", err)
			return
		}
		h.eng.Start()
		h.engineStarted = true
	})

	for i, f := range sc.Faults {
		h.scheduleFault(i, f)
	}

	var sweepLoop func()
	sweepLoop = func() {
		h.sweep(h.sched.Now())
		if h.sched.Now().Add(sc.CheckEvery).Before(h.end) {
			h.sched.After(sc.CheckEvery, "simtest:sweep", sweepLoop)
		}
	}
	h.sched.After(sc.CheckEvery, "simtest:sweep", sweepLoop)
	h.sched.Schedule(h.end, "simtest:stop", func() { h.eng.Stop() })

	horizon := h.end.Add(sc.Drain)
	for len(h.failures) < maxFailures {
		t, ok := h.sched.NextEventTime()
		if !ok || t.After(horizon) {
			break
		}
		h.sched.Step()
		h.cheapCheck()
	}
	h.sched.RunUntil(horizon)

	if len(h.failures) < maxFailures {
		h.finalChecks(horizon)
	}
	return h.result()
}

func (h *harness) result() *Result {
	res := &Result{
		Seed:      h.sc.Seed,
		Failures:  h.failures,
		EventTail: h.events,
		Steps:     h.sched.Steps(),
		Scheduled: h.scheduled,
		Replay:    h.sc.Replay,
	}
	for _, f := range h.sc.Faults {
		res.Faults = append(res.Faults, f.describe())
	}
	if h.sc.Plan != nil {
		res.Faults = append(res.Faults, "api faults: "+h.sc.Plan.String())
		res.FaultCounts = h.acct.FaultCounts()
	}
	if h.wh != nil {
		res.TotalCredits = h.wh.Meter().TotalCredits(h.sched.Now())
		_, _, _, res.Completed = h.wh.Stats()
	}
	res.AuditRows = len(h.acct.Changes())
	if h.eng != nil {
		res.AppliedActions = h.eng.Actuator().AppliedCount()
		res.Invoices = len(h.eng.Ledger().Invoices())
		res.ActuatorFailures = h.eng.Actuator().FailureCount()
	}
	if h.hub != nil {
		res.ObsEvents = h.hub.Bus.Total()
	}
	if snap, err := h.store.SnapshotBytes(); err == nil {
		res.Snapshot = snap
	} else {
		res.Failures = append(res.Failures, fmt.Sprintf("snapshot serialization: %v", err))
	}
	return res
}

func (h *harness) failf(at time.Time, format string, args ...any) {
	if len(h.failures) >= maxFailures {
		return
	}
	h.failures = append(h.failures,
		fmt.Sprintf("[%s] ", at.Format("Mon 15:04:05"))+fmt.Sprintf(format, args...))
}

func (h *harness) logEvent(at time.Time, s string) {
	h.events = append(h.events, fmt.Sprintf("[%s] %s", at.Format("Mon 15:04:05.000"), s))
	if len(h.events) > eventTail {
		h.events = h.events[len(h.events)-eventTail:]
	}
}

// rulesAt returns the constraint rules in force at t.
func (h *harness) rulesAt(t time.Time) policy.Constraints {
	rules := h.epochs[0].rules
	for _, e := range h.epochs[1:] {
		if e.from.After(t) {
			break
		}
		rules = e.rules
	}
	return rules
}

func (h *harness) model() *core.SmartModel {
	if h.eng == nil {
		return nil
	}
	sm, err := h.eng.Model(h.name)
	if err != nil {
		return nil
	}
	return sm
}

// ---------------------------------------------------------------------
// Fault scheduling.

func (h *harness) scheduleFault(i int, f Fault) {
	switch f.Kind {
	case FaultSpike:
		gen := workload.Spike{Pool: h.sc.SpikePool, At: f.At, Count: f.Count, Over: f.Over}
		arr := gen.Generate(h.start, h.end, h.sched.Rand(fmt.Sprintf("simtest:fault:%d", i)))
		n, _ := workload.Drive(h.sched, h.acct, h.name, arr)
		h.scheduled += n
		h.scheduleSpikeSLA(f)
	case FaultStall:
		gen := workload.Stall{At: f.At, Count: f.Count, WorkSecs: f.WorkSecs}
		arr := gen.Generate(h.start, h.end, h.sched.Rand(fmt.Sprintf("simtest:fault:%d", i)))
		n, _ := workload.Drive(h.sched, h.acct, h.name, arr)
		h.scheduled += n
	case FaultExternalAlter:
		h.sched.Schedule(f.At, "simtest:external-alter", func() { h.fireExternalAlter(f) })
	case FaultBoundaryRace:
		t0 := f.At.Truncate(time.Hour).Add(time.Hour)
		h.sched.Schedule(t0, "simtest:race-suspend", func() {
			h.logEvent(t0, "fault: external SUSPEND on hour boundary")
			_ = h.acct.Alter(h.name, cdw.Alteration{Suspend: true}, chaosActor)
		})
		h.sched.Schedule(t0.Add(45*time.Second), "simtest:race-resume", func() {
			h.logEvent(h.sched.Now(), "fault: external RESUME inside 60s minimum")
			_ = h.acct.Alter(h.name, cdw.Alteration{Resume: true}, chaosActor)
		})
	case FaultSliderMove:
		h.sched.Schedule(f.At, "simtest:slider-move", func() {
			if sm := h.model(); sm != nil {
				h.logEvent(f.At, fmt.Sprintf("fault: slider -> %v", f.Slider))
				sm.SetSlider(f.Slider)
			}
		})
	case FaultConstraintSwap:
		h.sched.Schedule(f.At, "simtest:constraint-swap", func() {
			if sm := h.model(); sm != nil {
				h.logEvent(f.At, fmt.Sprintf("fault: constraints swapped (%d rules)", len(f.Rules)))
				sm.SetConstraints(f.Rules)
				h.epochs = append(h.epochs, ruleEpoch{from: h.sched.Now(), rules: f.Rules})
			}
		})
	}
}

// fireExternalAlter builds a genuinely config-changing alteration from
// the live configuration and applies it as a foreign actor.
func (h *harness) fireExternalAlter(f Fault) {
	cur := h.wh.Config()
	var alt cdw.Alteration
	switch f.AlterPick {
	case 0:
		s := cur.Size.Up()
		if cur.Size > cdw.SizeXSmall {
			s = cur.Size.Down()
		}
		alt.Size = cdw.SizeP(s)
	case 1:
		d := 5 * time.Minute
		if cur.AutoSuspend > 0 {
			d = 2 * cur.AutoSuspend
		}
		alt.AutoSuspend = cdw.DurationP(d)
	case 2:
		m := cur.MaxClusters + 1
		if cur.MaxClusters > cur.MinClusters {
			m = cur.MaxClusters - 1
		}
		alt.MaxClusters = cdw.IntP(m)
	default:
		p := cdw.ScaleEconomy
		if cur.Policy == cdw.ScaleEconomy {
			p = cdw.ScaleStandard
		}
		alt.Policy = cdw.PolicyP(p)
	}
	h.logEvent(f.At, "fault: external "+alt.String())
	if err := h.acct.Alter(h.name, alt, chaosActor); err != nil {
		switch {
		case cdw.AckLost(err):
			// The change landed; only the acknowledgment was lost. The
			// chaos admin behaves like a human: shrugs and moves on.
			h.logEvent(f.At, "fault: external alter applied but ack lost")
		case cdw.IsTransient(err):
			// Fell to the injected API faults before applying: nothing
			// changed, so there is nothing to undo or assert.
			h.logEvent(f.At, "fault: external alter lost to API fault")
			return
		default:
			h.failf(f.At, "external alter rejected: %v", err)
			return
		}
	}

	// Undo restores the pre-alteration values of the altered fields.
	undo := cdw.Alteration{}
	if alt.Size != nil {
		undo.Size = cdw.SizeP(cur.Size)
	}
	if alt.AutoSuspend != nil {
		undo.AutoSuspend = cdw.DurationP(cur.AutoSuspend)
	}
	if alt.MaxClusters != nil {
		undo.MaxClusters = cdw.IntP(cur.MaxClusters)
	}
	if alt.Policy != nil {
		undo.Policy = cdw.PolicyP(cur.Policy)
	}

	started := h.engineStarted
	// §4.4: an external change pauses optimization. Only asserted when
	// this is the scenario's sole external disturbance, so interleaved
	// externals cannot legitimately flip the pause state.
	if h.sc.SoleExternal && started {
		checkAt := f.At.Add(2*h.sc.Opts.DecideEvery + time.Second)
		h.sched.Schedule(checkAt, "simtest:pause-check", func() {
			sm := h.model()
			if sm == nil {
				return
			}
			if !sm.Paused() {
				h.failf(checkAt, "external %s did not pause optimization within 2 decision ticks",
					alt.String())
			}
		})
	}
	if f.UndoAfter > 0 {
		undoAt := f.At.Add(f.UndoAfter)
		h.sched.Schedule(undoAt, "simtest:external-undo", func() {
			h.logEvent(undoAt, "fault: external undo "+undo.String())
			err := h.acct.Alter(h.name, undo, chaosActor)
			if cdw.IsTransient(err) && !cdw.AckLost(err) {
				// The undo itself fell to the API faults before applying:
				// the external change stays in force, so the engine may
				// legitimately remain paused.
				h.logEvent(undoAt, "fault: external undo lost to API fault")
				return
			}
			if h.sc.SoleExternal && started {
				checkAt := undoAt.Add(2*h.sc.Opts.DecideEvery + time.Second)
				h.sched.Schedule(checkAt, "simtest:unpause-check", func() {
					sm := h.model()
					if sm == nil {
						return
					}
					if sm.Paused() {
						h.failf(checkAt, "optimization still paused 2 ticks after the external change was undone")
					}
				})
			}
		})
	}
}

// scheduleSpikeSLA arms the monitor-detection check for a spike fault: a
// probe just before the spike decides whether detection is realistically
// expected (baselines warm, spike rate far above threshold), and a check
// a few decision ticks after the spike asserts the monitor flagged
// degradation.
func (h *harness) scheduleSpikeSLA(f Fault) {
	probeAt := f.At.Add(-time.Millisecond)
	var armed bool
	var degradedBefore int
	h.sched.Schedule(probeAt, "simtest:spike-probe", func() {
		sm := h.model()
		if sm == nil || !h.engineStarted || sm.Paused() {
			return
		}
		mon := sm.Monitor()
		if mon.Windows() < mon.Config().MinBaselineWindows {
			return
		}
		base := mon.Peek(probeAt).BaselineQPH
		if base <= 0 {
			return
		}
		if !h.wh.Running() && !h.wh.Config().AutoResume {
			return
		}
		// At least half the spike lands inside one observation window;
		// require 1.5x headroom over the load-spike threshold.
		windowH := mon.Window().Hours()
		halfQPH := float64(f.Count) / 2 / windowH
		if halfQPH < 1.5*mon.Config().LoadSpikeFactor*base {
			return
		}
		armed = true
		degradedBefore = sm.DegradedTicks()
	})
	checkAt := f.At.Add(f.Over + 3*h.sc.Opts.DecideEvery + time.Second)
	h.sched.Schedule(checkAt, "simtest:spike-check", func() {
		if !armed {
			return
		}
		sm := h.model()
		if sm == nil {
			return
		}
		if sm.DegradedTicks() <= degradedBefore {
			h.failf(checkAt,
				"monitor missed injected spike (%d queries over %s at %s): no degraded tick within 3 decision windows",
				f.Count, f.Over, f.At.Format("15:04:05"))
		}
	})
}
