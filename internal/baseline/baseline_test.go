package baseline

import (
	"testing"
	"time"

	"kwo/internal/cdw"
	"kwo/internal/simclock"
	"kwo/internal/workload"
)

var t0 = simclock.Epoch

func run(t *testing.T, c Controller, days int, seed int64) (float64, *cdw.Account) {
	t.Helper()
	sched := simclock.NewScheduler(seed)
	acct := cdw.NewAccount(sched, cdw.DefaultSimParams())
	cfg := cdw.Config{
		Name: "W", Size: cdw.SizeLarge, MinClusters: 1, MaxClusters: 1,
		AutoSuspend: 10 * time.Minute, AutoResume: true,
	}
	if _, err := acct.CreateWarehouse(cfg); err != nil {
		t.Fatal(err)
	}
	biPool, _, _ := workload.StandardPools()
	gen := workload.BI{Pool: biPool, PeakQPH: 60, WeekendFactor: 0.3}
	end := t0.Add(time.Duration(days) * 24 * time.Hour)
	arr := gen.Generate(t0, end, sched.Rand("workload"))
	workload.Drive(sched, acct, "W", arr)
	if c != nil {
		Run(sched, acct, "W", c, 10*time.Minute)
	}
	sched.RunUntil(end.Add(time.Hour))
	return acct.TotalCredits(), acct
}

func TestStaticChangesNothing(t *testing.T) {
	_, acct := run(t, Static{}, 1, 1)
	if len(acct.Changes()) != 0 {
		t.Fatalf("static controller made %d changes", len(acct.Changes()))
	}
}

func TestRuleOfThumbAppliesOnce(t *testing.T) {
	_, acct := run(t, &RuleOfThumb{}, 1, 1)
	chs := acct.Changes()
	if len(chs) != 1 {
		t.Fatalf("rule-of-thumb made %d changes, want 1", len(chs))
	}
	if chs[0].After.AutoSuspend != time.Minute {
		t.Fatalf("auto-suspend = %v, want 1m", chs[0].After.AutoSuspend)
	}
	if chs[0].Actor != "rule-of-thumb" {
		t.Fatalf("actor = %s", chs[0].Actor)
	}
}

func TestRuleOfThumbSavesIdleCredits(t *testing.T) {
	static, _ := run(t, Static{}, 2, 2)
	thumb, _ := run(t, &RuleOfThumb{}, 2, 2)
	if thumb >= static {
		t.Fatalf("rule-of-thumb (%v) did not beat static (%v) on idle-heavy workload", thumb, static)
	}
}

func TestReactiveDownsizesIdleWarehouse(t *testing.T) {
	cost, acct := run(t, NewReactive(), 2, 3)
	static, _ := run(t, Static{}, 2, 3)
	if cost >= static {
		t.Fatalf("reactive (%v) did not beat static (%v)", cost, static)
	}
	wh, _ := acct.Warehouse("W")
	if wh.Config().Size >= cdw.SizeLarge {
		t.Fatalf("reactive never downsized: %v", wh.Config().Size)
	}
}

func TestReactiveUpsizesOnQueueing(t *testing.T) {
	sched := simclock.NewScheduler(4)
	acct := cdw.NewAccount(sched, cdw.DefaultSimParams())
	cfg := cdw.Config{
		Name: "W", Size: cdw.SizeXSmall, MinClusters: 1, MaxClusters: 1,
		AutoSuspend: time.Hour, AutoResume: true,
	}
	acct.CreateWarehouse(cfg)
	r := NewReactive()
	Run(sched, acct, "W", r, time.Minute)
	// Saturate: 20 long queries on an 8-slot cluster.
	for i := 0; i < 20; i++ {
		acct.Submit("W", cdw.Query{Work: 3600, ScaleExp: 1, TemplateHash: uint64(i)})
	}
	sched.RunFor(10 * time.Minute)
	wh, _ := acct.Warehouse("W")
	if wh.Config().Size == cdw.SizeXSmall {
		t.Fatal("reactive never upsized under saturation")
	}
}

func TestRunCancel(t *testing.T) {
	sched := simclock.NewScheduler(5)
	acct := cdw.NewAccount(sched, cdw.DefaultSimParams())
	acct.CreateWarehouse(cdw.Config{Name: "W", Size: cdw.SizeSmall,
		MinClusters: 1, MaxClusters: 1, AutoResume: true})
	r := &RuleOfThumb{}
	cancel := Run(sched, acct, "W", r, time.Minute)
	cancel()
	sched.RunFor(time.Hour)
	if len(acct.Changes()) != 0 {
		t.Fatal("cancelled controller still acted")
	}
}
