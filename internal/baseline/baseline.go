// Package baseline implements the non-learning comparators the
// evaluation pits KWO against: the customer's static configuration
// (what "before Keebo" means in Figure 4), a rule-of-thumb auto-suspend
// heuristic (the blog-post advice of §3), and a reactive threshold
// controller representative of non-learning autoscalers (§8's
// predictive/reactive resource optimizers).
package baseline

import (
	"time"

	"kwo/internal/cdw"
	"kwo/internal/simclock"
)

// Controller periodically inspects a warehouse and may alter it.
type Controller interface {
	// Name identifies the controller in experiment output.
	Name() string
	// Tick runs one control decision at the scheduler's current time.
	Tick(acct *cdw.Account, warehouse string)
}

// Run schedules the controller to tick every interval until the
// scheduler is drained or stopped. Returns a cancel function.
func Run(sched *simclock.Scheduler, acct *cdw.Account, warehouse string,
	c Controller, every time.Duration) func() {
	stopped := false
	var loop func()
	loop = func() {
		if stopped {
			return
		}
		c.Tick(acct, warehouse)
		sched.After(every, "baseline:"+c.Name(), loop)
	}
	sched.After(every, "baseline:"+c.Name(), loop)
	return func() { stopped = true }
}

// Static never changes anything: the customer's original configuration
// runs unmodified. This is the "before Keebo" bar in Figure 4.
type Static struct{}

// Name implements Controller.
func (Static) Name() string { return "static" }

// Tick implements Controller.
func (Static) Tick(*cdw.Account, string) {}

// RuleOfThumb applies the community "best practices" once: set a short
// auto-suspend interval (60 seconds) and leave everything else alone.
// The paper notes such rules "provide no guarantees on optimal cost or
// performance" — in particular they ignore cache sensitivity.
type RuleOfThumb struct {
	AutoSuspend time.Duration
	applied     bool
}

// Name implements Controller.
func (r *RuleOfThumb) Name() string { return "rule-of-thumb" }

// Tick implements Controller.
func (r *RuleOfThumb) Tick(acct *cdw.Account, warehouse string) {
	if r.applied {
		return
	}
	as := r.AutoSuspend
	if as <= 0 {
		as = time.Minute
	}
	_ = acct.Alter(warehouse, cdw.Alteration{AutoSuspend: cdw.DurationP(as)}, "rule-of-thumb")
	r.applied = true
}

// Reactive is a threshold autoscaler without learning: scale up on
// visible queueing, scale down on sustained low utilization. It has no
// cost model (it cannot trade latency for credits), no constraints, no
// backoff, and no memory of past mistakes.
type Reactive struct {
	// UpQueue is the queue length that triggers an upsize.
	UpQueue int
	// DownUtil is the utilization below which a downsize is considered.
	DownUtil float64
	// DownTicks is how many consecutive low-utilization ticks are
	// required before downsizing.
	DownTicks int
	// MinSize bounds how far the controller will shrink.
	MinSize cdw.Size

	lowTicks int
}

// NewReactive returns a controller with conventional thresholds.
func NewReactive() *Reactive {
	return &Reactive{UpQueue: 2, DownUtil: 0.15, DownTicks: 6, MinSize: cdw.SizeXSmall}
}

// Name implements Controller.
func (r *Reactive) Name() string { return "reactive" }

// Tick implements Controller.
func (r *Reactive) Tick(acct *cdw.Account, warehouse string) {
	wh, err := acct.Warehouse(warehouse)
	if err != nil {
		return
	}
	if !wh.Running() {
		r.lowTicks = 0
		return
	}
	cfg := wh.Config()
	if wh.QueueLength() >= r.UpQueue {
		r.lowTicks = 0
		if cfg.Size < cdw.MaxSize {
			_ = acct.Alter(warehouse, cdw.Alteration{Size: cdw.SizeP(cfg.Size.Up())}, "reactive")
		}
		return
	}
	if wh.Utilization() < r.DownUtil {
		r.lowTicks++
		if r.lowTicks >= r.DownTicks && cfg.Size > r.MinSize {
			r.lowTicks = 0
			_ = acct.Alter(warehouse, cdw.Alteration{Size: cdw.SizeP(cfg.Size.Down())}, "reactive")
		}
		return
	}
	r.lowTicks = 0
}
