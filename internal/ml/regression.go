package ml

import (
	"fmt"
	"math"
)

// Ridge is an L2-regularized linear regression fitted by the normal
// equations. The intercept is not regularized.
type Ridge struct {
	Lambda    float64 // regularization strength; 0 gives ordinary least squares
	Weights   []float64
	Intercept float64
	fitted    bool
}

// Fit solves min_w ||Xw + b − y||² + λ||w||² over rows of X.
func (r *Ridge) Fit(x *Matrix, y []float64) error {
	n, d := x.Rows, x.Cols
	if n != len(y) {
		return fmt.Errorf("ml: ridge: %d rows vs %d targets", n, len(y))
	}
	if n == 0 {
		return fmt.Errorf("ml: ridge: no training data")
	}
	// Augment with an intercept column and solve (XᵀX + λI) w = Xᵀy,
	// leaving the intercept unregularized.
	aug := NewMatrix(n, d+1)
	for i := 0; i < n; i++ {
		copy(aug.Row(i), x.Row(i))
		aug.Set(i, d, 1)
	}
	xt := aug.T()
	gram := xt.Mul(aug)
	for j := 0; j < d; j++ { // skip intercept at index d
		gram.Set(j, j, gram.At(j, j)+r.Lambda)
	}
	// Small jitter keeps the system PD when features are collinear.
	for j := 0; j <= d; j++ {
		gram.Set(j, j, gram.At(j, j)+1e-9)
	}
	rhs := xt.MulVec(y)
	w, err := SolveCholesky(gram, rhs)
	if err != nil {
		return fmt.Errorf("ml: ridge: %w", err)
	}
	r.Weights = w[:d]
	r.Intercept = w[d]
	r.fitted = true
	return nil
}

// Predict evaluates the fitted model on one feature vector.
func (r *Ridge) Predict(x []float64) float64 {
	if !r.fitted {
		return 0
	}
	return Dot(r.Weights, x) + r.Intercept
}

// Fitted reports whether Fit succeeded at least once.
func (r *Ridge) Fitted() bool { return r.fitted }

// R2 returns the coefficient of determination on the given data.
func (r *Ridge) R2(x *Matrix, y []float64) float64 {
	if !r.fitted || x.Rows == 0 {
		return 0
	}
	meanY := Mean(y)
	var ssRes, ssTot float64
	for i := 0; i < x.Rows; i++ {
		p := r.Predict(x.Row(i))
		ssRes += (y[i] - p) * (y[i] - p)
		ssTot += (y[i] - meanY) * (y[i] - meanY)
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}

// SGDRegressor is an online linear regressor trained by stochastic
// gradient descent — used where the model must keep adapting as new
// telemetry arrives without refitting from scratch.
type SGDRegressor struct {
	LearningRate float64 // step size; default 0.01 if zero
	L2           float64 // weight decay
	Weights      []float64
	Intercept    float64
	steps        int
}

// Update performs one gradient step on a single example and returns the
// squared error before the step.
func (s *SGDRegressor) Update(x []float64, y float64) float64 {
	if s.Weights == nil {
		s.Weights = make([]float64, len(x))
	}
	if len(x) != len(s.Weights) {
		panic(fmt.Sprintf("ml: sgd: feature length %d, model %d", len(x), len(s.Weights)))
	}
	lr := s.LearningRate
	if lr == 0 {
		lr = 0.01
	}
	pred := Dot(s.Weights, x) + s.Intercept
	err := pred - y
	for i := range s.Weights {
		s.Weights[i] -= lr * (err*x[i] + s.L2*s.Weights[i])
	}
	s.Intercept -= lr * err
	s.steps++
	return err * err
}

// Predict evaluates the current model.
func (s *SGDRegressor) Predict(x []float64) float64 {
	if s.Weights == nil {
		return 0
	}
	return Dot(s.Weights, x) + s.Intercept
}

// Steps returns the number of updates applied.
func (s *SGDRegressor) Steps() int { return s.steps }

// EWMA is an exponentially weighted moving average — the first-order
// approximation the cost model falls back to when a template has too
// few observations for a regression (§5.2), and the monitor's smoother.
type EWMA struct {
	Alpha float64 // smoothing in (0, 1]; higher reacts faster
	value float64
	n     int
}

// Add folds in an observation and returns the new average.
func (e *EWMA) Add(x float64) float64 {
	a := e.Alpha
	if a <= 0 || a > 1 {
		a = 0.2
	}
	if e.n == 0 {
		e.value = x
	} else {
		e.value = a*x + (1-a)*e.value
	}
	e.n++
	return e.value
}

// AddWeighted folds in an observation at a fraction w of the usual
// smoothing weight (w in (0, 1]; w = 1 is Add). Callers use it for
// observations that should nudge the average without being allowed to
// pull it — e.g. the monitor down-weights windows it already flagged as
// degraded so a regression cannot teach the baseline to accept itself.
// A weighted observation never seeds an empty average and does not
// count toward Count.
func (e *EWMA) AddWeighted(x, w float64) float64 {
	if e.n == 0 || w <= 0 {
		return e.value
	}
	if w >= 1 {
		e.n-- // counteract Add's increment: weighted folds don't count
		return e.Add(x)
	}
	a := e.Alpha
	if a <= 0 || a > 1 {
		a = 0.2
	}
	a *= w
	e.value = a*x + (1-a)*e.value
	return e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Count returns the number of observations folded in.
func (e *EWMA) Count() int { return e.n }

// Scaler standardizes features to zero mean and unit variance, fitted
// once on training data. Transform of an unfitted scaler is identity.
type Scaler struct {
	Means  []float64
	Stds   []float64
	fitted bool
}

// Fit computes per-column statistics.
func (s *Scaler) Fit(x *Matrix) {
	d := x.Cols
	s.Means = make([]float64, d)
	s.Stds = make([]float64, d)
	for j := 0; j < d; j++ {
		col := make([]float64, x.Rows)
		for i := 0; i < x.Rows; i++ {
			col[i] = x.At(i, j)
		}
		s.Means[j] = Mean(col)
		s.Stds[j] = StdDev(col)
		if s.Stds[j] < 1e-12 {
			s.Stds[j] = 1
		}
	}
	s.fitted = true
}

// Transform standardizes a single vector in place and returns it.
func (s *Scaler) Transform(x []float64) []float64 {
	if !s.fitted {
		return x
	}
	for j := range x {
		x[j] = (x[j] - s.Means[j]) / s.Stds[j]
	}
	return x
}

// TransformMatrix standardizes every row of a copy of x.
func (s *Scaler) TransformMatrix(x *Matrix) *Matrix {
	out := x.Clone()
	if !s.fitted {
		return out
	}
	for i := 0; i < out.Rows; i++ {
		s.Transform(out.Row(i))
	}
	return out
}

// Logistic is the standard sigmoid, exported for reuse by reward
// shaping.
func Logistic(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
