package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// Activation selects a layer nonlinearity.
type Activation int

const (
	// ActReLU is max(0, x).
	ActReLU Activation = iota
	// ActTanh is the hyperbolic tangent.
	ActTanh
	// ActIdentity passes values through (output layers of regressors).
	ActIdentity
)

func (a Activation) apply(x float64) float64 {
	switch a {
	case ActReLU:
		if x < 0 {
			return 0
		}
		return x
	case ActTanh:
		return math.Tanh(x)
	default:
		return x
	}
}

// derivative is expressed in terms of the activation output y.
func (a Activation) derivative(y float64) float64 {
	switch a {
	case ActReLU:
		if y > 0 {
			return 1
		}
		return 0
	case ActTanh:
		return 1 - y*y
	default:
		return 1
	}
}

type layer struct {
	w   *Matrix // out × in
	b   []float64
	act Activation
}

// MLP is a feed-forward network trained with backpropagation and SGD
// (with optional gradient clipping). It is the function approximator
// behind the DQN in internal/rl.
type MLP struct {
	layers []layer
	// LearningRate is the SGD step size (default 1e-3 if zero).
	LearningRate float64
	// GradClip bounds each gradient component's magnitude; 0 disables.
	GradClip float64
}

// NewMLP builds a network with the given layer widths, e.g.
// NewMLP(rng, 8, 32, 32, 4) for 8 inputs, two hidden layers of 32, and
// 4 outputs. Hidden layers use ReLU; the output layer is linear.
// Weights use He initialization from the provided source.
func NewMLP(rng *rand.Rand, widths ...int) *MLP {
	if len(widths) < 2 {
		panic("ml: MLP needs at least input and output widths")
	}
	m := &MLP{LearningRate: 1e-3}
	for i := 0; i < len(widths)-1; i++ {
		in, out := widths[i], widths[i+1]
		w := NewMatrix(out, in)
		scale := math.Sqrt(2.0 / float64(in))
		for k := range w.Data {
			w.Data[k] = rng.NormFloat64() * scale
		}
		act := ActReLU
		if i == len(widths)-2 {
			act = ActIdentity
		}
		m.layers = append(m.layers, layer{w: w, b: make([]float64, out), act: act})
	}
	return m
}

// Widths returns the layer widths (input first).
func (m *MLP) Widths() []int {
	out := []int{m.layers[0].w.Cols}
	for _, l := range m.layers {
		out = append(out, l.w.Rows)
	}
	return out
}

// Forward evaluates the network on one input vector.
func (m *MLP) Forward(x []float64) []float64 {
	_, acts := m.forward(x)
	return acts[len(acts)-1]
}

// forward returns pre-activations per layer and activations per layer
// (activations[0] is the input).
func (m *MLP) forward(x []float64) (zs [][]float64, acts [][]float64) {
	acts = append(acts, append([]float64(nil), x...))
	cur := acts[0]
	for _, l := range m.layers {
		z := l.w.MulVec(cur)
		for i := range z {
			z[i] += l.b[i]
		}
		zs = append(zs, z)
		a := make([]float64, len(z))
		for i, v := range z {
			a[i] = l.act.apply(v)
		}
		acts = append(acts, a)
		cur = a
	}
	return zs, acts
}

// TrainStep performs one backpropagation step toward target on a single
// example, minimizing ½‖out − target‖². mask, if non-nil, zeroes the
// error on unmasked outputs — the DQN updates only the taken action's
// Q-value. Returns the (masked) squared error before the step.
func (m *MLP) TrainStep(x, target []float64, mask []bool) float64 {
	_, acts := m.forward(x)
	out := acts[len(acts)-1]
	if len(target) != len(out) {
		panic(fmt.Sprintf("ml: target length %d, output %d", len(target), len(out)))
	}
	// Output delta.
	delta := make([]float64, len(out))
	var loss float64
	for i := range out {
		if mask != nil && !mask[i] {
			continue
		}
		e := out[i] - target[i]
		delta[i] = e * m.layers[len(m.layers)-1].act.derivative(out[i])
		loss += e * e
	}
	lr := m.LearningRate
	if lr == 0 {
		lr = 1e-3
	}
	// Backpropagate layer by layer.
	for li := len(m.layers) - 1; li >= 0; li-- {
		l := m.layers[li]
		in := acts[li]
		var nextDelta []float64
		if li > 0 {
			nextDelta = make([]float64, len(in))
		}
		for i := 0; i < l.w.Rows; i++ {
			d := delta[i]
			if d == 0 {
				continue
			}
			if m.GradClip > 0 {
				d = Clamp(d, -m.GradClip, m.GradClip)
			}
			row := l.w.Row(i)
			for j := range row {
				if nextDelta != nil {
					nextDelta[j] += row[j] * delta[i]
				}
				row[j] -= lr * d * in[j]
			}
			l.b[i] -= lr * d
		}
		if li > 0 {
			prevAct := m.layers[li-1].act
			for j := range nextDelta {
				nextDelta[j] *= prevAct.derivative(acts[li][j])
			}
			delta = nextDelta
		}
	}
	return loss
}

// Clone returns a deep copy — used for DQN target networks.
func (m *MLP) Clone() *MLP {
	c := &MLP{LearningRate: m.LearningRate, GradClip: m.GradClip}
	for _, l := range m.layers {
		c.layers = append(c.layers, layer{
			w:   l.w.Clone(),
			b:   append([]float64(nil), l.b...),
			act: l.act,
		})
	}
	return c
}

// CopyFrom overwrites this network's parameters with src's (same
// architecture required) — the DQN's periodic target sync.
func (m *MLP) CopyFrom(src *MLP) {
	if len(m.layers) != len(src.layers) {
		panic("ml: CopyFrom architecture mismatch")
	}
	for i := range m.layers {
		if m.layers[i].w.Rows != src.layers[i].w.Rows || m.layers[i].w.Cols != src.layers[i].w.Cols {
			panic("ml: CopyFrom layer shape mismatch")
		}
		copy(m.layers[i].w.Data, src.layers[i].w.Data)
		copy(m.layers[i].b, src.layers[i].b)
	}
}
