package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 1) != 4 {
		t.Fatalf("At(1,1) = %v", m.At(1, 1))
	}
	m.Set(1, 1, 9)
	if m.At(1, 1) != 9 {
		t.Fatal("Set failed")
	}
	tr := m.T()
	if tr.Rows != 2 || tr.Cols != 3 || tr.At(1, 0) != 2 {
		t.Fatal("transpose wrong")
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("clone shares storage")
	}
}

func TestMatrixMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	v := a.MulVec([]float64{1, 1})
	if v[0] != 3 || v[1] != 7 {
		t.Fatalf("mulvec = %v", v)
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	a.Mul(b)
}

func TestCholeskySolve(t *testing.T) {
	// SPD system with known solution.
	a := FromRows([][]float64{{4, 2, 0}, {2, 5, 1}, {0, 1, 3}})
	want := []float64{1, -2, 3}
	b := a.MulVec(want)
	x, err := SolveCholesky(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := SolveCholesky(a, []float64{1, 1}); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
}

func TestRidgeRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	trueW := []float64{2.5, -1.0, 0.5}
	const b0 = 3.0
	n := 500
	x := NewMatrix(n, 3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		y[i] = Dot(trueW, x.Row(i)) + b0 + 0.01*rng.NormFloat64()
	}
	r := &Ridge{Lambda: 1e-6}
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for j := range trueW {
		if math.Abs(r.Weights[j]-trueW[j]) > 0.02 {
			t.Fatalf("weights = %v, want %v", r.Weights, trueW)
		}
	}
	if math.Abs(r.Intercept-b0) > 0.02 {
		t.Fatalf("intercept = %v, want %v", r.Intercept, b0)
	}
	if r2 := r.R2(x, y); r2 < 0.999 {
		t.Fatalf("R2 = %v", r2)
	}
}

func TestRidgeRegularizationShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 50
	x := NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.NormFloat64())
		y[i] = 5 * x.At(i, 0)
	}
	loose := &Ridge{Lambda: 0}
	tight := &Ridge{Lambda: 1000}
	loose.Fit(x, y)
	tight.Fit(x, y)
	if math.Abs(tight.Weights[0]) >= math.Abs(loose.Weights[0]) {
		t.Fatalf("lambda=1000 weight %v not shrunk vs %v", tight.Weights[0], loose.Weights[0])
	}
}

func TestRidgeErrors(t *testing.T) {
	r := &Ridge{}
	if err := r.Fit(NewMatrix(0, 2), nil); err == nil {
		t.Fatal("empty fit accepted")
	}
	if err := r.Fit(NewMatrix(3, 2), []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if r.Predict([]float64{1, 2}) != 0 {
		t.Fatal("unfitted predict nonzero")
	}
}

func TestSGDConvergesToLine(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := &SGDRegressor{LearningRate: 0.05}
	for i := 0; i < 5000; i++ {
		x := rng.Float64()*4 - 2
		s.Update([]float64{x}, 3*x+1)
	}
	if math.Abs(s.Weights[0]-3) > 0.05 || math.Abs(s.Intercept-1) > 0.05 {
		t.Fatalf("w=%v b=%v, want 3, 1", s.Weights[0], s.Intercept)
	}
	if s.Steps() != 5000 {
		t.Fatalf("steps = %d", s.Steps())
	}
}

func TestEWMA(t *testing.T) {
	e := &EWMA{Alpha: 0.5}
	if e.Value() != 0 || e.Count() != 0 {
		t.Fatal("fresh EWMA not zero")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("first value = %v, want 10 (seeded)", e.Value())
	}
	e.Add(0)
	if e.Value() != 5 {
		t.Fatalf("value = %v, want 5", e.Value())
	}
	// Converges toward a constant signal.
	for i := 0; i < 50; i++ {
		e.Add(7)
	}
	if math.Abs(e.Value()-7) > 1e-6 {
		t.Fatalf("value = %v, want ~7", e.Value())
	}
}

func TestScaler(t *testing.T) {
	x := FromRows([][]float64{{1, 100}, {2, 200}, {3, 300}})
	s := &Scaler{}
	s.Fit(x)
	out := s.TransformMatrix(x)
	for j := 0; j < 2; j++ {
		col := []float64{out.At(0, j), out.At(1, j), out.At(2, j)}
		if math.Abs(Mean(col)) > 1e-9 {
			t.Fatalf("col %d mean = %v", j, Mean(col))
		}
		if math.Abs(StdDev(col)-1) > 1e-9 {
			t.Fatalf("col %d std = %v", j, StdDev(col))
		}
	}
	// Constant columns do not blow up.
	c := FromRows([][]float64{{5}, {5}})
	s2 := &Scaler{}
	s2.Fit(c)
	got := s2.Transform([]float64{5})
	if got[0] != 0 {
		t.Fatalf("constant column transform = %v", got[0])
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMLP(rng, 2, 8, 8, 1)
	m.LearningRate = 0.05
	data := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	targets := []float64{0, 1, 1, 0}
	for epoch := 0; epoch < 4000; epoch++ {
		i := rng.Intn(4)
		m.TrainStep(data[i], []float64{targets[i]}, nil)
	}
	for i, in := range data {
		out := m.Forward(in)[0]
		if math.Abs(out-targets[i]) > 0.25 {
			t.Fatalf("xor(%v) = %v, want %v", in, out, targets[i])
		}
	}
}

func TestMLPMaskedTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP(rng, 1, 8, 2)
	m.LearningRate = 0.05
	// Train only output 0 toward 5; output 1 is masked off.
	before := m.Forward([]float64{1})[1]
	for i := 0; i < 3000; i++ {
		m.TrainStep([]float64{1}, []float64{5, 999}, []bool{true, false})
	}
	out := m.Forward([]float64{1})
	if math.Abs(out[0]-5) > 0.2 {
		t.Fatalf("trained output = %v, want 5", out[0])
	}
	// Output 1 must not have chased 999 (it can drift via shared
	// hidden weights, but nowhere near the masked target).
	if math.Abs(out[1]-999) < 900 {
		t.Fatalf("masked output moved toward masked target: %v (was %v)", out[1], before)
	}
}

func TestMLPCloneAndCopyFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := NewMLP(rng, 2, 4, 1)
	b := a.Clone()
	in := []float64{0.5, -0.5}
	if a.Forward(in)[0] != b.Forward(in)[0] {
		t.Fatal("clone differs")
	}
	// Training a must not affect b.
	for i := 0; i < 100; i++ {
		a.TrainStep(in, []float64{3}, nil)
	}
	if a.Forward(in)[0] == b.Forward(in)[0] {
		t.Fatal("clone shares parameters")
	}
	b.CopyFrom(a)
	if a.Forward(in)[0] != b.Forward(in)[0] {
		t.Fatal("CopyFrom did not sync")
	}
	if w := a.Widths(); len(w) != 3 || w[0] != 2 || w[2] != 1 {
		t.Fatalf("widths = %v", w)
	}
}

func TestReplayBufferEviction(t *testing.T) {
	b := NewReplayBuffer(3)
	for i := 0; i < 5; i++ {
		b.Add(Transition{Action: i})
	}
	if b.Len() != 3 {
		t.Fatalf("len = %d, want 3", b.Len())
	}
	// Oldest two (0, 1) must be gone.
	rng := rand.New(rand.NewSource(7))
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		for _, tr := range b.Sample(rng, 3) {
			seen[tr.Action] = true
		}
	}
	if seen[0] || seen[1] {
		t.Fatalf("evicted transitions still sampled: %v", seen)
	}
	if !seen[2] || !seen[3] || !seen[4] {
		t.Fatalf("recent transitions missing: %v", seen)
	}
}

func TestReplayBufferSampleSmall(t *testing.T) {
	b := NewReplayBuffer(10)
	if got := b.Sample(rand.New(rand.NewSource(1)), 4); got != nil {
		t.Fatal("empty buffer sampled non-nil")
	}
	b.Add(Transition{Action: 1})
	b.Add(Transition{Action: 2})
	got := b.Sample(rand.New(rand.NewSource(1)), 5)
	if len(got) != 2 {
		t.Fatalf("undersized sample = %d, want all 2", len(got))
	}
}

func TestHelpers(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty helpers nonzero")
	}
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("clamp wrong")
	}
	if math.Abs(Logistic(0)-0.5) > 1e-12 {
		t.Fatal("logistic(0) != 0.5")
	}
}

// Property: Cholesky solves random SPD systems A = MᵀM + I.
func TestPropertyCholesky(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		m := NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		a := m.T().Mul(m)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		x, err := SolveCholesky(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaler transform is invertible mentally — transformed data
// has bounded magnitude for bounded input.
func TestPropertyScalerFinite(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) < 2 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip pathological inputs
			}
		}
		x := NewMatrix(len(vals), 1)
		for i, v := range vals {
			x.Set(i, 0, v)
		}
		s := &Scaler{}
		s.Fit(x)
		out := s.TransformMatrix(x)
		for i := 0; i < out.Rows; i++ {
			if math.IsNaN(out.At(i, 0)) || math.IsInf(out.At(i, 0), 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
