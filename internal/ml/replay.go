package ml

import "math/rand"

// Transition is one reinforcement-learning experience tuple.
type Transition struct {
	State     []float64
	Action    int
	Reward    float64
	NextState []float64
	Terminal  bool
}

// ReplayBuffer is a fixed-capacity ring buffer of transitions with
// uniform random sampling — standard DQN experience replay. The paper
// notes KWO's DRL "benefits from having access to large historical
// telemetry data"; offline pre-training fills this buffer from history
// before any live action is taken.
type ReplayBuffer struct {
	capacity int
	buf      []Transition
	next     int
	full     bool
}

// NewReplayBuffer allocates a buffer holding up to capacity transitions.
func NewReplayBuffer(capacity int) *ReplayBuffer {
	if capacity <= 0 {
		capacity = 1
	}
	return &ReplayBuffer{capacity: capacity, buf: make([]Transition, 0, capacity)}
}

// Add appends a transition, evicting the oldest when full.
func (b *ReplayBuffer) Add(t Transition) {
	if len(b.buf) < b.capacity {
		b.buf = append(b.buf, t)
		return
	}
	b.buf[b.next] = t
	b.next = (b.next + 1) % b.capacity
	b.full = true
}

// Len returns the number of stored transitions.
func (b *ReplayBuffer) Len() int { return len(b.buf) }

// Sample draws n transitions uniformly with replacement. It returns
// fewer (all, in order) if the buffer holds fewer than n.
func (b *ReplayBuffer) Sample(rng *rand.Rand, n int) []Transition {
	if len(b.buf) == 0 {
		return nil
	}
	if len(b.buf) <= n {
		out := make([]Transition, len(b.buf))
		copy(out, b.buf)
		return out
	}
	out := make([]Transition, n)
	for i := range out {
		out[i] = b.buf[rng.Intn(len(b.buf))]
	}
	return out
}
