// Package ml is a small, dependency-free machine-learning toolkit:
// dense matrices, linear and ridge regression, feature scaling, a
// feed-forward neural network with backpropagation, and an experience
// replay buffer. It provides exactly the primitives the paper's system
// needs — regression models for the warehouse cost model's parameter
// estimation (§5.2) and a deep Q-network for the data-learning loop
// (§6) — implemented on the standard library only.
package ml

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("ml: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("ml: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m × other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("ml: mul shape mismatch %dx%d × %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			ok := other.Row(k)
			for j := range oi {
				oi[j] += mik * ok[j]
			}
		}
	}
	return out
}

// MulVec returns m × v for a vector v of length m.Cols.
func (m *Matrix) MulVec(v []float64) []float64 {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("ml: mulvec shape mismatch %dx%d × %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// SolveCholesky solves A x = b for symmetric positive-definite A,
// destroying neither input. It is the workhorse of ridge regression,
// where A = XᵀX + λI is SPD by construction.
func SolveCholesky(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, fmt.Errorf("ml: cholesky shape mismatch %dx%d, b %d", a.Rows, a.Cols, len(b))
	}
	// Decompose A = L Lᵀ.
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("ml: matrix not positive definite at pivot %d (%v)", i, sum)
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	// Forward solve L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * y[k]
		}
		y[i] = sum / l.At(i, i)
	}
	// Back solve Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x, nil
}

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("ml: dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Mean returns the arithmetic mean, 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Clamp bounds x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
