package obs

import (
	"encoding/json"
	"testing"
	"time"
)

// seriesMap builds a lookup over hand-made series.
func seriesMap(m map[string]*Series) func(string) *Series {
	return func(name string) *Series { return m[name] }
}

func mkSeries(name string, agg Agg, vals ...float64) *Series {
	s := NewSeries(name, agg, 64)
	for i, v := range vals {
		s.Append(tick(i), v)
	}
	return s
}

func TestSLOConfigDefaults(t *testing.T) {
	c := SLOConfig{}.WithDefaults()
	if c.MaxAbandonRatio != 0.05 || c.MaxDegradedRatio != 0.25 ||
		c.P99BandFactor != 3 || c.MaxP99BandRatio != 0.1 || c.MinSavingsShare != 0.05 {
		t.Fatalf("defaults = %+v", c)
	}
	// Explicit values survive.
	c = SLOConfig{MaxAbandonRatio: 0.2}.WithDefaults()
	if c.MaxAbandonRatio != 0.2 {
		t.Fatalf("explicit threshold overwritten: %+v", c)
	}
}

func TestObjectivesCoverDefaults(t *testing.T) {
	objs := SLOConfig{}.Objectives()
	want := []string{ObjectiveEnforcementSLA, ObjectiveDegradedTime, ObjectiveP99Band, ObjectiveSavingsFloor}
	if len(objs) != len(want) {
		t.Fatalf("got %d objectives, want %d", len(objs), len(want))
	}
	for i, o := range objs {
		if o.Name != want[i] {
			t.Fatalf("objective %d = %q, want %q", i, o.Name, want[i])
		}
	}
}

func TestEvaluateRatioUnder(t *testing.T) {
	lookup := seriesMap(map[string]*Series{
		"bad": mkSeries("bad", AggSum, 1, 0, 1),
		"all": mkSeries("all", AggSum, 10, 10, 20),
	})
	o := Objective{Name: "r", Kind: RatioUnder, Num: []string{"bad"}, Den: []string{"all"}, Target: 0.1}
	v := Evaluate([]Objective{o}, lookup)[0]
	if !v.Pass || v.Value != 0.05 || v.Burn != 0.5 {
		t.Fatalf("under-target: %+v", v)
	}
	o.Target = 0.01
	v = Evaluate([]Objective{o}, lookup)[0]
	if v.Pass || v.Burn != 5 {
		t.Fatalf("over-target: %+v", v)
	}
}

func TestEvaluateRatioOver(t *testing.T) {
	lookup := seriesMap(map[string]*Series{
		"sav":   mkSeries("sav", AggLast, 10),
		"spend": mkSeries("spend", AggLast, 90),
	})
	o := Objective{Name: "floor", Kind: RatioOver,
		Num: []string{"sav"}, Den: []string{"spend", "sav"}, Target: 0.05}
	v := Evaluate([]Objective{o}, lookup)[0]
	if !v.Pass || v.Value != 0.1 || v.Burn != 0.5 {
		t.Fatalf("floor met: %+v", v)
	}
	// Zero savings against a positive floor burns at the cap, not +Inf.
	lookup = seriesMap(map[string]*Series{
		"sav":   mkSeries("sav", AggLast, 0),
		"spend": mkSeries("spend", AggLast, 90),
	})
	v = Evaluate([]Objective{o}, lookup)[0]
	if v.Pass || v.Burn != BurnCap {
		t.Fatalf("zero savings: %+v", v)
	}
	if _, err := json.Marshal(v); err != nil {
		t.Fatalf("capped burn must stay JSON-encodable: %v", err)
	}
}

func TestEvaluateBandUnder(t *testing.T) {
	lookup := seriesMap(map[string]*Series{
		// Baseline 1.0 everywhere; subject breaches 3x at two of five
		// eligible points (the 0-valued leading points are ineligible).
		"p99": mkSeries("p99", AggMax, 0, 0, 1, 4, 1, 9, 1),
		"ref": mkSeries("ref", AggMax, 0, 0, 1, 1, 1, 1, 1),
	})
	o := Objective{Name: "band", Kind: BandUnder, Series: "p99", Ref: "ref", Factor: 3, Target: 0.5}
	v := Evaluate([]Objective{o}, lookup)[0]
	if !v.Pass || v.Value != 0.4 {
		t.Fatalf("band: %+v", v)
	}
	o.Target = 0.1
	v = Evaluate([]Objective{o}, lookup)[0]
	if v.Pass || v.Burn != 4 {
		t.Fatalf("band breach: %+v", v)
	}
}

func TestEvaluateNoDataPasses(t *testing.T) {
	// An SLO cannot be breached by silence: empty or missing series pass
	// with zero burn, for every kind.
	empty := seriesMap(map[string]*Series{})
	objs := SLOConfig{}.Objectives()
	for _, v := range Evaluate(objs, empty) {
		if !v.Pass || v.Burn != 0 {
			t.Fatalf("no-data objective %s must pass with 0 burn: %+v", v.Objective, v)
		}
	}
	// A denominator that exists but totals zero is also no-data.
	lookup := seriesMap(map[string]*Series{
		"bad": mkSeries("bad", AggSum, 5),
		"all": mkSeries("all", AggSum, 0),
	})
	o := Objective{Name: "r", Kind: RatioUnder, Num: []string{"bad"}, Den: []string{"all"}, Target: 0.1}
	if v := Evaluate([]Objective{o}, lookup)[0]; !v.Pass {
		t.Fatalf("zero denominator: %+v", v)
	}
}

func TestObjectiveKindJSONRoundTrip(t *testing.T) {
	for _, k := range []ObjectiveKind{RatioUnder, RatioOver, BandUnder} {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var got ObjectiveKind
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if got != k {
			t.Fatalf("round-trip %v -> %s -> %v", k, b, got)
		}
	}
	var k ObjectiveKind
	if err := json.Unmarshal([]byte(`"nope"`), &k); err == nil {
		t.Fatal("unknown kind must fail to decode")
	}
}

func TestWorstBurnAndFailedObjectives(t *testing.T) {
	vs := []Verdict{
		{Objective: "a", Pass: true, Burn: 0.5},
		{Objective: "b", Pass: false, Burn: 3},
		{Objective: "c", Pass: false, Burn: 2},
	}
	if got := WorstBurn(vs); got != 3 {
		t.Fatalf("WorstBurn = %v, want 3", got)
	}
	failed := FailedObjectives(vs)
	if len(failed) != 2 || failed[0] != "b" || failed[1] != "c" {
		t.Fatalf("FailedObjectives = %v", failed)
	}
	if WorstBurn(nil) != 0 || FailedObjectives(nil) != nil {
		t.Fatal("nil verdicts must yield zero values")
	}
}

func TestPublishSLO(t *testing.T) {
	h := NewHub(func() time.Time { return time.Time{} })
	PublishSLO(h, []Verdict{{Objective: "x", Pass: true, Burn: 0.25}})
	if got := h.SLOBurn.With("x").Value(); got != 0.25 {
		t.Fatalf("burn gauge = %v", got)
	}
	if got := h.SLOPass.With("x").Value(); got != 1 {
		t.Fatalf("pass gauge = %v", got)
	}
	PublishSLO(nil, nil) // nil hub is a no-op
}
