package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// KindFilter matches event kinds against a comma-separated allowlist
// (the ?kind= query parameter). The zero filter matches everything.
type KindFilter struct {
	kinds map[EventKind]bool
}

// ParseKindFilter builds a filter from a comma-separated list of kinds.
// Empty input (or only empty elements) yields the match-all filter.
func ParseKindFilter(csv string) KindFilter {
	var f KindFilter
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if f.kinds == nil {
			f.kinds = make(map[EventKind]bool)
		}
		f.kinds[EventKind(part)] = true
	}
	return f
}

// Match reports whether the filter admits kind.
func (f KindFilter) Match(k EventKind) bool {
	return f.kinds == nil || f.kinds[k]
}

// Handler serves the ops surface for a hub:
//
//	/metrics        Prometheus text exposition of the registry
//	/events         recent events, one JSON object per line (?n=, ?kind=)
//	/healthz        liveness probe
//	/debug/pprof/*  runtime profiling
//	/               plain-text index
//
// All endpoints are read-only; scraping them cannot perturb a
// simulation.
func Handler(h *Hub) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := h.Registry.WritePrometheus(w); err != nil {
			// Headers are gone; nothing useful to do but note it.
			fmt.Fprintf(w, "# write error: %v\n", err)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		n := 100
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v <= 0 {
				http.Error(w, "n must be a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		kinds := ParseKindFilter(r.URL.Query().Get("kind"))
		w.Header().Set("Content-Type", "application/x-ndjson")
		var b strings.Builder
		for _, ev := range h.Bus.Recent(n) {
			if !kinds.Match(ev.Kind) {
				continue
			}
			ev.appendJSON(&b)
			b.WriteByte('\n')
		}
		fmt.Fprint(w, b.String())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "kwo ops endpoint\n\n/metrics\n/events?n=100&kind=a,b\n/healthz\n/debug/pprof/\n")
	})
	return mux
}
