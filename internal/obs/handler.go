package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// Handler serves the ops surface for a hub:
//
//	/metrics        Prometheus text exposition of the registry
//	/events         recent events, one JSON object per line (?n=, ?kind=)
//	/healthz        liveness probe
//	/debug/pprof/*  runtime profiling
//	/               plain-text index
//
// All endpoints are read-only; scraping them cannot perturb a
// simulation.
func Handler(h *Hub) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := h.Registry.WritePrometheus(w); err != nil {
			// Headers are gone; nothing useful to do but note it.
			fmt.Fprintf(w, "# write error: %v\n", err)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		n := 100
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v <= 0 {
				http.Error(w, "n must be a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		kind := EventKind(r.URL.Query().Get("kind"))
		w.Header().Set("Content-Type", "application/x-ndjson")
		var b strings.Builder
		for _, ev := range h.Bus.Recent(n) {
			if kind != "" && ev.Kind != kind {
				continue
			}
			ev.appendJSON(&b)
			b.WriteByte('\n')
		}
		fmt.Fprint(w, b.String())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "kwo ops endpoint\n\n/metrics\n/events?n=100&kind=\n/healthz\n/debug/pprof/\n")
	})
	return mux
}
