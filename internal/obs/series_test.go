package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)

func tick(i int) time.Time { return t0.Add(time.Duration(i) * time.Hour) }

func TestSeriesBudgetClamp(t *testing.T) {
	if s := NewSeries("x", AggSum, 0); s.budget != 4 {
		t.Fatalf("budget 0 clamped to %d, want 4", s.budget)
	}
	if s := NewSeries("x", AggSum, 7); s.budget != 8 {
		t.Fatalf("budget 7 rounded to %d, want 8", s.budget)
	}
}

func TestSeriesDownsamplePreservesSum(t *testing.T) {
	s := NewSeries("queries", AggSum, 8)
	var want float64
	for i := 0; i < 1000; i++ {
		v := float64(i%17 + 1)
		want += v
		s.Append(tick(i), v)
	}
	if s.Len() > 8 {
		t.Fatalf("Len=%d exceeds budget 8", s.Len())
	}
	// Stride stays a power of two.
	for st := s.Stride(); st > 1; st /= 2 {
		if st%2 != 0 {
			t.Fatalf("stride %d is not a power of two", s.Stride())
		}
	}
	got, ok := s.Total()
	if !ok || got != want {
		t.Fatalf("Total=%v ok=%v, want %v (sum survives halving exactly)", got, ok, want)
	}
}

func TestSeriesAggKinds(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8}
	mk := func(agg Agg) *Series {
		s := NewSeries("x", agg, 4) // force several halvings
		for i, v := range vals {
			s.Append(tick(i), v)
		}
		return s
	}
	if got, _ := mk(AggMax).Total(); got != 9 {
		t.Fatalf("AggMax total = %v, want 9", got)
	}
	if got, _ := mk(AggLast).Total(); got != 8 {
		t.Fatalf("AggLast total = %v, want 8", got)
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if got, _ := mk(AggSum).Total(); got != sum {
		t.Fatalf("AggSum total = %v, want %v", got, sum)
	}
	// Weighted mean survives halving exactly: every raw sample keeps
	// weight 1 through the merges.
	got, _ := mk(AggMean).Total()
	want := sum / float64(len(vals))
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("AggMean total = %v, want %v", got, want)
	}
}

func TestSeriesPartialBucketIsProvisional(t *testing.T) {
	s := NewSeries("x", AggSum, 8)
	for i := 0; i < 8; i++ { // fills the budget, so one halving: stride 2
		s.Append(tick(i), 1)
	}
	if s.Stride() != 2 {
		t.Fatalf("stride = %d, want 2", s.Stride())
	}
	n := s.Len()
	s.Append(tick(8), 1) // half a bucket
	if s.Len() != n+1 {
		t.Fatalf("partial bucket not rendered: Len=%d, want %d", s.Len(), n+1)
	}
	if s.Last() != 1 {
		t.Fatalf("provisional last = %v, want 1", s.Last())
	}
	s.Append(tick(9), 1) // completes the bucket
	if s.Len() != n+1 || s.Last() != 2 {
		t.Fatalf("completed bucket: Len=%d Last=%v, want %d and 2", s.Len(), s.Last(), n+1)
	}
}

func TestSeriesDumpDeterministic(t *testing.T) {
	mk := func() *Series {
		s := NewSeries("queries", AggSum, 8)
		for i := 0; i < 100; i++ {
			s.Append(tick(i), float64(i%7))
		}
		return s
	}
	a, _ := json.Marshal(mk().Dump())
	b, _ := json.Marshal(mk().Dump())
	if string(a) != string(b) {
		t.Fatalf("identical append sequences marshal differently:\n%s\n%s", a, b)
	}
	var d SeriesDump
	if err := json.Unmarshal(a, &d); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if d.Name != "queries" || d.Agg != "sum" || len(d.Points) == 0 {
		t.Fatalf("round-tripped dump lost fields: %+v", d)
	}
}

func TestBucketQuantile(t *testing.T) {
	bounds := []float64{1, 2, 4, 8}
	// 10 observations: 5 in (≤1], 3 in (1,2], 2 in (2,4].
	counts := []uint64{5, 3, 2, 0, 0}
	if got := bucketQuantile(0.5, bounds, counts); got != 1 {
		t.Fatalf("p50 = %v, want 1", got)
	}
	if got := bucketQuantile(0.99, bounds, counts); got != 4 {
		t.Fatalf("p99 = %v, want 4", got)
	}
	// All observations in the +Inf bucket clamp to the last finite bound.
	if got := bucketQuantile(0.99, bounds, []uint64{0, 0, 0, 0, 7}); got != 8 {
		t.Fatalf("+Inf clamp = %v, want 8", got)
	}
	if got := bucketQuantile(0.99, bounds, []uint64{0, 0, 0, 0, 0}); got != 0 {
		t.Fatalf("empty = %v, want 0", got)
	}
}

// TestRecorderModes drives a hub by hand and checks each sample mode.
func TestRecorderModes(t *testing.T) {
	now := t0
	h := NewHub(func() time.Time { return now })
	specs := []SampleSpec{
		{Name: "q", Family: MetricQueries, Mode: ModeDelta, TimeAgg: AggSum, CrossAgg: AggSum},
		{Name: "spend", Family: MetricInvoiceActual, Mode: ModeValue, TimeAgg: AggLast, CrossAgg: AggSum},
		{Name: "p99", Family: MetricQueryLatency, Mode: ModeQuantile, Q: 0.99, TimeAgg: AggMax, CrossAgg: AggMax},
		{Name: "aband", Family: MetricActionFailures, Mode: ModeDelta,
			Filter:  &LabelFilter{Label: "kind", Values: []string{"exhausted", "permanent"}},
			TimeAgg: AggSum, CrossAgg: AggSum},
	}
	rec := NewRecorder(h, specs, 16)

	h.Queries.With("WH").Add(10)
	h.InvoiceActual.With("WH").Add(2.5)
	for i := 0; i < 50; i++ {
		h.QueryLatency.With("WH").Observe(0.07)
	}
	h.QueryLatency.With("WH").Observe(5)
	h.ActionFailures.With("WH", "transient").Inc() // filtered out
	h.ActionFailures.With("WH", "exhausted").Inc()

	v1 := rec.Sample(tick(1))
	if v1[0] != 10 {
		t.Fatalf("delta sample 1 = %v, want 10", v1[0])
	}
	if v1[1] != 2.5 {
		t.Fatalf("value sample 1 = %v, want 2.5", v1[1])
	}
	// 51 observations: the p99 target (rank 51) is the single 5s
	// outlier, reported as its bucket's upper bound — conservative.
	if v1[2] < 5 {
		t.Fatalf("quantile sample 1 = %v, want >= 5 (conservative bound)", v1[2])
	}
	if v1[3] != 1 {
		t.Fatalf("filtered delta sample 1 = %v, want 1 (transient excluded)", v1[3])
	}

	// No activity: deltas drop to zero, levels hold.
	v2 := rec.Sample(tick(2))
	if v2[0] != 0 || v2[2] != 0 || v2[3] != 0 {
		t.Fatalf("idle tick deltas = %v, want zeros at 0,2,3", v2)
	}
	if v2[1] != 2.5 {
		t.Fatalf("idle tick level = %v, want 2.5", v2[1])
	}

	// The recorder mirrors latest value and point count onto gauges.
	if got := h.SeriesLast.With("spend").Value(); got != 2.5 {
		t.Fatalf("kwo_series_last{series=spend} = %v, want 2.5", got)
	}
	if got := h.SeriesPoints.With("q").Value(); got != 2 {
		t.Fatalf("kwo_series_points{series=q} = %v, want 2", got)
	}
	if rec.Series("q").Len() != 2 || rec.Series("nope") != nil {
		t.Fatalf("Series lookup broken")
	}
}

// TestSeriesGaugesRoundTripExposition checks the new gauge families
// survive the text exposition and the strict parser — the ParseText
// round-trip the CI scrape depends on.
func TestSeriesGaugesRoundTripExposition(t *testing.T) {
	now := t0
	h := NewHub(func() time.Time { return now })
	rec := NewRecorder(h, FleetSpecs(), 16)
	h.Queries.With("WH").Add(3)
	rec.Sample(tick(1))
	PublishSLO(h, Evaluate(SLOConfig{}.Objectives(), rec.Series))

	var b strings.Builder
	if err := h.Registry.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	parsed, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	for _, fam := range []string{MetricSeriesLast, MetricSeriesPoints, MetricSLOBurn, MetricSLOPass} {
		if !parsed.Has(fam) {
			t.Fatalf("family %s missing from exposition", fam)
		}
	}
	if !parsed.HasSeriesWithLabel(MetricSeriesLast, "series", SeriesQueries) {
		t.Fatalf("kwo_series_last{series=%q} missing", SeriesQueries)
	}
	if !parsed.HasSeriesWithLabel(MetricSLOPass, "objective", ObjectiveSavingsFloor) {
		t.Fatalf("kwo_slo_pass{objective=%q} missing", ObjectiveSavingsFloor)
	}
	if got := parsed.Sum(MetricSeriesLast); got != 3 {
		t.Fatalf("summed kwo_series_last = %v, want 3 (queries delta only)", got)
	}
}
