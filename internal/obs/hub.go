package obs

import "time"

// Metric names. OBSERVABILITY.md documents the full catalog; the CI
// scrape job and TestCatalogServed verify every name is exposed.
const (
	MetricDecisionTicks       = "kwo_decision_ticks_total"
	MetricDegradedTicks       = "kwo_degraded_ticks_total"
	MetricActionsApplied      = "kwo_actions_applied_total"
	MetricActionAttempts      = "kwo_action_attempts_total"
	MetricActionRetries       = "kwo_action_retries_total"
	MetricActionFailures      = "kwo_action_failures_total"
	MetricBreakerTransitions  = "kwo_breaker_transitions_total"
	MetricDegradedTransitions = "kwo_degraded_transitions_total"
	MetricIngestFailures      = "kwo_ingest_failures_total"
	MetricInvoices            = "kwo_invoices_total"
	MetricInvoiceActual       = "kwo_invoice_actual_credits_total"
	MetricInvoiceSavings      = "kwo_invoice_savings_credits_total"
	MetricInvoiceCharge       = "kwo_invoice_charge_credits_total"
	MetricTrainings           = "kwo_trainings_total"
	MetricReplays             = "kwo_replays_total"
	MetricCursorRebuilds      = "kwo_replay_cursor_rebuilds_total"
	MetricMonitorSpikes       = "kwo_monitor_spikes_total"
	MetricMonitorReverts      = "kwo_monitor_reverts_total"
	MetricQueries             = "kwo_telemetry_queries_total"
	MetricBillingHours        = "kwo_telemetry_billing_hours_total"
	MetricFaultsInjected      = "kwo_cdw_faults_injected_total"
	MetricConfigChanges       = "kwo_cdw_config_changes_total"
	MetricOverheadCredits     = "kwo_overhead_credits_total"
	MetricEvents              = "kwo_obs_events_total"
	MetricBreakerOpen         = "kwo_breaker_open"
	MetricDegraded            = "kwo_degraded"
	MetricRetryPending        = "kwo_retry_pending"
	MetricBaselineP99         = "kwo_monitor_baseline_p99_seconds"
	MetricBaselineQPH         = "kwo_monitor_baseline_qph"
	MetricQueryLatency        = "kwo_query_latency_seconds"
	MetricQueryQueue          = "kwo_query_queue_seconds"
	MetricRetryBackoff        = "kwo_retry_backoff_seconds"
	MetricSeriesLast          = "kwo_series_last"
	MetricSeriesPoints        = "kwo_series_points"
	MetricSLOBurn             = "kwo_slo_burn"
	MetricSLOPass             = "kwo_slo_pass"
)

// Hub bundles the metrics registry and the event bus and pre-registers
// the full KWO metric catalog, so the ops endpoint exposes every
// metric (at zero) from the first scrape. One hub is shared by the
// simulated warehouse, the telemetry store, and the optimizer engine.
type Hub struct {
	Registry *Registry
	Bus      *Bus
	clock    func() time.Time

	// Engine.
	DecisionTicks       *CounterVec // warehouse
	DegradedTicks       *CounterVec // warehouse
	DegradedTransitions *CounterVec // warehouse, state=enter|exit
	Degraded            *GaugeVec   // warehouse
	IngestFailures      *CounterVec // warehouse
	Trainings           *CounterVec // warehouse
	Replays             *CounterVec // warehouse, mode=incremental|scratch
	CursorRebuilds      *CounterVec // warehouse
	Invoices            *CounterVec // warehouse
	InvoiceActual       *CounterVec // warehouse
	InvoiceSavings      *CounterVec // warehouse
	InvoiceCharge       *CounterVec // warehouse

	// Actuator.
	ActionsApplied     *CounterVec   // warehouse, reason
	ActionAttempts     *CounterVec   // warehouse
	ActionRetries      *CounterVec   // warehouse
	ActionFailures     *CounterVec   // warehouse, kind
	BreakerTransitions *CounterVec   // warehouse, state=open|closed
	BreakerOpen        *GaugeVec     // warehouse
	RetryPending       *GaugeVec     // warehouse
	RetryBackoff       *HistogramVec // warehouse

	// Monitor.
	MonitorSpikes  *CounterVec // warehouse, signal
	MonitorReverts *CounterVec // warehouse
	BaselineP99    *GaugeVec   // warehouse
	BaselineQPH    *GaugeVec   // warehouse

	// Telemetry store.
	Queries      *CounterVec   // warehouse
	BillingHours *CounterVec   // warehouse
	QueryLatency *HistogramVec // warehouse
	QueryQueue   *HistogramVec // warehouse

	// Simulated warehouse (cdw).
	FaultsInjected  *CounterVec // kind
	ConfigChanges   *CounterVec // warehouse, actor
	OverheadCredits *CounterVec // note

	// Bus self-metering.
	EventsTotal *CounterVec // kind

	// Time-series/SLO plane (Recorder and PublishSLO write these).
	SeriesLast   *GaugeVec // series
	SeriesPoints *GaugeVec // series
	SLOBurn      *GaugeVec // objective
	SLOPass      *GaugeVec // objective
}

// NewHub builds a hub whose timestamps come from clock — in a
// simulation, the scheduler's virtual Now, never the wall clock.
func NewHub(clock func() time.Time) *Hub {
	r := NewRegistry()
	h := &Hub{Registry: r, Bus: NewBus(clock, 0), clock: clock}

	h.DecisionTicks = r.NewCounterVec(MetricDecisionTicks,
		"Smart-model decision ticks executed.", "warehouse")
	h.DegradedTicks = r.NewCounterVec(MetricDegradedTicks,
		"Decision ticks executed in degraded (enforcement-only) mode.", "warehouse")
	h.DegradedTransitions = r.NewCounterVec(MetricDegradedTransitions,
		"Degraded-mode transitions by direction.", "warehouse", "state")
	h.Degraded = r.NewGaugeVec(MetricDegraded,
		"1 while the engine is in degraded mode for the warehouse.", "warehouse")
	h.IngestFailures = r.NewCounterVec(MetricIngestFailures,
		"Failed billing-history pulls.", "warehouse")
	h.Trainings = r.NewCounterVec(MetricTrainings,
		"Smart-model training rounds completed.", "warehouse")
	h.Replays = r.NewCounterVec(MetricReplays,
		"Cost-model replays by mode (incremental cursor vs from scratch).", "warehouse", "mode")
	h.CursorRebuilds = r.NewCounterVec(MetricCursorRebuilds,
		"Replay-cursor rebuilds forced by straggler billing rows.", "warehouse")
	h.Invoices = r.NewCounterVec(MetricInvoices,
		"Invoices cut at billing-period close.", "warehouse")
	h.InvoiceActual = r.NewCounterVec(MetricInvoiceActual,
		"Actual credits billed across invoices.", "warehouse")
	h.InvoiceSavings = r.NewCounterVec(MetricInvoiceSavings,
		"Estimated credits saved across invoices.", "warehouse")
	h.InvoiceCharge = r.NewCounterVec(MetricInvoiceCharge,
		"Savings-share charges across invoices.", "warehouse")

	h.ActionsApplied = r.NewCounterVec(MetricActionsApplied,
		"ALTER statements applied to the warehouse.", "warehouse", "reason")
	h.ActionAttempts = r.NewCounterVec(MetricActionAttempts,
		"ALTER attempts, including retries.", "warehouse")
	h.ActionRetries = r.NewCounterVec(MetricActionRetries,
		"ALTER retries scheduled after transient failures.", "warehouse")
	h.ActionFailures = r.NewCounterVec(MetricActionFailures,
		"Actuation failure-log rows by kind.", "warehouse", "kind")
	h.BreakerTransitions = r.NewCounterVec(MetricBreakerTransitions,
		"Circuit-breaker transitions by direction.", "warehouse", "state")
	h.BreakerOpen = r.NewGaugeVec(MetricBreakerOpen,
		"1 while the circuit breaker is open for the warehouse.", "warehouse")
	h.RetryPending = r.NewGaugeVec(MetricRetryPending,
		"1 while an actuation retry is pending for the warehouse.", "warehouse")
	h.RetryBackoff = r.NewHistogramVec(MetricRetryBackoff,
		"Backoff delays of scheduled actuation retries.",
		ExponentialBuckets(1, 2, 12), "warehouse")

	h.MonitorSpikes = r.NewCounterVec(MetricMonitorSpikes,
		"Monitor windows flagged as regressions, by signal.", "warehouse", "signal")
	h.MonitorReverts = r.NewCounterVec(MetricMonitorReverts,
		"Self-correction reverts triggered by the monitor.", "warehouse")
	h.BaselineP99 = r.NewGaugeVec(MetricBaselineP99,
		"Monitor EWMA baseline of p99 latency in seconds.", "warehouse")
	h.BaselineQPH = r.NewGaugeVec(MetricBaselineQPH,
		"Monitor EWMA baseline of queries per hour.", "warehouse")

	h.Queries = r.NewCounterVec(MetricQueries,
		"Queries ingested by the telemetry store.", "warehouse")
	h.BillingHours = r.NewCounterVec(MetricBillingHours,
		"New hourly billing rows ingested by the telemetry store.", "warehouse")
	h.QueryLatency = r.NewHistogramVec(MetricQueryLatency,
		"End-to-end query latency.", ExponentialBuckets(0.05, 2, 14), "warehouse")
	h.QueryQueue = r.NewHistogramVec(MetricQueryQueue,
		"Query queue time.", ExponentialBuckets(0.01, 2, 14), "warehouse")

	h.FaultsInjected = r.NewCounterVec(MetricFaultsInjected,
		"Faults injected by the simulated warehouse, by kind.", "kind")
	h.ConfigChanges = r.NewCounterVec(MetricConfigChanges,
		"Warehouse configuration changes recorded in the audit log.", "warehouse", "actor")
	h.OverheadCredits = r.NewCounterVec(MetricOverheadCredits,
		"Optimizer overhead credits charged to the account.", "note")

	h.EventsTotal = r.NewCounterVec(MetricEvents,
		"Events emitted on the trace bus, by kind.", "kind")

	h.SeriesLast = r.NewGaugeVec(MetricSeriesLast,
		"Latest sampled value of a recorded time series.", "series")
	h.SeriesPoints = r.NewGaugeVec(MetricSeriesPoints,
		"Retained point count of a recorded time series.", "series")
	h.SLOBurn = r.NewGaugeVec(MetricSLOBurn,
		"Error-budget burn of an SLO objective (1.0 = at target).", "objective")
	h.SLOPass = r.NewGaugeVec(MetricSLOPass,
		"1 while an SLO objective passes, 0 while it is breached.", "objective")
	return h
}

// Prime touches one canonical series per labeled family so every
// catalog family exposes at least one sample (at zero) from the first
// scrape. The single-tenant ops endpoint doesn't need this — family
// HELP/TYPE presence is enough — but the merged fleet exposition keys
// per-tenant completeness checks (kwo-obscheck -tenants) on samples, so
// each tenant hub primes its warehouse's label sets at provisioning.
// Priming only creates zero-valued series; it never changes a value.
func (h *Hub) Prime(warehouse string) {
	h.DecisionTicks.With(warehouse)
	h.DegradedTicks.With(warehouse)
	h.DegradedTransitions.With(warehouse, "enter")
	h.Degraded.With(warehouse)
	h.IngestFailures.With(warehouse)
	h.Trainings.With(warehouse)
	h.Replays.With(warehouse, "incremental")
	h.CursorRebuilds.With(warehouse)
	h.Invoices.With(warehouse)
	h.InvoiceActual.With(warehouse)
	h.InvoiceSavings.With(warehouse)
	h.InvoiceCharge.With(warehouse)
	h.ActionsApplied.With(warehouse, "smart-model")
	h.ActionAttempts.With(warehouse)
	h.ActionRetries.With(warehouse)
	h.ActionFailures.With(warehouse, "transient")
	h.BreakerTransitions.With(warehouse, "open")
	h.BreakerOpen.With(warehouse)
	h.RetryPending.With(warehouse)
	h.RetryBackoff.With(warehouse)
	h.MonitorSpikes.With(warehouse, "latency")
	h.MonitorReverts.With(warehouse)
	h.BaselineP99.With(warehouse)
	h.BaselineQPH.With(warehouse)
	h.Queries.With(warehouse)
	h.BillingHours.With(warehouse)
	h.QueryLatency.With(warehouse)
	h.QueryQueue.With(warehouse)
	h.FaultsInjected.With("alter-fail")
	h.ConfigChanges.With(warehouse, "kwo")
	h.OverheadCredits.With("telemetry-pull")
	h.EventsTotal.With("decision")
}

// Now returns the hub clock's current time.
func (h *Hub) Now() time.Time {
	if h == nil || h.clock == nil {
		return time.Time{}
	}
	return h.clock()
}

// Emit publishes an event on the bus and self-meters it.
func (h *Hub) Emit(kind EventKind, warehouse string, attrs ...Attr) {
	if h == nil {
		return
	}
	h.Bus.Emit(kind, warehouse, attrs...)
	h.EventsTotal.With(string(kind)).Inc()
}

// MetricSpec describes one cataloged metric family.
type MetricSpec struct {
	Name   string
	Type   MetricType
	Labels []string
	Help   string
}

// Specs lists every registered family, sorted by name.
func (r *Registry) Specs() []MetricSpec {
	out := make([]MetricSpec, 0)
	for _, fs := range r.Snapshot() {
		out = append(out, MetricSpec{Name: fs.Name, Type: fs.Type, Labels: fs.Labels, Help: fs.Help})
	}
	return out
}

// Catalog returns the canonical KWO metric catalog — derived from a
// fresh hub, so it can never drift from what NewHub registers.
func Catalog() []MetricSpec {
	return NewHub(func() time.Time { return time.Time{} }).Registry.Specs()
}
