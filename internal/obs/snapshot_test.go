package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// seriesJSON is the byte surface snapshot equality is asserted over.
func seriesJSON(t *testing.T, s *Series) string {
	t.Helper()
	b, err := json.Marshal(s.Snapshot())
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	return string(b)
}

// TestSeriesSnapshotRoundTripContinues is the property the crash
// recovery path rests on: a restored series is not merely equal at the
// restore instant — it keeps behaving identically under further
// appends, including through downsampling halvings, for every agg kind.
func TestSeriesSnapshotRoundTripContinues(t *testing.T) {
	for _, agg := range []Agg{AggSum, AggMax, AggLast, AggMean} {
		s := NewSeries("x", agg, 8)
		for i := 0; i < 100; i++ {
			s.Append(tick(i), float64(i%13+1))
		}
		r, err := RestoreSeries(s.Snapshot())
		if err != nil {
			t.Fatalf("agg %v: RestoreSeries: %v", agg, err)
		}
		if got, want := seriesJSON(t, r), seriesJSON(t, s); got != want {
			t.Fatalf("agg %v: restored snapshot diverges at restore time:\n%s\n%s", agg, got, want)
		}
		// Continue both copies through two more halvings' worth of points.
		for i := 100; i < 400; i++ {
			v := float64(i%17 + 1)
			s.Append(tick(i), v)
			r.Append(tick(i), v)
		}
		if got, want := seriesJSON(t, r), seriesJSON(t, s); got != want {
			t.Fatalf("agg %v: restored series diverges under further appends:\n%s\n%s", agg, got, want)
		}
		st, sok := s.Total()
		rt, rok := r.Total()
		if sok != rok || st != rt {
			t.Fatalf("agg %v: totals diverge: %v/%v vs %v/%v", agg, st, sok, rt, rok)
		}
	}
}

// TestSeriesSnapshotKeepsPendingBucket checks the provisional partial
// bucket survives the round trip: dropping it would silently lose the
// newest sample on every resume.
func TestSeriesSnapshotKeepsPendingBucket(t *testing.T) {
	s := NewSeries("x", AggSum, 4)
	for i := 0; i < 9; i++ { // odd count at stride > 1 leaves a pending bucket
		s.Append(tick(i), 1)
	}
	snap := s.Snapshot()
	if s.Stride() > 1 && snap.Pend == nil {
		t.Skip("no pending bucket at this fill level")
	}
	r, err := RestoreSeries(snap)
	if err != nil {
		t.Fatalf("RestoreSeries: %v", err)
	}
	s.Append(tick(9), 1)
	r.Append(tick(9), 1)
	if got, want := seriesJSON(t, r), seriesJSON(t, s); got != want {
		t.Fatalf("pending bucket lost in round trip:\n%s\n%s", got, want)
	}
}

func TestRestoreSeriesRejectsMalformed(t *testing.T) {
	good := NewSeries("x", AggSum, 8)
	good.Append(tick(0), 1)
	base := good.Snapshot()

	cases := []struct {
		name   string
		mutate func(*SeriesSnapshot)
		want   string
	}{
		{"unknown agg", func(s *SeriesSnapshot) { s.Agg = "median" }, "unknown series agg"},
		{"tiny budget", func(s *SeriesSnapshot) { s.Budget = 2 }, "invalid budget"},
		{"odd budget", func(s *SeriesSnapshot) { s.Budget = 7 }, "invalid budget"},
		{"zero stride", func(s *SeriesSnapshot) { s.Stride = 0 }, "invalid stride"},
		{"points over budget", func(s *SeriesSnapshot) {
			s.Budget = 4
			s.Points = make([]SnapPoint, 5)
		}, "over budget"},
	}
	for _, tc := range cases {
		snap := base
		snap.Points = append([]SnapPoint(nil), base.Points...)
		tc.mutate(&snap)
		if _, err := RestoreSeries(snap); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

// TestRecorderSnapshotRoundTripContinues extends the round-trip
// property to the Recorder: the restored recorder must sample the same
// deltas and quantiles as the original, which requires the prev-counter
// and prev-histogram baselines to survive, not just the series rings.
func TestRecorderSnapshotRoundTripContinues(t *testing.T) {
	now := t0
	mkRec := func() (*Hub, *Recorder) {
		h := NewHub(func() time.Time { return now })
		return h, NewRecorder(h, FleetSpecs(), 16)
	}
	h1, rec1 := mkRec()

	drive := func(h *Hub, i int) {
		h.Queries.With("WH").Add(float64(10 + i))
		h.InvoiceActual.With("WH").Add(1.5)
		for j := 0; j < 20; j++ {
			h.QueryLatency.With("WH").Observe(0.05 * float64(i+1))
		}
	}
	for i := 0; i < 5; i++ {
		drive(h1, i)
		rec1.Sample(tick(i))
	}

	// Restore into a fresh hub/recorder pair over the same specs. The
	// snapshotted Prev baselines are absolute counter values, so the
	// fresh hub must first be brought to the same absolute totals (a
	// resume replays the whole history, so this mirrors the real path).
	h2, rec2 := mkRec()
	if err := rec2.Restore(rec1.Snapshot()); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for i := 0; i < 5; i++ {
		drive(h2, i)
	}
	// Now drive both with identical fresh activity and compare samples.
	for i := 0; i < 5; i++ {
		drive(h1, 10+i)
		drive(h2, 10+i)
	}

	v1 := rec1.Sample(tick(5))
	v2 := rec2.Sample(tick(5))
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("sample %d diverges after restore: %v vs %v\nall: %v vs %v", i, v1[i], v2[i], v1, v2)
		}
	}
	for _, spec := range FleetSpecs() {
		a, b := rec1.Series(spec.Name), rec2.Series(spec.Name)
		if got, want := seriesJSON(t, b), seriesJSON(t, a); got != want {
			t.Fatalf("series %s diverges after restore:\n%s\n%s", spec.Name, got, want)
		}
	}
}

func TestRecorderRestoreRejectsMismatch(t *testing.T) {
	now := t0
	h := NewHub(func() time.Time { return now })
	rec := NewRecorder(h, FleetSpecs(), 16)
	rec.Sample(tick(0))
	snap := rec.Snapshot()

	// Wrong spec count.
	short := snap
	short.Series = snap.Series[:len(snap.Series)-1]
	short.Prev = snap.Prev[:len(snap.Prev)-1]
	if err := rec.Restore(short); err == nil {
		t.Fatal("Restore accepted a snapshot with a missing series")
	}

	// Wrong series name for the spec slot.
	renamed := snap
	renamed.Series = append([]SeriesSnapshot(nil), snap.Series...)
	renamed.Series[0].Name = "not-the-spec"
	if err := rec.Restore(renamed); err == nil {
		t.Fatal("Restore accepted a snapshot with a renamed series")
	}
}
