package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestParseKindFilter(t *testing.T) {
	all := ParseKindFilter("")
	if !all.Match(EventDecision) || !all.Match(EventInvoice) {
		t.Fatal("empty filter must match everything")
	}
	if f := ParseKindFilter(" , ,"); !f.Match(EventDecision) {
		t.Fatal("only-empty elements must yield the match-all filter")
	}
	f := ParseKindFilter("decision, invoice")
	if !f.Match(EventDecision) || !f.Match(EventInvoice) {
		t.Fatal("listed kinds must match")
	}
	if f.Match(EventActionApplied) {
		t.Fatal("unlisted kind must not match")
	}
}

// TestEventsEndpointKindFilter covers the comma-separated ?kind= filter
// and the 400 on malformed ?n=.
func TestEventsEndpointKindFilter(t *testing.T) {
	hub := NewHub(fixedClock())
	hub.Emit(EventInvoice, "W", AFloat("charge_credits", 1.25))
	hub.Emit(EventDecision, "W", A("kind", "size-down"))
	hub.Emit(EventActionApplied, "W", A("statement", "ALTER"))
	h := Handler(hub)

	get := func(path string) (int, string) {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		body, _ := io.ReadAll(rec.Result().Body)
		return rec.Code, string(body)
	}

	code, body := get("/events?kind=invoice,decision")
	if code != 200 {
		t.Fatalf("multi-kind filter: code %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 {
		t.Fatalf("multi-kind filter returned %d lines: %q", len(lines), body)
	}
	for _, line := range lines {
		if !strings.Contains(line, `"kind":"invoice"`) && !strings.Contains(line, `"kind":"decision"`) {
			t.Fatalf("unexpected event admitted: %s", line)
		}
	}

	if code, body := get("/events"); code != 200 ||
		len(strings.Split(strings.TrimSpace(body), "\n")) != 3 {
		t.Fatalf("unfiltered /events: code %d body %q", code, body)
	}

	if code, _ := get("/events?kind=no-such-kind"); code != 200 {
		t.Fatalf("unknown kind must 200 with empty body, got %d", code)
	}

	for _, bad := range []string{"abc", "-1", "0", "1.5"} {
		if code, _ := get("/events?n=" + bad); code != 400 {
			t.Fatalf("/events?n=%s: code %d, want 400", bad, code)
		}
	}
	if code, _ := get("/events?n=10"); code != 200 {
		t.Fatalf("valid n rejected: %d", code)
	}
}
