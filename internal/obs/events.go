package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// EventKind is the typed vocabulary of the trace bus. Every state
// transition an operator would otherwise have to poll for becomes an
// event, so nothing that happens between polls is lost.
type EventKind string

const (
	// EventDecision — a smart-model tick decided to act (apply an
	// action, enforce a constraint, or revert); pure no-op ticks are
	// counted in metrics but not traced.
	EventDecision EventKind = "decision"
	// EventActionApplied — an ALTER landed on the warehouse.
	EventActionApplied EventKind = "action-applied"
	// EventActionRetried — a failed ALTER was scheduled for retry.
	EventActionRetried EventKind = "action-retried"
	// EventActionFailed — an operation was abandoned (exhausted,
	// permanent error, superseded, or aborted by the retry gate).
	EventActionFailed EventKind = "action-failed"
	// EventBreakerOpened — the per-warehouse circuit breaker tripped.
	EventBreakerOpened EventKind = "breaker-opened"
	// EventBreakerClosed — the breaker cooldown elapsed.
	EventBreakerClosed EventKind = "breaker-closed"
	// EventDegradedEnter — the engine entered degraded (safe) mode.
	EventDegradedEnter EventKind = "degraded-enter"
	// EventDegradedExit — the engine recovered from degraded mode.
	EventDegradedExit EventKind = "degraded-exit"
	// EventMonitorBackoff — the self-correction monitor reverted or
	// suppressed an optimization after a performance regression.
	EventMonitorBackoff EventKind = "monitor-backoff"
	// EventInvoice — a billing period closed and an invoice was cut.
	EventInvoice EventKind = "invoice"
	// EventFaultInjected — the simulated warehouse injected a fault
	// (failed ALTER, lost acknowledgment, billing outage).
	EventFaultInjected EventKind = "fault-injected"
	// EventIngestFailed — a billing-history pull failed.
	EventIngestFailed EventKind = "ingest-failed"
)

// Attr is one ordered key/value annotation on an event. A slice of
// attrs (not a map) keeps JSONL rendering deterministic.
type Attr struct {
	Key   string
	Value string
}

// A builds a string attr.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// AInt builds an integer attr.
func AInt(key string, v int) Attr { return Attr{Key: key, Value: strconv.Itoa(v)} }

// AFloat builds a float attr with shortest round-trip formatting.
func AFloat(key string, v float64) Attr {
	return Attr{Key: key, Value: strconv.FormatFloat(v, 'g', -1, 64)}
}

// ADur builds a duration attr.
func ADur(key string, d time.Duration) Attr { return Attr{Key: key, Value: d.String()} }

// Event is one entry on the trace bus. Time always comes from the
// simulation clock.
type Event struct {
	Seq       uint64
	Time      time.Time
	Kind      EventKind
	Warehouse string
	Attrs     []Attr
}

// Attr returns the value of the named attribute, or "".
func (e Event) Attr(key string) string {
	for _, a := range e.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// String renders a compact single-line form for logs and dashboards.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s #%d %s", e.Time.Format("2006-01-02T15:04:05Z07:00"), e.Seq, e.Kind)
	if e.Warehouse != "" {
		fmt.Fprintf(&b, " wh=%s", e.Warehouse)
	}
	for _, a := range e.Attrs {
		fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
	}
	return b.String()
}

// appendJSON renders the event as one deterministic JSON object
// (fixed field order, attrs in emission order).
func (e Event) appendJSON(b *strings.Builder) {
	fmt.Fprintf(b, `{"seq":%d,"time":%q,"kind":%q`, e.Seq, e.Time.Format(time.RFC3339Nano), e.Kind)
	if e.Warehouse != "" {
		fmt.Fprintf(b, `,"warehouse":%q`, e.Warehouse)
	}
	if len(e.Attrs) > 0 {
		b.WriteString(`,"attrs":{`)
		for i, a := range e.Attrs {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%q:%q", a.Key, a.Value)
		}
		b.WriteByte('}')
	}
	b.WriteByte('}')
}

// JSON returns the deterministic single-line JSON form.
func (e Event) JSON() string {
	var b strings.Builder
	e.appendJSON(&b)
	return b.String()
}

// Sink receives every event as it is emitted.
type Sink interface {
	Emit(Event)
}

// Bus is a ring-buffered event stream. Cumulative per-kind counts
// survive ring wrap, so invariant checks can compare totals against
// the engine's authoritative counters even on long runs.
type Bus struct {
	mu     sync.Mutex
	clock  func() time.Time
	ring   []Event
	next   int
	filled bool
	seq    uint64
	counts map[EventKind]uint64
	sinks  []Sink
}

// DefaultRingSize is the event capacity of a bus unless overridden.
const DefaultRingSize = 1024

// NewBus builds a bus reading timestamps from clock. capacity <= 0
// uses DefaultRingSize.
func NewBus(clock func() time.Time, capacity int) *Bus {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Bus{
		clock:  clock,
		ring:   make([]Event, capacity),
		counts: make(map[EventKind]uint64),
	}
}

// AddSink subscribes a sink to all future events.
func (b *Bus) AddSink(s Sink) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.sinks = append(b.sinks, s)
	b.mu.Unlock()
}

// Emit appends an event stamped with the bus clock.
func (b *Bus) Emit(kind EventKind, warehouse string, attrs ...Attr) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.seq++
	ev := Event{Seq: b.seq, Time: b.clock(), Kind: kind, Warehouse: warehouse, Attrs: attrs}
	b.ring[b.next] = ev
	b.next++
	if b.next == len(b.ring) {
		b.next = 0
		b.filled = true
	}
	b.counts[kind]++
	sinks := b.sinks
	b.mu.Unlock()
	for _, s := range sinks {
		s.Emit(ev)
	}
}

// Recent returns up to n most recent events, oldest first.
func (b *Bus) Recent(n int) []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	size := b.next
	if b.filled {
		size = len(b.ring)
	}
	if n > size {
		n = size
	}
	out := make([]Event, 0, n)
	start := b.next - n
	if start < 0 {
		start += len(b.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, b.ring[(start+i)%len(b.ring)])
	}
	return out
}

// KindCount returns the cumulative number of events of one kind,
// including events that have fallen out of the ring.
func (b *Bus) KindCount(kind EventKind) uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.counts[kind]
}

// Total returns the cumulative number of events emitted.
func (b *Bus) Total() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// MemorySink captures every event for tests.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (m *MemorySink) Emit(ev Event) {
	m.mu.Lock()
	m.events = append(m.events, ev)
	m.mu.Unlock()
}

// Events returns a copy of everything captured so far.
func (m *MemorySink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// Count returns how many events of the kind were captured.
func (m *MemorySink) Count(kind EventKind) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, ev := range m.events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// JSONLSink writes one deterministic JSON line per event.
type JSONLSink struct {
	mu sync.Mutex
	w  io.Writer
	// Err holds the first write error, if any.
	Err error
}

// NewJSONLSink wraps w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Emit implements Sink.
func (j *JSONLSink) Emit(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.Err != nil {
		return
	}
	var b strings.Builder
	ev.appendJSON(&b)
	b.WriteByte('\n')
	_, j.Err = io.WriteString(j.w, b.String())
}
