package obs

// The SLO layer turns recorded series into error-budget verdicts: each
// declarative Objective reduces one or two series to a scalar, compares
// it against a target, and reports burn — the fraction of the error
// budget consumed, where burn 1.0 means the objective sits exactly at
// its target and anything above is a breach. The fleet evaluates the
// default objectives per tenant; everything here is pure arithmetic
// over Series, so verdicts inherit the series' determinism.

import (
	"encoding/json"
	"fmt"
)

// BurnCap bounds reported burn so a zero-denominator breach (e.g. a
// savings floor with zero savings) stays finite and JSON-encodable.
const BurnCap = 1000.0

// SLOConfig holds the fleet's objective thresholds. Zero fields take
// the documented defaults, so the zero value is a valid config.
type SLOConfig struct {
	// MaxAbandonRatio caps abandoned actions (exhausted retries or
	// permanent failures) over action attempts. Default 0.05.
	MaxAbandonRatio float64 `json:"max_abandon_ratio"`
	// MaxDegradedRatio caps degraded decision ticks over all decision
	// ticks. Default 0.25.
	MaxDegradedRatio float64 `json:"max_degraded_ratio"`
	// P99BandFactor is the multiple of the monitor's baseline p99 the
	// observed p99 may reach before an epoch counts as violating.
	// Default 3.
	P99BandFactor float64 `json:"p99_band_factor"`
	// MaxP99BandRatio caps the fraction of (eligible) epochs whose p99
	// left the band. Default 0.1.
	MaxP99BandRatio float64 `json:"max_p99_band_ratio"`
	// MinSavingsShare is the floor on savings / (spend + savings).
	// Default 0.05.
	MinSavingsShare float64 `json:"min_savings_share"`
}

// WithDefaults fills zero fields with the default thresholds.
func (c SLOConfig) WithDefaults() SLOConfig {
	if c.MaxAbandonRatio == 0 {
		c.MaxAbandonRatio = 0.05
	}
	if c.MaxDegradedRatio == 0 {
		c.MaxDegradedRatio = 0.25
	}
	if c.P99BandFactor == 0 {
		c.P99BandFactor = 3
	}
	if c.MaxP99BandRatio == 0 {
		c.MaxP99BandRatio = 0.1
	}
	if c.MinSavingsShare == 0 {
		c.MinSavingsShare = 0.05
	}
	return c
}

// ObjectiveKind selects an objective's evaluation rule.
type ObjectiveKind int

const (
	// RatioUnder passes when sum(Num totals) / sum(Den totals) <= Target.
	RatioUnder ObjectiveKind = iota
	// RatioOver passes when sum(Num totals) / sum(Den totals) >= Target.
	RatioOver
	// BandUnder passes when the fraction of points where
	// Series > Factor * Ref (among points where both are positive)
	// is <= Target.
	BandUnder
)

// String returns the wire name.
func (k ObjectiveKind) String() string {
	switch k {
	case RatioOver:
		return "ratio-over"
	case BandUnder:
		return "band-under"
	}
	return "ratio-under"
}

// MarshalJSON encodes the kind as its wire name.
func (k ObjectiveKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes the wire name.
func (k *ObjectiveKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	switch s {
	case "ratio-under":
		*k = RatioUnder
	case "ratio-over":
		*k = RatioOver
	case "band-under":
		*k = BandUnder
	default:
		return fmt.Errorf("obs: unknown objective kind %q", s)
	}
	return nil
}

// Objective is one declarative SLO over recorded series.
type Objective struct {
	Name string        `json:"name"`
	Kind ObjectiveKind `json:"kind"`
	// Num and Den name the numerator and denominator series for the
	// ratio kinds (totals are summed across each list).
	Num []string `json:"num,omitempty"`
	Den []string `json:"den,omitempty"`
	// Series and Ref name the subject and reference series for
	// BandUnder; Factor scales the reference.
	Series string  `json:"series,omitempty"`
	Ref    string  `json:"ref,omitempty"`
	Factor float64 `json:"factor,omitempty"`
	// Target is the threshold the objective's value is held to.
	Target float64 `json:"target"`
}

// Verdict is one evaluated objective: the measured value, the target,
// pass/fail, and error-budget burn (value/target for "stay under"
// objectives, target/value for "stay over"; burn <= 1 iff Pass).
type Verdict struct {
	Objective string  `json:"objective"`
	Pass      bool    `json:"pass"`
	Value     float64 `json:"value"`
	Target    float64 `json:"target"`
	Burn      float64 `json:"burn"`
	Detail    string  `json:"detail,omitempty"`
}

// Evaluate runs every objective against the series returned by lookup
// (nil means the series does not exist; missing series contribute no
// data). An objective with no data passes with zero burn — an SLO
// cannot be breached by silence, only by evidence.
func Evaluate(objectives []Objective, lookup func(name string) *Series) []Verdict {
	out := make([]Verdict, 0, len(objectives))
	for _, o := range objectives {
		out = append(out, evaluateOne(o, lookup))
	}
	return out
}

func evaluateOne(o Objective, lookup func(string) *Series) Verdict {
	v := Verdict{Objective: o.Name, Target: o.Target}
	switch o.Kind {
	case BandUnder:
		sub, ref := lookup(o.Series), lookup(o.Ref)
		if sub == nil || ref == nil {
			return pass(v, "no data")
		}
		sp, rp := sub.Points(), ref.Points()
		n := len(sp)
		if len(rp) < n {
			n = len(rp)
		}
		var eligible, violating int
		for i := 0; i < n; i++ {
			if sp[i].V <= 0 || rp[i].V <= 0 {
				continue // epochs before the monitor has a baseline (or traffic)
			}
			eligible++
			if sp[i].V > o.Factor*rp[i].V {
				violating++
			}
		}
		if eligible == 0 {
			return pass(v, "no data")
		}
		v.Value = float64(violating) / float64(eligible)
		v.Detail = fmt.Sprintf("%d/%d epochs outside %gx band", violating, eligible, o.Factor)
		return burnUnder(v)
	case RatioOver:
		num, den, ok := ratio(o, lookup)
		if !ok {
			return pass(v, "no data")
		}
		v.Value = num / den
		return burnOver(v)
	default: // RatioUnder
		num, den, ok := ratio(o, lookup)
		if !ok {
			return pass(v, "no data")
		}
		v.Value = num / den
		return burnUnder(v)
	}
}

// ratio sums the Num and Den series totals; ok is false when the
// denominator has no data or totals zero (nothing to hold a ratio to).
func ratio(o Objective, lookup func(string) *Series) (num, den float64, ok bool) {
	anyDen := false
	for _, name := range o.Den {
		if s := lookup(name); s != nil {
			if t, has := s.Total(); has {
				den += t
				anyDen = true
			}
		}
	}
	for _, name := range o.Num {
		if s := lookup(name); s != nil {
			if t, has := s.Total(); has {
				num += t
			}
		}
	}
	if !anyDen || den <= 0 {
		return 0, 0, false
	}
	return num, den, true
}

func pass(v Verdict, detail string) Verdict {
	v.Pass = true
	v.Burn = 0
	if v.Detail == "" {
		v.Detail = detail
	}
	return v
}

// burnUnder finalizes a "value must stay <= target" verdict.
func burnUnder(v Verdict) Verdict {
	switch {
	case v.Target > 0:
		v.Burn = capBurn(v.Value / v.Target)
	case v.Value > 0:
		v.Burn = BurnCap
	}
	v.Pass = v.Burn <= 1
	return v
}

// burnOver finalizes a "value must stay >= target" verdict.
func burnOver(v Verdict) Verdict {
	switch {
	case v.Target <= 0:
		v.Burn = 0
	case v.Value > 0:
		v.Burn = capBurn(v.Target / v.Value)
	default:
		v.Burn = BurnCap
	}
	v.Pass = v.Burn <= 1
	return v
}

func capBurn(b float64) float64 {
	if b > BurnCap {
		return BurnCap
	}
	return b
}

// Recorded series names — the fleet's standard per-tenant sample set.
const (
	SeriesQueries        = "queries"
	SeriesSpendCredits   = "spend_credits"
	SeriesSavingsCredits = "savings_credits"
	SeriesP99Seconds     = "p99_seconds"
	SeriesBaselineP99    = "baseline_p99_seconds"
	SeriesDegraded       = "degraded"
	SeriesDecisionTicks  = "decision_ticks"
	SeriesDegradedTicks  = "degraded_ticks"
	SeriesActionAttempts = "action_attempts"
	SeriesActionAbandons = "action_abandoned"
)

// FleetSpecs is the standard per-tenant sample set the fleet records at
// every epoch boundary. Rates (queries, ticks, attempts) are per-epoch
// deltas that downsample by summing; levels (credits) are sampled
// as-of the boundary and keep the latest value; p99 is a per-epoch
// bucket-delta quantile that downsamples (and cross-aggregates) by max;
// the degraded indicator averages over time so its total is the
// degraded-time fraction.
func FleetSpecs() []SampleSpec {
	return []SampleSpec{
		{Name: SeriesQueries, Family: MetricQueries, Mode: ModeDelta,
			TimeAgg: AggSum, CrossAgg: AggSum},
		{Name: SeriesSpendCredits, Family: MetricInvoiceActual, Mode: ModeValue,
			TimeAgg: AggLast, CrossAgg: AggSum},
		{Name: SeriesSavingsCredits, Family: MetricInvoiceSavings, Mode: ModeValue,
			TimeAgg: AggLast, CrossAgg: AggSum},
		{Name: SeriesP99Seconds, Family: MetricQueryLatency, Mode: ModeQuantile, Q: 0.99,
			TimeAgg: AggMax, CrossAgg: AggMax},
		{Name: SeriesBaselineP99, Family: MetricBaselineP99, Mode: ModeValue,
			TimeAgg: AggMax, CrossAgg: AggMax},
		{Name: SeriesDegraded, Family: MetricDegraded, Mode: ModeValue,
			TimeAgg: AggMean, CrossAgg: AggSum},
		{Name: SeriesDecisionTicks, Family: MetricDecisionTicks, Mode: ModeDelta,
			TimeAgg: AggSum, CrossAgg: AggSum},
		{Name: SeriesDegradedTicks, Family: MetricDegradedTicks, Mode: ModeDelta,
			TimeAgg: AggSum, CrossAgg: AggSum},
		{Name: SeriesActionAttempts, Family: MetricActionAttempts, Mode: ModeDelta,
			TimeAgg: AggSum, CrossAgg: AggSum},
		{Name: SeriesActionAbandons, Family: MetricActionFailures, Mode: ModeDelta,
			Filter:  &LabelFilter{Label: "kind", Values: []string{"exhausted", "permanent"}},
			TimeAgg: AggSum, CrossAgg: AggSum},
	}
}

// Default objective names.
const (
	ObjectiveEnforcementSLA = "enforcement-sla"
	ObjectiveDegradedTime   = "degraded-time"
	ObjectiveP99Band        = "p99-band"
	ObjectiveSavingsFloor   = "savings-floor"
)

// Objectives builds the default fleet objectives over the FleetSpecs
// series, using the config's (defaulted) thresholds:
//
//   - enforcement-sla: abandoned actions / attempts <= MaxAbandonRatio
//   - degraded-time:   degraded ticks / decision ticks <= MaxDegradedRatio
//   - p99-band:        fraction of epochs with p99 > P99BandFactor ×
//     baseline p99 <= MaxP99BandRatio
//   - savings-floor:   savings / (spend + savings) >= MinSavingsShare
func (c SLOConfig) Objectives() []Objective {
	c = c.WithDefaults()
	return []Objective{
		{Name: ObjectiveEnforcementSLA, Kind: RatioUnder,
			Num: []string{SeriesActionAbandons}, Den: []string{SeriesActionAttempts},
			Target: c.MaxAbandonRatio},
		{Name: ObjectiveDegradedTime, Kind: RatioUnder,
			Num: []string{SeriesDegradedTicks}, Den: []string{SeriesDecisionTicks},
			Target: c.MaxDegradedRatio},
		{Name: ObjectiveP99Band, Kind: BandUnder,
			Series: SeriesP99Seconds, Ref: SeriesBaselineP99,
			Factor: c.P99BandFactor, Target: c.MaxP99BandRatio},
		{Name: ObjectiveSavingsFloor, Kind: RatioOver,
			Num: []string{SeriesSavingsCredits},
			Den: []string{SeriesSpendCredits, SeriesSavingsCredits},
			Target: c.MinSavingsShare},
	}
}

// PublishSLO mirrors verdicts onto the hub's kwo_slo_burn /
// kwo_slo_pass gauges (pass is 1/0).
func PublishSLO(h *Hub, verdicts []Verdict) {
	if h == nil {
		return
	}
	for _, v := range verdicts {
		h.SLOBurn.With(v.Objective).Set(v.Burn)
		p := 0.0
		if v.Pass {
			p = 1
		}
		h.SLOPass.With(v.Objective).Set(p)
	}
}

// WorstBurn returns the largest burn across verdicts.
func WorstBurn(verdicts []Verdict) float64 {
	var worst float64
	for _, v := range verdicts {
		if v.Burn > worst {
			worst = v.Burn
		}
	}
	return worst
}

// FailedObjectives lists the names of failing verdicts, in order.
func FailedObjectives(verdicts []Verdict) []string {
	var out []string
	for _, v := range verdicts {
		if !v.Pass {
			out = append(out, v.Objective)
		}
	}
	return out
}
