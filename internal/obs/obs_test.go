package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func fixedClock() func() time.Time {
	t0 := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Second)
	}
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "a counter")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %g, want 3", c.Value())
	}
	g := r.NewGauge("g", "a gauge")
	g.Set(7)
	g.Set(-1)
	if g.Value() != -1 {
		t.Fatalf("gauge = %g, want -1", g.Value())
	}
	cv := r.NewCounterVec("cv_total", "labelled", "warehouse", "kind")
	cv.With("W", "x").Inc()
	cv.With("W", "y").Add(4)
	if got := r.CounterSum("cv_total"); got != 5 {
		t.Fatalf("CounterSum = %g, want 5", got)
	}
	hv := r.NewHistogramVec("h_seconds", "latency", ExponentialBuckets(1, 2, 4), "warehouse")
	h := hv.With("W")
	for _, v := range []float64{0.5, 1, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("histogram count = %d, want 4", h.Count())
	}

	// Re-registration with identical shape is idempotent...
	c2 := r.NewCounter("c_total", "a counter")
	c2.Inc()
	if c.Value() != 4 {
		t.Fatalf("re-registered counter is not the same series: %g", c.Value())
	}
	// ...but a type mismatch panics: silent shape drift would corrupt
	// the exposition.
	defer func() {
		if recover() == nil {
			t.Fatal("registering c_total as a gauge did not panic")
		}
	}()
	r.NewGauge("c_total", "now a gauge")
}

func TestPrometheusOutputParses(t *testing.T) {
	hub := NewHub(fixedClock())
	hub.DecisionTicks.With("W").Inc()
	hub.QueryLatency.With("W").Observe(1.5)
	hub.BreakerOpen.With("W").Set(1)
	hub.ActionsApplied.With("W", "smart-model").Add(3)

	var sb strings.Builder
	if err := hub.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("own exposition does not parse: %v\n%s", err, sb.String())
	}
	// Every cataloged family is present even though almost nothing was
	// touched — the hub pre-registers the whole catalog at zero.
	for _, spec := range Catalog() {
		if !parsed.Has(spec.Name) {
			t.Errorf("cataloged family %s missing from exposition", spec.Name)
		}
	}
	if got := parsed.Sum(MetricActionsApplied); got != 3 {
		t.Errorf("parsed %s = %g, want 3", MetricActionsApplied, got)
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"not a metric line\n",
		"metric{unclosed value\n",
		"# TYPE x bogustype\nx 1\n",
		`m{l="v} 1` + "\n",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText accepted %q", bad)
		}
	}
}

func TestBusRingWrapKeepsCumulativeCounts(t *testing.T) {
	bus := NewBus(fixedClock(), 4)
	for i := 0; i < 10; i++ {
		bus.Emit(EventDecision, "W")
	}
	bus.Emit(EventInvoice, "W")
	if got := bus.KindCount(EventDecision); got != 10 {
		t.Fatalf("KindCount(decision) = %d after ring wrap, want 10", got)
	}
	if got := bus.Total(); got != 11 {
		t.Fatalf("Total = %d, want 11", got)
	}
	recent := bus.Recent(100)
	if len(recent) != 4 {
		t.Fatalf("Recent returned %d events from a 4-slot ring", len(recent))
	}
	for i := 1; i < len(recent); i++ {
		if recent[i].Seq != recent[i-1].Seq+1 {
			t.Fatalf("Recent not in order: %d then %d", recent[i-1].Seq, recent[i].Seq)
		}
	}
	if recent[len(recent)-1].Kind != EventInvoice {
		t.Fatalf("newest event is %s, want invoice", recent[len(recent)-1].Kind)
	}
}

func TestEventJSONIsValidAndOrdered(t *testing.T) {
	bus := NewBus(fixedClock(), 8)
	sink := &MemorySink{}
	bus.AddSink(sink)
	bus.Emit(EventActionApplied, "W",
		A("statement", `ALTER "x"`), AInt("attempt", 2), ADur("delay", 30*time.Second))
	evs := sink.Events()
	if len(evs) != 1 {
		t.Fatalf("sink captured %d events", len(evs))
	}
	line := evs[0].JSON()
	if !json.Valid([]byte(line)) {
		t.Fatalf("event JSON invalid: %s", line)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatal(err)
	}
	if m["kind"] != "action-applied" || m["warehouse"] != "W" {
		t.Fatalf("decoded event wrong: %v", m)
	}
	attrs := m["attrs"].(map[string]any)
	if attrs["statement"] != `ALTER "x"` || attrs["attempt"] != "2" || attrs["delay"] != "30s" {
		t.Fatalf("decoded attrs wrong: %v", attrs)
	}
	if evs[0].Attr("attempt") != "2" || evs[0].Attr("missing") != "" {
		t.Fatal("Attr lookup wrong")
	}
}

func TestHandlerEndpoints(t *testing.T) {
	hub := NewHub(fixedClock())
	hub.Emit(EventInvoice, "W", AFloat("charge_credits", 1.25))
	hub.Emit(EventDecision, "W", A("kind", "size-down"))
	h := Handler(hub)

	get := func(path string) (int, string, string) {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		body, _ := io.ReadAll(rec.Result().Body)
		return rec.Code, string(body), rec.Header().Get("Content-Type")
	}

	code, body, ct := get("/metrics")
	if code != 200 || !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics: code %d content-type %q", code, ct)
	}
	if _, err := ParseText(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}

	code, body, _ = get("/events?kind=invoice")
	if code != 200 {
		t.Fatalf("/events: code %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], `"kind":"invoice"`) {
		t.Fatalf("/events?kind=invoice returned %q", body)
	}

	if code, _, _ := get("/healthz"); code != 200 {
		t.Fatalf("/healthz: code %d", code)
	}
	if code, _, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: code %d", code)
	}
	if code, _, _ := get("/"); code != 200 {
		t.Fatalf("/: code %d", code)
	}
}

func TestCatalogIsStable(t *testing.T) {
	a, b := Catalog(), Catalog()
	if len(a) == 0 {
		t.Fatal("empty catalog")
	}
	if len(a) != len(b) {
		t.Fatalf("catalog sizes differ: %d vs %d", len(a), len(b))
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Type != b[i].Type {
			t.Fatalf("catalog not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
		if seen[a[i].Name] {
			t.Fatalf("duplicate catalog entry %s", a[i].Name)
		}
		seen[a[i].Name] = true
		if !strings.HasPrefix(a[i].Name, "kwo_") {
			t.Errorf("metric %s does not carry the kwo_ namespace", a[i].Name)
		}
	}
}
