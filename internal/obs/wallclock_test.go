package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoWallClockInInstrumentedPackages forbids time.Now() in the obs
// package and every package it instruments. Determinism under
// simulation depends on every timestamp flowing from the injected
// virtual clock; a single wall-clock read would make metrics, events,
// and golden traces diverge between runs. CI greps for the same
// pattern, this test keeps the rule enforced under plain `go test`.
func TestNoWallClockInInstrumentedPackages(t *testing.T) {
	pkgs := []string{
		".",            // internal/obs
		"../core",      // engine instrumentation
		"../actuator",  // retry/breaker instrumentation
		"../monitor",   // snapshot observer
		"../costmodel", // replay-cursor rebuild hook
		"../cdw",       // fault/audit instrumentation
		"../telemetry", // query/billing instrumentation
		"../simclock",  // the clock itself must be purely seeded
		"../pricing",   // invoices carry sim timestamps
		"../simtest",   // the harness that asserts determinism
		"../fleet",     // epoch sampling and the observability plane
	}
	for _, dir := range pkgs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read %s: %v", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(src), "\n") {
				code, _, _ := strings.Cut(line, "//")
				if strings.Contains(code, "time.Now(") {
					t.Errorf("%s:%d: wall-clock read in an instrumented package: %s",
						path, i+1, strings.TrimSpace(line))
				}
			}
		}
	}
}
