package obs

import (
	"fmt"
	"time"
)

// Agg is how a Series combines values — both when the downsampler folds
// two adjacent points into one and when Total summarizes the whole
// series for SLO evaluation.
type Agg int

const (
	// AggLast keeps the later value (level metrics sampled as-of the
	// epoch boundary: spend so far, baseline gauges).
	AggLast Agg = iota
	// AggSum adds values (per-epoch deltas: queries, ticks, attempts).
	AggSum
	// AggMax keeps the larger value (worst-case metrics: p99).
	AggMax
	// AggMean keeps the count-weighted mean (ratio-like levels: the
	// degraded indicator averaged over time).
	AggMean
)

// String returns the wire name used in SeriesDump.
func (a Agg) String() string {
	switch a {
	case AggSum:
		return "sum"
	case AggMax:
		return "max"
	case AggMean:
		return "mean"
	}
	return "last"
}

// point is one retained bucket: the bucket-ending timestamp, the
// aggregated value, and how many raw samples were folded in (the weight
// AggMean needs to stay exact through repeated halving).
type point struct {
	t time.Time
	v float64
	n int
}

// combine folds b (weight nb) into a (weight na) under agg.
func combine(agg Agg, a, b float64, na, nb int) float64 {
	switch agg {
	case AggSum:
		return a + b
	case AggMax:
		if a > b {
			return a
		}
		return b
	case AggMean:
		return (a*float64(na) + b*float64(nb)) / float64(na+nb)
	}
	return b // AggLast
}

// Point is one rendered sample of a series.
type Point struct {
	T time.Time
	V float64
}

// Series is a fixed-capacity time series: appends are O(1), memory is
// bounded by the point budget, and when the budget fills the series
// halves itself by merging adjacent pairs under its Agg — the stride
// (raw samples per retained point) doubles, so a series always covers
// its full history at the finest resolution the budget allows.
//
// Everything is deterministic: retained points are a pure function of
// the append sequence, with no wall clock and no randomness. The fleet
// relies on this for byte-identical rollups across worker counts.
type Series struct {
	name   string
	agg    Agg
	budget int
	stride int   // raw samples folded into one retained point
	pts    []point
	pend   point // partial bucket accumulating toward the next point
}

// NewSeries builds an empty series. budget is the maximum number of
// retained points; it is clamped to at least 4 and rounded up to even
// so halving is exact.
func NewSeries(name string, agg Agg, budget int) *Series {
	if budget < 4 {
		budget = 4
	}
	if budget%2 == 1 {
		budget++
	}
	return &Series{name: name, agg: agg, budget: budget, stride: 1}
}

// Append records one raw sample at time t. Samples must arrive in
// non-decreasing time order (the fleet appends once per epoch boundary).
func (s *Series) Append(t time.Time, v float64) {
	if s.pend.n == 0 {
		s.pend = point{t: t, v: v, n: 1}
	} else {
		s.pend.t = t
		s.pend.v = combine(s.agg, s.pend.v, v, s.pend.n, 1)
		s.pend.n++
	}
	if s.pend.n < s.stride {
		return
	}
	s.pts = append(s.pts, s.pend)
	s.pend = point{}
	if len(s.pts) >= s.budget {
		s.halve()
	}
}

// halve merges adjacent point pairs, doubling the stride. Called only
// when len(pts) == budget, which is even, so no point is orphaned.
func (s *Series) halve() {
	half := len(s.pts) / 2
	for i := 0; i < half; i++ {
		a, b := s.pts[2*i], s.pts[2*i+1]
		s.pts[i] = point{t: b.t, v: combine(s.agg, a.v, b.v, a.n, b.n), n: a.n + b.n}
	}
	s.pts = s.pts[:half]
	s.stride *= 2
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Agg returns the series' aggregation kind.
func (s *Series) Agg() Agg { return s.agg }

// Stride returns how many raw samples each retained point spans (the
// partial last point may span fewer).
func (s *Series) Stride() int { return s.stride }

// Len returns the number of rendered points, including the provisional
// partial bucket.
func (s *Series) Len() int {
	n := len(s.pts)
	if s.pend.n > 0 {
		n++
	}
	return n
}

// Points renders the retained points plus, if present, the provisional
// partial bucket as the last point.
func (s *Series) Points() []Point {
	out := make([]Point, 0, len(s.pts)+1)
	for _, p := range s.pts {
		out = append(out, Point{T: p.t, V: p.v})
	}
	if s.pend.n > 0 {
		out = append(out, Point{T: s.pend.t, V: s.pend.v})
	}
	return out
}

// Last returns the most recent rendered value (0 if empty).
func (s *Series) Last() float64 {
	if s.pend.n > 0 {
		return s.pend.v
	}
	if len(s.pts) == 0 {
		return 0
	}
	return s.pts[len(s.pts)-1].v
}

// Total summarizes the whole series under its Agg — the scalar SLO
// objectives evaluate: sum of all samples for AggSum, latest value for
// AggLast, maximum for AggMax, sample-weighted mean for AggMean. ok is
// false when the series has no data.
func (s *Series) Total() (v float64, ok bool) {
	if len(s.pts) == 0 && s.pend.n == 0 {
		return 0, false
	}
	all := s.pts
	if s.pend.n > 0 {
		all = append(append([]point(nil), s.pts...), s.pend)
	}
	switch s.agg {
	case AggSum:
		for _, p := range all {
			v += p.v
		}
	case AggMax:
		v = all[0].v
		for _, p := range all[1:] {
			if p.v > v {
				v = p.v
			}
		}
	case AggMean:
		var wsum float64
		var n int
		for _, p := range all {
			wsum += p.v * float64(p.n)
			n += p.n
		}
		v = wsum / float64(n)
	default: // AggLast
		v = all[len(all)-1].v
	}
	return v, true
}

// SeriesDump is the compact deterministic JSON encoding of a series:
// points are [unix_seconds, value] pairs. encoding/json renders floats
// with strconv's shortest round-trip form, so two identical series
// always marshal to identical bytes.
type SeriesDump struct {
	Name   string       `json:"name"`
	Agg    string       `json:"agg"`
	Stride int          `json:"stride"`
	Points [][2]float64 `json:"points"`
}

// Dump renders the series for JSON transport.
func (s *Series) Dump() SeriesDump {
	pts := s.Points()
	d := SeriesDump{Name: s.name, Agg: s.agg.String(), Stride: s.stride,
		Points: make([][2]float64, 0, len(pts))}
	for _, p := range pts {
		d.Points = append(d.Points, [2]float64{float64(p.T.Unix()), p.V})
	}
	return d
}

// SampleMode says how a Recorder turns a registry family into one
// scalar per sample tick.
type SampleMode int

const (
	// ModeValue samples the family's current summed value (level).
	ModeValue SampleMode = iota
	// ModeDelta samples the increase since the previous tick (rate).
	ModeDelta
	// ModeQuantile estimates a quantile from the histogram bucket
	// counts accumulated since the previous tick.
	ModeQuantile
)

// LabelFilter restricts a sample to series whose value of Label is in
// Values. A nil filter matches every series of the family.
type LabelFilter struct {
	Label  string
	Values []string
}

// SampleSpec declares one recorded series: which registry family to
// sample, how to reduce it to a scalar each tick (Mode/Q/Filter), how
// the Series downsamples over time (TimeAgg), and how the fleet folds
// the per-tenant scalars into the fleet-wide series (CrossAgg).
type SampleSpec struct {
	// Name is the recorded series name (also the `series` label on the
	// kwo_series_* gauges).
	Name string
	// Family is the registry metric family to sample.
	Family string
	// Mode reduces the family to one scalar per tick.
	Mode SampleMode
	// Q is the quantile for ModeQuantile (e.g. 0.99).
	Q float64
	// Filter optionally restricts which series of the family count.
	Filter *LabelFilter
	// TimeAgg is the Series' own downsampling aggregation.
	TimeAgg Agg
	// CrossAgg is how the fleet combines tenant values at one tick.
	CrossAgg Agg
}

// Recorder samples a fixed set of registry families into bounded
// Series on demand — the fleet calls Sample once per epoch boundary on
// the simulation clock. It keeps the previous tick's counter values and
// histogram buckets so delta and quantile modes are per-interval, and
// mirrors each series' latest value and point count onto the hub's
// kwo_series_last / kwo_series_points gauges.
//
// A Recorder is not self-locking: the fleet samples each tenant from at
// most one goroutine at a time (epoch barriers order the handoffs),
// matching the rest of the per-tenant stack.
type Recorder struct {
	hub    *Hub
	specs  []SampleSpec
	series []*Series
	prev   []float64
	prevHist [][]uint64
	gLast  []*Gauge
	gPts   []*Gauge
}

// NewRecorder builds a recorder over the hub's registry. Registering
// primes one kwo_series_last / kwo_series_points gauge per spec, so the
// recorded-series catalog is visible on /metrics from the first scrape.
func NewRecorder(h *Hub, specs []SampleSpec, budget int) *Recorder {
	rec := &Recorder{
		hub:      h,
		specs:    append([]SampleSpec(nil), specs...),
		series:   make([]*Series, len(specs)),
		prev:     make([]float64, len(specs)),
		prevHist: make([][]uint64, len(specs)),
		gLast:    make([]*Gauge, len(specs)),
		gPts:     make([]*Gauge, len(specs)),
	}
	for i, sp := range rec.specs {
		rec.series[i] = NewSeries(sp.Name, sp.TimeAgg, budget)
		rec.gLast[i] = h.SeriesLast.With(sp.Name)
		rec.gPts[i] = h.SeriesPoints.With(sp.Name)
	}
	return rec
}

// Sample takes one tick at time t: every spec is reduced to a scalar,
// appended to its series, and returned in spec order (the fleet feeds
// these into its cross-tenant aggregate series).
func (rec *Recorder) Sample(t time.Time) []float64 {
	out := make([]float64, len(rec.specs))
	for i, sp := range rec.specs {
		var v float64
		switch sp.Mode {
		case ModeDelta:
			cur := rec.hub.Registry.familyValue(sp.Family, sp.Filter)
			v = cur - rec.prev[i]
			rec.prev[i] = cur
		case ModeQuantile:
			bounds, counts, ok := rec.hub.Registry.familyBuckets(sp.Family, sp.Filter)
			if ok {
				delta := bucketDelta(counts, rec.prevHist[i])
				v = bucketQuantile(sp.Q, bounds, delta)
				rec.prevHist[i] = counts
			}
		default: // ModeValue
			v = rec.hub.Registry.familyValue(sp.Family, sp.Filter)
		}
		rec.series[i].Append(t, v)
		out[i] = v
		rec.gLast[i].Set(v)
		rec.gPts[i].Set(float64(rec.series[i].Len()))
	}
	return out
}

// Series returns the recorded series named name, or nil.
func (rec *Recorder) Series(name string) *Series {
	for i, sp := range rec.specs {
		if sp.Name == name {
			return rec.series[i]
		}
	}
	return nil
}

// Dump renders every recorded series in spec order.
func (rec *Recorder) Dump() []SeriesDump {
	out := make([]SeriesDump, len(rec.series))
	for i, s := range rec.series {
		out[i] = s.Dump()
	}
	return out
}

// Specs returns the recorder's sample specs (callers must not mutate).
func (rec *Recorder) Specs() []SampleSpec { return rec.specs }

// familyValue sums the current value of every matching series of a
// family (histogram series contribute their observation count). Unknown
// family or filter label → 0. Iteration follows first-use order, which
// is deterministic per run, so float accumulation order is stable.
func (r *Registry) familyValue(name string, filt *LabelFilter) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		return 0
	}
	fi := filterIndex(f, filt)
	if filt != nil && fi < 0 {
		return 0
	}
	var sum float64
	for _, key := range f.order {
		s := f.series[key]
		if fi >= 0 && !filterMatch(filt, s.labelValues[fi]) {
			continue
		}
		if f.typ == TypeHistogram {
			sum += float64(s.count)
		} else {
			sum += s.val
		}
	}
	return sum
}

// familyBuckets sums the per-bucket counts of every matching series of
// a histogram family. ok is false when the family is unknown, not a
// histogram, or the filter label does not exist.
func (r *Registry) familyBuckets(name string, filt *LabelFilter) (bounds []float64, counts []uint64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, okF := r.families[name]
	if !okF || f.typ != TypeHistogram {
		return nil, nil, false
	}
	fi := filterIndex(f, filt)
	if filt != nil && fi < 0 {
		return nil, nil, false
	}
	counts = make([]uint64, len(f.buckets)+1)
	for _, key := range f.order {
		s := f.series[key]
		if fi >= 0 && !filterMatch(filt, s.labelValues[fi]) {
			continue
		}
		for i, c := range s.counts {
			counts[i] += c
		}
	}
	return f.buckets, counts, true
}

// filterIndex returns the label index the filter applies to, -1 when
// there is no filter or the family lacks the label.
func filterIndex(f *family, filt *LabelFilter) int {
	if filt == nil {
		return -1
	}
	for i, l := range f.labels {
		if l == filt.Label {
			return i
		}
	}
	return -1
}

func filterMatch(filt *LabelFilter, value string) bool {
	for _, v := range filt.Values {
		if v == value {
			return true
		}
	}
	return false
}

// bucketDelta subtracts the previous tick's bucket counts (nil or
// shorter prev contributes zero).
func bucketDelta(cur, prev []uint64) []uint64 {
	out := make([]uint64, len(cur))
	for i, c := range cur {
		var p uint64
		if i < len(prev) {
			p = prev[i]
		}
		if c > p {
			out[i] = c - p
		}
	}
	return out
}

// bucketQuantile estimates quantile q from non-cumulative bucket counts
// (len(bounds)+1 buckets, last is +Inf). It returns the upper bound of
// the bucket holding the q-th observation — a conservative (upper)
// estimate, with the +Inf bucket clamped to the largest finite bound.
// Zero observations → 0.
func bucketQuantile(q float64, bounds []float64, counts []uint64) float64 {
	if len(bounds) == 0 {
		return 0
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if float64(target) < q*float64(total) {
		target++
	}
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= target {
			if i < len(bounds) {
				return bounds[i]
			}
			return bounds[len(bounds)-1] // +Inf bucket: clamp to last finite bound
		}
	}
	return bounds[len(bounds)-1]
}

// String renders a compact human summary, for logs and tests.
func (s *Series) String() string {
	return fmt.Sprintf("%s[%s stride=%d pts=%d]", s.name, s.agg, s.stride, s.Len())
}
