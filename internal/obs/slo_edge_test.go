package obs

import (
	"testing"
)

// TestEvaluateBurnAtCapExactly pins the boundary arithmetic: a ratio
// sitting exactly at BurnCap times its target reports Burn == BurnCap
// (capBurn keeps equality, only clamps beyond), and anything past the
// cap clamps to the same value — burn stays finite and JSON-encodable.
func TestEvaluateBurnAtCapExactly(t *testing.T) {
	objs := []Objective{{Name: "abandon", Kind: RatioUnder,
		Num: []string{"bad"}, Den: []string{"all"}, Target: 0.001}}

	// value = 1.0, target = 0.001 → burn = exactly 1000 = BurnCap.
	at := seriesMap(map[string]*Series{
		"bad": mkSeries("bad", AggSum, 10),
		"all": mkSeries("all", AggSum, 10),
	})
	v := Evaluate(objs, at)[0]
	if v.Burn != BurnCap {
		t.Fatalf("burn at cap boundary = %v, want exactly %v", v.Burn, BurnCap)
	}
	if v.Pass {
		t.Fatalf("verdict at cap passes: %+v", v)
	}

	// value = 2.0 → raw burn 2000 clamps to the cap.
	over := seriesMap(map[string]*Series{
		"bad": mkSeries("bad", AggSum, 20),
		"all": mkSeries("all", AggSum, 10),
	})
	v = Evaluate(objs, over)[0]
	if v.Burn != BurnCap {
		t.Fatalf("burn past cap = %v, want clamped to %v", v.Burn, BurnCap)
	}
	if v.Value != 2 {
		t.Fatalf("value past cap = %v, want 2 (value itself is not clamped)", v.Value)
	}
}

// TestEvaluateZeroDenominatorPaths covers the two degenerate branches
// that must report BurnCap rather than Inf/NaN: a stay-under objective
// with a non-positive target but positive value, and a stay-over
// objective whose value collapsed to zero.
func TestEvaluateZeroDenominatorPaths(t *testing.T) {
	under := []Objective{{Name: "u", Kind: RatioUnder,
		Num: []string{"bad"}, Den: []string{"all"}, Target: 0}}
	v := Evaluate(under, seriesMap(map[string]*Series{
		"bad": mkSeries("bad", AggSum, 1),
		"all": mkSeries("all", AggSum, 10),
	}))[0]
	if v.Burn != BurnCap || v.Pass {
		t.Fatalf("zero-target under verdict = %+v, want burn %v fail", v, BurnCap)
	}

	over := []Objective{{Name: "o", Kind: RatioOver,
		Num: []string{"savings"}, Den: []string{"total"}, Target: 0.05}}
	v = Evaluate(over, seriesMap(map[string]*Series{
		"savings": mkSeries("savings", AggSum, 0),
		"total":   mkSeries("total", AggSum, 100),
	}))[0]
	if v.Burn != BurnCap || v.Pass {
		t.Fatalf("zero-value over verdict = %+v, want burn %v fail", v, BurnCap)
	}
}

// TestEvaluateFrozenSeriesStable is the quarantine contract at the obs
// layer: evaluating objectives over a series that will never be
// appended to again (a quarantined tenant's frozen rings) is pure and
// repeatable — the same verdicts, byte for byte, every time.
func TestEvaluateFrozenSeriesStable(t *testing.T) {
	frozen := map[string]*Series{
		"bad": mkSeries("bad", AggSum, 1, 0, 2, 1),
		"all": mkSeries("all", AggSum, 10, 10, 10, 10),
	}
	objs := []Objective{{Name: "abandon", Kind: RatioUnder,
		Num: []string{"bad"}, Den: []string{"all"}, Target: 0.05}}

	first := Evaluate(objs, seriesMap(frozen))
	for i := 0; i < 5; i++ {
		again := Evaluate(objs, seriesMap(frozen))
		if len(again) != len(first) || again[0] != first[0] {
			t.Fatalf("evaluation %d over frozen series diverged: %+v vs %+v", i, again[0], first[0])
		}
	}
	if first[0].Pass || first[0].Burn != 2 {
		t.Fatalf("frozen verdict = %+v, want fail with burn 2", first[0])
	}
	// Evaluation must not have perturbed the series themselves.
	if tot, _ := frozen["bad"].Total(); tot != 4 {
		t.Fatalf("frozen series mutated by evaluation: total = %v, want 4", tot)
	}
}
