package obs

// Epoch-aligned export/import of recorded series: the codec behind the
// fleet's crash-recovery checkpoints and the portal's offline fleet
// view. Unlike SeriesDump — a display rendering with float unix-second
// timestamps — a SeriesSnapshot is full fidelity: timestamps are int64
// UnixNano (a float64 cannot represent nanosecond epochs exactly) and
// per-point fold counts are retained, so a restored series continues
// appending and downsampling exactly where the original would have.

import (
	"fmt"
	"time"
)

// SnapPoint is one retained bucket in a SeriesSnapshot: bucket-ending
// UnixNano timestamp, aggregated value, and fold count (the AggMean
// weight).
type SnapPoint struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
	N int     `json:"n"`
}

// SeriesSnapshot is the versioned-checkpoint encoding of a Series. Two
// identical series always marshal to identical JSON bytes (fixed field
// order, shortest round-trip floats), so checkpoint verification can
// compare snapshots byte for byte.
type SeriesSnapshot struct {
	Name   string      `json:"name"`
	Agg    string      `json:"agg"`
	Budget int         `json:"budget"`
	Stride int         `json:"stride"`
	Points []SnapPoint `json:"points,omitempty"`
	// Pend is the provisional partial bucket, if one is accumulating.
	Pend *SnapPoint `json:"pend,omitempty"`
}

func snapPoint(p point) SnapPoint {
	return SnapPoint{T: p.t.UnixNano(), V: p.v, N: p.n}
}

func (sp SnapPoint) point() point {
	return point{t: time.Unix(0, sp.T).UTC(), v: sp.V, n: sp.N}
}

// Snapshot exports the series' full internal state.
func (s *Series) Snapshot() SeriesSnapshot {
	snap := SeriesSnapshot{
		Name:   s.name,
		Agg:    s.agg.String(),
		Budget: s.budget,
		Stride: s.stride,
	}
	if len(s.pts) > 0 {
		snap.Points = make([]SnapPoint, len(s.pts))
		for i, p := range s.pts {
			snap.Points[i] = snapPoint(p)
		}
	}
	if s.pend.n > 0 {
		p := snapPoint(s.pend)
		snap.Pend = &p
	}
	return snap
}

// ParseAgg decodes an Agg wire name (the Agg.String values).
func ParseAgg(s string) (Agg, error) {
	switch s {
	case "last":
		return AggLast, nil
	case "sum":
		return AggSum, nil
	case "max":
		return AggMax, nil
	case "mean":
		return AggMean, nil
	}
	return AggLast, fmt.Errorf("obs: unknown series agg %q", s)
}

// RestoreSeries rebuilds a Series from a snapshot. The restored series
// behaves identically to the original under further Appends.
func RestoreSeries(snap SeriesSnapshot) (*Series, error) {
	agg, err := ParseAgg(snap.Agg)
	if err != nil {
		return nil, fmt.Errorf("obs: restore series %q: %w", snap.Name, err)
	}
	if snap.Budget < 4 || snap.Budget%2 == 1 {
		return nil, fmt.Errorf("obs: restore series %q: invalid budget %d", snap.Name, snap.Budget)
	}
	if snap.Stride < 1 {
		return nil, fmt.Errorf("obs: restore series %q: invalid stride %d", snap.Name, snap.Stride)
	}
	if len(snap.Points) > snap.Budget {
		return nil, fmt.Errorf("obs: restore series %q: %d points over budget %d",
			snap.Name, len(snap.Points), snap.Budget)
	}
	s := &Series{name: snap.Name, agg: agg, budget: snap.Budget, stride: snap.Stride}
	for _, sp := range snap.Points {
		s.pts = append(s.pts, sp.point())
	}
	if snap.Pend != nil {
		s.pend = snap.Pend.point()
	}
	return s, nil
}

// RecorderSnapshot captures a Recorder's mutable state: every series
// plus the previous-tick counter values and histogram buckets that make
// delta and quantile modes per-interval. The sample specs themselves are
// configuration, not state — a restore target must be built over the
// same specs.
type RecorderSnapshot struct {
	Series   []SeriesSnapshot `json:"series"`
	Prev     []float64        `json:"prev"`
	PrevHist [][]uint64       `json:"prev_hist"`
}

// Snapshot exports the recorder's state in spec order.
func (rec *Recorder) Snapshot() RecorderSnapshot {
	snap := RecorderSnapshot{
		Series:   make([]SeriesSnapshot, len(rec.series)),
		Prev:     append([]float64(nil), rec.prev...),
		PrevHist: make([][]uint64, len(rec.prevHist)),
	}
	for i, s := range rec.series {
		snap.Series[i] = s.Snapshot()
	}
	for i, h := range rec.prevHist {
		if h != nil {
			snap.PrevHist[i] = append([]uint64(nil), h...)
		}
	}
	return snap
}

// Restore replaces the recorder's state with a snapshot taken from a
// recorder over the same sample specs. Subsequent Samples continue
// exactly as the snapshotted recorder would have (same deltas, same
// quantile baselines, same downsampling cadence).
func (rec *Recorder) Restore(snap RecorderSnapshot) error {
	if len(snap.Series) != len(rec.specs) || len(snap.Prev) != len(rec.specs) ||
		len(snap.PrevHist) != len(rec.specs) {
		return fmt.Errorf("obs: recorder restore: snapshot has %d/%d/%d series/prev/hist entries, recorder has %d specs",
			len(snap.Series), len(snap.Prev), len(snap.PrevHist), len(rec.specs))
	}
	series := make([]*Series, len(rec.specs))
	for i, sp := range rec.specs {
		if snap.Series[i].Name != sp.Name {
			return fmt.Errorf("obs: recorder restore: series %d is %q, spec expects %q",
				i, snap.Series[i].Name, sp.Name)
		}
		s, err := RestoreSeries(snap.Series[i])
		if err != nil {
			return err
		}
		series[i] = s
	}
	rec.series = series
	rec.prev = append([]float64(nil), snap.Prev...)
	rec.prevHist = make([][]uint64, len(snap.PrevHist))
	for i, h := range snap.PrevHist {
		if h != nil {
			rec.prevHist[i] = append([]uint64(nil), h...)
		}
	}
	for i, s := range rec.series {
		rec.gLast[i].Set(s.Last())
		rec.gPts[i].Set(float64(s.Len()))
	}
	return nil
}
