package obs

import (
	"strings"
	"testing"
	"time"
)

// sanitizeMetricName folds arbitrary bytes into a valid metric-name
// suffix so the round-trip half of the fuzz target can derive a
// registry recipe from raw input.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	for i := 0; i < len(s) && b.Len() < 40; i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			b.WriteByte(c)
		}
	}
	if b.Len() == 0 {
		return "x"
	}
	return b.String()
}

// FuzzParseText drives the strict exposition parser two ways:
//
//  1. Raw: arbitrary bytes must never panic, and an accepted parse
//     must yield usable lookup maps.
//  2. Round-trip: the input doubles as a recipe (metric-name suffix,
//     label value, help text) for a registry whose WritePrometheus
//     output the parser must accept with exact families and sums —
//     writer and parser can never drift apart on escaping or syntax.
func FuzzParseText(f *testing.F) {
	// A real hub exposition (full catalog at zero) as the richest seed.
	hub := NewHub(func() time.Time { return time.Unix(0, 0).UTC() })
	var real strings.Builder
	if err := hub.Registry.WritePrometheus(&real); err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(real.String()))
	f.Add([]byte(""))
	f.Add([]byte("# TYPE foo counter\nfoo 1\n"))
	f.Add([]byte("# TYPE foo bogus\n"))
	f.Add([]byte("# TYPE foo\n"))
	f.Add([]byte(`foo{l="a",m="b"} 2.5` + "\n"))
	f.Add([]byte(`foo{l="unterminated} 1` + "\n"))
	f.Add([]byte(`foo{l=a} 1` + "\n"))
	f.Add([]byte(`foo{l="esc\\\"quote"} 1` + "\n"))
	f.Add([]byte("foo\n"))
	f.Add([]byte("foo NaN\nbar +Inf\n"))
	f.Add([]byte("9bad 1\n"))
	f.Add([]byte("\xff\xfe\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		in := string(data)

		// Half 1: never panic, usable result on success.
		parsed, err := ParseText(strings.NewReader(in))
		if err == nil {
			_ = parsed.Has("kwo_anything")
			_ = parsed.Sum("kwo_anything")
			for name := range parsed.Samples {
				if name == "" {
					t.Fatalf("accepted an empty sample name in %q", in)
				}
			}
		}

		// Half 2: the writer's output for a recipe derived from the
		// input must round-trip through the strict parser.
		suffix := sanitizeMetricName(in)
		val := float64(len(data))
		r := NewRegistry()
		r.NewCounterVec("c_"+suffix, in, "l").With(in).Add(val)
		r.NewGauge("g_"+suffix, "fuzz gauge").Set(-val)
		r.NewHistogramVec("h_"+suffix, "fuzz histogram", []float64{1, 2.5}, "l").
			With(in).Observe(val)

		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		got, err := ParseText(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("parser rejected writer output: %v\n%s", err, b.String())
		}
		for _, fam := range []string{"c_" + suffix, "g_" + suffix, "h_" + suffix} {
			if !got.Has(fam) {
				t.Fatalf("round trip lost family %s\n%s", fam, b.String())
			}
		}
		if s := got.Sum("c_" + suffix); s != val {
			t.Fatalf("counter sum %v != %v after round trip", s, val)
		}
		if s := got.Sum("g_" + suffix); s != -val {
			t.Fatalf("gauge sum %v != %v after round trip", s, -val)
		}
		if c := got.Sum("h_" + suffix + "_count"); c != 1 {
			t.Fatalf("histogram count %v != 1 after round trip", c)
		}
	})
}
