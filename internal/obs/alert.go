package obs

// The alert plane: structured, deduplicated notifications derived from
// SLO verdicts. An AlertTracker watches per-tenant verdicts at every
// evaluation tick and fires a breach alert when an objective's burn
// crosses 1, a recovery alert when it returns under budget, and a
// quarantine alert when the fleet freezes a tenant out. Alerts are
// evaluated on the simulation clock and sequenced deterministically, so
// two runs of the same seed produce byte-identical alert logs; only
// delivery (sinks, retries) touches the outside world.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// AlertKind is the typed vocabulary of the alert plane.
type AlertKind string

const (
	// AlertSLOBreach — an objective's error-budget burn crossed 1.
	AlertSLOBreach AlertKind = "slo-breach"
	// AlertSLORecovery — a breached objective returned under budget.
	AlertSLORecovery AlertKind = "slo-recovery"
	// AlertQuarantine — the fleet quarantined a tenant (panic or epoch
	// deadline exceeded) and froze it out of subsequent epochs.
	AlertQuarantine AlertKind = "tenant-quarantined"
)

// Alert is one structured alert event. Time always comes from the
// simulation clock; Seq orders alerts totally within one tracker.
type Alert struct {
	Seq       uint64    `json:"seq"`
	Time      time.Time `json:"time"`
	Kind      AlertKind `json:"kind"`
	Tenant    string    `json:"tenant"`
	Epoch     int       `json:"epoch"`
	Objective string    `json:"objective,omitempty"`
	Burn      float64   `json:"burn,omitempty"`
	Value     float64   `json:"value,omitempty"`
	Target    float64   `json:"target,omitempty"`
	Detail    string    `json:"detail,omitempty"`
}

// JSON renders the alert as one deterministic JSON line (fixed field
// order, shortest round-trip floats).
func (a Alert) JSON() string {
	var b strings.Builder
	fmt.Fprintf(&b, `{"seq":%d,"time":%q,"kind":%q,"tenant":%q,"epoch":%d`,
		a.Seq, a.Time.Format(time.RFC3339Nano), a.Kind, a.Tenant, a.Epoch)
	if a.Objective != "" {
		fmt.Fprintf(&b, `,"objective":%q`, a.Objective)
	}
	if a.Burn != 0 {
		fmt.Fprintf(&b, `,"burn":%s`, strconv.FormatFloat(a.Burn, 'g', -1, 64))
	}
	if a.Value != 0 {
		fmt.Fprintf(&b, `,"value":%s`, strconv.FormatFloat(a.Value, 'g', -1, 64))
	}
	if a.Target != 0 {
		fmt.Fprintf(&b, `,"target":%s`, strconv.FormatFloat(a.Target, 'g', -1, 64))
	}
	if a.Detail != "" {
		fmt.Fprintf(&b, `,"detail":%q`, a.Detail)
	}
	b.WriteByte('}')
	return b.String()
}

// String renders a compact single-line form for logs.
func (a Alert) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s #%d %s tenant=%s epoch=%d",
		a.Time.Format(time.RFC3339), a.Seq, a.Kind, a.Tenant, a.Epoch)
	if a.Objective != "" {
		fmt.Fprintf(&b, " objective=%s burn=%.2f", a.Objective, a.Burn)
	}
	if a.Detail != "" {
		fmt.Fprintf(&b, " detail=%q", a.Detail)
	}
	return b.String()
}

// AlertSink delivers alerts to the outside world. Unlike the trace
// bus's Sink, Send returns an error so callers can retry: alerts are
// the one obs output whose loss an operator would care about.
type AlertSink interface {
	Send(Alert) error
}

// MemoryAlertSink captures alerts in memory, for tests and the live
// /fleet/slo payload.
type MemoryAlertSink struct {
	mu     sync.Mutex
	alerts []Alert
}

// Send implements AlertSink; it never fails.
func (m *MemoryAlertSink) Send(a Alert) error {
	m.mu.Lock()
	m.alerts = append(m.alerts, a)
	m.mu.Unlock()
	return nil
}

// Alerts returns a copy of everything captured so far.
func (m *MemoryAlertSink) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Alert(nil), m.alerts...)
}

// Count returns how many alerts of the kind were captured.
func (m *MemoryAlertSink) Count(kind AlertKind) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, a := range m.alerts {
		if a.Kind == kind {
			n++
		}
	}
	return n
}

// JSONLAlertSink writes one deterministic JSON line per alert.
type JSONLAlertSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewJSONLAlertSink wraps w.
func NewJSONLAlertSink(w io.Writer) *JSONLAlertSink { return &JSONLAlertSink{w: w} }

// Send implements AlertSink, returning the write error so a RetrySink
// (or the caller) can retry the line.
func (j *JSONLAlertSink) Send(a Alert) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err := io.WriteString(j.w, a.JSON()+"\n")
	return err
}

// RetryAlertSink wraps a sink with bounded retry and exponential
// backoff. The Sleep hook is injectable so simulated/deterministic
// callers retry without real waiting; nil means no sleep at all.
type RetryAlertSink struct {
	// Sink is the delegate that actually delivers.
	Sink AlertSink
	// Attempts is the total number of tries per alert (default 3).
	Attempts int
	// Backoff is the wait before the first retry; it doubles each
	// further retry (default 10ms).
	Backoff time.Duration
	// Sleep waits between attempts. nil skips waiting entirely, which
	// keeps deterministic harnesses free of wall-clock time.
	Sleep func(time.Duration)
}

// Send tries the delegate up to Attempts times, backing off between
// tries, and returns the last error if every attempt failed.
func (r *RetryAlertSink) Send(a Alert) error {
	attempts := r.Attempts
	if attempts <= 0 {
		attempts = 3
	}
	backoff := r.Backoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 && r.Sleep != nil {
			r.Sleep(backoff)
			backoff *= 2
		}
		if err = r.Sink.Send(a); err == nil {
			return nil
		}
	}
	return fmt.Errorf("obs: alert sink failed after %d attempts: %w", attempts, err)
}

// AlertTracker turns per-tenant SLO verdicts into deduplicated alerts:
// a breach fires only when a (tenant, objective) pair transitions from
// under budget to over, and a recovery only on the way back. The
// tracker is not self-locking — the fleet drives it sequentially on
// epoch barriers under the observability plane's lock.
type AlertTracker struct {
	seq    uint64
	firing map[string]bool
	log    []Alert
}

// NewAlertTracker returns an empty tracker.
func NewAlertTracker() *AlertTracker {
	return &AlertTracker{firing: make(map[string]bool)}
}

func firingKey(tenant, objective string) string { return tenant + "/" + objective }

// Observe evaluates one tenant's verdicts at one tick and returns the
// alerts that newly fired (appended to the tracker's log as well).
func (tr *AlertTracker) Observe(t time.Time, epoch int, tenant string, verdicts []Verdict) []Alert {
	var fired []Alert
	for _, v := range verdicts {
		key := firingKey(tenant, v.Objective)
		switch {
		case !v.Pass && !tr.firing[key]:
			tr.firing[key] = true
			fired = append(fired, tr.emit(Alert{
				Time: t, Kind: AlertSLOBreach, Tenant: tenant, Epoch: epoch,
				Objective: v.Objective, Burn: v.Burn, Value: v.Value, Target: v.Target,
				Detail: v.Detail,
			}))
		case v.Pass && tr.firing[key]:
			delete(tr.firing, key)
			fired = append(fired, tr.emit(Alert{
				Time: t, Kind: AlertSLORecovery, Tenant: tenant, Epoch: epoch,
				Objective: v.Objective, Burn: v.Burn, Value: v.Value, Target: v.Target,
				Detail: v.Detail,
			}))
		}
	}
	return fired
}

// Quarantine records a tenant-quarantined alert.
func (tr *AlertTracker) Quarantine(t time.Time, epoch int, tenant, reason string) Alert {
	return tr.emit(Alert{
		Time: t, Kind: AlertQuarantine, Tenant: tenant, Epoch: epoch, Detail: reason,
	})
}

func (tr *AlertTracker) emit(a Alert) Alert {
	tr.seq++
	a.Seq = tr.seq
	tr.log = append(tr.log, a)
	return a
}

// Seq returns the number of alerts emitted so far.
func (tr *AlertTracker) Seq() uint64 { return tr.seq }

// Log returns a copy of every alert emitted, in sequence order.
func (tr *AlertTracker) Log() []Alert { return append([]Alert(nil), tr.log...) }

// FiringKeys returns the currently-breached (tenant, objective) pairs
// as sorted "tenant/objective" strings — the checkpointed dedup state.
func (tr *AlertTracker) FiringKeys() []string {
	keys := make([]string, 0, len(tr.firing))
	for k := range tr.firing {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
