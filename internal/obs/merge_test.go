package obs

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
)

// mergeTestRegistry builds a registry shaped like a tenant hub:
// counters, gauges, and histograms, labeled and not, with values
// derived from idx so registries differ.
func mergeTestRegistry(idx, series int) *Registry {
	r := NewRegistry()
	r.NewCounter("kwo_plain_total", "plain counter").Add(float64(idx))
	g := r.NewGaugeVec("kwo_gauge", "labeled gauge", "warehouse", "state")
	cv := r.NewCounterVec("kwo_actions_total", "labeled counter", "kind")
	h := r.NewHistogramVec("kwo_latency_seconds", "latency", ExponentialBuckets(0.1, 2, 6), "warehouse")
	for s := 0; s < series; s++ {
		wh := fmt.Sprintf("WH_%d", s)
		g.With(wh, "running").Set(float64(idx*100 + s))
		cv.With(wh).Add(float64(s + 1))
		for o := 0; o <= s%5; o++ {
			h.With(wh).Observe(0.05 * float64(idx+o+1))
		}
	}
	return r
}

func mergeTestRegs(n, series int) []LabeledRegistry {
	regs := make([]LabeledRegistry, n)
	for i := range regs {
		regs[i] = LabeledRegistry{Label: fmt.Sprintf("t%03d", i), Registry: mergeTestRegistry(i, series)}
	}
	return regs
}

// TestMergedStreamingMatchesNaive pins the streaming renderer's output
// byte-for-byte to the pre-streaming in-memory implementation, across
// registries with partial family overlap, nil entries, escape-needing
// label values, and an empty label name (no extra label).
func TestMergedStreamingMatchesNaive(t *testing.T) {
	regs := mergeTestRegs(5, 7)
	// Partial overlap: one registry carries an extra family, another an
	// extra series with a label value that needs escaping.
	regs[1].Registry.NewCounter("kwo_only_here_total", "family missing elsewhere").Inc()
	regs[2].Registry.NewGaugeVec("kwo_gauge", "labeled gauge", "warehouse", "state").
		With(`nasty"wh\name`+"\nx", "suspended").Set(4.25)
	regs = append(regs, LabeledRegistry{Label: "tnil", Registry: nil})
	for _, labelName := range []string{"tenant", ""} {
		var fast, naive bytes.Buffer
		if err := WriteMergedPrometheus(&fast, labelName, regs); err != nil {
			t.Fatalf("streaming (label %q): %v", labelName, err)
		}
		if err := WriteMergedPrometheusNaive(&naive, labelName, regs); err != nil {
			t.Fatalf("naive (label %q): %v", labelName, err)
		}
		if !bytes.Equal(fast.Bytes(), naive.Bytes()) {
			t.Fatalf("label %q: streaming output differs from naive renderer:\n--- streaming ---\n%s\n--- naive ---\n%s",
				labelName, firstDiff(fast.String(), naive.String()), "")
		}
		if _, err := ParseText(bytes.NewReader(fast.Bytes())); labelName != "" && err != nil {
			t.Fatalf("streamed exposition does not parse strictly: %v", err)
		}
	}
}

// firstDiff returns the region around the first differing byte, for
// readable failures.
func firstDiff(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("first diff at byte %d:\nfast:  %q\nnaive: %q", i, a[lo:min(i+80, len(a))], b[lo:min(i+80, len(b))])
		}
	}
	return fmt.Sprintf("length mismatch: %d vs %d", len(a), len(b))
}

// TestMergedLabelNameMismatch is the regression for the label-set
// consistency check: two registries sharing a family name with the SAME
// label count but DIFFERENT label names must refuse to merge — the old
// count-only check let them through.
func TestMergedLabelNameMismatch(t *testing.T) {
	a := NewRegistry()
	a.NewCounterVec("kwo_shared_total", "shared", "warehouse").With("WH").Inc()
	b := NewRegistry()
	b.NewCounterVec("kwo_shared_total", "shared", "kind").With("resize").Inc()
	regs := []LabeledRegistry{{Label: "t00", Registry: a}, {Label: "t01", Registry: b}}
	err := WriteMergedPrometheus(io.Discard, "tenant", regs)
	if err == nil {
		t.Fatal("same-count different-name label sets merged without error")
	}
	if !strings.Contains(err.Error(), "warehouse") || !strings.Contains(err.Error(), "kind") {
		t.Errorf("error should name both label sets, got: %v", err)
	}
	if naiveErr := WriteMergedPrometheusNaive(io.Discard, "tenant", regs); naiveErr == nil {
		t.Error("naive reference renderer missed the label-name mismatch")
	}
}

// TestMergedTypeMismatch keeps the pre-existing type check intact.
func TestMergedTypeMismatch(t *testing.T) {
	a := NewRegistry()
	a.NewCounter("kwo_metric_total", "as counter").Inc()
	b := NewRegistry()
	b.NewGauge("kwo_metric_total", "as gauge").Set(1)
	err := WriteMergedPrometheus(io.Discard, "tenant", []LabeledRegistry{
		{Label: "t00", Registry: a}, {Label: "t01", Registry: b}})
	if err == nil {
		t.Fatal("type mismatch merged without error")
	}
}

// TestMergedScrapeAllocsFlat is the streaming renderer's allocation
// regression: steady-state allocations are O(families), independent of
// how many series each family carries — the exposition is never
// materialized. Catches any reintroduction of per-series string
// building or whole-output buffering.
func TestMergedScrapeAllocsFlat(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under -race")
	}
	measure := func(regs []LabeledRegistry) float64 {
		// Warm the pooled scratch so growth to high-water marks is not
		// billed to the steady state.
		if err := WriteMergedPrometheus(io.Discard, "tenant", regs); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(20, func() {
			if err := WriteMergedPrometheus(io.Discard, "tenant", regs); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := measure(mergeTestRegs(4, 4))
	big := measure(mergeTestRegs(4, 256)) // 64× the series, same families
	if big > small*1.5+16 {
		t.Errorf("allocations scale with series count: %0.f allocs at 256 series/registry vs %0.f at 4",
			big, small)
	}
	wide := measure(mergeTestRegs(64, 16)) // 16× the registries
	perRegistry := (wide - small) / 60
	if perRegistry > 8 {
		t.Errorf("allocations grow %.1f/registry; streaming scrape should add O(1) per source (small=%0.f wide=%0.f)",
			perRegistry, small, wide)
	}
}
