// Package obs is KWO's zero-dependency observability layer: a metrics
// registry (counters, gauges, fixed-bucket histograms), a ring-buffered
// structured event bus with pluggable sinks, and an ops HTTP handler
// serving Prometheus text exposition, recent events, and pprof.
//
// Everything in this package is a pure observer of the simulation: it
// draws no randomness, schedules nothing that mutates warehouse state,
// and takes every timestamp from the injected clock (the simulation
// scheduler), never the wall clock. Instrumented runs are therefore
// byte-identical to uninstrumented ones — enforced by the golden-trace
// test and the simtest checkObsConsistency invariant.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// MetricType distinguishes the three instrument families.
type MetricType int

const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

// String returns the Prometheus TYPE keyword.
func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. The simulation itself is single-threaded, but the
// ops endpoint reads concurrently from HTTP goroutines, so every
// mutation and read takes the registry lock.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name    string
	help    string
	typ     MetricType
	labels  []string
	buckets []float64 // histograms only; upper bounds, +Inf implicit
	series  map[string]*series
	order   []string // series keys in first-use order; sorted at render
}

// series is one (family, label-values) sample set.
type series struct {
	labelValues []string
	val         float64  // counter / gauge
	counts      []uint64 // histogram: per-bucket cumulative at render, stored non-cumulative
	sum         float64
	count       uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, typ MetricType, buckets []float64, labels ...string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, typ, f.typ))
		}
		if len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with labels %v (was %v)", name, labels, f.labels))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		typ:     typ,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]*series),
	}
	r.families[name] = f
	return f
}

func (f *family) get(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	s, ok := f.series[key]
	if !ok {
		s = &series{labelValues: append([]string(nil), values...)}
		if f.typ == TypeHistogram {
			s.counts = make([]uint64, len(f.buckets)+1)
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter is a monotonically increasing value.
type Counter struct {
	r *Registry
	s *series
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v; v must be non-negative.
func (c *Counter) Add(v float64) {
	if c == nil {
		return
	}
	c.r.mu.Lock()
	c.s.val += v
	c.r.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	return c.s.val
}

// Gauge is a value that can go up and down.
type Gauge struct {
	r *Registry
	s *series
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.r.mu.Lock()
	g.s.val = v
	g.r.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.r.mu.Lock()
	defer g.r.mu.Unlock()
	return g.s.val
}

// Histogram accumulates observations into fixed buckets.
type Histogram struct {
	r *Registry
	f *family
	s *series
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.r.mu.Lock()
	idx := sort.SearchFloat64s(h.f.buckets, v) // first bucket with upper bound >= v
	h.s.counts[idx]++
	h.s.sum += v
	h.s.count++
	h.r.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	return h.s.count
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct {
	r *Registry
	f *family
}

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	v.r.mu.Lock()
	defer v.r.mu.Unlock()
	return &Counter{r: v.r, s: v.f.get(values)}
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct {
	r *Registry
	f *family
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	v.r.mu.Lock()
	defer v.r.mu.Unlock()
	return &Gauge{r: v.r, s: v.f.get(values)}
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct {
	r *Registry
	f *family
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	v.r.mu.Lock()
	defer v.r.mu.Unlock()
	return &Histogram{r: v.r, f: v.f, s: v.f.get(values)}
}

// NewCounter registers (or finds) an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.family(name, help, TypeCounter, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Counter{r: r, s: f.get(nil)}
}

// NewCounterVec registers (or finds) a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r: r, f: r.family(name, help, TypeCounter, nil, labels...)}
}

// NewGauge registers (or finds) an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.family(name, help, TypeGauge, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Gauge{r: r, s: f.get(nil)}
}

// NewGaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r: r, f: r.family(name, help, TypeGauge, nil, labels...)}
}

// NewHistogramVec registers (or finds) a labeled histogram family with
// the given bucket upper bounds (ascending; +Inf is implicit).
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r: r, f: r.family(name, help, TypeHistogram, buckets, labels...)}
}

// ExponentialBuckets returns n bucket upper bounds starting at start,
// each factor times the previous.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// CounterSum returns the sum across all series of a counter (or gauge)
// family, or 0 if the family is unknown.
func (r *Registry) CounterSum(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		return 0
	}
	var sum float64
	for _, s := range f.series {
		sum += s.val
	}
	return sum
}

// Sample is one rendered series of a family.
type Sample struct {
	LabelValues []string
	Value       float64 // counter/gauge value, histogram count
	Sum         float64 // histogram only
}

// FamilySnapshot is a point-in-time copy of a metric family.
type FamilySnapshot struct {
	Name    string
	Help    string
	Type    MetricType
	Labels  []string
	Samples []Sample
}

// Snapshot copies every family, samples sorted by label values, for
// dashboards and tests.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]FamilySnapshot, 0, len(names))
	for _, n := range names {
		f := r.families[n]
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ, Labels: append([]string(nil), f.labels...)}
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			smp := Sample{LabelValues: append([]string(nil), s.labelValues...)}
			if f.typ == TypeHistogram {
				smp.Value = float64(s.count)
				smp.Sum = s.sum
			} else {
				smp.Value = s.val
			}
			fs.Samples = append(fs.Samples, smp)
		}
		out = append(out, fs)
	}
	return out
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4). Families and series are sorted so output is
// deterministic for a given registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		f := r.families[n]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		writeFamilySeries(&b, f, "", "")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeFamilySeries renders every series of f in sorted key order.
// When extraName is non-empty, the pair extraName="extraValue" is
// prepended to every sample's label set — the merged multi-tenant
// exposition uses it to keep per-tenant series apart. The caller must
// hold the owning registry's lock.
func writeFamilySeries(b *strings.Builder, f *family, extraName, extraValue string) {
	names := f.labels
	if extraName != "" {
		names = append([]string{extraName}, f.labels...)
	}
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	for _, k := range keys {
		s := f.series[k]
		values := s.labelValues
		if extraName != "" {
			values = append([]string{extraValue}, s.labelValues...)
		}
		switch f.typ {
		case TypeHistogram:
			var cum uint64
			for i, ub := range f.buckets {
				cum += s.counts[i]
				fmt.Fprintf(b, "%s_bucket{%s} %d\n", f.name,
					labelPairs(names, values, "le", formatFloat(ub)), cum)
			}
			cum += s.counts[len(f.buckets)]
			fmt.Fprintf(b, "%s_bucket{%s} %d\n", f.name,
				labelPairs(names, values, "le", "+Inf"), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelBlock(names, values), formatFloat(s.sum))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelBlock(names, values), s.count)
		default:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelBlock(names, values), formatFloat(s.val))
		}
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// labelPairs renders name="value" pairs plus one extra pair (for le).
func labelPairs(names, values []string, extraName, extraValue string) string {
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, escapeLabel(values[i]))
	}
	if len(names) > 0 {
		b.WriteByte(',')
	}
	fmt.Fprintf(&b, "%s=%q", extraName, extraValue)
	return b.String()
}

// labelBlock renders {name="value",...} or "" when unlabeled.
func labelBlock(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, escapeLabel(values[i]))
	}
	b.WriteByte('}')
	return b.String()
}
