package obs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func failVerdict(obj string) []Verdict {
	return []Verdict{{Objective: obj, Pass: false, Value: 0.3, Target: 0.1, Burn: 3}}
}

func passVerdict(obj string) []Verdict {
	return []Verdict{{Objective: obj, Pass: true, Value: 0.05, Target: 0.1, Burn: 0.5}}
}

// TestAlertTrackerDedup pins the dedup contract: a (tenant, objective)
// pair fires exactly one breach while over budget and exactly one
// recovery on the way back, no matter how many ticks it stays in either
// state.
func TestAlertTrackerDedup(t *testing.T) {
	tr := NewAlertTracker()

	fired := tr.Observe(tick(1), 1, "t00", failVerdict("x"))
	if len(fired) != 1 || fired[0].Kind != AlertSLOBreach {
		t.Fatalf("first failure fired %v, want one slo-breach", fired)
	}
	if fired[0].Seq != 1 || fired[0].Tenant != "t00" || fired[0].Epoch != 1 || fired[0].Burn != 3 {
		t.Fatalf("breach alert = %+v", fired[0])
	}
	// Still failing: deduplicated.
	if fired := tr.Observe(tick(2), 2, "t00", failVerdict("x")); len(fired) != 0 {
		t.Fatalf("repeated failure fired %v, want nothing", fired)
	}
	// Back under budget: one recovery.
	fired = tr.Observe(tick(3), 3, "t00", passVerdict("x"))
	if len(fired) != 1 || fired[0].Kind != AlertSLORecovery || fired[0].Seq != 2 {
		t.Fatalf("recovery fired %v, want one slo-recovery seq 2", fired)
	}
	// Still passing: silence.
	if fired := tr.Observe(tick(4), 4, "t00", passVerdict("x")); len(fired) != 0 {
		t.Fatalf("repeated pass fired %v, want nothing", fired)
	}

	// Firing state is per (tenant, objective): another tenant breaching
	// the same objective fires its own alert.
	if fired := tr.Observe(tick(5), 5, "t01", failVerdict("x")); len(fired) != 1 {
		t.Fatalf("independent tenant fired %v, want one breach", fired)
	}
	keys := tr.FiringKeys()
	if len(keys) != 1 || keys[0] != "t01/x" {
		t.Fatalf("FiringKeys = %v, want [t01/x]", keys)
	}

	q := tr.Quarantine(tick(6), 6, "t02", "panic: boom")
	if q.Kind != AlertQuarantine || q.Detail != "panic: boom" || q.Seq != 4 {
		t.Fatalf("quarantine alert = %+v", q)
	}

	if tr.Seq() != 4 {
		t.Fatalf("Seq = %d, want 4", tr.Seq())
	}
	log := tr.Log()
	if len(log) != 4 {
		t.Fatalf("log has %d alerts, want 4", len(log))
	}
	for i, a := range log {
		if a.Seq != uint64(i+1) {
			t.Fatalf("log[%d].Seq = %d, want %d", i, a.Seq, i+1)
		}
	}
}

// TestAlertNoDataFlipRecovers covers the mid-run silence case: a series
// that stops producing data makes its objective pass again ("an SLO
// cannot be breached by silence"), which the tracker must surface as a
// recovery, not a stuck breach.
func TestAlertNoDataFlipRecovers(t *testing.T) {
	objs := []Objective{{Name: "abandon", Kind: RatioUnder,
		Num: []string{"bad"}, Den: []string{"all"}, Target: 0.05}}
	withData := seriesMap(map[string]*Series{
		"bad": mkSeries("bad", AggSum, 1, 1),
		"all": mkSeries("all", AggSum, 2, 2),
	})
	noData := seriesMap(map[string]*Series{})

	tr := NewAlertTracker()
	v := Evaluate(objs, withData)
	if v[0].Pass {
		t.Fatalf("verdict with data = %+v, want failing", v[0])
	}
	if fired := tr.Observe(tick(1), 1, "t00", v); len(fired) != 1 || fired[0].Kind != AlertSLOBreach {
		t.Fatalf("fired %v, want one breach", fired)
	}

	v = Evaluate(objs, noData)
	if !v[0].Pass || v[0].Burn != 0 || v[0].Detail != "no data" {
		t.Fatalf("no-data verdict = %+v, want pass/zero-burn/no data", v[0])
	}
	fired := tr.Observe(tick(2), 2, "t00", v)
	if len(fired) != 1 || fired[0].Kind != AlertSLORecovery {
		t.Fatalf("no-data flip fired %v, want one recovery", fired)
	}
	if len(tr.FiringKeys()) != 0 {
		t.Fatalf("FiringKeys = %v, want empty after recovery", tr.FiringKeys())
	}
}

// flakySink fails its first `failures` sends, then delivers.
type flakySink struct {
	failures int
	calls    int
	got      []Alert
}

func (s *flakySink) Send(a Alert) error {
	s.calls++
	if s.calls <= s.failures {
		return errors.New("sink down")
	}
	s.got = append(s.got, a)
	return nil
}

func TestRetryAlertSinkBackoff(t *testing.T) {
	var slept []time.Duration
	fs := &flakySink{failures: 2}
	r := &RetryAlertSink{Sink: fs, Sleep: func(d time.Duration) { slept = append(slept, d) }}
	if err := r.Send(Alert{Seq: 1}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if fs.calls != 3 || len(fs.got) != 1 {
		t.Fatalf("delegate saw %d calls, delivered %d, want 3 / 1", fs.calls, len(fs.got))
	}
	// Default backoff 10ms, doubling.
	if len(slept) != 2 || slept[0] != 10*time.Millisecond || slept[1] != 20*time.Millisecond {
		t.Fatalf("backoffs = %v, want [10ms 20ms]", slept)
	}
}

func TestRetryAlertSinkExhaustion(t *testing.T) {
	fs := &flakySink{failures: 99}
	r := &RetryAlertSink{Sink: fs, Attempts: 2, Backoff: time.Millisecond, Sleep: func(time.Duration) {}}
	err := r.Send(Alert{Seq: 1})
	if err == nil || !strings.Contains(err.Error(), "after 2 attempts") {
		t.Fatalf("err = %v, want failure after 2 attempts", err)
	}
	if fs.calls != 2 {
		t.Fatalf("delegate saw %d calls, want 2", fs.calls)
	}
}

func TestRetryAlertSinkNilSleep(t *testing.T) {
	// nil Sleep must not panic — it means "retry without waiting".
	fs := &flakySink{failures: 1}
	r := &RetryAlertSink{Sink: fs}
	if err := r.Send(Alert{Seq: 1}); err != nil {
		t.Fatalf("Send with nil Sleep: %v", err)
	}
}

// TestJSONLAlertSinkDeterministic pins the on-disk line format byte for
// byte: fixed field order, RFC3339 times, shortest round-trip floats,
// zero fields omitted.
func TestJSONLAlertSinkDeterministic(t *testing.T) {
	var b strings.Builder
	s := NewJSONLAlertSink(&b)
	alerts := []Alert{
		{Seq: 1, Time: t0, Kind: AlertSLOBreach, Tenant: "t00", Epoch: 3,
			Objective: "p99-band", Burn: 1.5, Value: 0.3, Target: 0.2, Detail: "2/10 epochs outside 3x band"},
		{Seq: 2, Time: t0.Add(time.Hour), Kind: AlertQuarantine, Tenant: "t01", Epoch: 4,
			Detail: "panic: boom"},
	}
	for _, a := range alerts {
		if err := s.Send(a); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	want := `{"seq":1,"time":"2023-01-01T00:00:00Z","kind":"slo-breach","tenant":"t00","epoch":3,"objective":"p99-band","burn":1.5,"value":0.3,"target":0.2,"detail":"2/10 epochs outside 3x band"}` + "\n" +
		`{"seq":2,"time":"2023-01-01T01:00:00Z","kind":"tenant-quarantined","tenant":"t01","epoch":4,"detail":"panic: boom"}` + "\n"
	if b.String() != want {
		t.Fatalf("JSONL output:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestMemoryAlertSink(t *testing.T) {
	m := &MemoryAlertSink{}
	for _, k := range []AlertKind{AlertSLOBreach, AlertSLOBreach, AlertSLORecovery} {
		if err := m.Send(Alert{Kind: k}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	if n := m.Count(AlertSLOBreach); n != 2 {
		t.Fatalf("Count(breach) = %d, want 2", n)
	}
	if got := m.Alerts(); len(got) != 3 {
		t.Fatalf("Alerts() = %d entries, want 3", len(got))
	}
}

func TestAlertString(t *testing.T) {
	a := Alert{Seq: 7, Time: t0, Kind: AlertSLOBreach, Tenant: "t03", Epoch: 9,
		Objective: "savings-floor", Burn: 2.25, Detail: "zero savings"}
	s := a.String()
	for _, frag := range []string{"#7", "slo-breach", "tenant=t03", "epoch=9", "objective=savings-floor", "burn=2.25", `detail="zero savings"`} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q missing %q", s, frag)
		}
	}
}
