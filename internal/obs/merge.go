package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// LabeledRegistry pairs a registry with the label value distinguishing
// it in a merged exposition — for the fleet runner, the tenant id.
type LabeledRegistry struct {
	// Label is the label VALUE attached to every sample of this
	// registry (the label name is WriteMergedPrometheus's argument).
	Label    string
	Registry *Registry
}

// WriteMergedPrometheus renders several registries as one Prometheus
// text exposition, prepending labelName="<Label>" to every sample so
// per-source series stay distinct. Each family's HELP/TYPE header is
// written once; series appear grouped by source in the order given
// (sources should be passed in a stable order — tenant index order in
// the fleet — so output is deterministic for deterministic inputs).
//
// Registries sharing a family name must agree on its type and label
// set; a mismatch is an error, because merging it would produce an
// exposition no strict parser accepts.
func WriteMergedPrometheus(w io.Writer, labelName string, regs []LabeledRegistry) error {
	type meta struct {
		help   string
		typ    MetricType
		labels int
	}
	metas := make(map[string]meta)
	names := make([]string, 0)
	for _, lr := range regs {
		r := lr.Registry
		if r == nil {
			continue
		}
		r.mu.Lock()
		for n, f := range r.families {
			m, ok := metas[n]
			if !ok {
				metas[n] = meta{help: f.help, typ: f.typ, labels: len(f.labels)}
				names = append(names, n)
				continue
			}
			if m.typ != f.typ || m.labels != len(f.labels) {
				r.mu.Unlock()
				return fmt.Errorf("obs: family %q disagrees across registries (type %v/%v, labels %d/%d)",
					n, m.typ, f.typ, m.labels, len(f.labels))
			}
		}
		r.mu.Unlock()
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		m := metas[n]
		fmt.Fprintf(&b, "# HELP %s %s\n", n, escapeHelp(m.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", n, m.typ)
		for _, lr := range regs {
			r := lr.Registry
			if r == nil {
				continue
			}
			r.mu.Lock()
			if f, ok := r.families[n]; ok {
				writeFamilySeries(&b, f, labelName, lr.Label)
			}
			r.mu.Unlock()
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
